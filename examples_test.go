package predator

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"predator/internal/jvm"
)

// TestShippedJaguarSourcesCompile guards the .jag sample files: every
// source under examples/udfs must compile, verify and load.
func TestShippedJaguarSourcesCompile(t *testing.T) {
	matches, err := filepath.Glob("examples/udfs/*.jag")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no .jag samples found")
	}
	vm := jvm.New(jvm.Options{})
	for _, path := range matches {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(path), ".jag")
		classBytes, err := CompileJaguar(string(src), name)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if _, err := vm.NewLoader("samples").Load(classBytes); err != nil {
			t.Errorf("%s: load: %v", path, err)
		}
	}
}

// TestInvestvalSampleBehaviour runs the investval sample end to end.
func TestInvestvalSampleBehaviour(t *testing.T) {
	src, err := os.ReadFile("examples/udfs/investval.jag")
	if err != nil {
		t.Fatal(err)
	}
	classBytes, err := CompileJaguar(string(src), "investval")
	if err != nil {
		t.Fatal(err)
	}
	vm := jvm.New(jvm.Options{Security: jvm.AllowAll()})
	lc, err := vm.NewLoader("inv").Load(classBytes)
	if err != nil {
		t.Fatal(err)
	}
	// Rising history: recent mean > past mean => positive momentum.
	hist := make([]byte, 100)
	for i := range hist {
		hist[i] = byte(i + 50)
	}
	ret, _, err := lc.Call("investval", []jvm.Value{jvm.BytesVal(hist)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ret.F <= 0 {
		t.Errorf("rising history momentum = %f, want > 0", ret.F)
	}
	// Too-short history returns 0.
	ret, _, err = lc.Call("investval", []jvm.Value{jvm.BytesVal(make([]byte, 10))}, nil)
	if err != nil || ret.F != 0 {
		t.Errorf("short history = %f, %v", ret.F, err)
	}
}
