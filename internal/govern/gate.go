package govern

import (
	"fmt"
	"time"

	"predator/internal/obs"
)

// Gate is a semaphore-backed admission gate. Work acquires a slot
// before running; when every slot is taken, Acquire waits up to a
// bounded grace and is then shed with an OverloadError — the server
// never queues unboundedly behind a burst. Wait times (including the
// fast path's zero wait) feed a histogram so over-admission is visible
// before it becomes an outage.
//
// A nil *Gate admits everything and records nothing, so unlimited
// configurations cost one nil check.
type Gate struct {
	slots chan struct{}
	wait  *obs.Histogram
	shed  *obs.Counter
	inUse *obs.Gauge
}

// OverloadError is a structured admission rejection. It is always
// retryable: the statement was never started, so the client should back
// off and resend.
type OverloadError struct {
	What  string // what was over capacity: "queries", "connections", ...
	Limit int
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("govern: server over capacity: %d concurrent %s (retry later)", e.Limit, e.What)
}

// NewGate builds a gate with n slots named for metrics (e.g. "queries"
// yields predator_server_admission_wait_seconds{gate="queries"}).
// n <= 0 returns nil: an unlimited gate.
func NewGate(name string, n int) *Gate {
	if n <= 0 {
		return nil
	}
	return &Gate{
		slots: make(chan struct{}, n),
		wait:  obs.Default.Histogram("predator_server_admission_wait_seconds", "gate", name),
		shed:  obs.Default.Counter("predator_server_admission_shed_total", "gate", name),
		inUse: obs.Default.Gauge("predator_server_admission_in_use", "gate", name),
	}
}

// Acquire takes a slot, waiting up to maxWait when the gate is full.
// On success it returns a release function; on shed it returns an
// *OverloadError. The release function is idempotent-unsafe (call
// exactly once), matching the usual defer pattern.
func (g *Gate) Acquire(maxWait time.Duration) (release func(), err error) {
	if g == nil {
		return func() {}, nil
	}
	select {
	case g.slots <- struct{}{}:
		g.wait.Observe(0)
		g.inUse.Set(int64(len(g.slots)))
		return g.release, nil
	default:
	}
	if maxWait <= 0 {
		g.shed.Inc()
		return nil, &OverloadError{What: "admissions", Limit: cap(g.slots)}
	}
	start := time.Now()
	t := time.NewTimer(maxWait)
	defer t.Stop()
	select {
	case g.slots <- struct{}{}:
		g.wait.Observe(time.Since(start))
		g.inUse.Set(int64(len(g.slots)))
		return g.release, nil
	case <-t.C:
		g.shed.Inc()
		return nil, &OverloadError{What: "admissions", Limit: cap(g.slots)}
	}
}

func (g *Gate) release() {
	<-g.slots
	g.inUse.Set(int64(len(g.slots)))
}

// InUse reports the occupied slots (0 for a nil gate).
func (g *Gate) InUse() int {
	if g == nil {
		return 0
	}
	return len(g.slots)
}
