package govern

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsAndSheds(t *testing.T) {
	g := NewGate("test_queries", 2)
	rel1, err := g.Acquire(0)
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	rel2, err := g.Acquire(0)
	if err != nil {
		t.Fatalf("second acquire: %v", err)
	}
	if g.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", g.InUse())
	}
	_, err = g.Acquire(0)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("third acquire: got %v, want *OverloadError", err)
	}
	if oe.Limit != 2 {
		t.Fatalf("OverloadError.Limit = %d, want 2", oe.Limit)
	}
	rel1()
	rel3, err := g.Acquire(0)
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	rel2()
	rel3()
	if g.InUse() != 0 {
		t.Fatalf("InUse after releases = %d, want 0", g.InUse())
	}
}

func TestGateBoundedWait(t *testing.T) {
	g := NewGate("test_wait", 1)
	rel, err := g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	// A waiter should get the slot once the holder releases.
	done := make(chan error, 1)
	go func() {
		rel2, err := g.Acquire(2 * time.Second)
		if err == nil {
			rel2()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	rel()
	if err := <-done; err != nil {
		t.Fatalf("waiter shed despite release: %v", err)
	}
	// And a waiter should be shed when nobody releases in time.
	rel, err = g.Acquire(0)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := g.Acquire(10 * time.Millisecond); err == nil {
		t.Fatal("expected shed after bounded wait")
	}
}

func TestGateNilUnlimited(t *testing.T) {
	var g *Gate
	for i := 0; i < 100; i++ {
		rel, err := g.Acquire(0)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if NewGate("x", 0) != nil || NewGate("x", -1) != nil {
		t.Fatal("NewGate with n<=0 should return nil")
	}
}

func TestTenantMemQuota(t *testing.T) {
	gov := NewGovernor(Quota{MemBytes: 1000})
	ten := gov.Tenant("alice")
	r := NewReservation(ten)
	if err := r.Grow(600); err != nil {
		t.Fatalf("within quota: %v", err)
	}
	// 600 + 500 > 1000 hard limit: rejected and rolled back.
	err := r.Grow(500)
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("got %v, want *QuotaError", err)
	}
	if qe.Resource != "memory" || qe.Tenant != "alice" {
		t.Fatalf("QuotaError = %+v", qe)
	}
	if ten.MemInUse() != 600 {
		t.Fatalf("MemInUse after rollback = %d, want 600", ten.MemInUse())
	}
	r.Release()
	if ten.MemInUse() != 0 {
		t.Fatalf("MemInUse after release = %d, want 0", ten.MemInUse())
	}
	r.Release() // idempotent
	if ten.MemInUse() != 0 {
		t.Fatal("double release changed accounting")
	}
}

func TestTenantMemQuotaIsolation(t *testing.T) {
	gov := NewGovernor(Quota{MemBytes: 100})
	noisy := gov.Tenant("noisy")
	quiet := gov.Tenant("quiet")
	rn := NewReservation(noisy)
	if err := rn.Grow(500); err == nil {
		t.Fatal("noisy tenant should trip its quota")
	}
	rq := NewReservation(quiet)
	if err := rq.Grow(90); err != nil {
		t.Fatalf("quiet tenant affected by noisy one: %v", err)
	}
	rn.Release()
	rq.Release()
}

func TestTenantCPUQuota(t *testing.T) {
	gov := NewGovernor(Quota{})
	ten := gov.Tenant("bob")
	ten.SetQuota(Quota{CPUTime: 10 * time.Millisecond, CPUWindow: 50 * time.Millisecond})
	if err := ten.CheckCPU(); err != nil {
		t.Fatalf("fresh tenant: %v", err)
	}
	ten.AddCPU(20 * time.Millisecond)
	err := ten.CheckCPU()
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Resource != "cpu" {
		t.Fatalf("got %v, want cpu *QuotaError", err)
	}
	// After the window rolls, the budget is back.
	time.Sleep(60 * time.Millisecond)
	if err := ten.CheckCPU(); err != nil {
		t.Fatalf("after window roll: %v", err)
	}
	if used := ten.CPUUsed(); used != 0 {
		t.Fatalf("CPUUsed after roll = %v, want 0", used)
	}
}

// TestCPUWindowRollRace hammers window rolls racing AddCPU/CheckCPU
// under the race detector: the Swap-based reset must hand every
// concurrent accounting update to exactly one window (old or new),
// never drop it between a CAS and a store.
func TestCPUWindowRollRace(t *testing.T) {
	gov := NewGovernor(Quota{})
	ten := gov.Tenant("racy")
	ten.SetQuota(Quota{CPUTime: time.Hour, CPUWindow: time.Microsecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				ten.AddCPU(time.Microsecond)
				if err := ten.CheckCPU(); err != nil {
					t.Errorf("hour-budget tenant tripped cpu quota: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if used := ten.CPUUsed(); used < 0 {
		t.Fatalf("negative CPU accumulator after racing rolls: %v", used)
	}
}

func TestTenantSessionCap(t *testing.T) {
	gov := NewGovernor(Quota{})
	ten := gov.Tenant("carol")
	if err := ten.AddSession(2); err != nil {
		t.Fatal(err)
	}
	if err := ten.AddSession(2); err != nil {
		t.Fatal(err)
	}
	if err := ten.AddSession(2); err == nil {
		t.Fatal("third session should exceed cap 2")
	}
	if ten.Sessions() != 2 {
		t.Fatalf("Sessions = %d, want 2", ten.Sessions())
	}
	ten.EndSession()
	if err := ten.AddSession(2); err != nil {
		t.Fatalf("after EndSession: %v", err)
	}
	ten.EndSession()
	ten.EndSession()
}

func TestGovernorTenantIdentity(t *testing.T) {
	gov := NewGovernor(Quota{})
	if gov.Tenant("a") != gov.Tenant("a") {
		t.Fatal("same name should return same tenant")
	}
	if gov.Tenant("") != gov.Tenant("default") {
		t.Fatal("empty name should alias default")
	}
	gov.Tenant("b")
	ts := gov.Tenants()
	if len(ts) != 3 || ts[0].Name() != "a" || ts[1].Name() != "b" || ts[2].Name() != "default" {
		t.Fatalf("Tenants() = %v", ts)
	}
}

func TestBreakerOpensAndRecovers(t *testing.T) {
	b := NewBreaker("test_udf", BreakerConfig{Failures: 3, Window: time.Second, Cooldown: 30 * time.Millisecond})
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d: %v", i, err)
		}
		b.Record(true)
	}
	if st := b.Status(); st.State != "open" || st.Opens != 1 {
		t.Fatalf("after 3 fatals: %+v", st)
	}
	err := b.Allow()
	var be *BreakerOpenError
	if !errors.As(err, &be) {
		t.Fatalf("open breaker: got %v, want *BreakerOpenError", err)
	}
	// After the cooldown one probe is admitted; a failed probe re-opens.
	time.Sleep(40 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe rejected: %v", err)
	}
	b.Record(true)
	if st := b.Status(); st.State != "open" || st.Opens != 2 {
		t.Fatalf("after failed probe: %+v", st)
	}
	// A successful probe closes the circuit.
	time.Sleep(40 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
	b.Record(false)
	if st := b.Status(); st.State != "closed" {
		t.Fatalf("after successful probe: %+v", st)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("closed-again breaker rejected: %v", err)
	}
	b.Record(false)
}

func TestBreakerIgnoresNonFatal(t *testing.T) {
	b := NewBreaker("test_udf_nf", BreakerConfig{Failures: 2})
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		b.Record(false)
	}
	if st := b.Status(); st.State != "closed" || st.Opens != 0 {
		t.Fatalf("non-fatal outcomes opened the breaker: %+v", st)
	}
}

func TestBreakerSingleProbe(t *testing.T) {
	b := NewBreaker("test_udf_probe", BreakerConfig{Failures: 1, Cooldown: 10 * time.Millisecond})
	if err := b.Allow(); err != nil {
		t.Fatal(err)
	}
	b.Record(true)
	time.Sleep(20 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	// While the probe is in flight, everyone else is shed.
	if err := b.Allow(); err == nil {
		t.Fatal("second call admitted during half-open probe")
	}
	b.Record(false)
}

func TestBreakerDisabledAndNil(t *testing.T) {
	var nb *Breaker
	if err := nb.Allow(); err != nil {
		t.Fatal("nil breaker should admit")
	}
	nb.Record(true)
	if st := nb.Status(); st.State != "closed" {
		t.Fatalf("nil breaker status: %+v", st)
	}
	b := NewBreaker("test_udf_off", BreakerConfig{Failures: -1})
	for i := 0; i < 20; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal("disabled breaker should admit")
		}
		b.Record(true)
	}
}

func TestTenantConcurrency(t *testing.T) {
	gov := NewGovernor(Quota{MemBytes: 1 << 40})
	ten := gov.Tenant("racer")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r := NewReservation(ten)
				_ = r.Grow(128)
				ten.AddCPU(time.Microsecond)
				_ = r.CheckCPU()
				r.Release()
			}
		}()
	}
	wg.Wait()
	if ten.MemInUse() != 0 {
		t.Fatalf("leaked memory accounting: %d", ten.MemInUse())
	}
}
