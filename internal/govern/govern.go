// Package govern is the resource-governance layer of PREDATOR-Go: the
// machinery that keeps one tenant, one runaway UDF or one wedged client
// from starving everyone else. It provides three primitives, each used
// by a different layer of the system:
//
//   - Gate: a semaphore-backed admission gate (server wire layer). Past
//     the configured concurrency, new work waits briefly and is then
//     shed — never queued unboundedly — with wait-time histograms and
//     shed counters in the obs registry.
//   - Governor / Tenant: per-tenant quotas (engine layer). Tracks each
//     tenant's statement memory, cumulative executor CPU time and open
//     sessions against configurable ceilings; the soft memory limit
//     applies backpressure, the hard limit aborts the statement.
//   - Breaker: a per-UDF circuit breaker (isolate layer). Repeated
//     executor crashes or timeouts open the breaker (fail fast), a
//     half-open probe re-admits, and pooled UDFs are quarantined to a
//     dedicated executor so they cannot poison the shared pool.
//
// The package deliberately does not import core: fault classification
// is applied by the callers (expr, isolate, server), which wrap the
// plain errors returned here into classified core.Faults.
package govern

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"predator/internal/obs"
)

// Quota is one tenant's resource ceiling. Zero fields are unlimited.
type Quota struct {
	// MemBytes is the hard per-statement memory ceiling: result rows and
	// batch buffers accounted against the tenant while statements run.
	// Crossing it aborts the statement.
	MemBytes int64
	// MemSoftBytes is the backpressure threshold: reservations beyond it
	// succeed but stall briefly, slowing the tenant down before the hard
	// limit kills it. Zero derives softLimitFraction of MemBytes.
	MemSoftBytes int64
	// CPUTime caps the tenant's cumulative executor CPU time (measured
	// at UDF crossings and on executor reap). Once exceeded, further
	// statements abort until the window resets.
	CPUTime time.Duration
	// CPUWindow is the accounting window for CPUTime (0 = 1 minute).
	CPUWindow time.Duration
}

// softLimitFraction derives the soft memory limit when only the hard
// one is configured.
const softLimitFraction = 0.8

// defaultCPUWindow bounds the CPU-time accounting window.
const defaultCPUWindow = time.Minute

// backpressureStall is the per-reservation delay applied between the
// soft and hard memory limits.
const backpressureStall = 200 * time.Microsecond

// QuotaError reports a tripped tenant quota. Callers classify it
// (core.FaultQuota) before it reaches a client.
type QuotaError struct {
	Tenant   string
	Resource string // "memory" or "cpu"
	Used     int64
	Limit    int64
}

// Error implements error.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("govern: tenant %q exceeded %s quota (%d > %d)",
		e.Tenant, e.Resource, e.Used, e.Limit)
}

// Governor tracks every tenant seen by one engine. Tenants are created
// on first reference and never evicted (the tenant space is the user
// space: bounded by configuration, not by traffic).
type Governor struct {
	mu       sync.Mutex
	tenants  map[string]*Tenant
	defaults Quota
}

// NewGovernor builds a governor applying q to tenants that have no
// explicit quota of their own.
func NewGovernor(q Quota) *Governor {
	return &Governor{tenants: make(map[string]*Tenant), defaults: q}
}

// Tenant returns (creating if needed) the named tenant's state.
func (g *Governor) Tenant(name string) *Tenant {
	if name == "" {
		name = "default"
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	t, ok := g.tenants[name]
	if !ok {
		t = newTenant(name, g.defaults)
		g.tenants[name] = t
	}
	return t
}

// Tenants returns every tenant sorted by name (SHOW-style surfacing).
func (g *Governor) Tenants() []*Tenant {
	g.mu.Lock()
	out := make([]*Tenant, 0, len(g.tenants))
	for _, t := range g.tenants {
		out = append(out, t)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Tenant is one tenant's live resource accounting. All hot-path methods
// are atomic loads/adds: safe for concurrent statements, no allocation.
type Tenant struct {
	name string

	mu    sync.Mutex
	quota Quota

	mem      atomic.Int64 // bytes reserved by running statements
	cpuNS    atomic.Int64 // executor CPU accumulated this window
	cpuReset atomic.Int64 // unix-nano start of the current CPU window
	sessions atomic.Int64 // open sessions (server connections)
	childNS  atomic.Int64 // executor-reported child CPU, cumulative

	memGauge  *obs.Gauge
	cpuTotal  *obs.Counter
	childCPU  *obs.Counter
	trips     func(resource string) *obs.Counter
	sessGauge *obs.Gauge
}

func newTenant(name string, q Quota) *Tenant {
	t := &Tenant{name: name, quota: q}
	t.memGauge = obs.Default.Gauge("predator_govern_mem_bytes", "tenant", name)
	t.cpuTotal = obs.Default.Counter("predator_govern_cpu_ns_total", "tenant", name)
	t.childCPU = obs.Default.Counter("predator_tenant_child_cpu_ns_total", "tenant", name)
	t.sessGauge = obs.Default.Gauge("predator_govern_sessions", "tenant", name)
	t.trips = func(resource string) *obs.Counter {
		return obs.Default.Counter("predator_govern_quota_trips_total", "tenant", name, "resource", resource)
	}
	t.cpuReset.Store(time.Now().UnixNano())
	return t
}

// Name returns the tenant identifier (the connection's user).
func (t *Tenant) Name() string { return t.name }

// SetQuota replaces the tenant's quota.
func (t *Tenant) SetQuota(q Quota) {
	t.mu.Lock()
	t.quota = q
	t.mu.Unlock()
}

// QuotaLimits returns the tenant's current quota.
func (t *Tenant) QuotaLimits() Quota {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.quota
}

// SetMemQuota adjusts only the memory ceiling (SET QUOTA_MEMORY).
func (t *Tenant) SetMemQuota(hard int64) {
	t.mu.Lock()
	t.quota.MemBytes = hard
	t.quota.MemSoftBytes = 0
	t.mu.Unlock()
}

// SetCPUQuota adjusts only the CPU-time ceiling (SET QUOTA_CPU).
func (t *Tenant) SetCPUQuota(d time.Duration) {
	t.mu.Lock()
	t.quota.CPUTime = d
	t.mu.Unlock()
}

// MemInUse reports the bytes currently reserved by running statements.
func (t *Tenant) MemInUse() int64 { return t.mem.Load() }

// softHardMem resolves the effective soft and hard memory limits.
func (t *Tenant) softHardMem() (soft, hard int64) {
	t.mu.Lock()
	hard = t.quota.MemBytes
	soft = t.quota.MemSoftBytes
	t.mu.Unlock()
	if soft == 0 && hard > 0 {
		soft = int64(float64(hard) * softLimitFraction)
	}
	return soft, hard
}

// reserveMem accounts n bytes to the tenant. Beyond the soft limit it
// stalls briefly (backpressure); beyond the hard limit it rolls back
// the reservation and returns a QuotaError.
func (t *Tenant) reserveMem(n int64) error {
	if n <= 0 {
		return nil
	}
	now := t.mem.Add(n)
	t.memGauge.Set(now)
	soft, hard := t.softHardMem()
	if hard > 0 && now > hard {
		t.mem.Add(-n)
		t.memGauge.Set(t.mem.Load())
		t.trips("memory").Inc()
		return &QuotaError{Tenant: t.name, Resource: "memory", Used: now, Limit: hard}
	}
	if soft > 0 && now > soft {
		// Soft limit: slow the tenant down instead of failing it.
		time.Sleep(backpressureStall)
	}
	return nil
}

// releaseMem gives back a reservation.
func (t *Tenant) releaseMem(n int64) {
	if n > 0 {
		t.memGauge.Set(t.mem.Add(-n))
	}
}

// AddCPU accounts executor CPU time (or its wall-clock proxy measured
// at a UDF crossing) to the tenant's current window.
func (t *Tenant) AddCPU(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.rollWindow()
	t.cpuNS.Add(int64(d))
	t.cpuTotal.Add(int64(d))
}

// AddChildCPU accounts CPU time measured by a child executor process
// (the rusage delta reported on batch-result frame tails) to the
// tenant. It feeds the same windowed budget and cumulative counter as
// AddCPU — the dispatch layer charges a crossing's wall time as
// child-reported CPU plus the wall residual, so the window never
// double-counts — plus a dedicated child-CPU ledger
// (predator_tenant_child_cpu_ns_total, SHOW TENANTS).
func (t *Tenant) AddChildCPU(d time.Duration) {
	if t == nil || d <= 0 {
		return
	}
	t.rollWindow()
	t.cpuNS.Add(int64(d))
	t.cpuTotal.Add(int64(d))
	t.childNS.Add(int64(d))
	t.childCPU.Add(int64(d))
}

// ChildCPUUsed reports the cumulative executor-reported CPU charged to
// this tenant (not windowed: it is an attribution ledger, not a
// budget).
func (t *Tenant) ChildCPUUsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.childNS.Load())
}

// CPUTotal reports the cumulative CPU time ever charged to this tenant
// (window rolls do not reset it).
func (t *Tenant) CPUTotal() time.Duration {
	if t == nil {
		return 0
	}
	return time.Duration(t.cpuTotal.Value())
}

// CPUUsed reports the CPU time consumed in the current window.
func (t *Tenant) CPUUsed() time.Duration {
	t.rollWindow()
	return time.Duration(t.cpuNS.Load())
}

// rollWindow resets the CPU accumulator when its window has elapsed.
func (t *Tenant) rollWindow() {
	t.mu.Lock()
	w := t.quota.CPUWindow
	t.mu.Unlock()
	if w <= 0 {
		w = defaultCPUWindow
	}
	start := t.cpuReset.Load()
	now := time.Now().UnixNano()
	if now-start >= int64(w) && t.cpuReset.CompareAndSwap(start, now) {
		// Swap, not Store: an AddCPU racing the roll lands atomically in
		// either the swapped-out old window or the fresh one — it is
		// never silently dropped between a load and a reset.
		t.cpuNS.Swap(0)
	}
}

// CheckCPU returns a QuotaError once the tenant's window CPU budget is
// exhausted. Nil-safe and cheap (two atomic loads) — polled per row.
func (t *Tenant) CheckCPU() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	limit := t.quota.CPUTime
	t.mu.Unlock()
	if limit <= 0 {
		return nil
	}
	t.rollWindow()
	if used := t.cpuNS.Load(); used > int64(limit) {
		t.trips("cpu").Inc()
		return &QuotaError{Tenant: t.name, Resource: "cpu", Used: used, Limit: int64(limit)}
	}
	return nil
}

// AddSession registers one more open session, failing once limit (>0)
// concurrent sessions are already open for this tenant.
func (t *Tenant) AddSession(limit int) error {
	n := t.sessions.Add(1)
	if limit > 0 && n > int64(limit) {
		t.sessions.Add(-1)
		t.trips("sessions").Inc()
		return fmt.Errorf("govern: tenant %q has %d open sessions (cap %d)", t.name, n-1, limit)
	}
	t.sessGauge.Set(n)
	return nil
}

// EndSession releases a session slot.
func (t *Tenant) EndSession() {
	t.sessGauge.Set(t.sessions.Add(-1))
}

// Sessions reports the tenant's open session count.
func (t *Tenant) Sessions() int64 { return t.sessions.Load() }

// Reservation is one statement's memory accounting against a tenant.
// It grows monotonically while the statement runs and is released as a
// whole when the statement finishes. A nil Reservation is inert, so
// ungoverned paths pay a single nil check.
type Reservation struct {
	t *Tenant
	n atomic.Int64
}

// NewReservation opens a statement-scoped reservation (nil tenant →
// nil reservation).
func NewReservation(t *Tenant) *Reservation {
	if t == nil {
		return nil
	}
	return &Reservation{t: t}
}

// Grow reserves n more bytes, enforcing the tenant's memory quota.
func (r *Reservation) Grow(n int64) error {
	if r == nil || n <= 0 {
		return nil
	}
	if err := r.t.reserveMem(n); err != nil {
		return err
	}
	r.n.Add(n)
	return nil
}

// CheckCPU polls the tenant's CPU budget (for per-row Check paths).
func (r *Reservation) CheckCPU() error {
	if r == nil {
		return nil
	}
	return r.t.CheckCPU()
}

// Tenant returns the governed tenant (nil for a nil reservation).
func (r *Reservation) Tenant() *Tenant {
	if r == nil {
		return nil
	}
	return r.t
}

// Release returns the whole reservation to the tenant. Idempotent.
func (r *Reservation) Release() {
	if r == nil {
		return
	}
	if n := r.n.Swap(0); n > 0 {
		r.t.releaseMem(n)
	}
}
