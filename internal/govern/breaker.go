package govern

import (
	"fmt"
	"sync"
	"time"

	"predator/internal/obs"
)

// BreakerConfig tunes one circuit breaker.
type BreakerConfig struct {
	// Failures is the number of fatal failures within Window that opens
	// the breaker (0 = default 5; negative disables the breaker).
	Failures int
	// Window is the sliding failure-counting window (0 = 10s).
	Window time.Duration
	// Cooldown is how long an open breaker rejects before letting one
	// half-open probe through (0 = 2s).
	Cooldown time.Duration
}

// Breaker defaults.
const (
	defaultBreakerFailures = 5
	defaultBreakerWindow   = 10 * time.Second
	defaultBreakerCooldown = 2 * time.Second
)

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures == 0 {
		c.Failures = defaultBreakerFailures
	}
	if c.Window <= 0 {
		c.Window = defaultBreakerWindow
	}
	if c.Cooldown <= 0 {
		c.Cooldown = defaultBreakerCooldown
	}
	return c
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// BreakerOpenError is the fail-fast rejection of an open breaker.
// Retryable: the failure is the callee's, not the caller's — back off
// and retry after the cooldown.
type BreakerOpenError struct {
	Name  string
	Until time.Duration // time remaining before the next half-open probe
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("govern: %s circuit breaker is open (next probe in %v)", e.Name, e.Until.Round(time.Millisecond))
}

// Breaker is a three-state circuit breaker: Closed counts fatal
// failures in a sliding window; crossing the threshold Opens it
// (fail-fast); after the cooldown one half-open probe is admitted and
// its outcome closes or re-opens the circuit. All transitions are
// mutex-guarded — the guarded operations are process crossings, so a
// lock (not lock-free atomics) is the right cost model.
type Breaker struct {
	name string
	cfg  BreakerConfig

	mu          sync.Mutex
	state       int
	failures    int       // failures observed in the current window
	windowStart time.Time // start of the current counting window
	openedAt    time.Time
	probing     bool // a half-open probe is in flight

	opens *obs.Counter
	sheds *obs.Counter
	gauge *obs.Gauge
}

// NewBreaker builds a breaker named for metrics
// (predator_udf_breaker_*{udf="<name>"}).
func NewBreaker(name string, cfg BreakerConfig) *Breaker {
	b := &Breaker{
		name:  name,
		cfg:   cfg.withDefaults(),
		opens: obs.Default.Counter("predator_udf_breaker_opens_total", "udf", name),
		sheds: obs.Default.Counter("predator_udf_breaker_sheds_total", "udf", name),
		gauge: obs.Default.Gauge("predator_udf_breaker_state", "udf", name),
	}
	return b
}

// Allow reports whether a call may proceed: nil to proceed (the caller
// must Record the outcome), or a *BreakerOpenError to fail fast.
func (b *Breaker) Allow() error {
	if b == nil || b.cfg.Failures < 0 {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if since := time.Since(b.openedAt); since >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			b.gauge.Set(breakerHalfOpen)
			return nil // the probe
		}
		b.sheds.Inc()
		return &BreakerOpenError{Name: b.name, Until: b.cfg.Cooldown - time.Since(b.openedAt)}
	default: // half-open
		if !b.probing {
			b.probing = true
			return nil
		}
		b.sheds.Inc()
		return &BreakerOpenError{Name: b.name, Until: 0}
	}
}

// Record feeds one call outcome back. fatal should be true for
// failures that indicate the callee itself is broken (executor crash,
// protocol violation, timeout) — plain UDF errors are the caller's
// data's fault and must not open the breaker.
func (b *Breaker) Record(fatal bool) {
	if b == nil || b.cfg.Failures < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if fatal {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.opens.Inc()
			b.gauge.Set(breakerOpen)
			return
		}
		// Probe succeeded: the callee recovered.
		b.state = breakerClosed
		b.failures = 0
		b.gauge.Set(breakerClosed)
	case breakerClosed:
		if !fatal {
			return
		}
		now := time.Now()
		if b.windowStart.IsZero() || now.Sub(b.windowStart) > b.cfg.Window {
			b.windowStart = now
			b.failures = 0
		}
		b.failures++
		if b.failures >= b.cfg.Failures {
			b.state = breakerOpen
			b.openedAt = now
			b.opens.Inc()
			b.gauge.Set(breakerOpen)
		}
	}
}

// BreakerStatus is a point-in-time snapshot for SHOW UDFS.
type BreakerStatus struct {
	State    string // "closed", "open" or "half-open"
	Failures int    // failures in the current window (closed state)
	Opens    int64  // times the breaker has opened
	Sheds    int64  // calls rejected while open
}

// Status snapshots the breaker (zero value for a nil breaker).
func (b *Breaker) Status() BreakerStatus {
	if b == nil {
		return BreakerStatus{State: "closed"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{Failures: b.failures, Opens: b.opens.Value(), Sheds: b.sheds.Value()}
	switch b.state {
	case breakerOpen:
		st.State = "open"
	case breakerHalfOpen:
		st.State = "half-open"
	default:
		st.State = "closed"
	}
	return st
}
