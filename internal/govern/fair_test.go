package govern

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFairQueueNilIsUnlimited(t *testing.T) {
	var q *FairQueue
	if q != NewFairQueue("x", 0, 0) {
		t.Fatal("globalCap <= 0 must return a nil (unlimited) queue")
	}
	for i := 0; i < 100; i++ {
		if err := q.Acquire("t", 0); err != nil {
			t.Fatal(err)
		}
	}
	q.Release("t")
	if q.InFlight() != 0 {
		t.Fatal("nil queue reports in-flight work")
	}
}

func TestFairQueueGlobalCapSheds(t *testing.T) {
	q := NewFairQueue("cap", 2, 0)
	if err := q.Acquire("a", 0); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("a", 0); err != nil {
		t.Fatal(err)
	}
	err := q.Acquire("a", time.Millisecond)
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("over-cap acquire = %v, want *OverloadError", err)
	}
	q.Release("a")
	if err := q.Acquire("a", 0); err != nil {
		t.Fatalf("acquire after release = %v", err)
	}
	q.Release("a")
	q.Release("a")
	if got := q.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after full drain", got)
	}
}

func TestFairQueueTenantCap(t *testing.T) {
	q := NewFairQueue("tcap", 8, 2)
	for i := 0; i < 2; i++ {
		if err := q.Acquire("hog", 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.Acquire("hog", 0); err == nil {
		t.Fatal("tenant over its cap was admitted")
	}
	// A capped-out tenant must not block others: global capacity remains.
	if err := q.Acquire("quiet", 0); err != nil {
		t.Fatalf("quiet tenant shed while capacity remains: %v", err)
	}
}

// TestFairQueueWeightedShare drives two tenants through a contended
// queue and checks the weight-2 tenant completes roughly twice the work.
// Several goroutines per tenant keep a waiter registered for both sides
// at all times, so admissions follow the virtual clocks rather than the
// OS scheduler, and the run ends after a fixed admission count rather
// than a wall-clock window — both matter on a loaded test machine.
func TestFairQueueWeightedShare(t *testing.T) {
	q := NewFairQueue("weights", 1, 0) // one slot: pure scheduling order
	q.SetWeight("heavy", 2)
	q.SetWeight("light", 1)
	// Hold the only slot until every worker from both tenants is
	// registered as a waiter: otherwise whichever tenant's goroutines
	// happen to be scheduled first can finish the whole run uncontended.
	if err := q.Acquire("warmup", 0); err != nil {
		t.Fatal(err)
	}
	const total = 3000
	const workers = 3
	var heavy, light, admitted atomic.Int64
	var wg sync.WaitGroup
	run := func(tenant string, n *atomic.Int64) {
		defer wg.Done()
		for admitted.Load() < total {
			if err := q.Acquire(tenant, 10*time.Second); err != nil {
				continue
			}
			if admitted.Add(1) <= total {
				n.Add(1)
			}
			q.Release(tenant)
		}
	}
	for g := 0; g < workers; g++ {
		wg.Add(2)
		go run("heavy", &heavy)
		go run("light", &light)
	}
	for deadline := time.Now().Add(5 * time.Second); ; time.Sleep(time.Millisecond) {
		q.mu.Lock()
		ready := q.waiting["heavy"] == workers && q.waiting["light"] == workers
		q.mu.Unlock()
		if ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("workers never queued behind the warmup slot")
		}
	}
	q.Release("warmup")
	wg.Wait()
	h, l := heavy.Load(), light.Load()
	if h == 0 || l == 0 {
		t.Fatalf("starved tenant: heavy=%d light=%d", h, l)
	}
	ratio := float64(h) / float64(l)
	if ratio < 1.3 || ratio > 3.0 {
		t.Errorf("heavy/light = %.2f (h=%d l=%d), want ~2", ratio, h, l)
	}
	if got := q.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after drain", got)
	}
}

// TestFairQueueNoDeadlockUnderChurn hammers the queue from many tenants
// and ensures everything drains: no waiter deadlocks deferring to a
// capped-out or departed tenant.
func TestFairQueueNoDeadlockUnderChurn(t *testing.T) {
	q := NewFairQueue("churn", 4, 2)
	var wg sync.WaitGroup
	var sheds atomic.Int64
	tenants := []string{"a", "b", "c", "d", "e"}
	for _, tenant := range tenants {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := q.Acquire(tenant, 250*time.Millisecond); err != nil {
						sheds.Add(1)
						continue
					}
					time.Sleep(100 * time.Microsecond)
					q.Release(tenant)
				}
			}(tenant)
		}
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("fair queue deadlocked under churn")
	}
	if got := q.InFlight(); got != 0 {
		t.Fatalf("in-flight = %d after drain", got)
	}
}

// TestFairQueueNewcomerNotStarved: a tenant arriving after others have
// built up virtual time must be admitted promptly, and a tenant that
// has been idle must not have banked an unbeatable credit.
func TestFairQueueNewcomerJoinsAtLiveClock(t *testing.T) {
	q := NewFairQueue("newcomer", 1, 0)
	// Veteran advances its clock far ahead.
	for i := 0; i < 100; i++ {
		if err := q.Acquire("vet", 0); err != nil {
			t.Fatal(err)
		}
		q.Release("vet")
	}
	// Hold the only slot with the veteran, queue a newcomer, release:
	// the newcomer must get the slot within its wait budget.
	if err := q.Acquire("vet", 0); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- q.Acquire("newbie", 2*time.Second) }()
	time.Sleep(10 * time.Millisecond)
	q.Release("vet")
	if err := <-got; err != nil {
		t.Fatalf("newcomer shed: %v", err)
	}
	q.Release("newbie")
}
