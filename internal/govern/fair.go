package govern

import (
	"sync"
	"time"

	"predator/internal/obs"
)

// FairQueue is a weighted fair admission queue for work sharing a
// bounded resource (the executor fleet's stream slots). It enforces a
// global in-flight cap and a per-tenant in-flight cap, and when tenants
// contend it admits them in virtual-time order: each admission advances
// the tenant's virtual clock by 1/weight, so a weight-2 tenant is
// admitted twice as often as a weight-1 tenant under pressure while
// idle capacity flows to whoever asks. Waiters past maxWait are shed
// with an OverloadError, never queued unboundedly.
//
// A nil *FairQueue admits everything, so unlimited configurations cost
// one nil check.
type FairQueue struct {
	mu   sync.Mutex
	cond *sync.Cond

	globalCap int
	tenantCap int

	total    int
	inflight map[string]int
	waiting  map[string]int
	weights  map[string]float64
	vtime    map[string]float64

	wait *obs.Histogram
	shed *obs.Counter
	used *obs.Gauge
}

// NewFairQueue builds a fair queue named for metrics. globalCap bounds
// total in-flight admissions (<= 0 returns nil: unlimited), tenantCap
// bounds a single tenant's share (<= 0 = no per-tenant bound).
func NewFairQueue(name string, globalCap, tenantCap int) *FairQueue {
	if globalCap <= 0 {
		return nil
	}
	q := &FairQueue{
		globalCap: globalCap,
		tenantCap: tenantCap,
		inflight:  make(map[string]int),
		waiting:   make(map[string]int),
		weights:   make(map[string]float64),
		vtime:     make(map[string]float64),
		wait:      obs.Default.Histogram("predator_govern_fair_wait_seconds", "queue", name),
		shed:      obs.Default.Counter("predator_govern_fair_sheds_total", "queue", name),
		used:      obs.Default.Gauge("predator_govern_fair_in_flight", "queue", name),
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// SetWeight assigns a tenant's scheduling weight (default 1; values
// below 1 are clamped to 1 — starving a tenant outright is the
// breaker's job, not the scheduler's).
func (q *FairQueue) SetWeight(tenant string, w float64) {
	if q == nil {
		return
	}
	if w < 1 {
		w = 1
	}
	q.mu.Lock()
	q.weights[tenant] = w
	q.mu.Unlock()
}

// weightLocked resolves a tenant's weight.
func (q *FairQueue) weightLocked(tenant string) float64 {
	if w, ok := q.weights[tenant]; ok {
		return w
	}
	return 1
}

// touchVtimeLocked initializes a newly seen tenant's virtual clock to
// the minimum of the live clocks, so a newcomer competes fairly instead
// of starting with an unbeatable backlog of credit.
func (q *FairQueue) touchVtimeLocked(tenant string) {
	if _, ok := q.vtime[tenant]; ok {
		return
	}
	min, seeded := 0.0, false
	for _, v := range q.vtime {
		if !seeded || v < min {
			min, seeded = v, true
		}
	}
	q.vtime[tenant] = min
}

// admissibleLocked reports whether the tenant may be admitted now:
// under its own cap, under the global cap, and not jumping ahead of an
// eligible waiting tenant with an earlier virtual time. Ineligible
// waiters (ones blocked by their own tenant cap) are ignored, so a
// capped-out tenant can never deadlock the queue for everyone else.
func (q *FairQueue) admissibleLocked(tenant string) bool {
	if q.tenantCap > 0 && q.inflight[tenant] >= q.tenantCap {
		return false
	}
	if q.total >= q.globalCap {
		return false
	}
	vt := q.vtime[tenant]
	for other, n := range q.waiting {
		if other == tenant || n <= 0 {
			continue
		}
		if q.tenantCap > 0 && q.inflight[other] >= q.tenantCap {
			continue // not eligible; deferring to it would deadlock
		}
		if q.vtime[other] < vt {
			return false
		}
	}
	return true
}

// Acquire admits one unit of work for the tenant, waiting up to
// maxWait under contention and shedding with an *OverloadError after.
// Every successful Acquire must be paired with exactly one Release.
func (q *FairQueue) Acquire(tenant string, maxWait time.Duration) error {
	if q == nil {
		return nil
	}
	start := time.Now()
	timedOut := false
	var timer *time.Timer
	q.mu.Lock()
	q.touchVtimeLocked(tenant)
	if !q.admissibleLocked(tenant) {
		if maxWait <= 0 {
			q.mu.Unlock()
			q.shed.Inc()
			return &OverloadError{What: "fleet streams", Limit: q.globalCap}
		}
		timer = time.AfterFunc(maxWait, func() {
			q.mu.Lock()
			timedOut = true
			q.cond.Broadcast()
			q.mu.Unlock()
		})
		q.waiting[tenant]++
		for !q.admissibleLocked(tenant) && !timedOut {
			q.cond.Wait()
		}
		q.waiting[tenant]--
		if timedOut && !q.admissibleLocked(tenant) {
			q.mu.Unlock()
			timer.Stop()
			q.shed.Inc()
			return &OverloadError{What: "fleet streams", Limit: q.globalCap}
		}
	}
	q.inflight[tenant]++
	q.total++
	q.vtime[tenant] += 1 / q.weightLocked(tenant)
	q.used.Set(int64(q.total))
	// This admission advanced the tenant's virtual clock and took its
	// cap headroom: waiters that were deferring to it may be admissible
	// now, so wake them without waiting for a Release.
	q.cond.Broadcast()
	q.mu.Unlock()
	if timer != nil {
		timer.Stop()
	}
	q.wait.Observe(time.Since(start))
	return nil
}

// Release returns one admitted unit for the tenant.
func (q *FairQueue) Release(tenant string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	if q.inflight[tenant] > 0 {
		q.inflight[tenant]--
		q.total--
	}
	q.used.Set(int64(q.total))
	q.cond.Broadcast()
	q.mu.Unlock()
}

// InFlight reports total admitted work (0 for a nil queue).
func (q *FairQueue) InFlight() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.total
}
