package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Trace is a lightweight per-query tracer. The engine opens one trace
// per statement and records its phases (parse → plan → execute) as
// spans; deeper layers aggregate repeated work (UDF invocations,
// callbacks) as counted events instead of one span per occurrence, so
// tracing a 10,000-row scan costs a few map updates, not 10,000
// allocations.
//
// Detailed tracing (EnableDetail) is the opt-in second gear used by
// EXPLAIN ANALYZE and SET TRACE: spans get IDs and parent links,
// executor processes ship their own spans back across the wire (merged
// in via Merge), and the whole hierarchy can be exported as a Chrome
// trace-event JSON file (WriteChrome) loadable in chrome://tracing or
// Perfetto. Ordinary statements never pay for any of it.
type Trace struct {
	mu     sync.Mutex
	id     int64
	t0     time.Time
	nextID int64
	spans  []*Span
	events map[string]*Event
	order  []string

	detailed atomic.Bool

	// remote holds spans merged from other processes (executor
	// children), capped so a pathological child cannot balloon the
	// parent's memory; overflow still counts into the events aggregate.
	remote        []SpanRecord
	remoteDropped int64
}

// maxRemoteSpans bounds how many merged child spans one trace retains.
const maxRemoteSpans = 8192

// traceIDs hands out process-unique trace identifiers.
var traceIDs atomic.Int64

// Span is one timed phase of a traced statement.
type Span struct {
	Name   string
	ID     int64
	Parent int64
	start  time.Time
	tr     *Trace

	mu    sync.Mutex
	ended bool
	d     time.Duration
}

// SpanRecord is the portable form of a completed (or still-open) span:
// what crosses process boundaries and what WriteChrome exports.
type SpanRecord struct {
	ID     int64
	Parent int64
	Name   string
	Start  time.Time
	Dur    time.Duration
	// PID is the OS process the span was recorded in (0 = this process).
	PID int
	// Open marks a span that had not ended when the snapshot was taken.
	Open bool
}

// Event aggregates repeated occurrences of the same operation within
// one trace (e.g. every invocation of one UDF).
type Event struct {
	Name  string
	Count int64
	Total time.Duration
}

// NewTrace starts an empty trace.
func NewTrace() *Trace {
	return &Trace{
		id:     traceIDs.Add(1),
		t0:     time.Now(),
		events: make(map[string]*Event),
	}
}

// ID returns the process-unique trace identifier (0 for a nil trace).
func (t *Trace) ID() int64 {
	if t == nil {
		return 0
	}
	return t.id
}

// EnableDetail switches the trace into detailed mode: span hierarchies,
// cross-process span propagation and Chrome export. Nil-safe.
func (t *Trace) EnableDetail() {
	if t != nil {
		t.detailed.Store(true)
	}
}

// Detailed reports whether detailed tracing is on. Nil-safe, so hot
// paths can gate their instrumentation on it unconditionally.
func (t *Trace) Detailed() bool {
	return t != nil && t.detailed.Load()
}

// Start opens a named top-level span. End it with Span.End; an unended
// span renders as "(running)".
func (t *Trace) Start(name string) *Span {
	return t.startSpan(name, 0)
}

// StartChild opens a span nested under parent (nil parent = top level).
func (t *Trace) StartChild(name string, parent *Span) *Span {
	var pid int64
	if parent != nil {
		pid = parent.ID
	}
	return t.startSpan(name, pid)
}

func (t *Trace) startSpan(name string, parent int64) *Span {
	if t == nil {
		return &Span{Name: name, start: time.Now()}
	}
	t.mu.Lock()
	t.nextID++
	sp := &Span{Name: name, ID: t.nextID, Parent: parent, start: time.Now(), tr: t}
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span, fixing its duration. Idempotent: the first End
// wins and later calls are no-ops, so defer-and-explicit-End patterns
// cannot silently stretch a recorded duration.
func (s *Span) End() {
	d := time.Since(s.start)
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.d = d
	}
	s.mu.Unlock()
}

// Duration returns the span's recorded duration (0 if still open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// Ended reports whether End has been called.
func (s *Span) Ended() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ended
}

// record snapshots the span for export.
func (s *Span) record() SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.d
	if !s.ended {
		d = time.Since(s.start)
	}
	return SpanRecord{
		ID: s.ID, Parent: s.Parent, Name: s.Name,
		Start: s.start, Dur: d, Open: !s.ended,
	}
}

// Event adds one occurrence of a named repeated operation. A nil trace
// is a no-op, so instrumented code can call unconditionally.
func (t *Trace) Event(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.eventLocked(name, d)
	t.mu.Unlock()
}

func (t *Trace) eventLocked(name string, d time.Duration) {
	ev, ok := t.events[name]
	if !ok {
		ev = &Event{Name: name}
		t.events[name] = ev
		t.order = append(t.order, name)
	}
	ev.Count++
	ev.Total += d
}

// AddSpan appends an already-measured span (a batch window, an operator
// lifetime) to the trace, assigning it a fresh ID. It only records when
// detailed tracing is on; the return is the assigned ID (0 if dropped).
func (t *Trace) AddSpan(rec SpanRecord) int64 {
	if !t.Detailed() {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nextID++
	rec.ID = t.nextID
	if len(t.remote) < maxRemoteSpans {
		t.remote = append(t.remote, rec)
	} else {
		t.remoteDropped++
	}
	return rec.ID
}

// Merge folds spans recorded in another process into the trace. Span
// IDs are remapped into this trace's ID space (parent links inside the
// batch are preserved; a parent of 0 means top level). Every merged
// span also counts into the events aggregate under its name, so Render
// surfaces child-side work even when the span cap truncates the list.
func (t *Trace) Merge(recs []SpanRecord, pid int) {
	if t == nil || len(recs) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idMap := make(map[int64]int64, len(recs))
	for _, r := range recs {
		t.nextID++
		idMap[r.ID] = t.nextID
		r.ID = t.nextID
		if mapped, ok := idMap[r.Parent]; ok {
			r.Parent = mapped
		} else {
			r.Parent = 0
		}
		r.PID = pid
		if len(t.remote) < maxRemoteSpans {
			t.remote = append(t.remote, r)
		} else {
			t.remoteDropped++
		}
		t.eventLocked(r.Name, r.Dur)
	}
}

// SpanDuration returns the duration of the first span with the given
// name (0 if absent or unended).
func (t *Trace) SpanDuration(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.Name == name {
			return sp.Duration()
		}
	}
	return 0
}

// Events returns the aggregated events in first-seen order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.events[name])
	}
	return out
}

// Spans snapshots every span in the trace — local phase spans first,
// then merged/added ones — as portable records.
func (t *Trace) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	local := append([]*Span(nil), t.spans...)
	remote := append([]SpanRecord(nil), t.remote...)
	t.mu.Unlock()
	out := make([]SpanRecord, 0, len(local)+len(remote))
	for _, sp := range local {
		out = append(out, sp.record())
	}
	return append(out, remote...)
}

// Render formats the trace for human consumption (the EXPLAIN ANALYZE
// footer): one line per phase span, then one per aggregated event.
// Spans still open when rendered are marked "(running)".
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	var b strings.Builder
	for _, sp := range spans {
		if !sp.Ended() {
			fmt.Fprintf(&b, "%s: (running)\n", sp.Name)
			continue
		}
		fmt.Fprintf(&b, "%s: %s\n", sp.Name, sp.Duration().Round(time.Microsecond))
	}
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Total > evs[j].Total })
	for _, ev := range evs {
		mean := time.Duration(0)
		if ev.Count > 0 {
			mean = ev.Total / time.Duration(ev.Count)
		}
		fmt.Fprintf(&b, "%s: %d calls, total %s, mean %s\n",
			ev.Name, ev.Count, ev.Total.Round(time.Microsecond), mean.Round(time.Nanosecond))
	}
	return b.String()
}

// Summary renders the trace as one compact line for the slow-query log:
// phase spans, then the top events by total time.
func (t *Trace) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	parts := make([]string, 0, len(spans)+3)
	for _, sp := range spans {
		if !sp.Ended() {
			parts = append(parts, sp.Name+"=(running)")
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", sp.Name, sp.Duration().Round(time.Microsecond)))
	}
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Total > evs[j].Total })
	if len(evs) > 3 {
		evs = evs[:3]
	}
	for _, ev := range evs {
		parts = append(parts, fmt.Sprintf("%s=%dx/%s", ev.Name, ev.Count, ev.Total.Round(time.Microsecond)))
	}
	return strings.Join(parts, " ")
}

// chromeEvent is one entry of the Chrome trace-event JSON format
// (the "JSON Array Format" both chrome://tracing and Perfetto load).
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// WriteChrome exports the trace in Chrome trace-event JSON: one
// complete ("ph":"X") event per span, with the recording process as the
// event's pid, so a cross-process query renders as two process tracks
// in chrome://tracing / Perfetto. Timestamps are wall-clock
// microseconds; parent and child run on the same machine, so their
// tracks align without clock translation.
func (t *Trace) WriteChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: nil trace")
	}
	self := os.Getpid()
	recs := t.Spans()
	events := make([]chromeEvent, 0, len(recs))
	for _, r := range recs {
		pid := r.PID
		if pid == 0 {
			pid = self
		}
		ev := chromeEvent{
			Name: r.Name,
			Cat:  "predator",
			Ph:   "X",
			TS:   float64(r.Start.UnixNano()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			PID:  pid,
			TID:  1,
		}
		if r.Open {
			ev.Args = map[string]string{"open": "true"}
		}
		events = append(events, ev)
	}
	t.mu.Lock()
	dropped := t.remoteDropped
	id := t.id
	t.mu.Unlock()
	doc := struct {
		TraceEvents []chromeEvent     `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata,omitempty"`
	}{TraceEvents: events}
	doc.Metadata = map[string]string{"trace_id": fmt.Sprintf("%d", id)}
	if dropped > 0 {
		doc.Metadata["dropped_spans"] = fmt.Sprintf("%d", dropped)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}
