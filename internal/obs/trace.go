package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is a lightweight per-query tracer. The engine opens one trace
// per statement and records its phases (parse → plan → execute) as
// spans; deeper layers aggregate repeated work (UDF invocations,
// callbacks) as counted events instead of one span per occurrence, so
// tracing a 10,000-row scan costs a few map updates, not 10,000
// allocations.
type Trace struct {
	mu     sync.Mutex
	spans  []*Span
	events map[string]*Event
	order  []string
}

// Span is one timed phase of a traced statement.
type Span struct {
	Name  string
	start time.Time
	tr    *Trace

	mu sync.Mutex
	d  time.Duration
}

// Event aggregates repeated occurrences of the same operation within
// one trace (e.g. every invocation of one UDF).
type Event struct {
	Name  string
	Count int64
	Total time.Duration
}

// NewTrace starts an empty trace.
func NewTrace() *Trace {
	return &Trace{events: make(map[string]*Event)}
}

// Start opens a named span. End it with Span.End; an unended span
// reports zero duration.
func (t *Trace) Start(name string) *Span {
	sp := &Span{Name: name, start: time.Now(), tr: t}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span, fixing its duration. Safe to call once.
func (s *Span) End() {
	d := time.Since(s.start)
	s.mu.Lock()
	s.d = d
	s.mu.Unlock()
}

// Duration returns the span's recorded duration (0 if still open).
func (s *Span) Duration() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.d
}

// Event adds one occurrence of a named repeated operation. A nil trace
// is a no-op, so instrumented code can call unconditionally.
func (t *Trace) Event(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	ev, ok := t.events[name]
	if !ok {
		ev = &Event{Name: name}
		t.events[name] = ev
		t.order = append(t.order, name)
	}
	ev.Count++
	ev.Total += d
	t.mu.Unlock()
}

// SpanDuration returns the duration of the first span with the given
// name (0 if absent or unended).
func (t *Trace) SpanDuration(name string) time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.Name == name {
			return sp.Duration()
		}
	}
	return 0
}

// Events returns the aggregated events in first-seen order.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, *t.events[name])
	}
	return out
}

// Render formats the trace for human consumption (the EXPLAIN ANALYZE
// footer): one line per phase span, then one per aggregated event.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	var b strings.Builder
	for _, sp := range spans {
		fmt.Fprintf(&b, "%s: %s\n", sp.Name, sp.Duration().Round(time.Microsecond))
	}
	evs := t.Events()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Total > evs[j].Total })
	for _, ev := range evs {
		mean := time.Duration(0)
		if ev.Count > 0 {
			mean = ev.Total / time.Duration(ev.Count)
		}
		fmt.Fprintf(&b, "%s: %d calls, total %s, mean %s\n",
			ev.Name, ev.Count, ev.Total.Round(time.Microsecond), mean.Round(time.Nanosecond))
	}
	return b.String()
}
