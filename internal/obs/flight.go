package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder's live side: every in-flight statement registers
// an Execution here, updates it with cheap atomics as it runs (phase,
// rows, crossings, child CPU), and deregisters on completion. The
// registry serves SHOW PROCESSLIST, routes KILL <query-id> to the
// owning statement's cancel flag, and is one of the three sections of
// a flight-recorder dump.
//
// recording is the global gate: when off, Start returns nil (every
// Execution method is nil-safe), the query store drops records, and
// the per-row/per-crossing cost collapses to a nil check — the "off"
// arm of the BENCH_obs overhead experiment.
var recording atomic.Bool

func init() { recording.Store(true) }

// EnableRecording toggles flight recording process-wide (live
// registry, query store). It exists for the recorder-on/off overhead
// benchmark and for embedders that want the absolute minimum hot path.
func EnableRecording(on bool) { recording.Store(on) }

// RecordingEnabled reports the global recording gate.
func RecordingEnabled() bool { return recording.Load() }

// ExecPhase is the coarse statement phase shown in SHOW PROCESSLIST.
type ExecPhase int32

// Statement phases, in rough execution order.
const (
	PhaseStart ExecPhase = iota
	PhasePlan
	PhaseExecute
	PhaseCommit
)

// String names the phase for display.
func (p ExecPhase) String() string {
	switch p {
	case PhasePlan:
		return "plan"
	case PhaseExecute:
		return "execute"
	case PhaseCommit:
		return "commit"
	default:
		return "start"
	}
}

// Execution is one in-flight statement's live record. The identity
// fields are written once at registration; everything else is atomic
// so operators, the isolate layer and SHOW PROCESSLIST never contend.
// All methods are nil-safe: an unrecorded statement carries a nil
// handle and pays one pointer check per update.
type Execution struct {
	id        uint64
	sessionID int64
	tenant    string
	query     string
	started   time.Time

	phase       atomic.Int32
	rows        atomic.Int64
	crossings   atomic.Int64
	crossWaitNS atomic.Int64
	childCPUNS  atomic.Int64
	killed      atomic.Bool
}

// ID returns the process-unique query ID (0 for a nil handle).
func (x *Execution) ID() uint64 {
	if x == nil {
		return 0
	}
	return x.id
}

// SetPhase publishes the statement's current phase.
func (x *Execution) SetPhase(p ExecPhase) {
	if x != nil {
		x.phase.Store(int32(p))
	}
}

// AddRows counts rows produced at the plan root.
func (x *Execution) AddRows(n int64) {
	if x != nil {
		x.rows.Add(n)
	}
}

// ObserveCrossing records one process-boundary crossing: its wall
// occupancy and the CPU the child executor reported for it.
func (x *Execution) ObserveCrossing(wall, childCPU time.Duration) {
	if x == nil {
		return
	}
	x.crossings.Add(1)
	x.crossWaitNS.Add(int64(wall))
	if childCPU > 0 {
		x.childCPUNS.Add(int64(childCPU))
	}
}

// Rows returns the rows produced so far.
func (x *Execution) Rows() int64 {
	if x == nil {
		return 0
	}
	return x.rows.Load()
}

// Crossings returns the process-boundary crossings so far.
func (x *Execution) Crossings() int64 {
	if x == nil {
		return 0
	}
	return x.crossings.Load()
}

// CrossingWait returns the cumulative wall time spent inside crossings.
func (x *Execution) CrossingWait() time.Duration {
	if x == nil {
		return 0
	}
	return time.Duration(x.crossWaitNS.Load())
}

// ChildCPU returns the cumulative executor-reported CPU time.
func (x *Execution) ChildCPU() time.Duration {
	if x == nil {
		return 0
	}
	return time.Duration(x.childCPUNS.Load())
}

// Kill raises the statement's cancel flag. Idempotent; the plan's
// between-rows poll surfaces the cancellation.
func (x *Execution) Kill() {
	if x != nil {
		x.killed.Store(true)
	}
}

// Killed reports whether KILL has been issued for this statement. One
// atomic load — polled per row next to the deadline check.
func (x *Execution) Killed() bool {
	return x != nil && x.killed.Load()
}

// ExecutionInfo is a point-in-time copy of one live execution
// (SHOW PROCESSLIST, flight-recorder dumps).
type ExecutionInfo struct {
	ID           uint64        `json:"id"`
	SessionID    int64         `json:"session_id"`
	Tenant       string        `json:"tenant,omitempty"`
	Phase        string        `json:"phase"`
	Elapsed      time.Duration `json:"elapsed_ns"`
	Rows         int64         `json:"rows"`
	Crossings    int64         `json:"crossings"`
	CrossingWait time.Duration `json:"crossing_wait_ns"`
	ChildCPU     time.Duration `json:"child_cpu_ns"`
	Killed       bool          `json:"killed,omitempty"`
	Query        string        `json:"query,omitempty"`
}

// ExecRegistry tracks every in-flight statement. Register/deregister
// take a mutex once per statement; per-row updates go through the
// Execution handle and never touch the registry.
type ExecRegistry struct {
	nextID atomic.Uint64

	mu   sync.Mutex
	live map[uint64]*Execution

	liveGauge  *Gauge
	startedTot *Counter
	killedTot  *Counter
}

// Live is the process-wide execution registry, backed by the Default
// metrics registry (predator_query_* family).
var Live = NewExecRegistry(Default)

// NewExecRegistry builds an execution registry reporting into reg.
func NewExecRegistry(reg *Registry) *ExecRegistry {
	return &ExecRegistry{
		live:       make(map[uint64]*Execution),
		liveGauge:  reg.Gauge("predator_query_live"),
		startedTot: reg.Counter("predator_query_started_total"),
		killedTot:  reg.Counter("predator_query_killed_total"),
	}
}

// Start registers one statement and returns its live handle (nil when
// recording is off — safe to use anyway).
func (r *ExecRegistry) Start(sessionID int64, tenant, query string) *Execution {
	if r == nil || !recording.Load() {
		return nil
	}
	x := &Execution{
		id:        r.nextID.Add(1),
		sessionID: sessionID,
		tenant:    tenant,
		query:     query,
		started:   time.Now(),
	}
	r.mu.Lock()
	r.live[x.id] = x
	n := len(r.live)
	r.mu.Unlock()
	r.liveGauge.Set(int64(n))
	r.startedTot.Inc()
	return x
}

// Finish deregisters a statement (nil-safe; idempotent).
func (r *ExecRegistry) Finish(x *Execution) {
	if r == nil || x == nil {
		return
	}
	r.mu.Lock()
	delete(r.live, x.id)
	n := len(r.live)
	r.mu.Unlock()
	r.liveGauge.Set(int64(n))
}

// Kill raises the cancel flag of the statement with the given query
// ID, reporting whether it was found live. Killing an already-killed
// statement succeeds again without further effect; a statement that
// finished (or never existed) is not found — the registry entry is
// removed exactly once, so a KILL racing completion can never cancel
// a later statement.
func (r *ExecRegistry) Kill(id uint64) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	x := r.live[id]
	r.mu.Unlock()
	if x == nil {
		return false
	}
	if !x.killed.Swap(true) {
		r.killedTot.Inc()
	}
	return true
}

// LiveCount returns the number of registered statements.
func (r *ExecRegistry) LiveCount() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.live)
}

// Snapshot copies every live execution, oldest first.
func (r *ExecRegistry) Snapshot() []ExecutionInfo {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	execs := make([]*Execution, 0, len(r.live))
	for _, x := range r.live {
		execs = append(execs, x)
	}
	r.mu.Unlock()
	now := time.Now()
	out := make([]ExecutionInfo, 0, len(execs))
	for _, x := range execs {
		out = append(out, ExecutionInfo{
			ID:           x.id,
			SessionID:    x.sessionID,
			Tenant:       x.tenant,
			Phase:        ExecPhase(x.phase.Load()).String(),
			Elapsed:      now.Sub(x.started),
			Rows:         x.rows.Load(),
			Crossings:    x.crossings.Load(),
			CrossingWait: time.Duration(x.crossWaitNS.Load()),
			ChildCPU:     time.Duration(x.childCPUNS.Load()),
			Killed:       x.killed.Load(),
			Query:        x.query,
		})
	}
	sortExecutions(out)
	return out
}

// sortExecutions orders a snapshot by query ID (registration order).
func sortExecutions(infos []ExecutionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}
