package obs

import (
	"strings"
	"testing"
	"time"
)

func TestStatementRegistryAggregates(t *testing.T) {
	reg := NewRegistry()
	sr := NewStatementRegistry(reg, 10)
	fp := "SELECT price FROM stocks WHERE id < ?"
	sr.Record(fp, 10*time.Millisecond, 3, 1, 128)
	sr.Record(fp, 30*time.Millisecond, 5, 2, 0)
	sr.Record("SELECT ?", time.Millisecond, 1, 0, 0)

	snap := sr.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 fingerprints, got %d: %+v", len(snap), snap)
	}
	// Sorted by total time descending: the two-call entry dominates.
	top := snap[0]
	if top.Fingerprint != fp {
		t.Fatalf("top fingerprint = %q, want %q", top.Fingerprint, fp)
	}
	if top.Calls != 2 {
		t.Fatalf("calls = %d, want 2", top.Calls)
	}
	if top.Total != 40*time.Millisecond {
		t.Fatalf("total = %v, want 40ms", top.Total)
	}
	if top.Rows != 8 || top.Crossings != 3 || top.WALBytes != 128 {
		t.Fatalf("rows/crossings/wal = %d/%d/%d, want 8/3/128",
			top.Rows, top.Crossings, top.WALBytes)
	}
	if top.Mean != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", top.Mean)
	}

	// The backing metrics surface on the registry's exposition too.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `predator_statement_rows_total{fingerprint="SELECT price FROM stocks WHERE id < ?"} 8`) {
		t.Fatalf("statement rows counter missing from exposition:\n%s", b.String())
	}
}

func TestStatementRegistryCap(t *testing.T) {
	reg := NewRegistry()
	sr := NewStatementRegistry(reg, 2)
	sr.Record("A", time.Millisecond, 0, 0, 0)
	sr.Record("B", time.Millisecond, 0, 0, 0)
	sr.Record("C", time.Millisecond, 0, 0, 0) // over the cap: dropped
	sr.Record("A", time.Millisecond, 0, 0, 0) // existing entries still record
	if n := len(sr.Snapshot()); n != 2 {
		t.Fatalf("tracked fingerprints = %d, want cap 2", n)
	}
	if v := reg.Counter("predator_statements_overflow_total").Value(); v != 1 {
		t.Fatalf("overflow counter = %d, want 1", v)
	}
	for _, s := range sr.Snapshot() {
		if s.Fingerprint == "A" && s.Calls != 2 {
			t.Fatalf("capped registry stopped recording existing entry: calls=%d", s.Calls)
		}
	}
}
