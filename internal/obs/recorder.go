package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// The metrics time-series recorder is the flight recorder's third
// section: it snapshots the whole metrics registry on an interval into
// a bounded ring, so a post-mortem dump shows not just the state at
// the incident but the minutes leading up to it. Dumps are served at
// /debug/flightrecorder and written on SIGQUIT by predator-server.

// MetricsSample is one point-in-time copy of the registry.
type MetricsSample struct {
	At    time.Time `json:"at"`
	Stats []Stat    `json:"stats"`
}

// defaultRecorderCap bounds the metrics-history ring: at the default
// 10s interval it covers the last ~40 minutes.
const defaultRecorderCap = 240

// Recorder periodically samples a Registry into a ring.
type Recorder struct {
	reg *Registry

	mu      sync.Mutex
	ring    []MetricsSample
	cap     int
	next    int
	stop    chan struct{}
	running bool
}

// Flight is the process-wide metrics recorder over Default.
var Flight = NewRecorder(Default, defaultRecorderCap)

// NewRecorder builds a recorder keeping the last capacity samples of
// reg (<=0 uses the default).
func NewRecorder(reg *Registry, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = defaultRecorderCap
	}
	return &Recorder{reg: reg, ring: make([]MetricsSample, 0, capacity), cap: capacity}
}

// Start launches the sampling loop (idempotent; interval <= 0 uses
// 10s). Stop ends it.
func (rc *Recorder) Start(interval time.Duration) {
	if rc == nil {
		return
	}
	if interval <= 0 {
		interval = 10 * time.Second
	}
	rc.mu.Lock()
	if rc.running {
		rc.mu.Unlock()
		return
	}
	rc.running = true
	stop := make(chan struct{})
	rc.stop = stop
	rc.mu.Unlock()
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				rc.Sample()
			}
		}
	}()
}

// Stop ends the sampling loop (idempotent).
func (rc *Recorder) Stop() {
	if rc == nil {
		return
	}
	rc.mu.Lock()
	if rc.running {
		close(rc.stop)
		rc.running = false
	}
	rc.mu.Unlock()
}

// Sample takes one registry snapshot now (the loop's body; also useful
// directly in tests and just before a dump).
func (rc *Recorder) Sample() {
	if rc == nil || !recording.Load() {
		return
	}
	s := MetricsSample{At: time.Now(), Stats: rc.reg.Dump()}
	rc.mu.Lock()
	if len(rc.ring) < rc.cap {
		rc.ring = append(rc.ring, s)
	} else {
		rc.ring[rc.next] = s
	}
	rc.next = (rc.next + 1) % rc.cap
	rc.mu.Unlock()
}

// Snapshots copies the retained samples, oldest first.
func (rc *Recorder) Snapshots() []MetricsSample {
	if rc == nil {
		return nil
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	out := make([]MetricsSample, 0, len(rc.ring))
	for i := 0; i < len(rc.ring); i++ {
		idx := (rc.next + i) % len(rc.ring)
		if len(rc.ring) < rc.cap {
			idx = i
		}
		out = append(out, rc.ring[idx])
	}
	return out
}

// FlightDump is a complete post-mortem snapshot: what is running right
// now, what ran recently, and what the metrics looked like over the
// recorded window.
type FlightDump struct {
	TakenAt     time.Time       `json:"taken_at"`
	ProcessList []ExecutionInfo `json:"processlist"`
	History     []QueryRecord   `json:"history"`
	Metrics     []MetricsSample `json:"metrics"`
}

// CaptureFlight assembles a dump from the process-wide flight-recorder
// state (Live, History, Flight), sampling the registry once so the
// dump always carries current metrics even if the loop never ran.
func CaptureFlight() FlightDump {
	Flight.Sample()
	return FlightDump{
		TakenAt:     time.Now(),
		ProcessList: Live.Snapshot(),
		History:     History.Snapshot(),
		Metrics:     Flight.Snapshots(),
	}
}

// WriteFlightDump writes the current flight-recorder state as indented
// JSON (the /debug/flightrecorder and SIGQUIT payload).
func WriteFlightDump(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(CaptureFlight())
}
