package obs

import (
	"log/slog"
	"os"
	"sync/atomic"
)

// The process-wide structured logger: the engine's startup/recovery
// notices, executor supervision events and the slow-query log all share
// it (and therefore one handler/format). Defaults to slog text on
// stderr; embedding programs swap it with SetLogger.
var logger atomic.Pointer[slog.Logger]

func init() {
	logger.Store(slog.New(slog.NewTextHandler(os.Stderr, nil)))
}

// Logger returns the shared structured logger. Never nil.
func Logger() *slog.Logger { return logger.Load() }

// SetLogger replaces the shared structured logger (nil restores the
// default stderr text handler).
func SetLogger(l *slog.Logger) {
	if l == nil {
		l = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	logger.Store(l)
}
