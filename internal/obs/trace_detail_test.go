package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"
)

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("phase")
	time.Sleep(time.Millisecond)
	sp.End()
	first := sp.Duration()
	if first <= 0 {
		t.Fatalf("duration after End = %v, want > 0", first)
	}
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if got := sp.Duration(); got != first {
		t.Fatalf("second End changed duration: %v != %v", got, first)
	}
}

func TestRenderMarksOpenSpans(t *testing.T) {
	tr := NewTrace()
	tr.Start("stuck")
	done := tr.Start("done")
	done.End()
	out := tr.Render()
	if !strings.Contains(out, "stuck: (running)") {
		t.Fatalf("Render missing open-span marker:\n%s", out)
	}
	if strings.Contains(out, "done: (running)") {
		t.Fatalf("Render marked an ended span as running:\n%s", out)
	}
	if !strings.Contains(tr.Summary(), "stuck=(running)") {
		t.Fatalf("Summary missing open-span marker: %q", tr.Summary())
	}
}

func TestMergeRemapsSpanIDs(t *testing.T) {
	tr := NewTrace()
	tr.EnableDetail()
	local := tr.Start("parent-side") // occupies ID 1 in the parent's space
	local.End()

	// Child-local IDs deliberately collide with the parent's.
	recs := []SpanRecord{
		{ID: 1, Parent: 0, Name: "child/invoke", Dur: 5 * time.Millisecond},
		{ID: 2, Parent: 1, Name: "child/vm_exec", Dur: 2 * time.Millisecond},
		{ID: 3, Parent: 99, Name: "child/orphan", Dur: time.Millisecond},
	}
	tr.Merge(recs, 4242)

	spans := tr.Spans()
	byName := map[string]SpanRecord{}
	for _, r := range spans {
		byName[r.Name] = r
	}
	inv, vm, orphan := byName["child/invoke"], byName["child/vm_exec"], byName["child/orphan"]
	if inv.ID == 1 {
		t.Fatalf("merged span kept child-local ID 1; want remapped")
	}
	if vm.Parent != inv.ID {
		t.Fatalf("child/vm_exec parent = %d, want remapped invoke ID %d", vm.Parent, inv.ID)
	}
	if orphan.Parent != 0 {
		t.Fatalf("unmapped parent should remap to 0, got %d", orphan.Parent)
	}
	for _, r := range []SpanRecord{inv, vm, orphan} {
		if r.PID != 4242 {
			t.Fatalf("merged span %q PID = %d, want 4242", r.Name, r.PID)
		}
	}
	// Merged spans also count into the events aggregate.
	var sawInvoke bool
	for _, ev := range tr.Events() {
		if ev.Name == "child/invoke" && ev.Count == 1 && ev.Total == 5*time.Millisecond {
			sawInvoke = true
		}
	}
	if !sawInvoke {
		t.Fatalf("merged span missing from events: %+v", tr.Events())
	}
}

func TestAddSpanRequiresDetail(t *testing.T) {
	tr := NewTrace()
	if id := tr.AddSpan(SpanRecord{Name: "batch/window"}); id != 0 {
		t.Fatalf("AddSpan on non-detailed trace returned %d, want 0", id)
	}
	if n := len(tr.Spans()); n != 0 {
		t.Fatalf("non-detailed trace retained %d spans", n)
	}
	tr.EnableDetail()
	if id := tr.AddSpan(SpanRecord{Name: "batch/window"}); id == 0 {
		t.Fatal("AddSpan on detailed trace returned 0")
	}
}

func TestWriteChromeCrossProcess(t *testing.T) {
	tr := NewTrace()
	tr.EnableDetail()
	sp := tr.Start("execute")
	sp.End()
	tr.Merge([]SpanRecord{
		{ID: 1, Name: "child/invoke", Start: time.Now(), Dur: time.Millisecond},
	}, 777)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		Metadata map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("Chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) < 2 {
		t.Fatalf("want >= 2 trace events, got %d", len(doc.TraceEvents))
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q has ph=%q, want complete event \"X\"", ev.Name, ev.Ph)
		}
		pids[ev.PID] = true
	}
	if !pids[os.Getpid()] || !pids[777] {
		t.Fatalf("want events from both processes (self=%d and 777), got pids %v", os.Getpid(), pids)
	}
	if doc.Metadata["trace_id"] == "" {
		t.Fatal("Chrome trace missing trace_id metadata")
	}
}
