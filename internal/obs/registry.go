// Package obs is the observability spine of PREDATOR-Go: a
// dependency-free metrics registry (atomic counters, gauges and
// log-bucketed latency histograms) plus a lightweight per-query span
// tracer. Every layer of the system — storage, executor supervision,
// the query executor, the engine and the server — reports through the
// process-wide Default registry, which is surfaced three ways:
//
//   - SHOW STATS dumps the registry over the wire protocol,
//   - EXPLAIN ANALYZE renders per-operator and per-phase timings,
//   - predator-server -metrics-addr serves Prometheus text format.
//
// Naming scheme: metrics are prefixed "predator_<layer>_", use
// Prometheus conventions (_total for counters, _seconds for latency
// histograms) and identify sub-series with labels, e.g.
// predator_udf_invoke_seconds{design="IC++"}.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (it may go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add applies a delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates durations into logarithmic buckets: bucket i
// covers durations up to 1µs·2^i, doubling from 1µs to ~67s, with a
// final +Inf bucket for anything larger. Zero and negative observations
// land in the first bucket; the layout is fixed so Observe is a single
// atomic add with no allocation.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
}

// histBuckets is 27 finite buckets (1µs<<0 .. 1µs<<26 ≈ 67s) plus +Inf.
const histBuckets = 28

// histUpper returns the upper bound of finite bucket i.
func histUpper(i int) time.Duration { return time.Microsecond << i }

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	for i := 0; i < histBuckets-1; i++ {
		if d <= histUpper(i) {
			return i
		}
	}
	return histBuckets - 1 // +Inf
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	if d > 0 {
		h.sumNS.Add(int64(d))
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNS.Load()) }

// Mean returns the average observed duration (0 with no observations).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket
// boundaries: it returns the upper bound of the bucket holding the
// q·count-th observation, which over-estimates by at most one doubling.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			if i == histBuckets-1 {
				// +Inf bucket: report the largest finite bound.
				return histUpper(histBuckets - 2)
			}
			return histUpper(i)
		}
	}
	return histUpper(histBuckets - 2)
}

// snapshot copies the bucket counts (cumulative, Prometheus-style).
func (h *Histogram) cumulative() [histBuckets]int64 {
	var out [histBuckets]int64
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// ValueHistogram accumulates dimensionless counts (batch sizes, row
// counts) into power-of-two buckets: bucket i covers values up to 2^i,
// from 1 to 2^19, with a final +Inf bucket. Like Histogram, Observe is
// a single atomic add with no allocation.
type ValueHistogram struct {
	buckets [vhistBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// vhistBuckets is 20 finite buckets (1 .. 2^19 = 524288) plus +Inf.
const vhistBuckets = 21

// vhistUpper returns the upper bound of finite bucket i.
func vhistUpper(i int) int64 { return 1 << i }

// Observe records one value.
func (h *ValueHistogram) Observe(v int64) {
	i := 0
	for i < vhistBuckets-1 && v > vhistUpper(i) {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the number of observations.
func (h *ValueHistogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *ValueHistogram) Sum() int64 { return h.sum.Load() }

// Mean returns the average observed value (0 with no observations).
func (h *ValueHistogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// cumulative copies the bucket counts (cumulative, Prometheus-style).
func (h *ValueHistogram) cumulative() [vhistBuckets]int64 {
	var out [vhistBuckets]int64
	var cum int64
	for i := 0; i < vhistBuckets; i++ {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}

// metricKind distinguishes registry entries for rendering.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindValueHistogram
)

// entry is one registered metric instance (a base name + label set).
type entry struct {
	name   string // base metric name
	labels string // canonical rendered labels: `k="v",k2="v2"` or ""
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
	vh     *ValueHistogram
}

// id is the full identity used as the map key and SHOW STATS name.
func (e *entry) id() string {
	if e.labels == "" {
		return e.name
	}
	return e.name + "{" + e.labels + "}"
}

// Registry is a named collection of metrics. All methods are safe for
// concurrent use; metric handles are cached and stable, so hot paths
// should resolve them once and keep the pointer.
type Registry struct {
	mu      sync.RWMutex
	entries map[string]*entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// Default is the process-wide registry every layer reports into
// (mirroring how supervision counters were already process-global).
var Default = NewRegistry()

// renderLabels canonicalizes k,v pairs: sorted, escaped, `k="v"` form.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		labels = append(labels, "")
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(labels[i+1])
		pairs = append(pairs, fmt.Sprintf(`%s=%q`, labels[i], v))
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ",")
}

// lookup finds or creates the entry for (name, labels, kind).
func (r *Registry) lookup(name string, kind metricKind, labels []string) *entry {
	e := &entry{name: name, labels: renderLabels(labels), kind: kind}
	key := e.id()
	r.mu.RLock()
	got, ok := r.entries[key]
	r.mu.RUnlock()
	if ok {
		return got
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if got, ok := r.entries[key]; ok {
		return got
	}
	switch kind {
	case kindCounter:
		e.c = &Counter{}
	case kindGauge:
		e.g = &Gauge{}
	case kindHistogram:
		e.h = &Histogram{}
	case kindValueHistogram:
		e.vh = &ValueHistogram{}
	}
	r.entries[key] = e
	return e
}

// Counter returns (creating if needed) the counter with the given base
// name and optional k,v label pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	return r.lookup(name, kindCounter, labels).c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	return r.lookup(name, kindGauge, labels).g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.lookup(name, kindHistogram, labels).h
}

// ValueHistogram returns (creating if needed) the named count-valued
// histogram (batch sizes and similar dimensionless distributions).
func (r *Registry) ValueHistogram(name string, labels ...string) *ValueHistogram {
	return r.lookup(name, kindValueHistogram, labels).vh
}

// Stat is one row of a registry dump (SHOW STATS).
type Stat struct {
	Name  string
	Value string
}

// Dump flattens the registry into sorted name/value rows. Histograms
// expand into _count, _sum_seconds, _mean_seconds, _p50_seconds and
// _p99_seconds derived rows.
func (r *Registry) Dump() []Stat {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].id() < entries[j].id() })
	var out []Stat
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			out = append(out, Stat{e.id(), fmt.Sprintf("%d", e.c.Value())})
		case kindGauge:
			out = append(out, Stat{e.id(), fmt.Sprintf("%d", e.g.Value())})
		case kindHistogram:
			derived := func(suffix, val string) Stat {
				name := e.name + suffix
				if e.labels != "" {
					name += "{" + e.labels + "}"
				}
				return Stat{name, val}
			}
			out = append(out,
				derived("_count", fmt.Sprintf("%d", e.h.Count())),
				derived("_sum_seconds", fmt.Sprintf("%.6f", e.h.Sum().Seconds())),
				derived("_mean_seconds", fmt.Sprintf("%.6f", e.h.Mean().Seconds())),
				derived("_p50_seconds", fmt.Sprintf("%.6f", e.h.Quantile(0.50).Seconds())),
				derived("_p99_seconds", fmt.Sprintf("%.6f", e.h.Quantile(0.99).Seconds())),
			)
		case kindValueHistogram:
			derived := func(suffix, val string) Stat {
				name := e.name + suffix
				if e.labels != "" {
					name += "{" + e.labels + "}"
				}
				return Stat{name, val}
			}
			out = append(out,
				derived("_count", fmt.Sprintf("%d", e.vh.Count())),
				derived("_sum", fmt.Sprintf("%d", e.vh.Sum())),
				derived("_mean", fmt.Sprintf("%.2f", e.vh.Mean())),
			)
		}
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	// Group instances of the same base name under one TYPE header.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	var b strings.Builder
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			typ := "counter"
			switch e.kind {
			case kindGauge:
				typ = "gauge"
			case kindHistogram, kindValueHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.name, typ)
			lastName = e.name
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", e.id(), e.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s %d\n", e.id(), e.g.Value())
		case kindHistogram:
			cum := e.h.cumulative()
			for i := 0; i < histBuckets; i++ {
				le := "+Inf"
				if i < histBuckets-1 {
					le = fmt.Sprintf("%g", histUpper(i).Seconds())
				}
				labels := renderLabels([]string{"le", le})
				if e.labels != "" {
					labels = e.labels + "," + labels
				}
				fmt.Fprintf(&b, "%s_bucket{%s} %d\n", e.name, labels, cum[i])
			}
			suffix := ""
			if e.labels != "" {
				suffix = "{" + e.labels + "}"
			}
			fmt.Fprintf(&b, "%s_sum%s %.9f\n", e.name, suffix, e.h.Sum().Seconds())
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, suffix, e.h.Count())
		case kindValueHistogram:
			cum := e.vh.cumulative()
			for i := 0; i < vhistBuckets; i++ {
				le := "+Inf"
				if i < vhistBuckets-1 {
					le = fmt.Sprintf("%d", vhistUpper(i))
				}
				labels := renderLabels([]string{"le", le})
				if e.labels != "" {
					labels = e.labels + "," + labels
				}
				fmt.Fprintf(&b, "%s_bucket{%s} %d\n", e.name, labels, cum[i])
			}
			suffix := ""
			if e.labels != "" {
				suffix = "{" + e.labels + "}"
			}
			fmt.Fprintf(&b, "%s_sum%s %d\n", e.name, suffix, e.vh.Sum())
			fmt.Fprintf(&b, "%s_count%s %d\n", e.name, suffix, e.vh.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
