package obs

import (
	"runtime"
	"sync"
	"time"
)

// Go runtime gauges and the GC pause histogram, refreshed on demand by
// CaptureRuntime (the /metrics handler calls it per scrape, so the
// cost — one ReadMemStats — is paid by the scraper, not the hot path).
var (
	gGoroutines  = Default.Gauge("predator_go_goroutines")
	gHeapAlloc   = Default.Gauge("predator_go_heap_alloc_bytes")
	gHeapSys     = Default.Gauge("predator_go_heap_sys_bytes")
	gHeapObjects = Default.Gauge("predator_go_heap_objects")
	cGCCycles    = Default.Counter("predator_go_gc_cycles_total")
	hGCPause     = Default.Histogram("predator_go_gc_pause_seconds")

	runtimeMu sync.Mutex
	lastNumGC uint32
	lastGCTot int64
)

// CaptureRuntime refreshes the runtime gauges (goroutines, heap) in the
// Default registry and folds GC pauses observed since the previous call
// into the pause histogram.
func CaptureRuntime() {
	runtimeMu.Lock()
	defer runtimeMu.Unlock()
	gGoroutines.Set(int64(runtime.NumGoroutine()))
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gHeapAlloc.Set(int64(ms.HeapAlloc))
	gHeapSys.Set(int64(ms.HeapSys))
	gHeapObjects.Set(int64(ms.HeapObjects))
	cGCCycles.Add(int64(ms.NumGC) - lastGCTot)
	lastGCTot = int64(ms.NumGC)
	// PauseNs is a ring of the last 256 pauses indexed by NumGC; replay
	// only the cycles completed since the previous capture.
	newCycles := ms.NumGC - lastNumGC
	if newCycles > uint32(len(ms.PauseNs)) {
		newCycles = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < newCycles; i++ {
		idx := (ms.NumGC - i + uint32(len(ms.PauseNs)) - 1) % uint32(len(ms.PauseNs))
		hGCPause.Observe(time.Duration(ms.PauseNs[idx]))
	}
	lastNumGC = ms.NumGC
}
