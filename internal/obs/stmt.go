package obs

import (
	"sort"
	"sync"
	"time"
)

// StatementRegistry aggregates per-statement execution statistics keyed
// by normalized query fingerprint — the pg_stat_statements idea. Two
// executions of the same statement shape with different literals land
// in one entry. Entries are backed by metrics in a Registry (latency
// histogram plus rows/crossings/WAL-bytes counters labelled by
// fingerprint), so the /metrics endpoint surfaces them with no extra
// plumbing; Snapshot serves SHOW STATEMENTS.
//
// The fingerprint space is capped: once maxEntries distinct shapes have
// been seen, new shapes count into an overflow counter instead of
// allocating unbounded label cardinality.
type StatementRegistry struct {
	reg        *Registry
	maxEntries int

	mu       sync.Mutex
	entries  map[string]*stmtEntry
	overflow *Counter
}

type stmtEntry struct {
	fingerprint string
	hist        *Histogram
	rows        *Counter
	crossings   *Counter
	walBytes    *Counter
}

// defaultMaxStatements caps distinct fingerprints tracked per process.
const defaultMaxStatements = 500

// Statements is the process-wide statement-statistics registry, backed
// by the Default metrics registry.
var Statements = NewStatementRegistry(Default, defaultMaxStatements)

// NewStatementRegistry builds a statement-statistics registry backed by
// reg, tracking at most maxEntries distinct fingerprints (<=0 uses the
// default cap).
func NewStatementRegistry(reg *Registry, maxEntries int) *StatementRegistry {
	if maxEntries <= 0 {
		maxEntries = defaultMaxStatements
	}
	return &StatementRegistry{
		reg:        reg,
		maxEntries: maxEntries,
		entries:    make(map[string]*stmtEntry),
		overflow:   reg.Counter("predator_statements_overflow_total"),
	}
}

// Record folds one statement execution into its fingerprint's entry.
func (s *StatementRegistry) Record(fingerprint string, d time.Duration, rows, crossings, walBytes int64) {
	if s == nil || fingerprint == "" {
		return
	}
	s.mu.Lock()
	e, ok := s.entries[fingerprint]
	if !ok {
		if len(s.entries) >= s.maxEntries {
			s.mu.Unlock()
			s.overflow.Inc()
			return
		}
		e = &stmtEntry{
			fingerprint: fingerprint,
			hist:        s.reg.Histogram("predator_statement_seconds", "fingerprint", fingerprint),
			rows:        s.reg.Counter("predator_statement_rows_total", "fingerprint", fingerprint),
			crossings:   s.reg.Counter("predator_statement_udf_crossings_total", "fingerprint", fingerprint),
			walBytes:    s.reg.Counter("predator_statement_wal_bytes_total", "fingerprint", fingerprint),
		}
		s.entries[fingerprint] = e
	}
	s.mu.Unlock()
	e.hist.Observe(d)
	e.rows.Add(rows)
	e.crossings.Add(crossings)
	e.walBytes.Add(walBytes)
}

// StatementStat is one fingerprint's aggregate, for SHOW STATEMENTS.
type StatementStat struct {
	Fingerprint string
	Calls       int64
	Total       time.Duration
	Mean        time.Duration
	P50         time.Duration
	P99         time.Duration
	Rows        int64
	Crossings   int64
	WALBytes    int64
}

// Snapshot returns every tracked fingerprint's aggregate, sorted by
// total time descending (the shapes that dominate come first).
func (s *StatementRegistry) Snapshot() []StatementStat {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	entries := make([]*stmtEntry, 0, len(s.entries))
	for _, e := range s.entries {
		entries = append(entries, e)
	}
	s.mu.Unlock()
	out := make([]StatementStat, 0, len(entries))
	for _, e := range entries {
		out = append(out, StatementStat{
			Fingerprint: e.fingerprint,
			Calls:       e.hist.Count(),
			Total:       e.hist.Sum(),
			Mean:        e.hist.Mean(),
			P50:         e.hist.Quantile(0.50),
			P99:         e.hist.Quantile(0.99),
			Rows:        e.rows.Value(),
			Crossings:   e.crossings.Value(),
			WALBytes:    e.walBytes.Value(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
