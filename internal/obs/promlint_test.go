package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// sampleRe matches one sample line of the text exposition format:
// metric name, optional label set, space, numeric value.
var sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$`)

// lintExposition applies promtool-style checks to a rendered registry:
// every line is a TYPE comment or a well-formed sample, each family has
// exactly one TYPE line that precedes all of its samples, histogram
// buckets are cumulative and end in a +Inf bucket equal to _count, and
// no sample identity repeats.
func lintExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{} // family -> declared type
	familySeen := map[string]bool{}
	seenLine := map[string]bool{}
	type histState struct {
		prev   int64
		le     []string
		counts []int64
		count  int64
		gotCnt bool
	}
	hists := map[string]*histState{} // full series identity (name+shared labels)

	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE comment: %q", ln+1, line)
			}
			fam, typ := parts[2], parts[3]
			if _, dup := typed[fam]; dup {
				t.Fatalf("line %d: duplicate TYPE for family %s", ln+1, fam)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Fatalf("line %d: unknown metric type %q", ln+1, typ)
			}
			if familySeen[fam] {
				t.Fatalf("line %d: TYPE for %s appears after its samples", ln+1, fam)
			}
			typed[fam] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample line: %q", ln+1, line)
		}
		name, labels, valText := m[1], m[2], m[3]
		identity := name + labels
		if seenLine[identity] {
			t.Fatalf("line %d: duplicate sample %s", ln+1, identity)
		}
		seenLine[identity] = true

		fam := name
		suffix := ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(name, s); base != name && typed[base] == "histogram" {
				fam, suffix = base, s
				break
			}
		}
		typ, ok := typed[fam]
		if !ok {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln+1, name)
		}
		familySeen[fam] = true

		if typ != "histogram" {
			continue
		}
		// Histogram families: track bucket monotonicity and the
		// +Inf == _count invariant per labelled series.
		shared := labels
		switch suffix {
		case "_bucket":
			le := ""
			rest := []string{}
			for _, kv := range strings.Split(strings.Trim(labels, "{}"), ",") {
				if v, isLe := strings.CutPrefix(kv, `le="`); isLe {
					le = strings.TrimSuffix(v, `"`)
				} else if kv != "" {
					rest = append(rest, kv)
				}
			}
			if le == "" {
				t.Fatalf("line %d: bucket sample without le label: %q", ln+1, line)
			}
			shared = strings.Join(rest, ",")
			h := hists[fam+"{"+shared+"}"]
			if h == nil {
				h = &histState{}
				hists[fam+"{"+shared+"}"] = h
			}
			v, err := strconv.ParseInt(valText, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", ln+1, valText, err)
			}
			if v < h.prev {
				t.Fatalf("line %d: bucket counts not cumulative: %d after %d", ln+1, v, h.prev)
			}
			if le != "+Inf" {
				if _, err := strconv.ParseFloat(le, 64); err != nil {
					t.Fatalf("line %d: unparsable le=%q", ln+1, le)
				}
			}
			h.prev = v
			h.le = append(h.le, le)
			h.counts = append(h.counts, v)
		case "_count":
			h := hists[fam+"{"+strings.Trim(shared, "{}")+"}"]
			if shared == "" {
				h = hists[fam+"{}"]
			}
			if h == nil {
				t.Fatalf("line %d: %s_count with no buckets", ln+1, fam)
			}
			v, err := strconv.ParseInt(valText, 10, 64)
			if err != nil {
				t.Fatalf("line %d: count value %q: %v", ln+1, valText, err)
			}
			h.count = v
			h.gotCnt = true
		}
	}

	for id, h := range hists {
		if len(h.le) == 0 || h.le[len(h.le)-1] != "+Inf" {
			t.Fatalf("histogram %s: last bucket le=%v, want +Inf", id, h.le)
		}
		if !h.gotCnt {
			t.Fatalf("histogram %s: missing _count sample", id)
		}
		if inf := h.counts[len(h.counts)-1]; inf != h.count {
			t.Fatalf("histogram %s: +Inf bucket %d != _count %d", id, inf, h.count)
		}
	}
	if len(hists) == 0 {
		t.Fatal("lint saw no histogram series; exposition incomplete")
	}
}

func TestPrometheusExpositionLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("lint_requests_total", "verb", "select", "status", "ok").Add(3)
	r.Counter("lint_requests_total", "verb", "insert", "status", "error").Inc()
	r.Gauge("lint_goroutines").Set(12)
	h := r.Histogram("lint_latency_seconds", "verb", "select")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	r.Histogram("lint_latency_seconds", "verb", "insert").Observe(time.Second)
	vh := r.ValueHistogram("lint_batch_rows")
	for _, v := range []int64{1, 8, 64, 100000} {
		vh.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, b.String())
}

// TestDefaultRegistryLint lints the real process-wide registry — the
// exact bytes /metrics serves — after refreshing the runtime gauges.
func TestDefaultRegistryLint(t *testing.T) {
	CaptureRuntime()
	Default.Histogram("predator_stmt_seconds", "verb", "select").Observe(time.Millisecond)
	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, b.String())
}
