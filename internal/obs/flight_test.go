package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExecRegistryLifecycle(t *testing.T) {
	r := NewExecRegistry(NewRegistry())
	x := r.Start(7, "acme", "SELECT 1")
	if x == nil {
		t.Fatal("Start returned nil with recording on")
	}
	if got := r.LiveCount(); got != 1 {
		t.Fatalf("LiveCount = %d, want 1", got)
	}
	x.SetPhase(PhaseExecute)
	x.AddRows(3)
	x.ObserveCrossing(2*time.Millisecond, time.Millisecond)
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(snap))
	}
	info := snap[0]
	if info.ID != x.ID() || info.SessionID != 7 || info.Tenant != "acme" ||
		info.Phase != "execute" || info.Rows != 3 || info.Crossings != 1 ||
		info.ChildCPU != time.Millisecond || info.Query != "SELECT 1" {
		t.Fatalf("snapshot mismatch: %+v", info)
	}
	r.Finish(x)
	if got := r.LiveCount(); got != 0 {
		t.Fatalf("LiveCount after Finish = %d, want 0", got)
	}
}

// TestExecRegistryKillRaceWithCompletion pins the KILL-vs-completion
// contract: a KILL that loses the race to Finish reports not-found and
// must never flag a later statement that happens to reuse nothing (IDs
// are never reused), and a double KILL succeeds twice but counts once.
func TestExecRegistryKillRaceWithCompletion(t *testing.T) {
	reg := NewRegistry()
	r := NewExecRegistry(reg)
	x := r.Start(1, "", "SELECT slow()")
	id := x.ID()

	if !r.Kill(id) {
		t.Fatal("Kill of a live statement reported not-found")
	}
	if !x.Killed() {
		t.Fatal("statement not flagged after Kill")
	}
	if !r.Kill(id) {
		t.Fatal("second Kill of the same live statement should still succeed")
	}
	if got := r.killedTot.Value(); got != 1 {
		t.Fatalf("killed counter = %d, want 1 (idempotent)", got)
	}

	r.Finish(x)
	if r.Kill(id) {
		t.Fatal("Kill after Finish must report not-found")
	}
	// A later statement must be untouched by stale KILLs.
	y := r.Start(1, "", "SELECT 2")
	if y.Killed() {
		t.Fatal("fresh statement inherited a kill flag")
	}
	if y.ID() == id {
		t.Fatal("query ID reused")
	}
	r.Finish(y)
	if got := r.LiveCount(); got != 0 {
		t.Fatalf("leaked registry entries: LiveCount = %d", got)
	}
}

// TestExecRegistryKillConcurrent hammers Kill against Finish from many
// goroutines; under -race this doubles as a data-race check, and the
// invariant is that the registry ends empty with no double-counted
// kills.
func TestExecRegistryKillConcurrent(t *testing.T) {
	r := NewExecRegistry(NewRegistry())
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		x := r.Start(int64(i), "", "q")
		id := x.ID()
		wg.Add(2)
		go func() { defer wg.Done(); r.Kill(id) }()
		go func() { defer wg.Done(); r.Finish(x) }()
	}
	wg.Wait()
	if got := r.LiveCount(); got != 0 {
		t.Fatalf("leaked entries after concurrent kill/finish: %d", got)
	}
}

func TestQueryStoreRingWraparound(t *testing.T) {
	s := NewQueryStore(4)
	for i := 1; i <= 10; i++ {
		s.Add(QueryRecord{ID: uint64(i), Fingerprint: fmt.Sprintf("q%d", i)})
	}
	if got := s.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", got)
	}
	snap := s.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot len = %d, want 4", len(snap))
	}
	// Newest first: 10, 9, 8, 7.
	for i, want := range []uint64{10, 9, 8, 7} {
		if snap[i].ID != want {
			t.Fatalf("snapshot[%d].ID = %d, want %d (order: %+v)", i, snap[i].ID, want, snap)
		}
	}
}

func TestQueryStorePartialFill(t *testing.T) {
	s := NewQueryStore(8)
	s.Add(QueryRecord{ID: 1})
	s.Add(QueryRecord{ID: 2})
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].ID != 2 || snap[1].ID != 1 {
		t.Fatalf("partial-fill snapshot wrong: %+v", snap)
	}
}

func TestRecordingGate(t *testing.T) {
	defer EnableRecording(true)
	EnableRecording(false)
	r := NewExecRegistry(NewRegistry())
	if x := r.Start(1, "", "q"); x != nil {
		t.Fatal("Start must return nil with recording off")
	}
	s := NewQueryStore(4)
	s.Add(QueryRecord{ID: 1})
	if s.Total() != 0 || s.Len() != 0 {
		t.Fatal("query store accepted a record with recording off")
	}
	// Nil-handle methods must all be safe.
	var x *Execution
	x.SetPhase(PhaseExecute)
	x.AddRows(1)
	x.ObserveCrossing(time.Millisecond, 0)
	x.Kill()
	if x.Killed() || x.ID() != 0 || x.Rows() != 0 {
		t.Fatal("nil Execution not inert")
	}
	EnableRecording(true)
	if x := r.Start(1, "", "q"); x == nil {
		t.Fatal("Start returned nil with recording back on")
	} else {
		r.Finish(x)
	}
}

func TestRecorderRing(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("flightrec_test_total").Inc()
	r := NewRecorder(reg, 3)
	for i := 0; i < 5; i++ {
		r.Sample()
	}
	snaps := r.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("Snapshots len = %d, want 3 (capacity)", len(snaps))
	}
	// Oldest first and monotonically non-decreasing timestamps.
	for i := 1; i < len(snaps); i++ {
		if snaps[i].At.Before(snaps[i-1].At) {
			t.Fatalf("samples out of order: %v then %v", snaps[i-1].At, snaps[i].At)
		}
	}
	found := false
	for _, st := range snaps[0].Stats {
		if st.Name == "flightrec_test_total" {
			found = true
		}
	}
	if !found {
		t.Fatal("sample is missing the registry's counter")
	}
}

func TestRecorderStartStop(t *testing.T) {
	r := NewRecorder(NewRegistry(), 8)
	r.Start(time.Millisecond)
	r.Start(time.Millisecond) // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for len(r.Snapshots()) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("recorder goroutine produced no samples")
		}
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
}

// TestFlightDumpEndpoint exercises /metrics and /debug/flightrecorder
// concurrently with live registry churn; under -race this is the
// scrape-safety check, and the JSON must decode into the dump shape.
func TestFlightDumpEndpoint(t *testing.T) {
	mux := httptest.NewServer(FlightHandler())
	defer mux.Close()
	metrics := httptest.NewServer(Handler(Default))
	defer metrics.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			x := Live.Start(int64(i), "loadgen", "SELECT 1")
			x.AddRows(1)
			History.Add(QueryRecord{ID: x.ID(), Duration: time.Millisecond, Status: "ok"})
			Flight.Sample()
			Live.Finish(x)
		}
	}()

	for i := 0; i < 20; i++ {
		for _, url := range []string{mux.URL, metrics.URL} {
			resp, err := mux.Client().Get(url)
			if err != nil {
				t.Fatal(err)
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != 200 {
				t.Fatalf("GET %s: status %d", url, resp.StatusCode)
			}
			if url == mux.URL {
				var dump FlightDump
				if err := json.Unmarshal(body, &dump); err != nil {
					t.Fatalf("flight dump is not valid JSON: %v\n%s", err, body)
				}
				if dump.TakenAt.IsZero() {
					t.Fatal("flight dump missing taken_at")
				}
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestFlightMetricsLint extends the exposition lint to the flight
// recorder's new families: predator_query_* and predator_tenant_*
// must render as well-formed Prometheus text with conventional names.
func TestFlightMetricsLint(t *testing.T) {
	// Touch the families so they exist in the default registry even if
	// no statement ran in this test process.
	x := Live.Start(1, "lint", "SELECT 1")
	Live.Finish(x)
	Default.Counter("predator_tenant_child_cpu_ns_total", "tenant", "lint").Add(1)
	Default.Histogram("predator_stmt_seconds", "verb", "select").Observe(time.Millisecond)

	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	lintExposition(t, text)
	for _, family := range []string{
		"predator_query_live",
		"predator_query_started_total",
		"predator_query_killed_total",
		"predator_tenant_child_cpu_ns_total",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition is missing family %s", family)
		}
	}
	// Naming conventions: counters end in _total; the gauge must not.
	for _, counter := range []string{"predator_query_started_total", "predator_query_killed_total", "predator_tenant_child_cpu_ns_total"} {
		if !strings.HasSuffix(counter, "_total") {
			t.Fatalf("counter %s does not end in _total", counter)
		}
	}
}
