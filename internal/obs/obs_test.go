package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},                // zero lands in the first bucket
		{-time.Second, 0},     // negative clamps to the first bucket
		{1, 0},                // 1ns ≤ 1µs
		{time.Microsecond, 0}, // exactly on the first upper bound
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{histUpper(histBuckets - 2), histBuckets - 2},   // largest finite bound
		{histUpper(histBuckets-2) + 1, histBuckets - 1}, // just past it: +Inf
		{24 * time.Hour, histBuckets - 1},               // way past: +Inf
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(0)            // edge: zero
	h.Observe(-time.Second) // edge: negative (counted, not summed)
	h.Observe(time.Millisecond)
	h.Observe(time.Millisecond)
	h.Observe(48 * time.Hour) // edge: overflow
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	want := 2*time.Millisecond + 48*time.Hour
	if h.Sum() != want {
		t.Fatalf("sum = %v, want %v", h.Sum(), want)
	}
	// The median observation is one of the 1ms ones; the bucket upper
	// bound for 1ms is 1.024ms (1µs<<10).
	if q := h.Quantile(0.5); q != histUpper(10) {
		t.Errorf("p50 = %v, want %v", q, histUpper(10))
	}
	// The max lives in +Inf; Quantile reports the largest finite bound.
	if q := h.Quantile(1.0); q != histUpper(histBuckets-2) {
		t.Errorf("p100 = %v, want %v", q, histUpper(histBuckets-2))
	}
}

func TestValueHistogram(t *testing.T) {
	h := &ValueHistogram{}
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Fatal("empty value histogram should report zeros")
	}
	for _, v := range []int64{1, 2, 8, 8, 256} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 275 {
		t.Fatalf("count=%d sum=%d, want 5/275", h.Count(), h.Sum())
	}
	if got := h.Mean(); got != 55 {
		t.Errorf("mean = %v, want 55", got)
	}
	// Bucket boundaries: 1 lands in bucket 0 (le=1), 2 in bucket 1
	// (le=2), 8s in bucket 3 (le=8), 256 in bucket 8 (le=256).
	cum := h.cumulative()
	for i, want := range map[int]int64{0: 1, 1: 2, 2: 2, 3: 4, 7: 4, 8: 5, vhistBuckets - 1: 5} {
		if cum[i] != want {
			t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], want)
		}
	}
	// Out-of-range values clamp into the +Inf bucket without skewing sum
	// negative.
	h.Observe(1 << 30)
	h.Observe(-3)
	if h.Count() != 7 {
		t.Errorf("count = %d after edge observations, want 7", h.Count())
	}
}

func TestValueHistogramScrape(t *testing.T) {
	r := NewRegistry()
	vh := r.ValueHistogram("predator_test_batch_rows", "design", "IC++")
	vh.Observe(8)
	vh.Observe(64)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		"# TYPE predator_test_batch_rows histogram",
		`predator_test_batch_rows_bucket{design="IC++",le="8"} 1`,
		`predator_test_batch_rows_bucket{design="IC++",le="64"} 2`,
		`predator_test_batch_rows_bucket{design="IC++",le="+Inf"} 2`,
		`predator_test_batch_rows_sum{design="IC++"} 72`,
		`predator_test_batch_rows_count{design="IC++"} 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q\nbody:\n%s", want, body)
		}
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c_total").Inc()
				r.Counter("labeled_total", "k", "v").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h_seconds", "design", "IC++").Observe(time.Duration(i) * time.Microsecond)
				if i%50 == 0 {
					r.Dump()
					r.WritePrometheus(new(strings.Builder))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != 4000 {
		t.Errorf("c_total = %d, want 4000", got)
	}
	if got := r.Histogram("h_seconds", "design", "IC++").Count(); got != 4000 {
		t.Errorf("h_seconds count = %d, want 4000", got)
	}
}

func TestRegistryLabelsCanonical(t *testing.T) {
	r := NewRegistry()
	// Same label set in different order must resolve to the same series.
	a := r.Counter("x_total", "b", "2", "a", "1")
	b := r.Counter("x_total", "a", "1", "b", "2")
	if a != b {
		t.Fatal("label order changed series identity")
	}
	a.Inc()
	stats := r.Dump()
	if len(stats) != 1 || stats[0].Name != `x_total{a="1",b="2"}` || stats[0].Value != "1" {
		t.Fatalf("dump = %+v", stats)
	}
}

func TestMetricsScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("predator_test_requests_total", "verb", "select").Add(7)
	r.Gauge("predator_test_inflight").Set(3)
	r.Histogram("predator_test_latency_seconds").Observe(2 * time.Millisecond)

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE predator_test_requests_total counter",
		`predator_test_requests_total{verb="select"} 7`,
		"# TYPE predator_test_inflight gauge",
		"predator_test_inflight 3",
		"# TYPE predator_test_latency_seconds histogram",
		`predator_test_latency_seconds_bucket{le="+Inf"} 1`,
		"predator_test_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q\nbody:\n%s", want, body)
		}
	}
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	sp := tr.Start("parse")
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Event("udf:f", 2*time.Millisecond)
	tr.Event("udf:f", 4*time.Millisecond)
	if d := tr.SpanDuration("parse"); d < time.Millisecond {
		t.Errorf("parse span %v, want ≥ 1ms", d)
	}
	evs := tr.Events()
	if len(evs) != 1 || evs[0].Count != 2 || evs[0].Total != 6*time.Millisecond {
		t.Fatalf("events = %+v", evs)
	}
	out := tr.Render()
	if !strings.Contains(out, "parse:") || !strings.Contains(out, "udf:f: 2 calls") {
		t.Errorf("render:\n%s", out)
	}
	// A nil trace must be safe everywhere.
	var nilTr *Trace
	nilTr.Event("x", time.Second)
	if nilTr.Render() != "" || nilTr.Events() != nil || nilTr.SpanDuration("x") != 0 {
		t.Error("nil trace misbehaved")
	}
}
