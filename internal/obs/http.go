package obs

import (
	"net/http"
)

// Handler serves the registry in Prometheus text format. It answers
// any path, so it can back a bare listener or be mounted at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Serve starts an HTTP listener on addr exposing the registry at
// /metrics (and at /, for convenience). It returns the error from
// http.ListenAndServe; callers normally run it on its own goroutine.
func Serve(addr string, r *Registry) error {
	mux := http.NewServeMux()
	mux.Handle("/", Handler(r))
	mux.Handle("/metrics", Handler(r))
	return http.ListenAndServe(addr, mux)
}
