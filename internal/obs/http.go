package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in Prometheus text format. It answers
// any path, so it can back a bare listener or be mounted at /metrics.
// Scrapes of the Default registry refresh the runtime gauges first, so
// goroutine/heap/GC-pause series are current per scrape.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == Default {
			CaptureRuntime()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// FlightHandler serves a flight-recorder dump as JSON: the live
// process list, the query-store history and the recorded metrics
// window, in one post-mortem document.
func FlightHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := WriteFlightDump(w); err != nil {
			// Headers are gone; all we can do is log.
			Logger().Warn("flight-recorder dump failed", "component", "obs", "error", err)
		}
	})
}

// Serve starts an HTTP listener on addr exposing the registry at
// /metrics (and at /, for convenience), the flight recorder at
// /debug/flightrecorder, plus the Go profiling endpoints under
// /debug/pprof/ — CPU/heap/goroutine profiles on the same port
// operators already scrape. It returns the error from
// http.ListenAndServe; callers normally run it on its own goroutine.
func Serve(addr string, r *Registry) error {
	mux := http.NewServeMux()
	mux.Handle("/", Handler(r))
	mux.Handle("/metrics", Handler(r))
	mux.Handle("/debug/flightrecorder", FlightHandler())
	RegisterPprof(mux)
	return http.ListenAndServe(addr, mux)
}

// RegisterPprof mounts the net/http/pprof handlers on mux under
// /debug/pprof/ (exported so embedders serving their own mux get the
// same profiling surface).
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
