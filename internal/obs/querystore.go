package obs

import (
	"sync"
	"time"
)

// The query store is the flight recorder's per-execution history: a
// bounded ring of one record per finished statement, newest
// overwriting oldest. Unlike the fingerprint aggregates in Statements,
// each record keeps the individual execution's duration, row and
// crossing counts, WAL bytes and a wait-breakdown — the observed
// per-execution signal an adaptive planner needs, and the answer to
// "what did query X actually spend its time on". Served by
// SHOW HISTORY and included in flight-recorder dumps.

// WaitProfile decomposes one statement's elapsed time into the places
// it can go. Buckets overlap deliberately (crossing wait happens
// inside the execute span; WAL fsync time during commit) — each
// answers its own question and the sum is not the duration.
type WaitProfile struct {
	// Plan is the planner span (parse excluded: it happens before the
	// statement is registered).
	Plan time.Duration `json:"plan_ns"`
	// Exec is the executor span (root-to-leaves row production).
	Exec time.Duration `json:"exec_ns"`
	// CrossingWait is wall time spent inside process-boundary UDF
	// crossings, pipe round trips included.
	CrossingWait time.Duration `json:"crossing_wait_ns"`
	// WALFsync is time forcing the write-ahead log for this statement
	// (approximate under concurrency: the delta of a shared counter).
	WALFsync time.Duration `json:"wal_fsync_ns"`
	// AdmissionWait is time spent queued for an execution slot before
	// the statement started (server -max-queries gate).
	AdmissionWait time.Duration `json:"admission_wait_ns"`
}

// QueryRecord is one finished statement execution.
type QueryRecord struct {
	ID          uint64        `json:"id"`
	SessionID   int64         `json:"session_id"`
	Fingerprint string        `json:"fingerprint,omitempty"`
	Tenant      string        `json:"tenant,omitempty"`
	Query       string        `json:"query,omitempty"`
	Started     time.Time     `json:"started"`
	Duration    time.Duration `json:"duration_ns"`
	Rows        int64         `json:"rows"`
	Crossings   int64         `json:"crossings"`
	ChildCPU    time.Duration `json:"child_cpu_ns"`
	WALBytes    int64         `json:"wal_bytes"`
	Wait        WaitProfile   `json:"wait"`
	// Status is "ok" or the fault class of the statement's error.
	Status string `json:"status"`
}

// defaultQueryStoreCap bounds the per-execution history ring.
const defaultQueryStoreCap = 512

// QueryStore is a fixed-capacity ring of QueryRecords.
type QueryStore struct {
	mu    sync.Mutex
	ring  []QueryRecord
	cap   int
	next  int    // ring index the next record lands in
	total uint64 // records ever added (wraparound-visible)
}

// History is the process-wide query store.
var History = NewQueryStore(defaultQueryStoreCap)

// NewQueryStore builds a query store keeping the last capacity records
// (<=0 uses the default).
func NewQueryStore(capacity int) *QueryStore {
	if capacity <= 0 {
		capacity = defaultQueryStoreCap
	}
	return &QueryStore{ring: make([]QueryRecord, 0, capacity), cap: capacity}
}

// Add appends one finished execution, evicting the oldest record once
// the ring is full. No-op while recording is disabled.
func (s *QueryStore) Add(rec QueryRecord) {
	if s == nil || !recording.Load() {
		return
	}
	s.mu.Lock()
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, rec)
	} else {
		s.ring[s.next] = rec
	}
	s.next = (s.next + 1) % s.cap
	s.total++
	s.mu.Unlock()
}

// Total reports how many records have ever been added (Total minus
// Len is the evicted count).
func (s *QueryStore) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// Len reports how many records are currently retained.
func (s *QueryStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ring)
}

// Snapshot copies the retained records, newest first.
func (s *QueryStore) Snapshot() []QueryRecord {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]QueryRecord, 0, len(s.ring))
	// Walk backwards from the most recently written slot.
	for i := 0; i < len(s.ring); i++ {
		idx := (s.next - 1 - i + len(s.ring)) % len(s.ring)
		out = append(out, s.ring[idx])
	}
	return out
}
