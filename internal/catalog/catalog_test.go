package catalog

import (
	"bytes"
	"path/filepath"
	"testing"

	"predator/internal/storage"
	"predator/internal/types"
)

func openTestCatalog(t *testing.T, path string) (*Catalog, *storage.DiskManager, *storage.BufferPool) {
	t.Helper()
	d, err := storage.OpenDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	bp := storage.NewBufferPool(d, 64)
	c, err := Open(d, bp)
	if err != nil {
		t.Fatal(err)
	}
	return c, d, bp
}

func stockSchema() *types.Schema {
	return types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "type", Kind: types.KindString},
		types.Column{Name: "history", Kind: types.KindBytes},
	)
}

func TestCreateAndLookupTable(t *testing.T) {
	c, d, _ := openTestCatalog(t, filepath.Join(t.TempDir(), "c.db"))
	defer d.Close()
	tbl, err := c.CreateTable("Stocks", stockSchema())
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Heap() == nil {
		t.Fatal("table has no heap file")
	}
	got, ok := c.Table("stocks")
	if !ok || got != tbl {
		t.Error("case-insensitive lookup failed")
	}
	if _, err := c.CreateTable("STOCKS", stockSchema()); err == nil {
		t.Error("duplicate table name should fail")
	}
}

func TestCreateTableValidation(t *testing.T) {
	c, d, _ := openTestCatalog(t, filepath.Join(t.TempDir(), "c.db"))
	defer d.Close()
	if _, err := c.CreateTable("empty", types.NewSchema()); err == nil {
		t.Error("zero-column table should fail")
	}
	dup := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "A", Kind: types.KindInt},
	)
	if _, err := c.CreateTable("dup", dup); err == nil {
		t.Error("duplicate column names should fail")
	}
}

func TestDropTableFreesPages(t *testing.T) {
	c, d, bp := openTestCatalog(t, filepath.Join(t.TempDir(), "c.db"))
	defer d.Close()
	tbl, err := c.CreateTable("t", stockSchema())
	if err != nil {
		t.Fatal(err)
	}
	// Fill several pages, including a large record.
	for i := 0; i < 20; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewString("tech"), types.NewBytes(make([]byte, 2000))}
		rec, err := types.EncodeRow(nil, tbl.Schema, row)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.Heap().Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	big := types.Row{types.NewInt(999), types.NewString("big"), types.NewBytes(make([]byte, 50000))}
	rec, _ := types.EncodeRow(nil, tbl.Schema, big)
	if _, err := tbl.Heap().Insert(rec); err != nil {
		t.Fatal(err)
	}
	pages := d.NumPages()
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Table("t"); ok {
		t.Error("dropped table still visible")
	}
	if err := c.DropTable("t"); err == nil {
		t.Error("dropping a missing table should fail")
	}
	// Freed pages must be reusable: recreating an identical table should
	// not grow the file.
	tbl2, err := c.CreateTable("t2", stockSchema())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewString("tech"), types.NewBytes(make([]byte, 2000))}
		r, _ := types.EncodeRow(nil, tbl2.Schema, row)
		if _, err := tbl2.Heap().Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	if d.NumPages() > pages {
		t.Errorf("pages grew from %d to %d; drop did not free storage", pages, d.NumPages())
	}
	_ = bp
}

func TestCatalogPersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "persist.db")
	c, d, bp := openTestCatalog(t, path)
	tbl, err := c.CreateTable("stocks", stockSchema())
	if err != nil {
		t.Fatal(err)
	}
	row := types.Row{types.NewInt(1), types.NewString("tech"), types.NewBytes([]byte{9, 9})}
	rec, _ := types.EncodeRow(nil, tbl.Schema, row)
	if _, err := tbl.Heap().Insert(rec); err != nil {
		t.Fatal(err)
	}
	fn := &Function{
		Name:     "InvestVal",
		Language: "jaguar",
		ArgKinds: []types.Kind{types.KindBytes},
		Return:   types.KindFloat,
		Code:     []byte{0xCA, 0xFE, 1, 2, 3},
		Owner:    "alice",
	}
	if err := c.PutFunction(fn, true); err != nil {
		t.Fatal(err)
	}
	if err := bp.FlushAll(); err != nil {
		t.Fatal(err)
	}
	d.Close()

	c2, d2, _ := openTestCatalog(t, path)
	defer d2.Close()
	tbl2, ok := c2.Table("stocks")
	if !ok {
		t.Fatal("table lost across reopen")
	}
	if !tbl2.Schema.Equal(stockSchema()) {
		t.Errorf("schema lost: %s", tbl2.Schema)
	}
	sc := tbl2.Heap().Scan()
	if !sc.Next() {
		t.Fatalf("table data lost (err=%v)", sc.Err())
	}
	got, err := types.DecodeRow(sc.Record(), tbl2.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Int != 1 || got[1].Str != "tech" {
		t.Errorf("row corrupted: %s", got)
	}
	f2, ok := c2.Function("investval")
	if !ok {
		t.Fatal("function lost across reopen")
	}
	if f2.Language != "jaguar" || f2.Return != types.KindFloat ||
		len(f2.ArgKinds) != 1 || f2.ArgKinds[0] != types.KindBytes ||
		!bytes.Equal(f2.Code, []byte{0xCA, 0xFE, 1, 2, 3}) || f2.Owner != "alice" {
		t.Errorf("function metadata corrupted: %+v", f2)
	}
}

func TestFunctionReplaceAndDrop(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fn.db")
	c, d, bp := openTestCatalog(t, path)
	f1 := &Function{Name: "f", Language: "jaguar", Return: types.KindInt, Code: []byte{1}}
	if err := c.PutFunction(f1, true); err != nil {
		t.Fatal(err)
	}
	f2 := &Function{Name: "F", Language: "jaguar", Return: types.KindInt, Code: []byte{2}}
	if err := c.PutFunction(f2, true); err != nil {
		t.Fatal(err)
	}
	bp.FlushAll()
	d.Close()

	c2, d2, _ := openTestCatalog(t, path)
	defer d2.Close()
	got, ok := c2.Function("f")
	if !ok || got.Code[0] != 2 {
		t.Fatalf("replacement not persisted: %+v ok=%v", got, ok)
	}
	if len(c2.Functions()) != 1 {
		t.Errorf("expected exactly one function, got %d", len(c2.Functions()))
	}
	if err := c2.DropFunction("F"); err != nil {
		t.Fatal(err)
	}
	if _, ok := c2.Function("f"); ok {
		t.Error("dropped function still visible")
	}
	if err := c2.DropFunction("f"); err == nil {
		t.Error("dropping a missing function should fail")
	}
}

func TestNonPersistentFunction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "np.db")
	c, d, bp := openTestCatalog(t, path)
	native := &Function{Name: "redness", Language: "native", Return: types.KindFloat}
	if err := c.PutFunction(native, false); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Function("redness"); !ok {
		t.Fatal("native function not registered")
	}
	bp.FlushAll()
	d.Close()

	c2, d2, _ := openTestCatalog(t, path)
	defer d2.Close()
	if _, ok := c2.Function("redness"); ok {
		t.Error("non-persistent function should not survive reopen")
	}
}

func TestTablesSorted(t *testing.T) {
	c, d, _ := openTestCatalog(t, filepath.Join(t.TempDir(), "s.db"))
	defer d.Close()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.CreateTable(name, stockSchema()); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.Tables()
	if len(ts) != 3 || ts[0].Name != "alpha" || ts[1].Name != "mid" || ts[2].Name != "zeta" {
		t.Errorf("Tables() not sorted: %v", []string{ts[0].Name, ts[1].Name, ts[2].Name})
	}
}
