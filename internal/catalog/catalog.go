// Package catalog maintains the persistent system catalog of
// PREDATOR-Go: the set of tables (name, schema, heap-file root) and of
// registered user-defined functions. The catalog itself is stored in a
// heap file rooted at a fixed page so it can be recovered on reopen.
package catalog

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"

	"predator/internal/storage"
	"predator/internal/types"
)

// catalogRoot is the page that always holds the head of the catalog
// heap file. It is the first page allocated in a fresh database.
const catalogRoot storage.PageID = 1

// Entry kinds in catalog records.
const (
	entryTable    = 'T'
	entryFunction = 'F'
)

// Table describes a stored relation.
type Table struct {
	Name      string
	Schema    *types.Schema
	FirstPage storage.PageID

	rid  storage.RID
	heap *storage.HeapFile
}

// Heap returns the table's heap file.
func (t *Table) Heap() *storage.HeapFile { return t.heap }

// Function describes a registered UDF. For portable (Jaguar) UDFs the
// verified bytecode is stored in the catalog so the function survives
// server restarts; native UDFs are registered by the embedding program
// at startup and only their signatures are recorded here.
type Function struct {
	Name     string
	Language string // "native" or "jaguar"
	Isolated bool   // true = run out of process (Designs 2/4)
	ArgKinds []types.Kind
	Return   types.Kind
	Code     []byte // Jaguar class bytes; nil for native
	Owner    string // registering principal, for auditing

	rid storage.RID
}

// Catalog is the in-memory view of the persistent catalog.
type Catalog struct {
	mu     sync.RWMutex
	disk   *storage.DiskManager
	pool   *storage.BufferPool
	file   *storage.HeapFile
	tables map[string]*Table    // lower-case name -> table
	funcs  map[string]*Function // lower-case name -> function
}

// Open loads (or initializes) the catalog of the given database.
func Open(disk *storage.DiskManager, pool *storage.BufferPool) (*Catalog, error) {
	c := &Catalog{
		disk:   disk,
		pool:   pool,
		tables: make(map[string]*Table),
		funcs:  make(map[string]*Function),
	}
	if disk.NumPages() <= uint32(catalogRoot) {
		// Fresh database: the first allocation must yield catalogRoot.
		hf, err := storage.CreateHeapFile(disk, pool)
		if err != nil {
			return nil, err
		}
		if hf.FirstPage() != catalogRoot {
			return nil, fmt.Errorf("catalog: expected root page %d, got %d", catalogRoot, hf.FirstPage())
		}
		c.file = hf
		return c, nil
	}
	c.file = storage.OpenHeapFile(disk, pool, catalogRoot)
	sc := c.file.Scan()
	for sc.Next() {
		rec := sc.Record()
		if len(rec) == 0 {
			return nil, fmt.Errorf("catalog: empty catalog record at %s", sc.RID())
		}
		switch rec[0] {
		case entryTable:
			t, err := decodeTable(rec)
			if err != nil {
				return nil, err
			}
			t.rid = sc.RID()
			t.heap = storage.OpenHeapFile(disk, pool, t.FirstPage)
			c.tables[strings.ToLower(t.Name)] = t
		case entryFunction:
			f, err := decodeFunction(rec)
			if err != nil {
				return nil, err
			}
			f.rid = sc.RID()
			c.funcs[strings.ToLower(f.Name)] = f
		default:
			return nil, fmt.Errorf("catalog: unknown catalog entry kind %q", rec[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("catalog: scan: %w", err)
	}
	return c, nil
}

// CreateTable creates a new empty table with the given schema.
func (c *Catalog) CreateTable(name string, schema *types.Schema) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; ok {
		return nil, fmt.Errorf("catalog: table %q already exists", name)
	}
	if schema.Arity() == 0 {
		return nil, fmt.Errorf("catalog: table %q must have at least one column", name)
	}
	seen := make(map[string]bool, schema.Arity())
	for _, col := range schema.Columns {
		lc := strings.ToLower(col.Name)
		if seen[lc] {
			return nil, fmt.Errorf("catalog: duplicate column %q in table %q", col.Name, name)
		}
		seen[lc] = true
	}
	hf, err := storage.CreateHeapFile(c.disk, c.pool)
	if err != nil {
		return nil, err
	}
	t := &Table{Name: name, Schema: schema, FirstPage: hf.FirstPage(), heap: hf}
	rid, err := c.file.Insert(encodeTable(t))
	if err != nil {
		return nil, err
	}
	t.rid = rid
	c.tables[key] = t
	return t, nil
}

// DropTable removes the table and frees its storage.
func (c *Catalog) DropTable(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	t, ok := c.tables[key]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	if _, err := c.file.Delete(t.rid); err != nil {
		return err
	}
	if err := t.heap.Destroy(); err != nil {
		return err
	}
	delete(c.tables, key)
	return nil
}

// Table looks up a table by name (case-insensitive).
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Tables returns all tables sorted by name.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Table, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PutFunction registers (or replaces) a UDF. Functions with persist
// set are written to the catalog heap file and survive reopen.
func (c *Catalog) PutFunction(f *Function, persist bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(f.Name)
	if old, ok := c.funcs[key]; ok && old.rid != (storage.RID{}) {
		if _, err := c.file.Delete(old.rid); err != nil {
			return err
		}
	}
	if persist {
		rid, err := c.file.Insert(encodeFunction(f))
		if err != nil {
			return err
		}
		f.rid = rid
	}
	c.funcs[key] = f
	return nil
}

// DropFunction removes a UDF registration.
func (c *Catalog) DropFunction(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	f, ok := c.funcs[key]
	if !ok {
		return fmt.Errorf("catalog: function %q does not exist", name)
	}
	if f.rid != (storage.RID{}) {
		if _, err := c.file.Delete(f.rid); err != nil {
			return err
		}
	}
	delete(c.funcs, key)
	return nil
}

// Function looks up a UDF by name (case-insensitive).
func (c *Catalog) Function(name string) (*Function, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	f, ok := c.funcs[strings.ToLower(name)]
	return f, ok
}

// Functions returns all registered UDFs sorted by name.
func (c *Catalog) Functions() []*Function {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]*Function, 0, len(c.funcs))
	for _, f := range c.funcs {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Flush persists all dirty pages (catalog and data) and forces them to
// stable storage.
func (c *Catalog) Flush() error {
	if err := c.pool.FlushAll(); err != nil {
		return err
	}
	return c.disk.Sync()
}

// Catalog record encoding

func encodeTable(t *Table) []byte {
	buf := []byte{entryTable}
	buf = appendString(buf, t.Name)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.FirstPage))
	buf = binary.AppendUvarint(buf, uint64(t.Schema.Arity()))
	for _, col := range t.Schema.Columns {
		buf = appendString(buf, col.Name)
		buf = append(buf, byte(col.Kind))
	}
	return buf
}

func decodeTable(rec []byte) (*Table, error) {
	r := reader{buf: rec, off: 1}
	t := &Table{}
	t.Name = r.str()
	t.FirstPage = storage.PageID(r.u32())
	n := int(r.uvarint())
	schema := &types.Schema{Columns: make([]types.Column, 0, n)}
	for i := 0; i < n; i++ {
		name := r.str()
		kind := types.Kind(r.byte())
		schema.Columns = append(schema.Columns, types.Column{Name: name, Kind: kind})
	}
	t.Schema = schema
	if r.err != nil {
		return nil, fmt.Errorf("catalog: corrupt table record: %w", r.err)
	}
	return t, nil
}

func encodeFunction(f *Function) []byte {
	buf := []byte{entryFunction}
	buf = appendString(buf, f.Name)
	buf = appendString(buf, f.Language)
	if f.Isolated {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.ArgKinds)))
	for _, k := range f.ArgKinds {
		buf = append(buf, byte(k))
	}
	buf = append(buf, byte(f.Return))
	buf = appendString(buf, f.Owner)
	buf = binary.AppendUvarint(buf, uint64(len(f.Code)))
	buf = append(buf, f.Code...)
	return buf
}

func decodeFunction(rec []byte) (*Function, error) {
	r := reader{buf: rec, off: 1}
	f := &Function{}
	f.Name = r.str()
	f.Language = r.str()
	f.Isolated = r.byte() != 0
	n := int(r.uvarint())
	f.ArgKinds = make([]types.Kind, n)
	for i := 0; i < n; i++ {
		f.ArgKinds[i] = types.Kind(r.byte())
	}
	f.Return = types.Kind(r.byte())
	f.Owner = r.str()
	codeLen := int(r.uvarint())
	f.Code = r.bytes(codeLen)
	if r.err != nil {
		return nil, fmt.Errorf("catalog: corrupt function record: %w", r.err)
	}
	return f, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// reader is a tiny cursor used to decode catalog records.
type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at offset %d", r.off)
	}
}

func (r *reader) byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *reader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

func (r *reader) str() string {
	n := int(r.uvarint())
	if r.err != nil || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}
