// Package sql implements the SQL dialect of PREDATOR-Go: lexer, AST
// and recursive-descent parser for the statement forms the engine
// supports, including the extensibility DDL (CREATE FUNCTION) that
// registers Jaguar UDFs from SQL.
package sql

import (
	"fmt"
	"strings"

	"predator/internal/types"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmtNode() }

// CreateTable is CREATE TABLE name (col TYPE, ...).
type CreateTable struct {
	Name    string
	Columns []types.Column
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

// Insert is INSERT INTO name VALUES (...), (...).
type Insert struct {
	Table string
	Rows  [][]Expr
}

// Select is a SELECT query.
type Select struct {
	// Items are the projection list; a single Star item means "*".
	Items   []SelectItem
	From    []TableRef
	Joins   []Join
	Where   Expr // may be nil
	GroupBy []Expr
	Having  Expr // may be nil
	OrderBy []OrderItem
	Limit   int64 // -1 = no limit
}

// SelectItem is one projection expression with an optional alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// TableRef is a table in the FROM list with an optional alias.
type TableRef struct {
	Table string
	Alias string
}

// Join is an explicit JOIN clause attached to the FROM list.
type Join struct {
	Table TableRef
	On    Expr // may be nil (cross join)
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// CreateFunction is the extensibility DDL:
//
//	CREATE FUNCTION name(T1, T2, ...) RETURNS T
//	    LANGUAGE JAGUAR [ISOLATED] AS 'source text'
//
// The function body is Jaguar source; it is compiled, verified and
// registered (persistently) by the engine.
type CreateFunction struct {
	Name     string
	Args     []types.Kind
	Return   types.Kind
	Language string // "jaguar"
	Isolated bool
	Body     string
	Replace  bool // CREATE OR REPLACE
}

// DropFunction is DROP FUNCTION name.
type DropFunction struct {
	Name string
}

// Show is SHOW TABLES | SHOW FUNCTIONS.
type Show struct {
	What string // "tables", "functions" or "stats"
}

// Set is a session variable assignment:
//
//	SET STATEMENT_TIMEOUT = 250      -- milliseconds
//	SET STATEMENT_TIMEOUT = '2s'     -- duration string
//	SET STATEMENT_TIMEOUT = 0        -- disable
//
// Name is lower-cased; Value is a literal expression.
type Set struct {
	Name  string
	Value Expr
}

// Checkpoint is the CHECKPOINT statement: flush all dirty pages and
// truncate the write-ahead log.
type Checkpoint struct{}

// Backup is BACKUP TO 'dir': take a consistent online base backup
// (data-file snapshot under a checkpoint fence plus manifest) into the
// named directory while writers continue. Requires WAL archiving.
type Backup struct {
	Dir string
}

// Kill is KILL <query-id>: ask the flight recorder to cancel the
// identified in-flight statement at its next between-rows check.
type Kill struct {
	ID int64
}

// Explain wraps a SELECT to print its plan.
type Explain struct {
	Query *Select
	// Analyze makes EXPLAIN execute the query and report actual
	// per-operator row counts and wall time (EXPLAIN ANALYZE).
	Analyze bool
}

// Delete is DELETE FROM name [WHERE cond].
type Delete struct {
	Table string
	Where Expr // may be nil
}

// Update is UPDATE name SET col = expr, ... [WHERE cond].
type Update struct {
	Table string
	Sets  []SetClause
	Where Expr // may be nil
}

// SetClause is one col = expr assignment in an UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

func (*CreateTable) stmtNode()    {}
func (*DropTable) stmtNode()      {}
func (*Insert) stmtNode()         {}
func (*Select) stmtNode()         {}
func (*CreateFunction) stmtNode() {}
func (*DropFunction) stmtNode()   {}
func (*Show) stmtNode()           {}
func (*Explain) stmtNode()        {}
func (*Delete) stmtNode()         {}
func (*Update) stmtNode()         {}
func (*Set) stmtNode()            {}
func (*Checkpoint) stmtNode()     {}
func (*Backup) stmtNode()         {}
func (*Kill) stmtNode()           {}

// Expr is an unbound (pre-name-resolution) SQL expression.
type Expr interface {
	exprNode()
	String() string
}

// Literal is a constant value (INT, FLOAT, STRING, BYTES, BOOL or NULL).
type Literal struct {
	Value types.Value
}

// ColumnRef references a column, optionally qualified by table/alias.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

// BinaryExpr is a binary operation. Op is one of:
// + - * / % = <> < <= > >= AND OR
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// UnaryExpr is -x or NOT x.
type UnaryExpr struct {
	Op string // "-" or "NOT"
	X  Expr
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X      Expr
	Negate bool
}

// FuncCall is a scalar function call: a built-in or a registered UDF.
type FuncCall struct {
	Name string
	Args []Expr
	// Star marks COUNT(*).
	Star bool
}

func (*Literal) exprNode()    {}
func (*ColumnRef) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*IsNull) exprNode()     {}
func (*FuncCall) exprNode()   {}

// String renders expressions in SQL-ish syntax for plans and errors.

func (l *Literal) String() string { return l.Value.String() }

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Column
	}
	return c.Column
}

func (b *BinaryExpr) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", u.X)
	}
	return fmt.Sprintf("(-%s)", u.X)
}

func (i *IsNull) String() string {
	if i.Negate {
		return fmt.Sprintf("(%s IS NOT NULL)", i.X)
	}
	return fmt.Sprintf("(%s IS NULL)", i.X)
}

func (f *FuncCall) String() string {
	if f.Star {
		return strings.ToUpper(f.Name) + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}
