package sql

import "testing"

func TestNormalizeFingerprint(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{
			"select price from stocks where id < 10",
			"SELECT price FROM stocks WHERE id < ?",
		},
		{
			"SELECT   price\n\tFROM stocks WHERE id < 99",
			"SELECT price FROM stocks WHERE id < ?",
		},
		{
			"insert into t values (1, 2.5, 'abc')",
			"INSERT INTO t VALUES ( ? , ? , ? )",
		},
		{
			"-- comment\nselect 1",
			"SELECT ?",
		},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// Executions differing only in literals must share one fingerprint;
// different shapes must not.
func TestNormalizeAggregatesLiterals(t *testing.T) {
	a := Normalize("SELECT price FROM stocks WHERE id < 1")
	b := Normalize("select price from stocks where id < 2000")
	if a != b {
		t.Fatalf("literal variants split: %q vs %q", a, b)
	}
	c := Normalize("SELECT sym FROM stocks WHERE id < 1")
	if a == c {
		t.Fatalf("distinct shapes collapsed: %q", a)
	}
}

func TestNormalizeUnlexable(t *testing.T) {
	// An unterminated string does not lex; the fallback collapses
	// whitespace so even broken statements fingerprint deterministically.
	got := Normalize("select  'oops\n from t")
	if got != "select 'oops from t" {
		t.Fatalf("fallback fingerprint = %q", got)
	}
}
