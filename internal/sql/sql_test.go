package sql

import (
	"strings"
	"testing"
	"testing/quick"

	"predator/internal/types"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateTable(t *testing.T) {
	stmt := mustParse(t, `CREATE TABLE stocks (id INT, sym STRING, price FLOAT, hist BYTES, live BOOL)`)
	ct, ok := stmt.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if ct.Name != "stocks" || len(ct.Columns) != 5 {
		t.Fatalf("ct = %+v", ct)
	}
	want := []types.Kind{types.KindInt, types.KindString, types.KindFloat, types.KindBytes, types.KindBool}
	for i, k := range want {
		if ct.Columns[i].Kind != k {
			t.Errorf("col %d kind = %s, want %s", i, ct.Columns[i].Kind, k)
		}
	}
}

func TestParseInsertMultiRow(t *testing.T) {
	stmt := mustParse(t, `INSERT INTO t VALUES (1, 'a', X'FF00', NULL, TRUE), (2, 'b''c', X'', 1.5, FALSE)`)
	ins := stmt.(*Insert)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Rows[0]) != 5 {
		t.Fatalf("ins = %+v", ins)
	}
	lit := ins.Rows[0][2].(*Literal)
	if lit.Value.Kind != types.KindBytes || len(lit.Value.Bytes) != 2 || lit.Value.Bytes[0] != 0xFF {
		t.Errorf("hex literal = %v", lit.Value)
	}
	esc := ins.Rows[1][1].(*Literal)
	if esc.Value.Str != "b'c" {
		t.Errorf("escaped string = %q", esc.Value.Str)
	}
	if !ins.Rows[0][3].(*Literal).Value.IsNull() {
		t.Error("NULL literal lost")
	}
	if !ins.Rows[0][4].(*Literal).Value.Bool {
		t.Error("TRUE literal lost")
	}
}

func TestParseSelectFull(t *testing.T) {
	stmt := mustParse(t, `
		SELECT s.sym, COUNT(*) AS n, AVG(s.price) avgp
		FROM stocks s JOIN sectors c ON s.type = c.name
		WHERE s.price > 10 AND NOT (s.sym = 'X') OR s.price IS NOT NULL
		GROUP BY s.sym
		HAVING COUNT(*) > 1
		ORDER BY n DESC, s.sym ASC
		LIMIT 10`)
	sel := stmt.(*Select)
	if len(sel.Items) != 3 || sel.Items[1].Alias != "n" || sel.Items[2].Alias != "avgp" {
		t.Errorf("items = %+v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Alias != "s" {
		t.Errorf("from = %+v", sel.From)
	}
	if len(sel.Joins) != 1 || sel.Joins[0].Table.Alias != "c" || sel.Joins[0].On == nil {
		t.Errorf("joins = %+v", sel.Joins)
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("where/group/having missing")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("orderby = %+v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr(`a + b * c - d`)
	if err != nil {
		t.Fatal(err)
	}
	if got := e.String(); got != "((a + (b * c)) - d)" {
		t.Errorf("precedence = %s", got)
	}
	e, _ = ParseExpr(`a = 1 AND b = 2 OR c = 3`)
	if got := e.String(); got != "(((a = 1) AND (b = 2)) OR (c = 3))" {
		t.Errorf("logic precedence = %s", got)
	}
	e, _ = ParseExpr(`NOT a = 1`)
	if got := e.String(); got != "(NOT (a = 1))" {
		t.Errorf("NOT binds loosest of the three = %s", got)
	}
	e, _ = ParseExpr(`-a * b`)
	if got := e.String(); got != "((-a) * b)" {
		t.Errorf("unary minus = %s", got)
	}
	e, _ = ParseExpr(`(a + b) * c`)
	if got := e.String(); got != "((a + b) * c)" {
		t.Errorf("parens = %s", got)
	}
}

func TestParseOperatorSpellings(t *testing.T) {
	for _, src := range []string{`a <> b`, `a != b`} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if e.(*BinaryExpr).Op != "<>" {
			t.Errorf("%s parsed as %s", src, e.(*BinaryExpr).Op)
		}
	}
}

func TestParseCreateFunction(t *testing.T) {
	stmt := mustParse(t, `CREATE OR REPLACE FUNCTION f(h BYTES, n INT) RETURNS FLOAT
		LANGUAGE jaguar ISOLATED AS $$ func f(h bytes, n int) float { return 1.0; } $$`)
	cf := stmt.(*CreateFunction)
	if cf.Name != "f" || !cf.Replace || !cf.Isolated || cf.Language != "jaguar" {
		t.Errorf("cf = %+v", cf)
	}
	if len(cf.Args) != 2 || cf.Args[0] != types.KindBytes || cf.Return != types.KindFloat {
		t.Errorf("signature = %v -> %v", cf.Args, cf.Return)
	}
	if !strings.Contains(cf.Body, "func f") {
		t.Errorf("body = %q", cf.Body)
	}
	// Quoted-string bodies with '' escaping also work.
	stmt = mustParse(t, `CREATE FUNCTION g() RETURNS INT LANGUAGE jaguar AS 'func g() int { log(''hi''); return 0; }'`)
	cf = stmt.(*CreateFunction)
	if !strings.Contains(cf.Body, "log('hi')") {
		t.Errorf("body = %q", cf.Body)
	}
}

func TestParseDeleteShowExplainDrop(t *testing.T) {
	d := mustParse(t, `DELETE FROM t WHERE x > 1`).(*Delete)
	if d.Table != "t" || d.Where == nil {
		t.Errorf("delete = %+v", d)
	}
	d = mustParse(t, `DELETE FROM t`).(*Delete)
	if d.Where != nil {
		t.Error("where should be nil")
	}
	s := mustParse(t, `SHOW TABLES`).(*Show)
	if s.What != "tables" {
		t.Errorf("show = %+v", s)
	}
	s = mustParse(t, `SHOW FUNCTIONS;`).(*Show)
	if s.What != "functions" {
		t.Errorf("show = %+v", s)
	}
	ex := mustParse(t, `EXPLAIN SELECT * FROM t`).(*Explain)
	if len(ex.Query.Items) != 1 || !ex.Query.Items[0].Star {
		t.Errorf("explain = %+v", ex.Query)
	}
	if _, ok := mustParse(t, `DROP TABLE t`).(*DropTable); !ok {
		t.Error("drop table")
	}
	if _, ok := mustParse(t, `DROP FUNCTION f`).(*DropFunction); !ok {
		t.Error("drop function")
	}
}

func TestParseBackupAndShowStorage(t *testing.T) {
	b := mustParse(t, `BACKUP TO '/backups/monday'`).(*Backup)
	if b.Dir != "/backups/monday" {
		t.Errorf("backup = %+v", b)
	}
	if _, err := Parse(`BACKUP TO`); err == nil {
		t.Error("BACKUP TO without a directory should fail")
	}
	if _, err := Parse(`BACKUP TO ''`); err == nil {
		t.Error("BACKUP TO with an empty directory should fail")
	}
	if _, err := Parse(`BACKUP '/x'`); err == nil {
		t.Error("BACKUP without TO should fail")
	}
	s := mustParse(t, `SHOW STORAGE;`).(*Show)
	if s.What != "storage" {
		t.Errorf("show = %+v", s)
	}
}

func TestParseCheckpoint(t *testing.T) {
	if _, ok := mustParse(t, `CHECKPOINT`).(*Checkpoint); !ok {
		t.Error("checkpoint")
	}
	if _, ok := mustParse(t, `checkpoint;`).(*Checkpoint); !ok {
		t.Error("checkpoint lower-case with terminator")
	}
	if _, err := Parse(`CHECKPOINT extra`); err == nil {
		t.Error("trailing tokens after CHECKPOINT should fail")
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	stmt := mustParse(t, `
		-- leading comment
		SELECT x -- trailing comment
		FROM t -- another
	`)
	if _, ok := stmt.(*Select); !ok {
		t.Errorf("got %T", stmt)
	}
}

func TestParseCountStar(t *testing.T) {
	sel := mustParse(t, `SELECT COUNT(*), SUM(x) FROM t`).(*Select)
	fc := sel.Items[0].Expr.(*FuncCall)
	if !fc.Star || !strings.EqualFold(fc.Name, "count") {
		t.Errorf("count(*) = %+v", fc)
	}
}

func TestParseErrorsSQL(t *testing.T) {
	cases := []string{
		``,
		`SELEC * FROM t`,
		`SELECT`,
		`SELECT * FROM`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t LIMIT -1`,
		`SELECT * FROM t LIMIT x`,
		`CREATE TABLE t`,
		`CREATE TABLE t ()`,
		`CREATE TABLE t (x POINT)`,
		`CREATE OR REPLACE TABLE t (x INT)`,
		`CREATE FUNCTION f() RETURNS INT LANGUAGE jaguar AS 42`,
		`INSERT INTO t (1)`,
		`INSERT INTO t VALUES 1`,
		`DROP t`,
		`SHOW COLUMNS`,
		`SELECT * FROM t; extra`,
		`SELECT 'unterminated FROM t`,
		`SELECT X'zz' FROM t`,
		`SELECT $$open FROM t`,
		`SELECT a . FROM t`,
		`SELECT (a FROM t`,
		`SELECT 99999999999999999999 FROM t`,
		`SELECT # FROM t`,
		`SELECT a FROM t WHERE a IS`,
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

// Property: the lexer never panics and either tokenizes or errors for
// arbitrary input.
func TestQuickLexerTotal(t *testing.T) {
	prop := func(src string) bool {
		toks, err := lexSQL(src)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].kind == tkEOF
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: parsing an expression and re-parsing its String() yields
// the same rendering (the printer emits valid, stable syntax).
func TestQuickExprStringStable(t *testing.T) {
	seeds := []string{
		`a + b * 2`, `f(x, y) >= 3.5`, `NOT (a = 1 OR b IS NULL)`,
		`t.col - -4`, `'str' = other`, `LENGTH(h) % 2 = 0`,
	}
	for _, src := range seeds {
		e1, err := ParseExpr(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", e1.String(), err)
		}
		if e1.String() != e2.String() {
			t.Errorf("unstable: %q -> %q", e1.String(), e2.String())
		}
	}
}

func TestParseSet(t *testing.T) {
	stmt := mustParse(t, `SET STATEMENT_TIMEOUT = 250`)
	set, ok := stmt.(*Set)
	if !ok {
		t.Fatalf("got %T", stmt)
	}
	if set.Name != "statement_timeout" {
		t.Errorf("name = %q (names must lower-case)", set.Name)
	}
	lit, ok := set.Value.(*Literal)
	if !ok || lit.Value.Int != 250 {
		t.Errorf("value = %#v", set.Value)
	}

	stmt = mustParse(t, `SET statement_timeout = '2s';`)
	if lit := stmt.(*Set).Value.(*Literal); lit.Value.Str != "2s" {
		t.Errorf("string value = %v", lit.Value)
	}

	for _, bad := range []string{
		`SET`,
		`SET x`,
		`SET x =`,
		`SET x = y`,      // non-literal value
		`SET x = 1 OR 1`, // non-literal expression
		`SET 1 = 2`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}
