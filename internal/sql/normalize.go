package sql

import "strings"

// Normalize reduces a SQL statement to its fingerprint — the statement
// shape with literals stripped — so executions that differ only in
// constants aggregate under one SHOW STATEMENTS entry
// (pg_stat_statements-style). It re-lexes the text, replaces every
// literal token (integers, floats, strings, hex bytes) with '?',
// upper-cases keywords and joins tokens with single spaces. Text that
// does not lex returns trimmed-and-collapsed as-is, so even unparsable
// statements fingerprint deterministically.
func Normalize(text string) string {
	toks, err := lexSQL(text)
	if err != nil {
		return strings.Join(strings.Fields(text), " ")
	}
	var b strings.Builder
	b.Grow(len(text))
	for _, t := range toks {
		if t.kind == tkEOF {
			break
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch t.kind {
		case tkInt, tkFloat, tkString, tkBytes:
			b.WriteByte('?')
		case tkKeyword:
			b.WriteString(t.text) // already upper-cased by the lexer
		default:
			b.WriteString(t.text)
		}
	}
	return b.String()
}
