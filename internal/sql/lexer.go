package sql

import (
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// tokKind classifies SQL tokens.
type tokKind uint8

const (
	tkEOF tokKind = iota
	tkIdent
	tkKeyword
	tkInt
	tkFloat
	tkString
	tkBytes // X'ABCD' hex literal
	tkOp    // punctuation and operators
)

// token is one SQL token.
type token struct {
	kind tokKind
	text string // keyword: upper-cased; ident: as written
	i    int64
	f    float64
	s    string // string literal value / hex bytes
	pos  int    // byte offset, for error messages
}

// sqlKeywords is the reserved-word set.
var sqlKeywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "INSERT": true, "INTO": true,
	"VALUES": true, "CREATE": true, "TABLE": true, "DROP": true, "FUNCTION": true,
	"RETURNS": true, "LANGUAGE": true, "AS": true, "ISOLATED": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "TRUE": true, "FALSE": true,
	"ORDER": true, "BY": true, "GROUP": true, "HAVING": true, "LIMIT": true,
	"ASC": true, "DESC": true, "JOIN": true, "ON": true, "IS": true,
	"SHOW": true, "TABLES": true, "FUNCTIONS": true, "EXPLAIN": true,
	"ANALYZE": true, "STATS": true, "STATEMENTS": true, "UDFS": true,
	"EXECUTORS": true,
	"DELETE":    true, "REPLACE": true, "INNER": true, "UPDATE": true, "SET": true,
	"CHECKPOINT": true, "BACKUP": true, "TO": true, "STORAGE": true,
	"KILL": true,
}

// lexSQL tokenizes a SQL string.
func lexSQL(src string) ([]token, error) {
	var out []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case isSQLAlpha(c):
			start := i
			for i < len(src) && (isSQLAlpha(src[i]) || isSQLDigit(src[i])) {
				i++
			}
			word := src[start:i]
			upper := strings.ToUpper(word)
			// X'...' hex bytes literal.
			if upper == "X" && i < len(src) && src[i] == '\'' {
				end := strings.IndexByte(src[i+1:], '\'')
				if end < 0 {
					return nil, fmt.Errorf("sql: unterminated hex literal at offset %d", start)
				}
				hexStr := src[i+1 : i+1+end]
				data, err := hex.DecodeString(hexStr)
				if err != nil {
					return nil, fmt.Errorf("sql: bad hex literal %q", hexStr)
				}
				out = append(out, token{kind: tkBytes, s: string(data), pos: start})
				i += end + 2
				continue
			}
			if sqlKeywords[upper] {
				out = append(out, token{kind: tkKeyword, text: upper, pos: start})
			} else {
				out = append(out, token{kind: tkIdent, text: word, pos: start})
			}
		case isSQLDigit(c) || (c == '.' && i+1 < len(src) && isSQLDigit(src[i+1])):
			start := i
			isFloat := false
			for i < len(src) && isSQLDigit(src[i]) {
				i++
			}
			if i < len(src) && src[i] == '.' {
				isFloat = true
				i++
				for i < len(src) && isSQLDigit(src[i]) {
					i++
				}
			}
			if i < len(src) && (src[i] == 'e' || src[i] == 'E') {
				j := i + 1
				if j < len(src) && (src[j] == '+' || src[j] == '-') {
					j++
				}
				if j < len(src) && isSQLDigit(src[j]) {
					isFloat = true
					i = j
					for i < len(src) && isSQLDigit(src[i]) {
						i++
					}
				}
			}
			text := src[start:i]
			if isFloat {
				f, err := strconv.ParseFloat(text, 64)
				if err != nil {
					return nil, fmt.Errorf("sql: bad float literal %q", text)
				}
				out = append(out, token{kind: tkFloat, f: f, pos: start})
			} else {
				n, err := strconv.ParseInt(text, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("sql: integer literal %q out of range", text)
				}
				out = append(out, token{kind: tkInt, i: n, pos: start})
			}
		case c == '$' && i+1 < len(src) && src[i+1] == '$':
			// Dollar-quoted string ($$ ... $$), used for UDF bodies so
			// Jaguar source does not need quote doubling.
			start := i
			end := strings.Index(src[i+2:], "$$")
			if end < 0 {
				return nil, fmt.Errorf("sql: unterminated $$ string at offset %d", start)
			}
			out = append(out, token{kind: tkString, s: src[i+2 : i+2+end], pos: start})
			i += end + 4
		case c == '\'':
			start := i
			i++
			var b strings.Builder
			closed := false
			for i < len(src) {
				if src[i] == '\'' {
					// '' escapes a quote inside the literal.
					if i+1 < len(src) && src[i+1] == '\'' {
						b.WriteByte('\'')
						i += 2
						continue
					}
					closed = true
					i++
					break
				}
				b.WriteByte(src[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			out = append(out, token{kind: tkString, s: b.String(), pos: start})
		default:
			start := i
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<>", "<=", ">=", "!=":
				op := two
				if op == "!=" {
					op = "<>"
				}
				out = append(out, token{kind: tkOp, text: op, pos: start})
				i += 2
				continue
			}
			switch c {
			case '(', ')', ',', ';', '+', '-', '*', '/', '%', '=', '<', '>', '.':
				out = append(out, token{kind: tkOp, text: string(c), pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", string(c), i)
			}
		}
	}
	out = append(out, token{kind: tkEOF, pos: len(src)})
	return out, nil
}

func isSQLAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isSQLDigit(c byte) bool { return c >= '0' && c <= '9' }
