package sql

import (
	"fmt"
	"strings"

	"predator/internal/types"
)

// Parse parses one SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, src: src}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tkOp, ";")
	if p.cur().kind != tkEOF {
		return nil, p.errHere("unexpected trailing input")
	}
	return stmt, nil
}

// ParseExpr parses a standalone expression (used by tests and tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := lexSQL(src)
	if err != nil {
		return nil, err
	}
	p := &sqlParser{toks: toks, src: src}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tkEOF {
		return nil, p.errHere("unexpected trailing input")
	}
	return e, nil
}

type sqlParser struct {
	toks []token
	pos  int
	src  string
}

func (p *sqlParser) cur() token  { return p.toks[p.pos] }
func (p *sqlParser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *sqlParser) errHere(format string, args ...any) error {
	t := p.cur()
	where := t.text
	if where == "" {
		switch t.kind {
		case tkEOF:
			where = "end of input"
		case tkString:
			where = "string literal"
		default:
			where = "literal"
		}
	}
	return fmt.Errorf("sql: %s (near %q, offset %d)", fmt.Sprintf(format, args...), where, t.pos)
}

// accept consumes the token if it matches kind and (case-insensitive)
// text; text "" matches any.
func (p *sqlParser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind != kind {
		return false
	}
	if text != "" && !strings.EqualFold(t.text, text) {
		return false
	}
	p.pos++
	return true
}

func (p *sqlParser) expectKeyword(kw string) error {
	if !p.accept(tkKeyword, kw) {
		return p.errHere("expected %s", kw)
	}
	return nil
}

func (p *sqlParser) expectOp(op string) error {
	if !p.accept(tkOp, op) {
		return p.errHere("expected %q", op)
	}
	return nil
}

func (p *sqlParser) ident() (string, error) {
	t := p.cur()
	if t.kind != tkIdent {
		return "", p.errHere("expected identifier")
	}
	p.pos++
	return t.text, nil
}

func (p *sqlParser) typeName() (types.Kind, error) {
	t := p.cur()
	if t.kind != tkIdent && t.kind != tkKeyword {
		return types.KindInvalid, p.errHere("expected type name")
	}
	k, err := types.KindFromName(t.text)
	if err != nil {
		return types.KindInvalid, p.errHere("unknown type %q", t.text)
	}
	p.pos++
	return k, nil
}

func (p *sqlParser) statement() (Statement, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return nil, p.errHere("expected a statement keyword")
	}
	switch t.text {
	case "CREATE":
		return p.createStmt()
	case "DROP":
		return p.dropStmt()
	case "INSERT":
		return p.insertStmt()
	case "SELECT":
		return p.selectStmt()
	case "SHOW":
		return p.showStmt()
	case "EXPLAIN":
		p.next()
		analyze := p.accept(tkKeyword, "ANALYZE")
		q, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: q.(*Select), Analyze: analyze}, nil
	case "DELETE":
		return p.deleteStmt()
	case "UPDATE":
		return p.updateStmt()
	case "SET":
		return p.setStmt()
	case "CHECKPOINT":
		p.next()
		return &Checkpoint{}, nil
	case "BACKUP":
		return p.backupStmt()
	case "KILL":
		return p.killStmt()
	default:
		return nil, p.errHere("unsupported statement %s", t.text)
	}
}

func (p *sqlParser) setStmt() (Statement, error) {
	p.next() // SET
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	val, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, ok := val.(*Literal); !ok {
		return nil, p.errHere("SET value must be a literal")
	}
	return &Set{Name: strings.ToLower(name), Value: val}, nil
}

func (p *sqlParser) updateStmt() (Statement, error) {
	p.next() // UPDATE
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, SetClause{Column: col, Value: val})
		if p.accept(tkOp, ",") {
			continue
		}
		break
	}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *sqlParser) createStmt() (Statement, error) {
	p.next() // CREATE
	replace := false
	if p.accept(tkKeyword, "OR") {
		if err := p.expectKeyword("REPLACE"); err != nil {
			return nil, err
		}
		replace = true
	}
	switch {
	case p.accept(tkKeyword, "TABLE"):
		if replace {
			return nil, p.errHere("CREATE OR REPLACE is only supported for functions")
		}
		return p.createTable()
	case p.accept(tkKeyword, "FUNCTION"):
		return p.createFunction(replace)
	default:
		return nil, p.errHere("expected TABLE or FUNCTION after CREATE")
	}
}

func (p *sqlParser) createTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		kind, err := p.typeName()
		if err != nil {
			return nil, err
		}
		ct.Columns = append(ct.Columns, types.Column{Name: col, Kind: kind})
		if p.accept(tkOp, ",") {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

func (p *sqlParser) createFunction(replace bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	cf := &CreateFunction{Name: name, Replace: replace}
	for p.cur().kind != tkOp || p.cur().text != ")" {
		if len(cf.Args) > 0 {
			if err := p.expectOp(","); err != nil {
				return nil, err
			}
		}
		// Optional parameter name before the type.
		if p.cur().kind == tkIdent && p.toks[p.pos+1].kind == tkIdent {
			p.next()
		}
		k, err := p.typeName()
		if err != nil {
			return nil, err
		}
		cf.Args = append(cf.Args, k)
	}
	p.next() // ')'
	if err := p.expectKeyword("RETURNS"); err != nil {
		return nil, err
	}
	ret, err := p.typeName()
	if err != nil {
		return nil, err
	}
	cf.Return = ret
	if err := p.expectKeyword("LANGUAGE"); err != nil {
		return nil, err
	}
	lang, err := p.ident()
	if err != nil {
		return nil, err
	}
	cf.Language = strings.ToLower(lang)
	if p.accept(tkKeyword, "ISOLATED") {
		cf.Isolated = true
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	body := p.cur()
	if body.kind != tkString {
		return nil, p.errHere("expected function body string after AS")
	}
	p.next()
	cf.Body = body.s
	if p.accept(tkKeyword, "ISOLATED") {
		cf.Isolated = true
	}
	return cf, nil
}

func (p *sqlParser) dropStmt() (Statement, error) {
	p.next() // DROP
	switch {
	case p.accept(tkKeyword, "TABLE"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name}, nil
	case p.accept(tkKeyword, "FUNCTION"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropFunction{Name: name}, nil
	default:
		return nil, p.errHere("expected TABLE or FUNCTION after DROP")
	}
}

func (p *sqlParser) insertStmt() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	ins := &Insert{Table: name}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if p.accept(tkOp, ",") {
				continue
			}
			break
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if p.accept(tkOp, ",") {
			continue
		}
		break
	}
	return ins, nil
}

func (p *sqlParser) deleteStmt() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *sqlParser) showStmt() (Statement, error) {
	p.next() // SHOW
	switch {
	case p.accept(tkKeyword, "TABLES"):
		return &Show{What: "tables"}, nil
	case p.accept(tkKeyword, "FUNCTIONS"):
		return &Show{What: "functions"}, nil
	case p.accept(tkKeyword, "STATS"):
		return &Show{What: "stats"}, nil
	case p.accept(tkKeyword, "STATEMENTS"):
		return &Show{What: "statements"}, nil
	case p.accept(tkKeyword, "UDFS"):
		return &Show{What: "udfs"}, nil
	case p.accept(tkKeyword, "EXECUTORS"):
		return &Show{What: "executors"}, nil
	case p.accept(tkKeyword, "STORAGE"):
		return &Show{What: "storage"}, nil
	// The flight-recorder targets are contextual words, not reserved
	// keywords, so columns named "history" etc. keep parsing.
	case p.accept(tkIdent, "PROCESSLIST"):
		return &Show{What: "processlist"}, nil
	case p.accept(tkIdent, "HISTORY"):
		return &Show{What: "history"}, nil
	case p.accept(tkIdent, "TENANTS"):
		return &Show{What: "tenants"}, nil
	default:
		return nil, p.errHere("expected TABLES, FUNCTIONS, STATS, STATEMENTS, UDFS, EXECUTORS, STORAGE, PROCESSLIST, HISTORY or TENANTS after SHOW")
	}
}

func (p *sqlParser) killStmt() (Statement, error) {
	p.next() // KILL
	t := p.cur()
	if t.kind != tkInt {
		return nil, p.errHere("expected query ID after KILL")
	}
	p.next()
	return &Kill{ID: t.i}, nil
}

func (p *sqlParser) backupStmt() (Statement, error) {
	p.next() // BACKUP
	if err := p.expectKeyword("TO"); err != nil {
		return nil, err
	}
	dir := p.cur()
	if dir.kind != tkString {
		return nil, p.errHere("expected directory string after BACKUP TO")
	}
	p.next()
	if dir.s == "" {
		return nil, p.errHere("backup directory must not be empty")
	}
	return &Backup{Dir: dir.s}, nil
}

func (p *sqlParser) selectStmt() (Statement, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &Select{Limit: -1}
	for {
		if p.accept(tkOp, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tkKeyword, "AS") {
				alias, err := p.ident()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.cur().kind == tkIdent {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if p.accept(tkOp, ",") {
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, ref)
		if p.accept(tkOp, ",") {
			continue
		}
		break
	}
	for p.accept(tkKeyword, "INNER") || p.cur().kind == tkKeyword && p.cur().text == "JOIN" {
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		ref, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		j := Join{Table: ref}
		if p.accept(tkKeyword, "ON") {
			on, err := p.expr()
			if err != nil {
				return nil, err
			}
			j.On = on
		}
		sel.Joins = append(sel.Joins, j)
	}
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tkKeyword, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if p.accept(tkOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tkKeyword, "HAVING") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	if p.accept(tkKeyword, "ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.accept(tkKeyword, "DESC") {
				item.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			sel.OrderBy = append(sel.OrderBy, item)
			if p.accept(tkOp, ",") {
				continue
			}
			break
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		t := p.cur()
		if t.kind != tkInt || t.i < 0 {
			return nil, p.errHere("expected a non-negative integer after LIMIT")
		}
		p.next()
		sel.Limit = t.i
	}
	return sel, nil
}

func (p *sqlParser) tableRef() (TableRef, error) {
	name, err := p.ident()
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Table: name}
	if p.accept(tkKeyword, "AS") {
		alias, err := p.ident()
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if p.cur().kind == tkIdent {
		ref.Alias = p.next().text
	}
	return ref, nil
}

// Expression grammar (precedence climbing):
//
//	OR
//	AND
//	NOT
//	comparison (= <> < <= > >=, IS NULL)
//	+ -
//	* / %
//	unary -
//	primary

func (p *sqlParser) expr() (Expr, error) { return p.orExpr() }

func (p *sqlParser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *sqlParser) notExpr() (Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.cmpExpr()
}

func (p *sqlParser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tkKeyword, "IS") {
		neg := p.accept(tkKeyword, "NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negate: neg}, nil
	}
	t := p.cur()
	if t.kind == tkOp {
		switch t.text {
		case "=", "<>", "<", "<=", ">", ">=":
			p.next()
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	return l, nil
}

func (p *sqlParser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tkOp || (t.text != "+" && t.text != "-") {
			return l, nil
		}
		p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: t.text, L: l, R: r}
	}
}

func (p *sqlParser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tkOp || (t.text != "*" && t.text != "/" && t.text != "%") {
			return l, nil
		}
		p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: t.text, L: l, R: r}
	}
}

func (p *sqlParser) unaryExpr() (Expr, error) {
	if p.cur().kind == tkOp && p.cur().text == "-" {
		p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	return p.primaryExpr()
}

func (p *sqlParser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tkInt:
		p.next()
		return &Literal{Value: types.NewInt(t.i)}, nil
	case tkFloat:
		p.next()
		return &Literal{Value: types.NewFloat(t.f)}, nil
	case tkString:
		p.next()
		return &Literal{Value: types.NewString(t.s)}, nil
	case tkBytes:
		p.next()
		return &Literal{Value: types.NewBytes([]byte(t.s))}, nil
	case tkKeyword:
		switch t.text {
		case "NULL":
			p.next()
			return &Literal{Value: types.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: types.NewBool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: types.NewBool(false)}, nil
		}
		return nil, p.errHere("unexpected keyword %s in expression", t.text)
	case tkOp:
		if t.text == "(" {
			p.next()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errHere("expected expression")
	case tkIdent:
		p.next()
		// Function call?
		if p.cur().kind == tkOp && p.cur().text == "(" {
			p.next()
			fc := &FuncCall{Name: t.text}
			if p.accept(tkOp, "*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			for p.cur().kind != tkOp || p.cur().text != ")" {
				if len(fc.Args) > 0 {
					if err := p.expectOp(","); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				fc.Args = append(fc.Args, a)
			}
			p.next() // ')'
			return fc, nil
		}
		// Qualified column?
		if p.cur().kind == tkOp && p.cur().text == "." {
			p.next()
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ColumnRef{Table: t.text, Column: col}, nil
		}
		return &ColumnRef{Column: t.text}, nil
	default:
		return nil, p.errHere("expected expression")
	}
}
