package core

import (
	"errors"
	"fmt"
)

// FaultClass classifies what went wrong when a UDF invocation fails.
// The distinction matters for recovery policy: a UDF fault leaves the
// executor healthy and reusable, while executor, protocol and timeout
// faults mean the executor process has been (or must be) destroyed.
type FaultClass uint8

const (
	// FaultNone marks an error that carries no fault classification.
	FaultNone FaultClass = iota
	// FaultUDF is the UDF's own failure (error return, bad class,
	// unknown name, resource-limit trip). The executor stays usable.
	FaultUDF
	// FaultExecutor is an executor process failure: it crashed, exited,
	// could not be started, or its pipe broke mid-conversation.
	FaultExecutor
	// FaultProtocol is a framing or encoding violation on the executor
	// pipe — a babbling child. The supervisor kills the process, since
	// a desynchronized stream can never be trusted again.
	FaultProtocol
	// FaultTimeout is a deadline expiry (per-invocation, per-setup or
	// statement deadline). The supervisor SIGKILLs the executor.
	FaultTimeout
	// FaultQuota is a tenant resource-quota trip (memory or CPU budget
	// exceeded). The statement is aborted; executors stay healthy.
	FaultQuota
	// FaultOverload is load shedding: the server or a circuit breaker
	// rejected the work before it started. Always safe to retry.
	FaultOverload
	// FaultExecutorLost is a multiplexed crossing stranded by the death
	// of its shared executor process (a sibling stream's crash, a
	// supervisor kill, a fleet restart). Unlike FaultExecutor it is
	// retryable: the fleet routes a resubmission to a healthy executor,
	// so the failure is transient by construction.
	FaultExecutorLost
	// FaultDiskFull is a mutating statement shed because the storage
	// layer is in degraded read-only mode (ENOSPC). The statement never
	// touched data, and the engine auto-probes for freed space, so a
	// retry after backoff is safe and expected to eventually succeed.
	FaultDiskFull
	// FaultStorage is a storage-layer failure that is not transient: a
	// poisoned write-ahead log (failed fsync), an unreadable page, or
	// an archiving failure. Retrying cannot help until an operator (or
	// the scrubber) intervenes.
	FaultStorage
	// FaultCanceled is an operator cancellation (KILL <query-id>): the
	// statement was aborted deliberately between rows. Executors stay
	// healthy, and an automatic retry would defeat the KILL, so it is
	// not retryable.
	FaultCanceled
)

// String names the class for logs and error text.
func (c FaultClass) String() string {
	switch c {
	case FaultUDF:
		return "udf"
	case FaultExecutor:
		return "executor"
	case FaultProtocol:
		return "protocol"
	case FaultTimeout:
		return "timeout"
	case FaultQuota:
		return "quota"
	case FaultOverload:
		return "overload"
	case FaultExecutorLost:
		return "executor-lost"
	case FaultDiskFull:
		return "disk-full"
	case FaultStorage:
		return "storage"
	case FaultCanceled:
		return "canceled"
	default:
		return "none"
	}
}

// Fault is a classified UDF-execution error. It wraps the underlying
// cause and records the protocol operation that failed.
type Fault struct {
	Class FaultClass
	// Op is the operation in flight: "start", "setup", "invoke",
	// "callback", "ping", "statement".
	Op  string
	Err error
}

// NewFault builds a classified fault.
func NewFault(class FaultClass, op string, err error) *Fault {
	return &Fault{Class: class, Op: op, Err: err}
}

// Faultf builds a classified fault from a format string.
func Faultf(class FaultClass, op, format string, args ...any) *Fault {
	return &Fault{Class: class, Op: op, Err: fmt.Errorf(format, args...)}
}

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("isolate: %s fault during %s: %v", f.Class, f.Op, f.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (f *Fault) Unwrap() error { return f.Err }

// FaultClassOf extracts the fault class from an error chain
// (FaultNone when the error carries no classification).
func FaultClassOf(err error) FaultClass {
	var f *Fault
	if errors.As(err, &f) {
		return f.Class
	}
	return FaultNone
}

// IsTimeout reports whether the error is a deadline-expiry fault.
func IsTimeout(err error) bool { return FaultClassOf(err) == FaultTimeout }

// Retryable reports whether the failed work can safely be resubmitted
// as-is: overload sheds never started the statement, timeout kills are
// transient by construction, an executor lost under a multiplexed
// stream was a casualty, not a cause, and a disk-full shed clears once
// space frees. Quota, UDF, executor, protocol and (non-transient)
// storage faults are deterministic — retrying without change would
// fail again.
func Retryable(err error) bool {
	switch FaultClassOf(err) {
	case FaultOverload, FaultTimeout, FaultExecutorLost, FaultDiskFull:
		return true
	default:
		return false
	}
}

// Fatal reports whether the fault destroyed (or requires destroying)
// the executor that produced it.
func (f *Fault) Fatal() bool {
	return f.Class == FaultExecutor || f.Class == FaultProtocol || f.Class == FaultTimeout
}
