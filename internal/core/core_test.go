package core

import (
	"fmt"
	"strings"
	"testing"

	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/types"
)

func sumBytesNative(ctx *Ctx, args []types.Value) (types.Value, error) {
	var acc int64
	for _, b := range args[0].Bytes {
		acc += int64(b)
	}
	return types.NewInt(acc), nil
}

func TestDesignLabels(t *testing.T) {
	cases := map[Design]string{
		DesignNativeIntegrated: "C++",
		DesignNativeIsolated:   "IC++",
		DesignVMIntegrated:     "JNI",
		DesignVMIsolated:       "IJNI",
		DesignSFINative:        "BC++",
	}
	for d, want := range cases {
		if d.String() != want {
			t.Errorf("Design(%d).String() = %q, want %q", d, d, want)
		}
	}
	if !DesignNativeIntegrated.Integrated() || DesignNativeIsolated.Integrated() {
		t.Error("Integrated() wrong")
	}
	if DesignNativeIntegrated.Safe() || !DesignVMIntegrated.Safe() || !DesignSFINative.Safe() {
		t.Error("Safe() wrong")
	}
}

func TestNativeUDFInvoke(t *testing.T) {
	u := NewNative("sumbytes", []types.Kind{types.KindBytes}, types.KindInt, sumBytesNative)
	out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{1, 2, 3})})
	if err != nil || out.Int != 6 {
		t.Errorf("Invoke = %v, %v", out, err)
	}
	if u.Design() != DesignNativeIntegrated {
		t.Error("wrong design")
	}
	// Arg validation.
	if _, err := u.Invoke(nil, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := u.Invoke(nil, []types.Value{types.NewInt(1)}); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestNativeUDFErrorWrapped(t *testing.T) {
	u := NewNative("boom", nil, types.KindInt, func(ctx *Ctx, args []types.Value) (types.Value, error) {
		return types.Value{}, fmt.Errorf("kaboom")
	})
	_, err := u.Invoke(nil, nil)
	if err == nil || !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("err = %v", err)
	}
}

func TestSFICheckedBytes(t *testing.T) {
	data := []byte{10, 20, 30}
	cb := NewCheckedBytes(data)
	if cb.Len() != 3 {
		t.Errorf("Len = %d", cb.Len())
	}
	v, err := cb.Get(1)
	if err != nil || v != 20 {
		t.Errorf("Get(1) = %d, %v", v, err)
	}
	if _, err := cb.Get(3); err == nil {
		t.Error("out-of-range read allowed")
	}
	if _, err := cb.Get(-1); err == nil {
		t.Error("negative read allowed")
	}
	if err := cb.Set(0, 99); err != nil || data[0] != 99 {
		t.Errorf("Set: %v, data[0]=%d", err, data[0])
	}
	if err := cb.Set(5, 1); err == nil {
		t.Error("out-of-range write allowed")
	}
}

func TestSFIUDFChecksReturnKind(t *testing.T) {
	u := NewSFINative("bad", nil, types.KindInt, func(ctx *Ctx, args []types.Value) (types.Value, error) {
		return types.NewString("oops"), nil
	})
	if _, err := u.Invoke(nil, nil); err == nil {
		t.Error("SFI wrapper accepted wrong return kind")
	}
	if u.Design() != DesignSFINative {
		t.Error("wrong design")
	}
}

func loadJaguar(t *testing.T, src, class string) *jvm.LoadedClass {
	t.Helper()
	cls, err := jaguar.Compile(src, class)
	if err != nil {
		t.Fatal(err)
	}
	vm := jvm.New(jvm.Options{Security: jvm.DefaultPolicy()})
	lc, err := vm.NewLoader("core-test").LoadClass(cls)
	if err != nil {
		t.Fatal(err)
	}
	return lc
}

func TestVMUDFInvoke(t *testing.T) {
	lc := loadJaguar(t, `
	func triple(x int) int { return 3 * x; }
	func ratio(a int, b int) float {
		if (b == 0) { return 0.0; }
		return float(a) / float(b);
	}`, "Math")
	u, err := NewVM(VMUDFConfig{
		Name: "triple", Class: lc,
		Args: []types.Kind{types.KindInt}, Return: types.KindInt,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := u.Invoke(nil, []types.Value{types.NewInt(14)})
	if err != nil || out.Int != 42 {
		t.Errorf("triple = %v, %v", out, err)
	}
	if u.Design() != DesignVMIntegrated {
		t.Error("wrong design")
	}

	r, err := NewVM(VMUDFConfig{
		Name: "ratio", Class: lc,
		Args: []types.Kind{types.KindInt, types.KindInt}, Return: types.KindFloat,
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err = r.Invoke(nil, []types.Value{types.NewInt(1), types.NewInt(4)})
	if err != nil || out.Float != 0.25 {
		t.Errorf("ratio = %v, %v", out, err)
	}
}

func TestVMUDFSignatureValidation(t *testing.T) {
	lc := loadJaguar(t, `func f(x int) int { return x; }`, "Sig")
	cases := []VMUDFConfig{
		{Name: "g", Class: lc, Method: "nosuch", Args: []types.Kind{types.KindInt}, Return: types.KindInt},
		{Name: "f", Class: lc, Args: nil, Return: types.KindInt},                           // arity
		{Name: "f", Class: lc, Args: []types.Kind{types.KindBytes}, Return: types.KindInt}, // arg type
		{Name: "f", Class: lc, Args: []types.Kind{types.KindInt}, Return: types.KindBytes}, // return type
	}
	for i, cfg := range cases {
		if _, err := NewVM(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	// Bool maps to VM int, so a bool SQL arg binds an int method param.
	u, err := NewVM(VMUDFConfig{Name: "f", Class: lc, Args: []types.Kind{types.KindBool}, Return: types.KindBool})
	if err != nil {
		t.Fatal(err)
	}
	out, err := u.Invoke(nil, []types.Value{types.NewBool(true)})
	if err != nil || !out.Bool {
		t.Errorf("bool boundary: %v, %v", out, err)
	}
}

func TestVMUDFResourceLimits(t *testing.T) {
	lc := loadJaguar(t, `
	func spin(n int) int {
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) { acc = acc + 1; }
		return acc;
	}`, "Spin")
	u, err := NewVM(VMUDFConfig{
		Name: "spin", Class: lc,
		Args: []types.Kind{types.KindInt}, Return: types.KindInt,
		Limits: jvm.Limits{Fuel: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Invoke(nil, []types.Value{types.NewInt(1000000)}); err == nil {
		t.Error("runaway UDF not stopped by fuel limit")
	}
	out, err := u.Invoke(nil, []types.Value{types.NewInt(10)})
	if err != nil || out.Int != 10 {
		t.Errorf("small run: %v, %v", out, err)
	}
}

type fakeCallback struct{ sizes int }

func (f *fakeCallback) Size(int64) (int64, error)                { f.sizes++; return 77, nil }
func (f *fakeCallback) Get(int64, int64) (byte, error)           { return 0, nil }
func (f *fakeCallback) Read(int64, int64, int64) ([]byte, error) { return nil, nil }
func (f *fakeCallback) Touch(int64) error                        { return nil }

func TestVMUDFCallback(t *testing.T) {
	lc := loadJaguar(t, `func sz(h int) int { return cb_size(h); }`, "CB")
	u, err := NewVM(VMUDFConfig{Name: "sz", Class: lc, Args: []types.Kind{types.KindInt}, Return: types.KindInt})
	if err != nil {
		t.Fatal(err)
	}
	cb := &fakeCallback{}
	out, err := u.Invoke(&Ctx{Callback: cb}, []types.Value{types.NewInt(5)})
	if err != nil || out.Int != 77 || cb.sizes != 1 {
		t.Errorf("callback: %v, %v, sizes=%d", out, err, cb.sizes)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	u1 := NewNative("f", nil, types.KindInt, func(*Ctx, []types.Value) (types.Value, error) {
		return types.NewInt(1), nil
	})
	if err := r.Register(u1); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Lookup("F") // case-insensitive
	if !ok || got != u1 {
		t.Error("lookup failed")
	}
	u2 := NewNative("F", nil, types.KindInt, func(*Ctx, []types.Value) (types.Value, error) {
		return types.NewInt(2), nil
	})
	if err := r.Register(u2); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Lookup("f")
	out, _ := got.Invoke(nil, nil)
	if out.Int != 2 {
		t.Error("replacement not effective")
	}
	if len(r.List()) != 1 {
		t.Errorf("List len = %d", len(r.List()))
	}
	if err := r.Drop("f"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drop("f"); err == nil {
		t.Error("double drop accepted")
	}
	if err := r.Register(NewNative("", nil, types.KindInt, nil)); err == nil {
		t.Error("unnamed UDF accepted")
	}
}

func TestCheckArgsAllowsNull(t *testing.T) {
	u := NewNative("f", []types.Kind{types.KindInt}, types.KindInt, nil)
	if err := CheckArgs(u, []types.Value{types.Null()}); err != nil {
		t.Errorf("NULL arg rejected: %v", err)
	}
}
