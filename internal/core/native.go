package core

import (
	"fmt"

	"predator/internal/types"
)

// nativeUDF is Design 1: a trusted Go function linked into the server.
// It is the fastest design and the least safe — a buggy implementation
// can corrupt or crash the entire server, which is exactly the paper's
// motivation for the alternatives.
type nativeUDF struct {
	name   string
	args   []types.Kind
	ret    types.Kind
	fn     NativeFunc
	design Design
}

// NewNative registers-ready Design 1 UDF from a Go function.
func NewNative(name string, args []types.Kind, ret types.Kind, fn NativeFunc) UDF {
	return &nativeUDF{name: name, args: args, ret: ret, fn: fn, design: DesignNativeIntegrated}
}

// NewSFINative wraps a Go function as the bounds-checked native
// comparator (paper's "BC++"). The function itself is expected to
// perform its data access through CheckedBytes, which adds the explicit
// software-fault-isolation checks; the wrapper additionally re-verifies
// the result type on every call (the SFI trust boundary).
func NewSFINative(name string, args []types.Kind, ret types.Kind, fn NativeFunc) UDF {
	return &nativeUDF{name: name, args: args, ret: ret, fn: fn, design: DesignSFINative}
}

func (u *nativeUDF) Name() string           { return u.name }
func (u *nativeUDF) ArgKinds() []types.Kind { return u.args }
func (u *nativeUDF) ReturnKind() types.Kind { return u.ret }
func (u *nativeUDF) Design() Design         { return u.design }
func (u *nativeUDF) Close() error           { return nil }

func (u *nativeUDF) Invoke(ctx *Ctx, args []types.Value) (types.Value, error) {
	if err := CheckArgs(u, args); err != nil {
		return types.Value{}, err
	}
	CountCrossings(u.design, 1)
	out, err := u.fn(ctx, args)
	if err != nil {
		return types.Value{}, fmt.Errorf("core: %s: %w", u.name, err)
	}
	if u.design == DesignSFINative && !out.IsNull() && out.Kind != u.ret {
		return types.Value{}, fmt.Errorf("core: %s returned %s, declared %s", u.name, out.Kind, u.ret)
	}
	return out, nil
}

// InvokeBatch implements BatchUDF by looping inline: integrated designs
// have no boundary to amortize, so a batch is n ordinary calls (and
// counts n crossings, keeping the metric honest about where batching
// pays off).
func (u *nativeUDF) InvokeBatch(ctx *Ctx, arity int, args []types.Value, out []BatchResult) error {
	if err := CheckBatchShape(u, arity, args, out); err != nil {
		return err
	}
	for i := range out {
		v, err := u.Invoke(ctx, args[i*arity:(i+1)*arity])
		out[i] = BatchResult{Value: v, Err: err}
	}
	ObserveBatchRows(u.design, int64(len(out)))
	return nil
}

// CheckedBytes is the SFI view of a byte array: every access performs
// an explicit range check (the software analog of Wahbe et al.'s
// address-mask sandboxing). Native UDFs registered via NewSFINative
// should access their byte-array arguments exclusively through it.
type CheckedBytes struct {
	data []byte
	// lo/hi simulate the SFI segment registers: the only addresses the
	// instrumented code may touch.
	lo, hi int
}

// NewCheckedBytes wraps a byte slice in an SFI-checked accessor.
func NewCheckedBytes(data []byte) CheckedBytes {
	return CheckedBytes{data: data, lo: 0, hi: len(data)}
}

// Len returns the array length.
func (c CheckedBytes) Len() int { return c.hi - c.lo }

// Get returns the byte at index i, or an error when the access falls
// outside the sanctioned segment.
func (c CheckedBytes) Get(i int) (byte, error) {
	// The explicit check, kept branchy on purpose: this is the cost
	// the Figure 7 BC++ comparator pays.
	if i < c.lo || i >= c.hi {
		return 0, fmt.Errorf("core: SFI violation: read at %d outside [%d,%d)", i, c.lo, c.hi)
	}
	return c.data[i], nil
}

// Set stores a byte at index i under the same checks.
func (c CheckedBytes) Set(i int, v byte) error {
	if i < c.lo || i >= c.hi {
		return fmt.Errorf("core: SFI violation: write at %d outside [%d,%d)", i, c.lo, c.hi)
	}
	c.data[i] = v
	return nil
}
