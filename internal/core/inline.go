package core

import "predator/internal/inline"

// Inlinable is implemented by UDFs whose bodies were candidates for
// Froid-style translation into an in-plan register program (package
// inline). The expression binder probes for it: when InlineProgram
// returns a program, the call is evaluated in-process with zero
// crossings; otherwise the reason string says why the UDF keeps
// paying for its declared design, and EXPLAIN / SHOW UDFS surface it.
type Inlinable interface {
	// InlineProgram returns (program, "") when the body translated, or
	// (nil, reason) when it bailed out. The reason follows the package
	// inline taxonomy, plus "disabled" when inlining was turned off at
	// registration and "native-code" for native bodies that have no
	// bytecode to translate.
	InlineProgram() (*inline.Program, string)
}
