package core

import (
	"fmt"
	"sync"

	"predator/internal/obs"
	"predator/internal/types"
)

// BatchResult is one row's outcome in a batched invocation: either a
// value or a per-row error. A per-row error does not poison sibling
// rows — only a boundary fault (InvokeBatch returning non-nil) loses
// the whole batch.
type BatchResult struct {
	Value types.Value
	Err   error
}

// BatchUDF is the vectorized invocation capability: one call evaluates
// n rows. All five designs implement it — integrated designs loop
// inline (a batch is n ordinary calls), isolated designs carry the
// whole batch across the process boundary in a single crossing, which
// is what amortizes the paper's dominant per-invocation cost.
type BatchUDF interface {
	UDF
	// InvokeBatch evaluates n = len(out) rows. args holds the argument
	// vectors flattened row-major: row i's arguments are
	// args[i*arity : (i+1)*arity]. Per-row failures land in out[i].Err;
	// a non-nil return means the whole batch failed (boundary fault,
	// timeout, crash) and out is unspecified.
	InvokeBatch(ctx *Ctx, arity int, args []types.Value, out []BatchResult) error
}

// Per-design handles for the two crossing metrics, resolved once so the
// per-invocation path is a couple of atomic adds.
var (
	designMetricsOnce sync.Once
	designMetrics     [DesignSFINative + 1]struct {
		crossings *obs.Counter
		batchRows *obs.ValueHistogram
	}
)

func metricsFor(d Design) *struct {
	crossings *obs.Counter
	batchRows *obs.ValueHistogram
} {
	designMetricsOnce.Do(func() {
		for d := range designMetrics {
			label := Design(d).String()
			designMetrics[d].crossings = obs.Default.Counter("predator_udf_crossings_total", "design", label)
			designMetrics[d].batchRows = obs.Default.ValueHistogram("predator_udf_batch_rows", "design", label)
		}
	})
	if int(d) >= len(designMetrics) {
		d = DesignNativeIntegrated
	}
	return &designMetrics[d]
}

// CountCrossings adds n boundary crossings for the design
// (predator_udf_crossings_total{design}). Integrated designs cross once
// per row regardless of batching; isolated designs cross once per batch
// frame — the divergence of the two series is the amortization itself.
func CountCrossings(d Design, n int64) {
	metricsFor(d).crossings.Add(n)
}

// ObserveBatchRows records one batched invocation of n rows
// (predator_udf_batch_rows{design}).
func ObserveBatchRows(d Design, n int64) {
	metricsFor(d).batchRows.Observe(n)
}

// CheckBatchShape validates InvokeBatch geometry shared by all designs.
func CheckBatchShape(u UDF, arity int, args []types.Value, out []BatchResult) error {
	if arity != len(u.ArgKinds()) {
		return fmt.Errorf("core: %s batch arity %d, want %d", u.Name(), arity, len(u.ArgKinds()))
	}
	if len(args) != len(out)*arity {
		return fmt.Errorf("core: %s batch has %d argument values for %d rows of arity %d",
			u.Name(), len(args), len(out), arity)
	}
	return nil
}
