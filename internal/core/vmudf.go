package core

import (
	"fmt"

	"predator/internal/inline"
	"predator/internal/jvm"
	"predator/internal/types"
)

// vmUDF is Design 3: verified Jaguar bytecode executed by the embedded
// VM. Each invocation crosses the engine/VM boundary (the "JNI
// impedance mismatch"), runs under the VM's security manager and the
// configured resource limits, and calls back to the server through the
// native bridge.
type vmUDF struct {
	name   string
	args   []types.Kind
	ret    types.Kind
	lc     *jvm.LoadedClass
	method string
	limits jvm.Limits
	prog   *inline.Program // non-nil when the body translated
	bail   string          // why it did not
}

// VMUDFConfig describes a Design 3 UDF to install.
type VMUDFConfig struct {
	// Name is the SQL-visible function name.
	Name string
	// Class is the verified, loaded Jaguar class.
	Class *jvm.LoadedClass
	// Method is the entry method; defaults to Name.
	Method string
	// Args and Return give the SQL-level signature. They must lower to
	// the method's VM-level signature.
	Args   []types.Kind
	Return types.Kind
	// Limits is the per-invocation resource policy.
	Limits jvm.Limits
	// NoInline keeps the body on the VM even when it is translatable
	// (ablation benchmarks, CREATE FUNCTION ... NOINLINE).
	NoInline bool
}

// NewVM builds a Design 3 UDF from a loaded class, validating that the
// SQL signature matches the bytecode method's signature.
func NewVM(cfg VMUDFConfig) (UDF, error) {
	method := cfg.Method
	if method == "" {
		method = cfg.Name
	}
	cls := cfg.Class.Class()
	mi := cls.MethodIndex(method)
	if mi < 0 {
		return nil, fmt.Errorf("core: class %q has no method %q", cls.Name, method)
	}
	m := &cls.Methods[mi]
	if len(m.Params) != len(cfg.Args) {
		return nil, fmt.Errorf("core: %s: SQL signature has %d args, bytecode method has %d",
			cfg.Name, len(cfg.Args), len(m.Params))
	}
	for i, k := range cfg.Args {
		vt, err := jvm.KindToVType(k)
		if err != nil {
			return nil, err
		}
		if vt != m.Params[i] {
			return nil, fmt.Errorf("core: %s: argument %d is %s (VM %s) but bytecode expects %s",
				cfg.Name, i+1, k, vt, m.Params[i])
		}
	}
	rt, err := jvm.KindToVType(cfg.Return)
	if err != nil {
		return nil, err
	}
	if rt != m.Return {
		return nil, fmt.Errorf("core: %s: return type %s (VM %s) but bytecode returns %s",
			cfg.Name, cfg.Return, rt, m.Return)
	}
	u := &vmUDF{
		name: cfg.Name, args: cfg.Args, ret: cfg.Return,
		lc: cfg.Class, method: method, limits: cfg.Limits,
	}
	if cfg.NoInline {
		u.bail = "disabled"
	} else if p, err := inline.Translate(cls, method, cfg.Limits); err == nil {
		u.prog = p
	} else {
		u.bail = inline.ReasonOf(err)
	}
	return u, nil
}

// InlineProgram implements Inlinable: the translated body, or the
// reason translation bailed out.
func (u *vmUDF) InlineProgram() (*inline.Program, string) { return u.prog, u.bail }

func (u *vmUDF) Name() string           { return u.name }
func (u *vmUDF) ArgKinds() []types.Kind { return u.args }
func (u *vmUDF) ReturnKind() types.Kind { return u.ret }
func (u *vmUDF) Design() Design         { return DesignVMIntegrated }
func (u *vmUDF) Close() error           { return nil }

func (u *vmUDF) Invoke(ctx *Ctx, args []types.Value) (types.Value, error) {
	if err := CheckArgs(u, args); err != nil {
		return types.Value{}, err
	}
	CountCrossings(DesignVMIntegrated, 1)
	// Boundary crossing: engine values -> VM values.
	vargs := make([]jvm.Value, len(args))
	for i, a := range args {
		v, err := jvm.ToVM(a)
		if err != nil {
			return types.Value{}, fmt.Errorf("core: %s argument %d: %w", u.name, i+1, err)
		}
		vargs[i] = v
	}
	opts := &jvm.CallOptions{Limits: u.limits}
	if ctx != nil {
		opts.Callback = ctx.Callback
		opts.Logf = ctx.Logf
	}
	ret, _, err := u.lc.Call(u.method, vargs, opts)
	if err != nil {
		return types.Value{}, fmt.Errorf("core: %s: %w", u.name, err)
	}
	return jvm.FromVM(ret, u.ret)
}

// InvokeBatch implements BatchUDF by looping inline: the VM boundary is
// crossed once per row either way, so a batch is n ordinary calls.
func (u *vmUDF) InvokeBatch(ctx *Ctx, arity int, args []types.Value, out []BatchResult) error {
	if err := CheckBatchShape(u, arity, args, out); err != nil {
		return err
	}
	for i := range out {
		v, err := u.Invoke(ctx, args[i*arity:(i+1)*arity])
		out[i] = BatchResult{Value: v, Err: err}
	}
	ObserveBatchRows(DesignVMIntegrated, int64(len(out)))
	return nil
}
