// Package core defines the UDF execution framework that is the paper's
// primary contribution: a registry of user-defined functions, each
// bound to one of the server-side execution designs of Table 1:
//
//	Design 1 — native code, same process        (paper: "C++")
//	Design 2 — native code, isolated process    (paper: "IC++")
//	Design 3 — safe VM code, same process       (paper: "JNI")
//	Design 4 — safe VM code, isolated process   (extrapolated)
//
// plus the bounds-checked-native comparator ("BC++"/SFI) used in the
// Figure 7 study. The registry gives the query engine a uniform Invoke
// interface; the designs differ only in where and how the code runs.
package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predator/internal/govern"
	"predator/internal/jvm"
	"predator/internal/obs"
	"predator/internal/types"
)

// Design identifies a UDF execution design.
type Design uint8

// The execution designs.
const (
	// DesignNativeIntegrated runs trusted Go code inside the server
	// process (paper Design 1, "C++").
	DesignNativeIntegrated Design = iota
	// DesignNativeIsolated runs native code in a separate executor
	// process (paper Design 2, "IC++").
	DesignNativeIsolated
	// DesignVMIntegrated runs verified Jaguar bytecode in the embedded
	// VM (paper Design 3, "JNI").
	DesignVMIntegrated
	// DesignVMIsolated runs Jaguar bytecode in a VM hosted by a
	// separate executor process (paper Design 4).
	DesignVMIsolated
	// DesignSFINative runs native code instrumented with explicit
	// software-fault-isolation checks (the paper's bounds-checked C++
	// comparator in Figure 7).
	DesignSFINative
)

// String returns the paper's label for the design.
func (d Design) String() string {
	switch d {
	case DesignNativeIntegrated:
		return "C++"
	case DesignNativeIsolated:
		return "IC++"
	case DesignVMIntegrated:
		return "JNI"
	case DesignVMIsolated:
		return "IJNI"
	case DesignSFINative:
		return "BC++"
	default:
		return fmt.Sprintf("design(%d)", uint8(d))
	}
}

// Integrated reports whether the design runs inside the server process.
func (d Design) Integrated() bool {
	return d == DesignNativeIntegrated || d == DesignVMIntegrated || d == DesignSFINative
}

// Safe reports whether the design provides memory-safety guarantees
// for the server process (VM verification or explicit SFI checks).
func (d Design) Safe() bool {
	return d == DesignVMIntegrated || d == DesignVMIsolated || d == DesignSFINative ||
		d == DesignNativeIsolated // isolated native cannot corrupt server memory
}

// Ctx is the per-invocation context handed to UDFs: the callback path
// to the server and a logger. A nil Callback is valid for UDFs that
// never call back.
type Ctx struct {
	Callback jvm.Callback
	Logf     func(format string, args ...any)
	// Deadline, when non-zero, is the statement deadline this
	// invocation runs under (SET STATEMENT_TIMEOUT). Isolated designs
	// kill the executor process when it expires mid-invocation.
	Deadline time.Time
	// Trace, when non-nil and detailed, asks isolated designs to
	// propagate trace context to the executor process and merge the
	// child's spans back (EXPLAIN ANALYZE, SET TRACE). The engine only
	// sets it when detailed tracing is on, so the ordinary hot path
	// carries a nil pointer and pays nothing.
	Trace *obs.Trace
	// Tenant, when non-nil, is the resource-governance account the
	// statement runs under. Isolated designs charge executor crossing
	// time to it (govern.Tenant.AddCPU); ungoverned paths leave it nil
	// and pay one nil check.
	Tenant *govern.Tenant
	// Exec, when non-nil, is the statement's flight-recorder
	// registration. Isolated designs feed it per-crossing wall time and
	// executor-reported CPU; all its methods are nil-safe.
	Exec *obs.Execution

	// reportedCPU accumulates CPU nanoseconds the child executor
	// reported on result-frame tails for the crossing in flight; the
	// dispatch layer takes it when recording the crossing's outcome.
	reportedCPU atomic.Int64
}

// AddReportedCPU accumulates child-executor CPU decoded from a result
// frame (nil-safe).
func (c *Ctx) AddReportedCPU(d time.Duration) {
	if c != nil && d > 0 {
		c.reportedCPU.Add(int64(d))
	}
}

// TakeReportedCPU returns and clears the accumulated child-reported
// CPU (nil-safe).
func (c *Ctx) TakeReportedCPU() time.Duration {
	if c == nil {
		return 0
	}
	return time.Duration(c.reportedCPU.Swap(0))
}

// NativeFunc is the Go signature of a native UDF implementation.
type NativeFunc func(ctx *Ctx, args []types.Value) (types.Value, error)

// UDF is one registered function, executable under its design.
// Implementations must be safe for concurrent Invoke calls.
type UDF interface {
	// Name is the SQL-visible function name.
	Name() string
	// ArgKinds lists the parameter types.
	ArgKinds() []types.Kind
	// ReturnKind is the result type.
	ReturnKind() types.Kind
	// Design identifies how and where the UDF executes.
	Design() Design
	// Invoke evaluates the function.
	Invoke(ctx *Ctx, args []types.Value) (types.Value, error)
	// Close releases resources (executor processes, loaded classes).
	Close() error
}

// Registry is a thread-safe name -> UDF map (case-insensitive).
type Registry struct {
	mu   sync.RWMutex
	udfs map[string]UDF
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{udfs: make(map[string]UDF)}
}

// Register installs a UDF, replacing (and closing) any previous one
// with the same name.
func (r *Registry) Register(u UDF) error {
	if u.Name() == "" {
		return fmt.Errorf("core: UDF has no name")
	}
	r.mu.Lock()
	old := r.udfs[strings.ToLower(u.Name())]
	r.udfs[strings.ToLower(u.Name())] = u
	r.mu.Unlock()
	if old != nil {
		return old.Close()
	}
	return nil
}

// Lookup finds a UDF by name.
func (r *Registry) Lookup(name string) (UDF, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	u, ok := r.udfs[strings.ToLower(name)]
	return u, ok
}

// Drop removes and closes a UDF.
func (r *Registry) Drop(name string) error {
	r.mu.Lock()
	u, ok := r.udfs[strings.ToLower(name)]
	delete(r.udfs, strings.ToLower(name))
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: function %q is not registered", name)
	}
	return u.Close()
}

// List returns all UDFs sorted by name.
func (r *Registry) List() []UDF {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]UDF, 0, len(r.udfs))
	for _, u := range r.udfs {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// Close closes every registered UDF.
func (r *Registry) Close() error {
	var first error
	for _, u := range r.List() {
		if err := u.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CheckArgs validates an argument list against a UDF signature.
// NULL arguments are accepted here; the expression evaluator
// short-circuits NULLs before invocation (strict functions).
func CheckArgs(u UDF, args []types.Value) error {
	kinds := u.ArgKinds()
	if len(args) != len(kinds) {
		return fmt.Errorf("core: %s takes %d argument(s), got %d", u.Name(), len(kinds), len(args))
	}
	for i, a := range args {
		if !a.IsNull() && a.Kind != kinds[i] {
			return fmt.Errorf("core: %s argument %d must be %s, got %s", u.Name(), i+1, kinds[i], a.Kind)
		}
	}
	return nil
}
