package server

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"predator/internal/client"
	"predator/internal/engine"
	"predator/internal/types"
)

// startServer spins up an engine + server on a free port.
func startServer(t *testing.T) (addr string) {
	t.Helper()
	eng, err := engine.Open(filepath.Join(t.TempDir(), "srv.db"), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng, Options{Logf: func(string, ...any) {}})
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr
}

func dial(t *testing.T, addr string) *client.Client {
	t.Helper()
	cl, err := client.Dial(addr, "tester")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func TestQueryRoundTrip(t *testing.T) {
	addr := startServer(t)
	cl := dial(t, addr)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`CREATE TABLE t (id INT, name STRING, data BYTES)`); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`INSERT INTO t VALUES (1, 'alpha', X'AABB'), (2, 'beta', NULL)`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 2 {
		t.Errorf("affected = %d", res.RowsAffected)
	}
	res, err = cl.Exec(`SELECT id, name, data FROM t ORDER BY id`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][1].Str != "alpha" {
		t.Errorf("rows = %v", res.Rows)
	}
	if string(res.Rows[0][2].Bytes) != "\xaa\xbb" {
		t.Errorf("bytes round trip broken: %x", res.Rows[0][2].Bytes)
	}
	if !res.Rows[1][2].IsNull() {
		t.Error("NULL lost on the wire")
	}
	if res.Schema.Columns[1].Kind != types.KindString {
		t.Errorf("schema on wire: %s", res.Schema)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	addr := startServer(t)
	cl := dial(t, addr)
	_, err := cl.Exec(`SELECT * FROM missing`)
	if err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Errorf("err = %v", err)
	}
	// The session survives an error.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestUDFMigrationWorkflow(t *testing.T) {
	addr := startServer(t)
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE readings (v INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO readings VALUES (3), (6), (9)`); err != nil {
		t.Fatal(err)
	}
	spec := client.UDFSpec{
		Name:   "celsius",
		Source: `func celsius(f int) int { return (f - 32) * 5 / 9; }`,
		Args:   []types.Kind{types.KindInt},
		Return: types.KindInt,
	}
	// 1. Compile locally.
	classBytes, err := cl.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2. Test locally in the client's own VM.
	out, err := cl.TestLocally(spec, classBytes, []types.Value{types.NewInt(212)}, nil)
	if err != nil || out.Int != 100 {
		t.Fatalf("local test: %v, %v", out, err)
	}
	// 3. Migrate to the server; same bytes now run server-side.
	if err := cl.Register(spec, classBytes); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`SELECT celsius(v) FROM readings ORDER BY v`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{(3 - 32) * 5 / 9, (6 - 32) * 5 / 9, (9 - 32) * 5 / 9}
	for i, w := range want {
		if res.Rows[i][0].Int != w {
			t.Errorf("row %d = %s, want %d", i, res.Rows[i][0], w)
		}
	}
}

func TestFetchClassDownload(t *testing.T) {
	addr := startServer(t)
	cl := dial(t, addr)
	spec := client.UDFSpec{
		Name:    "twice",
		Source:  `func twice(x int) int { return 2 * x; }`,
		Args:    []types.Kind{types.KindInt},
		Return:  types.KindInt,
		Persist: true,
	}
	if err := cl.CreateUDF(spec); err != nil {
		t.Fatal(err)
	}
	// Another client downloads the class and runs it locally.
	cl2 := dial(t, addr)
	classBytes, args, ret, err := cl2.FetchClass("twice")
	if err != nil {
		t.Fatal(err)
	}
	if len(args) != 1 || args[0] != types.KindInt || ret != types.KindInt {
		t.Errorf("signature = %v -> %v", args, ret)
	}
	out, err := cl2.TestLocally(client.UDFSpec{Name: "twice", Return: ret}, classBytes,
		[]types.Value{types.NewInt(21)}, nil)
	if err != nil || out.Int != 42 {
		t.Errorf("downloaded class: %v, %v", out, err)
	}
}

func TestCorruptUploadRejected(t *testing.T) {
	addr := startServer(t)
	cl := dial(t, addr)
	err := cl.Register(client.UDFSpec{
		Name: "evil", Args: nil, Return: types.KindInt,
	}, []byte("not a class file"))
	if err == nil {
		t.Fatal("corrupt class accepted by server")
	}
	// Malformed-but-decodable classes must fail verification.
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestPutObjectAndCallbacks(t *testing.T) {
	addr := startServer(t)
	cl := dial(t, addr)
	obj := make([]byte, 500)
	for i := range obj {
		obj[i] = byte(i)
	}
	h, err := cl.PutObject(obj)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`CREATE TABLE objs (h INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(fmt.Sprintf(`INSERT INTO objs VALUES (%d)`, h)); err != nil {
		t.Fatal(err)
	}
	if err := cl.CreateUDF(client.UDFSpec{
		Name:   "osize",
		Source: `func osize(h int) int { return cb_size(h); }`,
		Args:   []types.Kind{types.KindInt},
		Return: types.KindInt,
	}); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`SELECT osize(h) FROM objs`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Int != 500 {
		t.Errorf("osize = %s", res.Rows[0][0])
	}
}

func TestConcurrentClients(t *testing.T) {
	addr := startServer(t)
	setup := dial(t, addr)
	if _, err := setup.Exec(`CREATE TABLE c (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := setup.Exec(`INSERT INTO c VALUES (1), (2), (3), (4), (5)`); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			cl, err := client.Dial(addr, fmt.Sprintf("user%d", id))
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for j := 0; j < 20; j++ {
				res, err := cl.Exec(`SELECT COUNT(*) FROM c`)
				if err != nil {
					errs <- err
					return
				}
				if res.Rows[0][0].Int != 5 {
					errs <- fmt.Errorf("client %d saw %d rows", id, res.Rows[0][0].Int)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
