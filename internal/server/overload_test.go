package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"predator/internal/client"
	"predator/internal/core"
	"predator/internal/engine"
	"predator/internal/isolate"
	"predator/internal/obs"
	"predator/internal/types"
	"predator/internal/wire"
)

// startSrv is startServerWith but also hands back the *Server so tests
// can exercise Shutdown directly.
func startSrv(t *testing.T, opts Options, eopts engine.Options) (srv *Server, addr string, eng *engine.Engine) {
	t.Helper()
	eng, err := engine.Open(filepath.Join(t.TempDir(), "srv.db"), eopts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	srv = New(eng, opts)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr, eng
}

func TestQueryGateShedsRetryable(t *testing.T) {
	_, addr, eng := startSrv(t, Options{MaxConcurrentQueries: 1}, engine.Options{})
	release := make(chan struct{})
	entered := make(chan struct{}, 4)
	err := eng.RegisterNative("blockq", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			entered <- struct{}{}
			<-release
			return args[0], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	clA := dial(t, addr)
	if _, err := clA.Exec(`CREATE TABLE n (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := clA.Exec(`INSERT INTO n VALUES (7)`); err != nil {
		t.Fatal(err)
	}
	shedsBefore := obs.Default.Counter("predator_server_admission_shed_total", "gate", "queries").Value()
	type outcome struct {
		res *client.Result
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		res, err := clA.Exec(`SELECT blockq(x) FROM n`)
		got <- outcome{res, err}
	}()
	<-entered // the only query slot is now held
	clB := dial(t, addr)
	_, err = clB.Exec(`SELECT x FROM n`)
	if err == nil {
		t.Fatal("query admitted over MaxConcurrentQueries")
	}
	if !client.IsRetryable(err) {
		t.Fatalf("shed query error not retryable: %v", err)
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "overload" {
		t.Fatalf("shed query error = %v, want overload code", err)
	}
	close(release)
	out := <-got
	if out.err != nil || out.res.Rows[0][0].Int != 7 {
		t.Fatalf("admitted query broken by shedding: %v, %v", out.res, out.err)
	}
	// The slot is free again; the shed client retries successfully.
	if _, err := clB.Exec(`SELECT x FROM n`); err != nil {
		t.Fatalf("retry after shed failed: %v", err)
	}
	sheds := obs.Default.Counter("predator_server_admission_shed_total", "gate", "queries").Value()
	if sheds <= shedsBefore {
		t.Errorf("shed counter did not move: %d -> %d", shedsBefore, sheds)
	}
}

func TestConnCapTypedShed(t *testing.T) {
	_, addr, _ := startSrv(t, Options{MaxConns: 1}, engine.Options{})
	cl1 := dial(t, addr)
	if err := cl1.Ping(); err != nil {
		t.Fatal(err)
	}
	_, err := client.Dial(addr, "second")
	if err == nil {
		t.Fatal("dial over MaxConns succeeded")
	}
	if !client.IsRetryable(err) {
		t.Fatalf("conn-cap rejection not retryable: %v", err)
	}
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "overload" {
		t.Fatalf("conn-cap rejection code = %v", err)
	}
	// Closing the admitted connection frees the slot (asynchronously,
	// when its goroutine exits).
	cl1.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		cl2, err := client.Dial(addr, "third")
		if err == nil {
			cl2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("conn slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSessionCapPerUser(t *testing.T) {
	_, addr, _ := startSrv(t, Options{MaxSessionsPerUser: 1}, engine.Options{})
	a1, err := client.Dial(addr, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	// A second alice is over the per-tenant cap: typed, retryable.
	_, err = client.Dial(addr, "alice")
	if err == nil {
		t.Fatal("second alice session admitted over cap")
	}
	if !client.IsRetryable(err) || !strings.Contains(err.Error(), "sessions") {
		t.Fatalf("session-cap rejection = %v", err)
	}
	// Other tenants are unaffected.
	b, err := client.Dial(addr, "bob")
	if err != nil {
		t.Fatalf("bob blocked by alice's cap: %v", err)
	}
	b.Close()
	// Alice's slot frees when her connection goes away.
	a1.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		a2, err := client.Dial(addr, "alice")
		if err == nil {
			a2.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alice session slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPanicReleasesQuerySlot is the regression test for the admission
// slot leak: a statement that panics (a misbehaving in-process UDF) is
// recovered by handle, and must still return its MaxConcurrentQueries
// slot and in-flight gauge decrement — otherwise every panic would
// permanently shrink query capacity until the server sheds all work.
func TestPanicReleasesQuerySlot(t *testing.T) {
	_, addr, eng := startSrv(t, Options{MaxConcurrentQueries: 1}, engine.Options{})
	err := eng.RegisterNative("boom", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			panic("udf gone rogue")
		})
	if err != nil {
		t.Fatal(err)
	}
	inBefore := obs.Default.Gauge("predator_server_queries_in_flight").Value()
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE n (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO n VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	// With a single query slot, leaking it even once would shed every
	// statement after the first panic.
	for i := 0; i < 3; i++ {
		if _, err := cl.Exec(`SELECT boom(x) FROM n`); err == nil {
			t.Fatal("panicking UDF reported success")
		}
	}
	if _, err := cl.Exec(`SELECT x FROM n`); err != nil {
		t.Fatalf("query slot leaked by panicking statements: %v", err)
	}
	if in := obs.Default.Gauge("predator_server_queries_in_flight").Value(); in != inBefore {
		t.Errorf("in-flight gauge leaked: %d -> %d", inBefore, in)
	}
}

// TestSessionCapRefusalClosesConn is the regression test for the
// session-cap bypass: a client whose hello is refused under
// MaxSessionsPerUser must be disconnected, not left bound to the
// tenant where it could keep issuing statements without holding a
// session slot.
func TestSessionCapRefusalClosesConn(t *testing.T) {
	_, addr, _ := startSrv(t, Options{MaxSessionsPerUser: 1}, engine.Options{})
	a1, err := client.Dial(addr, "alice")
	if err != nil {
		t.Fatal(err)
	}
	defer a1.Close()
	// Raw wire client that ignores the hello refusal.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	c := wire.NewConn(nc)
	if err := c.Send(wire.MsgHello, (&wire.Writer{}).Str("alice").Buf); err != nil {
		t.Fatal(err)
	}
	typ, _, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.MsgError {
		t.Fatalf("over-cap hello got frame 0x%02x, want MsgError", typ)
	}
	// Ignore the refusal and try to run a statement anyway: the server
	// must have hung up, so no result frame may ever come back.
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	c.Send(wire.MsgQuery, (&wire.Writer{}).Str(`SELECT 1`).Buf)
	if typ, _, err := c.Recv(); err == nil {
		t.Fatalf("refused session still served a statement (frame 0x%02x)", typ)
	}
}

func TestShutdownDrainsAckedResults(t *testing.T) {
	srv, addr, eng := startSrv(t, Options{}, engine.Options{})
	started := make(chan struct{}, 8)
	err := eng.RegisterNative("pause", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			time.Sleep(150 * time.Millisecond)
			return args[0], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	clA := dial(t, addr)
	if _, err := clA.Exec(`CREATE TABLE n (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := clA.Exec(`INSERT INTO n VALUES (1), (2), (3)`); err != nil {
		t.Fatal(err)
	}
	clB := dial(t, addr) // connected before the drain begins
	type outcome struct {
		res *client.Result
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		res, err := clA.Exec(`SELECT pause(x) FROM n`)
		got <- outcome{res, err}
	}()
	<-started // the statement is in flight
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shErr := make(chan error, 1)
	go func() { shErr <- srv.Shutdown(ctx) }()
	time.Sleep(50 * time.Millisecond) // draining is now set
	// New statements during the drain are refused, typed and retryable.
	if _, err := clB.Exec(`SELECT x FROM n`); err == nil {
		t.Error("statement admitted during drain")
	} else if !client.IsRetryable(err) || !strings.Contains(err.Error(), "draining") {
		t.Errorf("drain refusal = %v", err)
	}
	// The in-flight statement finishes and its full result is acked:
	// zero acknowledged-result loss.
	out := <-got
	if out.err != nil || len(out.res.Rows) != 3 {
		t.Fatalf("in-flight statement lost to drain: %v, %v", out.res, out.err)
	}
	if err := <-shErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// The server is really gone.
	if _, err := client.Dial(addr, "late"); err == nil {
		t.Error("dial succeeded after Shutdown")
	}
}

// TestCloseAcceptHammer is the regression test for the accept/shutdown
// race: connections accepted at the same instant Close runs must either
// be served or closed, never leaked past wg.Wait or left to register
// after the conns map has been swept. Run with -race.
func TestCloseAcceptHammer(t *testing.T) {
	for i := 0; i < 6; i++ {
		eng, err := engine.Open(filepath.Join(t.TempDir(), fmt.Sprintf("h%d.db", i)), engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		srv := New(eng, Options{Logf: func(string, ...any) {}})
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for d := 0; d < 6; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := 0; j < 50; j++ {
					cl, err := client.Dial(addr, "hammer")
					if err != nil {
						return // server gone
					}
					cl.Ping()
					cl.Close()
				}
			}()
		}
		// Two racing closers, offset into the dial storm.
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				time.Sleep(time.Duration(1+i+n) * time.Millisecond)
				if err := srv.Close(); err != nil {
					t.Errorf("Close: %v", err)
				}
			}(c)
		}
		wg.Wait()
	}
}

// TestOverloadChaosMultiTenant is the acceptance chaos test: a mixed
// multi-tenant workload at 16× query over-admission, run under every
// wire fault in the matrix, with one tenant tripping its memory quota
// and another crash-looping an isolated UDF until its breaker opens.
// Quiet tenants may only ever observe success, retryable shedding,
// timeouts, or injected network failures — never another tenant's
// quota or executor trouble — and when the storm passes, all reserved
// memory is back to zero and the broken UDF heals through the
// breaker's half-open probe.
func TestOverloadChaosMultiTenant(t *testing.T) {
	flag := filepath.Join(t.TempDir(), "crash.flag")
	if err := os.WriteFile(flag, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, addr, eng := startSrv(t, Options{
		MaxConns:             64,
		MaxConcurrentQueries: 2,
		AdmissionWait:        time.Millisecond,
		StatementTimeout:     2 * time.Second,
	}, engine.Options{Supervision: isolate.Supervision{
		MaxRestarts:     1000,
		RestartBackoff:  time.Millisecond,
		BreakerFailures: 3,
		BreakerWindow:   10 * time.Second,
		BreakerCooldown: 50 * time.Millisecond,
	}})
	if err := eng.RegisterNativeIsolated("iso_flaky", []types.Kind{types.KindString}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	setup := dial(t, addr)
	if _, err := setup.Exec(`CREATE TABLE wide (id INT, pad STRING)`); err != nil {
		t.Fatal(err)
	}
	pad := strings.Repeat("p", 512)
	for i := 0; i < 32; i++ {
		if _, err := setup.Exec(fmt.Sprintf(`INSERT INTO wide VALUES (%d, '%s')`, i, pad)); err != nil {
			t.Fatal(err)
		}
	}
	// The noisy tenant's ceiling: 32 rows × ~528 B ≈ 17 KiB of scan
	// against a 4 KiB quota trips every full scan.
	ncl, err := client.Dial(addr, "noisy")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ncl.Exec(`SET quota_memory = 4096`); err != nil {
		t.Fatal(err)
	}
	ncl.Close()

	var mu sync.Mutex
	counts := map[string]int{} // class -> count, across all workers
	var violations []string
	record := func(user, class string, err error) {
		mu.Lock()
		defer mu.Unlock()
		counts[user+"/"+class]++
		counts[class]++
		if strings.HasPrefix(user, "quiet") && err != nil {
			// Cross-tenant leakage check: a quiet tenant must never see
			// quota or executor errors, nor any mention of the tenants
			// causing them.
			msg := err.Error()
			if class == "quota" || class == "server:executor" ||
				strings.Contains(msg, "noisy") || strings.Contains(msg, "crasher") {
				violations = append(violations, user+": "+msg)
			}
		}
	}
	classify := func(err error) string {
		if err == nil {
			return "ok"
		}
		var se *client.ServerError
		if errors.As(err, &se) {
			if se.Retryable {
				return "retryable"
			}
			if se.Code != "" {
				return "server:" + se.Code
			}
			return "server:unclassified"
		}
		return "net" // injected wire faults, closed conns
	}
	// Rename quota class for readability in assertions.
	classOf := func(err error) string {
		c := classify(err)
		if c == "server:quota" {
			return "quota"
		}
		return c
	}

	worker := func(user, query string, dur time.Duration, wg *sync.WaitGroup) {
		defer wg.Done()
		deadline := time.Now().Add(dur)
		var cl *client.Client
		defer func() {
			if cl != nil {
				cl.Close()
			}
		}()
		for time.Now().Before(deadline) {
			if cl == nil {
				c, err := client.Dial(addr, user)
				if err != nil {
					record(user, classOf(err), err)
					time.Sleep(2 * time.Millisecond)
					continue
				}
				cl = c
			}
			_, err := cl.Exec(query)
			record(user, classOf(err), err)
			if classOf(err) == "net" {
				cl.Close()
				cl = nil
			}
		}
	}

	// 32 workers against 2 query slots: 16× over-admission. Six fault
	// phases: clean, slow sends, partial frames, dropped sends, dropped
	// recvs, stalled recvs.
	faults := []string{
		"",
		"wiresend:stall:2ms",
		"wiresend:partial:4",
		"wiresend:disconnect:4",
		"wirerecv:disconnect:4",
		"wirerecv:stall:2ms",
	}
	crasherQuery := fmt.Sprintf(`SELECT iso_flaky('%s') FROM wide WHERE id < 2`, flag)
	for _, spec := range faults {
		clear := wire.InjectFault(spec)
		var wg sync.WaitGroup
		for w := 0; w < 28; w++ {
			wg.Add(1)
			go worker(fmt.Sprintf("quiet%d", w%4), `SELECT * FROM wide WHERE id < 4`, 150*time.Millisecond, &wg)
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go worker("noisy", `SELECT * FROM wide`, 150*time.Millisecond, &wg)
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go worker("crasher", crasherQuery, 150*time.Millisecond, &wg)
		}
		wg.Wait()
		clear()
	}

	mu.Lock()
	snapshot := map[string]int{}
	for k, v := range counts {
		snapshot[k] = v
	}
	leaks := append([]string(nil), violations...)
	mu.Unlock()

	if len(leaks) > 0 {
		t.Fatalf("cross-tenant error leakage (%d):\n%s", len(leaks), strings.Join(leaks, "\n"))
	}
	if snapshot["ok"] == 0 {
		t.Fatal("no query ever succeeded under chaos")
	}
	if snapshot["retryable"] == 0 {
		t.Error("16x over-admission never shed a query with a retryable error")
	}
	if snapshot["noisy/quota"] == 0 {
		t.Error("noisy tenant never tripped its memory quota")
	}
	if got := snapshot["quiet0/quota"] + snapshot["quiet1/quota"] + snapshot["quiet2/quota"] + snapshot["quiet3/quota"]; got != 0 {
		t.Errorf("quiet tenants saw %d quota errors", got)
	}
	// The crasher's breaker opened: after enough executor crashes the
	// shed path (retryable overload naming the breaker) took over.
	if opens := obs.Default.Counter("predator_udf_breaker_opens_total", "udf", "iso_flaky").Value(); opens == 0 {
		t.Error("crash-looping UDF never opened its breaker")
	}
	// Bounded memory: every tenant's reservations drained back to zero.
	done := time.Now().Add(3 * time.Second)
	for {
		leaked := int64(0)
		for _, ten := range eng.Governor().Tenants() {
			leaked += ten.MemInUse()
		}
		if leaked == 0 {
			break
		}
		if time.Now().After(done) {
			t.Fatalf("%d bytes still reserved after the storm", leaked)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// Healing: remove the flag; the half-open probe re-admits the UDF.
	if err := os.Remove(flag); err != nil {
		t.Fatal(err)
	}
	hcl, err := client.Dial(addr, "crasher")
	if err != nil {
		t.Fatal(err)
	}
	defer hcl.Close()
	healed := time.Now().Add(10 * time.Second)
	for {
		if _, err := hcl.Exec(crasherQuery); err == nil {
			break
		}
		if time.Now().After(healed) {
			t.Fatal("breaker never recovered after the crash loop ended")
		}
		time.Sleep(25 * time.Millisecond)
	}
}
