package server

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/engine"
	"predator/internal/isolate"
	"predator/internal/types"
)

var srvNatives = isolate.NativeTable{
	"iso_hang": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		for {
			time.Sleep(time.Hour)
		}
	},
	"iso_ok": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		return types.NewInt(args[0].Int + 1), nil
	},
	// iso_flaky crashes the executor while the flag file named by its
	// argument exists, and behaves once the flag is removed — the chaos
	// tests use it to crash-loop one tenant's UDF and then heal it.
	"iso_flaky": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		if _, err := os.Stat(args[0].Str); err == nil {
			os.Exit(3)
		}
		return types.NewInt(int64(len(args[0].Str))), nil
	},
}

func TestMain(m *testing.M) {
	isolate.MaybeRunExecutor(srvNatives)
	os.Exit(m.Run())
}

// startServerWith spins up an engine + server with explicit options and
// returns the address plus the engine for server-side registration.
func startServerWith(t *testing.T, opts Options, eopts engine.Options) (addr string, eng *engine.Engine) {
	t.Helper()
	eng, err := engine.Open(filepath.Join(t.TempDir(), "srv.db"), eopts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	srv := New(eng, opts)
	addr, err = srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, eng
}

func TestStatementTimeoutOverWire(t *testing.T) {
	// A client sets its session deadline, runs a query calling a hung
	// isolated UDF, gets a timeout error — and the same connection (and
	// other connections) keep serving.
	addr, eng := startServerWith(t, Options{}, engine.Options{
		Supervision: isolate.Supervision{RestartBackoff: 5 * time.Millisecond},
	})
	if err := eng.RegisterNativeIsolated("iso_hang", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterNativeIsolated("iso_ok", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE n (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO n VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Exec(`SET STATEMENT_TIMEOUT = 300`)
	if err != nil || !strings.Contains(res.Message, "300ms") {
		t.Fatalf("SET over wire = %v, %v", res, err)
	}
	start := time.Now()
	_, err = cl.Exec(`SELECT iso_hang(x) FROM n`)
	if err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("hung UDF over wire = %v, want timeout error", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v to reach the client", elapsed)
	}
	// Same connection still works, including fresh isolated UDF calls.
	res, err = cl.Exec(`SELECT iso_ok(x) FROM n`)
	if err != nil || res.Rows[0][0].Int != 2 {
		t.Errorf("post-timeout query = %v, %v", res, err)
	}
	// A second connection is unaffected by the first one's timeout.
	cl2 := dial(t, addr)
	if res, err := cl2.Exec(`SELECT COUNT(*) FROM n`); err != nil || res.Rows[0][0].Int != 1 {
		t.Errorf("second connection = %v, %v", res, err)
	}
}

func TestServerDefaultStatementTimeout(t *testing.T) {
	// Options.StatementTimeout seeds every connection without any SET.
	addr, eng := startServerWith(t,
		Options{StatementTimeout: 300 * time.Millisecond},
		engine.Options{Supervision: isolate.Supervision{RestartBackoff: 5 * time.Millisecond}})
	if err := eng.RegisterNativeIsolated("iso_hang", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE n (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO n VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`SELECT iso_hang(x) FROM n`); err == nil || !strings.Contains(err.Error(), "timeout") {
		t.Fatalf("default timeout not applied: %v", err)
	}
}

func TestReadTimeoutDisconnectsIdleClient(t *testing.T) {
	addr, _ := startServerWith(t, Options{ReadTimeout: 200 * time.Millisecond}, engine.Options{})
	cl := dial(t, addr)
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(600 * time.Millisecond)
	if err := cl.Ping(); err == nil {
		t.Error("idle connection survived the read deadline")
	}
	// New connections are served normally.
	cl2 := dial(t, addr)
	if err := cl2.Ping(); err != nil {
		t.Errorf("fresh connection after idle eviction: %v", err)
	}
}

func TestPanickingUDFCostsOneQueryNotTheServer(t *testing.T) {
	addr, eng := startServerWith(t, Options{}, engine.Options{})
	err := eng.RegisterNative("boom", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			panic("deliberate panic in trusted UDF")
		})
	if err != nil {
		t.Fatal(err)
	}
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE n (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO n VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Exec(`SELECT boom(x) FROM n`)
	if err == nil || !strings.Contains(err.Error(), "internal error") {
		t.Fatalf("panicking UDF = %v, want internal error reply", err)
	}
	// The same connection keeps serving after the panic.
	if res, err := cl.Exec(`SELECT COUNT(*) FROM n`); err != nil || res.Rows[0][0].Int != 1 {
		t.Errorf("connection dead after handler panic: %v, %v", res, err)
	}
	// And so do other connections.
	cl2 := dial(t, addr)
	if err := cl2.Ping(); err != nil {
		t.Errorf("server dead after handler panic: %v", err)
	}
}
