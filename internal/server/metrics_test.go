package server

import (
	"regexp"
	"strings"
	"testing"
	"time"

	"predator/internal/engine"
	"predator/internal/obs"
	"predator/internal/types"
)

var (
	expoTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	expoSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][-+]?[0-9]+)?|[-+]?Inf|NaN)$`)
)

// lintGovernanceExposition is the promtool-style subset of checks the
// obs package runs on its own registry, applied here because the
// governance metrics (admission gates, breakers, tenant quotas) are
// registered by packages obs cannot import: every line is a TYPE
// comment or well-formed sample, each family is typed exactly once
// before its samples, and no sample identity repeats.
func lintGovernanceExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]bool{}
	seen := map[string]bool{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if m := expoTypeRe.FindStringSubmatch(line); m != nil {
			if typed[m[1]] {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			typed[m[1]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		m := expoSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: not a valid sample line: %q", ln+1, line)
		}
		fam := m[1]
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, s); base != fam && typed[base] {
				fam = base
				break
			}
		}
		if !typed[fam] {
			t.Fatalf("line %d: sample %s has no preceding TYPE", ln+1, m[1])
		}
		if seen[m[1]+m[2]] {
			t.Fatalf("line %d: duplicate sample %s%s", ln+1, m[1], m[2])
		}
		seen[m[1]+m[2]] = true
	}
}

// TestGovernanceMetricsExposition asserts the admission, breaker and
// quota metric families really land in the /metrics exposition once the
// corresponding subsystems have been exercised, and that the rendered
// text passes the lint /metrics is held to.
func TestGovernanceMetricsExposition(t *testing.T) {
	_, addr, eng := startSrv(t, Options{
		MaxConns:             8,
		MaxConcurrentQueries: 4,
		MaxSessionsPerUser:   8,
	}, engine.Options{})
	if err := eng.RegisterNativeIsolated("iso_ok", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	cl := dial(t, addr) // hello binds a tenant: quota gauges register
	if _, err := cl.Exec(`CREATE TABLE m (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO m VALUES (41)`); err != nil {
		t.Fatal(err)
	}
	// One isolated call creates the UDF's breaker (and its metrics).
	if res, err := cl.Exec(`SELECT iso_ok(x) FROM m`); err != nil || res.Rows[0][0].Int != 42 {
		t.Fatalf("isolated call: %v, %v", res, err)
	}
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	lintGovernanceExposition(t, text)
	for _, name := range []string{
		"predator_server_admission_wait_seconds",
		"predator_server_admission_shed_total",
		"predator_server_admission_in_use",
		`gate="queries"`,
		`gate="connections"`,
		"predator_udf_breaker_state",
		"predator_udf_breaker_opens_total",
		"predator_udf_breaker_sheds_total",
		`udf="iso_ok"`,
		"predator_govern_mem_bytes",
		"predator_govern_cpu_ns_total",
		"predator_govern_sessions",
		"predator_server_connections_total",
		"predator_isolate_executor_cpu_ns_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}

// TestStorageMetricsExposition asserts the storage-resilience metric
// families (disk gauges, archive counters, scrubber counters) land in
// the /metrics exposition once archiving, an online backup and a scrub
// pass have run, and that the rendered text passes the lint.
func TestStorageMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	_, addr, eng := startSrv(t, Options{}, engine.Options{
		ArchiveDir:    dir + "/archive",
		ScrubInterval: time.Millisecond,
		ScrubPace:     -1, // flat out
	})
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE sm (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO sm VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`BACKUP TO '` + dir + `/backup'`); err != nil {
		t.Fatalf("BACKUP TO: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for eng.Scrubber().Status().Passes == 0 {
		if time.Now().After(deadline) {
			t.Fatal("scrubber completed no pass within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	lintGovernanceExposition(t, text)
	for _, name := range []string{
		"predator_storage_readonly",
		"predator_storage_current_lsn",
		"predator_storage_wal_bytes",
		"predator_storage_archive_lag_bytes",
		"predator_storage_archive_segments_total",
		"predator_storage_archive_bytes_total",
		"predator_storage_read_repairs_total",
		"predator_storage_wal_rebuilds_total",
		"predator_scrub_passes_total",
		"predator_scrub_pages_total",
		"predator_scrub_segments_total",
		"predator_scrub_corrupt_total",
		"predator_scrub_repairs_total",
		"predator_scrub_unrepaired_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// Archiving and scrubbing really ran.
	if obs.Default.Counter("predator_storage_archive_segments_total").Value() == 0 {
		t.Error("archive segment counter did not advance")
	}
	if obs.Default.Counter("predator_scrub_pages_total").Value() == 0 {
		t.Error("scrub page counter did not advance")
	}
}

// TestFleetMetricsExposition asserts the executor-fleet metric families
// land in the /metrics exposition once a fleet has served crossings,
// and that the rendered text still passes the exposition lint.
func TestFleetMetricsExposition(t *testing.T) {
	_, addr, eng := startSrv(t, Options{}, engine.Options{FleetSize: 2})
	if err := eng.RegisterNativeIsolated("iso_ok", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	cl := dial(t, addr)
	if _, err := cl.Exec(`CREATE TABLE fm (x INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Exec(`INSERT INTO fm VALUES (41)`); err != nil {
		t.Fatal(err)
	}
	// Two fleet crossings: the second reuses the first's warm stream.
	for i := 0; i < 2; i++ {
		if res, err := cl.Exec(`SELECT iso_ok(x) FROM fm`); err != nil || res.Rows[0][0].Int != 42 {
			t.Fatalf("fleet call: %v, %v", res, err)
		}
	}
	if v := eng.Fleet().InFlight(); v != 0 {
		t.Errorf("in-flight after queries = %d", v)
	}
	var b strings.Builder
	if err := obs.Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	lintGovernanceExposition(t, text)
	for _, name := range []string{
		"predator_fleet_executors",
		"predator_fleet_resident_streams",
		"predator_fleet_stream_opens_total",
		"predator_fleet_stream_reuses_total",
		"predator_fleet_warm_hits_total",
		"predator_fleet_restarts_total",
		"predator_fleet_sheds_total",
		"predator_fleet_invocations_total",
		"predator_fleet_lost_streams_total",
		"predator_govern_fair_wait_seconds",
		"predator_govern_fair_sheds_total",
		"predator_govern_fair_in_flight",
		`queue="fleet"`,
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s", name)
		}
	}
	// The fleet really served the crossings (not a dedicated fallback).
	if obs.Default.Counter("predator_fleet_invocations_total").Value() < 2 {
		t.Error("fleet invocation counter did not advance")
	}
}
