// Package server exposes a PREDATOR-Go engine over TCP. Like the
// paper's PREDATOR, the server is a single multi-threaded process with
// (at least) one thread — here a goroutine — per connected client.
// Clients issue SQL, upload verified Jaguar UDF classes (the §6.4
// migration path), and register large objects for callback access.
//
// The server is also where overload policy lives: connection and query
// admission gates shed excess work with typed retryable errors instead
// of queueing unboundedly, per-tenant session caps keep one user from
// monopolizing the connection table, and Shutdown drains in-flight
// statements before hanging up so every acknowledged result was really
// produced.
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"predator/internal/core"
	"predator/internal/engine"
	"predator/internal/govern"
	"predator/internal/obs"
	"predator/internal/types"
	"predator/internal/wire"
)

// Process-wide server metrics.
var (
	obsConnsTotal = obs.Default.Counter("predator_server_connections_total")
	obsConnsOpen  = obs.Default.Gauge("predator_server_connections_open")
	obsQueriesIn  = obs.Default.Gauge("predator_server_queries_in_flight")
	obsQueriesTot = obs.Default.Counter("predator_server_queries_total")
)

// errDraining rejects new statements while Shutdown waits for in-flight
// ones; the client should reconnect (to a replacement) and retry.
var errDraining = errors.New("server: draining for shutdown, retry later")

// Server serves one engine over a listener.
type Server struct {
	eng       *engine.Engine
	logf      func(format string, args ...any)
	opts      Options
	connGate  *govern.Gate
	queryGate *govern.Gate

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	stmts    sync.WaitGroup // in-flight statements (drained by Shutdown)
	draining bool           // refuse new statements, finish running ones
	shutdown bool           // refuse new connections

	closeOnce sync.Once
	closeErr  error
}

// Options configures a server.
type Options struct {
	// Logf receives connection lifecycle logs (nil = log.Printf).
	Logf func(format string, args ...any)
	// ReadTimeout is the per-connection idle read deadline: a client
	// that sends nothing for this long is disconnected, so wedged or
	// vanished clients never pin a session goroutine forever
	// (0 = no deadline).
	ReadTimeout time.Duration
	// StatementTimeout seeds each connection's session deadline;
	// clients adjust theirs with SET STATEMENT_TIMEOUT (0 = none).
	StatementTimeout time.Duration
	// MaxConns caps concurrently connected clients. A client past the
	// cap receives a typed retryable error frame and is disconnected
	// (0 = unlimited).
	MaxConns int
	// MaxConcurrentQueries caps statements executing at once across all
	// connections; excess queries wait up to AdmissionWait for a slot
	// and are then shed with a typed retryable error (0 = unlimited).
	MaxConcurrentQueries int
	// AdmissionWait bounds how long an over-admitted query may wait for
	// an execution slot before being shed (0 = shed immediately).
	AdmissionWait time.Duration
	// MaxSessionsPerUser caps concurrently open sessions per tenant
	// (user); a hello past the cap is refused with a typed retryable
	// error (0 = unlimited).
	MaxSessionsPerUser int
}

// New wraps an engine in a server.
func New(eng *engine.Engine, opts Options) *Server {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	return &Server{
		eng:       eng,
		logf:      logf,
		opts:      opts,
		connGate:  govern.NewGate("connections", opts.MaxConns),
		queryGate: govern.NewGate("queries", opts.MaxConcurrentQueries),
		conns:     make(map[net.Conn]bool),
	}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:5442")
// and returns immediately; the returned address is the bound one (use
// ":0" to pick a free port).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		release, admit := s.connGate.Acquire(0)
		// Register the connection before spawning its goroutine: once
		// it is in s.conns, Close/Shutdown will interrupt it, so a conn
		// accepted in the races around shutdown can never outlive the
		// server. If shutdown already won, drop the conn here.
		s.mu.Lock()
		if s.shutdown || s.draining {
			s.mu.Unlock()
			if admit == nil {
				release()
			}
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.wg.Add(1)
		s.mu.Unlock()
		obsConnsTotal.Inc()
		if admit != nil {
			// Over MaxConns: tell the client why (typed, retryable),
			// then hang up. Done off the accept loop so a stalled peer
			// cannot block admission of everyone else. Reading the
			// client's hello first makes the rejection its response
			// instead of racing the client's own write; a silent peer
			// gets a short grace before the same treatment.
			go func() {
				defer s.wg.Done()
				defer s.forget(conn)
				defer conn.Close()
				conn.SetReadDeadline(time.Now().Add(2 * time.Second))
				c := wire.NewConn(conn)
				c.Recv()
				fault := core.NewFault(core.FaultOverload, "connect", admit)
				c.Send(wire.MsgError, errorPayload(fault))
			}()
			continue
		}
		obsConnsOpen.Add(1)
		// One goroutine per client: the PREDATOR threading model.
		go func() {
			defer s.wg.Done()
			defer obsConnsOpen.Add(-1)
			defer release()
			s.serveConn(conn)
			s.forget(conn)
		}()
	}
}

// forget removes a finished connection from the shutdown set.
func (s *Server) forget(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops the server immediately: no drain grace, in-flight
// statements are cut off by closing their connections.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: drain nothing
	return s.Shutdown(ctx)
}

// Shutdown gracefully stops the server: it stops accepting connections
// and statements, waits for in-flight statements to finish (and their
// result frames to reach the wire) until ctx expires, then closes every
// connection, waits for the session goroutines, and closes the engine.
// Safe to call concurrently and repeatedly; every call returns the
// engine's close error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	drained := make(chan struct{})
	go func() {
		s.stmts.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
	}
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.shutdown = true
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.closeErr = s.eng.Close()
	})
	s.wg.Wait() // racers that lost the Once still wait for teardown
	return s.closeErr
}

// beginStmt admits one statement into the drain set, or refuses it
// because shutdown has begun. The caller must s.stmts.Done() when the
// statement's result (or error) has been written to the wire.
func (s *Server) beginStmt() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.stmts.Add(1)
	return true
}

// errorPayload encodes err as a typed MsgError payload: the message,
// the fault class as a machine-readable code, and the retryable flag
// clients use to decide between backoff-and-resend and giving up.
func errorPayload(err error) []byte {
	code := ""
	if class := core.FaultClassOf(err); class != core.FaultNone {
		code = class.String()
	}
	return wire.EncodeError(err.Error(), code, core.Retryable(err))
}

// session is one client connection's state.
type session struct {
	user string
	// eng is the per-connection engine session: statement deadlines set
	// with SET STATEMENT_TIMEOUT are scoped to this connection.
	eng *engine.Session
	// admitted is the tenant holding this session's slot under the
	// per-user session cap (nil until a successful hello).
	admitted *govern.Tenant
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	// A panicking handler must cost at most this one connection, never
	// the server: recover, log, drop the client.
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: connection %s: panic: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	// The server side opts into PREDATOR_FAULT wire faults so chaos
	// tests can perturb the server's reads and writes without touching
	// the in-process test client's.
	c := wire.NewConn(conn).EnableFaultInjection()
	sess := &session{user: "anonymous", eng: s.eng.NewSession()}
	sess.eng.SetStatementTimeout(s.opts.StatementTimeout)
	defer func() {
		if sess.admitted != nil {
			sess.admitted.EndSession()
		}
	}()
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		typ, payload, err := c.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("server: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if typ == wire.MsgQuit {
			return
		}
		if err := s.handle(c, sess, typ, payload); err != nil {
			s.logf("server: dropping connection %s: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) handle(c *wire.Conn, sess *session, typ byte, payload []byte) (err error) {
	sendErr := func(err error) error {
		return c.Send(wire.MsgError, errorPayload(err))
	}
	// A panic inside a handler (a misbehaving in-process UDF, a bad
	// frame tripping a decoder bug) becomes an error reply; the
	// connection keeps serving.
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: request 0x%02x from %s panicked: %v\n%s", typ, sess.user, r, debug.Stack())
			err = sendErr(fmt.Errorf("server: internal error: %v", r))
		}
	}()
	switch typ {
	case wire.MsgHello:
		r := &wire.Reader{Buf: payload}
		user := r.Str()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		if user != "" {
			sess.user = user
		}
		// Bind the session to its tenant so quotas govern its
		// statements, and take a slot under the per-user session cap.
		sess.eng.BindTenant(sess.user)
		if ten := sess.eng.Tenant(); ten != sess.admitted {
			if sess.admitted != nil {
				sess.admitted.EndSession()
				sess.admitted = nil
			}
			if err := ten.AddSession(s.opts.MaxSessionsPerUser); err != nil {
				// Send the typed refusal, then drop the connection: the
				// session is already bound to the tenant, so keeping it
				// open would let a client that ignores the error keep
				// issuing statements without holding a session slot.
				if serr := sendErr(core.NewFault(core.FaultOverload, "hello", err)); serr != nil {
					return serr
				}
				return fmt.Errorf("refusing hello from %s: %w", sess.user, err)
			}
			sess.admitted = ten
		}
		w := &wire.Writer{}
		w.Str("welcome " + sess.user)
		return c.Send(wire.MsgOK, w.Buf)
	case wire.MsgPing:
		return c.Send(wire.MsgOK, (&wire.Writer{}).Str("pong").Buf)
	case wire.MsgQuery:
		return s.handleQuery(c, sess, payload)
	case wire.MsgRegister:
		r := &wire.Reader{Buf: payload}
		name := r.Str()
		method := r.Str()
		classBytes := r.Bytes()
		nargs := int(r.Uvarint())
		args := make([]types.Kind, nargs)
		for i := range args {
			args[i] = types.Kind(r.Byte())
		}
		ret := types.Kind(r.Byte())
		isolated := r.Byte() != 0
		persist := r.Byte() != 0
		if r.Err != nil {
			return sendErr(r.Err)
		}
		// The upload path re-verifies the class inside the engine's VM;
		// nothing the client sends is trusted.
		if err := s.eng.RegisterJaguarClass(name, classBytes, method, args, ret, isolated, persist); err != nil {
			return sendErr(err)
		}
		s.logf("server: user %s registered UDF %s (%d bytes of class)", sess.user, name, len(classBytes))
		return c.Send(wire.MsgOK, (&wire.Writer{}).Str("function "+name+" registered").Buf)
	case wire.MsgPutObject:
		r := &wire.Reader{Buf: payload}
		data := r.Bytes()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		h := s.eng.Objects().Put(data)
		return c.Send(wire.MsgHandle, (&wire.Writer{}).Varint(h).Buf)
	case wire.MsgFetchClass:
		r := &wire.Reader{Buf: payload}
		name := r.Str()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		f, ok := s.eng.Catalog().Function(name)
		if !ok || len(f.Code) == 0 {
			return sendErr(fmt.Errorf("server: no portable class stored for function %q", name))
		}
		w := &wire.Writer{}
		w.Str(f.Name)
		w.Bytes(f.Code)
		w.Uvarint(uint64(len(f.ArgKinds)))
		for _, k := range f.ArgKinds {
			w.Byte(byte(k))
		}
		w.Byte(byte(f.Return))
		return c.Send(wire.MsgClass, w.Buf)
	default:
		return sendErr(fmt.Errorf("server: unknown request type 0x%02x", typ))
	}
}

// handleQuery runs one statement under admission control: the drain
// set (so Shutdown can wait for it), then the concurrent-query gate.
// Shed queries get a typed retryable error; the statement never ran.
func (s *Server) handleQuery(c *wire.Conn, sess *session, payload []byte) error {
	r := &wire.Reader{Buf: payload}
	q := r.Str()
	if r.Err != nil {
		return c.Send(wire.MsgError, errorPayload(r.Err))
	}
	if !s.beginStmt() {
		return c.Send(wire.MsgError, errorPayload(core.NewFault(core.FaultOverload, "admit", errDraining)))
	}
	// Done only after the result frame is written: a drained shutdown
	// must never close a connection between execution and the ack.
	defer s.stmts.Done()
	gateStart := time.Now()
	release, admit := s.queryGate.Acquire(s.opts.AdmissionWait)
	if admit != nil {
		return c.Send(wire.MsgError, errorPayload(core.NewFault(core.FaultOverload, "admit", admit)))
	}
	sess.eng.NoteAdmissionWait(time.Since(gateStart))
	obsQueriesTot.Inc()
	obsQueriesIn.Add(1)
	// The slot and gauge are released via defer so a panicking statement
	// (recovered in handle) cannot leak a MaxConcurrentQueries slot; the
	// closure keeps the release ahead of the result write, so a stalled
	// client draining its result frame does not hold an execution slot.
	res, execErr := func() (*engine.Result, error) {
		defer release()
		defer obsQueriesIn.Add(-1)
		return sess.eng.Exec(q)
	}()
	if execErr != nil {
		return c.Send(wire.MsgError, errorPayload(execErr))
	}
	return c.Send(wire.MsgResult, wire.EncodeResult(res.Schema, res.Rows, res.RowsAffected, res.Message, res.Plan))
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// String identifies the server for logs.
func (s *Server) String() string {
	return strings.TrimSpace("predator-server@" + s.Addr())
}
