// Package server exposes a PREDATOR-Go engine over TCP. Like the
// paper's PREDATOR, the server is a single multi-threaded process with
// (at least) one thread — here a goroutine — per connected client.
// Clients issue SQL, upload verified Jaguar UDF classes (the §6.4
// migration path), and register large objects for callback access.
package server

import (
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"predator/internal/engine"
	"predator/internal/obs"
	"predator/internal/types"
	"predator/internal/wire"
)

// Process-wide server metrics.
var (
	obsConnsTotal = obs.Default.Counter("predator_server_connections_total")
	obsConnsOpen  = obs.Default.Gauge("predator_server_connections_open")
	obsQueriesIn  = obs.Default.Gauge("predator_server_queries_in_flight")
	obsQueriesTot = obs.Default.Counter("predator_server_queries_total")
)

// Server serves one engine over a listener.
type Server struct {
	eng  *engine.Engine
	logf func(format string, args ...any)
	opts Options

	mu       sync.Mutex
	ln       net.Listener
	conns    map[net.Conn]bool
	wg       sync.WaitGroup
	shutdown bool
}

// Options configures a server.
type Options struct {
	// Logf receives connection lifecycle logs (nil = log.Printf).
	Logf func(format string, args ...any)
	// ReadTimeout is the per-connection idle read deadline: a client
	// that sends nothing for this long is disconnected, so wedged or
	// vanished clients never pin a session goroutine forever
	// (0 = no deadline).
	ReadTimeout time.Duration
	// StatementTimeout seeds each connection's session deadline;
	// clients adjust theirs with SET STATEMENT_TIMEOUT (0 = none).
	StatementTimeout time.Duration
}

// New wraps an engine in a server.
func New(eng *engine.Engine, opts Options) *Server {
	logf := opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	return &Server{eng: eng, logf: logf, opts: opts, conns: make(map[net.Conn]bool)}
}

// Listen starts accepting connections on addr (e.g. "127.0.0.1:5442")
// and returns immediately; the returned address is the bound one (use
// ":0" to pick a free port).
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr().String(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.shutdown {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()
		obsConnsTotal.Inc()
		obsConnsOpen.Add(1)
		s.wg.Add(1)
		// One goroutine per client: the PREDATOR threading model.
		go func() {
			defer s.wg.Done()
			defer obsConnsOpen.Add(-1)
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Close stops the listener and all sessions, then closes the engine.
func (s *Server) Close() error {
	s.mu.Lock()
	s.shutdown = true
	if s.ln != nil {
		s.ln.Close()
	}
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.eng.Close()
}

// session is one client connection's state.
type session struct {
	user string
	// eng is the per-connection engine session: statement deadlines set
	// with SET STATEMENT_TIMEOUT are scoped to this connection.
	eng *engine.Session
}

func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	// A panicking handler must cost at most this one connection, never
	// the server: recover, log, drop the client.
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: connection %s: panic: %v\n%s", conn.RemoteAddr(), r, debug.Stack())
		}
	}()
	c := wire.NewConn(conn)
	sess := &session{user: "anonymous", eng: s.eng.NewSession()}
	sess.eng.SetStatementTimeout(s.opts.StatementTimeout)
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		typ, payload, err := c.Recv()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("server: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if typ == wire.MsgQuit {
			return
		}
		if err := s.handle(c, sess, typ, payload); err != nil {
			s.logf("server: reply to %s failed: %v", conn.RemoteAddr(), err)
			return
		}
	}
}

func (s *Server) handle(c *wire.Conn, sess *session, typ byte, payload []byte) (err error) {
	sendErr := func(err error) error {
		w := &wire.Writer{}
		w.Str(err.Error())
		return c.Send(wire.MsgError, w.Buf)
	}
	// A panic inside a handler (a misbehaving in-process UDF, a bad
	// frame tripping a decoder bug) becomes an error reply; the
	// connection keeps serving.
	defer func() {
		if r := recover(); r != nil {
			s.logf("server: request 0x%02x from %s panicked: %v\n%s", typ, sess.user, r, debug.Stack())
			err = sendErr(fmt.Errorf("server: internal error: %v", r))
		}
	}()
	switch typ {
	case wire.MsgHello:
		r := &wire.Reader{Buf: payload}
		user := r.Str()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		if user != "" {
			sess.user = user
		}
		w := &wire.Writer{}
		w.Str("welcome " + sess.user)
		return c.Send(wire.MsgOK, w.Buf)
	case wire.MsgPing:
		return c.Send(wire.MsgOK, (&wire.Writer{}).Str("pong").Buf)
	case wire.MsgQuery:
		r := &wire.Reader{Buf: payload}
		q := r.Str()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		obsQueriesTot.Inc()
		obsQueriesIn.Add(1)
		res, err := sess.eng.Exec(q)
		obsQueriesIn.Add(-1)
		if err != nil {
			return sendErr(err)
		}
		return c.Send(wire.MsgResult, wire.EncodeResult(res.Schema, res.Rows, res.RowsAffected, res.Message, res.Plan))
	case wire.MsgRegister:
		r := &wire.Reader{Buf: payload}
		name := r.Str()
		method := r.Str()
		classBytes := r.Bytes()
		nargs := int(r.Uvarint())
		args := make([]types.Kind, nargs)
		for i := range args {
			args[i] = types.Kind(r.Byte())
		}
		ret := types.Kind(r.Byte())
		isolated := r.Byte() != 0
		persist := r.Byte() != 0
		if r.Err != nil {
			return sendErr(r.Err)
		}
		// The upload path re-verifies the class inside the engine's VM;
		// nothing the client sends is trusted.
		if err := s.eng.RegisterJaguarClass(name, classBytes, method, args, ret, isolated, persist); err != nil {
			return sendErr(err)
		}
		s.logf("server: user %s registered UDF %s (%d bytes of class)", sess.user, name, len(classBytes))
		return c.Send(wire.MsgOK, (&wire.Writer{}).Str("function "+name+" registered").Buf)
	case wire.MsgPutObject:
		r := &wire.Reader{Buf: payload}
		data := r.Bytes()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		h := s.eng.Objects().Put(data)
		return c.Send(wire.MsgHandle, (&wire.Writer{}).Varint(h).Buf)
	case wire.MsgFetchClass:
		r := &wire.Reader{Buf: payload}
		name := r.Str()
		if r.Err != nil {
			return sendErr(r.Err)
		}
		f, ok := s.eng.Catalog().Function(name)
		if !ok || len(f.Code) == 0 {
			return sendErr(fmt.Errorf("server: no portable class stored for function %q", name))
		}
		w := &wire.Writer{}
		w.Str(f.Name)
		w.Bytes(f.Code)
		w.Uvarint(uint64(len(f.ArgKinds)))
		for _, k := range f.ArgKinds {
			w.Byte(byte(k))
		}
		w.Byte(byte(f.Return))
		return c.Send(wire.MsgClass, w.Buf)
	default:
		return sendErr(fmt.Errorf("server: unknown request type 0x%02x", typ))
	}
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// String identifies the server for logs.
func (s *Server) String() string {
	return strings.TrimSpace("predator-server@" + s.Addr())
}
