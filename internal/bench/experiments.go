package bench

import (
	"fmt"
	"strings"
	"time"
)

// Table is one reproduced table/figure, rendered as aligned text.
type Table struct {
	ID      string // "table1", "fig4", ...
	Title   string
	Caption string
	Header  []string
	Rows    [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", strings.ToUpper(t.ID), t.Title)
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// Axes parameterizes the experiment sweeps. The paper's full axes take
// minutes; Quick shrinks them for CI-sized runs.
type Axes struct {
	Designs   []string
	Fig4Calls []int
	Fig6Indep []int
	Fig7Dep   []int
	// Fig7MaxJNIDep skips the checked designs (JNI, IJNI, BC++) above
	// this dep count (the paper: "We did not run JNI with 1000
	// NumDataDepComps because of the large time involved"). 0 = no skip.
	Fig7MaxJNIDep int
	Fig8NCB       []int
}

// QuickAxes are CI-sized sweeps (run with Config{Rows: 1000}).
func QuickAxes() Axes {
	return Axes{
		Designs:       AllDesigns,
		Fig4Calls:     []int{1, 100, 1000},
		Fig6Indep:     []int{0, 10, 100, 1000, 10000},
		Fig7Dep:       []int{0, 1, 10, 100},
		Fig7MaxJNIDep: 100,
		Fig8NCB:       []int{0, 1, 10, 100},
	}
}

// FullAxes reproduce the paper's sweeps (Rows=10000; takes minutes).
func FullAxes() Axes {
	return Axes{
		Designs:       AllDesigns,
		Fig4Calls:     []int{1, 100, 10000},
		Fig6Indep:     []int{0, 10, 100, 1000, 10000, 100000, 1000000},
		Fig7Dep:       []int{0, 1, 10, 100, 1000},
		Fig7MaxJNIDep: 100,
		Fig8NCB:       []int{0, 1, 10, 100},
	}
}

func secs(d time.Duration) string { return fmt.Sprintf("%.4f", d.Seconds()) }

func rel(d, base time.Duration) string {
	if base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", float64(d)/float64(base))
}

// Table1 reproduces the design-space table (qualitative).
func Table1() *Table {
	return &Table{
		ID:    "table1",
		Title: "Design Space for Server-Side UDFs",
		Caption: "Language x process placement, with the safety each design provides\n" +
			"(BC++ is the bounds-checked native comparator of Fig. 7).",
		Header: []string{"design", "label", "language", "process", "server memory safe", "resource policing"},
		Rows: [][]string{
			{"Design 1", "C++", "native (Go)", "same", "no", "no"},
			{"Design 2", "IC++", "native (Go)", "isolated", "yes (process wall)", "kill only"},
			{"Design 3", "JNI", "Jaguar VM", "same", "yes (verifier+checks)", "fuel+memory+depth"},
			{"Design 4", "IJNI", "Jaguar VM", "isolated", "yes (both)", "fuel+memory+depth"},
			{"SFI", "BC++", "native (Go)", "same", "reads/writes checked", "no"},
		},
	}
}

// Fig4 reproduces the table-access calibration: base query cost versus
// number of UDF invocations, one series per relation.
func Fig4(h *Harness, ax Axes) (*Table, error) {
	t := &Table{
		ID:      "fig4",
		Title:   "Calibration: Table Access Costs",
		Caption: "Response time (s) of the trivial integrated UDF; series = relation.",
		Header:  []string{"#func calls"},
	}
	for _, size := range BASizes {
		t.Header = append(t.Header, RelName(size))
	}
	for _, calls := range ax.Fig4Calls {
		if calls > h.Cfg.Rows {
			continue
		}
		row := []string{fmt.Sprintf("%d", calls)}
		for _, size := range BASizes {
			d, err := h.BaseCost(size, calls)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(d))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig5 reproduces the invocation-cost calibration: no-op generic UDF,
// fixed call count, byte-array size on the X axis, design per column.
func Fig5(h *Harness, ax Axes) (*Table, error) {
	calls := h.Cfg.Calls
	t := &Table{
		ID:    "fig5",
		Title: "Calibration: Function Invocation Costs",
		Caption: fmt.Sprintf("Response time (s) of %d no-op UDF invocations vs byte-array size.\n"+
			"Paper shape: IC++ > JNI for small arrays; JNI slightly worse at 10000.", calls),
		Header: append([]string{"byte array size"}, labels(ax.Designs)...),
	}
	for _, size := range BASizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, d := range ax.Designs {
			dur, err := h.RunQuery(d, size, 0, 0, 0, calls)
			if err != nil {
				return nil, err
			}
			row = append(row, secs(dur))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig6 reproduces the pure-computation experiment: response time (and
// time relative to C++) versus NumDataIndepComps.
func Fig6(h *Harness, ax Axes) (*Table, *Table, error) {
	calls := h.Cfg.Calls
	abs := &Table{
		ID:    "fig6",
		Title: "Pure Computation",
		Caption: fmt.Sprintf("Response time (s), %d invocations, 10000-byte arrays, vs NumDataIndepComps.\n"+
			"Paper shape: JNI tracks C++ (JIT); our closure-threaded JIT keeps a constant ratio.", calls),
		Header: append([]string{"DataIndepComps"}, labels(ax.Designs)...),
	}
	relT := &Table{
		ID:      "fig6rel",
		Title:   "Pure Computation (relative to C++)",
		Header:  append([]string{"DataIndepComps"}, labels(ax.Designs)...),
		Caption: "Response time divided by the C++ (Design 1) time.",
	}
	for _, indep := range ax.Fig6Indep {
		rowAbs := []string{fmt.Sprintf("%d", indep)}
		rowRel := []string{fmt.Sprintf("%d", indep)}
		var base time.Duration
		for _, d := range ax.Designs {
			dur, err := h.RunQuery(d, 10000, indep, 0, 0, calls)
			if err != nil {
				return nil, nil, err
			}
			if d == DesignCPP {
				base = dur
			}
			rowAbs = append(rowAbs, secs(dur))
			rowRel = append(rowRel, rel(dur, base))
		}
		abs.Rows = append(abs.Rows, rowAbs)
		relT.Rows = append(relT.Rows, rowRel)
	}
	return abs, relT, nil
}

// Fig7 reproduces the data-access experiment: response time versus
// NumDataDepComps, including the bounds-checked BC++ comparator.
func Fig7(h *Harness, ax Axes) (*Table, *Table, error) {
	calls := h.Cfg.Calls
	abs := &Table{
		ID:    "fig7",
		Title: "Data Access",
		Caption: fmt.Sprintf("Response time (s), %d invocations, 10000-byte arrays, vs NumDataDepComps.\n"+
			"Paper shape: JNI pays the bounds-check penalty; vs BC++ it is only ~20%% worse.", calls),
		Header: append([]string{"DataDepComps"}, labels(ax.Designs)...),
	}
	relT := &Table{
		ID:      "fig7rel",
		Title:   "Data Access (relative to C++)",
		Header:  append([]string{"DataDepComps"}, labels(ax.Designs)...),
		Caption: "Response time divided by the C++ (Design 1) time.",
	}
	for _, dep := range ax.Fig7Dep {
		rowAbs := []string{fmt.Sprintf("%d", dep)}
		rowRel := []string{fmt.Sprintf("%d", dep)}
		var base time.Duration
		for _, d := range ax.Designs {
			if ax.Fig7MaxJNIDep > 0 && dep > ax.Fig7MaxJNIDep &&
				(d == DesignJNI || d == DesignIJNI || d == DesignBCPP) {
				// The paper skipped JNI at the largest dep too.
				rowAbs = append(rowAbs, "skipped")
				rowRel = append(rowRel, "-")
				continue
			}
			dur, err := h.RunQuery(d, 10000, 0, dep, 0, calls)
			if err != nil {
				return nil, nil, err
			}
			if d == DesignCPP {
				base = dur
			}
			rowAbs = append(rowAbs, secs(dur))
			rowRel = append(rowRel, rel(dur, base))
		}
		abs.Rows = append(abs.Rows, rowAbs)
		relT.Rows = append(relT.Rows, rowRel)
	}
	return abs, relT, nil
}

// Fig8 reproduces the callback experiment: response time versus
// NumCallbacks.
func Fig8(h *Harness, ax Axes) (*Table, *Table, error) {
	calls := h.Cfg.Calls
	abs := &Table{
		ID:    "fig8",
		Title: "Callbacks",
		Caption: fmt.Sprintf("Response time (s), %d invocations, 10000-byte arrays, vs NumCallbacks.\n"+
			"Paper shape: IC++ pays most per callback (full process round trip); JNI moderate.", calls),
		Header: append([]string{"Callbacks"}, labels(ax.Designs)...),
	}
	relT := &Table{
		ID:      "fig8rel",
		Title:   "Callbacks (relative to C++)",
		Header:  append([]string{"Callbacks"}, labels(ax.Designs)...),
		Caption: "Response time divided by the C++ (Design 1) time.",
	}
	for _, ncb := range ax.Fig8NCB {
		rowAbs := []string{fmt.Sprintf("%d", ncb)}
		rowRel := []string{fmt.Sprintf("%d", ncb)}
		var base time.Duration
		for _, d := range ax.Designs {
			dur, err := h.RunQuery(d, 10000, 0, 0, ncb, calls)
			if err != nil {
				return nil, nil, err
			}
			if d == DesignCPP {
				base = dur
			}
			rowAbs = append(rowAbs, secs(dur))
			rowRel = append(rowRel, rel(dur, base))
		}
		abs.Rows = append(abs.Rows, rowAbs)
		relT.Rows = append(relT.Rows, rowRel)
	}
	return abs, relT, nil
}

func labels(designs []string) []string {
	out := make([]string, len(designs))
	for i, d := range designs {
		out[i] = Label(d)
	}
	return out
}
