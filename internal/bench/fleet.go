package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"predator/internal/core"
	"predator/internal/fleet"
	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/types"
)

// FleetMultiplexing measures what the shared executor fleet buys over
// the paper's per-query executor lifecycle. Workers at 1, 8 and 32
// concurrency run short queries over 8 distinct VM UDFs; each query is
// a fixed number of isolated crossings. In per-query mode every query
// binds (and tears down) its own executor process — the paper's
// lifecycle. In fleet mode all queries share 4 multiplexed processes
// with warm (tenant, UDF) stream recycling. Reported per cell: acked
// queries and throughput, peak resident executor processes, and
// processes started — the numbers the fleet exists to hold flat.
func FleetMultiplexing(perCell time.Duration) (*Table, error) {
	if perCell <= 0 {
		perCell = 300 * time.Millisecond
	}
	const (
		nUDFs        = 8
		fleetSize    = 4
		rowsPerQuery = 16
	)
	intKinds := []types.Kind{types.KindInt}
	classes := make([][]byte, nUDFs)
	for i := range classes {
		src := fmt.Sprintf(`func f(a int) int { return a + %d; }`, i+1)
		cb, err := jaguar.CompileToBytes(src, fmt.Sprintf("Fleet%d", i+1))
		if err != nil {
			return nil, err
		}
		classes[i] = cb
	}

	type cell struct {
		mode    string
		workers int
		acked   int64
		qps     float64
		peak    int64
		started int64
	}
	var cells []cell
	for _, mode := range []string{"per-query", "fleet"} {
		for _, workers := range []int{1, 8, 32} {
			startsBefore := isolate.ReadStats().Starts
			var fl *fleet.Fleet
			var shared []core.UDF
			if mode == "fleet" {
				fl = fleet.New(fleet.Options{Size: fleetSize})
				for i := 0; i < nUDFs; i++ {
					shared = append(shared, isolate.WithFleet(isolate.NewVMIsolated(
						fmt.Sprintf("fleet_add%d", i+1), intKinds, types.KindInt,
						isolate.VMSetup{ClassBytes: classes[i], Method: "f"}), fl))
				}
			}
			var acked atomic.Int64
			var live, peak atomic.Int64
			var firstErr atomic.Value
			raise := func(cur int64) {
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						return
					}
				}
			}
			var wg sync.WaitGroup
			start := time.Now()
			deadline := start.Add(perCell)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for q := 0; time.Now().Before(deadline); q++ {
						i := (w + q) % nUDFs
						u := (core.UDF)(nil)
						if fl != nil {
							u = shared[i]
						} else {
							// The paper's lifecycle: this query's own executor,
							// torn down with the query.
							u = isolate.NewVMIsolated(
								fmt.Sprintf("pq_add%d", i+1), intKinds, types.KindInt,
								isolate.VMSetup{ClassBytes: classes[i], Method: "f"})
							raise(live.Add(1))
						}
						ok := true
						for r := 0; r < rowsPerQuery && ok; r++ {
							out, err := u.Invoke(nil, []types.Value{types.NewInt(int64(r))})
							switch {
							case err != nil:
								firstErr.CompareAndSwap(nil, err)
								ok = false
							case out.Int != int64(r)+int64(i+1):
								firstErr.CompareAndSwap(nil, fmt.Errorf(
									"udf %d returned %d, want %d", i, out.Int, int64(r)+int64(i+1)))
								ok = false
							}
						}
						if fl != nil {
							raise(int64(fl.AliveExecutors()))
						} else {
							u.Close()
							live.Add(-1)
						}
						if ok {
							acked.Add(1)
						}
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			started := isolate.ReadStats().Starts - startsBefore
			if fl != nil {
				fl.Close()
			}
			if err, _ := firstErr.Load().(error); err != nil {
				return nil, fmt.Errorf("bench: fleet %s/%d: %w", mode, workers, err)
			}
			if acked.Load() == 0 {
				return nil, fmt.Errorf("bench: fleet %s/%d: no query completed", mode, workers)
			}
			cells = append(cells, cell{
				mode:    mode,
				workers: workers,
				acked:   acked.Load(),
				qps:     float64(acked.Load()) / elapsed.Seconds(),
				peak:    peak.Load(),
				started: started,
			})
		}
	}

	t := &Table{
		ID:      "fleet",
		Title:   "Executor fleet: multiplexed crossings vs per-query executor processes",
		Caption: fmt.Sprintf("%v per cell; %d VM UDFs, %d crossings per query. per-query = one executor process per query (the paper's lifecycle); fleet = %d shared multiplexed processes with warm stream recycling.", perCell, nUDFs, rowsPerQuery, fleetSize),
		Header:  []string{"mode", "concurrency", "acked", "acked qps", "peak resident procs", "procs started"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.mode,
			fmt.Sprintf("%d", c.workers),
			fmt.Sprintf("%d", c.acked),
			fmt.Sprintf("%.0f", c.qps),
			fmt.Sprintf("%d", c.peak),
			fmt.Sprintf("%d", c.started),
		})
	}
	return t, nil
}
