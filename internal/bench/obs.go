package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"predator/internal/engine"
	"predator/internal/obs"
	"predator/internal/types"
)

// ObserverOverhead measures the flight recorder's cost on the Fig. 5
// scalar hot path: the same scalar-UDF SELECT is run with recording on
// and off in interleaved trials (so clock drift and cache state hit
// both arms equally), and the per-statement latency distributions are
// compared. The recorder's per-statement cost is one registry
// register/deregister, a query-store append and a handful of atomics
// per row, so the p50 ratio should stay within a few percent of 1.0.
// Returns the table plus {"p50_ratio": onP50/offP50} for
// -assert-obs-overhead.
func ObserverOverhead(stmts, trials int) (*Table, map[string]float64, error) {
	if stmts <= 0 {
		stmts = 150
	}
	if trials <= 0 {
		trials = 10
	}
	dir, err := os.MkdirTemp("", "predator-obs-*")
	if err != nil {
		return nil, nil, err
	}
	defer os.RemoveAll(dir)

	eng, err := engine.Open(filepath.Join(dir, "obs.db"), engine.Options{BufferPoolPages: 512})
	if err != nil {
		return nil, nil, err
	}
	defer eng.Close()
	if _, err := eng.Exec(`CREATE TABLE obs_bench (id INT, ba BYTES)`); err != nil {
		return nil, nil, err
	}
	tbl, _ := eng.Catalog().Table("obs_bench")
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i % 251)
	}
	const rows = 256
	row := types.Row{types.NewInt(0), types.NewBytes(payload)}
	for i := 0; i < rows; i++ {
		row[0] = types.NewInt(int64(i))
		rec, err := types.EncodeRow(nil, tbl.Schema, row)
		if err != nil {
			return nil, nil, err
		}
		if _, err := tbl.Heap().Insert(rec); err != nil {
			return nil, nil, err
		}
	}
	if err := eng.RegisterNative("gen_cpp", genericArgKinds, types.KindInt, genericNative); err != nil {
		return nil, nil, err
	}
	query := `SELECT gen_cpp(ba, 0, 0, 0) FROM obs_bench`

	// Whatever happens, leave the process-wide recorder on: it is the
	// production default and other experiments (and tests sharing the
	// process) expect it.
	defer obs.EnableRecording(true)

	// Warm the buffer pool, the plan path and the branch predictors
	// before either arm takes a sample.
	for i := 0; i < 16; i++ {
		if _, err := eng.Exec(query); err != nil {
			return nil, nil, err
		}
	}

	// ABBA order at statement granularity: on,off,off,on repeating per
	// statement, so drift at any timescale (page cache, frequency
	// scaling, GC ramp, a noisy neighbor) hits both arms equally —
	// coarser blocks were observed to swing the p50 ratio ±5% from
	// minute-scale drift alone.
	samples := map[bool][]time.Duration{}
	for i := 0; i < trials*2*stmts; i++ {
		on := i%4 == 0 || i%4 == 3
		obs.EnableRecording(on)
		start := time.Now()
		if _, err := eng.Exec(query); err != nil {
			return nil, nil, err
		}
		samples[on] = append(samples[on], time.Since(start))
	}

	stats := func(ds []time.Duration) (p50, p99, mean time.Duration) {
		sorted := append([]time.Duration(nil), ds...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		var total time.Duration
		for _, d := range sorted {
			total += d
		}
		return sorted[len(sorted)/2], sorted[len(sorted)*99/100], total / time.Duration(len(sorted))
	}
	onP50, onP99, onMean := stats(samples[true])
	offP50, offP99, offMean := stats(samples[false])
	ratio := float64(onP50) / float64(offP50)

	t := &Table{
		ID:    "obs",
		Title: "Flight-recorder overhead: scalar-UDF statement latency, recording on vs off",
		Caption: fmt.Sprintf(
			"%d interleaved trials per arm, %d statements per trial, %d-row scan invoking the in-process generic UDF per row (the Fig. 5 C++ hot path).",
			trials, stmts, rows),
		Header: []string{"recording", "stmts", "p50", "p99", "mean", "p50 vs off"},
	}
	for _, arm := range []struct {
		name           string
		p50, p99, mean time.Duration
		n              int
		ratioDisplay   string
	}{
		{"on", onP50, onP99, onMean, len(samples[true]), fmt.Sprintf("%.3fx", ratio)},
		{"off", offP50, offP99, offMean, len(samples[false]), "1.000x"},
	} {
		t.Rows = append(t.Rows, []string{
			arm.name,
			fmt.Sprintf("%d", arm.n),
			arm.p50.Round(time.Microsecond).String(),
			arm.p99.Round(time.Microsecond).String(),
			arm.mean.Round(time.Microsecond).String(),
			arm.ratioDisplay,
		})
	}
	return t, map[string]float64{"p50_ratio": ratio}, nil
}
