package bench

import (
	"fmt"
	"strings"
	"time"

	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/types"
)

// AblationJIT isolates the closure-threaded JIT's contribution to the
// Fig. 6 result: the same Jaguar query on a JIT harness and a pure
// interpreter harness.
func AblationJIT(jit, nojit *Harness, indepAxis []int) (*Table, error) {
	t := &Table{
		ID:      "jit",
		Title:   "Ablation: JIT vs interpreter (JNI design, pure computation)",
		Caption: "Response time (s); the JIT removes decode+dispatch, the honest remainder is one closure call per instruction.",
		Header:  []string{"DataIndepComps", "C++", "JNI (jit)", "JNI (interp)", "jit speedup"},
	}
	calls := jit.Cfg.Calls
	for _, indep := range indepAxis {
		base, err := jit.RunQuery(DesignCPP, 10000, indep, 0, 0, calls)
		if err != nil {
			return nil, err
		}
		withJIT, err := jit.RunQuery(DesignJNI, 10000, indep, 0, 0, calls)
		if err != nil {
			return nil, err
		}
		noJIT, err := nojit.RunQuery(DesignJNI, 10000, indep, 0, 0, calls)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", indep),
			secs(base), secs(withJIT), secs(noJIT),
			fmt.Sprintf("%.2fx", float64(noJIT)/float64(withJIT)),
		})
	}
	return t, nil
}

// AblationVerifier measures the load-time cost of the verification
// pipeline (decode + verify + link + JIT compile), which §2.5 argues is
// amortizable across a relation's worth of invocations.
func AblationVerifier(loads int, amortizeOver int) (*Table, error) {
	classBytes, err := jaguar.CompileToBytes(GenericUDFSource, "GenericAblate")
	if err != nil {
		return nil, err
	}
	vm := jvm.New(jvm.Options{})
	start := time.Now()
	for i := 0; i < loads; i++ {
		loader := vm.NewLoader(fmt.Sprintf("ablate-%d", i))
		if _, err := loader.Load(classBytes); err != nil {
			return nil, err
		}
	}
	total := time.Since(start)
	per := total / time.Duration(loads)
	t := &Table{
		ID:      "verifier",
		Title:   "Ablation: class-load (verify+link+JIT) cost",
		Caption: "One class load happens per UDF per query; the paper amortizes it over the relation.",
		Header:  []string{"loads", "total", "per load", fmt.Sprintf("per invocation (/%d)", amortizeOver)},
		Rows: [][]string{{
			fmt.Sprintf("%d", loads),
			total.String(),
			per.String(),
			(per / time.Duration(amortizeOver)).String(),
		}},
	}
	return t, nil
}

// AblationFuel measures containment latency: how quickly the resource
// manager stops a runaway (infinite-loop) UDF for various budgets —
// the §6.2 denial-of-service defense the paper's JVM lacked.
func AblationFuel(budgets []int64) (*Table, error) {
	src := `func spin(x int) int {
		var acc int = 0;
		while (true) { acc = acc + 1; }
		return acc;
	}`
	// 'while (true)' needs a reachable return; Jaguar requires returns
	// on all paths, so the loop body above keeps the checker happy via
	// the trailing return.
	cls, err := jaguar.Compile(src, "Spin")
	if err != nil {
		return nil, err
	}
	vm := jvm.New(jvm.Options{Security: jvm.AllowAll()})
	lc, err := vm.NewLoader("fuel").LoadClass(cls)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "fuel",
		Title:   "Ablation: denial-of-service containment via instruction fuel",
		Caption: "Wall time until a runaway UDF is stopped, per fuel budget.",
		Header:  []string{"fuel budget", "stop latency", "instructions executed"},
	}
	for _, budget := range budgets {
		start := time.Now()
		_, usage, err := lc.Call("spin", []jvm.Value{jvm.IntVal(0)}, &jvm.CallOptions{
			Limits: jvm.Limits{Fuel: budget},
		})
		elapsed := time.Since(start)
		if err == nil {
			return nil, fmt.Errorf("bench: runaway UDF terminated without a trap")
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", budget),
			elapsed.String(),
			fmt.Sprintf("%d", usage.Instructions),
		})
	}
	return t, nil
}

// AblationExecutorPool compares a fresh executor process per batch
// (the paper's once-per-query lifecycle) against a pre-allocated pool
// (the alternative §4.1 mentions).
func AblationExecutorPool(invocations int) (*Table, error) {
	args := []types.Value{
		types.NewBytes(make([]byte, 100)),
		types.NewInt(0), types.NewInt(0), types.NewInt(0),
	}
	// Fresh executor per batch.
	freshStart := time.Now()
	fresh := isolate.NewNativeIsolated("gen_icpp", genericArgKinds, types.KindInt)
	for i := 0; i < invocations; i++ {
		if _, err := fresh.Invoke(nil, args); err != nil {
			return nil, err
		}
	}
	fresh.Close()
	freshTotal := time.Since(freshStart)

	// Pooled executors (pre-warmed by a first call).
	pool := isolate.NewPool(2)
	defer pool.Close()
	pooled := isolate.WithPool(isolate.NewNativeIsolated("gen_icpp", genericArgKinds, types.KindInt), pool)
	if _, err := pooled.Invoke(nil, args); err != nil { // warm the pool
		return nil, err
	}
	pooledStart := time.Now()
	for i := 0; i < invocations; i++ {
		if _, err := pooled.Invoke(nil, args); err != nil {
			return nil, err
		}
	}
	pooledTotal := time.Since(pooledStart)
	pooled.Close()

	t := &Table{
		ID:      "pool",
		Title:   "Ablation: executor lifecycle (fresh spawn vs pre-allocated pool)",
		Caption: "IC++ invocation batches; spawn cost amortizes with either strategy, the pool removes it entirely.",
		Header:  []string{"strategy", "invocations", "total", "per invocation"},
		Rows: [][]string{
			{"spawn per batch", fmt.Sprintf("%d", invocations), freshTotal.String(), (freshTotal / time.Duration(invocations)).String()},
			{"pre-allocated pool", fmt.Sprintf("%d", invocations), pooledTotal.String(), (pooledTotal / time.Duration(invocations)).String()},
		},
	}
	return t, nil
}

// AblationCallbackBatch tests §2.5's batching hypothesis: N single-byte
// callbacks versus one batched cb_read of N bytes, for the in-process
// VM and the isolated-process designs.
func AblationCallbackBatch(h *Harness, n int) (*Table, error) {
	obj := make([]byte, n)
	for i := range obj {
		obj[i] = byte(i % 7)
	}
	handle := h.Eng.Objects().Put(obj)
	defer h.Eng.Objects().Remove(handle)

	perByteSrc := `
	func cb_perbyte(hd int, n int) int {
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) { acc = acc + cb_get(hd, i); }
		return acc;
	}`
	batchedSrc := `
	func cb_batched(hd int, n int) int {
		var data bytes = cb_read(hd, 0, n);
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) { acc = acc + data[i]; }
		return acc;
	}`
	kinds := []types.Kind{types.KindInt, types.KindInt}
	for name, src := range map[string]string{"cb_perbyte": perByteSrc, "cb_batched": batchedSrc} {
		if err := h.Eng.RegisterJaguar(name, src, kinds, types.KindInt, false, false); err != nil {
			return nil, err
		}
		if err := h.Eng.RegisterJaguar(name+"_iso", replaceName(src, name, name+"_iso"), kinds, types.KindInt, true, false); err != nil {
			return nil, err
		}
	}
	run := func(fn string) (time.Duration, error) {
		q := fmt.Sprintf(`SELECT %s(%d, %d) FROM Rel1 WHERE id < 50`, fn, handle, n)
		start := time.Now()
		res, err := h.Eng.Exec(q)
		if err != nil {
			return 0, err
		}
		want := int64(0)
		for _, b := range obj {
			want += int64(b)
		}
		if res.Rows[0][0].Int != want {
			return 0, fmt.Errorf("bench: %s computed %d, want %d", fn, res.Rows[0][0].Int, want)
		}
		return time.Since(start), nil
	}
	t := &Table{
		ID:      "cbbatch",
		Title:   fmt.Sprintf("Ablation: callback batching (%d bytes, 50 invocations)", n),
		Caption: "One cb_read(N) vs N cb_get(1) crossings; batching amortizes the boundary (paper section 2.5).",
		Header:  []string{"design", "per-byte callbacks", "one batched callback", "speedup"},
	}
	for _, mode := range []struct{ label, suffix string }{
		{"JNI (in-process VM)", ""},
		{"IJNI (isolated VM)", "_iso"},
	} {
		per, err := run("cb_perbyte" + mode.suffix)
		if err != nil {
			return nil, err
		}
		bat, err := run("cb_batched" + mode.suffix)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			mode.label, per.String(), bat.String(),
			fmt.Sprintf("%.1fx", float64(per)/float64(bat)),
		})
	}
	return t, nil
}

// replaceName renames the function in a Jaguar source snippet.
func replaceName(src, old, new string) string {
	return strings.ReplaceAll(src, "func "+old+"(", "func "+new+"(")
}
