package bench

import (
	"os"
	"strings"
	"testing"
	"time"

	"predator/internal/isolate"
)

func TestMain(m *testing.M) {
	isolate.MaybeRunExecutor(Natives)
	os.Exit(m.Run())
}

func tinyHarness(t *testing.T) *Harness {
	t.Helper()
	h, err := NewHarness(Config{Rows: 50})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h
}

func TestHarnessVerifyAllDesignsAgree(t *testing.T) {
	h := tinyHarness(t)
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryCountsInvocations(t *testing.T) {
	h := tinyHarness(t)
	// RunQuery fails if the row count is off, so success implies the
	// WHERE clause produced exactly `calls` invocations.
	if _, err := h.RunQuery(DesignCPP, 100, 5, 1, 0, 17); err != nil {
		t.Fatal(err)
	}
	if _, err := h.BaseCost(1, 9); err != nil {
		t.Fatal(err)
	}
}

func TestRunQueryCallbacks(t *testing.T) {
	h := tinyHarness(t)
	before := h.Eng.Objects().Stats().Touches
	if _, err := h.RunQuery(DesignJNI, 1, 0, 0, 3, 10); err != nil {
		t.Fatal(err)
	}
	got := h.Eng.Objects().Stats().Touches - before
	if got != 30 {
		t.Errorf("touches = %d, want 30", got)
	}
	// And across the process boundary too.
	before = h.Eng.Objects().Stats().Touches
	if _, err := h.RunQuery(DesignICPP, 1, 0, 0, 2, 5); err != nil {
		t.Fatal(err)
	}
	if got := h.Eng.Objects().Stats().Touches - before; got != 10 {
		t.Errorf("isolated touches = %d, want 10", got)
	}
}

func TestExperimentTablesProduceRows(t *testing.T) {
	h := tinyHarness(t)
	ax := Axes{
		Designs:       AllDesigns,
		Fig4Calls:     []int{1, 10},
		Fig6Indep:     []int{0, 10},
		Fig7Dep:       []int{0, 1},
		Fig7MaxJNIDep: 100,
		Fig8NCB:       []int{0, 1},
	}
	t4, err := Fig4(h, ax)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 2 || len(t4.Rows[0]) != 4 {
		t.Errorf("fig4 shape: %v", t4.Rows)
	}
	t5, err := Fig5(h, ax)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 3 {
		t.Errorf("fig5 rows: %d", len(t5.Rows))
	}
	a6, r6, err := Fig6(h, ax)
	if err != nil {
		t.Fatal(err)
	}
	if len(a6.Rows) != 2 || len(r6.Rows) != 2 {
		t.Errorf("fig6 rows: %d/%d", len(a6.Rows), len(r6.Rows))
	}
	a7, _, err := Fig7(h, ax)
	if err != nil {
		t.Fatal(err)
	}
	if len(a7.Rows) != 2 {
		t.Errorf("fig7 rows: %d", len(a7.Rows))
	}
	a8, _, err := Fig8(h, ax)
	if err != nil {
		t.Fatal(err)
	}
	if len(a8.Rows) != 2 {
		t.Errorf("fig8 rows: %d", len(a8.Rows))
	}
	// Relative table: C++ column must be 1.00.
	if r6.Rows[0][1] != "1.00" {
		t.Errorf("relative base not 1.00: %v", r6.Rows[0])
	}
}

func TestTable1Render(t *testing.T) {
	tbl := Table1()
	out := tbl.Render()
	for _, want := range []string{"C++", "IC++", "JNI", "IJNI", "BC++", "verifier"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestFig7SkipsJNIAboveCutoff(t *testing.T) {
	h := tinyHarness(t)
	ax := Axes{
		Designs:       []string{DesignCPP, DesignJNI},
		Fig7Dep:       []int{0, 5},
		Fig7MaxJNIDep: 1,
	}
	abs, _, err := Fig7(h, ax)
	if err != nil {
		t.Fatal(err)
	}
	if abs.Rows[1][2] != "skipped" {
		t.Errorf("JNI at dep=5 should be skipped: %v", abs.Rows[1])
	}
}

func TestAblationVerifier(t *testing.T) {
	tbl, err := AblationVerifier(5, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestAblationFuel(t *testing.T) {
	tbl, err := AblationFuel([]int64{1000, 10000})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %v", tbl.Rows)
	}
	if !strings.Contains(tbl.Rows[0][2], "100") {
		t.Errorf("instructions executed should reflect the budget: %v", tbl.Rows[0])
	}
}

func TestAblationExecutorPool(t *testing.T) {
	tbl, err := AblationExecutorPool(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestAblationCallbackBatch(t *testing.T) {
	h := tinyHarness(t)
	tbl, err := AblationCallbackBatch(h, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestAblationJIT(t *testing.T) {
	jit := tinyHarness(t)
	nojit, err := NewHarness(Config{Rows: 50, DisableJIT: true})
	if err != nil {
		t.Fatal(err)
	}
	defer nojit.Close()
	tbl, err := AblationJIT(jit, nojit, []int{0, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestOverloadShedding(t *testing.T) {
	tbl, err := OverloadShedding(60 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %v", tbl.Rows)
	}
	// The shedding-on 16x cell must actually have shed work.
	last := tbl.Rows[len(tbl.Rows)-1]
	if last[0] != "on" || last[1] != "16x" {
		t.Fatalf("unexpected final cell %v", last)
	}
	if last[4] == "0" {
		t.Errorf("16x over-admission with shedding on shed nothing: %v", last)
	}
}
