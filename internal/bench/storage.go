package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"predator/internal/engine"
)

// StorageResilience measures what the storage-resilience machinery
// costs the write path: single-row INSERT latency (total, p50, p99)
// under four configurations — plain commit durability, WAL archiving,
// archiving with an online BACKUP TO racing the workload, and
// archiving with the background scrubber running flat out. Each mode
// runs against a fresh database. The p99 column is the number to
// watch: archiving adds work only at checkpoints, the backup fences
// add two checkpoints total, and the scrubber's paced probes should
// disappear into the noise.
func StorageResilience(rows int) (*Table, error) {
	if rows <= 0 {
		rows = 500
	}
	dir, err := os.MkdirTemp("", "predator-storage-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	type result struct {
		mode     string
		total    time.Duration
		p50, p99 time.Duration
		extra    string
	}
	var results []result

	run := func(mode string, opts engine.Options, during func(e *engine.Engine) (string, error)) error {
		eng, err := engine.Open(filepath.Join(dir, mode+".db"), opts)
		if err != nil {
			return err
		}
		defer eng.Close()
		if _, err := eng.Exec("CREATE TABLE sb (id INT, payload STRING)"); err != nil {
			return err
		}
		payload := make([]byte, 120)
		for i := range payload {
			payload[i] = 'a' + byte(i%26)
		}
		extraCh := make(chan string, 1)
		errCh := make(chan error, 1)
		if during != nil {
			go func() {
				extra, err := during(eng)
				extraCh <- extra
				errCh <- err
			}()
		}
		lats := make([]time.Duration, 0, rows)
		start := time.Now()
		for i := 0; i < rows; i++ {
			s := time.Now()
			if _, err := eng.Exec(fmt.Sprintf("INSERT INTO sb VALUES (%d, '%s')", i, payload)); err != nil {
				return err
			}
			lats = append(lats, time.Since(s))
		}
		total := time.Since(start)
		extra := ""
		if during != nil {
			extra = <-extraCh
			if err := <-errCh; err != nil {
				return err
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		results = append(results, result{
			mode:  mode,
			total: total,
			p50:   lats[len(lats)/2],
			p99:   lats[len(lats)*99/100],
			extra: extra,
		})
		return nil
	}

	base := engine.Options{BufferPoolPages: 1024, Durability: "commit"}

	if err := run("commit", base, nil); err != nil {
		return nil, err
	}
	archOpts := base
	archOpts.ArchiveDir = filepath.Join(dir, "archive")
	if err := run("archive", archOpts, nil); err != nil {
		return nil, err
	}
	bakOpts := base
	bakOpts.ArchiveDir = filepath.Join(dir, "archive-bak")
	if err := run("archive+backup", bakOpts, func(e *engine.Engine) (string, error) {
		// Fire the online backup mid-workload so its checkpoint fences
		// and fuzzy copy race live writers.
		time.Sleep(10 * time.Millisecond)
		s := time.Now()
		m, err := e.Backup(filepath.Join(dir, "backup"))
		if err != nil {
			return "", fmt.Errorf("online backup during workload: %w", err)
		}
		return fmt.Sprintf("backup %s (%d pages)",
			time.Since(s).Round(time.Millisecond), m.Pages), nil
	}); err != nil {
		return nil, err
	}
	scrubOpts := base
	scrubOpts.ArchiveDir = filepath.Join(dir, "archive-scrub")
	scrubOpts.ScrubInterval = time.Millisecond
	scrubOpts.ScrubPace = 100 * time.Microsecond
	if err := run("archive+scrub", scrubOpts, nil); err != nil {
		return nil, err
	}

	baseTotal := results[0].total
	t := &Table{
		ID:    "storage",
		Title: "Storage resilience overhead: archiving, online backup and scrubbing vs INSERT latency",
		Caption: fmt.Sprintf("%d acknowledged single-row INSERTs per mode, fresh database each; "+
			"'archive+backup' runs BACKUP TO concurrently, 'archive+scrub' runs the paced scrubber throughout.", rows),
		Header: []string{"mode", "total", "per stmt", "p50", "p99", "vs commit", "notes"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.mode,
			r.total.Round(time.Millisecond).String(),
			(r.total / time.Duration(rows)).Round(time.Microsecond).String(),
			r.p50.Round(time.Microsecond).String(),
			r.p99.Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", float64(r.total)/float64(baseTotal)),
			r.extra,
		})
	}
	return t, nil
}
