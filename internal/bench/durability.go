package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"predator/internal/engine"
)

// DurabilityOverhead measures the cost of the write-ahead log's fsync
// policies on single-row INSERT statements — the worst case for
// durability, since every statement boundary pays a log force under
// "commit" and every page image pays one under "always". Each mode
// runs against a fresh database so checkpoint state cannot leak
// between runs.
func DurabilityOverhead(rows int) (*Table, error) {
	if rows <= 0 {
		rows = 500
	}
	dir, err := os.MkdirTemp("", "predator-durability-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	type result struct {
		mode    string
		total   time.Duration
		walMB   float64
		wfsyncs uint64
	}
	modes := []string{"none", "commit", "always"}
	results := make([]result, 0, len(modes))
	for _, mode := range modes {
		eng, err := engine.Open(filepath.Join(dir, "durability-"+mode+".db"), engine.Options{
			BufferPoolPages: 1024,
			Durability:      mode,
		})
		if err != nil {
			return nil, err
		}
		if _, err := eng.Exec("CREATE TABLE wal_bench (id INT, payload STRING)"); err != nil {
			eng.Close()
			return nil, err
		}
		payload := make([]byte, 120)
		for i := range payload {
			payload[i] = 'a' + byte(i%26)
		}
		start := time.Now()
		for i := 0; i < rows; i++ {
			stmt := fmt.Sprintf("INSERT INTO wal_bench VALUES (%d, '%s')", i, payload)
			if _, err := eng.Exec(stmt); err != nil {
				eng.Close()
				return nil, err
			}
		}
		total := time.Since(start)
		ws := eng.WALStats()
		if err := eng.Close(); err != nil {
			return nil, err
		}
		results = append(results, result{
			mode:    mode,
			total:   total,
			walMB:   float64(ws.Bytes) / (1 << 20),
			wfsyncs: ws.Fsyncs,
		})
	}

	base := results[0].total
	t := &Table{
		ID:      "durability",
		Title:   "Durability overhead: WAL fsync policy vs single-row INSERT latency",
		Caption: fmt.Sprintf("%d acknowledged single-row INSERTs per mode, fresh database each; 'commit' forces the log once per statement, 'always' once per page image.", rows),
		Header:  []string{"durability", "total", "per stmt", "vs none", "wal MB", "wal fsyncs"},
	}
	for _, r := range results {
		slow := float64(r.total) / float64(base)
		t.Rows = append(t.Rows, []string{
			r.mode,
			r.total.Round(time.Millisecond).String(),
			(r.total / time.Duration(rows)).Round(time.Microsecond).String(),
			fmt.Sprintf("%.2fx", slow),
			fmt.Sprintf("%.2f", r.walMB),
			fmt.Sprintf("%d", r.wfsyncs),
		})
	}
	return t, nil
}
