package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"predator/internal/client"
	"predator/internal/core"
	"predator/internal/engine"
	"predator/internal/server"
	"predator/internal/types"
)

// OverloadShedding measures what admission control buys under
// over-admission: clients at 1x, 4x and 16x the server's concurrent
// query capacity hammer a small scan, with shedding off (unlimited
// admission) and on (a bounded gate that refuses excess queries with a
// retryable error). Reported per cell: acknowledged queries and their
// throughput, shed count, and the p50/p99 latency of acknowledged
// results — the number shedding exists to protect.
func OverloadShedding(perCell time.Duration) (*Table, error) {
	if perCell <= 0 {
		perCell = 300 * time.Millisecond
	}
	const capacity = 4 // query slots when shedding is on
	dir, err := os.MkdirTemp("", "predator-overload-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	type cell struct {
		shedding string
		factor   int
		clients  int
		acked    int
		shed     int
		qps      float64
		p50, p99 time.Duration
	}
	var cells []cell
	for _, shedding := range []bool{false, true} {
		for _, factor := range []int{1, 4, 16} {
			label := "off"
			opts := server.Options{Logf: func(string, ...any) {}}
			if shedding {
				label = "on"
				opts.MaxConcurrentQueries = capacity
				opts.AdmissionWait = 2 * time.Millisecond
			}
			eng, err := engine.Open(filepath.Join(dir, fmt.Sprintf("ov-%s-%d.db", label, factor)), engine.Options{})
			if err != nil {
				return nil, err
			}
			// Each UDF call blocks briefly (modeling I/O) and then burns
			// CPU, so a query really occupies its admission slot for the
			// duration: the round trip alone would never fill the gate,
			// especially on a single-core host.
			err = eng.RegisterNative("ovburn", []types.Kind{types.KindInt}, types.KindInt,
				func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
					time.Sleep(200 * time.Microsecond)
					acc := args[0].Int
					for i := 0; i < 50_000; i++ {
						acc = acc*1103515245 + 12345
					}
					return types.NewInt(acc), nil
				})
			if err != nil {
				eng.Close()
				return nil, err
			}
			srv := server.New(eng, opts)
			addr, err := srv.Listen("127.0.0.1:0")
			if err != nil {
				eng.Close()
				return nil, err
			}
			setup, err := client.Dial(addr, "bench")
			if err != nil {
				srv.Close()
				return nil, err
			}
			if _, err := setup.Exec("CREATE TABLE ov (id INT, pad STRING)"); err != nil {
				srv.Close()
				return nil, err
			}
			for i := 0; i < 64; i++ {
				if _, err := setup.Exec(fmt.Sprintf("INSERT INTO ov VALUES (%d, 'xxxxxxxxxxxxxxxx')", i)); err != nil {
					srv.Close()
					return nil, err
				}
			}
			setup.Close()

			clients := capacity * factor
			var (
				mu    sync.Mutex
				lats  []time.Duration
				shed  int
				wErrs error
			)
			var wg sync.WaitGroup
			start := time.Now()
			deadline := start.Add(perCell)
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(id int) {
					defer wg.Done()
					cl, err := client.Dial(addr, fmt.Sprintf("w%d", id))
					if err != nil {
						mu.Lock()
						wErrs = err
						mu.Unlock()
						return
					}
					defer cl.Close()
					// Always issue at least one query: if dialing under load
					// ate the whole window, an empty cell would read as "no
					// query ever acknowledged" rather than a slow machine.
					for first := true; first || time.Now().Before(deadline); first = false {
						t0 := time.Now()
						_, err := cl.Exec("SELECT ovburn(id) FROM ov WHERE id < 4")
						d := time.Since(t0)
						mu.Lock()
						switch {
						case err == nil:
							lats = append(lats, d)
						case client.IsRetryable(err):
							shed++
						default:
							wErrs = err
						}
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			elapsed := time.Since(start)
			srv.Close()
			if wErrs != nil {
				return nil, fmt.Errorf("bench: overload worker: %w", wErrs)
			}
			if len(lats) == 0 {
				return nil, fmt.Errorf("bench: overload %sx%d: no query ever acknowledged", label, factor)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			cells = append(cells, cell{
				shedding: label,
				factor:   factor,
				clients:  clients,
				acked:    len(lats),
				shed:     shed,
				qps:      float64(len(lats)) / elapsed.Seconds(),
				p50:      lats[len(lats)/2],
				p99:      lats[len(lats)*99/100],
			})
		}
	}

	t := &Table{
		ID:      "overload",
		Title:   "Overload shedding: acked throughput and latency vs over-admission",
		Caption: fmt.Sprintf("%v per cell; capacity %d query slots when shedding is on; clients = capacity x factor. Shed queries got a typed retryable error and never executed.", perCell, capacity),
		Header:  []string{"shedding", "over-admission", "clients", "acked", "shed", "acked qps", "p50", "p99"},
	}
	for _, c := range cells {
		t.Rows = append(t.Rows, []string{
			c.shedding,
			fmt.Sprintf("%dx", c.factor),
			fmt.Sprintf("%d", c.clients),
			fmt.Sprintf("%d", c.acked),
			fmt.Sprintf("%d", c.shed),
			fmt.Sprintf("%.0f", c.qps),
			c.p50.Round(10 * time.Microsecond).String(),
			c.p99.Round(10 * time.Microsecond).String(),
		})
	}
	return t, nil
}
