// Package bench implements the paper's evaluation harness: the
// Rel1/Rel100/Rel10000 workload, the generic four-parameter UDF in
// every execution design, and one runner per table/figure of the
// paper (Table 1, Figures 4-8) plus the ablations listed in DESIGN.md.
//
// The generic UDF mirrors §5.1 exactly:
//
//		generic(ByteArray, NumDataIndepComps, NumDataDepComps, NumCallbacks) -> int
//
//	  - a loop of NumDataIndepComps integer additions,
//	  - NumDataDepComps full passes over the byte array,
//	  - NumCallbacks callbacks to the server (pure crossings).
package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"predator/internal/core"
	"predator/internal/engine"
	"predator/internal/isolate"
	"predator/internal/types"
)

// Design labels (the paper's names) accepted by RunQuery.
const (
	DesignCPP  = "cpp"  // Design 1: native integrated ("C++")
	DesignBCPP = "bcpp" // bounds-checked native ("BC++", Fig. 7)
	DesignICPP = "icpp" // Design 2: native isolated ("IC++")
	DesignJNI  = "jni"  // Design 3: Jaguar VM integrated ("JNI")
	DesignIJNI = "ijni" // Design 4: Jaguar VM isolated
)

// AllDesigns lists every design in presentation order.
var AllDesigns = []string{DesignCPP, DesignBCPP, DesignICPP, DesignJNI, DesignIJNI}

// PaperDesigns are the three the paper's figures plot.
var PaperDesigns = []string{DesignCPP, DesignICPP, DesignJNI}

// Label renders the paper's label for a design key.
func Label(design string) string {
	switch design {
	case DesignCPP:
		return "C++"
	case DesignBCPP:
		return "BC++"
	case DesignICPP:
		return "IC++"
	case DesignJNI:
		return "JNI"
	case DesignIJNI:
		return "IJNI"
	default:
		return design
	}
}

// GenericUDFSource is the Jaguar implementation of the generic UDF.
const GenericUDFSource = `
// The paper's generic benchmark UDF (SIGMOD '98, section 5.1).
func generic(data bytes, indep int, dep int, ncb int) int {
	var acc int = 0;
	for (var i int = 0; i < indep; i = i + 1) { acc = acc + 1; }
	for (var p int = 0; p < dep; p = p + 1) {
		for (var j int = 0; j < len(data); j = j + 1) { acc = acc + data[j]; }
	}
	for (var k int = 0; k < ncb; k = k + 1) { cb_touch(0); }
	return acc;
}`

// genericNative is the Design 1 ("C++") implementation: plain Go with
// no added checks beyond what the hardware does.
func genericNative(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	data := args[0].Bytes
	indep := args[1].Int
	dep := args[2].Int
	ncb := args[3].Int
	var acc int64
	for i := int64(0); i < indep; i++ {
		acc++
	}
	for p := int64(0); p < dep; p++ {
		for j := 0; j < len(data); j++ {
			acc += int64(data[j])
		}
	}
	for k := int64(0); k < ncb; k++ {
		if ctx == nil || ctx.Callback == nil {
			return types.Value{}, fmt.Errorf("bench: no callback handler")
		}
		if err := ctx.Callback.Touch(0); err != nil {
			return types.Value{}, err
		}
	}
	return types.NewInt(acc), nil
}

// genericSFI is the "BC++" implementation: identical logic, but every
// byte access goes through the explicitly checked accessor (the
// software-fault-isolation comparator of Figure 7).
func genericSFI(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	data := core.NewCheckedBytes(args[0].Bytes)
	indep := args[1].Int
	dep := args[2].Int
	ncb := args[3].Int
	var acc int64
	for i := int64(0); i < indep; i++ {
		acc++
	}
	for p := int64(0); p < dep; p++ {
		n := data.Len()
		for j := 0; j < n; j++ {
			b, err := data.Get(j)
			if err != nil {
				return types.Value{}, err
			}
			acc += int64(b)
		}
	}
	for k := int64(0); k < ncb; k++ {
		if ctx == nil || ctx.Callback == nil {
			return types.Value{}, fmt.Errorf("bench: no callback handler")
		}
		if err := ctx.Callback.Touch(0); err != nil {
			return types.Value{}, err
		}
	}
	return types.NewInt(acc), nil
}

// trivialNative is the Fig. 4 calibration UDF: it does nothing.
func trivialNative(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	return types.NewInt(0), nil
}

// Natives is the native table executor processes need. Programs that
// run bench experiments must pass it to isolate.MaybeRunExecutor.
var Natives = isolate.NativeTable{
	"gen_icpp": genericNative,
}

// genericArgKinds is the generic UDF's SQL signature.
var genericArgKinds = []types.Kind{types.KindBytes, types.KindInt, types.KindInt, types.KindInt}

// Config sizes a harness. The paper's full scale is Rows=10000,
// Calls=10000; quick runs shrink both.
type Config struct {
	// Dir is the workspace directory (default: a temp dir).
	Dir string
	// Rows is the cardinality of each relation (default 10000).
	Rows int
	// Calls is the default number of UDF invocations (default = Rows).
	Calls int
	// DisableJIT runs the Jaguar VM in pure interpreter mode.
	DisableJIT bool
	// KeepDir leaves the workspace on disk at Close.
	KeepDir bool
}

// Harness is a ready-to-measure engine with the paper's relations and
// all five generic-UDF variants registered.
type Harness struct {
	Eng   *engine.Engine
	Cfg   Config
	dir   string
	owned bool // dir created by us
}

// BASizes are the byte-array sizes of Rel1, Rel100, Rel10000.
var BASizes = []int{1, 100, 10000}

// RelName names the relation with the given byte-array size.
func RelName(baSize int) string { return fmt.Sprintf("Rel%d", baSize) }

// NewHarness builds the workload: relations Rel1/Rel100/Rel10000 with
// Config.Rows tuples each, byte arrays of 1/100/10000 bytes, and the
// generic UDF registered under every design.
func NewHarness(cfg Config) (*Harness, error) {
	if cfg.Rows <= 0 {
		cfg.Rows = 10000
	}
	if cfg.Calls <= 0 {
		cfg.Calls = cfg.Rows
	}
	if cfg.Calls > cfg.Rows {
		cfg.Calls = cfg.Rows
	}
	h := &Harness{Cfg: cfg}
	if cfg.Dir == "" {
		dir, err := os.MkdirTemp("", "predator-bench-*")
		if err != nil {
			return nil, err
		}
		h.dir = dir
		h.owned = true
	} else {
		h.dir = cfg.Dir
		if err := os.MkdirAll(h.dir, 0o755); err != nil {
			return nil, err
		}
	}
	// Durability off: the paper's figures measure the UDF crossing, not
	// fsync latency (the durability experiment measures that separately).
	eng, err := engine.Open(filepath.Join(h.dir, "bench.db"), engine.Options{
		BufferPoolPages: 4096,
		DisableJIT:      cfg.DisableJIT,
		Durability:      "none",
	})
	if err != nil {
		h.cleanupDir()
		return nil, err
	}
	h.Eng = eng
	if err := h.setup(); err != nil {
		eng.Close()
		h.cleanupDir()
		return nil, err
	}
	return h, nil
}

func (h *Harness) cleanupDir() {
	if h.owned && !h.Cfg.KeepDir {
		os.RemoveAll(h.dir)
	}
}

// Close releases the engine and workspace.
func (h *Harness) Close() error {
	err := h.Eng.Close()
	h.cleanupDir()
	return err
}

func (h *Harness) setup() error {
	// Relations: id INT (for the restrictive predicate that sets the
	// number of UDF invocations), ba BYTES.
	for _, size := range BASizes {
		name := RelName(size)
		if _, err := h.Eng.Exec(fmt.Sprintf(`CREATE TABLE %s (id INT, ba BYTES)`, name)); err != nil {
			return err
		}
		tbl, _ := h.Eng.Catalog().Table(name)
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i % 251)
		}
		row := types.Row{types.NewInt(0), types.NewBytes(payload)}
		for i := 0; i < h.Cfg.Rows; i++ {
			row[0] = types.NewInt(int64(i))
			rec, err := types.EncodeRow(nil, tbl.Schema, row)
			if err != nil {
				return err
			}
			if _, err := tbl.Heap().Insert(rec); err != nil {
				return err
			}
		}
	}
	// UDFs, one per design.
	if err := h.Eng.RegisterNative("trivial_cpp", []types.Kind{types.KindBytes}, types.KindInt, trivialNative); err != nil {
		return err
	}
	if err := h.Eng.RegisterNative("gen_cpp", genericArgKinds, types.KindInt, genericNative); err != nil {
		return err
	}
	if err := h.Eng.RegisterSFINative("gen_bcpp", genericArgKinds, types.KindInt, genericSFI); err != nil {
		return err
	}
	if err := h.Eng.RegisterNativeIsolated("gen_icpp", genericArgKinds, types.KindInt); err != nil {
		return err
	}
	if err := h.Eng.RegisterJaguar("gen_jni", genericSourceNamed("gen_jni"), genericArgKinds, types.KindInt, false, false); err != nil {
		return err
	}
	if err := h.Eng.RegisterJaguar("gen_ijni", genericSourceNamed("gen_ijni"), genericArgKinds, types.KindInt, true, false); err != nil {
		return err
	}
	// Warm the buffer pool and OS page cache so the first measured
	// query does not pay a cold-read penalty the others do not.
	for _, size := range BASizes {
		if _, err := h.Eng.Exec(fmt.Sprintf(`SELECT COUNT(*) FROM %s`, RelName(size))); err != nil {
			return err
		}
	}
	return nil
}

// genericSourceNamed renames the generic function so the Jaguar entry
// method matches the SQL name.
func genericSourceNamed(name string) string {
	return fmt.Sprintf(`
func %s(data bytes, indep int, dep int, ncb int) int {
	var acc int = 0;
	for (var i int = 0; i < indep; i = i + 1) { acc = acc + 1; }
	for (var p int = 0; p < dep; p = p + 1) {
		for (var j int = 0; j < len(data); j = j + 1) { acc = acc + data[j]; }
	}
	for (var k int = 0; k < ncb; k = k + 1) { cb_touch(0); }
	return acc;
}`, name)
}

// funcName maps a design key to the registered SQL function.
func funcName(design string) string { return "gen_" + design }

// RunQuery times the paper's benchmark query:
//
//	SELECT gen_<design>(ba, indep, dep, ncb) FROM Rel<baSize> WHERE id < calls
//
// returning the response time.
func (h *Harness) RunQuery(design string, baSize, indep, dep, ncb, calls int) (time.Duration, error) {
	q := fmt.Sprintf(`SELECT %s(ba, %d, %d, %d) FROM %s WHERE id < %d`,
		funcName(design), indep, dep, ncb, RelName(baSize), calls)
	start := time.Now()
	res, err := h.Eng.Exec(q)
	if err != nil {
		return 0, fmt.Errorf("bench: %s: %w", q, err)
	}
	if len(res.Rows) != calls {
		return 0, fmt.Errorf("bench: %s returned %d rows, want %d", q, len(res.Rows), calls)
	}
	return time.Since(start), nil
}

// ExportTrace runs the benchmark query for one design with detailed
// tracing enabled and writes the resulting Chrome trace-event JSON to
// path (the cross-process trace artifact CI uploads from the smoke run).
func (h *Harness) ExportTrace(design string, baSize, calls int, path string) error {
	sess := h.Eng.NewSession()
	if _, err := sess.Exec(fmt.Sprintf(`SET TRACE = '%s'`, path)); err != nil {
		return err
	}
	q := fmt.Sprintf(`SELECT %s(ba, 10, 1, 1) FROM %s WHERE id < %d`,
		funcName(design), RelName(baSize), calls)
	if _, err := sess.Exec(q); err != nil {
		return fmt.Errorf("bench: trace export: %w", err)
	}
	_, err := sess.Exec(`SET TRACE = 'off'`)
	return err
}

// BaseCost times the calibration query with the trivial UDF (Fig. 4):
// the table-access cost to subtract from later measurements.
func (h *Harness) BaseCost(baSize, calls int) (time.Duration, error) {
	q := fmt.Sprintf(`SELECT trivial_cpp(ba) FROM %s WHERE id < %d`, RelName(baSize), calls)
	start := time.Now()
	res, err := h.Eng.Exec(q)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != calls {
		return 0, fmt.Errorf("bench: calibration returned %d rows, want %d", len(res.Rows), calls)
	}
	return time.Since(start), nil
}

// Verify cross-checks that every design computes the same value for a
// spot-check parameter set (a correctness gate before timing).
func (h *Harness) Verify() error {
	for _, d := range AllDesigns {
		q := fmt.Sprintf(`SELECT %s(ba, 10, 2, 1) FROM %s WHERE id < 1`, funcName(d), RelName(100))
		res, err := h.Eng.Exec(q)
		if err != nil {
			return fmt.Errorf("bench: verify %s: %w", d, err)
		}
		// payload bytes are i%251 for i in 0..99: sum = 4950; x2 passes
		// = 9900; +10 indep = 9910.
		if got := res.Rows[0][0].Int; got != 9910 {
			return fmt.Errorf("bench: design %s computed %d, want 9910", d, got)
		}
	}
	return nil
}
