package bench

import (
	"fmt"

	"predator/internal/obs"
)

// BatchCaps are the batch-size points of the fig5_batch sweep. Cap 1 is
// the legacy scalar protocol (one crossing per invocation); the rest
// amortize the crossing over up to that many rows.
var BatchCaps = []int{1, 8, 64, 256}

// BatchDesigns are the designs the sweep plots: the integrated native
// baseline (which never batches) and both isolated designs (where the
// crossing is a process boundary and batching pays).
var BatchDesigns = []string{DesignCPP, DesignICPP, DesignIJNI}

// Fig5Batch extends the Fig. 5 invocation-cost calibration along a new
// axis the 1998 system did not have: the UDF batch size. It runs the
// no-op generic UDF over Rel100 at each batch cap, measuring rows/sec
// and the actual boundary crossings consumed (from the per-design
// predator_udf_crossings_total counter), and returns the per-design
// speedup of the largest cap >= 64 over cap 1.
func Fig5Batch(h *Harness) (*Table, map[string]float64, error) {
	calls := h.Cfg.Calls
	t := &Table{
		ID:    "fig5_batch",
		Title: "Batched Crossings: Invocation Cost vs Batch Size",
		Caption: fmt.Sprintf("%d no-op UDF invocations over Rel100; rows/sec and boundary\n"+
			"crossings per run vs the UDF batch cap. C++ is integrated (one\n"+
			"crossing per call at every cap); IC++/IJNI amortize the process\n"+
			"boundary across the batch.", calls),
		Header: []string{"batch cap"},
	}
	for _, d := range BatchDesigns {
		t.Header = append(t.Header, Label(d)+" rows/s", Label(d)+" crossings")
	}

	// rows/sec per design per cap, for the speedup summary.
	rate := map[string]map[int]float64{}
	for _, d := range BatchDesigns {
		rate[d] = map[int]float64{}
	}

	defer h.Eng.SetUDFBatchRows(0) // restore the default cap
	for _, cap := range BatchCaps {
		h.Eng.SetUDFBatchRows(cap)
		row := []string{fmt.Sprintf("%d", cap)}
		for _, d := range BatchDesigns {
			c := obs.Default.Counter("predator_udf_crossings_total", "design", Label(d))
			before := c.Value()
			dur, err := h.RunQuery(d, 100, 0, 0, 0, calls)
			if err != nil {
				return nil, nil, err
			}
			crossings := c.Value() - before
			rps := float64(calls) / dur.Seconds()
			rate[d][cap] = rps
			row = append(row, fmt.Sprintf("%.0f", rps), fmt.Sprintf("%d", crossings))
		}
		t.Rows = append(t.Rows, row)
	}

	speedup := map[string]float64{}
	big := bestCapAtLeast(64)
	for _, d := range BatchDesigns {
		if base := rate[d][1]; base > 0 {
			speedup[d] = rate[d][big] / base
		}
	}
	return t, speedup, nil
}

// bestCapAtLeast picks the sweep's smallest cap >= min (the acceptance
// assertion is phrased as "batch >= 64").
func bestCapAtLeast(min int) int {
	for _, c := range BatchCaps {
		if c >= min {
			return c
		}
	}
	return BatchCaps[len(BatchCaps)-1]
}

// BatchSpeedupSummary renders the speedup map as a one-line-per-design
// footer for the CLI.
func BatchSpeedupSummary(speedup map[string]float64) string {
	s := ""
	for _, d := range BatchDesigns {
		if v, ok := speedup[d]; ok {
			s += fmt.Sprintf("%s batch-%d vs batch-1: %.2fx\n", Label(d), bestCapAtLeast(64), v)
		}
	}
	return s
}
