package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

// jsonTable is the machine-readable form of a Table. Cells are typed:
// integers and floats come through as JSON numbers, rendered durations
// ("1.234ms") as seconds, everything else as strings.
type jsonTable struct {
	ID      string   `json:"id"`
	Title   string   `json:"title"`
	Caption string   `json:"caption,omitempty"`
	Header  []string `json:"header"`
	Rows    [][]any  `json:"rows"`
}

// cellValue parses one rendered cell into its typed JSON value.
func cellValue(s string) any {
	t := strings.TrimSpace(s)
	if t == "" {
		return s
	}
	if n, err := strconv.ParseInt(t, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(t, 64); err == nil {
		return f
	}
	if d, err := time.ParseDuration(t); err == nil {
		return d.Seconds()
	}
	return s
}

// WriteJSON writes the table as BENCH_<id>.json in dir and returns the
// file path. The CI smoke job uploads these files as artifacts so runs
// can be compared across commits without re-parsing the text tables.
func (t *Table) WriteJSON(dir string) (string, error) {
	doc := jsonTable{ID: t.ID, Title: t.Title, Caption: t.Caption, Header: t.Header}
	for _, row := range t.Rows {
		cells := make([]any, len(row))
		for i, c := range row {
			cells[i] = cellValue(c)
		}
		doc.Rows = append(doc.Rows, cells)
	}
	buf, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return "", fmt.Errorf("bench: marshal %s: %w", t.ID, err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("bench: mkdir %s: %w", dir, err)
	}
	path := filepath.Join(dir, "BENCH_"+t.ID+".json")
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("bench: write %s: %w", path, err)
	}
	return path, nil
}
