package bench

import (
	"fmt"
	"time"

	"predator/internal/core"
	"predator/internal/expr"
	"predator/internal/fleet"
	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/types"
)

// inlineSrc is the benchmark UDF: a small translatable predicate-ish
// body (~10 instructions) of the kind Froid inlining targets. Small on
// purpose — the smaller the body, the more the fixed per-call crossing
// cost dominates, which is exactly the cost inlining deletes.
const inlineSrc = `func gate(v int) int { return (v * 37 + 11) % 101; }`

// inlineExpected mirrors inlineSrc in Go for result verification.
func inlineExpected(v int64) int64 { return (v*37 + 11) % 101 }

// UDFInlining measures the same source UDF under four execution
// strategies: inlined into the expression tree (zero crossings), VM
// dispatch per row, isolated executor with batched crossings, and the
// shared multiplexed fleet (batched). Returns the table plus the
// inlined design's speedup over each fallback, keyed "vm",
// "isolated-batched" and "fleet" (-assert-inline-speedup consumes it).
func UDFInlining(perCell time.Duration) (*Table, map[string]float64, error) {
	if perCell <= 0 {
		perCell = 300 * time.Millisecond
	}
	const batchRows = 64
	intKinds := []types.Kind{types.KindInt}

	classBytes, err := jaguar.CompileToBytes(inlineSrc, "Inline")
	if err != nil {
		return nil, nil, err
	}
	class, err := jvm.DecodeClass(classBytes)
	if err != nil {
		return nil, nil, err
	}
	lc, err := jvm.New(jvm.Options{}).NewLoader("bench-inline").LoadClass(class)
	if err != nil {
		return nil, nil, err
	}
	vmUDF, err := core.NewVM(core.VMUDFConfig{
		Name: "gate", Class: lc, Method: "gate", Args: intKinds, Return: types.KindInt,
	})
	if err != nil {
		return nil, nil, err
	}

	// Expression-level bindings over a one-column row: the inlined node
	// and the forced VM-dispatch node evaluate the same argument tree.
	arg := []expr.Bound{&expr.Col{Index: 0, K: types.KindInt, Name: "v"}}
	inlined, err := expr.NewUDFCall(vmUDF, arg)
	if err != nil {
		return nil, nil, err
	}
	vmCall, err := expr.NewUDFCallNoInline(vmUDF, []expr.Bound{&expr.Col{Index: 0, K: types.KindInt, Name: "v"}})
	if err != nil {
		return nil, nil, err
	}

	// scalarCell drives a per-row Bound until the deadline.
	scalarCell := func(b expr.Bound) (int64, time.Duration, error) {
		row := types.Row{types.NewInt(0)}
		var n int64
		start := time.Now()
		deadline := start.Add(perCell)
		for time.Now().Before(deadline) {
			// An inner block amortizes the deadline check.
			for i := 0; i < 1024; i++ {
				v := n & 1023
				row[0] = types.NewInt(v)
				out, err := b.Eval(nil, row)
				if err != nil {
					return 0, 0, err
				}
				if out.Int != inlineExpected(v) {
					return 0, 0, fmt.Errorf("bench: inline: got %d for %d, want %d", out.Int, v, inlineExpected(v))
				}
				n++
			}
		}
		return n, time.Since(start), nil
	}

	// batchCell drives an isolated UDF through batched crossings.
	batchCell := func(u core.UDF) (int64, time.Duration, error) {
		bu, ok := u.(core.BatchUDF)
		if !ok {
			return 0, 0, fmt.Errorf("bench: inline: %s does not batch", u.Name())
		}
		args := make([]types.Value, batchRows)
		out := make([]core.BatchResult, batchRows)
		var n int64
		start := time.Now()
		deadline := start.Add(perCell)
		for time.Now().Before(deadline) {
			for i := range args {
				args[i] = types.NewInt((n + int64(i)) & 1023)
			}
			if err := bu.InvokeBatch(nil, 1, args, out); err != nil {
				return 0, 0, err
			}
			for i, r := range out {
				if r.Err != nil {
					return 0, 0, r.Err
				}
				if want := inlineExpected(args[i].Int); r.Value.Int != want {
					return 0, 0, fmt.Errorf("bench: inline: batched got %d, want %d", r.Value.Int, want)
				}
			}
			n += batchRows
		}
		return n, time.Since(start), nil
	}

	// The isolated fallbacks run with inlining explicitly disabled —
	// without that, the translatable body would inline and there would
	// be no crossing to measure.
	iso := isolate.WithInlineDisabled(isolate.NewVMIsolated(
		"gate_iso", intKinds, types.KindInt,
		isolate.VMSetup{ClassBytes: classBytes, Method: "gate"}))
	defer iso.Close()

	fl := fleet.New(fleet.Options{Size: 2})
	defer fl.Close()
	fleeted := isolate.WithInlineDisabled(isolate.WithFleet(isolate.NewVMIsolated(
		"gate_fleet", intKinds, types.KindInt,
		isolate.VMSetup{ClassBytes: classBytes, Method: "gate"}), fl))
	defer fleeted.Close()

	type cell struct {
		mode    string
		rows    int64
		elapsed time.Duration
	}
	var cells []cell
	run := func(mode string, f func() (int64, time.Duration, error)) error {
		rows, elapsed, err := f()
		if err != nil {
			return fmt.Errorf("bench: inline %s: %w", mode, err)
		}
		if rows == 0 {
			return fmt.Errorf("bench: inline %s: no rows completed", mode)
		}
		cells = append(cells, cell{mode: mode, rows: rows, elapsed: elapsed})
		return nil
	}
	if err := run("inlined", func() (int64, time.Duration, error) { return scalarCell(inlined) }); err != nil {
		return nil, nil, err
	}
	if err := run("vm", func() (int64, time.Duration, error) { return scalarCell(vmCall) }); err != nil {
		return nil, nil, err
	}
	if err := run("isolated-batched", func() (int64, time.Duration, error) { return batchCell(iso) }); err != nil {
		return nil, nil, err
	}
	if err := run("fleet", func() (int64, time.Duration, error) { return batchCell(fleeted) }); err != nil {
		return nil, nil, err
	}

	rps := func(c cell) float64 { return float64(c.rows) / c.elapsed.Seconds() }
	base := rps(cells[0])
	speedup := map[string]float64{}
	for _, c := range cells[1:] {
		speedup[c.mode] = base / rps(c)
	}

	t := &Table{
		ID:    "inline",
		Title: "Froid-style UDF inlining: the same source UDF inlined vs VM vs isolated-batched vs fleet",
		Caption: fmt.Sprintf(
			"%v per cell; UDF %q. inlined = translated into the expression tree (zero crossings); vm = per-row VM dispatch; isolated-batched = executor process, %d rows per crossing; fleet = 2 shared multiplexed processes, batched.",
			perCell, inlineSrc, batchRows),
		Header: []string{"design", "rows", "rows/sec", "ns/row", "inlined speedup"},
	}
	for i, c := range cells {
		su := "1.00x"
		if i > 0 {
			su = fmt.Sprintf("%.2fx", base/rps(c))
		}
		t.Rows = append(t.Rows, []string{
			c.mode,
			fmt.Sprintf("%d", c.rows),
			fmt.Sprintf("%.0f", rps(c)),
			fmt.Sprintf("%.1f", float64(c.elapsed.Nanoseconds())/float64(c.rows)),
			su,
		})
	}
	return t, speedup, nil
}
