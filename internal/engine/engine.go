// Package engine assembles the PREDATOR-Go database: storage, catalog,
// planner, executor, the embedded Jaguar VM and the UDF registry. It is
// the single-process embedding API on which the server, the client
// examples and the benchmark harness are built.
package engine

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"predator/internal/catalog"
	"predator/internal/core"
	"predator/internal/exec"
	"predator/internal/expr"
	"predator/internal/fleet"
	"predator/internal/govern"
	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/obs"
	"predator/internal/plan"
	"predator/internal/sql"
	"predator/internal/storage"
	"predator/internal/types"
)

// Options configures an engine instance.
type Options struct {
	// BufferPoolPages caps the page cache (default 1024 pages = 8 MiB).
	BufferPoolPages int
	// Security is the VM security manager for Jaguar UDFs (default:
	// jvm.DefaultPolicy — callbacks and logging only).
	Security jvm.SecurityManager
	// DisableJIT forces the VM interpreter (for the JIT ablation).
	DisableJIT bool
	// DisableUDFInlining keeps translatable Jaguar UDFs on their
	// declared execution design instead of lowering them into the plan
	// (the Froid-inlining ablation).
	DisableUDFInlining bool
	// UDFLimits is the default per-invocation resource policy applied
	// to Jaguar UDFs created via SQL. Zero = unlimited (like the
	// paper's 1998 JVM); production should set it.
	UDFLimits jvm.Limits
	// Logf receives UDF sys.log output and engine notices (nil = drop).
	Logf func(format string, args ...any)
	// StatementTimeout is the default per-statement deadline for new
	// sessions (0 = none). Sessions override it with
	// SET STATEMENT_TIMEOUT.
	StatementTimeout time.Duration
	// Supervision is the executor supervision policy (deadlines,
	// restart budget) applied to isolated UDFs. Zero-value fields take
	// isolate.DefaultSupervision defaults.
	Supervision isolate.Supervision
	// UDFBatchRows caps the rows carried per batched UDF crossing
	// (0 = expr.DefaultBatchRows). Values of 1 or less than zero force
	// the legacy one-crossing-per-tuple path.
	UDFBatchRows int
	// Durability selects the write-ahead-log fsync policy: "none"
	// (no WAL — crashes may lose or corrupt recent writes), "commit"
	// (WAL fsync at each acknowledged mutating statement; the default),
	// or "always" (WAL fsync on every log append).
	Durability string
	// CheckpointBytes triggers an automatic checkpoint (flush-all +
	// WAL truncation) once the log exceeds this size. 0 = the 8 MiB
	// default; negative disables automatic checkpoints (manual
	// CHECKPOINT statements still work).
	CheckpointBytes int64
	// TraceDir enables SET TRACE = 'on' for sessions: each traced
	// statement exports a Chrome trace-event JSON file into this
	// directory (loadable in chrome://tracing or Perfetto). Sessions can
	// always SET TRACE to an explicit file path, TraceDir or not.
	TraceDir string
	// SlowQuery emits a structured log entry (obs.Logger) for every
	// statement slower than this threshold (0 = disabled).
	SlowQuery time.Duration
	// Quota is the default per-tenant resource quota (memory ceiling
	// for materialized statement results, windowed executor CPU
	// budget). Zero fields are unlimited. Sessions tune their own
	// tenant with SET QUOTA_MEMORY / SET QUOTA_CPU.
	Quota govern.Quota
	// FleetSize, when positive, runs isolated UDFs on a shared fleet of
	// that many multiplexed executor processes instead of one process
	// per UDF: process count stays O(cores) however many sessions and
	// UDFs are live. 0 keeps the paper's dedicated-executor lifecycle.
	// Quarantined UDFs (open breaker) still fall back to dedicated
	// executors. Inspect with SHOW EXECUTORS.
	FleetSize int
	// ArchiveDir enables WAL archiving into the named directory: every
	// log generation is preserved as a segment before truncation, which
	// is what makes online BACKUP TO and point-in-time restore
	// (predator-restore) possible. Empty = no archiving.
	ArchiveDir string
	// ScrubInterval, when positive, runs the background scrubber: a
	// full checksum pass over data pages and archived segments every
	// interval (paced so it never hogs the disk), repairing corrupt
	// pages from WAL/archive/backup. Inspect with SHOW STORAGE.
	ScrubInterval time.Duration
	// ScrubPace overrides the per-page probe pause (0 = the scrubber's
	// default pacing). Only meaningful with ScrubInterval set.
	ScrubPace time.Duration
}

// defaultCheckpointBytes bounds WAL growth (and hence recovery time)
// between automatic checkpoints.
const defaultCheckpointBytes = 8 << 20

// Engine is an open database.
type Engine struct {
	mu       sync.Mutex
	disk     *storage.DiskManager
	pool     *storage.BufferPool
	cat      *catalog.Catalog
	reg      *core.Registry
	vm       *jvm.VM
	planner  *plan.Planner
	objects  *ObjectStore
	opts     Options
	gov      *govern.Governor
	fleet    *fleet.Fleet // shared executor fleet (nil = dedicated executors)
	defSess  *Session
	scrubber *storage.Scrubber // background checksum scrubber (nil = disabled)
	closed   bool

	// ro is the degraded read-only state (ENOSPC): mutations shed with
	// a retryable disk-full fault until a probe rebuilds the WAL.
	ro readOnlyState

	// ckptMu serializes checkpoints against mutating statements:
	// writers hold it shared, Checkpoint holds it exclusively, so the
	// flush-all + WAL-truncate pair never captures a page mid-statement.
	ckptMu    sync.RWMutex
	ckptBytes int64 // auto-checkpoint threshold (<=0 = disabled)

	// batchRows is the live UDF batch cap (atomic: benchmarks retune it
	// between runs without reopening the engine).
	batchRows atomic.Int64
}

// Open opens (or creates) a database file and restores its catalog,
// including persisted Jaguar UDFs (which are re-verified on load).
func Open(path string, opts Options) (*Engine, error) {
	if opts.BufferPoolPages <= 0 {
		opts.BufferPoolPages = 1024
	}
	if opts.Security == nil {
		opts.Security = jvm.DefaultPolicy()
	}
	mode, err := storage.ParseDurability(opts.Durability)
	if err != nil {
		return nil, err
	}
	disk, err := storage.OpenDiskOptions(path, storage.DiskOptions{Durability: mode, ArchiveDir: opts.ArchiveDir})
	if err != nil {
		return nil, err
	}
	if rec := disk.Recovered(); rec.Ran {
		obs.Logger().Info("crash recovery replayed WAL",
			"component", "engine", "path", path,
			"records", rec.Records, "bytes", rec.Bytes, "torn_tail", rec.TornTail)
	}
	pool := storage.NewBufferPool(disk, opts.BufferPoolPages)
	cat, err := catalog.Open(disk, pool)
	if err != nil {
		disk.Close()
		return nil, err
	}
	e := &Engine{
		disk:    disk,
		pool:    pool,
		cat:     cat,
		reg:     core.NewRegistry(),
		vm:      jvm.New(jvm.Options{Security: opts.Security, DisableJIT: opts.DisableJIT}),
		objects: NewObjectStore(),
		opts:    opts,
	}
	e.planner = &plan.Planner{Catalog: cat, Registry: e.reg, NoInline: opts.DisableUDFInlining}
	e.gov = govern.NewGovernor(opts.Quota)
	if opts.FleetSize > 0 {
		e.fleet = fleet.New(fleet.Options{Size: opts.FleetSize, Supervision: opts.Supervision})
	}
	e.ckptBytes = opts.CheckpointBytes
	if e.ckptBytes == 0 {
		e.ckptBytes = defaultCheckpointBytes
	}
	e.SetUDFBatchRows(opts.UDFBatchRows)
	if opts.ScrubInterval > 0 {
		e.scrubber = storage.NewScrubber(disk, storage.ScrubConfig{
			PagePace:  opts.ScrubPace,
			PassPause: opts.ScrubInterval,
		})
		e.scrubber.Start()
	}
	e.defSess = e.NewSession()
	// Restore persisted Jaguar UDFs.
	for _, f := range cat.Functions() {
		if f.Language != "jaguar" || len(f.Code) == 0 {
			continue
		}
		if err := e.installJaguarClass(f.Name, f.Code, f.ArgKinds, f.Return, f.Isolated); err != nil {
			e.Close()
			return nil, fmt.Errorf("engine: restore function %q: %w", f.Name, err)
		}
	}
	return e, nil
}

// Close flushes every dirty page, checkpoints (data fsync + WAL
// truncation) and releases the database, so a graceful stop never
// relies on crash recovery at the next open.
func (e *Engine) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil
	}
	e.closed = true
	e.reg.Close()
	if e.fleet != nil {
		e.fleet.Close()
	}
	if e.scrubber != nil {
		e.scrubber.Close()
	}
	if err := e.pool.FlushAll(); err != nil {
		e.disk.Close()
		return err
	}
	if err := e.disk.Checkpoint(); err != nil {
		e.disk.Close()
		return err
	}
	return e.disk.Close()
}

// Checkpoint flushes every dirty buffered page, fsyncs the data file
// and truncates the write-ahead log. Also available as the SQL
// CHECKPOINT statement.
func (e *Engine) Checkpoint() error {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	if err := e.pool.FlushAll(); err != nil {
		return err
	}
	return e.disk.Checkpoint()
}

// maybeAutoCheckpoint runs a checkpoint when the WAL has outgrown the
// configured bound. Called after a successful mutating statement, with
// no checkpoint lock held.
func (e *Engine) maybeAutoCheckpoint() {
	if e.ckptBytes <= 0 || e.disk.WALSize() < e.ckptBytes {
		return
	}
	if err := e.Checkpoint(); err != nil {
		// The statement that triggered us already committed durably;
		// surface the failure without failing it.
		obs.Logger().Error("automatic checkpoint failed",
			"component", "engine", "error", err)
	}
}

// WALStats reports cumulative write-ahead-log activity.
func (e *Engine) WALStats() storage.WALStats { return e.disk.WALStats() }

// Recovered reports whether redo recovery ran when the database was
// opened, and how much of the log it replayed.
func (e *Engine) Recovered() storage.RecoveryInfo { return e.disk.Recovered() }

// Registry exposes the UDF registry (for programmatic registration).
func (e *Engine) Registry() *core.Registry { return e.reg }

// Governor exposes the per-tenant resource governor.
func (e *Engine) Governor() *govern.Governor { return e.gov }

// Catalog exposes the system catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// VM exposes the embedded Jaguar VM.
func (e *Engine) VM() *jvm.VM { return e.vm }

// Objects exposes the callback object store.
func (e *Engine) Objects() *ObjectStore { return e.objects }

// DiskStats reports physical I/O counters (calibration experiments).
func (e *Engine) DiskStats() storage.DiskStats { return e.disk.Stats() }

// BufferStats reports page-cache counters.
func (e *Engine) BufferStats() storage.BufferStats { return e.pool.Stats() }

// Result is the outcome of one statement.
type Result struct {
	// Schema and Rows are set for SELECT (and SHOW).
	Schema *types.Schema
	Rows   []types.Row
	// RowsAffected is set for INSERT/DELETE.
	RowsAffected int64
	// Message is a human-readable DDL confirmation.
	Message string
	// Plan is the EXPLAIN rendering.
	Plan string
}

// Exec parses and executes one SQL statement on the engine's default
// session (per-connection work should use NewSession).
func (e *Engine) Exec(sqlText string) (*Result, error) {
	return e.defSess.Exec(sqlText)
}

// ExecStmt executes a parsed statement on the default session.
func (e *Engine) ExecStmt(stmt sql.Statement) (*Result, error) {
	return e.defSess.ExecStmt(stmt)
}

// stmtVerb classifies a statement for metrics labels.
func stmtVerb(stmt sql.Statement) string {
	switch stmt.(type) {
	case *sql.Select:
		return "select"
	case *sql.Insert:
		return "insert"
	case *sql.Delete:
		return "delete"
	case *sql.Update:
		return "update"
	case *sql.Explain:
		return "explain"
	case *sql.Show:
		return "show"
	case *sql.CreateTable, *sql.CreateFunction:
		return "create"
	case *sql.DropTable, *sql.DropFunction:
		return "drop"
	case *sql.Checkpoint:
		return "checkpoint"
	case *sql.Backup:
		return "backup"
	default:
		return "other"
	}
}

// mutates reports whether a statement changes persistent state and so
// must be covered by the statement-boundary commit (and excluded from
// a concurrent checkpoint's flush window).
func mutates(stmt sql.Statement) bool {
	switch stmt.(type) {
	case *sql.Insert, *sql.Delete, *sql.Update,
		*sql.CreateTable, *sql.DropTable,
		*sql.CreateFunction, *sql.DropFunction:
		return true
	}
	return false
}

// execStmtDeadline executes a parsed statement under a statement
// deadline (zero = none); sessions call it after handling SET.
func (e *Engine) execStmtDeadline(stmt sql.Statement, deadline time.Time) (*Result, error) {
	return e.execStmtTraced(stmt, deadline, obs.NewTrace())
}

// execStmtTraced runs a statement whose raw SQL text is unavailable
// (parsed-statement entry points); it still gets per-verb metrics but
// no statement-statistics entry.
func (e *Engine) execStmtTraced(stmt sql.Statement, deadline time.Time, tr *obs.Trace) (*Result, error) {
	return e.execStmtObserved(stmt, deadline, tr, "", 0, nil, 0)
}

// tenantName names a tenant for attribution records ("" = ungoverned).
func tenantName(ten *govern.Tenant) string {
	if ten == nil {
		return ""
	}
	return ten.Name()
}

// execStmtObserved wraps statement execution with the per-verb latency
// histogram and outcome counter, the fingerprint-keyed statement
// statistics (when the raw text is known), the flight recorder (live
// registry + query store), and the slow-query log. ten, when non-nil,
// is the tenant whose quotas govern the statement; admitWait is the
// time the statement queued at the server's admission gate, folded
// into the query store's wait breakdown.
func (e *Engine) execStmtObserved(stmt sql.Statement, deadline time.Time, tr *obs.Trace, text string, sessID int64, ten *govern.Tenant, admitWait time.Duration) (*Result, error) {
	verb := stmtVerb(stmt)
	walBefore := e.disk.WALStats()
	ex := obs.Live.Start(sessID, tenantName(ten), text)
	start := time.Now()
	res, err := e.runStmt(stmt, deadline, tr, ten, ex)
	d := time.Since(start)
	obs.Live.Finish(ex)
	obs.Default.Histogram("predator_stmt_seconds", "verb", verb).Observe(d)
	status := "ok"
	if err != nil {
		status = "error"
	}
	obs.Default.Counter("predator_stmt_total", "verb", verb, "status", status).Inc()
	fingerprint := ""
	var rows int64
	if res != nil {
		rows = int64(len(res.Rows)) + res.RowsAffected
	}
	walAfter := e.disk.WALStats()
	if text != "" {
		fingerprint = sql.Normalize(text)
		obs.Statements.Record(fingerprint, d, rows, traceCrossings(tr), int64(walAfter.Bytes-walBefore.Bytes))
	}
	if ex != nil {
		obs.History.Add(obs.QueryRecord{
			ID:          ex.ID(),
			SessionID:   sessID,
			Fingerprint: fingerprint,
			Tenant:      tenantName(ten),
			Query:       text,
			Started:     start,
			Duration:    d,
			Rows:        rows,
			Crossings:   ex.Crossings(),
			ChildCPU:    ex.ChildCPU(),
			WALBytes:    int64(walAfter.Bytes - walBefore.Bytes),
			Wait: obs.WaitProfile{
				Plan:          tr.SpanDuration("plan"),
				Exec:          tr.SpanDuration("execute"),
				CrossingWait:  ex.CrossingWait(),
				WALFsync:      time.Duration(walAfter.FsyncNanos - walBefore.FsyncNanos),
				AdmissionWait: admitWait,
			},
			Status: status,
		})
	}
	if t := e.opts.SlowQuery; t > 0 && d >= t {
		attrs := []any{
			"component", "engine", "verb", verb, "status", status, "duration", d,
		}
		if sessID != 0 {
			attrs = append(attrs, "session", sessID)
		}
		if text != "" {
			attrs = append(attrs, "query", text, "fingerprint", fingerprint)
		}
		if s := tr.Summary(); s != "" {
			attrs = append(attrs, "trace", s)
		}
		obs.Logger().Warn("slow query", attrs...)
	}
	return res, err
}

// traceCrossings counts UDF invocation events recorded in a trace (the
// "udf:<name>" aggregates the expression layer emits — one per process
// crossing for isolated designs, one per call for embedded ones).
func traceCrossings(tr *obs.Trace) int64 {
	var n int64
	for _, ev := range tr.Events() {
		if strings.HasPrefix(ev.Name, "udf:") {
			n += ev.Count
		}
	}
	return n
}

func (e *Engine) runStmt(stmt sql.Statement, deadline time.Time, tr *obs.Trace, ten *govern.Tenant, ex *obs.Execution) (*Result, error) {
	if _, ok := stmt.(*sql.Checkpoint); ok {
		if err := e.Checkpoint(); err != nil {
			return nil, e.classifyStorageErr(err)
		}
		e.updateStorageGauges()
		return &Result{Message: "checkpoint complete"}, nil
	}
	if b, ok := stmt.(*sql.Backup); ok {
		m, err := e.Backup(b.Dir)
		if err != nil {
			return nil, e.classifyStorageErr(err)
		}
		return &Result{Message: fmt.Sprintf("backup complete: %s (lsn %d..%d, %d pages)",
			b.Dir, m.StartLSN, m.EndLSN, m.Pages)}, nil
	}
	if !mutates(stmt) {
		return e.runStmtInner(stmt, deadline, tr, ten, ex)
	}
	// Degraded read-only mode (disk full): shed the mutation with a
	// typed retryable fault before it touches any state, probing for
	// recovery at most once per interval.
	if err := e.gateMutation(); err != nil {
		return nil, err
	}
	// Mutating statement: hold the checkpoint lock shared so a
	// concurrent CHECKPOINT cannot flush + truncate mid-statement, and
	// force the WAL at the statement boundary before acknowledging.
	e.ckptMu.RLock()
	res, err := e.runStmtInner(stmt, deadline, tr, ten, ex)
	if err == nil {
		ex.SetPhase(obs.PhaseCommit)
		err = e.disk.Commit()
	}
	e.ckptMu.RUnlock()
	if err != nil {
		return nil, e.classifyStorageErr(err)
	}
	e.updateStorageGauges()
	e.maybeAutoCheckpoint()
	return res, nil
}

func (e *Engine) runStmtInner(stmt sql.Statement, deadline time.Time, tr *obs.Trace, ten *govern.Tenant, ex *obs.Execution) (*Result, error) {
	ec := e.evalCtx(deadline, ten, ex)
	// The statement's memory reservation lives exactly as long as the
	// statement: materialized rows are handed to the wire layer after
	// this returns, but the ceiling is per-statement, not per-buffer.
	defer ec.Mem.Release()
	ec.Trace = tr
	if tr.Detailed() {
		// Detailed tracing reaches across the process boundary: isolated
		// executors see the trace on the UDF context and ship their own
		// spans back (merged in by the executor handle).
		ec.UDF.Trace = tr
	}
	switch n := stmt.(type) {
	case *sql.CreateTable:
		schema := &types.Schema{Columns: n.Columns}
		if _, err := e.cat.CreateTable(n.Name, schema); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s created", n.Name)}, nil
	case *sql.DropTable:
		if err := e.cat.DropTable(n.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s dropped", n.Name)}, nil
	case *sql.Insert:
		return e.execInsert(n, ec)
	case *sql.Delete:
		return e.execDelete(n, ec)
	case *sql.Update:
		return e.execUpdate(n, ec)
	case *sql.Select:
		return e.execSelect(n, ec)
	case *sql.Explain:
		ex.SetPhase(obs.PhasePlan)
		sp := tr.Start("plan")
		op, err := e.planner.PlanSelect(n.Query)
		sp.End()
		if err != nil {
			return nil, err
		}
		plan.Annotate(op)
		if !n.Analyze {
			return &Result{Plan: exec.ExplainTree(op)}, nil
		}
		// EXPLAIN ANALYZE: run the probe-wrapped tree to completion,
		// then render it — each node's line shows the planner estimate
		// next to the recorded actuals — plus the trace footer (phase
		// spans and aggregated UDF-invoke events). Detailed tracing is
		// forced on so executor-side spans (child/invoke, child/vm_exec)
		// appear in the footer alongside the parent's.
		tr.EnableDetail()
		ec.UDF.Trace = tr
		root := exec.Instrument(op)
		ex.SetPhase(obs.PhaseExecute)
		sp = tr.Start("execute")
		rows, err := exec.Run(root, ec)
		sp.End()
		if err != nil {
			return nil, err
		}
		rendered := exec.ExplainTree(root)
		rendered += fmt.Sprintf("Rows returned: %d\n", len(rows))
		rendered += tr.Render()
		return &Result{Plan: rendered}, nil
	case *sql.CreateFunction:
		return e.execCreateFunction(n)
	case *sql.DropFunction:
		if err := e.reg.Drop(n.Name); err != nil {
			return nil, err
		}
		if _, ok := e.cat.Function(n.Name); ok {
			if err := e.cat.DropFunction(n.Name); err != nil {
				return nil, err
			}
		}
		return &Result{Message: fmt.Sprintf("function %s dropped", n.Name)}, nil
	case *sql.Show:
		return e.execShow(n)
	case *sql.Kill:
		// KILL only flags the registry entry; the target statement
		// surfaces the cancellation itself at its next between-rows
		// check. A query that already finished is an error — the
		// registry drops entries exactly once, so a stale ID can never
		// cancel a later statement.
		if n.ID < 0 || !obs.Live.Kill(uint64(n.ID)) {
			return nil, fmt.Errorf("engine: query %d is not running", n.ID)
		}
		return &Result{Message: fmt.Sprintf("kill signal sent to query %d", n.ID)}, nil
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// SetUDFBatchRows retunes the per-crossing UDF batch cap for statements
// started after the call (0 = expr.DefaultBatchRows; 1 or negative
// forces the legacy scalar path).
func (e *Engine) SetUDFBatchRows(n int) {
	if n == 0 {
		n = expr.DefaultBatchRows
	}
	if n < 1 {
		n = 1
	}
	e.batchRows.Store(int64(n))
}

// UDFBatchRows reports the current per-crossing UDF batch cap.
func (e *Engine) UDFBatchRows() int { return int(e.batchRows.Load()) }

func (e *Engine) evalCtx(deadline time.Time, ten *govern.Tenant, ex *obs.Execution) *expr.Ctx {
	return &expr.Ctx{
		UDF:      &core.Ctx{Callback: e.objects, Logf: e.opts.Logf, Deadline: deadline, Tenant: ten, Exec: ex},
		Deadline: deadline,
		UDFBatch: int(e.batchRows.Load()),
		Mem:      govern.NewReservation(ten),
		Exec:     ex,
	}
}

func (e *Engine) execSelect(sel *sql.Select, ec *expr.Ctx) (*Result, error) {
	ec.Exec.SetPhase(obs.PhasePlan)
	sp := ec.Trace.Start("plan")
	op, err := e.planner.PlanSelect(sel)
	sp.End()
	if err != nil {
		return nil, err
	}
	ec.Exec.SetPhase(obs.PhaseExecute)
	sp = ec.Trace.Start("execute")
	rows, err := exec.Run(op, ec)
	sp.End()
	if err != nil {
		return nil, err
	}
	return &Result{Schema: op.Schema(), Rows: rows}, nil
}

func (e *Engine) execInsert(ins *sql.Insert, ec *expr.Ctx) (*Result, error) {
	tbl, ok := e.cat.Table(ins.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", ins.Table)
	}
	binder := &expr.Binder{Scope: expr.NewScope(), Registry: e.reg, NoInline: e.opts.DisableUDFInlining}
	var n int64
	for _, exprs := range ins.Rows {
		if len(exprs) != tbl.Schema.Arity() {
			return nil, fmt.Errorf("engine: table %s has %d columns, %d values given",
				tbl.Name, tbl.Schema.Arity(), len(exprs))
		}
		row := make(types.Row, len(exprs))
		for i, ex := range exprs {
			bound, err := binder.Bind(ex)
			if err != nil {
				return nil, err
			}
			v, err := bound.Eval(ec, nil)
			if err != nil {
				return nil, err
			}
			v, err = coerce(v, tbl.Schema.Columns[i].Kind)
			if err != nil {
				return nil, fmt.Errorf("engine: column %q: %w", tbl.Schema.Columns[i].Name, err)
			}
			row[i] = v
		}
		rec, err := types.EncodeRow(nil, tbl.Schema, row)
		if err != nil {
			return nil, err
		}
		if _, err := tbl.Heap().Insert(rec); err != nil {
			return nil, err
		}
		n++
	}
	return &Result{RowsAffected: n}, nil
}

func (e *Engine) execDelete(del *sql.Delete, ec *expr.Ctx) (*Result, error) {
	tbl, ok := e.cat.Table(del.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", del.Table)
	}
	var pred expr.Bound
	if del.Where != nil {
		scope := expr.NewScope()
		scope.AddTable(del.Table, tbl.Schema)
		binder := &expr.Binder{Scope: scope, Registry: e.reg, NoInline: e.opts.DisableUDFInlining}
		p, err := binder.Bind(del.Where)
		if err != nil {
			return nil, err
		}
		if p.Kind() != types.KindBool {
			return nil, fmt.Errorf("engine: DELETE predicate is %s, not BOOL", p.Kind())
		}
		pred = p
	}
	// Collect matching RIDs first, then delete (no mutation mid-scan).
	var rids []storage.RID
	sc := tbl.Heap().Scan()
	for sc.Next() {
		if pred != nil {
			row, err := types.DecodeRow(sc.Record(), tbl.Schema)
			if err != nil {
				return nil, err
			}
			v, err := pred.Eval(ec, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool {
				continue
			}
		}
		rids = append(rids, sc.RID())
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	var n int64
	for _, rid := range rids {
		ok, err := tbl.Heap().Delete(rid)
		if err != nil {
			return nil, err
		}
		if ok {
			n++
		}
	}
	return &Result{RowsAffected: n}, nil
}

func (e *Engine) execUpdate(upd *sql.Update, ec *expr.Ctx) (*Result, error) {
	tbl, ok := e.cat.Table(upd.Table)
	if !ok {
		return nil, fmt.Errorf("engine: table %q does not exist", upd.Table)
	}
	scope := expr.NewScope()
	scope.AddTable(upd.Table, tbl.Schema)
	binder := &expr.Binder{Scope: scope, Registry: e.reg, NoInline: e.opts.DisableUDFInlining}
	// Bind SET clauses: target column index + value expression.
	type setBound struct {
		col   int
		kind  types.Kind
		value expr.Bound
	}
	sets := make([]setBound, 0, len(upd.Sets))
	seen := make(map[int]bool)
	for _, s := range upd.Sets {
		idx := tbl.Schema.ColumnIndex(s.Column)
		if idx < 0 {
			return nil, fmt.Errorf("engine: table %s has no column %q", tbl.Name, s.Column)
		}
		if seen[idx] {
			return nil, fmt.Errorf("engine: column %q assigned twice", s.Column)
		}
		seen[idx] = true
		bound, err := binder.Bind(s.Value)
		if err != nil {
			return nil, err
		}
		sets = append(sets, setBound{col: idx, kind: tbl.Schema.Columns[idx].Kind, value: bound})
	}
	var pred expr.Bound
	if upd.Where != nil {
		p, err := binder.Bind(upd.Where)
		if err != nil {
			return nil, err
		}
		if p.Kind() != types.KindBool {
			return nil, fmt.Errorf("engine: UPDATE predicate is %s, not BOOL", p.Kind())
		}
		pred = p
	}
	// Phase 1: collect matching rows (no mutation mid-scan); the new
	// row values are computed against the pre-update image.
	type change struct {
		rid storage.RID
		row types.Row
	}
	var changes []change
	sc := tbl.Heap().Scan()
	for sc.Next() {
		row, err := types.DecodeRow(sc.Record(), tbl.Schema)
		if err != nil {
			return nil, err
		}
		if pred != nil {
			v, err := pred.Eval(ec, row)
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.Bool {
				continue
			}
		}
		newRow := row.Clone()
		for _, s := range sets {
			v, err := s.value.Eval(ec, row)
			if err != nil {
				return nil, err
			}
			v, err = coerce(v, s.kind)
			if err != nil {
				return nil, fmt.Errorf("engine: column %q: %w", tbl.Schema.Columns[s.col].Name, err)
			}
			newRow[s.col] = v.Clone()
		}
		changes = append(changes, change{rid: sc.RID(), row: newRow})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Phase 2: apply as delete + insert (RIDs may change; the engine
	// has no indexes that would need maintenance).
	for _, ch := range changes {
		if _, err := tbl.Heap().Delete(ch.rid); err != nil {
			return nil, err
		}
		rec, err := types.EncodeRow(nil, tbl.Schema, ch.row)
		if err != nil {
			return nil, err
		}
		if _, err := tbl.Heap().Insert(rec); err != nil {
			return nil, err
		}
	}
	return &Result{RowsAffected: int64(len(changes))}, nil
}

func (e *Engine) execShow(n *sql.Show) (*Result, error) {
	switch n.What {
	case "tables":
		sch := types.NewSchema(
			types.Column{Name: "table_name", Kind: types.KindString},
			types.Column{Name: "columns", Kind: types.KindString},
		)
		var rows []types.Row
		for _, t := range e.cat.Tables() {
			rows = append(rows, types.Row{types.NewString(t.Name), types.NewString(t.Schema.String())})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "functions":
		sch := types.NewSchema(
			types.Column{Name: "function_name", Kind: types.KindString},
			types.Column{Name: "design", Kind: types.KindString},
			types.Column{Name: "signature", Kind: types.KindString},
		)
		var rows []types.Row
		for _, u := range e.reg.List() {
			args := make([]string, len(u.ArgKinds()))
			for i, k := range u.ArgKinds() {
				args[i] = k.String()
			}
			sig := fmt.Sprintf("(%s) -> %s", strings.Join(args, ", "), u.ReturnKind())
			rows = append(rows, types.Row{
				types.NewString(u.Name()),
				types.NewString(u.Design().String()),
				types.NewString(sig),
			})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "udfs":
		sch := types.NewSchema(
			types.Column{Name: "function_name", Kind: types.KindString},
			types.Column{Name: "design", Kind: types.KindString},
			types.Column{Name: "breaker", Kind: types.KindString},
			types.Column{Name: "window_failures", Kind: types.KindInt},
			types.Column{Name: "opens", Kind: types.KindInt},
			types.Column{Name: "sheds", Kind: types.KindInt},
			types.Column{Name: "quarantined", Kind: types.KindBool},
			types.Column{Name: "exec_design", Kind: types.KindString},
			types.Column{Name: "inline_bailout", Kind: types.KindString},
		)
		// Only isolated designs carry a breaker; in-process UDFs show a
		// "-" state (a crash there is the server's crash — the paper's
		// Design 1 trade-off — so there is nothing to trip).
		type breakerStatuser interface {
			BreakerStatus() (govern.BreakerStatus, bool)
		}
		type fleetRider interface {
			OnFleet() bool
		}
		var rows []types.Row
		for _, u := range e.reg.List() {
			state, failures, opens, sheds := "-", int64(0), int64(0), int64(0)
			quarantined := false
			if bs, ok := u.(breakerStatuser); ok {
				st, q := bs.BreakerStatus()
				state, failures, opens, sheds = st.State, int64(st.Failures), st.Opens, st.Sheds
				quarantined = q
			}
			// exec_design is where a call actually executes once the
			// binder has had its say: "inline" for translated bodies the
			// planner lowers into the expression tree, otherwise the
			// dispatch path — with the bail-out reason explaining why the
			// UDF still pays crossings.
			execDesign, bail := "", ""
			if inl, ok := u.(core.Inlinable); ok {
				p, b := inl.InlineProgram()
				if p != nil && !e.opts.DisableUDFInlining {
					execDesign = "inline"
				} else if p != nil {
					bail = "disabled"
				} else {
					bail = b
				}
			}
			if execDesign == "" {
				switch u.Design() {
				case core.DesignVMIntegrated:
					execDesign = "vm"
				case core.DesignNativeIsolated, core.DesignVMIsolated:
					execDesign = "isolated"
					if fr, ok := u.(fleetRider); ok && fr.OnFleet() {
						execDesign = "fleet"
					}
				default:
					execDesign = "native"
				}
			}
			if bail == "" {
				bail = "-"
			}
			rows = append(rows, types.Row{
				types.NewString(u.Name()),
				types.NewString(u.Design().String()),
				types.NewString(state),
				types.NewInt(failures),
				types.NewInt(opens),
				types.NewInt(sheds),
				types.NewBool(quarantined),
				types.NewString(execDesign),
				types.NewString(bail),
			})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "executors":
		sch := types.NewSchema(
			types.Column{Name: "slot", Kind: types.KindInt},
			types.Column{Name: "pid", Kind: types.KindInt},
			types.Column{Name: "state", Kind: types.KindString},
			types.Column{Name: "resident_streams", Kind: types.KindInt},
			types.Column{Name: "idle_streams", Kind: types.KindInt},
			types.Column{Name: "warm_entries", Kind: types.KindInt},
			types.Column{Name: "restarts", Kind: types.KindInt},
			types.Column{Name: "last_ping_seconds", Kind: types.KindFloat},
		)
		// No fleet configured: an empty relation, not an error, so the
		// statement is portable across deployments.
		var rows []types.Row
		if e.fleet != nil {
			for _, info := range e.fleet.Snapshot() {
				lastPing := -1.0
				if info.LastPing >= 0 {
					lastPing = info.LastPing.Seconds()
				}
				rows = append(rows, types.Row{
					types.NewInt(int64(info.Slot)),
					types.NewInt(int64(info.PID)),
					types.NewString(info.State),
					types.NewInt(int64(info.Resident)),
					types.NewInt(int64(info.Idle)),
					types.NewInt(int64(info.Warm)),
					types.NewInt(int64(info.Restarts)),
					types.NewFloat(lastPing),
				})
			}
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "stats":
		sch := types.NewSchema(
			types.Column{Name: "metric", Kind: types.KindString},
			types.Column{Name: "value", Kind: types.KindString},
		)
		var rows []types.Row
		for _, st := range obs.Default.Dump() {
			rows = append(rows, types.Row{types.NewString(st.Name), types.NewString(st.Value)})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "storage":
		return e.execShowStorage()
	case "statements":
		sch := types.NewSchema(
			types.Column{Name: "fingerprint", Kind: types.KindString},
			types.Column{Name: "calls", Kind: types.KindInt},
			types.Column{Name: "total_seconds", Kind: types.KindFloat},
			types.Column{Name: "mean_seconds", Kind: types.KindFloat},
			types.Column{Name: "p50_seconds", Kind: types.KindFloat},
			types.Column{Name: "p99_seconds", Kind: types.KindFloat},
			types.Column{Name: "rows", Kind: types.KindInt},
			types.Column{Name: "udf_crossings", Kind: types.KindInt},
			types.Column{Name: "wal_bytes", Kind: types.KindInt},
		)
		var rows []types.Row
		for _, st := range obs.Statements.Snapshot() {
			rows = append(rows, types.Row{
				types.NewString(st.Fingerprint),
				types.NewInt(st.Calls),
				types.NewFloat(st.Total.Seconds()),
				types.NewFloat(st.Mean.Seconds()),
				types.NewFloat(st.P50.Seconds()),
				types.NewFloat(st.P99.Seconds()),
				types.NewInt(st.Rows),
				types.NewInt(st.Crossings),
				types.NewInt(st.WALBytes),
			})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "processlist":
		sch := types.NewSchema(
			types.Column{Name: "query_id", Kind: types.KindInt},
			types.Column{Name: "session_id", Kind: types.KindInt},
			types.Column{Name: "tenant", Kind: types.KindString},
			types.Column{Name: "phase", Kind: types.KindString},
			types.Column{Name: "elapsed_seconds", Kind: types.KindFloat},
			types.Column{Name: "rows", Kind: types.KindInt},
			types.Column{Name: "crossings", Kind: types.KindInt},
			types.Column{Name: "child_cpu_seconds", Kind: types.KindFloat},
			types.Column{Name: "killed", Kind: types.KindBool},
			types.Column{Name: "query", Kind: types.KindString},
		)
		var rows []types.Row
		for _, x := range obs.Live.Snapshot() {
			rows = append(rows, types.Row{
				types.NewInt(int64(x.ID)),
				types.NewInt(x.SessionID),
				types.NewString(x.Tenant),
				types.NewString(x.Phase),
				types.NewFloat(x.Elapsed.Seconds()),
				types.NewInt(x.Rows),
				types.NewInt(x.Crossings),
				types.NewFloat(x.ChildCPU.Seconds()),
				types.NewBool(x.Killed),
				types.NewString(x.Query),
			})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "history":
		sch := types.NewSchema(
			types.Column{Name: "query_id", Kind: types.KindInt},
			types.Column{Name: "fingerprint", Kind: types.KindString},
			types.Column{Name: "tenant", Kind: types.KindString},
			types.Column{Name: "duration_seconds", Kind: types.KindFloat},
			types.Column{Name: "rows", Kind: types.KindInt},
			types.Column{Name: "crossings", Kind: types.KindInt},
			types.Column{Name: "child_cpu_seconds", Kind: types.KindFloat},
			types.Column{Name: "wal_bytes", Kind: types.KindInt},
			types.Column{Name: "plan_seconds", Kind: types.KindFloat},
			types.Column{Name: "exec_seconds", Kind: types.KindFloat},
			types.Column{Name: "crossing_wait_seconds", Kind: types.KindFloat},
			types.Column{Name: "wal_fsync_seconds", Kind: types.KindFloat},
			types.Column{Name: "admission_wait_seconds", Kind: types.KindFloat},
			types.Column{Name: "status", Kind: types.KindString},
		)
		var rows []types.Row
		for _, qr := range obs.History.Snapshot() {
			rows = append(rows, types.Row{
				types.NewInt(int64(qr.ID)),
				types.NewString(qr.Fingerprint),
				types.NewString(qr.Tenant),
				types.NewFloat(qr.Duration.Seconds()),
				types.NewInt(qr.Rows),
				types.NewInt(qr.Crossings),
				types.NewFloat(qr.ChildCPU.Seconds()),
				types.NewInt(qr.WALBytes),
				types.NewFloat(qr.Wait.Plan.Seconds()),
				types.NewFloat(qr.Wait.Exec.Seconds()),
				types.NewFloat(qr.Wait.CrossingWait.Seconds()),
				types.NewFloat(qr.Wait.WALFsync.Seconds()),
				types.NewFloat(qr.Wait.AdmissionWait.Seconds()),
				types.NewString(qr.Status),
			})
		}
		return &Result{Schema: sch, Rows: rows}, nil
	case "tenants":
		sch := types.NewSchema(
			types.Column{Name: "tenant", Kind: types.KindString},
			types.Column{Name: "sessions", Kind: types.KindInt},
			types.Column{Name: "mem_bytes", Kind: types.KindInt},
			types.Column{Name: "cpu_window_seconds", Kind: types.KindFloat},
			types.Column{Name: "cpu_total_seconds", Kind: types.KindFloat},
			types.Column{Name: "child_cpu_seconds", Kind: types.KindFloat},
		)
		var rows []types.Row
		if e.gov != nil {
			for _, t := range e.gov.Tenants() {
				rows = append(rows, types.Row{
					types.NewString(t.Name()),
					types.NewInt(t.Sessions()),
					types.NewInt(t.MemInUse()),
					types.NewFloat(t.CPUUsed().Seconds()),
					types.NewFloat(t.CPUTotal().Seconds()),
					types.NewFloat(t.ChildCPUUsed().Seconds()),
				})
			}
		}
		return &Result{Schema: sch, Rows: rows}, nil
	default:
		return nil, fmt.Errorf("engine: unknown SHOW target %q", n.What)
	}
}

func (e *Engine) execCreateFunction(cf *sql.CreateFunction) (*Result, error) {
	if cf.Language != "jaguar" {
		return nil, fmt.Errorf("engine: unsupported UDF language %q (only JAGUAR can be created from SQL; native UDFs are registered by the embedding program)", cf.Language)
	}
	if _, exists := e.reg.Lookup(cf.Name); exists && !cf.Replace {
		return nil, fmt.Errorf("engine: function %q already exists (use CREATE OR REPLACE)", cf.Name)
	}
	classBytes, err := jaguar.CompileToBytes(cf.Body, classNameFor(cf.Name))
	if err != nil {
		return nil, err
	}
	if err := e.installJaguarClass(cf.Name, classBytes, cf.Args, cf.Return, cf.Isolated); err != nil {
		return nil, err
	}
	// Persist so the function survives restarts (§6.4 portability).
	err = e.cat.PutFunction(&catalog.Function{
		Name:     cf.Name,
		Language: "jaguar",
		Isolated: cf.Isolated,
		ArgKinds: cf.Args,
		Return:   cf.Return,
		Code:     classBytes,
	}, true)
	if err != nil {
		return nil, err
	}
	mode := "integrated (Design 3)"
	if cf.Isolated {
		mode = "isolated (Design 4)"
	}
	return &Result{Message: fmt.Sprintf("function %s created, %s", cf.Name, mode)}, nil
}

// RegisterJaguar compiles Jaguar source and installs the named function
// programmatically (same path as CREATE FUNCTION). The entry method
// must have the same name as the function.
func (e *Engine) RegisterJaguar(name, src string, args []types.Kind, ret types.Kind, isolated, persist bool) error {
	classBytes, err := jaguar.CompileToBytes(src, classNameFor(name))
	if err != nil {
		return err
	}
	if err := e.installJaguarClass(name, classBytes, args, ret, isolated); err != nil {
		return err
	}
	return e.cat.PutFunction(&catalog.Function{
		Name: name, Language: "jaguar", Isolated: isolated,
		ArgKinds: args, Return: ret, Code: classBytes,
	}, persist)
}

// RegisterJaguarClass installs an already-compiled, serialized Jaguar
// class as a UDF (the client-to-server migration path: clients upload
// verified bytecode, not source).
func (e *Engine) RegisterJaguarClass(name string, classBytes []byte, method string, args []types.Kind, ret types.Kind, isolated, persist bool) error {
	if err := e.installJaguarClassMethod(name, classBytes, method, args, ret, isolated); err != nil {
		return err
	}
	return e.cat.PutFunction(&catalog.Function{
		Name: name, Language: "jaguar", Isolated: isolated,
		ArgKinds: args, Return: ret, Code: classBytes,
	}, persist)
}

func (e *Engine) installJaguarClass(name string, classBytes []byte, args []types.Kind, ret types.Kind, isolated bool) error {
	return e.installJaguarClassMethod(name, classBytes, name, args, ret, isolated)
}

func (e *Engine) installJaguarClassMethod(name string, classBytes []byte, method string, args []types.Kind, ret types.Kind, isolated bool) error {
	if isolated {
		u := isolate.NewVMIsolated(name, args, ret, isolate.VMSetup{
			ClassBytes: classBytes,
			Method:     method,
			Limits:     e.opts.UDFLimits,
		})
		return e.reg.Register(e.attachFleet(isolate.WithSupervision(u, e.opts.Supervision)))
	}
	// Each UDF loads in its own namespace: class-loader isolation.
	loader := e.vm.NewLoader("udf:" + strings.ToLower(name))
	loader.Unload(classNameFor(name)) // allow CREATE OR REPLACE
	lc, err := loader.Load(classBytes)
	if err != nil {
		return err
	}
	u, err := core.NewVM(core.VMUDFConfig{
		Name:   name,
		Class:  lc,
		Method: method,
		Args:   args,
		Return: ret,
		Limits: e.opts.UDFLimits,
	})
	if err != nil {
		return err
	}
	return e.reg.Register(u)
}

// RegisterNative installs a trusted Design 1 UDF.
func (e *Engine) RegisterNative(name string, args []types.Kind, ret types.Kind, fn core.NativeFunc) error {
	return e.reg.Register(core.NewNative(name, args, ret, fn))
}

// RegisterSFINative installs a bounds-checked native UDF (BC++).
func (e *Engine) RegisterSFINative(name string, args []types.Kind, ret types.Kind, fn core.NativeFunc) error {
	return e.reg.Register(core.NewSFINative(name, args, ret, fn))
}

// RegisterNativeIsolated installs a Design 2 UDF. The function name
// must also be present in the NativeTable passed to
// isolate.MaybeRunExecutor by this program's main.
func (e *Engine) RegisterNativeIsolated(name string, args []types.Kind, ret types.Kind) error {
	u := isolate.NewNativeIsolated(name, args, ret)
	return e.reg.Register(e.attachFleet(isolate.WithSupervision(u, e.opts.Supervision)))
}

// attachFleet routes an isolated UDF's crossings through the shared
// executor fleet when one is configured. Attach happens at registration
// time — before the first Invoke — as the fleet contract requires.
func (e *Engine) attachFleet(u core.UDF) core.UDF {
	if e.fleet == nil {
		return u
	}
	return isolate.WithFleet(u, e.fleet)
}

// Fleet exposes the shared executor fleet (nil when FleetSize is 0),
// for diagnostics like SHOW EXECUTORS and tests.
func (e *Engine) Fleet() *fleet.Fleet { return e.fleet }

// classNameFor derives the Jaguar class name for a SQL function.
func classNameFor(fn string) string { return "udf_" + strings.ToLower(fn) }

// coerce adapts a value to a column kind (INT -> FLOAT widening only).
func coerce(v types.Value, want types.Kind) (types.Value, error) {
	if v.IsNull() || v.Kind == want {
		return v, nil
	}
	if want == types.KindFloat && v.Kind == types.KindInt {
		return types.NewFloat(float64(v.Int)), nil
	}
	return types.Value{}, fmt.Errorf("expected %s, got %s", want, v.Kind)
}
