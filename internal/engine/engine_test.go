package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/isolate"
	"predator/internal/jvm"
	"predator/internal/types"
)

var testNatives = isolate.NativeTable{
	"iso_double": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		return types.NewInt(args[0].Int * 2), nil
	},
	// iso_hang loops forever: only executor supervision can stop it.
	"iso_hang": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		for {
			time.Sleep(time.Hour)
		}
	},
	// iso_slow takes a fixed per-row time: used to drive a statement
	// deadline into the gaps between batched invocations.
	"iso_slow": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		time.Sleep(10 * time.Millisecond)
		return args[0], nil
	},
}

func TestMain(m *testing.M) {
	isolate.MaybeRunExecutor(testNatives)
	os.Exit(m.Run())
}

func openEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := Open(filepath.Join(t.TempDir(), "test.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func mustExec(t *testing.T, e *Engine, q string) *Result {
	t.Helper()
	res, err := e.Exec(q)
	if err != nil {
		t.Fatalf("exec %q: %v", q, err)
	}
	return res
}

func seedStocks(t *testing.T, e *Engine) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE stocks (id INT, sym STRING, type STRING, price FLOAT, history BYTES)`)
	mustExec(t, e, `INSERT INTO stocks VALUES
		(1, 'ACME', 'tech', 10.5, X'010203'),
		(2, 'GLOB', 'tech', 20.0, X'0405'),
		(3, 'OILCO', 'energy', 55.25, X'06'),
		(4, 'BANKX', 'finance', 7.75, X''),
		(5, 'NULLY', NULL, NULL, NULL)`)
}

func TestDDLAndInsertSelect(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `SELECT sym, price FROM stocks WHERE type = 'tech' ORDER BY price DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if res.Rows[0][0].Str != "GLOB" || res.Rows[1][0].Str != "ACME" {
		t.Errorf("order wrong: %v", res.Rows)
	}
	if res.Schema.Columns[0].Name != "sym" || res.Schema.Columns[1].Kind != types.KindFloat {
		t.Errorf("schema wrong: %s", res.Schema)
	}
}

func TestSelectStar(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `SELECT * FROM stocks WHERE id = 3`)
	if len(res.Rows) != 1 || res.Schema.Arity() != 5 {
		t.Fatalf("rows=%d arity=%d", len(res.Rows), res.Schema.Arity())
	}
	if res.Rows[0][1].Str != "OILCO" {
		t.Errorf("row = %s", res.Rows[0])
	}
}

func TestArithmeticAndAliases(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `SELECT sym, price * 2 AS dbl, LENGTH(history) hl FROM stocks WHERE id = 1`)
	row := res.Rows[0]
	if row[1].Float != 21.0 || row[2].Int != 3 {
		t.Errorf("row = %s", row)
	}
	if res.Schema.Columns[1].Name != "dbl" || res.Schema.Columns[2].Name != "hl" {
		t.Errorf("aliases wrong: %s", res.Schema)
	}
}

func TestNullSemantics(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	// NULL never matches comparisons.
	res := mustExec(t, e, `SELECT id FROM stocks WHERE price > 0`)
	if len(res.Rows) != 4 {
		t.Errorf("price > 0 matched %d rows, want 4", len(res.Rows))
	}
	res = mustExec(t, e, `SELECT id FROM stocks WHERE price IS NULL`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 5 {
		t.Errorf("IS NULL wrong: %v", res.Rows)
	}
	res = mustExec(t, e, `SELECT id FROM stocks WHERE type IS NOT NULL AND price < 100`)
	if len(res.Rows) != 4 {
		t.Errorf("IS NOT NULL wrong: %d rows", len(res.Rows))
	}
	// NOT(NULL) is NULL -> row rejected.
	res = mustExec(t, e, `SELECT id FROM stocks WHERE NOT (price > 0)`)
	if len(res.Rows) != 0 {
		t.Errorf("NOT over NULL leaked %d rows", len(res.Rows))
	}
}

func TestLimitAndOrderAsc(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `SELECT id FROM stocks WHERE id IS NOT NULL ORDER BY id LIMIT 3`)
	if len(res.Rows) != 3 || res.Rows[0][0].Int != 1 || res.Rows[2][0].Int != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	mustExec(t, e, `CREATE TABLE sectors (name STRING, weight FLOAT)`)
	mustExec(t, e, `INSERT INTO sectors VALUES ('tech', 1.5), ('energy', 0.5)`)
	res := mustExec(t, e, `
		SELECT s.sym, c.weight FROM stocks s JOIN sectors c ON s.type = c.name
		ORDER BY s.sym`)
	if len(res.Rows) != 3 {
		t.Fatalf("join produced %d rows, want 3", len(res.Rows))
	}
	if res.Rows[0][0].Str != "ACME" || res.Rows[0][1].Float != 1.5 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Comma-style cross join with WHERE acting as join predicate.
	res = mustExec(t, e, `
		SELECT s.sym FROM stocks s, sectors c WHERE s.type = c.name AND c.weight < 1.0`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "OILCO" {
		t.Errorf("cross join rows = %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `SELECT COUNT(*), COUNT(price), SUM(price), MIN(price), MAX(price), AVG(price) FROM stocks`)
	row := res.Rows[0]
	if row[0].Int != 5 || row[1].Int != 4 {
		t.Errorf("counts = %s", row)
	}
	if row[2].Float != 93.5 || row[3].Float != 7.75 || row[4].Float != 55.25 {
		t.Errorf("sum/min/max = %s", row)
	}
	if row[5].Float != 93.5/4 {
		t.Errorf("avg = %s", row[5])
	}
}

func TestGroupByHaving(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `
		SELECT type, COUNT(*) n, AVG(price) FROM stocks
		WHERE type IS NOT NULL
		GROUP BY type HAVING COUNT(*) >= 1
		ORDER BY type`)
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	if res.Rows[2][0].Str != "tech" || res.Rows[2][1].Int != 2 || res.Rows[2][2].Float != 15.25 {
		t.Errorf("tech group = %s", res.Rows[2])
	}
	// HAVING filters groups.
	res = mustExec(t, e, `
		SELECT type, COUNT(*) FROM stocks WHERE type IS NOT NULL
		GROUP BY type HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "tech" {
		t.Errorf("having rows = %v", res.Rows)
	}
	// Expressions over aggregates.
	res = mustExec(t, e, `SELECT SUM(price) / COUNT(price) FROM stocks`)
	if res.Rows[0][0].Float != 93.5/4 {
		t.Errorf("expr over aggs = %s", res.Rows[0][0])
	}
}

func TestGroupByRejectsLooseColumns(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	if _, err := e.Exec(`SELECT sym, COUNT(*) FROM stocks GROUP BY type`); err == nil {
		t.Error("non-grouped column accepted")
	}
}

func TestDelete(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `DELETE FROM stocks WHERE type = 'tech'`)
	if res.RowsAffected != 2 {
		t.Errorf("deleted %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, e, `SELECT COUNT(*) FROM stocks`)
	if res.Rows[0][0].Int != 3 {
		t.Errorf("remaining = %s", res.Rows[0][0])
	}
	res = mustExec(t, e, `DELETE FROM stocks`)
	if res.RowsAffected != 3 {
		t.Errorf("deleted %d, want 3", res.RowsAffected)
	}
}

func TestJaguarUDFViaSQL(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	mustExec(t, e, `CREATE FUNCTION histsum(bytes) RETURNS int LANGUAGE jaguar AS $$
		func histsum(h bytes) int {
			var acc int = 0;
			for (var i int = 0; i < len(h); i = i + 1) { acc = acc + h[i]; }
			return acc;
		}
	$$`)
	res := mustExec(t, e, `SELECT sym, histsum(history) FROM stocks WHERE histsum(history) > 5 ORDER BY sym`)
	// ACME: 1+2+3=6; GLOB: 4+5=9; OILCO: 6; BANKX: 0; NULLY: NULL.
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "ACME" || res.Rows[0][1].Int != 6 {
		t.Errorf("rows = %v", res.Rows)
	}
	// SHOW FUNCTIONS reports the design.
	show := mustExec(t, e, `SHOW FUNCTIONS`)
	if len(show.Rows) != 1 || show.Rows[0][1].Str != "JNI" {
		t.Errorf("show functions = %v", show.Rows)
	}
	// Replacement requires OR REPLACE.
	if _, err := e.Exec(`CREATE FUNCTION histsum(bytes) RETURNS int LANGUAGE jaguar AS $$func histsum(h bytes) int { return 0; }$$`); err == nil {
		t.Error("duplicate function accepted")
	}
	mustExec(t, e, `CREATE OR REPLACE FUNCTION histsum(bytes) RETURNS int LANGUAGE jaguar AS $$func histsum(h bytes) int { return 42; }$$`)
	res = mustExec(t, e, `SELECT histsum(history) FROM stocks WHERE id = 1`)
	if res.Rows[0][0].Int != 42 {
		t.Errorf("replaced function = %s", res.Rows[0][0])
	}
	mustExec(t, e, `DROP FUNCTION histsum`)
	if _, err := e.Exec(`SELECT histsum(history) FROM stocks`); err == nil {
		t.Error("dropped function still callable")
	}
}

func TestJaguarUDFPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.db")
	e, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE TABLE t (x INT)`)
	mustExec(t, e, `INSERT INTO t VALUES (5)`)
	mustExec(t, e, `CREATE FUNCTION sq(int) RETURNS int LANGUAGE jaguar AS $$func sq(x int) int { return x * x; }$$`)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	res := mustExec(t, e2, `SELECT sq(x) FROM t`)
	if res.Rows[0][0].Int != 25 {
		t.Errorf("persisted UDF = %s", res.Rows[0][0])
	}
}

func TestNativeUDF(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	err := e.RegisterNative("pricecat", []types.Kind{types.KindFloat}, types.KindString,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			if args[0].Float > 15 {
				return types.NewString("high"), nil
			}
			return types.NewString("low"), nil
		})
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT sym FROM stocks WHERE pricecat(price) = 'high' ORDER BY sym`)
	if len(res.Rows) != 2 || res.Rows[0][0].Str != "GLOB" {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestIsolatedNativeUDFViaSQL(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (1), (2), (3)`)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SELECT iso_double(x) FROM n ORDER BY x`)
	if len(res.Rows) != 3 || res.Rows[2][0].Int != 6 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestIsolatedJaguarUDFViaSQL(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (7)`)
	mustExec(t, e, `CREATE FUNCTION inc(int) RETURNS int LANGUAGE jaguar ISOLATED AS $$
		func inc(x int) int { return x + 1; }
	$$`)
	res := mustExec(t, e, `SELECT inc(x) FROM n`)
	if res.Rows[0][0].Int != 8 {
		t.Errorf("inc = %s", res.Rows[0][0])
	}
	show := mustExec(t, e, `SHOW FUNCTIONS`)
	if show.Rows[0][1].Str != "IJNI" {
		t.Errorf("design = %s", show.Rows[0][1])
	}
}

func TestUDFTrapsAreContained(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (0)`)
	mustExec(t, e, `CREATE FUNCTION crashy(int) RETURNS int LANGUAGE jaguar AS $$
		func crashy(x int) int {
			var b bytes = bnew(1);
			return b[5]; // out of bounds
		}
	$$`)
	_, err := e.Exec(`SELECT crashy(x) FROM n`)
	if err == nil || !strings.Contains(err.Error(), "bounds") {
		t.Errorf("trap not surfaced: %v", err)
	}
	// The engine keeps working after the trap.
	res := mustExec(t, e, `SELECT COUNT(*) FROM n`)
	if res.Rows[0][0].Int != 1 {
		t.Error("engine damaged by UDF trap")
	}
}

func TestUDFResourceLimitViaOptions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lim.db")
	e, err := Open(path, Options{UDFLimits: jvm.Limits{Fuel: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (100000000)`)
	mustExec(t, e, `CREATE FUNCTION spin(int) RETURNS int LANGUAGE jaguar AS $$
		func spin(n int) int {
			var acc int = 0;
			for (var i int = 0; i < n; i = i + 1) { acc = acc + 1; }
			return acc;
		}
	$$`)
	_, err = e.Exec(`SELECT spin(x) FROM n`)
	if err == nil || !strings.Contains(err.Error(), "fuel") {
		t.Errorf("denial-of-service UDF not stopped: %v", err)
	}
}

func TestExplainShowsPredicateOrdering(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	mustExec(t, e, `CREATE FUNCTION investval(bytes) RETURNS int LANGUAGE jaguar AS $$
		func investval(h bytes) int {
			var acc int = 0;
			for (var i int = 0; i < len(h); i = i + 1) { acc = acc + h[i]; }
			return acc;
		}
	$$`)
	res := mustExec(t, e, `EXPLAIN SELECT sym FROM stocks WHERE investval(history) > 5 AND type = 'tech'`)
	plan := res.Plan
	// The cheap type='tech' filter must sit BELOW (after in tree
	// rendering) the expensive UDF filter: scan -> cheap -> UDF.
	udfPos := strings.Index(plan, "investval")
	cheapPos := strings.Index(plan, "type")
	scanPos := strings.Index(plan, "SeqScan")
	if udfPos < 0 || cheapPos < 0 || scanPos < 0 {
		t.Fatalf("plan rendering incomplete:\n%s", plan)
	}
	if !(udfPos < cheapPos && cheapPos < scanPos) {
		t.Errorf("expensive predicate not placed above cheap one:\n%s", plan)
	}
}

func TestErrors(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	cases := []string{
		`SELECT * FROM nosuch`,
		`SELECT nosuchcol FROM stocks`,
		`SELECT nosuchfn(id) FROM stocks`,
		`INSERT INTO stocks VALUES (1)`,                     // arity
		`INSERT INTO stocks VALUES ('x', 1, 1, 1.0, X'00')`, // type
		`CREATE TABLE stocks (id INT)`,                      // duplicate
		`DROP TABLE nosuch`,
		`DROP FUNCTION nosuch`,
		`SELECT id FROM stocks WHERE id`, // non-bool predicate
		`CREATE FUNCTION f(int) RETURNS int LANGUAGE cobol AS $$x$$`,
		`CREATE FUNCTION f(int) RETURNS int LANGUAGE jaguar AS $$not jaguar$$`,
		`SELECT s.id FROM stocks s, stocks s2 WHERE id = 1`, // ambiguous
	}
	for _, q := range cases {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("query %q succeeded, want error", q)
		}
	}
}

func TestMultipleStatementsAndSemicolon(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE t (x INT);`)
	res := mustExec(t, e, `SHOW TABLES;`)
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "t" {
		t.Errorf("show tables = %v", res.Rows)
	}
}

func TestObjectStoreCallbacksFromSQL(t *testing.T) {
	e := openEngine(t)
	// Register a large object; store its handle in a table; have a UDF
	// inspect it via callbacks instead of shipping the whole object.
	obj := make([]byte, 1000)
	for i := range obj {
		obj[i] = byte(i % 7)
	}
	h := e.Objects().Put(obj)
	mustExec(t, e, `CREATE TABLE imgs (id INT, handle INT)`)
	mustExec(t, e, fmt.Sprintf(`INSERT INTO imgs VALUES (1, %d)`, h))
	mustExec(t, e, `CREATE FUNCTION objsize(int) RETURNS int LANGUAGE jaguar AS $$
		func objsize(h int) int { return cb_size(h); }
	$$`)
	res := mustExec(t, e, `SELECT objsize(handle) FROM imgs`)
	if res.Rows[0][0].Int != 1000 {
		t.Errorf("objsize = %s", res.Rows[0][0])
	}
	if e.Objects().Stats().Sizes != 1 {
		t.Errorf("callback stats = %+v", e.Objects().Stats())
	}
}

func TestSecurityPolicyDeniesFileAccess(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sec.db")
	policy := jvm.DefaultPolicy()
	e, err := Open(path, Options{Security: policy})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (1)`)
	// time() requires PermTime, which the default policy denies.
	mustExec(t, e, `CREATE FUNCTION sneaky(int) RETURNS int LANGUAGE jaguar AS $$
		func sneaky(x int) int { return time(); }
	$$`)
	_, err = e.Exec(`SELECT sneaky(x) FROM n`)
	if err == nil || !strings.Contains(err.Error(), "security") {
		t.Errorf("security manager did not deny: %v", err)
	}
	audit := policy.Audit()
	if len(audit) == 0 || !audit[0].Denied {
		t.Errorf("no audit trail: %+v", audit)
	}
}

func TestLargeByteArrayRows(t *testing.T) {
	// The paper's Rel10000: 10 KB byte arrays (larger than a page).
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE big (id INT, data BYTES)`)
	blob := strings.Repeat("ab", 5000) // 10,000 bytes
	mustExec(t, e, fmt.Sprintf(`INSERT INTO big VALUES (1, X'%x')`, blob))
	res := mustExec(t, e, `SELECT LENGTH(data) FROM big`)
	if res.Rows[0][0].Int != 10000 {
		t.Errorf("blob length = %s", res.Rows[0][0])
	}
}

func TestUpdate(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	res := mustExec(t, e, `UPDATE stocks SET price = price * 2, type = 'TECH' WHERE type = 'tech'`)
	if res.RowsAffected != 2 {
		t.Errorf("updated %d, want 2", res.RowsAffected)
	}
	res = mustExec(t, e, `SELECT sym, price, type FROM stocks WHERE type = 'TECH' ORDER BY sym`)
	if len(res.Rows) != 2 || res.Rows[0][1].Float != 21.0 || res.Rows[1][1].Float != 40.0 {
		t.Errorf("rows = %v", res.Rows)
	}
	// Values compute against the pre-update image (swap semantics).
	mustExec(t, e, `CREATE TABLE sw (a INT, b INT)`)
	mustExec(t, e, `INSERT INTO sw VALUES (1, 2)`)
	mustExec(t, e, `UPDATE sw SET a = b, b = a`)
	res = mustExec(t, e, `SELECT a, b FROM sw`)
	if res.Rows[0][0].Int != 2 || res.Rows[0][1].Int != 1 {
		t.Errorf("swap = %v", res.Rows[0])
	}
	// UPDATE without WHERE touches every row.
	res = mustExec(t, e, `UPDATE stocks SET price = 1.0`)
	if res.RowsAffected != 5 {
		t.Errorf("updated %d, want 5", res.RowsAffected)
	}
	// NULL assignment and int->float coercion.
	mustExec(t, e, `UPDATE stocks SET price = NULL WHERE sym = 'ACME'`)
	res = mustExec(t, e, `SELECT COUNT(*) FROM stocks WHERE price IS NULL`)
	if res.Rows[0][0].Int != 1 {
		t.Errorf("null update = %v", res.Rows)
	}
	mustExec(t, e, `UPDATE stocks SET price = 7 WHERE sym = 'GLOB'`)
	// UDFs are usable in SET and WHERE.
	mustExec(t, e, `CREATE FUNCTION hs(bytes) RETURNS int LANGUAGE jaguar AS $$
		func hs(h bytes) int {
			var a int = 0;
			for (var i int = 0; i < len(h); i = i + 1) { a = a + h[i]; }
			return a;
		}
	$$`)
	res = mustExec(t, e, `UPDATE stocks SET id = hs(history) WHERE hs(history) > 5`)
	if res.RowsAffected != 3 {
		t.Errorf("udf update affected %d, want 3", res.RowsAffected)
	}
}

func TestUpdateErrors(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	cases := []string{
		`UPDATE nosuch SET x = 1`,
		`UPDATE stocks SET nosuch = 1`,
		`UPDATE stocks SET id = 'str'`,
		`UPDATE stocks SET id = 1, id = 2`,
		`UPDATE stocks SET id = 1 WHERE price`,
		`UPDATE stocks SET id = 1 / 0`,
	}
	for _, q := range cases {
		if _, err := e.Exec(q); err == nil {
			t.Errorf("query %q succeeded, want error", q)
		}
	}
}
