package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"predator/internal/obs"
	"predator/internal/types"
)

// TestExplainAnalyzeShowsChildSpans is the tentpole acceptance check:
// an EXPLAIN ANALYZE over an isolated UDF must surface spans recorded
// inside the executor process (shipped back over the wire and merged),
// not just parent-side aggregates.
func TestExplainAnalyzeShowsChildSpans(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 50)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	plan := mustExec(t, e, `EXPLAIN ANALYZE SELECT iso_double(id) FROM wide WHERE id < 20`).Plan
	if !strings.Contains(plan, "child/invoke") {
		t.Fatalf("EXPLAIN ANALYZE missing child-side span:\n%s", plan)
	}
	if !strings.Contains(plan, "child/setup") {
		t.Errorf("EXPLAIN ANALYZE missing child setup span:\n%s", plan)
	}
	// Child spans render as aggregated events with call counts: 20 rows
	// cross as 2 batched invokes.
	if !regexp.MustCompile(`child/invoke: 2 calls`).MatchString(plan) {
		t.Errorf("child/invoke call count wrong:\n%s", plan)
	}
}

// chromeDoc is the subset of the Chrome trace-event JSON the tests
// inspect.
type chromeDoc struct {
	TraceEvents []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		TS   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		PID  int     `json:"pid"`
		TID  int     `json:"tid"`
	} `json:"traceEvents"`
	Metadata map[string]string `json:"metadata"`
}

func TestSetTraceExportsChromeJSON(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 50)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "query.json")
	sess := e.NewSession()
	if _, err := sess.Exec(fmt.Sprintf(`SET TRACE = '%s'`, path)); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`SELECT iso_double(id) FROM wide WHERE id < 20`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`SET TRACE = 'off'`); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid Chrome trace-event JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}
	pids := map[int]bool{}
	var sawChild, sawParent bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph=%q, want X", ev.Name, ev.Ph)
		}
		pids[ev.PID] = true
		if strings.HasPrefix(ev.Name, "child/") {
			sawChild = true
			if ev.PID == os.Getpid() {
				t.Errorf("child span %q attributed to the parent pid", ev.Name)
			}
		}
		if ev.Name == "execute" || ev.Name == "plan" {
			sawParent = true
		}
	}
	if len(pids) < 2 {
		t.Fatalf("want events from both processes, got pids %v", pids)
	}
	if !sawChild || !sawParent {
		t.Fatalf("want spans from both sides (child=%v parent=%v)", sawChild, sawParent)
	}
	if doc.Metadata["trace_id"] == "" {
		t.Error("missing trace_id metadata")
	}
}

func TestSetTraceOnNeedsTraceDir(t *testing.T) {
	e := openEngine(t) // no TraceDir configured
	sess := e.NewSession()
	if _, err := sess.Exec(`SET TRACE = 'on'`); err == nil {
		t.Fatal("SET TRACE = 'on' without a trace directory should fail")
	}

	dir := t.TempDir()
	e2, err := Open(filepath.Join(t.TempDir(), "t.db"), Options{TraceDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	s2 := e2.NewSession()
	if _, err := s2.Exec(`CREATE TABLE t (id INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec(`SET TRACE = 'on'`); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Exec(`SELECT id FROM t`); err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(dir, fmt.Sprintf("trace-%d-1.json", s2.ID()))
	if _, err := os.Stat(want); err != nil {
		t.Fatalf("auto-named trace not written: %v", err)
	}
}

func TestShowStatementsAggregatesFingerprint(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE stmtagg (id INT, v INT)`)
	mustExec(t, e, `INSERT INTO stmtagg VALUES (1, 10), (2, 20), (3, 30)`)
	// Two executions differing only in the literal must land in one
	// SHOW STATEMENTS row.
	mustExec(t, e, `SELECT v FROM stmtagg WHERE id < 2`)
	mustExec(t, e, `SELECT v FROM stmtagg WHERE id < 3000`)

	res := mustExec(t, e, `SHOW STATEMENTS`)
	cols := res.Schema.Columns
	if cols[0].Name != "fingerprint" || cols[1].Name != "calls" {
		t.Fatalf("schema: %v", cols)
	}
	want := "SELECT v FROM stmtagg WHERE id < ?"
	var found bool
	for _, r := range res.Rows {
		if r[0].Str != want {
			continue
		}
		found = true
		if r[1].Int != 2 {
			t.Errorf("calls = %d, want 2", r[1].Int)
		}
		// Rows column: 1 row (id<2) + 3 rows (id<3000).
		if rows := r[6].Int; rows != 4 {
			t.Errorf("rows = %d, want 4", rows)
		}
	}
	if !found {
		var got []string
		for _, r := range res.Rows {
			got = append(got, r[0].Str)
		}
		t.Fatalf("fingerprint %q not in SHOW STATEMENTS; have %v", want, got)
	}
}

func TestSlowQueryLogStructured(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	h := slog.NewJSONHandler(&lockedWriter{mu: &mu, w: &buf}, nil)
	obs.SetLogger(slog.New(h))
	defer obs.SetLogger(nil)

	e, err := Open(filepath.Join(t.TempDir(), "t.db"), Options{SlowQuery: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	sess := e.NewSession()
	if _, err := sess.Exec(`CREATE TABLE slowq (id INT)`); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(`SELECT id FROM slowq WHERE id = 42`); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	out := buf.String()
	mu.Unlock()
	var rec map[string]any
	var found bool
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if line == "" || !strings.Contains(line, "slow query") {
			continue
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("slow-query log line is not JSON: %v\n%s", err, line)
		}
		found = true
	}
	if !found {
		t.Fatalf("no slow-query log line emitted:\n%s", out)
	}
	if rec["query"] != "SELECT id FROM slowq WHERE id = 42" {
		t.Errorf("query field = %v", rec["query"])
	}
	if rec["fingerprint"] != "SELECT id FROM slowq WHERE id = ?" {
		t.Errorf("fingerprint field = %v", rec["fingerprint"])
	}
	if sess, ok := rec["session"].(float64); !ok || sess <= 0 {
		t.Errorf("session field = %v", rec["session"])
	}
	if rec["component"] != "engine" {
		t.Errorf("component field = %v", rec["component"])
	}
}

type lockedWriter struct {
	mu *sync.Mutex
	w  io.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestMetricsUnderConcurrentLoad scrapes the /metrics surface while 8
// sessions hammer isolated-UDF queries: every scrape must be
// well-formed (no torn lines) and the statement counter must be
// monotone across scrapes. Run with -race, this also exercises the
// registry's concurrency safety end to end.
func TestMetricsUnderConcurrentLoad(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 64)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(obs.Handler(obs.Default))
	defer srv.Close()

	const sessions = 8
	const perSession = 6
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sess := e.NewSession()
			for j := 0; j < perSession; j++ {
				q := fmt.Sprintf(`SELECT iso_double(id) FROM wide WHERE id < %d`, 10+i+j)
				if _, err := sess.Exec(q); err != nil {
					errs <- fmt.Errorf("session %d: %w", i, err)
					return
				}
			}
		}(i)
	}

	// Scrape concurrently until the workload finishes.
	counterRe := regexp.MustCompile(`(?m)^predator_stmt_total\{status="ok",verb="select"\} (\d+)$`)
	lineRe := regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+]+(Inf)?)$`)
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	scrapeErr := make(chan error, 1)
	go func() {
		defer scrapeWG.Done()
		last := int64(-1)
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
			resp, err := http.Get(srv.URL + "/metrics")
			if err != nil {
				scrapeErr <- err
				return
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				scrapeErr <- err
				return
			}
			for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
				if !lineRe.MatchString(line) {
					scrapeErr <- fmt.Errorf("torn or malformed metrics line: %q", line)
					return
				}
			}
			if m := counterRe.FindSubmatch(body); m != nil {
				v, _ := strconv.ParseInt(string(m[1]), 10, 64)
				if v < last {
					scrapeErr <- fmt.Errorf("counter went backwards: %d -> %d", last, v)
					return
				}
				last = v
			}
		}
	}()

	wg.Wait()
	cancel()
	scrapeWG.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	select {
	case err := <-scrapeErr:
		t.Fatal(err)
	default:
	}

	// The workload's fingerprint must have aggregated all executions.
	want := "SELECT iso_double ( id ) FROM wide WHERE id < ?"
	var calls int64
	for _, s := range obs.Statements.Snapshot() {
		if s.Fingerprint == want {
			calls = s.Calls
		}
	}
	if calls < sessions*perSession {
		t.Fatalf("fingerprint %q calls = %d, want >= %d", want, calls, sessions*perSession)
	}
}
