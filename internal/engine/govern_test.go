package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/govern"
	"predator/internal/types"
)

func TestMemoryQuotaAbortsStatement(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, "CREATE TABLE blobs (id INT, body STRING)")
	long := strings.Repeat("x", 1024)
	for i := 0; i < 64; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO blobs VALUES (%d, '%s')", i, long))
	}
	s := e.NewSession()
	s.BindTenant("hog")

	// Unlimited: the full scan materializes fine.
	if res, err := s.Exec("SELECT * FROM blobs"); err != nil || len(res.Rows) != 64 {
		t.Fatalf("ungoverned scan: %v", err)
	}
	// A 4 KiB ceiling cannot hold 64 KiB of rows.
	if _, err := s.Exec("SET quota_memory = 4096"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Exec("SELECT * FROM blobs")
	if core.FaultClassOf(err) != core.FaultQuota {
		t.Fatalf("got %v, want quota fault", err)
	}
	if core.Retryable(err) {
		t.Fatal("quota trips are deterministic; must not be retryable")
	}
	// The failed statement released its reservation.
	if used := s.Tenant().MemInUse(); used != 0 {
		t.Fatalf("leaked %d reserved bytes after quota abort", used)
	}
	// Small statements still fit under the same quota.
	if res, err := s.Exec("SELECT id FROM blobs WHERE id = 3"); err != nil || len(res.Rows) != 1 {
		t.Fatalf("small statement under quota: %v", err)
	}
	// Lifting the quota restores the big scan.
	if _, err := s.Exec("SET quota_memory = 0"); err != nil {
		t.Fatal(err)
	}
	if res, err := s.Exec("SELECT * FROM blobs"); err != nil || len(res.Rows) != 64 {
		t.Fatalf("after lifting quota: %v", err)
	}
}

func TestMemoryQuotaIsolatesTenants(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, "CREATE TABLE blobs (id INT, body STRING)")
	long := strings.Repeat("y", 1024)
	for i := 0; i < 32; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO blobs VALUES (%d, '%s')", i, long))
	}
	noisy := e.NewSession()
	noisy.BindTenant("noisy")
	quiet := e.NewSession()
	quiet.BindTenant("quiet")
	if _, err := noisy.Exec("SET quota_memory = 2048"); err != nil {
		t.Fatal(err)
	}
	if _, err := noisy.Exec("SELECT * FROM blobs"); core.FaultClassOf(err) != core.FaultQuota {
		t.Fatalf("noisy tenant should trip: %v", err)
	}
	// The quiet tenant is untouched by the noisy one's ceiling.
	if res, err := quiet.Exec("SELECT * FROM blobs"); err != nil || len(res.Rows) != 32 {
		t.Fatalf("quiet tenant affected: %v", err)
	}
}

func TestCPUQuotaAbortsStatement(t *testing.T) {
	e := openEngine(t)
	if err := e.RegisterNativeIsolated("iso_slow", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, "CREATE TABLE nums (n INT)")
	for i := 0; i < 30; i++ {
		mustExec(t, e, fmt.Sprintf("INSERT INTO nums VALUES (%d)", i))
	}
	s := e.NewSession()
	s.BindTenant("burner")
	s.Tenant().SetQuota(govern.Quota{CPUTime: 30 * time.Millisecond, CPUWindow: time.Hour})
	// Each iso_slow crossing costs ≥10ms of charged time; 30 rows blow
	// a 30ms budget long before the scan finishes.
	_, err := s.Exec("SELECT iso_slow(n) FROM nums")
	if core.FaultClassOf(err) != core.FaultQuota {
		t.Fatalf("got %v, want quota fault", err)
	}
	if used := s.Tenant().CPUUsed(); used < 30*time.Millisecond {
		t.Fatalf("charged only %v executor time", used)
	}
}

func TestShowUDFS(t *testing.T) {
	e := openEngine(t)
	if err := e.RegisterNative("plain", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) { return args[0], nil }); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, "SHOW UDFS")
	if res.Schema.Columns[2].Name != "breaker" {
		t.Fatalf("schema = %v", res.Schema)
	}
	byName := map[string]types.Row{}
	for _, r := range res.Rows {
		byName[r[0].Str] = r
	}
	if row, ok := byName["plain"]; !ok || row[2].Str != "-" {
		t.Fatalf("plain UDF row = %v", row)
	}
	if row, ok := byName["iso_double"]; !ok || row[2].Str != "closed" || row[6].Bool {
		t.Fatalf("isolated UDF row = %v", row)
	}
}

func TestSetQuotaMessages(t *testing.T) {
	e := openEngine(t)
	s := e.NewSession()
	if res, err := s.Exec("SET quota_memory = 1000000"); err != nil || !strings.Contains(res.Message, "1000000") {
		t.Fatalf("SET quota_memory: %v %v", res, err)
	}
	if res, err := s.Exec("SET quota_cpu = '250ms'"); err != nil || !strings.Contains(res.Message, "250ms") {
		t.Fatalf("SET quota_cpu: %v %v", res, err)
	}
	if _, err := s.Exec("SET quota_memory = 'lots'"); err == nil {
		t.Fatal("string quota_memory accepted")
	}
	if res, err := s.Exec("SET quota_cpu = 0"); err != nil || !strings.Contains(res.Message, "unlimited") {
		t.Fatalf("SET quota_cpu = 0: %v %v", res, err)
	}
}
