package engine

import (
	"fmt"
	"sync"
	"time"

	"predator/internal/obs"
	"predator/internal/sql"
	"predator/internal/types"
)

// Session is one client's execution context over a shared engine. It
// holds per-session settings — today the statement timeout — and runs
// statements under them. Sessions are cheap; the server creates one
// per connection, and Engine.Exec uses a default session.
type Session struct {
	eng *Engine

	mu          sync.Mutex
	stmtTimeout time.Duration
}

// NewSession creates a session with the engine's default settings.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e, stmtTimeout: e.opts.StatementTimeout}
}

// StatementTimeout reports the session's statement timeout (0 = none).
func (s *Session) StatementTimeout() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stmtTimeout
}

// SetStatementTimeout sets the statement timeout programmatically
// (negative values are clamped to 0 = disabled).
func (s *Session) SetStatementTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.stmtTimeout = d
	s.mu.Unlock()
}

// Exec parses and executes one SQL statement under this session.
func (s *Session) Exec(sqlText string) (*Result, error) {
	tr := obs.NewTrace()
	sp := tr.Start("parse")
	stmt, err := sql.Parse(sqlText)
	sp.End()
	if err != nil {
		return nil, err
	}
	return s.execStmtTraced(stmt, tr)
}

// ExecStmt executes a parsed statement under this session: SET is
// applied to session state; everything else runs under the session's
// statement deadline, which cancels the plan between rows and kills
// any isolated executor still working when it expires.
func (s *Session) ExecStmt(stmt sql.Statement) (*Result, error) {
	return s.execStmtTraced(stmt, obs.NewTrace())
}

func (s *Session) execStmtTraced(stmt sql.Statement, tr *obs.Trace) (*Result, error) {
	if set, ok := stmt.(*sql.Set); ok {
		return s.execSet(set)
	}
	var deadline time.Time
	if t := s.StatementTimeout(); t > 0 {
		deadline = time.Now().Add(t)
	}
	return s.eng.execStmtTraced(stmt, deadline, tr)
}

// execSet applies a SET statement to session state.
func (s *Session) execSet(set *sql.Set) (*Result, error) {
	lit, ok := set.Value.(*sql.Literal)
	if !ok {
		return nil, fmt.Errorf("engine: SET %s requires a literal value", set.Name)
	}
	switch set.Name {
	case "statement_timeout":
		d, err := timeoutFromLiteral(lit.Value)
		if err != nil {
			return nil, fmt.Errorf("engine: SET statement_timeout: %w", err)
		}
		s.SetStatementTimeout(d)
		if d == 0 {
			return &Result{Message: "statement_timeout disabled"}, nil
		}
		return &Result{Message: fmt.Sprintf("statement_timeout set to %v", d)}, nil
	default:
		return nil, fmt.Errorf("engine: unknown session variable %q", set.Name)
	}
}

// timeoutFromLiteral converts a SET literal to a duration: an INT is
// milliseconds, a STRING is a Go duration ("250ms", "2s"); 0 disables.
func timeoutFromLiteral(v types.Value) (time.Duration, error) {
	switch v.Kind {
	case types.KindInt:
		if v.Int < 0 {
			return 0, fmt.Errorf("negative timeout %d", v.Int)
		}
		return time.Duration(v.Int) * time.Millisecond, nil
	case types.KindString:
		d, err := time.ParseDuration(v.Str)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", v.Str)
		}
		if d < 0 {
			return 0, fmt.Errorf("negative timeout %q", v.Str)
		}
		return d, nil
	default:
		return 0, fmt.Errorf("value must be milliseconds (INT) or a duration string")
	}
}
