package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"predator/internal/govern"
	"predator/internal/obs"
	"predator/internal/sql"
	"predator/internal/types"
)

// sessionIDs hands out process-unique session identifiers (for the
// slow-query log and trace file names).
var sessionIDs atomic.Int64

// Session is one client's execution context over a shared engine. It
// holds per-session settings — the statement timeout and the tracing
// mode — and runs statements under them. Sessions are cheap; the server
// creates one per connection, and Engine.Exec uses a default session.
type Session struct {
	eng *Engine
	id  int64

	mu          sync.Mutex
	stmtTimeout time.Duration
	// ten is the tenant whose quotas govern this session's statements
	// (nil = ungoverned, the embedding default). The server binds it to
	// the connection's user at hello time.
	ten *govern.Tenant
	// traceMode selects per-statement Chrome trace export: "" = off,
	// "on" = auto-named files in the engine's TraceDir, anything else =
	// an explicit file path (overwritten per statement).
	traceMode string
	traceSeq  int64
	// admitWaitNS is the time the next statement spent queued at the
	// server's admission gate (NoteAdmissionWait); Exec consumes it into
	// the query store's wait breakdown.
	admitWaitNS atomic.Int64
}

// NewSession creates a session with the engine's default settings.
func (e *Engine) NewSession() *Session {
	return &Session{eng: e, id: sessionIDs.Add(1), stmtTimeout: e.opts.StatementTimeout}
}

// ID returns the session's process-unique identifier.
func (s *Session) ID() int64 { return s.id }

// BindTenant places the session under the named tenant's resource
// quotas (the server calls this with the connection's user).
func (s *Session) BindTenant(name string) {
	t := s.eng.gov.Tenant(name)
	s.mu.Lock()
	s.ten = t
	s.mu.Unlock()
}

// Tenant returns the session's governing tenant (nil = ungoverned).
func (s *Session) Tenant() *govern.Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ten
}

// tenantOrDefault returns the session's tenant, binding the "default"
// tenant first if the session is ungoverned (SET QUOTA_* needs a
// tenant to configure).
func (s *Session) tenantOrDefault() *govern.Tenant {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ten == nil {
		s.ten = s.eng.gov.Tenant("")
	}
	return s.ten
}

// StatementTimeout reports the session's statement timeout (0 = none).
func (s *Session) StatementTimeout() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stmtTimeout
}

// SetStatementTimeout sets the statement timeout programmatically
// (negative values are clamped to 0 = disabled).
func (s *Session) SetStatementTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.mu.Lock()
	s.stmtTimeout = d
	s.mu.Unlock()
}

// NoteAdmissionWait records how long the next statement queued at an
// admission gate before reaching Exec; the engine folds it into the
// statement's query-store wait profile (consumed once).
func (s *Session) NoteAdmissionWait(d time.Duration) {
	if d > 0 {
		s.admitWaitNS.Store(int64(d))
	}
}

// Exec parses and executes one SQL statement under this session.
func (s *Session) Exec(sqlText string) (*Result, error) {
	s.mu.Lock()
	mode := s.traceMode
	s.mu.Unlock()
	tr := obs.NewTrace()
	if mode != "" {
		tr.EnableDetail()
	}
	sp := tr.Start("parse")
	stmt, err := sql.Parse(sqlText)
	sp.End()
	if err != nil {
		return nil, err
	}
	res, execErr := s.execStmtObserved(stmt, tr, sqlText)
	if mode != "" {
		if _, isSet := stmt.(*sql.Set); !isSet {
			s.exportTrace(tr, mode)
		}
	}
	return res, execErr
}

// ExecStmt executes a parsed statement under this session: SET is
// applied to session state; everything else runs under the session's
// statement deadline, which cancels the plan between rows and kills
// any isolated executor still working when it expires.
func (s *Session) ExecStmt(stmt sql.Statement) (*Result, error) {
	return s.execStmtTraced(stmt, obs.NewTrace())
}

func (s *Session) execStmtTraced(stmt sql.Statement, tr *obs.Trace) (*Result, error) {
	return s.execStmtObserved(stmt, tr, "")
}

func (s *Session) execStmtObserved(stmt sql.Statement, tr *obs.Trace, text string) (*Result, error) {
	admitWait := time.Duration(s.admitWaitNS.Swap(0))
	if set, ok := stmt.(*sql.Set); ok {
		return s.execSet(set)
	}
	var deadline time.Time
	if t := s.StatementTimeout(); t > 0 {
		deadline = time.Now().Add(t)
	}
	return s.eng.execStmtObserved(stmt, deadline, tr, text, s.id, s.Tenant(), admitWait)
}

// exportTrace writes a statement's trace as Chrome trace-event JSON.
// Failures are logged, never surfaced — tracing is diagnostics and must
// not fail the statement it observed.
func (s *Session) exportTrace(tr *obs.Trace, mode string) {
	path := mode
	if mode == "on" {
		seq := atomic.AddInt64(&s.traceSeq, 1)
		path = filepath.Join(s.eng.opts.TraceDir, fmt.Sprintf("trace-%d-%d.json", s.id, seq))
	}
	f, err := os.Create(path)
	if err == nil {
		err = tr.WriteChrome(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		obs.Logger().Warn("trace export failed",
			"component", "engine", "session", s.id, "path", path, "error", err)
	}
}

// execSet applies a SET statement to session state.
func (s *Session) execSet(set *sql.Set) (*Result, error) {
	lit, ok := set.Value.(*sql.Literal)
	if !ok {
		return nil, fmt.Errorf("engine: SET %s requires a literal value", set.Name)
	}
	switch set.Name {
	case "statement_timeout":
		d, err := timeoutFromLiteral(lit.Value)
		if err != nil {
			return nil, fmt.Errorf("engine: SET statement_timeout: %w", err)
		}
		s.SetStatementTimeout(d)
		if d == 0 {
			return &Result{Message: "statement_timeout disabled"}, nil
		}
		return &Result{Message: fmt.Sprintf("statement_timeout set to %v", d)}, nil
	case "quota_memory":
		if lit.Value.Kind != types.KindInt || lit.Value.Int < 0 {
			return nil, fmt.Errorf("engine: SET quota_memory requires a non-negative byte count")
		}
		s.tenantOrDefault().SetMemQuota(lit.Value.Int)
		if lit.Value.Int == 0 {
			return &Result{Message: "quota_memory unlimited"}, nil
		}
		return &Result{Message: fmt.Sprintf("quota_memory set to %d bytes", lit.Value.Int)}, nil
	case "quota_cpu":
		d, err := timeoutFromLiteral(lit.Value)
		if err != nil {
			return nil, fmt.Errorf("engine: SET quota_cpu: %w", err)
		}
		s.tenantOrDefault().SetCPUQuota(d)
		if d == 0 {
			return &Result{Message: "quota_cpu unlimited"}, nil
		}
		return &Result{Message: fmt.Sprintf("quota_cpu set to %v per window", d)}, nil
	case "trace":
		if lit.Value.Kind != types.KindString {
			return nil, fmt.Errorf("engine: SET trace requires a string: 'on', 'off' or a file path")
		}
		switch v := lit.Value.Str; v {
		case "off", "":
			s.mu.Lock()
			s.traceMode = ""
			s.mu.Unlock()
			return &Result{Message: "tracing disabled"}, nil
		case "on":
			dir := s.eng.opts.TraceDir
			if dir == "" {
				return nil, fmt.Errorf("engine: SET trace = 'on' needs a trace directory (start with -trace-dir, or SET trace to an explicit file path)")
			}
			s.mu.Lock()
			s.traceMode = "on"
			s.mu.Unlock()
			return &Result{Message: fmt.Sprintf("tracing to %s", dir)}, nil
		default:
			s.mu.Lock()
			s.traceMode = v
			s.mu.Unlock()
			return &Result{Message: fmt.Sprintf("tracing to %s", v)}, nil
		}
	default:
		return nil, fmt.Errorf("engine: unknown session variable %q", set.Name)
	}
}

// timeoutFromLiteral converts a SET literal to a duration: an INT is
// milliseconds, a STRING is a Go duration ("250ms", "2s"); 0 disables.
func timeoutFromLiteral(v types.Value) (time.Duration, error) {
	switch v.Kind {
	case types.KindInt:
		if v.Int < 0 {
			return 0, fmt.Errorf("negative timeout %d", v.Int)
		}
		return time.Duration(v.Int) * time.Millisecond, nil
	case types.KindString:
		d, err := time.ParseDuration(v.Str)
		if err != nil {
			return 0, fmt.Errorf("bad duration %q", v.Str)
		}
		if d < 0 {
			return 0, fmt.Errorf("negative timeout %q", v.Str)
		}
		return d, nil
	default:
		return 0, fmt.Errorf("value must be milliseconds (INT) or a duration string")
	}
}
