package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"predator/internal/storage"
)

func countRows(t *testing.T, e *Engine, table string) int {
	t.Helper()
	res, err := e.Exec("SELECT * FROM " + table)
	if err != nil {
		t.Fatalf("SELECT %s: %v", table, err)
	}
	return len(res.Rows)
}

// TestCloseThenReopenNoRecovery: a graceful Close checkpoints, so the
// next open must find all data without running crash recovery.
func TestCloseThenReopenNoRecovery(t *testing.T) {
	for _, mode := range []string{"none", "commit", "always"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "close.db")
			e, err := Open(path, Options{Durability: mode})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if _, err := e.Exec("CREATE TABLE t (id INT, s STRING)"); err != nil {
				t.Fatalf("CREATE: %v", err)
			}
			for i := 0; i < 20; i++ {
				if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'row-%d')", i, i)); err != nil {
					t.Fatalf("INSERT: %v", err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if mode != "none" {
				if info, err := os.Stat(storage.WALPath(path)); err != nil || info.Size() != 0 {
					t.Fatalf("WAL not truncated by graceful Close: %v %v", info, err)
				}
			}
			e2, err := Open(path, Options{Durability: mode})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer e2.Close()
			if rec := e2.Recovered(); rec.Ran {
				t.Fatalf("graceful shutdown required recovery: %+v", rec)
			}
			if n := countRows(t, e2, "t"); n != 20 {
				t.Fatalf("rows after reopen = %d, want 20", n)
			}
		})
	}
}

func TestCheckpointStatement(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckptstmt.db")
	e, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	if _, err := e.Exec("INSERT INTO t VALUES (1), (2), (3)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}
	if e.disk.WALSize() == 0 {
		t.Fatalf("WAL empty before checkpoint (durability default should be commit)")
	}
	res, err := e.Exec("CHECKPOINT")
	if err != nil {
		t.Fatalf("CHECKPOINT: %v", err)
	}
	if res.Message == "" {
		t.Fatalf("CHECKPOINT returned no confirmation")
	}
	if got := e.disk.WALSize(); got != 0 {
		t.Fatalf("WAL size after CHECKPOINT = %d, want 0", got)
	}
	if n := countRows(t, e, "t"); n != 3 {
		t.Fatalf("rows after CHECKPOINT = %d, want 3", n)
	}
}

// TestAutoCheckpointBoundsWAL: with a tiny threshold the WAL must be
// truncated automatically, never growing far past the bound.
func TestAutoCheckpointBoundsWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "autockpt.db")
	const bound = 64 << 10
	e, err := Open(path, Options{CheckpointBytes: bound})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (id INT, s STRING)"); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	for i := 0; i < 60; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d, 'x')", i)); err != nil {
			t.Fatalf("INSERT %d: %v", i, err)
		}
		// One statement can append several page images past the bound,
		// but the next boundary must checkpoint; allow that slack.
		if got := e.disk.WALSize(); got > bound+int64(8*storage.PageSize) {
			t.Fatalf("WAL grew to %d, far past the %d bound", got, bound)
		}
	}
	ws := e.WALStats()
	if ws.Appends == 0 || ws.Fsyncs == 0 {
		t.Fatalf("expected WAL activity, got %+v", ws)
	}
}

// TestDurabilityNoneNoWALFile: the bench configuration must not pay
// for logging at all.
func TestDurabilityNoneNoWALFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plain.db")
	e, err := Open(path, Options{Durability: "none"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	if _, err := e.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatalf("INSERT: %v", err)
	}
	if _, err := os.Stat(storage.WALPath(path)); !os.IsNotExist(err) {
		t.Fatalf("WAL file exists under durability=none: %v", err)
	}
	if ws := e.WALStats(); ws.Appends != 0 {
		t.Fatalf("WAL appends under durability=none: %+v", ws)
	}
	// CHECKPOINT stays valid (it just flushes + fsyncs).
	if _, err := e.Exec("CHECKPOINT"); err != nil {
		t.Fatalf("CHECKPOINT under durability=none: %v", err)
	}
}

func TestOpenRejectsBadDurability(t *testing.T) {
	_, err := Open(filepath.Join(t.TempDir(), "bad.db"), Options{Durability: "paranoid"})
	if err == nil {
		t.Fatalf("Open accepted an unknown durability mode")
	}
}
