package engine

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/storage"
	"predator/internal/types"
)

// End-to-end storage-resilience tests: ENOSPC degraded read-only mode
// with typed retryable shedding and auto-recovery, online BACKUP TO +
// point-in-time restore through SQL, and the SHOW STORAGE surface.

// storageField reads one column of the single SHOW STORAGE row.
func storageField(t *testing.T, e *Engine, col string) types.Value {
	t.Helper()
	res, err := e.Exec("SHOW STORAGE")
	if err != nil {
		t.Fatalf("SHOW STORAGE: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("SHOW STORAGE returned %d rows", len(res.Rows))
	}
	i := res.Schema.ColumnIndex(col)
	if i < 0 {
		t.Fatalf("SHOW STORAGE has no column %q (schema %v)", col, res.Schema)
	}
	return res.Rows[0][i]
}

func TestENOSPCDegradedReadOnlyAndRecovery(t *testing.T) {
	t.Cleanup(func() { storage.ArmFault("") })
	path := filepath.Join(t.TempDir(), "enospc.db")
	e, err := Open(path, Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatalf("INSERT %d: %v", i, err)
		}
	}

	// The disk fills: the failing mutation must surface as a typed,
	// retryable disk-full fault and flip the engine read-only.
	storage.ArmFault("walwrite:enospc")
	_, err = e.Exec("INSERT INTO t VALUES (100)")
	if err == nil {
		t.Fatalf("INSERT succeeded on a full disk")
	}
	if cls := core.FaultClassOf(err); cls != core.FaultDiskFull {
		t.Fatalf("fault class = %v, want FaultDiskFull (err: %v)", cls, err)
	}
	if !core.Retryable(err) {
		t.Fatalf("disk-full fault not retryable: %v", err)
	}

	// Reads keep serving in degraded mode. (The failed INSERT may have
	// left partial in-memory effects — the WAL is redo-only, there is
	// no statement undo — so assert the acked rows, not an exact count.)
	res, err := e.Exec("SELECT id FROM t")
	if err != nil {
		t.Fatalf("SELECT in degraded mode: %v", err)
	}
	got := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		got[row[0].Int] = true
	}
	for i := int64(0); i < 5; i++ {
		if !got[i] {
			t.Fatalf("acked row %d missing from degraded read", i)
		}
	}
	if ro := storageField(t, e, "read_only"); !ro.Bool {
		t.Fatalf("SHOW STORAGE read_only = false while degraded")
	}
	if reason := storageField(t, e, "read_only_reason"); reason.Str == "" {
		t.Fatalf("SHOW STORAGE read_only_reason empty while degraded")
	}

	// Space frees: the next mutation probes, rebuilds the WAL, and
	// succeeds — no restart, no data loss.
	storage.ArmFault("")
	if _, err := e.Exec("INSERT INTO t VALUES (200)"); err != nil {
		t.Fatalf("INSERT after space freed: %v", err)
	}
	if ro := storageField(t, e, "read_only"); ro.Bool {
		t.Fatalf("engine still read-only after recovery")
	}

	// Every acknowledged row — before the fault and after recovery —
	// survives a clean restart.
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	e2, err := Open(path, Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer e2.Close()
	res, err = e2.Exec("SELECT id FROM t")
	if err != nil {
		t.Fatalf("SELECT after restart: %v", err)
	}
	got = make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		got[row[0].Int] = true
	}
	for _, id := range []int64{0, 1, 2, 3, 4, 200} {
		if !got[id] {
			t.Fatalf("acked row %d lost across disk-full recovery + restart", id)
		}
	}
}

// TestFsyncFailureFailsNonRetryable: a sticky WAL fsync failure is a
// non-retryable storage fault (fsyncgate: buffered data may be gone).
func TestFsyncFailureFailsNonRetryable(t *testing.T) {
	t.Cleanup(func() { storage.ArmFault("") })
	path := filepath.Join(t.TempDir(), "fsyncgate.db")
	e, err := Open(path, Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	storage.ArmFault("walwrite:fsyncfail")
	_, err = e.Exec("INSERT INTO t VALUES (1)")
	if err == nil {
		t.Fatalf("INSERT succeeded with failing WAL fsync")
	}
	if cls := core.FaultClassOf(err); cls != core.FaultStorage {
		t.Fatalf("fault class = %v, want FaultStorage (err: %v)", cls, err)
	}
	if core.Retryable(err) {
		t.Fatalf("fsync-failure fault must not be retryable: %v", err)
	}
	if stuck := storageField(t, e, "wal_stuck"); stuck.Str == "" {
		t.Fatalf("SHOW STORAGE wal_stuck empty after fsync failure")
	}
}

// TestBackupAndPITRThroughSQL: BACKUP TO under live writers, then
// point-in-time restore to a mid-workload statement boundary and to
// the latest state.
func TestBackupAndPITRThroughSQL(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pitr.db")
	arch := filepath.Join(dir, "archive")
	backup := filepath.Join(dir, "backup")
	e, err := Open(path, Options{Durability: "commit", ArchiveDir: arch})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("CREATE TABLE t (id INT)"); err != nil {
		t.Fatalf("CREATE: %v", err)
	}
	insert := func(lo, hi int) {
		t.Helper()
		for i := lo; i < hi; i++ {
			if _, err := e.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
				t.Fatalf("INSERT %d: %v", i, err)
			}
		}
	}
	insert(0, 10)
	res, err := e.Exec(fmt.Sprintf("BACKUP TO '%s'", backup))
	if err != nil {
		t.Fatalf("BACKUP TO: %v", err)
	}
	if res.Message == "" {
		t.Fatalf("BACKUP TO returned no message")
	}
	m, err := storage.ReadManifest(backup)
	if err != nil {
		t.Fatalf("ReadManifest: %v", err)
	}
	if m.StartLSN <= 0 || m.EndLSN < m.StartLSN || m.Pages == 0 {
		t.Fatalf("implausible manifest: %+v", m)
	}

	insert(10, 20)
	midLSN := storageField(t, e, "current_lsn").Int

	insert(20, 30)
	if err := e.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}

	// Restore to the mid-workload boundary: exactly rows 0..19.
	midOut := filepath.Join(dir, "mid.db")
	info, err := storage.Restore(backup, arch, midOut, midLSN)
	if err != nil {
		t.Fatalf("Restore(mid): %v", err)
	}
	if info.TargetLSN != midLSN {
		t.Fatalf("restored to %d, want %d", info.TargetLSN, midLSN)
	}
	em, err := Open(midOut, Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("open mid restore: %v", err)
	}
	checkIDs(t, em, 20)
	em.Close()

	// Restore to the latest archived state: all 30 rows.
	lastOut := filepath.Join(dir, "last.db")
	if _, err := storage.Restore(backup, arch, lastOut, 0); err != nil {
		t.Fatalf("Restore(latest): %v", err)
	}
	el, err := Open(lastOut, Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("open latest restore: %v", err)
	}
	checkIDs(t, el, 30)
	el.Close()
}

// checkIDs asserts the table holds exactly ids 0..n-1.
func checkIDs(t *testing.T, e *Engine, n int) {
	t.Helper()
	res, err := e.Exec("SELECT id FROM t")
	if err != nil {
		t.Fatalf("SELECT: %v", err)
	}
	if len(res.Rows) != n {
		t.Fatalf("restored rows = %d, want %d", len(res.Rows), n)
	}
	seen := make(map[int64]bool, n)
	for _, row := range res.Rows {
		seen[row[0].Int] = true
	}
	for i := 0; i < n; i++ {
		if !seen[int64(i)] {
			t.Fatalf("restored table missing id %d", i)
		}
	}
}

// TestBackupRequiresArchiving: BACKUP TO without an archive directory
// is refused (the restore chain would be incomplete).
func TestBackupRequiresArchiving(t *testing.T) {
	path := filepath.Join(t.TempDir(), "noarch.db")
	e, err := Open(path, Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if _, err := e.Exec("BACKUP TO '" + t.TempDir() + "'"); err == nil {
		t.Fatalf("BACKUP TO succeeded without WAL archiving")
	}
}

// TestScrubberRunsUnderEngine: ScrubInterval starts the background
// scrubber and SHOW STORAGE reports its progress.
func TestScrubberRunsUnderEngine(t *testing.T) {
	dir := t.TempDir()
	e, err := Open(filepath.Join(dir, "scrub.db"), Options{
		Durability:    "commit",
		ArchiveDir:    filepath.Join(dir, "archive"),
		ScrubInterval: time.Millisecond,
		ScrubPace:     -1, // flat out: finish passes quickly
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer e.Close()
	if running := storageField(t, e, "scrub_running"); !running.Bool {
		t.Fatalf("scrubber not running under ScrubInterval")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if storageField(t, e, "scrub_passes").Int > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrubber completed no pass within deadline")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
