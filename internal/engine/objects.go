package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ObjectStore is the server-side large-object service behind UDF
// callbacks: instead of shipping a whole object into a UDF, the engine
// hands the UDF an integer handle, and the UDF asks the server for the
// pieces it needs (paper §4: "callbacks"). It also counts crossings so
// experiments can verify callback traffic.
type ObjectStore struct {
	mu      sync.RWMutex
	objects map[int64][]byte
	next    int64

	// Counters (atomic; hot path).
	sizes   atomic.Int64
	gets    atomic.Int64
	reads   atomic.Int64
	touches atomic.Int64
}

// NewObjectStore returns an empty store.
func NewObjectStore() *ObjectStore {
	return &ObjectStore{objects: make(map[int64][]byte), next: 1}
}

// Put registers an object and returns its handle.
func (s *ObjectStore) Put(data []byte) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := s.next
	s.next++
	s.objects[h] = data
	return h
}

// Remove drops an object.
func (s *ObjectStore) Remove(handle int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, handle)
}

func (s *ObjectStore) get(handle int64) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[handle]
	if !ok {
		return nil, fmt.Errorf("engine: no object with handle %d", handle)
	}
	return data, nil
}

// Size implements jvm.Callback.
func (s *ObjectStore) Size(handle int64) (int64, error) {
	s.sizes.Add(1)
	data, err := s.get(handle)
	if err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// Get implements jvm.Callback.
func (s *ObjectStore) Get(handle, offset int64) (byte, error) {
	s.gets.Add(1)
	data, err := s.get(handle)
	if err != nil {
		return 0, err
	}
	if offset < 0 || offset >= int64(len(data)) {
		return 0, fmt.Errorf("engine: offset %d outside object of %d bytes", offset, len(data))
	}
	return data[offset], nil
}

// Read implements jvm.Callback.
func (s *ObjectStore) Read(handle, offset, length int64) ([]byte, error) {
	s.reads.Add(1)
	data, err := s.get(handle)
	if err != nil {
		return nil, err
	}
	if offset < 0 || length < 0 || offset+length > int64(len(data)) {
		return nil, fmt.Errorf("engine: range [%d,%d) outside object of %d bytes", offset, offset+length, len(data))
	}
	out := make([]byte, length)
	copy(out, data[offset:])
	return out, nil
}

// Touch implements jvm.Callback: a pure boundary crossing.
func (s *ObjectStore) Touch(handle int64) error {
	s.touches.Add(1)
	return nil
}

// CallbackStats reports crossing counts.
type CallbackStats struct {
	Sizes, Gets, Reads, Touches int64
}

// Stats returns a snapshot of the callback counters.
func (s *ObjectStore) Stats() CallbackStats {
	return CallbackStats{
		Sizes:   s.sizes.Load(),
		Gets:    s.gets.Load(),
		Reads:   s.reads.Load(),
		Touches: s.touches.Load(),
	}
}
