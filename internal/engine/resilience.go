package engine

import (
	"fmt"
	"sync"
	"time"

	"predator/internal/core"
	"predator/internal/obs"
	"predator/internal/storage"
	"predator/internal/types"
)

// Storage-resilience behaviour of the engine: the degraded read-only
// mode entered on ENOSPC (mutations shed with a typed retryable
// disk-full fault, reads keep serving, an auto-probe recovers once
// space frees), online backups under a checkpoint fence, and the
// SHOW STORAGE surface. The disk-fault taxonomy it builds on lives in
// internal/storage; the typed wire plumbing in internal/core +
// internal/server.

// Storage gauges mirrored onto /metrics (updated at statement
// boundaries, checkpoints, probes and SHOW STORAGE).
var (
	gaugeStorageReadOnly   = obs.Default.Gauge("predator_storage_readonly")
	gaugeStorageCurrentLSN = obs.Default.Gauge("predator_storage_current_lsn")
	gaugeStorageWALBytes   = obs.Default.Gauge("predator_storage_wal_bytes")
	gaugeStorageArchiveLag = obs.Default.Gauge("predator_storage_archive_lag_bytes")
)

// probeInterval rate-limits degraded-mode recovery probes: at most one
// WAL rebuild attempt per interval however many mutations arrive.
const probeInterval = time.Second

// readOnlyState tracks degraded mode (guarded by its own mutex — it is
// consulted on every mutating statement and flipped rarely).
type readOnlyState struct {
	mu        sync.Mutex
	active    bool
	reason    string
	lastProbe time.Time
}

// enterDegradedReadOnly flips the engine into read-only mode (no-op if
// already degraded). Reads keep serving; mutating statements shed with
// a retryable disk-full fault until a probe rebuilds the WAL.
func (e *Engine) enterDegradedReadOnly(cause error) {
	e.ro.mu.Lock()
	wasActive := e.ro.active
	e.ro.active = true
	e.ro.reason = cause.Error()
	// Make the next mutation probe immediately: the operator may have
	// already freed space by the time traffic returns.
	e.ro.lastProbe = time.Time{}
	e.ro.mu.Unlock()
	if !wasActive {
		gaugeStorageReadOnly.Set(1)
		obs.Logger().Error("storage degraded: engine is read-only until space frees",
			"component", "engine", "cause", cause.Error())
	}
}

// readOnlyReason returns ("", false) when healthy, or the degraded
// reason.
func (e *Engine) readOnlyReason() (string, bool) {
	e.ro.mu.Lock()
	defer e.ro.mu.Unlock()
	return e.ro.reason, e.ro.active
}

// shedMutation is the typed fault a mutating statement gets in
// degraded mode. Retryable: the engine auto-probes, so a client retry
// after backoff succeeds once space frees.
func (e *Engine) shedMutation(reason string) error {
	return core.Faultf(core.FaultDiskFull, "statement",
		"engine is in read-only degraded mode (disk full): %s", reason)
}

// gateMutation is called before every mutating statement. In degraded
// mode it runs (rate-limited) recovery probes; it returns a non-nil
// shed fault while the engine stays read-only.
func (e *Engine) gateMutation() error {
	e.ro.mu.Lock()
	if !e.ro.active {
		e.ro.mu.Unlock()
		return nil
	}
	reason := e.ro.reason
	probe := time.Since(e.ro.lastProbe) >= probeInterval
	if probe {
		e.ro.lastProbe = time.Now()
	}
	e.ro.mu.Unlock()
	if !probe {
		return e.shedMutation(reason)
	}
	if e.probeRecover() {
		return nil
	}
	return e.shedMutation(reason)
}

// probeRecover attempts to leave degraded mode by rebuilding the
// poisoned WAL: under the exclusive checkpoint lock (no writers, no
// concurrent checkpoint) it snapshots every dirty buffered page,
// writes a fresh log generation containing the meta record + those
// images + a commit mark, archives the old generation's valid prefix,
// and swaps the logs. Returns true when the engine is writable again.
func (e *Engine) probeRecover() bool {
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	e.ro.mu.Lock()
	active := e.ro.active
	e.ro.mu.Unlock()
	if !active {
		return true
	}
	images := e.pool.DirtyImages()
	if err := e.disk.RebuildWAL(images); err != nil {
		obs.Logger().Info("storage degraded: recovery probe failed",
			"component", "engine", "error", err.Error())
		return false
	}
	// The rebuilt log holds the snapshot images; stop unpin/eviction
	// from re-appending them.
	e.pool.MarkAllLogged()
	e.ro.mu.Lock()
	e.ro.active = false
	e.ro.reason = ""
	e.ro.mu.Unlock()
	gaugeStorageReadOnly.Set(0)
	e.updateStorageGauges()
	obs.Logger().Info("storage recovered: read-only degraded mode cleared",
		"component", "engine", "dirty_pages", len(images))
	return true
}

// classifyStorageErr maps a failed mutating statement's error onto the
// typed fault taxonomy: ENOSPC enters degraded mode and sheds
// retryable; a sticky WAL failure (fsyncgate) is a non-retryable
// storage fault. Errors that already carry a fault class — and
// ordinary statement errors with a healthy log — pass through.
func (e *Engine) classifyStorageErr(err error) error {
	if err == nil {
		return nil
	}
	if core.FaultClassOf(err) != core.FaultNone {
		return err
	}
	if storage.IsDiskFull(err) {
		e.enterDegradedReadOnly(err)
		return core.NewFault(core.FaultDiskFull, "statement", err)
	}
	if walErr := e.disk.WALErr(); walErr != nil {
		if storage.IsDiskFull(walErr) {
			e.enterDegradedReadOnly(walErr)
			return core.NewFault(core.FaultDiskFull, "statement", err)
		}
		// fsyncgate: buffered records may already be lost; no later
		// append or commit may be acknowledged. Not retryable.
		return core.NewFault(core.FaultStorage, "statement", err)
	}
	return err
}

// updateStorageGauges mirrors the disk status onto /metrics.
func (e *Engine) updateStorageGauges() {
	st := e.disk.Status()
	gaugeStorageCurrentLSN.Set(st.CurrentLSN)
	gaugeStorageWALBytes.Set(st.WALBytes)
	gaugeStorageArchiveLag.Set(st.ArchiveLag)
	if _, ro := e.readOnlyReason(); ro {
		gaugeStorageReadOnly.Set(1)
	} else {
		gaugeStorageReadOnly.Set(0)
	}
}

// Backup takes a consistent online base backup into dir (the SQL
// BACKUP TO statement). Writers continue during the copy: a checkpoint
// fence before it fixes StartLSN (everything older is in the base or
// the archive), the copy itself is fuzzy, and a second checkpoint
// after it fixes EndLSN — the manifest's consistency point. Restore
// replays the archive across the copy window, so any target at or
// past EndLSN is exact. Requires WAL archiving.
func (e *Engine) Backup(dir string) (storage.BackupManifest, error) {
	var m storage.BackupManifest
	if e.disk.ArchiveDir() == "" {
		return m, fmt.Errorf("engine: BACKUP requires WAL archiving (open the database with an archive directory)")
	}
	if e.disk.Durability() == storage.DurabilityNone {
		return m, fmt.Errorf("engine: BACKUP requires durability (the WAL is disabled)")
	}
	// Fence 1: everything before StartLSN is durably in the data file
	// and the archive.
	if err := e.Checkpoint(); err != nil {
		return m, fmt.Errorf("engine: backup fence checkpoint: %w", err)
	}
	m.StartLSN = e.disk.CurrentLSN()
	if err := e.disk.CopyBaseTo(dir); err != nil {
		return m, err
	}
	// Fence 2: every write that raced the copy is now archived, so the
	// fuzzy base is repairable from the chain up to EndLSN.
	if err := e.Checkpoint(); err != nil {
		return m, fmt.Errorf("engine: backup closing checkpoint: %w", err)
	}
	m.EndLSN = e.disk.CurrentLSN()
	m.Pages = e.disk.NumPages()
	if err := storage.WriteManifest(dir, m); err != nil {
		return m, err
	}
	if e.scrubber != nil {
		e.scrubber.SetBackupDir(dir)
	}
	e.updateStorageGauges()
	obs.Logger().Info("online backup complete",
		"component", "engine", "dir", dir,
		"start_lsn", m.StartLSN, "end_lsn", m.EndLSN, "pages", m.Pages)
	return m, nil
}

// Scrubber exposes the background scrubber (nil when disabled).
func (e *Engine) Scrubber() *storage.Scrubber { return e.scrubber }

// StorageStatus combines the disk, degraded-mode and scrubber state
// (the programmatic SHOW STORAGE).
type StorageStatus struct {
	Disk           storage.DiskStatus
	ReadOnly       bool
	ReadOnlyReason string
	Scrub          storage.ScrubStatus
}

// StorageStatus snapshots the resilience state.
func (e *Engine) StorageStatus() StorageStatus {
	st := StorageStatus{Disk: e.disk.Status()}
	st.ReadOnlyReason, st.ReadOnly = e.readOnlyReason()
	if e.scrubber != nil {
		st.Scrub = e.scrubber.Status()
	}
	return st
}

// execShowStorage renders SHOW STORAGE: one wide row so operators (and
// tests) address fields by column name.
func (e *Engine) execShowStorage() (*Result, error) {
	e.updateStorageGauges()
	st := e.StorageStatus()
	sch := types.NewSchema(
		types.Column{Name: "current_lsn", Kind: types.KindInt},
		types.Column{Name: "durable_lsn", Kind: types.KindInt},
		types.Column{Name: "wal_bytes", Kind: types.KindInt},
		types.Column{Name: "archiving", Kind: types.KindBool},
		types.Column{Name: "archive_lag_bytes", Kind: types.KindInt},
		types.Column{Name: "read_only", Kind: types.KindBool},
		types.Column{Name: "read_only_reason", Kind: types.KindString},
		types.Column{Name: "wal_stuck", Kind: types.KindString},
		types.Column{Name: "scrub_running", Kind: types.KindBool},
		types.Column{Name: "scrub_passes", Kind: types.KindInt},
		types.Column{Name: "scrub_progress", Kind: types.KindFloat},
		types.Column{Name: "scrub_corrupt", Kind: types.KindInt},
		types.Column{Name: "scrub_repaired", Kind: types.KindInt},
		types.Column{Name: "scrub_unrepaired", Kind: types.KindInt},
		types.Column{Name: "scrub_last_error", Kind: types.KindString},
	)
	row := types.Row{
		types.NewInt(st.Disk.CurrentLSN),
		types.NewInt(st.Disk.DurableLSN),
		types.NewInt(st.Disk.WALBytes),
		types.NewBool(st.Disk.Archiving),
		types.NewInt(st.Disk.ArchiveLag),
		types.NewBool(st.ReadOnly),
		types.NewString(st.ReadOnlyReason),
		types.NewString(st.Disk.WALStuck),
		types.NewBool(st.Scrub.Running),
		types.NewInt(int64(st.Scrub.Passes)),
		types.NewFloat(st.Scrub.Progress),
		types.NewInt(int64(st.Scrub.Corrupt)),
		types.NewInt(int64(st.Scrub.Repaired)),
		types.NewInt(int64(st.Scrub.Unrepaired)),
		types.NewString(st.Scrub.LastError),
	}
	return &Result{Schema: sch, Rows: []types.Row{row}}, nil
}
