package engine

import (
	"path/filepath"
	"testing"

	"predator/internal/types"
)

// TestShowExecutorsWithoutFleet: without -fleet-size the statement is
// an empty relation, not an error.
func TestShowExecutorsWithoutFleet(t *testing.T) {
	e := openEngine(t)
	res := mustExec(t, e, `SHOW EXECUTORS`)
	if len(res.Rows) != 0 {
		t.Fatalf("fleetless SHOW EXECUTORS returned %d rows", len(res.Rows))
	}
	if got := res.Schema.Arity(); got != 8 {
		t.Fatalf("SHOW EXECUTORS arity = %d, want 8", got)
	}
}

// TestFleetEngineIntegration runs both isolated designs (native and
// Jaguar VM) over a shared two-process fleet and inspects it via SHOW
// EXECUTORS.
func TestFleetEngineIntegration(t *testing.T) {
	// inc(x) = x+1 is translatable and would otherwise inline, never
	// crossing into the fleet this test exists to exercise.
	e, err := Open(filepath.Join(t.TempDir(), "fleet.db"), Options{FleetSize: 2, DisableUDFInlining: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	if e.Fleet() == nil || e.Fleet().Size() != 2 {
		t.Fatal("FleetSize option did not build a fleet")
	}
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (1), (2), (3)`)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	mustExec(t, e, `CREATE FUNCTION inc(int) RETURNS int LANGUAGE jaguar ISOLATED AS $$
		func inc(x int) int { return x + 1; }
	$$`)
	res := mustExec(t, e, `SELECT iso_double(x), inc(x) FROM n ORDER BY x`)
	if len(res.Rows) != 3 || res.Rows[2][0].Int != 6 || res.Rows[2][1].Int != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}

	show := mustExec(t, e, `SHOW EXECUTORS`)
	if len(show.Rows) != 2 {
		t.Fatalf("SHOW EXECUTORS rows = %d, want one per fleet slot", len(show.Rows))
	}
	up, resident, warm := 0, int64(0), int64(0)
	for _, row := range show.Rows {
		if row[2].Str == "up" {
			up++
			if row[1].Int == 0 {
				t.Error("up executor with zero pid")
			}
		}
		resident += row[3].Int
		warm += row[5].Int
	}
	if up == 0 {
		t.Fatal("no executor up after fleet queries")
	}
	if resident == 0 {
		t.Error("no resident streams after fleet queries")
	}
	if warm < 2 {
		t.Errorf("warm entries = %d, want >= 2 (both UDFs)", warm)
	}

	// Both queries above shared fleet processes: no dedicated executor
	// per UDF was started. The UDF count exceeding the fleet size is the
	// point of the subsystem.
	if alive := e.Fleet().AliveExecutors(); alive > 2 {
		t.Errorf("alive executors = %d, want <= 2", alive)
	}
}
