package engine

import (
	"path/filepath"
	"strings"
	"testing"

	"predator/internal/types"
)

func openEngineOpts(t *testing.T, opts Options) *Engine {
	t.Helper()
	e, err := Open(filepath.Join(t.TempDir(), "test.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// showUDFRow fetches one function's SHOW UDFS row by name.
func showUDFRow(t *testing.T, e *Engine, name string) types.Row {
	t.Helper()
	res := mustExec(t, e, "SHOW UDFS")
	cols := res.Schema.Columns
	if cols[7].Name != "exec_design" || cols[8].Name != "inline_bailout" {
		t.Fatalf("SHOW UDFS schema = %v", res.Schema)
	}
	for _, r := range res.Rows {
		if r[0].Str == name {
			return r
		}
	}
	t.Fatalf("SHOW UDFS has no row for %q", name)
	return nil
}

// TestInlinedUDFEndToEnd: a translatable Jaguar UDF created via SQL is
// lowered into the plan — EXPLAIN shows [inlined], SHOW UDFS reports
// exec_design "inline", and the query computes the same result the VM
// would.
func TestInlinedUDFEndToEnd(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE v (x INT)`)
	mustExec(t, e, `INSERT INTO v VALUES (1), (2), (3), (4)`)
	mustExec(t, e, `CREATE FUNCTION sq(int) RETURNS int LANGUAGE jaguar AS $$
		func sq(x int) int { return x * x; }
	$$`)

	res := mustExec(t, e, `SELECT sq(x) FROM v WHERE sq(x) > 4 ORDER BY x`)
	if len(res.Rows) != 2 || res.Rows[0][0].Int != 9 || res.Rows[1][0].Int != 16 {
		t.Fatalf("rows = %v", res.Rows)
	}

	ex := mustExec(t, e, `EXPLAIN SELECT x FROM v WHERE sq(x) > 4`)
	if !strings.Contains(ex.Plan, "sq[inlined]") {
		t.Fatalf("EXPLAIN does not show the inlined call:\n%s", ex.Plan)
	}

	row := showUDFRow(t, e, "sq")
	if row[7].Str != "inline" || row[8].Str != "-" {
		t.Fatalf("sq exec_design/bailout = %q/%q, want inline/-", row[7].Str, row[8].Str)
	}
}

// TestInlineBailoutSurfaced: a UDF that calls back into the server is
// untranslatable; it stays on the VM and both EXPLAIN and SHOW UDFS
// say why.
func TestInlineBailoutSurfaced(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE v (x INT)`)
	mustExec(t, e, `CREATE FUNCTION probe(int) RETURNS int LANGUAGE jaguar AS $$
		func probe(x int) int { return cb_size(x); }
	$$`)

	row := showUDFRow(t, e, "probe")
	if row[7].Str != "vm" || row[8].Str != "native-call:cb.size" {
		t.Fatalf("probe exec_design/bailout = %q/%q, want vm/native-call:cb.size", row[7].Str, row[8].Str)
	}

	ex := mustExec(t, e, `EXPLAIN SELECT x FROM v WHERE probe(x) > 0`)
	if !strings.Contains(ex.Plan, "probe[JNI !native-call:cb.size]") {
		t.Fatalf("EXPLAIN does not surface the bail-out reason:\n%s", ex.Plan)
	}

	// Isolated native UDFs have no bytecode at all.
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	row = showUDFRow(t, e, "iso_double")
	if row[7].Str != "isolated" || row[8].Str != "native-code" {
		t.Fatalf("iso_double exec_design/bailout = %q/%q, want isolated/native-code", row[7].Str, row[8].Str)
	}
}

// TestDisableUDFInlining: the ablation switch keeps translatable
// bodies on the VM, reported as such.
func TestDisableUDFInlining(t *testing.T) {
	e := openEngineOpts(t, Options{DisableUDFInlining: true})
	mustExec(t, e, `CREATE TABLE v (x INT)`)
	mustExec(t, e, `INSERT INTO v VALUES (5)`)
	mustExec(t, e, `CREATE FUNCTION sq(int) RETURNS int LANGUAGE jaguar AS $$
		func sq(x int) int { return x * x; }
	$$`)

	res := mustExec(t, e, `SELECT sq(x) FROM v`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 25 {
		t.Fatalf("rows = %v", res.Rows)
	}
	ex := mustExec(t, e, `EXPLAIN SELECT x FROM v WHERE sq(x) > 4`)
	if !strings.Contains(ex.Plan, "sq[JNI !disabled]") {
		t.Fatalf("EXPLAIN should show the disabled fallback:\n%s", ex.Plan)
	}
	row := showUDFRow(t, e, "sq")
	if row[7].Str != "vm" || row[8].Str != "disabled" {
		t.Fatalf("sq exec_design/bailout = %q/%q, want vm/disabled", row[7].Str, row[8].Str)
	}
}

// TestInlinedIsolatedUDF: the Froid point — a translatable body
// declared ISOLATED still inlines (the verifier provides the safety
// the process boundary was buying), skipping the crossing entirely.
func TestInlinedIsolatedUDF(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE v (x INT)`)
	mustExec(t, e, `INSERT INTO v VALUES (7)`)
	mustExec(t, e, `CREATE FUNCTION inc(int) RETURNS int LANGUAGE jaguar ISOLATED AS $$
		func inc(x int) int { return x + 1; }
	$$`)
	res := mustExec(t, e, `SELECT inc(x) FROM v`)
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 8 {
		t.Fatalf("rows = %v", res.Rows)
	}
	ex := mustExec(t, e, `EXPLAIN SELECT x FROM v WHERE inc(x) > 0`)
	if !strings.Contains(ex.Plan, "inc[inlined]") {
		t.Fatalf("isolated-but-translatable UDF should inline:\n%s", ex.Plan)
	}
	row := showUDFRow(t, e, "inc")
	if row[7].Str != "inline" {
		t.Fatalf("inc exec_design = %q, want inline", row[7].Str)
	}
}
