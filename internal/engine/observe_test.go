package engine

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"predator/internal/core"
	"predator/internal/obs"
	"predator/internal/types"
)

// seedWide populates a table big enough that per-operator actuals are
// unambiguous (row counts differ at every level of the plan).
func seedWide(t *testing.T, e *Engine, rows int) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE wide (id INT, v INT)`)
	tbl, _ := e.Catalog().Table("wide")
	for i := 0; i < rows; i++ {
		row := types.Row{types.NewInt(int64(i)), types.NewInt(int64(i % 7))}
		rec, err := types.EncodeRow(nil, tbl.Schema, row)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.Heap().Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
}

func TestExplainEstimates(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 500)
	res := mustExec(t, e, `EXPLAIN SELECT id FROM wide WHERE id = 7`)
	if res.Plan == "" {
		t.Fatal("no plan")
	}
	if !strings.Contains(res.Plan, "est rows=500 via heap chain") {
		t.Errorf("SeqScan line missing heap-chain estimate:\n%s", res.Plan)
	}
	// Equality selectivity is 0.1: the filter line should estimate 50.
	if !strings.Contains(res.Plan, "Filter") || !strings.Contains(res.Plan, "est rows=50)") {
		t.Errorf("Filter line missing selectivity estimate:\n%s", res.Plan)
	}
	if strings.Contains(res.Plan, "actual rows") {
		t.Errorf("plain EXPLAIN must not execute:\n%s", res.Plan)
	}
}

func TestExplainAnalyzeActuals(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 300)
	res := mustExec(t, e, `EXPLAIN ANALYZE SELECT id FROM wide WHERE v = 0 LIMIT 10`)
	plan := res.Plan
	// Every operator line must carry actuals.
	for _, op := range []string{"Project", "Limit", "Filter", "SeqScan"} {
		re := regexp.MustCompile(op + `.*actual rows=(\d+) time=`)
		m := re.FindStringSubmatch(plan)
		if m == nil {
			t.Fatalf("no actuals on %s line:\n%s", op, plan)
		}
	}
	// The limit stops the pipeline at 10 rows; the scan must have seen
	// at least the 64 rows needed to find ten with v=0 (v cycles mod 7)
	// and far fewer than the full table would allow only if LIMIT
	// propagates — exact values depend on pull order, so bound them.
	scan := regexp.MustCompile(`SeqScan.*actual rows=(\d+)`).FindStringSubmatch(plan)
	n, _ := strconv.Atoi(scan[1])
	if n < 10 || n > 300 {
		t.Errorf("scan actual rows=%d out of range", n)
	}
	limit := regexp.MustCompile(`Limit.*actual rows=(\d+)`).FindStringSubmatch(plan)
	if limit[1] != "10" {
		t.Errorf("limit actual rows=%s, want 10", limit[1])
	}
	if !strings.Contains(plan, "Rows returned: 10") {
		t.Errorf("missing rows-returned footer:\n%s", plan)
	}
	if !strings.Contains(plan, "execute:") {
		t.Errorf("missing execute span in trace footer:\n%s", plan)
	}
}

func TestExplainAnalyzeIsolatedUDF(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 50)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `EXPLAIN ANALYZE SELECT iso_double(id) FROM wide WHERE id < 20`)
	plan := res.Plan
	m := regexp.MustCompile(`Project.*actual rows=(\d+)`).FindStringSubmatch(plan)
	if m == nil || m[1] != "20" {
		t.Fatalf("project actuals wrong:\n%s", plan)
	}
	// Isolated UDFs batch by default: 20 rows gather as windows of 8
	// then 12, so the plan must show the batch stats and the trace must
	// record one invoke event per crossing.
	if !strings.Contains(plan, "(batched: 2 batches, mean 10.0 rows)") {
		t.Errorf("missing batch stats on Project line:\n%s", plan)
	}
	if !regexp.MustCompile(`udf:iso_double: 2 calls`).MatchString(plan) {
		t.Errorf("missing aggregated UDF event:\n%s", plan)
	}

	// With batching disabled the legacy path crosses once per row and
	// the trace event count must agree with the row count.
	e.SetUDFBatchRows(1)
	defer e.SetUDFBatchRows(0)
	plan = mustExec(t, e, `EXPLAIN ANALYZE SELECT iso_double(id) FROM wide WHERE id < 20`).Plan
	if strings.Contains(plan, "(batched:") {
		t.Errorf("batch stats present at batch cap 1:\n%s", plan)
	}
	if !regexp.MustCompile(`udf:iso_double: 20 calls`).MatchString(plan) {
		t.Errorf("missing aggregated UDF event on scalar path:\n%s", plan)
	}
}

func TestShowStats(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 100)
	mustExec(t, e, `SELECT * FROM wide WHERE id < 5`)
	res := mustExec(t, e, `SHOW STATS`)
	if res.Schema.Columns[0].Name != "metric" {
		t.Fatalf("schema: %s", res.Schema)
	}
	stats := make(map[string]string, len(res.Rows))
	for _, r := range res.Rows {
		stats[r[0].Str] = r[1].Str
	}
	for _, want := range []string{
		"predator_storage_bufferpool_hits_total",
		`predator_stmt_total{status="ok",verb="select"}`,
		`predator_exec_rows_total{op="seqscan"}`,
		`predator_stmt_seconds_count{verb="select"}`,
	} {
		if _, ok := stats[want]; !ok {
			t.Errorf("SHOW STATS missing %s (have %d metrics)", want, len(stats))
		}
	}
	if v := stats[`predator_exec_rows_total{op="seqscan"}`]; v == "0" || v == "" {
		t.Errorf("seqscan rows counter not advancing: %q", v)
	}
}

// TestBatchMetricsExposed is the acceptance cross-check for the batch
// observability: after a batched isolated query, the process registry —
// the same one the /metrics endpoint renders — must expose the crossing
// counter and the batch-size histogram for the design, and the crossing
// count must reflect the amortization (2 crossings for 20 rows).
func TestBatchMetricsExposed(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 50)
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	crossings := obs.Default.Counter("predator_udf_crossings_total", "design", "IC++")
	batchRows := obs.Default.ValueHistogram("predator_udf_batch_rows", "design", "IC++")
	beforeX, beforeN, beforeSum := crossings.Value(), batchRows.Count(), batchRows.Sum()
	res := mustExec(t, e, `SELECT iso_double(id) FROM wide WHERE id < 20`)
	if len(res.Rows) != 20 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	// 20 rows gather as windows of 8 then 12: two crossings, two batch
	// observations summing to the row count.
	if got := crossings.Value() - beforeX; got != 2 {
		t.Errorf("crossings delta = %d, want 2", got)
	}
	if got := batchRows.Count() - beforeN; got != 2 {
		t.Errorf("batch observations delta = %d, want 2", got)
	}
	if got := batchRows.Sum() - beforeSum; got != 20 {
		t.Errorf("batch rows sum delta = %d, want 20", got)
	}
	// Both series render on the Prometheus surface (/metrics serves
	// exactly this registry).
	var sb strings.Builder
	if err := obs.Default.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	for _, want := range []string{
		`predator_udf_crossings_total{design="IC++"}`,
		`predator_udf_batch_rows_bucket{design="IC++",le="8"}`,
		`predator_udf_batch_rows_count{design="IC++"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics surface missing %q", want)
		}
	}
}

// TestUDFInvokeHistogramCounts is the acceptance cross-check: the
// per-design invoke histogram in the process registry must record one
// observation per actual UDF invocation the engine made.
func TestUDFInvokeHistogramCounts(t *testing.T) {
	e := openEngine(t)
	seedWide(t, e, 30)
	if err := e.RegisterNative("inc1", []types.Kind{types.KindInt}, types.KindInt,
		func(_ *core.Ctx, args []types.Value) (types.Value, error) {
			return types.NewInt(args[0].Int + 1), nil
		}); err != nil {
		t.Fatal(err)
	}
	h := obs.Default.Histogram("predator_udf_invoke_seconds", "design", "C++")
	before := h.Count()
	res := mustExec(t, e, `SELECT inc1(id) FROM wide WHERE id < 12`)
	if len(res.Rows) != 12 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if got := h.Count() - before; got != 12 {
		t.Errorf("histogram recorded %d invocations, want 12", got)
	}
}
