package engine

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/isolate"
	"predator/internal/types"
)

func TestSetStatementTimeoutParsing(t *testing.T) {
	e := openEngine(t)
	s := e.NewSession()

	res, err := s.Exec(`SET STATEMENT_TIMEOUT = 250`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "250ms") || s.StatementTimeout() != 250*time.Millisecond {
		t.Errorf("INT millis: message %q, timeout %v", res.Message, s.StatementTimeout())
	}

	if _, err := s.Exec(`SET STATEMENT_TIMEOUT = '2s'`); err != nil {
		t.Fatal(err)
	}
	if s.StatementTimeout() != 2*time.Second {
		t.Errorf("duration string: timeout %v", s.StatementTimeout())
	}

	res, err = s.Exec(`SET STATEMENT_TIMEOUT = 0`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "disabled") || s.StatementTimeout() != 0 {
		t.Errorf("disable: message %q, timeout %v", res.Message, s.StatementTimeout())
	}

	for _, q := range []string{
		`SET STATEMENT_TIMEOUT = -5`,
		`SET STATEMENT_TIMEOUT = '-1s'`,
		`SET STATEMENT_TIMEOUT = 'nonsense'`,
		`SET STATEMENT_TIMEOUT = 1.5`,
		`SET NOSUCH_VARIABLE = 1`,
	} {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("%q succeeded, want error", q)
		}
	}
}

func TestStatementTimeoutScopedPerSession(t *testing.T) {
	e := openEngine(t)
	a, b := e.NewSession(), e.NewSession()
	if _, err := a.Exec(`SET STATEMENT_TIMEOUT = 100`); err != nil {
		t.Fatal(err)
	}
	if b.StatementTimeout() != 0 {
		t.Errorf("session b inherited session a's timeout: %v", b.StatementTimeout())
	}
	if a.StatementTimeout() != 100*time.Millisecond {
		t.Errorf("session a timeout = %v", a.StatementTimeout())
	}
}

func TestStatementTimeoutCancelsInProcessScan(t *testing.T) {
	// A slow trusted (in-process) UDF: the deadline cannot kill it
	// mid-call, but the executor loop checks between rows.
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (1), (2), (3), (4), (5), (6), (7), (8), (9), (10)`)
	err := e.RegisterNative("slow", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			time.Sleep(50 * time.Millisecond)
			return args[0], nil
		})
	if err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	if _, err := s.Exec(`SET STATEMENT_TIMEOUT = 120`); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Exec(`SELECT slow(x) FROM n`)
	if !core.IsTimeout(err) {
		t.Fatalf("slow scan returned %v, want timeout fault", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("timeout fired after %v", elapsed)
	}
	// The session keeps working.
	if _, err := s.Exec(`SET STATEMENT_TIMEOUT = 0`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT COUNT(*) FROM n`)
	if err != nil || res.Rows[0][0].Int != 10 {
		t.Errorf("post-timeout query = %v, %v", res, err)
	}
}

func TestStatementTimeoutKillsHungIsolatedUDF(t *testing.T) {
	// The ISSUE acceptance path at the engine layer: an isolated UDF
	// that loops forever is killed by the statement deadline, the query
	// fails with a timeout fault, and the same session's next query —
	// using the same UDF — succeeds with a fresh executor.
	path := filepath.Join(t.TempDir(), "hang.db")
	e, err := Open(path, Options{Supervision: isolate.Supervision{
		RestartBackoff: 5 * time.Millisecond,
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	mustExec(t, e, `INSERT INTO n VALUES (1)`)
	if err := e.RegisterNativeIsolated("iso_hang", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterNativeIsolated("iso_double", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	if _, err := s.Exec(`SET STATEMENT_TIMEOUT = 300`); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.Exec(`SELECT iso_hang(x) FROM n`)
	elapsed := time.Since(start)
	if core.FaultClassOf(err) != core.FaultTimeout {
		t.Fatalf("hung isolated UDF returned %v (class %v), want FaultTimeout", err, core.FaultClassOf(err))
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
	// Same session, next query succeeds (isolated design still works).
	res, err := s.Exec(`SELECT iso_double(x) FROM n`)
	if err != nil || res.Rows[0][0].Int != 2 {
		t.Errorf("post-kill isolated query = %v, %v", res, err)
	}
}

func TestStatementTimeoutFiresBetweenBatches(t *testing.T) {
	// With batching on, the deadline must not wait for the full query:
	// the batch loop shrinks windows as the deadline approaches and the
	// gather-side check fires between batches, so the statement fails
	// with a timeout fault while later batches are never launched.
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE n (x INT)`)
	tbl, _ := e.Catalog().Table("n")
	for i := 0; i < 60; i++ {
		rec, err := types.EncodeRow(nil, tbl.Schema, types.Row{types.NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.Heap().Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.RegisterNativeIsolated("iso_slow", []types.Kind{types.KindInt}, types.KindInt); err != nil {
		t.Fatal(err)
	}
	s := e.NewSession()
	if _, err := s.Exec(`SET STATEMENT_TIMEOUT = 150`); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := s.Exec(`SELECT iso_slow(x) FROM n`)
	elapsed := time.Since(start)
	if core.FaultClassOf(err) != core.FaultTimeout {
		t.Fatalf("batched slow query returned %v (class %v), want FaultTimeout", err, core.FaultClassOf(err))
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire under batching", elapsed)
	}
	// The session and the UDF keep working afterwards.
	if _, err := s.Exec(`SET STATEMENT_TIMEOUT = 0`); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(`SELECT iso_slow(x) FROM n WHERE x < 2`)
	if err != nil || len(res.Rows) != 2 {
		t.Errorf("post-timeout batched query = %v, %v", res, err)
	}
}

func TestEngineDefaultStatementTimeoutOption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "opt.db")
	e, err := Open(path, Options{StatementTimeout: 42 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.NewSession().StatementTimeout(); got != 42*time.Millisecond {
		t.Errorf("session seeded with %v, want 42ms", got)
	}
}
