package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/obs"
	"predator/internal/types"
)

// seedFlightTable creates a table with enough rows that a per-row slow
// UDF keeps the statement alive long enough to be observed and killed.
func seedFlightTable(t *testing.T, e *Engine, rows int) {
	t.Helper()
	mustExec(t, e, `CREATE TABLE flt (x INT)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO flt VALUES `)
	for i := 0; i < rows; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d)", i)
	}
	mustExec(t, e, b.String())
}

// liveQueryID polls the process list for a statement whose text
// contains needle, returning its query ID.
func liveQueryID(t *testing.T, needle string) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, x := range obs.Live.Snapshot() {
			if strings.Contains(x.Query, needle) {
				return x.ID
			}
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("statement %q never appeared in the process list", needle)
	return 0
}

func TestKillCancelsRunningStatement(t *testing.T) {
	e := openEngine(t)
	seedFlightTable(t, e, 400)
	err := e.RegisterNative("flt_slow", []types.Kind{types.KindInt}, types.KindInt,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			time.Sleep(5 * time.Millisecond)
			return args[0], nil
		})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := e.Exec(`SELECT flt_slow(x) FROM flt`)
		done <- err
	}()
	id := liveQueryID(t, "flt_slow")

	// While it runs, SHOW PROCESSLIST must surface it.
	res := mustExec(t, e, `SHOW PROCESSLIST`)
	found := false
	for _, r := range res.Rows {
		if r[0].Int == int64(id) {
			found = true
			if r[3].Str != "execute" {
				t.Errorf("phase = %q, want execute", r[3].Str)
			}
			if !strings.Contains(r[9].Str, "flt_slow") {
				t.Errorf("query column = %q", r[9].Str)
			}
		}
	}
	if !found {
		t.Fatalf("query %d missing from SHOW PROCESSLIST", id)
	}

	kres := mustExec(t, e, fmt.Sprintf("KILL %d", id))
	if !strings.Contains(kres.Message, fmt.Sprintf("query %d", id)) {
		t.Errorf("KILL message = %q", kres.Message)
	}

	qerr := <-done
	if core.FaultClassOf(qerr) != core.FaultCanceled {
		t.Fatalf("killed statement returned %v, want canceled fault", qerr)
	}
	if !strings.Contains(qerr.Error(), "KILL") {
		t.Errorf("error %q does not mention KILL", qerr)
	}
	if core.Retryable(qerr) {
		t.Error("KILL cancellation must not be retryable")
	}

	// The registry entry is gone: a repeat KILL is a clean error, and no
	// later statement inherits the flag.
	if _, err := e.Exec(fmt.Sprintf("KILL %d", id)); err == nil ||
		!strings.Contains(err.Error(), "not running") {
		t.Errorf("re-KILL after completion: %v, want not-running error", err)
	}
	if res, err := e.Exec(`SELECT flt_slow(x) FROM flt WHERE x < 3`); err != nil || len(res.Rows) != 3 {
		t.Fatalf("statement after KILL: %v", err)
	}

	// The killed execution is in the query store with an error status.
	killedRecorded := false
	for _, qr := range obs.History.Snapshot() {
		if qr.ID == id {
			killedRecorded = true
			if qr.Status != "error" {
				t.Errorf("killed statement history status = %q", qr.Status)
			}
		}
	}
	if !killedRecorded {
		t.Error("killed statement missing from SHOW HISTORY's store")
	}
}

func TestKillUnknownQueryErrors(t *testing.T) {
	e := openEngine(t)
	for _, q := range []string{"KILL 999999999", "KILL 0"} {
		if _, err := e.Exec(q); err == nil || !strings.Contains(err.Error(), "not running") {
			t.Errorf("%s: %v, want not-running error", q, err)
		}
	}
	if _, err := e.Exec("KILL banana"); err == nil {
		t.Error("KILL with a non-integer argument parsed")
	}
}

func TestShowHistoryRecordsExecutions(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	mustExec(t, e, `SELECT sym FROM stocks WHERE price > 8.0`)

	res := mustExec(t, e, `SHOW HISTORY`)
	wantCols := []string{
		"query_id", "fingerprint", "tenant", "duration_seconds", "rows",
		"crossings", "child_cpu_seconds", "wal_bytes", "plan_seconds",
		"exec_seconds", "crossing_wait_seconds", "wal_fsync_seconds",
		"admission_wait_seconds", "status",
	}
	if res.Schema.Arity() != len(wantCols) {
		t.Fatalf("SHOW HISTORY arity = %d, want %d", res.Schema.Arity(), len(wantCols))
	}
	for i, name := range wantCols {
		if res.Schema.Columns[i].Name != name {
			t.Errorf("column %d = %q, want %q", i, res.Schema.Columns[i].Name, name)
		}
	}
	// The SELECT (normalized) is in the store, newest records first, with
	// plausible measurements.
	var hit types.Row
	for _, r := range res.Rows {
		if strings.Contains(r[1].Str, "stocks") && strings.Contains(r[1].Str, "price") {
			hit = r
			break
		}
	}
	if hit == nil {
		t.Fatalf("SELECT not found in SHOW HISTORY (%d rows)", len(res.Rows))
	}
	if hit[4].Int != 3 {
		t.Errorf("history rows = %d, want 3", hit[4].Int)
	}
	if hit[13].Str != "ok" {
		t.Errorf("history status = %q", hit[13].Str)
	}
	if hit[3].Float <= 0 {
		t.Errorf("duration_seconds = %v", hit[3].Float)
	}
	if hit[9].Float <= 0 {
		t.Errorf("exec_seconds = %v, want > 0", hit[9].Float)
	}
	// INSERTs force the WAL: some record carries wal_bytes.
	walSeen := false
	for _, r := range res.Rows {
		if r[7].Int > 0 {
			walSeen = true
		}
	}
	if !walSeen {
		t.Error("no history record shows WAL bytes after INSERTs")
	}
}

func TestShowTenantsSurfacesLedgers(t *testing.T) {
	e := openEngine(t)
	seedStocks(t, e)
	s := e.NewSession()
	s.BindTenant("flt_tenant")
	if _, err := s.Exec(`SELECT * FROM stocks`); err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, e, `SHOW TENANTS`)
	wantCols := []string{"tenant", "sessions", "mem_bytes", "cpu_window_seconds", "cpu_total_seconds", "child_cpu_seconds"}
	for i, name := range wantCols {
		if res.Schema.Columns[i].Name != name {
			t.Errorf("column %d = %q, want %q", i, res.Schema.Columns[i].Name, name)
		}
	}
	found := false
	for _, r := range res.Rows {
		if r[0].Str == "flt_tenant" {
			found = true
			// Session slots are counted by the server's admission path,
			// not by engine-level binding: just require a sane value.
			if r[1].Int < 0 {
				t.Errorf("sessions = %d", r[1].Int)
			}
			if r[5].Float < 0 {
				t.Errorf("child_cpu_seconds = %v", r[5].Float)
			}
		}
	}
	if !found {
		t.Fatalf("tenant flt_tenant missing from SHOW TENANTS: %v", res.Rows)
	}
}

// TestAdmissionWaitFlowsIntoHistory pins the server→session→query-store
// plumbing: a noted admission wait is attributed to exactly the next
// statement and then consumed.
func TestAdmissionWaitFlowsIntoHistory(t *testing.T) {
	e := openEngine(t)
	mustExec(t, e, `CREATE TABLE aw (x INT)`)
	mustExec(t, e, `INSERT INTO aw VALUES (1)`)
	s := e.NewSession()
	s.NoteAdmissionWait(7 * time.Millisecond)
	if _, err := s.Exec(`SELECT x FROM aw`); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec(`SELECT x FROM aw WHERE x = 1`); err != nil {
		t.Fatal(err)
	}
	var got []time.Duration
	for _, qr := range obs.History.Snapshot() {
		if qr.SessionID == s.ID() && strings.HasPrefix(qr.Query, "SELECT x FROM aw") {
			got = append(got, qr.Wait.AdmissionWait)
		}
	}
	if len(got) != 2 {
		t.Fatalf("found %d session statements in history, want 2", len(got))
	}
	// Snapshot is newest-first: got[1] is the first statement.
	if got[1] != 7*time.Millisecond {
		t.Errorf("first statement admission wait = %v, want 7ms", got[1])
	}
	if got[0] != 0 {
		t.Errorf("second statement admission wait = %v, want 0 (consumed)", got[0])
	}
}

// TestShowStatsSurfacesOverflowCounter: the statement-store overflow
// counter (500-shape guard on SHOW STATEMENTS) is visible to operators
// through SHOW STATS.
func TestShowStatsSurfacesOverflowCounter(t *testing.T) {
	e := openEngine(t)
	res := mustExec(t, e, `SHOW STATS`)
	for _, r := range res.Rows {
		if r[0].Str == "predator_statements_overflow_total" {
			return
		}
	}
	t.Fatal("predator_statements_overflow_total missing from SHOW STATS")
}

// TestShowProcesslistEmptyBetweenStatements: the registry drains — the
// only live entry while SHOW PROCESSLIST runs is itself.
func TestShowProcesslistSelfOnly(t *testing.T) {
	e := openEngine(t)
	res := mustExec(t, e, `SHOW PROCESSLIST`)
	if len(res.Rows) != 1 {
		t.Fatalf("process list has %d rows, want 1 (itself)", len(res.Rows))
	}
	if !strings.Contains(res.Rows[0][9].Str, "PROCESSLIST") {
		t.Errorf("self row query = %q", res.Rows[0][9].Str)
	}
}
