package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Value is a single typed datum. The zero Value is NULL (KindInvalid).
//
// Value is a small tagged union rather than an interface so that rows of
// scalars do not allocate; the Bytes/Str fields alias the underlying
// storage and must be copied by callers that retain them across buffer
// pool unpins.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Bool  bool
	Str   string
	Bytes []byte
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an INT value.
func NewInt(v int64) Value { return Value{Kind: KindInt, Int: v} }

// NewFloat returns a FLOAT value.
func NewFloat(v float64) Value { return Value{Kind: KindFloat, Float: v} }

// NewBool returns a BOOL value.
func NewBool(v bool) Value { return Value{Kind: KindBool, Bool: v} }

// NewString returns a STRING value.
func NewString(v string) Value { return Value{Kind: KindString, Str: v} }

// NewBytes returns a BYTES value. The slice is aliased, not copied.
func NewBytes(v []byte) Value { return Value{Kind: KindBytes, Bytes: v} }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.Kind == KindInvalid }

// Clone returns a deep copy of the value (its byte array, if any, is
// copied so the result does not alias page memory).
func (v Value) Clone() Value {
	if v.Kind == KindBytes && v.Bytes != nil {
		cp := make([]byte, len(v.Bytes))
		copy(cp, v.Bytes)
		v.Bytes = cp
	}
	return v
}

// AsFloat converts INT or FLOAT to float64 for mixed arithmetic.
func (v Value) AsFloat() float64 {
	if v.Kind == KindInt {
		return float64(v.Int)
	}
	return v.Float
}

// String renders the value in SQL literal style.
func (v Value) String() string {
	switch v.Kind {
	case KindInvalid:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case KindBool:
		if v.Bool {
			return "TRUE"
		}
		return "FALSE"
	case KindString:
		return "'" + strings.ReplaceAll(v.Str, "'", "''") + "'"
	case KindBytes:
		if len(v.Bytes) <= 16 {
			return fmt.Sprintf("X'%x'", v.Bytes)
		}
		return fmt.Sprintf("X'%x...'(%d bytes)", v.Bytes[:16], len(v.Bytes))
	default:
		return fmt.Sprintf("?kind=%d", v.Kind)
	}
}

// Compare orders two values of the same kind. It returns a negative
// number, zero, or a positive number as v sorts before, equal to, or
// after other. NULL sorts before every non-NULL value. Comparing values
// of different non-NULL kinds returns an error, except INT/FLOAT which
// compare numerically.
func (v Value) Compare(other Value) (int, error) {
	if v.IsNull() || other.IsNull() {
		switch {
		case v.IsNull() && other.IsNull():
			return 0, nil
		case v.IsNull():
			return -1, nil
		default:
			return 1, nil
		}
	}
	if v.Kind != other.Kind {
		if (v.Kind == KindInt || v.Kind == KindFloat) &&
			(other.Kind == KindInt || other.Kind == KindFloat) {
			return cmpFloat(v.AsFloat(), other.AsFloat()), nil
		}
		return 0, fmt.Errorf("types: cannot compare %s with %s", v.Kind, other.Kind)
	}
	switch v.Kind {
	case KindInt:
		switch {
		case v.Int < other.Int:
			return -1, nil
		case v.Int > other.Int:
			return 1, nil
		}
		return 0, nil
	case KindFloat:
		return cmpFloat(v.Float, other.Float), nil
	case KindBool:
		switch {
		case !v.Bool && other.Bool:
			return -1, nil
		case v.Bool && !other.Bool:
			return 1, nil
		}
		return 0, nil
	case KindString:
		return strings.Compare(v.Str, other.Str), nil
	case KindBytes:
		return bytesCompare(v.Bytes, other.Bytes), nil
	default:
		return 0, fmt.Errorf("types: cannot compare values of kind %s", v.Kind)
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	case math.IsNaN(a) && !math.IsNaN(b):
		return -1
	case !math.IsNaN(a) && math.IsNaN(b):
		return 1
	}
	return 0
}

func bytesCompare(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// Row is an ordered tuple of values matching some schema.
type Row []Value

// Clone deep-copies a row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	for i, v := range r {
		out[i] = v.Clone()
	}
	return out
}

// String renders the row as "(v1, v2, ...)".
func (r Row) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range r {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}
