package types

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Record encoding
//
// Rows are serialized to a compact, self-delimiting binary format used
// both on disk (heap file records) and on the wire (client/server
// protocol, UDF argument streams). The format is:
//
//	for each column:
//	  1 byte  kind tag (0 = NULL)
//	  payload:
//	    INT    8 bytes little-endian two's complement
//	    FLOAT  8 bytes little-endian IEEE-754 bits
//	    BOOL   1 byte (0/1)
//	    STRING uvarint length + bytes
//	    BYTES  uvarint length + bytes
//
// The same streamed encoding is what UDFs see at client and server
// (paper §6.4), which is what makes Jaguar UDF code location-portable.

// EncodeRow appends the serialized form of row to dst and returns the
// extended slice. The row must conform to the schema (same arity; each
// value NULL or of the column's kind).
func EncodeRow(dst []byte, schema *Schema, row Row) ([]byte, error) {
	if len(row) != schema.Arity() {
		return dst, fmt.Errorf("types: row arity %d does not match schema arity %d", len(row), schema.Arity())
	}
	for i, v := range row {
		if !v.IsNull() && v.Kind != schema.Columns[i].Kind {
			return dst, fmt.Errorf("types: column %q expects %s, row has %s",
				schema.Columns[i].Name, schema.Columns[i].Kind, v.Kind)
		}
		dst = EncodeValue(dst, v)
	}
	return dst, nil
}

// EncodeValue appends the serialized form of a single value to dst.
func EncodeValue(dst []byte, v Value) []byte {
	dst = append(dst, byte(v.Kind))
	switch v.Kind {
	case KindInvalid:
		// NULL: tag only.
	case KindInt:
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.Int))
	case KindFloat:
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.Float))
	case KindBool:
		if v.Bool {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case KindString:
		dst = binary.AppendUvarint(dst, uint64(len(v.Str)))
		dst = append(dst, v.Str...)
	case KindBytes:
		dst = binary.AppendUvarint(dst, uint64(len(v.Bytes)))
		dst = append(dst, v.Bytes...)
	}
	return dst
}

// DecodeValue decodes one value from buf, returning the value and the
// number of bytes consumed. The returned BYTES value aliases buf.
func DecodeValue(buf []byte) (Value, int, error) {
	if len(buf) == 0 {
		return Value{}, 0, fmt.Errorf("types: truncated value (no tag)")
	}
	kind := Kind(buf[0])
	n := 1
	switch kind {
	case KindInvalid:
		return Null(), n, nil
	case KindInt:
		if len(buf) < n+8 {
			return Value{}, 0, fmt.Errorf("types: truncated INT value")
		}
		v := int64(binary.LittleEndian.Uint64(buf[n:]))
		return NewInt(v), n + 8, nil
	case KindFloat:
		if len(buf) < n+8 {
			return Value{}, 0, fmt.Errorf("types: truncated FLOAT value")
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[n:]))
		return NewFloat(v), n + 8, nil
	case KindBool:
		if len(buf) < n+1 {
			return Value{}, 0, fmt.Errorf("types: truncated BOOL value")
		}
		return NewBool(buf[n] != 0), n + 1, nil
	case KindString:
		length, sz := binary.Uvarint(buf[n:])
		if sz <= 0 || uint64(len(buf)-n-sz) < length {
			return Value{}, 0, fmt.Errorf("types: truncated STRING value")
		}
		n += sz
		return NewString(string(buf[n : n+int(length)])), n + int(length), nil
	case KindBytes:
		length, sz := binary.Uvarint(buf[n:])
		if sz <= 0 || uint64(len(buf)-n-sz) < length {
			return Value{}, 0, fmt.Errorf("types: truncated BYTES value")
		}
		n += sz
		return NewBytes(buf[n : n+int(length)]), n + int(length), nil
	default:
		return Value{}, 0, fmt.Errorf("types: unknown value tag %d", buf[0])
	}
}

// DecodeRow decodes a row of schema.Arity() values from buf. The
// returned row's BYTES values alias buf; use Row.Clone to retain them.
func DecodeRow(buf []byte, schema *Schema) (Row, error) {
	row := make(Row, schema.Arity())
	off := 0
	for i := range row {
		v, n, err := DecodeValue(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
		if !v.IsNull() && v.Kind != schema.Columns[i].Kind {
			return nil, fmt.Errorf("types: column %q expects %s, record has %s",
				schema.Columns[i].Name, schema.Columns[i].Kind, v.Kind)
		}
		row[i] = v
		off += n
	}
	if off != len(buf) {
		return nil, fmt.Errorf("types: %d trailing bytes after row", len(buf)-off)
	}
	return row, nil
}

// EncodedSize returns the number of bytes EncodeValue would emit for v.
func EncodedSize(v Value) int {
	switch v.Kind {
	case KindInvalid:
		return 1
	case KindInt, KindFloat:
		return 9
	case KindBool:
		return 2
	case KindString:
		return 1 + uvarintLen(uint64(len(v.Str))) + len(v.Str)
	case KindBytes:
		return 1 + uvarintLen(uint64(len(v.Bytes))) + len(v.Bytes)
	default:
		return 1
	}
}

func uvarintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}
