package types

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt:    "INT",
		KindFloat:  "FLOAT",
		KindBool:   "BOOL",
		KindString: "STRING",
		KindBytes:  "BYTES",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(99).String(); !strings.Contains(got, "INVALID") {
		t.Errorf("unknown kind should stringify as INVALID, got %q", got)
	}
}

func TestKindFromName(t *testing.T) {
	cases := map[string]Kind{
		"int": KindInt, "INTEGER": KindInt, "BigInt": KindInt,
		"float": KindFloat, "DOUBLE": KindFloat, "real": KindFloat,
		"bool": KindBool, "BOOLEAN": KindBool,
		"string": KindString, "TEXT": KindString, "varchar": KindString,
		"bytes": KindBytes, "BYTEARRAY": KindBytes, "blob": KindBytes,
	}
	for name, want := range cases {
		got, err := KindFromName(name)
		if err != nil {
			t.Fatalf("KindFromName(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("KindFromName(%q) = %s, want %s", name, got, want)
		}
	}
	if _, err := KindFromName("POINT"); err == nil {
		t.Error("KindFromName(POINT) should fail")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "History", Kind: KindBytes},
	)
	if got := s.ColumnIndex("history"); got != 1 {
		t.Errorf("ColumnIndex(history) = %d, want 1 (case-insensitive)", got)
	}
	if got := s.ColumnIndex("missing"); got != -1 {
		t.Errorf("ColumnIndex(missing) = %d, want -1", got)
	}
	if s.Arity() != 2 {
		t.Errorf("Arity = %d, want 2", s.Arity())
	}
}

func TestSchemaProjectConcat(t *testing.T) {
	a := NewSchema(Column{Name: "a", Kind: KindInt}, Column{Name: "b", Kind: KindString})
	b := NewSchema(Column{Name: "c", Kind: KindFloat})
	cat := a.Concat(b)
	if cat.Arity() != 3 || cat.Columns[2].Name != "c" {
		t.Fatalf("Concat wrong: %v", cat)
	}
	proj := cat.Project([]int{2, 0})
	if proj.Arity() != 2 || proj.Columns[0].Name != "c" || proj.Columns[1].Name != "a" {
		t.Fatalf("Project wrong: %v", proj)
	}
	if !a.Equal(NewSchema(Column{Name: "A", Kind: KindInt}, Column{Name: "B", Kind: KindString})) {
		t.Error("Equal should be case-insensitive on names")
	}
	if a.Equal(b) {
		t.Error("different schemas reported equal")
	}
}

func TestValueCompareSameKind(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewFloat(1.5), NewFloat(2.5), -1},
		{NewBool(false), NewBool(true), -1},
		{NewString("abc"), NewString("abd"), -1},
		{NewBytes([]byte{1, 2}), NewBytes([]byte{1, 2, 3}), -1},
		{NewBytes([]byte{2}), NewBytes([]byte{1, 9}), 1},
		{NewInt(1), NewFloat(1.0), 0},  // numeric cross-kind
		{NewInt(1), NewFloat(1.5), -1}, // numeric cross-kind
		{Null(), NewInt(0), -1},
		{NewInt(0), Null(), 1},
		{Null(), Null(), 0},
	}
	for _, c := range cases {
		got, err := c.a.Compare(c.b)
		if err != nil {
			t.Fatalf("Compare(%s,%s): %v", c.a, c.b, err)
		}
		if sign(got) != c.want {
			t.Errorf("Compare(%s,%s) = %d, want sign %d", c.a, c.b, got, c.want)
		}
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestValueCompareKindMismatch(t *testing.T) {
	if _, err := NewInt(1).Compare(NewString("1")); err == nil {
		t.Error("comparing INT with STRING should fail")
	}
	if _, err := NewBytes(nil).Compare(NewBool(true)); err == nil {
		t.Error("comparing BYTES with BOOL should fail")
	}
}

func TestValueCompareNaN(t *testing.T) {
	nan := NewFloat(math.NaN())
	if got, _ := nan.Compare(NewFloat(1)); got != -1 {
		t.Errorf("NaN should sort before numbers, got %d", got)
	}
	if got, _ := NewFloat(1).Compare(nan); got != 1 {
		t.Errorf("numbers should sort after NaN, got %d", got)
	}
	if got, _ := nan.Compare(nan); got != 0 {
		t.Errorf("NaN vs NaN should compare 0, got %d", got)
	}
}

func TestValueClone(t *testing.T) {
	orig := []byte{1, 2, 3}
	v := NewBytes(orig)
	c := v.Clone()
	orig[0] = 99
	if c.Bytes[0] != 1 {
		t.Error("Clone should deep-copy byte arrays")
	}
	r := Row{NewBytes([]byte{5})}
	rc := r.Clone()
	r[0].Bytes[0] = 6
	if rc[0].Bytes[0] != 5 {
		t.Error("Row.Clone should deep-copy byte arrays")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null(), "NULL"},
		{NewInt(-42), "-42"},
		{NewBool(true), "TRUE"},
		{NewBool(false), "FALSE"},
		{NewString("o'hare"), "'o''hare'"},
		{NewBytes([]byte{0xab}), "X'ab'"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind, got, c.want)
		}
	}
	long := NewBytes(make([]byte, 100))
	if s := long.String(); !strings.Contains(s, "100 bytes") {
		t.Errorf("long bytes should be abbreviated, got %q", s)
	}
}

func TestEncodeDecodeRowRoundTrip(t *testing.T) {
	schema := NewSchema(
		Column{Name: "id", Kind: KindInt},
		Column{Name: "price", Kind: KindFloat},
		Column{Name: "active", Kind: KindBool},
		Column{Name: "name", Kind: KindString},
		Column{Name: "payload", Kind: KindBytes},
	)
	rows := []Row{
		{NewInt(7), NewFloat(3.14), NewBool(true), NewString("ibm"), NewBytes([]byte{1, 2, 3})},
		{NewInt(-1), NewFloat(math.Inf(1)), NewBool(false), NewString(""), NewBytes(nil)},
		{Null(), Null(), Null(), Null(), Null()},
	}
	for _, row := range rows {
		buf, err := EncodeRow(nil, schema, row)
		if err != nil {
			t.Fatalf("EncodeRow(%s): %v", row, err)
		}
		got, err := DecodeRow(buf, schema)
		if err != nil {
			t.Fatalf("DecodeRow(%s): %v", row, err)
		}
		for i := range row {
			c, err := row[i].Compare(got[i])
			if err != nil || c != 0 {
				t.Errorf("round trip col %d: got %s, want %s", i, got[i], row[i])
			}
		}
	}
}

func TestEncodeRowArityMismatch(t *testing.T) {
	schema := NewSchema(Column{Name: "a", Kind: KindInt})
	if _, err := EncodeRow(nil, schema, Row{NewInt(1), NewInt(2)}); err == nil {
		t.Error("arity mismatch should fail")
	}
	if _, err := EncodeRow(nil, schema, Row{NewString("x")}); err == nil {
		t.Error("kind mismatch should fail")
	}
}

func TestDecodeValueTruncated(t *testing.T) {
	full := EncodeValue(nil, NewString("hello world"))
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeValue(full[:cut]); err == nil && cut < len(full) {
			// Cuts inside the payload must error; a cut at a value
			// boundary cannot occur for a single value.
			t.Errorf("DecodeValue of %d/%d bytes should fail", cut, len(full))
		}
	}
	if _, _, err := DecodeValue([]byte{0xff}); err == nil {
		t.Error("unknown tag should fail")
	}
}

func TestDecodeRowTrailingBytes(t *testing.T) {
	schema := NewSchema(Column{Name: "a", Kind: KindInt})
	buf, _ := EncodeRow(nil, schema, Row{NewInt(1)})
	buf = append(buf, 0x00)
	if _, err := DecodeRow(buf, schema); err == nil {
		t.Error("trailing bytes should fail")
	}
}

func TestEncodedSizeMatches(t *testing.T) {
	vals := []Value{
		Null(), NewInt(5), NewFloat(2.5), NewBool(true),
		NewString("abcdef"), NewBytes(make([]byte, 300)),
	}
	for _, v := range vals {
		buf := EncodeValue(nil, v)
		if got := EncodedSize(v); got != len(buf) {
			t.Errorf("EncodedSize(%s) = %d, actual %d", v.Kind, got, len(buf))
		}
	}
}

// Property: every (int, float, bool, string, bytes) row round-trips
// through encode/decode unchanged.
func TestQuickRowRoundTrip(t *testing.T) {
	schema := NewSchema(
		Column{Name: "i", Kind: KindInt},
		Column{Name: "f", Kind: KindFloat},
		Column{Name: "b", Kind: KindBool},
		Column{Name: "s", Kind: KindString},
		Column{Name: "y", Kind: KindBytes},
	)
	prop := func(i int64, f float64, b bool, s string, y []byte) bool {
		row := Row{NewInt(i), NewFloat(f), NewBool(b), NewString(s), NewBytes(y)}
		buf, err := EncodeRow(nil, schema, row)
		if err != nil {
			return false
		}
		got, err := DecodeRow(buf, schema)
		if err != nil {
			return false
		}
		for k := range row {
			c, err := row[k].Compare(got[k])
			if err != nil || c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric over ints and byte slices.
func TestQuickCompareAntisymmetric(t *testing.T) {
	prop := func(a, b []byte) bool {
		x, err1 := NewBytes(a).Compare(NewBytes(b))
		y, err2 := NewBytes(b).Compare(NewBytes(a))
		return err1 == nil && err2 == nil && sign(x) == -sign(y)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
