// Package types defines the value system of the PREDATOR-Go engine:
// the abstract data types (ADTs) supported in relations, typed values,
// schemas, and the on-disk record encoding.
//
// The paper's experiments revolve around the ByteArray ADT (modeled here
// as Kind KindBytes); the remaining scalar types make the engine usable
// as a general object-relational system.
package types

import (
	"fmt"
	"strings"
)

// Kind identifies an abstract data type supported by the engine.
type Kind uint8

// The supported ADT kinds.
const (
	KindInvalid Kind = iota
	KindInt          // 64-bit signed integer
	KindFloat        // 64-bit IEEE-754 float
	KindBool         // boolean
	KindString       // variable-length UTF-8 string
	KindBytes        // variable-length byte array (the paper's ByteArray ADT)
)

// String returns the SQL-facing name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindBool:
		return "BOOL"
	case KindString:
		return "STRING"
	case KindBytes:
		return "BYTES"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(k))
	}
}

// KindFromName resolves a SQL type name (case-insensitive) to a Kind.
// It accepts the common aliases used in the examples and tests.
func KindFromName(name string) (Kind, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "BIGINT":
		return KindInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return KindFloat, nil
	case "BOOL", "BOOLEAN":
		return KindBool, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return KindString, nil
	case "BYTES", "BYTEARRAY", "BLOB", "BINARY":
		return KindBytes, nil
	default:
		return KindInvalid, fmt.Errorf("types: unknown type name %q", name)
	}
}

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns describing a relation or a
// derived row shape.
type Schema struct {
	Columns []Column
}

// NewSchema builds a schema from the given columns.
func NewSchema(cols ...Column) *Schema {
	return &Schema{Columns: cols}
}

// Arity returns the number of columns.
func (s *Schema) Arity() int { return len(s.Columns) }

// ColumnIndex returns the index of the named column (case-insensitive),
// or -1 if the schema has no such column.
func (s *Schema) ColumnIndex(name string) int {
	for i, c := range s.Columns {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Project returns a new schema containing the columns at the given
// indexes, in order.
func (s *Schema) Project(idxs []int) *Schema {
	out := &Schema{Columns: make([]Column, len(idxs))}
	for i, idx := range idxs {
		out.Columns[i] = s.Columns[idx]
	}
	return out
}

// Concat returns a schema holding this schema's columns followed by
// other's columns. Used for join outputs.
func (s *Schema) Concat(other *Schema) *Schema {
	out := &Schema{Columns: make([]Column, 0, len(s.Columns)+len(other.Columns))}
	out.Columns = append(out.Columns, s.Columns...)
	out.Columns = append(out.Columns, other.Columns...)
	return out
}

// String renders the schema as "(name TYPE, ...)".
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", c.Name, c.Kind)
	}
	b.WriteByte(')')
	return b.String()
}

// Equal reports whether two schemas have identical column names and kinds.
func (s *Schema) Equal(other *Schema) bool {
	if len(s.Columns) != len(other.Columns) {
		return false
	}
	for i := range s.Columns {
		if !strings.EqualFold(s.Columns[i].Name, other.Columns[i].Name) ||
			s.Columns[i].Kind != other.Columns[i].Kind {
			return false
		}
	}
	return true
}
