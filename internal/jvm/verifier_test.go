package jvm

import (
	"strings"
	"testing"
	"testing/quick"
)

// mustFailVerify asserts the class is rejected with a message containing
// wantSubstr.
func mustFailVerify(t *testing.T, c *Class, wantSubstr string) {
	t.Helper()
	err := c.Verify()
	if err == nil {
		t.Fatalf("class %q verified, want failure containing %q", c.Name, wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Errorf("error %q does not contain %q", err, wantSubstr)
	}
}

func m1(name string, ret VType, maxStack int, code []byte, locals ...VType) Method {
	return Method{Name: name, Return: ret, Locals: locals, MaxStack: maxStack, Code: code}
}

func TestVerifyRejectsInvalidOpcode(t *testing.T) {
	c := buildClass("V", nil, m1("m", TInt, 1, []byte{0xEE}))
	mustFailVerify(t, c, "invalid opcode")
}

func TestVerifyRejectsTruncatedInstruction(t *testing.T) {
	// ldc with only one operand byte.
	c := buildClass("V", nil, m1("m", TInt, 1, []byte{byte(OpLdc), 0x00}))
	mustFailVerify(t, c, "truncated")
}

func TestVerifyRejectsStackUnderflow(t *testing.T) {
	code := NewAssembler().Emit(OpIAdd).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 2, code)), "underflow")
}

func TestVerifyRejectsStackOverflow(t *testing.T) {
	code := NewAssembler().Emit(OpIConst0).Emit(OpIConst0).Emit(OpIConst0).Emit(OpPop).Emit(OpPop).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 2, code)), "grows past declared max")
}

func TestVerifyRejectsTypeConfusion(t *testing.T) {
	// int + float must not verify: there is no way to treat a float's
	// bits as an int (the classic sandbox escape in unverified VMs).
	c := buildClass("V", []Const{{Kind: ConstFloat, Float: 1.5}}, m1("m", TInt, 2,
		NewAssembler().Emit(OpIConst0).EmitU16(OpLdc, 0).Emit(OpIAdd).Emit(OpRet).MustBytes()))
	mustFailVerify(t, c, "expected int")
}

func TestVerifyRejectsBytesAsInt(t *testing.T) {
	c := buildClass("V", nil, Method{
		Name: "m", Params: []VType{TBytes}, Locals: []VType{TBytes},
		Return: TInt, MaxStack: 2,
		Code: NewAssembler().EmitU16(OpLoad, 0).Emit(OpIConst1).Emit(OpIAdd).Emit(OpRet).MustBytes(),
	})
	mustFailVerify(t, c, "expected int")
}

func TestVerifyRejectsBadLocalIndex(t *testing.T) {
	code := NewAssembler().EmitU16(OpLoad, 5).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 1, code, TInt)), "out of range")
	code = NewAssembler().Emit(OpIConst0).EmitU16(OpStore, 9).Emit(OpIConst0).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 1, code, TInt)), "out of range")
}

func TestVerifyRejectsLocalTypeMismatch(t *testing.T) {
	// Storing an int into a bytes-typed local.
	code := NewAssembler().Emit(OpIConst0).EmitU16(OpStore, 0).Emit(OpIConst0).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 1, code, TBytes)), "expected bytes")
}

func TestVerifyRejectsBadConstIndex(t *testing.T) {
	code := NewAssembler().EmitU16(OpLdc, 7).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 1, code)), "constant index")
}

func TestVerifyRejectsJumpOutOfRange(t *testing.T) {
	a := NewAssembler()
	a.code = append(a.code, byte(OpJmp), 0xF0, 0xFF, 0xFF, 0xFF) // jmp far negative
	a.code = append(a.code, byte(OpRet))
	c := buildClass("V", nil, m1("m", TInt, 1, a.code))
	mustFailVerify(t, c, "target")
}

func TestVerifyRejectsJumpIntoInstruction(t *testing.T) {
	// jmp to the middle of the ldc instruction (offset 1 byte after
	// the 5-byte jmp: into ldc's operand).
	code := []byte{
		byte(OpJmp), 1, 0, 0, 0, // jumps to pc 6 = middle of ldc at 5
		byte(OpLdc), 0, 0,
		byte(OpRet),
	}
	c := buildClass("V", []Const{{Kind: ConstInt, Int: 1}}, m1("m", TInt, 1, code))
	mustFailVerify(t, c, "middle of an instruction")
}

func TestVerifyRejectsFallOffEnd(t *testing.T) {
	code := NewAssembler().Emit(OpIConst0).Emit(OpPop).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 1, code)), "falls off the end")
}

func TestVerifyRejectsWrongReturnType(t *testing.T) {
	code := NewAssembler().EmitU16(OpLdc, 0).Emit(OpRet).MustBytes()
	c := buildClass("V", []Const{{Kind: ConstFloat, Float: 1}}, m1("m", TInt, 1, code))
	mustFailVerify(t, c, "expected int")
}

func TestVerifyRejectsRetWithExtraStack(t *testing.T) {
	code := NewAssembler().Emit(OpIConst0).Emit(OpIConst1).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 2, code)), "left on stack")
}

func TestVerifyRejectsInconsistentJoin(t *testing.T) {
	// Two paths reach the same point with different stack depths.
	code := NewAssembler().
		EmitU16(OpLoad, 0).
		Jump(OpJmpZ, "join").
		Emit(OpIConst0). // this path has one extra value
		Label("join").
		Emit(OpIConst1).Emit(OpRet).
		MustBytes()
	c := buildClass("V", nil, Method{
		Name: "m", Params: []VType{TInt}, Locals: []VType{TInt},
		Return: TInt, MaxStack: 3, Code: code,
	})
	mustFailVerify(t, c, "join")
}

func TestVerifyRejectsInconsistentJoinTypes(t *testing.T) {
	code := NewAssembler().
		EmitU16(OpLoad, 0).
		Jump(OpJmpZ, "other").
		Emit(OpIConst0).
		Jump(OpJmp, "join").
		Label("other").
		EmitU16(OpLdc, 0).
		Jump(OpJmp, "join").
		Label("join").
		Emit(OpPop).Emit(OpIConst1).Emit(OpRet).
		MustBytes()
	c := buildClass("V", []Const{{Kind: ConstFloat, Float: 0}}, Method{
		Name: "m", Params: []VType{TInt}, Locals: []VType{TInt},
		Return: TInt, MaxStack: 3, Code: code,
	})
	mustFailVerify(t, c, "inconsistent stack type")
}

func TestVerifyRejectsBadCallIndex(t *testing.T) {
	code := NewAssembler().EmitU16(OpCall, 9).Emit(OpRet).MustBytes()
	mustFailVerify(t, buildClass("V", nil, m1("m", TInt, 1, code)), "method index")
}

func TestVerifyRejectsCallArgMismatch(t *testing.T) {
	// add wants (int, int); pass (int, float).
	code := NewAssembler().Emit(OpIConst0).EmitU16(OpLdc, 0).EmitU16(OpCall, 0).Emit(OpRet).MustBytes()
	c := buildClass("V", []Const{{Kind: ConstFloat, Float: 1}},
		addMethod(),
		m1("m", TInt, 2, code),
	)
	mustFailVerify(t, c, "expected int on stack, found float")
}

func TestVerifyRejectsNativeNameNotString(t *testing.T) {
	code := NewAssembler().EmitNative(0, 0).Emit(OpRet).MustBytes()
	c := buildClass("V", []Const{{Kind: ConstInt, Int: 3}}, m1("m", TInt, 1, code))
	mustFailVerify(t, c, "not a string")
}

func TestVerifyRejectsMetaErrors(t *testing.T) {
	ret := NewAssembler().Emit(OpIConst0).Emit(OpRet).MustBytes()
	cases := []struct {
		name string
		c    *Class
		want string
	}{
		{"no name", &Class{Methods: []Method{m1("m", TInt, 1, ret)}}, "no name"},
		{"no methods", &Class{Name: "X"}, "no methods"},
		{"empty code", buildClass("X", nil, m1("m", TInt, 1, nil)), "empty code"},
		{"huge maxstack", buildClass("X", nil, m1("m", TInt, MaxStackLimit+1, ret)), "out of range"},
		{"param local mismatch", buildClass("X", nil, Method{
			Name: "m", Params: []VType{TInt}, Locals: []VType{TFloat},
			Return: TInt, MaxStack: 1, Code: ret,
		}), "does not match param"},
		{"more params than locals", buildClass("X", nil, Method{
			Name: "m", Params: []VType{TInt, TInt}, Locals: []VType{TInt},
			Return: TInt, MaxStack: 1, Code: ret,
		}), "params but only"},
		{"bad local type", buildClass("X", nil, Method{
			Name: "m", Locals: []VType{VType(9)},
			Return: TInt, MaxStack: 1, Code: ret,
		}), "invalid type"},
		{"bad return type", buildClass("X", nil, Method{
			Name: "m", Return: VType(9), MaxStack: 1, Code: ret,
		}), "invalid return type"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mustFailVerify(t, c.c, c.want)
		})
	}
}

func TestVerifyAcceptsNestedLoops(t *testing.T) {
	a := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 1).
		Label("outer").
		EmitU16(OpLoad, 1).EmitU16(OpLoad, 0).Emit(OpILt).
		Jump(OpJmpZ, "done").
		Emit(OpIConst0).EmitU16(OpStore, 2).
		Label("inner").
		EmitU16(OpLoad, 2).EmitU16(OpLoad, 0).Emit(OpILt).
		Jump(OpJmpZ, "inext").
		EmitU16(OpLoad, 3).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 3).
		EmitU16(OpLoad, 2).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 2).
		Jump(OpJmp, "inner").
		Label("inext").
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 1).
		Jump(OpJmp, "outer").
		Label("done").
		EmitU16(OpLoad, 3).Emit(OpRet)
	code, err := a.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	c := buildClass("Nest", nil, Method{
		Name: "m", Params: []VType{TInt}, Locals: []VType{TInt, TInt, TInt, TInt},
		Return: TInt, MaxStack: 2, Code: code,
	})
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	vm := newTestVM(false)
	lc := mustLoad(t, vm, "nest", c)
	ret, _, err := lc.Call("m", []Value{IntVal(5)}, nil)
	if err != nil || ret.I != 25 {
		t.Errorf("nested loops = %v, %v; want 25", ret, err)
	}
}

// Property: the verifier never panics and never lets through code that
// subsequently crashes the interpreter with anything but a Trap.
// Random byte strings exercise the full decode/verify/execute pipeline.
func TestQuickVerifierIsTotal(t *testing.T) {
	vm := newTestVM(false)
	n := 0
	prop := func(code []byte, maxStack uint8) bool {
		n++
		c := buildClass("Fuzz", []Const{{Kind: ConstInt, Int: 1}}, Method{
			Name: "m", Return: TInt, MaxStack: int(maxStack%16) + 1, Code: code,
		})
		if err := c.Verify(); err != nil {
			return true // rejection is fine
		}
		// Verified code must run to a value or a trap, never panic.
		lc, err := vm.NewLoader("fuzz").LoadClass(c)
		if err != nil {
			vm.NewLoader("fuzz").Unload("Fuzz")
			return true
		}
		defer vm.NewLoader("fuzz").Unload("Fuzz")
		_, _, err = lc.Call("m", nil, &CallOptions{Limits: Limits{Fuel: 10000}})
		if err != nil {
			_, isTrap := trapKind(err)
			return isTrap
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVerifierAllowsAssemblerPrograms(t *testing.T) {
	// Sanity: all the shared test fixtures verify.
	classes := []*Class{
		buildClass("A", nil, addMethod()),
		buildClass("B", nil, sumLoopMethod()),
		buildClass("C", nil, sumBytesMethod()),
		buildClass("D", nil, fibMethodAt(0)),
		nativeClass(),
	}
	for _, c := range classes {
		if err := c.Verify(); err != nil {
			t.Errorf("%s: %v", c.Name, err)
		}
	}
}
