package jvm

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Assembler builds method bytecode with label-based control flow. It is
// used by the Jaguar compiler and by tests; it performs no verification
// (that is the verifier's job).
type Assembler struct {
	code    []byte
	labels  map[string]int // label -> code offset
	patches map[int]string // operand offset -> label
	errs    []string
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{
		labels:  make(map[string]int),
		patches: make(map[int]string),
	}
}

// Emit appends an opcode with no operands.
func (a *Assembler) Emit(op Opcode) *Assembler {
	if op.OperandBytes() != 0 {
		a.errs = append(a.errs, fmt.Sprintf("%s requires operands", op.Name()))
	}
	a.code = append(a.code, byte(op))
	return a
}

// EmitU16 appends an opcode with one 16-bit operand (ldc, load, store, call).
func (a *Assembler) EmitU16(op Opcode, operand int) *Assembler {
	if op.OperandBytes() != 2 {
		a.errs = append(a.errs, fmt.Sprintf("%s does not take a u16 operand", op.Name()))
	}
	if operand < 0 || operand > 0xFFFF {
		a.errs = append(a.errs, fmt.Sprintf("%s operand %d out of range", op.Name(), operand))
		operand = 0
	}
	a.code = append(a.code, byte(op))
	a.code = binary.LittleEndian.AppendUint16(a.code, uint16(operand))
	return a
}

// EmitNative appends a native-call instruction: the constant-pool index
// of the function name and the argument count.
func (a *Assembler) EmitNative(nameIdx, argc int) *Assembler {
	if nameIdx < 0 || nameIdx > 0xFFFF || argc < 0 || argc > 255 {
		a.errs = append(a.errs, fmt.Sprintf("native operands out of range (%d, %d)", nameIdx, argc))
		nameIdx, argc = 0, 0
	}
	a.code = append(a.code, byte(OpNative))
	a.code = binary.LittleEndian.AppendUint16(a.code, uint16(nameIdx))
	a.code = append(a.code, byte(argc))
	return a
}

// Jump appends a jump instruction targeting the named label, which may
// be defined before or after this point.
func (a *Assembler) Jump(op Opcode, label string) *Assembler {
	if op != OpJmp && op != OpJmpZ && op != OpJmpN {
		a.errs = append(a.errs, fmt.Sprintf("%s is not a jump", op.Name()))
	}
	a.code = append(a.code, byte(op))
	a.patches[len(a.code)] = label
	a.code = binary.LittleEndian.AppendUint32(a.code, 0)
	return a
}

// Label defines a label at the current position.
func (a *Assembler) Label(name string) *Assembler {
	if _, dup := a.labels[name]; dup {
		a.errs = append(a.errs, fmt.Sprintf("duplicate label %q", name))
	}
	a.labels[name] = len(a.code)
	return a
}

// Bytes finalizes the code, resolving all label references.
func (a *Assembler) Bytes() ([]byte, error) {
	for off, label := range a.patches {
		target, ok := a.labels[label]
		if !ok {
			a.errs = append(a.errs, fmt.Sprintf("undefined label %q", label))
			continue
		}
		// Offsets are relative to the start of the next instruction.
		rel := target - (off + 4)
		binary.LittleEndian.PutUint32(a.code[off:], uint32(int32(rel)))
	}
	if len(a.errs) > 0 {
		return nil, fmt.Errorf("jvm: assembler: %s", strings.Join(a.errs, "; "))
	}
	return a.code, nil
}

// MustBytes is Bytes for tests and trusted builders; it panics on error.
func (a *Assembler) MustBytes() []byte {
	b, err := a.Bytes()
	if err != nil {
		panic(err)
	}
	return b
}

// Disassemble renders method code as human-readable assembly, one
// instruction per line, for jagc -disasm and debugging.
func Disassemble(c *Class, m *Method) string {
	var b strings.Builder
	fmt.Fprintf(&b, "method %s(%s) %s  locals=%d maxstack=%d\n",
		m.Name, typeList(m.Params), m.Return, len(m.Locals), m.MaxStack)
	pc := 0
	for pc < len(m.Code) {
		op := Opcode(m.Code[pc])
		fmt.Fprintf(&b, "  %4d: %-8s", pc, op.Name())
		if !op.Valid() {
			b.WriteString(" <invalid>\n")
			pc++
			continue
		}
		operandLen := op.OperandBytes()
		if pc+1+operandLen > len(m.Code) {
			b.WriteString(" <truncated>\n")
			break
		}
		switch op {
		case OpLdc:
			idx := int(binary.LittleEndian.Uint16(m.Code[pc+1:]))
			if idx < len(c.Consts) {
				fmt.Fprintf(&b, " #%d %s", idx, constString(c.Consts[idx]))
			} else {
				fmt.Fprintf(&b, " #%d <out of range>", idx)
			}
		case OpLoad, OpStore:
			fmt.Fprintf(&b, " %d", binary.LittleEndian.Uint16(m.Code[pc+1:]))
		case OpCall:
			idx := int(binary.LittleEndian.Uint16(m.Code[pc+1:]))
			if idx < len(c.Methods) {
				fmt.Fprintf(&b, " %s", c.Methods[idx].Name)
			} else {
				fmt.Fprintf(&b, " <method %d out of range>", idx)
			}
		case OpNative:
			idx := int(binary.LittleEndian.Uint16(m.Code[pc+1:]))
			argc := m.Code[pc+3]
			name := "<bad name index>"
			if idx < len(c.Consts) && c.Consts[idx].Kind == ConstStr {
				name = c.Consts[idx].Str
			}
			fmt.Fprintf(&b, " %s/%d", name, argc)
		case OpJmp, OpJmpZ, OpJmpN:
			rel := int32(binary.LittleEndian.Uint32(m.Code[pc+1:]))
			fmt.Fprintf(&b, " -> %d", pc+1+operandLen+int(rel))
		}
		b.WriteByte('\n')
		pc += 1 + operandLen
	}
	return b.String()
}

func typeList(ts []VType) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

func constString(k Const) string {
	switch k.Kind {
	case ConstInt:
		return fmt.Sprintf("int %d", k.Int)
	case ConstFloat:
		return fmt.Sprintf("float %g", k.Float)
	case ConstStr:
		return fmt.Sprintf("str %q", k.Str)
	default:
		return fmt.Sprintf("bytes[%d]", len(k.Bytes))
	}
}
