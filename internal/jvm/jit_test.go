package jvm

import (
	"fmt"
	"testing"
	"testing/quick"
)

// loadBoth loads the same class into a JIT VM and an interpreter VM.
func loadBoth(t *testing.T, c *Class) (jit, interp *LoadedClass) {
	t.Helper()
	vmJ := newTestVM(false)
	vmI := newTestVM(true)
	j, err := vmJ.NewLoader("j").LoadClass(c)
	if err != nil {
		t.Fatal(err)
	}
	cp := *c // loaders reject duplicate pointers only by name+loader; fresh VM is fine
	i, err := vmI.NewLoader("i").LoadClass(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return j, i
}

// agree asserts both engines produce identical results (or both trap).
func agree(t *testing.T, jit, interp *LoadedClass, method string, args []Value) {
	t.Helper()
	a, _, errA := jit.Call(method, args, nil)
	b, _, errB := interp.Call(method, args, nil)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s(%v): jit err=%v, interp err=%v", method, args, errA, errB)
	}
	if errA != nil {
		ta, _ := trapKind(errA)
		tb, _ := trapKind(errB)
		if ta != tb {
			t.Fatalf("%s(%v): trap kinds differ: %s vs %s", method, args, ta, tb)
		}
		return
	}
	if a.T != b.T || a.I != b.I || a.F != b.F || a.S != b.S || !bytesEqual(a.B, b.B) {
		t.Fatalf("%s(%v): jit=%v interp=%v", method, args, a, b)
	}
}

// TestFusionLoopByteSum checks the byte-sum loop superinstruction
// against the interpreter across array sizes and start offsets.
func TestFusionLoopByteSum(t *testing.T) {
	jit, interp := loadBoth(t, buildClass("BS", nil, sumBytesMethod()))
	for _, size := range []int{0, 1, 7, 100, 10000} {
		arr := make([]byte, size)
		for i := range arr {
			arr[i] = byte(i * 31)
		}
		agree(t, jit, interp, "sumbytes", []Value{BytesVal(arr)})
	}
}

// TestFusionLoopCount checks the counting-loop superinstruction.
func TestFusionLoopCount(t *testing.T) {
	jit, interp := loadBoth(t, buildClass("LC", nil, sumLoopMethod()))
	for _, n := range []int64{0, 1, 2, 100, 99999} {
		agree(t, jit, interp, "sumloop", []Value{IntVal(n)})
	}
}

// TestFusionDoesNotFireAcrossJumpTargets builds a loop whose body is a
// jump target (a 'continue' equivalent) and checks semantics hold.
func TestFusionContinueTarget(t *testing.T) {
	// sum of odd i in 0..n-1: the increment is a continue target.
	code := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 1).
		Emit(OpIConst0).EmitU16(OpStore, 2).
		Label("loop").
		EmitU16(OpLoad, 1).EmitU16(OpLoad, 0).Emit(OpILt).
		Jump(OpJmpZ, "done").
		EmitU16(OpLoad, 1).EmitU16(OpLdc, 0).Emit(OpIMod).
		Jump(OpJmpZ, "cont"). // even: skip the add
		EmitU16(OpLoad, 2).EmitU16(OpLoad, 1).Emit(OpIAdd).EmitU16(OpStore, 2).
		Label("cont").
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 1).
		Jump(OpJmp, "loop").
		Label("done").
		EmitU16(OpLoad, 2).Emit(OpRet).
		MustBytes()
	c := buildClass("CT", []Const{{Kind: ConstInt, Int: 2}}, Method{
		Name: "oddsum", Params: []VType{TInt}, Locals: []VType{TInt, TInt, TInt},
		Return: TInt, MaxStack: 2, Code: code,
	})
	jit, interp := loadBoth(t, c)
	agree(t, jit, interp, "oddsum", []Value{IntVal(20)})
	ret, _, err := jit.Call("oddsum", []Value{IntVal(10)}, nil)
	if err != nil || ret.I != 25 {
		t.Errorf("oddsum(10) = %v, %v; want 25 (1+3+5+7+9)", ret, err)
	}
}

// TestFusionFuelExactUnderLoops ensures the fuel limit still stops a
// long fused loop and accounting stays close to exact.
func TestFusionFuelInLoops(t *testing.T) {
	vm := newTestVM(false)
	lc := mustLoad(t, vm, "fuel", buildClass("F", nil, sumLoopMethod()))
	_, usage, err := lc.Call("sumloop", []Value{IntVal(1 << 40)}, &CallOptions{
		Limits: Limits{Fuel: 100000},
	})
	kind, ok := trapKind(err)
	if !ok || kind != TrapFuel {
		t.Fatalf("err = %v, want fuel trap", err)
	}
	if usage.Instructions < 99000 || usage.Instructions > 101000 {
		t.Errorf("instructions = %d, want ~100000", usage.Instructions)
	}
}

// TestFusionBoundsTrapAtLoopEntry: a byte-sum loop whose induction
// variable starts beyond the array must not read out of bounds.
func TestFusionNegativeStart(t *testing.T) {
	// i starts at -3 (loop condition true: -3 < len). The interpreter
	// traps on bget; the fused loop must trap identically, not read
	// data[-3].
	code := NewAssembler().
		EmitU16(OpLdc, 0).EmitU16(OpStore, 1). // i = -3
		Emit(OpIConst0).EmitU16(OpStore, 2).
		Label("loop").
		EmitU16(OpLoad, 1).EmitU16(OpLoad, 0).Emit(OpBLen).Emit(OpILt).
		Jump(OpJmpZ, "done").
		EmitU16(OpLoad, 2).
		EmitU16(OpLoad, 0).EmitU16(OpLoad, 1).Emit(OpBGet).
		Emit(OpIAdd).EmitU16(OpStore, 2).
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 1).
		Jump(OpJmp, "loop").
		Label("done").
		EmitU16(OpLoad, 2).Emit(OpRet).
		MustBytes()
	c := buildClass("NS", []Const{{Kind: ConstInt, Int: -3}}, Method{
		Name: "negstart", Params: []VType{TBytes}, Locals: []VType{TBytes, TInt, TInt},
		Return: TInt, MaxStack: 3, Code: code,
	})
	jit, interp := loadBoth(t, c)
	agree(t, jit, interp, "negstart", []Value{BytesVal([]byte{1, 2, 3})})
}

// Property: random (n, seed) parameterizations of a two-level loop
// agree between engines.
func TestQuickFusionAgreement(t *testing.T) {
	// nested: for p in 0..dep: for j in 0..len(b): acc += b[j]; plus
	// counting loop acc += 1 (indep times).
	code := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 3). // acc
		Emit(OpIConst0).EmitU16(OpStore, 4). // i
		Label("indep").
		EmitU16(OpLoad, 4).EmitU16(OpLoad, 1).Emit(OpILt).
		Jump(OpJmpZ, "indepdone").
		EmitU16(OpLoad, 3).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 3).
		EmitU16(OpLoad, 4).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 4).
		Jump(OpJmp, "indep").
		Label("indepdone").
		Emit(OpIConst0).EmitU16(OpStore, 5). // p
		Label("dep").
		EmitU16(OpLoad, 5).EmitU16(OpLoad, 2).Emit(OpILt).
		Jump(OpJmpZ, "depdone").
		Emit(OpIConst0).EmitU16(OpStore, 6). // j
		Label("inner").
		EmitU16(OpLoad, 6).EmitU16(OpLoad, 0).Emit(OpBLen).Emit(OpILt).
		Jump(OpJmpZ, "innerdone").
		EmitU16(OpLoad, 3).
		EmitU16(OpLoad, 0).EmitU16(OpLoad, 6).Emit(OpBGet).
		Emit(OpIAdd).EmitU16(OpStore, 3).
		EmitU16(OpLoad, 6).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 6).
		Jump(OpJmp, "inner").
		Label("innerdone").
		EmitU16(OpLoad, 5).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 5).
		Jump(OpJmp, "dep").
		Label("depdone").
		EmitU16(OpLoad, 3).Emit(OpRet).
		MustBytes()
	c := buildClass("Gen", nil, Method{
		Name:   "generic",
		Params: []VType{TBytes, TInt, TInt},
		Locals: []VType{TBytes, TInt, TInt, TInt, TInt, TInt, TInt},
		Return: TInt, MaxStack: 3, Code: code,
	})
	jit, interp := loadBoth(t, c)
	prop := func(seed uint16, indep8, dep3, size8 uint8) bool {
		indep := int64(indep8)
		dep := int64(dep3 % 4)
		size := int(size8)
		arr := make([]byte, size)
		for i := range arr {
			arr[i] = byte(int(seed) * (i + 1))
		}
		args := []Value{BytesVal(arr), IntVal(indep), IntVal(dep)}
		a, _, errA := jit.Call("generic", args, nil)
		b, _, errB := interp.Call("generic", args, nil)
		if errA != nil || errB != nil {
			return false
		}
		// Also verify against the direct computation.
		var want int64 = indep
		for p := int64(0); p < dep; p++ {
			for _, by := range arr {
				want += int64(by)
			}
		}
		return a.I == want && b.I == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestFusionGroupShapes sanity-checks the planner's grouping on the
// canonical byte-sum loop: the whole loop should collapse.
func TestFusionGroupShapes(t *testing.T) {
	vm := newTestVM(false)
	lc := mustLoad(t, vm, "shapes", buildClass("S", nil, sumBytesMethod()))
	lm := &lc.meths[0]
	nGroups := len(lm.jit)
	// Prologue (4 instrs = 4 groups) + 1 loop superinstruction +
	// epilogue (ret-local fused = 1). Allow slack but require that the
	// loop collapsed well below the 20 raw instructions.
	if nGroups > 8 {
		t.Errorf("byte-sum method compiled to %d closures; loop fusion did not engage (%d instrs)",
			nGroups, len(lm.instrs))
	}
	for _, m := range []string{fmt.Sprintf("groups=%d instrs=%d", nGroups, len(lm.instrs))} {
		t.Log(m)
	}
}
