package jvm

import (
	"fmt"
	"time"
)

// Value is a Jaguar VM runtime value: a small tagged union sized for
// fast stack traffic inside the interpreter and JIT.
type Value struct {
	T VType
	I int64
	F float64
	S string
	B []byte
}

// IntVal builds an int value.
func IntVal(i int64) Value { return Value{T: TInt, I: i} }

// FloatVal builds a float value.
func FloatVal(f float64) Value { return Value{T: TFloat, F: f} }

// StrVal builds a string value.
func StrVal(s string) Value { return Value{T: TStr, S: s} }

// BytesVal builds a byte-array value (aliased, not copied).
func BytesVal(b []byte) Value { return Value{T: TBytes, B: b} }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.T {
	case TInt:
		return fmt.Sprintf("%d", v.I)
	case TFloat:
		return fmt.Sprintf("%g", v.F)
	case TStr:
		return fmt.Sprintf("%q", v.S)
	case TBytes:
		return fmt.Sprintf("bytes[%d]", len(v.B))
	default:
		return "?"
	}
}

// Callback is the server-side interface a UDF reaches through native
// calls (the paper's "callbacks": a UDF given a handle to a large
// object asks the server for the pieces it needs).
type Callback interface {
	// Size returns the total size of the object behind handle.
	Size(handle int64) (int64, error)
	// Get returns one byte of the object.
	Get(handle, offset int64) (byte, error)
	// Read returns a range of the object.
	Read(handle, offset, length int64) ([]byte, error)
	// Touch is a pure boundary crossing carrying no data; the Fig. 8
	// experiment uses it to isolate the cost of the crossing itself.
	Touch(handle int64) error
}

// NativeCtx carries per-invocation context into native functions.
type NativeCtx struct {
	ClassName string
	Security  SecurityManager
	Callback  Callback
	Logf      func(format string, args ...any)
	// account charges an allocation against the invocation's memory
	// budget; native functions that materialize data must call it.
	account func(bytes int64) error
}

// NativeFunc implements one native entry point callable from bytecode.
type NativeFunc func(ctx *NativeCtx, args []Value) (Value, error)

// NativeEntry describes a registered native function: its implementation,
// required permission, and signature (checked at call time, like JNI).
type NativeEntry struct {
	Name   string
	Perm   Permission
	Params []VType
	Result VType
	Fn     NativeFunc
}

// NativeRegistry maps native function names to entries. The registry is
// fixed at VM construction; class loading fails if a class references
// an unregistered native ("link error"), so verified classes can only
// ever reach registered entry points.
type NativeRegistry struct {
	entries map[string]*NativeEntry
}

// NewNativeRegistry returns a registry with the built-in API installed.
func NewNativeRegistry() *NativeRegistry {
	r := &NativeRegistry{entries: make(map[string]*NativeEntry)}
	r.registerBuiltins()
	return r
}

// Register adds or replaces a native entry.
func (r *NativeRegistry) Register(e *NativeEntry) {
	r.entries[e.Name] = e
}

// Lookup resolves a native name.
func (r *NativeRegistry) Lookup(name string) (*NativeEntry, bool) {
	e, ok := r.entries[name]
	return e, ok
}

func (r *NativeRegistry) registerBuiltins() {
	r.Register(&NativeEntry{
		Name: "cb.size", Perm: PermCallback,
		Params: []VType{TInt}, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			if ctx.Callback == nil {
				return Value{}, fmt.Errorf("no callback handler installed")
			}
			n, err := ctx.Callback.Size(args[0].I)
			return IntVal(n), err
		},
	})
	r.Register(&NativeEntry{
		Name: "cb.get", Perm: PermCallback,
		Params: []VType{TInt, TInt}, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			if ctx.Callback == nil {
				return Value{}, fmt.Errorf("no callback handler installed")
			}
			b, err := ctx.Callback.Get(args[0].I, args[1].I)
			return IntVal(int64(b)), err
		},
	})
	r.Register(&NativeEntry{
		Name: "cb.read", Perm: PermCallback,
		Params: []VType{TInt, TInt, TInt}, Result: TBytes,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			if ctx.Callback == nil {
				return Value{}, fmt.Errorf("no callback handler installed")
			}
			data, err := ctx.Callback.Read(args[0].I, args[1].I, args[2].I)
			if err != nil {
				return Value{}, err
			}
			if err := ctx.account(int64(len(data))); err != nil {
				return Value{}, err
			}
			return BytesVal(data), nil
		},
	})
	r.Register(&NativeEntry{
		Name: "cb.touch", Perm: PermCallback,
		Params: []VType{TInt}, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			if ctx.Callback == nil {
				return Value{}, fmt.Errorf("no callback handler installed")
			}
			return IntVal(0), ctx.Callback.Touch(args[0].I)
		},
	})
	r.Register(&NativeEntry{
		Name: "sys.log", Perm: PermLog,
		Params: []VType{TStr}, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			if ctx.Logf != nil {
				ctx.Logf("[%s] %s", ctx.ClassName, args[0].S)
			}
			return IntVal(0), nil
		},
	})
	r.Register(&NativeEntry{
		Name: "sys.time", Perm: PermTime,
		Params: nil, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			return IntVal(time.Now().UnixNano()), nil
		},
	})
	// file.* exist so the security manager has something meaningful to
	// deny; the default policy never grants PermFile to UDFs.
	r.Register(&NativeEntry{
		Name: "file.open", Perm: PermFile,
		Params: []VType{TStr}, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			return Value{}, fmt.Errorf("file access is not implemented for UDFs")
		},
	})
	r.Register(&NativeEntry{
		Name: "file.write", Perm: PermFile,
		Params: []VType{TInt, TBytes}, Result: TInt,
		Fn: func(ctx *NativeCtx, args []Value) (Value, error) {
			return Value{}, fmt.Errorf("file access is not implemented for UDFs")
		},
	})
}
