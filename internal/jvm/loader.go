package jvm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// instr is a pre-decoded instruction. Jump targets are rewritten from
// byte offsets to instruction indexes at load time.
type instr struct {
	op Opcode
	a  int32 // cp index / local / jump target (instr index) / method / native index
	b  int32 // argc (native only)
}

// loadedMethod is a verified, pre-decoded, possibly JIT-compiled method.
type loadedMethod struct {
	m       *Method
	instrs  []instr
	natives []*NativeEntry // indexed by instr.a of OpNative
	jit     []jitOp        // nil when the loader's VM has JIT disabled
}

// LoadedClass is a verified class bound to a loader namespace, ready to
// execute. It is immutable after loading and safe for concurrent calls.
type LoadedClass struct {
	class  *Class
	loader *ClassLoader
	meths  []loadedMethod
}

// Name returns the class name.
func (lc *LoadedClass) Name() string { return lc.class.Name }

// Class returns the underlying class definition (read-only).
func (lc *LoadedClass) Class() *Class { return lc.class }

// HasMethod reports whether the class defines the named method.
func (lc *LoadedClass) HasMethod(name string) bool {
	return lc.class.MethodIndex(name) >= 0
}

// VM hosts class loaders and executes Jaguar code. One VM is embedded
// in the database server at startup (the paper: "a single JVM is
// created when the database server starts up").
type VM struct {
	natives  *NativeRegistry
	security SecurityManager
	useJIT   bool

	mu      sync.Mutex
	loaders map[string]*ClassLoader
}

// Options configures a VM.
type Options struct {
	// Natives is the native API exposed to loaded classes. Nil means
	// the built-in registry.
	Natives *NativeRegistry
	// Security is consulted on every native call. Nil means the
	// default deny-mostly policy.
	Security SecurityManager
	// DisableJIT forces pure interpretation (the "no JIT" ablation).
	DisableJIT bool
}

// New creates a VM.
func New(opts Options) *VM {
	n := opts.Natives
	if n == nil {
		n = NewNativeRegistry()
	}
	s := opts.Security
	if s == nil {
		s = DefaultPolicy()
	}
	return &VM{
		natives:  n,
		security: s,
		useJIT:   !opts.DisableJIT,
		loaders:  make(map[string]*ClassLoader),
	}
}

// Security returns the VM's security manager.
func (vm *VM) Security() SecurityManager { return vm.security }

// ClassLoader loads classes into an isolated namespace. Two loaders may
// hold classes with the same name without interference; a UDF loaded by
// one loader cannot name or reach classes of another (paper §6.1's
// class-loader isolation).
type ClassLoader struct {
	vm        *VM
	namespace string

	mu      sync.Mutex
	classes map[string]*LoadedClass
}

// NewLoader creates (or returns the existing) loader for a namespace.
// Use one namespace per UDF principal.
func (vm *VM) NewLoader(namespace string) *ClassLoader {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	if l, ok := vm.loaders[namespace]; ok {
		return l
	}
	l := &ClassLoader{vm: vm, namespace: namespace, classes: make(map[string]*LoadedClass)}
	vm.loaders[namespace] = l
	return l
}

// Namespaces lists the loader namespaces currently present.
func (vm *VM) Namespaces() []string {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	out := make([]string, 0, len(vm.loaders))
	for ns := range vm.loaders {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}

// Namespace returns the loader's namespace name.
func (l *ClassLoader) Namespace() string { return l.namespace }

// Load verifies, links and installs a class from class-file bytes. The
// pipeline is exactly the paper's: parse -> bytecode verify -> link
// natives -> (JIT) compile. Any failure rejects the class entirely.
func (l *ClassLoader) Load(data []byte) (*LoadedClass, error) {
	c, err := DecodeClass(data)
	if err != nil {
		return nil, err
	}
	return l.LoadClass(c)
}

// LoadClass installs an in-memory class definition. It is verified and
// linked exactly like file bytes; there is no trusted path around the
// verifier. The class must not be mutated after loading.
func (l *ClassLoader) LoadClass(c *Class) (*LoadedClass, error) {
	if err := c.Verify(); err != nil {
		return nil, err
	}
	lc := &LoadedClass{class: c, loader: l, meths: make([]loadedMethod, len(c.Methods))}
	for i := range c.Methods {
		lm, err := l.link(c, &c.Methods[i])
		if err != nil {
			return nil, err
		}
		lc.meths[i] = lm
	}
	if l.vm.useJIT {
		for i := range lc.meths {
			lc.meths[i].jit = compileJIT(lc, &lc.meths[i])
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, dup := l.classes[c.Name]; dup {
		return nil, fmt.Errorf("jvm: class %q already loaded in namespace %q", c.Name, l.namespace)
	}
	l.classes[c.Name] = lc
	return lc, nil
}

// Lookup finds a class previously loaded in this namespace.
func (l *ClassLoader) Lookup(name string) (*LoadedClass, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lc, ok := l.classes[name]
	return lc, ok
}

// Unload removes a class from the namespace.
func (l *ClassLoader) Unload(name string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.classes, name)
}

// link pre-decodes a verified method's code and resolves its native
// references against the VM registry.
func (l *ClassLoader) link(c *Class, m *Method) (loadedMethod, error) {
	lm := loadedMethod{m: m}
	// First pass: instruction starts -> instruction indexes.
	byteToIdx := make(map[int]int32)
	pc := 0
	for pc < len(m.Code) {
		op := Opcode(m.Code[pc])
		byteToIdx[pc] = int32(len(byteToIdx))
		pc += 1 + op.OperandBytes()
	}
	// Second pass: decode.
	pc = 0
	for pc < len(m.Code) {
		op := Opcode(m.Code[pc])
		in := instr{op: op}
		next := pc + 1 + op.OperandBytes()
		switch op {
		case OpLdc, OpLoad, OpStore, OpCall:
			in.a = int32(binary.LittleEndian.Uint16(m.Code[pc+1:]))
		case OpJmp, OpJmpZ, OpJmpN:
			rel := int32(binary.LittleEndian.Uint32(m.Code[pc+1:]))
			target := next + int(rel)
			idx, ok := byteToIdx[target]
			if !ok {
				return lm, fmt.Errorf("jvm: link %s.%s: jump target %d is not an instruction", c.Name, m.Name, target)
			}
			in.a = idx
		case OpNative:
			cpIdx := int(binary.LittleEndian.Uint16(m.Code[pc+1:]))
			argc := int32(m.Code[pc+3])
			name := c.Consts[cpIdx].Str
			entry, ok := l.vm.natives.Lookup(name)
			if !ok {
				return lm, fmt.Errorf("jvm: link %s.%s: unresolved native function %q", c.Name, m.Name, name)
			}
			if int(argc) != len(entry.Params) {
				return lm, fmt.Errorf("jvm: link %s.%s: native %q called with %d args, wants %d",
					c.Name, m.Name, name, argc, len(entry.Params))
			}
			in.a = int32(len(lm.natives))
			in.b = argc
			lm.natives = append(lm.natives, entry)
			m.NativeRef = append(m.NativeRef, name)
		}
		lm.instrs = append(lm.instrs, in)
		pc = next
	}
	return lm, nil
}
