package jvm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"predator/internal/types"
)

// buildClass assembles a class and panics on assembler errors (tests
// construct only well-formed code unless explicitly testing failures).
func buildClass(name string, consts []Const, methods ...Method) *Class {
	return &Class{Name: name, Consts: consts, Methods: methods}
}

// addMethod: add(a, b int) int
func addMethod() Method {
	code := NewAssembler().
		EmitU16(OpLoad, 0).
		EmitU16(OpLoad, 1).
		Emit(OpIAdd).
		Emit(OpRet).
		MustBytes()
	return Method{
		Name: "add", Params: []VType{TInt, TInt}, Locals: []VType{TInt, TInt},
		Return: TInt, MaxStack: 2, Code: code,
	}
}

// sumLoopMethod: sum of 0..n-1 via a while loop.
func sumLoopMethod() Method {
	// locals: 0=n, 1=i, 2=acc
	code := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 1).
		Emit(OpIConst0).EmitU16(OpStore, 2).
		Label("loop").
		EmitU16(OpLoad, 1).EmitU16(OpLoad, 0).Emit(OpILt).
		Jump(OpJmpZ, "done").
		EmitU16(OpLoad, 2).EmitU16(OpLoad, 1).Emit(OpIAdd).EmitU16(OpStore, 2).
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 1).
		Jump(OpJmp, "loop").
		Label("done").
		EmitU16(OpLoad, 2).Emit(OpRet).
		MustBytes()
	return Method{
		Name: "sumloop", Params: []VType{TInt}, Locals: []VType{TInt, TInt, TInt},
		Return: TInt, MaxStack: 2, Code: code,
	}
}

// sumBytesMethod: sum all bytes of an array (the data-dependent loop of
// the paper's generic UDF).
func sumBytesMethod() Method {
	// locals: 0=arr, 1=i, 2=acc
	code := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 1).
		Emit(OpIConst0).EmitU16(OpStore, 2).
		Label("loop").
		EmitU16(OpLoad, 1).EmitU16(OpLoad, 0).Emit(OpBLen).Emit(OpILt).
		Jump(OpJmpZ, "done").
		EmitU16(OpLoad, 2).
		EmitU16(OpLoad, 0).EmitU16(OpLoad, 1).Emit(OpBGet).
		Emit(OpIAdd).EmitU16(OpStore, 2).
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 1).
		Jump(OpJmp, "loop").
		Label("done").
		EmitU16(OpLoad, 2).Emit(OpRet).
		MustBytes()
	return Method{
		Name: "sumbytes", Params: []VType{TBytes}, Locals: []VType{TBytes, TInt, TInt},
		Return: TInt, MaxStack: 3, Code: code,
	}
}

// fibMethod: recursive fibonacci via OpCall to itself; selfIdx is the
// method's own index within its class.
func fibMethodAt(selfIdx int) Method {
	code := NewAssembler().
		EmitU16(OpLoad, 0).Emit(OpIConst1).Emit(OpIGt).
		Jump(OpJmpN, "rec").
		EmitU16(OpLoad, 0).Emit(OpRet).
		Label("rec").
		EmitU16(OpLoad, 0).Emit(OpIConst1).Emit(OpISub).EmitU16(OpCall, selfIdx).
		EmitU16(OpLoad, 0).Emit(OpIConst1).Emit(OpISub).Emit(OpIConst1).Emit(OpISub).EmitU16(OpCall, selfIdx).
		Emit(OpIAdd).Emit(OpRet).
		MustBytes()
	return Method{
		Name: "fib", Params: []VType{TInt}, Locals: []VType{TInt},
		Return: TInt, MaxStack: 4, Code: code,
	}
}

func mustLoad(t *testing.T, vm *VM, ns string, c *Class) *LoadedClass {
	t.Helper()
	lc, err := vm.NewLoader(ns).LoadClass(c)
	if err != nil {
		t.Fatalf("load %s: %v", c.Name, err)
	}
	return lc
}

func newTestVM(disableJIT bool) *VM {
	return New(Options{Security: AllowAll(), DisableJIT: disableJIT})
}

func TestInterpAndJITBasicOps(t *testing.T) {
	for _, jit := range []bool{false, true} {
		name := map[bool]string{false: "interp", true: "jit"}[jit]
		t.Run(name, func(t *testing.T) {
			vm := newTestVM(!jit)
			lc := mustLoad(t, vm, "t", buildClass("Basic", nil, addMethod(), sumLoopMethod(), sumBytesMethod(), fibMethodAt(3)))

			ret, _, err := lc.Call("add", []Value{IntVal(40), IntVal(2)}, nil)
			if err != nil || ret.I != 42 {
				t.Errorf("add = %v, %v; want 42", ret, err)
			}
			ret, usage, err := lc.Call("sumloop", []Value{IntVal(100)}, nil)
			if err != nil || ret.I != 4950 {
				t.Errorf("sumloop(100) = %v, %v; want 4950", ret, err)
			}
			if usage.Instructions == 0 {
				t.Error("usage.Instructions not accounted")
			}
			arr := []byte{1, 2, 3, 250}
			ret, _, err = lc.Call("sumbytes", []Value{BytesVal(arr)}, nil)
			if err != nil || ret.I != 256 {
				t.Errorf("sumbytes = %v, %v; want 256", ret, err)
			}
			ret, _, err = lc.Call("fib", []Value{IntVal(15)}, nil)
			if err != nil || ret.I != 610 {
				t.Errorf("fib(15) = %v, %v; want 610", ret, err)
			}
		})
	}
}

func TestArithmeticOps(t *testing.T) {
	consts := []Const{
		{Kind: ConstInt, Int: 7},
		{Kind: ConstInt, Int: 3},
		{Kind: ConstFloat, Float: 2.5},
		{Kind: ConstFloat, Float: 0.5},
		{Kind: ConstStr, Str: "ab"},
		{Kind: ConstStr, Str: "cd"},
	}
	cases := []struct {
		name string
		code func(*Assembler) *Assembler
		ret  VType
		want Value
		max  int
	}{
		{"isub", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpISub)
		}, TInt, IntVal(4), 2},
		{"imul", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpIMul)
		}, TInt, IntVal(21), 2},
		{"idiv", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpIDiv)
		}, TInt, IntVal(2), 2},
		{"imod", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpIMod)
		}, TInt, IntVal(1), 2},
		{"ineg", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).Emit(OpINeg)
		}, TInt, IntVal(-7), 1},
		{"fadd", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 2).EmitU16(OpLdc, 3).Emit(OpFAdd)
		}, TFloat, FloatVal(3.0), 2},
		{"fsub", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 2).EmitU16(OpLdc, 3).Emit(OpFSub)
		}, TFloat, FloatVal(2.0), 2},
		{"fmul", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 2).EmitU16(OpLdc, 3).Emit(OpFMul)
		}, TFloat, FloatVal(1.25), 2},
		{"fdiv", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 2).EmitU16(OpLdc, 3).Emit(OpFDiv)
		}, TFloat, FloatVal(5.0), 2},
		{"fneg", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 2).Emit(OpFNeg)
		}, TFloat, FloatVal(-2.5), 1},
		{"i2f", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).Emit(OpI2F)
		}, TFloat, FloatVal(7.0), 1},
		{"f2i", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 2).Emit(OpF2I)
		}, TInt, IntVal(2), 1},
		{"sconcat", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 4).EmitU16(OpLdc, 5).Emit(OpSConcat)
		}, TStr, StrVal("abcd"), 2},
		{"slen", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 4).Emit(OpSLen)
		}, TInt, IntVal(2), 1},
		{"seq", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 4).EmitU16(OpLdc, 4).Emit(OpSEq)
		}, TInt, IntVal(1), 2},
		{"not", func(a *Assembler) *Assembler {
			return a.Emit(OpIConst0).Emit(OpNot)
		}, TInt, IntVal(1), 1},
		{"dup-pop-swap", func(a *Assembler) *Assembler {
			return a.EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpSwap).Emit(OpDup).Emit(OpPop).Emit(OpISub)
		}, TInt, IntVal(-4), 3},
	}
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		for _, c := range cases {
			t.Run(fmt.Sprintf("%s/jit=%v", c.name, jit), func(t *testing.T) {
				code := c.code(NewAssembler()).Emit(OpRet).MustBytes()
				cls := buildClass("M"+c.name, consts, Method{
					Name: "m", Return: c.ret, MaxStack: c.max, Code: code,
				})
				lc := mustLoad(t, vm, fmt.Sprintf("ns-%s-%v", c.name, jit), cls)
				ret, _, err := lc.Call("m", nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if ret.T != c.want.T || ret.I != c.want.I || ret.F != c.want.F || ret.S != c.want.S {
					t.Errorf("got %v, want %v", ret, c.want)
				}
			})
		}
	}
}

func TestBytesOps(t *testing.T) {
	// make an array of size n, fill b[i]=i*2, return b[3].
	code := NewAssembler().
		EmitU16(OpLoad, 0).Emit(OpBNew).EmitU16(OpStore, 1).
		// b[3] = 9
		EmitU16(OpLoad, 1).
		Emit(OpIConst1).Emit(OpIConst1).Emit(OpIAdd).Emit(OpIConst1).Emit(OpIAdd). // 3
		EmitU16(OpLdc, 0).                                                         // 9
		Emit(OpBSet).
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIConst1).Emit(OpIAdd).Emit(OpIConst1).Emit(OpIAdd).Emit(OpBGet).
		Emit(OpRet).
		MustBytes()
	cls := buildClass("B", []Const{{Kind: ConstInt, Int: 9}}, Method{
		Name: "m", Params: []VType{TInt}, Locals: []VType{TInt, TBytes},
		Return: TInt, MaxStack: 4, Code: code,
	})
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		lc := mustLoad(t, vm, "b", cls)
		ret, usage, err := lc.Call("m", []Value{IntVal(10)}, nil)
		if err != nil || ret.I != 9 {
			t.Errorf("jit=%v: got %v, %v; want 9", jit, ret, err)
		}
		if usage.AllocBytes != 10 {
			t.Errorf("jit=%v: AllocBytes = %d, want 10", jit, usage.AllocBytes)
		}
	}
}

func TestBEqAndConstBytes(t *testing.T) {
	consts := []Const{{Kind: ConstBytes, Bytes: []byte{1, 2, 3}}}
	code := NewAssembler().
		EmitU16(OpLdc, 0).EmitU16(OpLoad, 0).Emit(OpBEq).Emit(OpRet).
		MustBytes()
	cls := buildClass("BE", consts, Method{
		Name: "m", Params: []VType{TBytes}, Locals: []VType{TBytes},
		Return: TInt, MaxStack: 2, Code: code,
	})
	vm := newTestVM(false)
	lc := mustLoad(t, vm, "be", cls)
	ret, _, err := lc.Call("m", []Value{BytesVal([]byte{1, 2, 3})}, nil)
	if err != nil || ret.I != 1 {
		t.Errorf("equal arrays: %v, %v", ret, err)
	}
	ret, _, _ = lc.Call("m", []Value{BytesVal([]byte{1, 2})}, nil)
	if ret.I != 0 {
		t.Error("different arrays compared equal")
	}
}

func trapKind(err error) (TrapKind, bool) {
	var tr *Trap
	if errors.As(err, &tr) {
		return tr.Kind, true
	}
	return 0, false
}

func TestTraps(t *testing.T) {
	divCode := NewAssembler().EmitU16(OpLoad, 0).Emit(OpIConst0).Emit(OpIDiv).Emit(OpRet).MustBytes()
	modCode := NewAssembler().EmitU16(OpLoad, 0).Emit(OpIConst0).Emit(OpIMod).Emit(OpRet).MustBytes()
	oobCode := NewAssembler().EmitU16(OpLoad, 0).EmitU16(OpLdc, 0).Emit(OpBGet).Emit(OpRet).MustBytes()
	oobSet := NewAssembler().EmitU16(OpLoad, 0).EmitU16(OpLdc, 0).Emit(OpIConst1).Emit(OpBSet).Emit(OpIConst0).Emit(OpRet).MustBytes()
	negNew := NewAssembler().EmitU16(OpLdc, 1).Emit(OpBNew).Emit(OpBLen).Emit(OpRet).MustBytes()
	cls := buildClass("T", []Const{{Kind: ConstInt, Int: 1 << 40}, {Kind: ConstInt, Int: -5}},
		Method{Name: "div0", Params: []VType{TInt}, Locals: []VType{TInt}, Return: TInt, MaxStack: 2, Code: divCode},
		Method{Name: "mod0", Params: []VType{TInt}, Locals: []VType{TInt}, Return: TInt, MaxStack: 2, Code: modCode},
		Method{Name: "oob", Params: []VType{TBytes}, Locals: []VType{TBytes}, Return: TInt, MaxStack: 2, Code: oobCode},
		Method{Name: "oobset", Params: []VType{TBytes}, Locals: []VType{TBytes}, Return: TInt, MaxStack: 3, Code: oobSet},
		Method{Name: "negnew", Return: TInt, MaxStack: 1, Code: negNew},
	)
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		lc := mustLoad(t, vm, fmt.Sprintf("traps-%v", jit), cls)
		cases := []struct {
			method string
			args   []Value
			want   TrapKind
		}{
			{"div0", []Value{IntVal(1)}, TrapDivZero},
			{"mod0", []Value{IntVal(1)}, TrapDivZero},
			{"oob", []Value{BytesVal([]byte{1})}, TrapBounds},
			{"oobset", []Value{BytesVal([]byte{1})}, TrapBounds},
			{"negnew", nil, TrapValue},
		}
		for _, c := range cases {
			_, _, err := lc.Call(c.method, c.args, nil)
			kind, ok := trapKind(err)
			if !ok || kind != c.want {
				t.Errorf("jit=%v %s: err=%v, want %s trap", jit, c.method, err, c.want)
			}
		}
	}
}

func TestFuelLimit(t *testing.T) {
	cls := buildClass("F", nil, sumLoopMethod())
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		lc := mustLoad(t, vm, fmt.Sprintf("f-%v", jit), cls)
		// A loop of 1e6 iterations needs ~1e7 instructions; give it 1000.
		_, usage, err := lc.Call("sumloop", []Value{IntVal(1000000)}, &CallOptions{
			Limits: Limits{Fuel: 1000},
		})
		kind, ok := trapKind(err)
		if !ok || kind != TrapFuel {
			t.Errorf("jit=%v: err=%v, want fuel trap", jit, err)
		}
		// Chunked loop-superinstruction accounting may land within one
		// iteration of the budget.
		if usage.Instructions < 980 || usage.Instructions > 1020 {
			t.Errorf("jit=%v: instructions=%d, want ~1000", jit, usage.Instructions)
		}
		// Unlimited fuel must complete.
		ret, _, err := lc.Call("sumloop", []Value{IntVal(1000)}, nil)
		if err != nil || ret.I != 499500 {
			t.Errorf("jit=%v unlimited: %v, %v", jit, ret, err)
		}
	}
}

func TestMemoryLimit(t *testing.T) {
	// Allocate 100 arrays of `n` bytes in a loop.
	code := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 1).
		Label("loop").
		EmitU16(OpLoad, 1).EmitU16(OpLdc, 0).Emit(OpILt).
		Jump(OpJmpZ, "done").
		EmitU16(OpLoad, 0).Emit(OpBNew).Emit(OpPop).
		EmitU16(OpLoad, 1).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 1).
		Jump(OpJmp, "loop").
		Label("done").Emit(OpIConst0).Emit(OpRet).MustBytes()
	cls := buildClass("M", []Const{{Kind: ConstInt, Int: 100}}, Method{
		Name: "alloc", Params: []VType{TInt}, Locals: []VType{TInt, TInt},
		Return: TInt, MaxStack: 2, Code: code,
	})
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		lc := mustLoad(t, vm, fmt.Sprintf("m-%v", jit), cls)
		_, _, err := lc.Call("alloc", []Value{IntVal(1024)}, &CallOptions{
			Limits: Limits{MaxAllocBytes: 10 * 1024},
		})
		kind, ok := trapKind(err)
		if !ok || kind != TrapMemory {
			t.Errorf("jit=%v: err=%v, want memory trap", jit, err)
		}
		// Under the limit must succeed.
		_, usage, err := lc.Call("alloc", []Value{IntVal(10)}, &CallOptions{
			Limits: Limits{MaxAllocBytes: 10 * 1024},
		})
		if err != nil {
			t.Errorf("jit=%v small alloc: %v", jit, err)
		}
		if usage.AllocBytes != 1000 {
			t.Errorf("jit=%v AllocBytes = %d, want 1000", jit, usage.AllocBytes)
		}
	}
}

func TestCallDepthLimit(t *testing.T) {
	// infinite recursion: f() calls f().
	code := NewAssembler().EmitU16(OpCall, 0).Emit(OpRet).MustBytes()
	cls := buildClass("D", nil, Method{Name: "f", Return: TInt, MaxStack: 1, Code: code})
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		lc := mustLoad(t, vm, fmt.Sprintf("d-%v", jit), cls)
		_, usage, err := lc.Call("f", nil, &CallOptions{Limits: Limits{MaxCallDepth: 50}})
		kind, ok := trapKind(err)
		if !ok || kind != TrapDepth {
			t.Errorf("jit=%v: err=%v, want depth trap", jit, err)
		}
		if usage.MaxDepth != 50 {
			t.Errorf("jit=%v: MaxDepth=%d, want 50", jit, usage.MaxDepth)
		}
	}
}

// testCallback implements Callback over a byte slice.
type testCallback struct {
	data    []byte
	touches int
}

func (c *testCallback) Size(handle int64) (int64, error) { return int64(len(c.data)), nil }
func (c *testCallback) Get(handle, off int64) (byte, error) {
	if off < 0 || off >= int64(len(c.data)) {
		return 0, fmt.Errorf("offset %d out of range", off)
	}
	return c.data[off], nil
}
func (c *testCallback) Read(handle, off, n int64) ([]byte, error) {
	if off < 0 || off+n > int64(len(c.data)) || n < 0 {
		return nil, fmt.Errorf("range out of bounds")
	}
	out := make([]byte, n)
	copy(out, c.data[off:])
	return out, nil
}
func (c *testCallback) Touch(handle int64) error { c.touches++; return nil }

func nativeClass() *Class {
	consts := []Const{
		{Kind: ConstStr, Str: "cb.size"},
		{Kind: ConstStr, Str: "cb.get"},
		{Kind: ConstStr, Str: "cb.touch"},
		{Kind: ConstStr, Str: "file.open"},
		{Kind: ConstStr, Str: "/etc/passwd"},
		{Kind: ConstStr, Str: "cb.read"},
	}
	// size(handle) -> cb.size(handle)
	sizeCode := NewAssembler().EmitU16(OpLoad, 0).EmitNative(0, 1).Emit(OpRet).MustBytes()
	// get3(handle) -> cb.get(handle, 3)
	getCode := NewAssembler().
		EmitU16(OpLoad, 0).Emit(OpIConst1).Emit(OpIConst1).Emit(OpIAdd).Emit(OpIConst1).Emit(OpIAdd).
		EmitNative(1, 2).Emit(OpRet).MustBytes()
	// touchN(handle, n): call cb.touch n times, return 0.
	touchCode := NewAssembler().
		Emit(OpIConst0).EmitU16(OpStore, 2).
		Label("loop").
		EmitU16(OpLoad, 2).EmitU16(OpLoad, 1).Emit(OpILt).
		Jump(OpJmpZ, "done").
		EmitU16(OpLoad, 0).EmitNative(2, 1).Emit(OpPop).
		EmitU16(OpLoad, 2).Emit(OpIConst1).Emit(OpIAdd).EmitU16(OpStore, 2).
		Jump(OpJmp, "loop").
		Label("done").Emit(OpIConst0).Emit(OpRet).MustBytes()
	// evil(): file.open("/etc/passwd")
	evilCode := NewAssembler().EmitU16(OpLdc, 4).EmitNative(3, 1).Emit(OpRet).MustBytes()
	// readlen(handle): len(cb.read(handle, 1, 2))
	readCode := NewAssembler().
		EmitU16(OpLoad, 0).Emit(OpIConst1).Emit(OpIConst1).Emit(OpIConst1).Emit(OpIAdd).
		EmitNative(5, 3).Emit(OpBLen).Emit(OpRet).MustBytes()
	return buildClass("Native", consts,
		Method{Name: "size", Params: []VType{TInt}, Locals: []VType{TInt}, Return: TInt, MaxStack: 2, Code: sizeCode},
		Method{Name: "get3", Params: []VType{TInt}, Locals: []VType{TInt}, Return: TInt, MaxStack: 3, Code: getCode},
		Method{Name: "touchN", Params: []VType{TInt, TInt}, Locals: []VType{TInt, TInt, TInt}, Return: TInt, MaxStack: 2, Code: touchCode},
		Method{Name: "evil", Return: TInt, MaxStack: 1, Code: evilCode},
		Method{Name: "readlen", Params: []VType{TInt}, Locals: []VType{TInt}, Return: TInt, MaxStack: 4, Code: readCode},
	)
}

func TestNativeCallbacks(t *testing.T) {
	for _, jit := range []bool{false, true} {
		vm := New(Options{Security: DefaultPolicy(), DisableJIT: !jit})
		lc := mustLoad(t, vm, "cb", nativeClass())
		cb := &testCallback{data: []byte{10, 20, 30, 40, 50}}
		opts := &CallOptions{Callback: cb}

		ret, _, err := lc.Call("size", []Value{IntVal(1)}, opts)
		if err != nil || ret.I != 5 {
			t.Errorf("jit=%v size: %v, %v", jit, ret, err)
		}
		ret, _, err = lc.Call("get3", []Value{IntVal(1)}, opts)
		if err != nil || ret.I != 40 {
			t.Errorf("jit=%v get3: %v, %v", jit, ret, err)
		}
		ret, usage, err := lc.Call("touchN", []Value{IntVal(1), IntVal(7)}, opts)
		if err != nil || ret.I != 0 {
			t.Errorf("jit=%v touchN: %v, %v", jit, ret, err)
		}
		if usage.NativeCalls != 7 || cb.touches != 7 {
			t.Errorf("jit=%v: NativeCalls=%d touches=%d, want 7", jit, usage.NativeCalls, cb.touches)
		}
		cb.touches = 0
		ret, _, err = lc.Call("readlen", []Value{IntVal(1)}, opts)
		if err != nil || ret.I != 2 {
			t.Errorf("jit=%v readlen: %v, %v", jit, ret, err)
		}
	}
}

func TestSecurityManagerDeniesAndAudits(t *testing.T) {
	policy := DefaultPolicy()
	vm := New(Options{Security: policy})
	lc := mustLoad(t, vm, "sec", nativeClass())
	_, _, err := lc.Call("evil", nil, nil)
	kind, ok := trapKind(err)
	if !ok || kind != TrapSecurity {
		t.Fatalf("evil: err=%v, want security trap", err)
	}
	audit := policy.Audit()
	if len(audit) != 1 || !audit[0].Denied || audit[0].Class != "Native" || audit[0].Perm != PermFile {
		t.Errorf("audit trail wrong: %+v", audit)
	}
	// A permissive policy lets the call through to the (unimplemented)
	// native, which then fails as a native trap, not a security trap.
	_, _, err = lc.Call("evil", nil, &CallOptions{Security: AllowAll()})
	kind, ok = trapKind(err)
	if !ok || kind != TrapNative {
		t.Errorf("evil with AllowAll: err=%v, want native trap", err)
	}
}

func TestCallbackWithoutHandlerTraps(t *testing.T) {
	vm := New(Options{Security: DefaultPolicy()})
	lc := mustLoad(t, vm, "nocb", nativeClass())
	_, _, err := lc.Call("size", []Value{IntVal(1)}, nil)
	kind, ok := trapKind(err)
	if !ok || kind != TrapNative {
		t.Errorf("err=%v, want native trap", err)
	}
}

func TestCallArgValidation(t *testing.T) {
	vm := newTestVM(false)
	lc := mustLoad(t, vm, "args", buildClass("A", nil, addMethod()))
	if _, _, err := lc.Call("add", []Value{IntVal(1)}, nil); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, _, err := lc.Call("add", []Value{IntVal(1), FloatVal(2)}, nil); err == nil {
		t.Error("wrong arg type should fail")
	}
	if _, _, err := lc.Call("nosuch", nil, nil); err == nil {
		t.Error("missing method should fail")
	}
}

func TestLoaderNamespaceIsolation(t *testing.T) {
	vm := newTestVM(false)
	c1 := buildClass("Dup", nil, addMethod())
	c2 := buildClass("Dup", nil, sumLoopMethod())
	if _, err := vm.NewLoader("alice").LoadClass(c1); err != nil {
		t.Fatal(err)
	}
	// Same name in another namespace: fine.
	if _, err := vm.NewLoader("bob").LoadClass(c2); err != nil {
		t.Errorf("cross-namespace duplicate rejected: %v", err)
	}
	// Same name in the same namespace: rejected.
	if _, err := vm.NewLoader("alice").LoadClass(c2); err == nil {
		t.Error("same-namespace duplicate accepted")
	}
	// Lookups are namespace-scoped.
	a, _ := vm.NewLoader("alice").Lookup("Dup")
	b, _ := vm.NewLoader("bob").Lookup("Dup")
	if a == nil || b == nil || a == b {
		t.Error("namespaces not isolated")
	}
	if ns := vm.Namespaces(); len(ns) != 2 || ns[0] != "alice" || ns[1] != "bob" {
		t.Errorf("Namespaces = %v", ns)
	}
	vm.NewLoader("alice").Unload("Dup")
	if _, ok := vm.NewLoader("alice").Lookup("Dup"); ok {
		t.Error("unload failed")
	}
}

func TestLinkErrors(t *testing.T) {
	vm := newTestVM(false)
	// Unresolved native.
	badName := buildClass("L1", []Const{{Kind: ConstStr, Str: "no.such"}}, Method{
		Name: "m", Return: TInt, MaxStack: 1,
		Code: NewAssembler().EmitNative(0, 0).Emit(OpRet).MustBytes(),
	})
	if _, err := vm.NewLoader("l").LoadClass(badName); err == nil || !strings.Contains(err.Error(), "unresolved") {
		t.Errorf("unresolved native: %v", err)
	}
	// Arity mismatch with the registry.
	badArity := buildClass("L2", []Const{{Kind: ConstStr, Str: "cb.size"}}, Method{
		Name: "m", Return: TInt, MaxStack: 2,
		Code: NewAssembler().Emit(OpIConst0).Emit(OpIConst0).EmitNative(0, 2).Emit(OpRet).MustBytes(),
	})
	if _, err := vm.NewLoader("l").LoadClass(badArity); err == nil || !strings.Contains(err.Error(), "wants") {
		t.Errorf("native arity: %v", err)
	}
}

func TestClassFileRoundTrip(t *testing.T) {
	c := buildClass("RT",
		[]Const{
			{Kind: ConstInt, Int: -99},
			{Kind: ConstFloat, Float: 3.25},
			{Kind: ConstStr, Str: "hello"},
			{Kind: ConstBytes, Bytes: []byte{1, 2, 3}},
		},
		addMethod(), sumBytesMethod(),
	)
	data := EncodeClass(c)
	got, err := DecodeClass(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "RT" || len(got.Consts) != 4 || len(got.Methods) != 2 {
		t.Fatalf("decoded shape wrong: %+v", got)
	}
	if got.Consts[0].Int != -99 || got.Consts[1].Float != 3.25 ||
		got.Consts[2].Str != "hello" || string(got.Consts[3].Bytes) != "\x01\x02\x03" {
		t.Error("constants corrupted")
	}
	if got.Methods[1].Name != "sumbytes" || got.Methods[1].MaxStack != 3 {
		t.Error("method metadata corrupted")
	}
	// The decoded class must load and run.
	vm := newTestVM(false)
	lc, err := vm.NewLoader("rt").Load(data)
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := lc.Call("add", []Value{IntVal(2), IntVal(3)}, nil)
	if err != nil || ret.I != 5 {
		t.Errorf("decoded class misbehaves: %v, %v", ret, err)
	}
}

func TestDecodeClassRejectsCorruption(t *testing.T) {
	c := buildClass("C", []Const{{Kind: ConstStr, Str: "x"}}, addMethod())
	data := EncodeClass(c)
	if _, err := DecodeClass(data[:len(data)-3]); err == nil {
		t.Error("truncated class accepted")
	}
	bad := append([]byte{}, data...)
	bad[0] = 'X'
	if _, err := DecodeClass(bad); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := DecodeClass(append(data, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeClass(make([]byte, MaxClassFileSize+1)); err == nil {
		t.Error("oversized class accepted")
	}
}

func TestDisassembler(t *testing.T) {
	c := buildClass("Dis", []Const{{Kind: ConstStr, Str: "cb.size"}, {Kind: ConstInt, Int: 5}},
		sumLoopMethod(),
		Method{Name: "n", Params: []VType{TInt}, Locals: []VType{TInt}, Return: TInt, MaxStack: 2,
			Code: NewAssembler().EmitU16(OpLoad, 0).EmitNative(0, 1).Emit(OpRet).MustBytes()},
	)
	out := Disassemble(c, &c.Methods[0])
	for _, want := range []string{"sumloop", "load", "ilt", "jmpz", "ret", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
	out = Disassemble(c, &c.Methods[1])
	if !strings.Contains(out, "cb.size/1") {
		t.Errorf("native disassembly wrong:\n%s", out)
	}
}

func TestBoundaryConversion(t *testing.T) {
	cases := []struct {
		in   types.Value
		want Value
	}{
		{types.NewInt(5), IntVal(5)},
		{types.NewFloat(2.5), FloatVal(2.5)},
		{types.NewBool(true), IntVal(1)},
		{types.NewBool(false), IntVal(0)},
		{types.NewString("x"), StrVal("x")},
		{types.NewBytes([]byte{7}), BytesVal([]byte{7})},
	}
	for _, c := range cases {
		got, err := ToVM(c.in)
		if err != nil || got.T != c.want.T || got.I != c.want.I {
			t.Errorf("ToVM(%v) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ToVM(types.Null()); err == nil {
		t.Error("NULL should not convert")
	}
	back, err := FromVM(IntVal(1), types.KindBool)
	if err != nil || !back.Bool {
		t.Errorf("FromVM bool: %v, %v", back, err)
	}
	if _, err := FromVM(StrVal("x"), types.KindInt); err == nil {
		t.Error("type-mismatched FromVM should fail")
	}
	if v, err := FromVM(IntVal(3), types.KindFloat); err != nil || v.Float != 3 {
		t.Errorf("int->float widening: %v, %v", v, err)
	}
}

func TestForceInterpreterMatchesJIT(t *testing.T) {
	vm := newTestVM(false) // JIT on
	lc := mustLoad(t, vm, "fi", buildClass("FI", nil, sumLoopMethod(), fibMethodAt(1)))
	for _, m := range []struct {
		name string
		arg  int64
	}{{"sumloop", 500}, {"fib", 12}} {
		a, _, err1 := lc.Call(m.name, []Value{IntVal(m.arg)}, nil)
		b, _, err2 := lc.Call(m.name, []Value{IntVal(m.arg)}, &CallOptions{ForceInterpreter: true})
		if err1 != nil || err2 != nil || a.I != b.I {
			t.Errorf("%s: jit=%v(%v) interp=%v(%v)", m.name, a, err1, b, err2)
		}
	}
}

func TestMinInt64Division(t *testing.T) {
	// MinInt64 / -1 must not panic the host (Go would); it wraps.
	consts := []Const{{Kind: ConstInt, Int: -9223372036854775808}, {Kind: ConstInt, Int: -1}}
	div := NewAssembler().EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpIDiv).Emit(OpRet).MustBytes()
	mod := NewAssembler().EmitU16(OpLdc, 0).EmitU16(OpLdc, 1).Emit(OpIMod).Emit(OpRet).MustBytes()
	cls := buildClass("Min", consts,
		Method{Name: "div", Return: TInt, MaxStack: 2, Code: div},
		Method{Name: "mod", Return: TInt, MaxStack: 2, Code: mod},
	)
	for _, jit := range []bool{false, true} {
		vm := newTestVM(!jit)
		lc := mustLoad(t, vm, fmt.Sprintf("min-%v", jit), cls)
		ret, _, err := lc.Call("div", nil, nil)
		if err != nil || ret.I != -9223372036854775808 {
			t.Errorf("jit=%v div: %v, %v", jit, ret, err)
		}
		ret, _, err = lc.Call("mod", nil, nil)
		if err != nil || ret.I != 0 {
			t.Errorf("jit=%v mod: %v, %v", jit, ret, err)
		}
	}
}
