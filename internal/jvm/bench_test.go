package jvm

import (
	"fmt"
	"testing"
)

// Micro-benchmarks for the VM execution engines: the per-instruction
// dispatch cost and the effect of superinstruction fusion, measured
// without any database machinery around them.

func benchClass() *Class {
	return buildClass("Bench", nil, sumLoopMethod(), sumBytesMethod(), addMethod(), fibMethodAt(3))
}

func loadFor(b *testing.B, disableJIT bool) *LoadedClass {
	b.Helper()
	vm := New(Options{Security: AllowAll(), DisableJIT: disableJIT})
	lc, err := vm.NewLoader("bench").LoadClass(benchClass())
	if err != nil {
		b.Fatal(err)
	}
	return lc
}

// BenchmarkDispatchLoop measures a counting loop per engine: the
// closest thing to raw dispatch cost.
func BenchmarkDispatchLoop(b *testing.B) {
	const n = 10000
	for _, mode := range []struct {
		name string
		jit  bool
	}{{"jit", true}, {"interp", false}} {
		lc := loadFor(b, !mode.jit)
		b.Run(mode.name, func(b *testing.B) {
			args := []Value{IntVal(n)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := lc.Call("sumloop", args, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perIter := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / n
			b.ReportMetric(perIter, "ns/loop-iteration")
		})
	}
}

// BenchmarkByteAccess measures the bounds-checked data path (the Fig. 7
// inner loop) per engine.
func BenchmarkByteAccess(b *testing.B) {
	arr := make([]byte, 10000)
	for i := range arr {
		arr[i] = byte(i)
	}
	for _, mode := range []struct {
		name string
		jit  bool
	}{{"jit", true}, {"interp", false}} {
		lc := loadFor(b, !mode.jit)
		b.Run(mode.name, func(b *testing.B) {
			args := []Value{BytesVal(arr)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := lc.Call("sumbytes", args, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perByte := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(arr))
			b.ReportMetric(perByte, "ns/byte")
		})
	}
}

// BenchmarkInvocationOverhead measures the boundary-crossing cost of a
// minimal method call (the Fig. 5 effect at the VM level).
func BenchmarkInvocationOverhead(b *testing.B) {
	lc := loadFor(b, false)
	args := []Value{IntVal(1), IntVal(2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lc.Call("add", args, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMethodCalls measures OpCall frame setup via recursion.
func BenchmarkMethodCalls(b *testing.B) {
	lc := loadFor(b, false)
	args := []Value{IntVal(12)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := lc.Call("fib", args, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClassLoad measures the full verify+link+JIT pipeline.
func BenchmarkClassLoad(b *testing.B) {
	data := EncodeClass(benchClass())
	vm := New(Options{Security: AllowAll()})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loader := vm.NewLoader(fmt.Sprintf("l%d", i))
		if _, err := loader.Load(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVerifyOnly isolates the verifier.
func BenchmarkVerifyOnly(b *testing.B) {
	c := benchClass()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Verify(); err != nil {
			b.Fatal(err)
		}
	}
}
