// Package jvm implements the Jaguar Virtual Machine, the safe-language
// runtime that plays the role of the embedded JVM in the paper's
// Design 3 (and Design 4). It provides:
//
//   - a stack-based bytecode instruction set and a class-file format
//     (the ".jclass" analog of Java ".class" files),
//   - a load-time bytecode verifier (abstract interpretation of stack
//     and local types, jump-target and constant-pool validation),
//   - per-UDF class loaders with isolated namespaces,
//   - a security manager consulted on every native (callback) call,
//   - resource limits: instruction fuel, allocation-accounted memory,
//     and call-depth caps (the paper's §6.2 missing piece),
//   - a switch interpreter and a closure-threaded "JIT" compiler.
//
// All memory access performed by Jaguar code is bounds-checked at run
// time, which is precisely the safety cost the paper's Figure 7
// measures.
package jvm

import (
	"fmt"
)

// VType is the VM-level type of a stack slot or local variable.
type VType uint8

// VM value types. Booleans are represented as I (0/1) like the JVM.
const (
	TInt   VType = iota // 64-bit integer
	TFloat              // 64-bit float
	TStr                // immutable string
	TBytes              // mutable byte array reference
)

// String returns the mnemonic name of the type.
func (t VType) String() string {
	switch t {
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TStr:
		return "str"
	case TBytes:
		return "bytes"
	default:
		return fmt.Sprintf("vtype(%d)", uint8(t))
	}
}

// Opcode is a Jaguar VM instruction opcode.
type Opcode uint8

// The instruction set. Operand widths are fixed per opcode (see opInfo).
const (
	OpNop Opcode = iota

	// Constants and stack manipulation.
	OpLdc     // u16 cpIndex: push constant
	OpIConst0 // push int 0
	OpIConst1 // push int 1
	OpDup     // duplicate top of stack
	OpPop     // discard top of stack
	OpSwap    // swap top two (same type required)

	// Locals.
	OpLoad  // u16 local: push local
	OpStore // u16 local: pop into local

	// Integer arithmetic.
	OpIAdd
	OpISub
	OpIMul
	OpIDiv // traps on division by zero
	OpIMod // traps on division by zero
	OpINeg

	// Float arithmetic.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFNeg

	// Conversions.
	OpI2F
	OpF2I

	// Integer comparisons (push int 0/1).
	OpIEq
	OpINe
	OpILt
	OpILe
	OpIGt
	OpIGe

	// Float comparisons (push int 0/1).
	OpFEq
	OpFNe
	OpFLt
	OpFLe
	OpFGt
	OpFGe

	// String operations.
	OpSEq     // push int 0/1
	OpSLen    // push int
	OpSConcat // allocates; accounted against the memory limit

	// Byte-array operations (every access bounds-checked).
	OpBLen // arr -> int
	OpBGet // arr idx -> int; traps on out-of-bounds
	OpBSet // arr idx val -> ; traps on out-of-bounds or val out of 0..255
	OpBNew // size -> arr; allocates; traps on negative or over-limit size
	OpBEq  // arr arr -> int 0/1 (content equality)

	// Logic.
	OpNot // int -> int (0 -> 1, nonzero -> 0)

	// Control flow. Jump offsets are signed 32-bit, relative to the
	// start of the *next* instruction.
	OpJmp  // i32 rel
	OpJmpZ // i32 rel: pop int, jump if zero
	OpJmpN // i32 rel: pop int, jump if nonzero

	// Calls.
	OpCall   // u16 methodIndex: invoke sibling method in the same class
	OpNative // u16 cpIndex (name string), u8 argc: invoke native function
	OpRet    // return top of stack

	opMax // sentinel; not a real opcode
)

// opInfo describes static properties of each opcode.
type opInfo struct {
	name     string
	operands int // bytes of inline operands
}

var opTable = [opMax]opInfo{
	OpNop:     {"nop", 0},
	OpLdc:     {"ldc", 2},
	OpIConst0: {"iconst0", 0},
	OpIConst1: {"iconst1", 0},
	OpDup:     {"dup", 0},
	OpPop:     {"pop", 0},
	OpSwap:    {"swap", 0},
	OpLoad:    {"load", 2},
	OpStore:   {"store", 2},
	OpIAdd:    {"iadd", 0},
	OpISub:    {"isub", 0},
	OpIMul:    {"imul", 0},
	OpIDiv:    {"idiv", 0},
	OpIMod:    {"imod", 0},
	OpINeg:    {"ineg", 0},
	OpFAdd:    {"fadd", 0},
	OpFSub:    {"fsub", 0},
	OpFMul:    {"fmul", 0},
	OpFDiv:    {"fdiv", 0},
	OpFNeg:    {"fneg", 0},
	OpI2F:     {"i2f", 0},
	OpF2I:     {"f2i", 0},
	OpIEq:     {"ieq", 0},
	OpINe:     {"ine", 0},
	OpILt:     {"ilt", 0},
	OpILe:     {"ile", 0},
	OpIGt:     {"igt", 0},
	OpIGe:     {"ige", 0},
	OpFEq:     {"feq", 0},
	OpFNe:     {"fne", 0},
	OpFLt:     {"flt", 0},
	OpFLe:     {"fle", 0},
	OpFGt:     {"fgt", 0},
	OpFGe:     {"fge", 0},
	OpSEq:     {"seq", 0},
	OpSLen:    {"slen", 0},
	OpSConcat: {"sconcat", 0},
	OpBLen:    {"blen", 0},
	OpBGet:    {"bget", 0},
	OpBSet:    {"bset", 0},
	OpBNew:    {"bnew", 0},
	OpBEq:     {"beq", 0},
	OpNot:     {"not", 0},
	OpJmp:     {"jmp", 4},
	OpJmpZ:    {"jmpz", 4},
	OpJmpN:    {"jmpn", 4},
	OpCall:    {"call", 2},
	OpNative:  {"native", 3},
	OpRet:     {"ret", 0},
}

// Name returns the opcode mnemonic.
func (op Opcode) Name() string {
	if op < opMax && opTable[op].name != "" {
		return opTable[op].name
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return op < opMax && opTable[op].name != ""
}

// OperandBytes returns the number of inline operand bytes.
func (op Opcode) OperandBytes() int {
	if !op.Valid() {
		return 0
	}
	return opTable[op].operands
}

// ConstKind tags constant-pool entries.
type ConstKind uint8

// Constant pool entry kinds.
const (
	ConstInt ConstKind = iota
	ConstFloat
	ConstStr
	ConstBytes
)

// Const is a constant-pool entry.
type Const struct {
	Kind  ConstKind
	Int   int64
	Float float64
	Str   string
	Bytes []byte
}

// VType returns the VM type a constant pushes.
func (c Const) VType() VType {
	switch c.Kind {
	case ConstInt:
		return TInt
	case ConstFloat:
		return TFloat
	case ConstStr:
		return TStr
	default:
		return TBytes
	}
}

// Method is one function of a Jaguar class. Parameters occupy the first
// len(Params) locals; the verifier enforces the declared local types.
type Method struct {
	Name      string
	Params    []VType // parameter types (locals 0..len-1)
	Locals    []VType // all local types, including parameters
	Return    VType
	MaxStack  int // declared operand-stack bound, enforced by verifier
	Code      []byte
	NativeRef []string // populated by the loader: resolved native names (debug)
}

// Class is a loaded (or loadable) unit: a named bundle of constants
// and methods, the Jaguar analog of a Java class file.
type Class struct {
	Name    string
	Consts  []Const
	Methods []Method
}

// MethodIndex returns the index of the named method, or -1.
func (c *Class) MethodIndex(name string) int {
	for i := range c.Methods {
		if c.Methods[i].Name == name {
			return i
		}
	}
	return -1
}
