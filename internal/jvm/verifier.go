package jvm

import (
	"encoding/binary"
	"fmt"
)

// MaxStackLimit bounds the per-method operand stack the verifier will
// accept, independent of what the class file declares.
const MaxStackLimit = 4096

// MaxLocalsLimit bounds per-method local-variable counts.
const MaxLocalsLimit = 4096

// VerifyError describes a verification failure with its location.
type VerifyError struct {
	Class  string
	Method string
	PC     int
	Reason string
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("jvm: verify %s.%s at pc %d: %s", e.Class, e.Method, e.PC, e.Reason)
}

// Verify checks every method of the class: opcode validity, operand
// bounds, jump-target alignment, constant-pool and local indexes,
// operand-stack typing (by abstract interpretation with a worklist),
// declared stack bounds, and that no path falls off the end of the
// code. A class that passes Verify cannot underflow or overflow its
// stack, cannot read or write out-of-range locals, and can only fail
// at run time with the checked traps (bounds, division, resources).
func (c *Class) Verify() error {
	if c.Name == "" {
		return fmt.Errorf("jvm: verify: class has no name")
	}
	if len(c.Methods) == 0 {
		return fmt.Errorf("jvm: verify %s: class has no methods", c.Name)
	}
	for i := range c.Methods {
		if err := verifyMethod(c, i); err != nil {
			return err
		}
	}
	return nil
}

// instruction boundaries: pc -> true if an instruction starts there.
func instructionStarts(code []byte) (map[int]bool, error) {
	starts := make(map[int]bool)
	pc := 0
	for pc < len(code) {
		op := Opcode(code[pc])
		if !op.Valid() {
			return nil, fmt.Errorf("invalid opcode %d at pc %d", code[pc], pc)
		}
		starts[pc] = true
		pc += 1 + op.OperandBytes()
	}
	if pc != len(code) {
		return nil, fmt.Errorf("truncated instruction at end of code")
	}
	return starts, nil
}

func verifyMethod(c *Class, mi int) error {
	m := &c.Methods[mi]
	fail := func(pc int, format string, args ...any) error {
		return &VerifyError{Class: c.Name, Method: m.Name, PC: pc, Reason: fmt.Sprintf(format, args...)}
	}
	if len(m.Code) == 0 {
		return fail(0, "empty code")
	}
	if m.MaxStack < 0 || m.MaxStack > MaxStackLimit {
		return fail(0, "declared max stack %d out of range", m.MaxStack)
	}
	if len(m.Locals) > MaxLocalsLimit {
		return fail(0, "%d locals exceed the limit", len(m.Locals))
	}
	if len(m.Params) > len(m.Locals) {
		return fail(0, "%d params but only %d locals", len(m.Params), len(m.Locals))
	}
	for i, p := range m.Params {
		if m.Locals[i] != p {
			return fail(0, "local %d type %s does not match param type %s", i, m.Locals[i], p)
		}
	}
	for i, l := range m.Locals {
		if l > TBytes {
			return fail(0, "local %d has invalid type %d", i, l)
		}
	}
	if m.Return > TBytes {
		return fail(0, "invalid return type %d", m.Return)
	}

	starts, err := instructionStarts(m.Code)
	if err != nil {
		return fail(0, "%s", err)
	}

	// Abstract interpretation. entry[pc] holds the stack-type state at
	// the entry of each reachable instruction.
	entry := make(map[int][]VType)
	entry[0] = []VType{}
	work := []int{0}

	// push a successor state; states at join points must agree exactly.
	flow := func(pc int, state []VType) error {
		if !starts[pc] {
			return fail(pc, "jump or fall-through into the middle of an instruction")
		}
		if prev, seen := entry[pc]; seen {
			if len(prev) != len(state) {
				return fail(pc, "inconsistent stack depth at join (%d vs %d)", len(prev), len(state))
			}
			for i := range prev {
				if prev[i] != state[i] {
					return fail(pc, "inconsistent stack type at join slot %d (%s vs %s)", i, prev[i], state[i])
				}
			}
			return nil
		}
		entry[pc] = state
		work = append(work, pc)
		return nil
	}

	for len(work) > 0 {
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		// Copy the entry state into a mutable stack.
		stack := append([]VType(nil), entry[pc]...)
		op := Opcode(m.Code[pc])
		next := pc + 1 + op.OperandBytes()

		pop := func(want VType) error {
			if len(stack) == 0 {
				return fail(pc, "%s: stack underflow", op.Name())
			}
			got := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if got != want {
				return fail(pc, "%s: expected %s on stack, found %s", op.Name(), want, got)
			}
			return nil
		}
		popAny := func() (VType, error) {
			if len(stack) == 0 {
				return 0, fail(pc, "%s: stack underflow", op.Name())
			}
			got := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			return got, nil
		}
		push := func(t VType) error {
			stack = append(stack, t)
			if len(stack) > m.MaxStack {
				return fail(pc, "%s: stack grows past declared max %d", op.Name(), m.MaxStack)
			}
			return nil
		}
		u16 := func() int { return int(binary.LittleEndian.Uint16(m.Code[pc+1:])) }
		rel := func() int {
			return next + int(int32(binary.LittleEndian.Uint32(m.Code[pc+1:])))
		}

		var verr error
		binaryOp := func(t VType) {
			if verr == nil {
				verr = pop(t)
			}
			if verr == nil {
				verr = pop(t)
			}
			if verr == nil {
				verr = push(t)
			}
		}
		compareOp := func(t VType) {
			if verr == nil {
				verr = pop(t)
			}
			if verr == nil {
				verr = pop(t)
			}
			if verr == nil {
				verr = push(TInt)
			}
		}
		terminal := false

		switch op {
		case OpNop:
		case OpLdc:
			idx := u16()
			if idx >= len(c.Consts) {
				return fail(pc, "ldc: constant index %d out of range (%d consts)", idx, len(c.Consts))
			}
			verr = push(c.Consts[idx].VType())
		case OpIConst0, OpIConst1:
			verr = push(TInt)
		case OpDup:
			if len(stack) == 0 {
				return fail(pc, "dup: stack underflow")
			}
			verr = push(stack[len(stack)-1])
		case OpPop:
			_, verr = popAny()
		case OpSwap:
			if len(stack) < 2 {
				return fail(pc, "swap: stack underflow")
			}
			stack[len(stack)-1], stack[len(stack)-2] = stack[len(stack)-2], stack[len(stack)-1]
		case OpLoad:
			idx := u16()
			if idx >= len(m.Locals) {
				return fail(pc, "load: local %d out of range (%d locals)", idx, len(m.Locals))
			}
			verr = push(m.Locals[idx])
		case OpStore:
			idx := u16()
			if idx >= len(m.Locals) {
				return fail(pc, "store: local %d out of range (%d locals)", idx, len(m.Locals))
			}
			verr = pop(m.Locals[idx])
		case OpIAdd, OpISub, OpIMul, OpIDiv, OpIMod:
			binaryOp(TInt)
		case OpINeg:
			verr = pop(TInt)
			if verr == nil {
				verr = push(TInt)
			}
		case OpFAdd, OpFSub, OpFMul, OpFDiv:
			binaryOp(TFloat)
		case OpFNeg:
			verr = pop(TFloat)
			if verr == nil {
				verr = push(TFloat)
			}
		case OpI2F:
			verr = pop(TInt)
			if verr == nil {
				verr = push(TFloat)
			}
		case OpF2I:
			verr = pop(TFloat)
			if verr == nil {
				verr = push(TInt)
			}
		case OpIEq, OpINe, OpILt, OpILe, OpIGt, OpIGe:
			compareOp(TInt)
		case OpFEq, OpFNe, OpFLt, OpFLe, OpFGt, OpFGe:
			compareOp(TFloat)
		case OpSEq:
			compareOp(TStr)
		case OpSLen:
			verr = pop(TStr)
			if verr == nil {
				verr = push(TInt)
			}
		case OpSConcat:
			verr = pop(TStr)
			if verr == nil {
				verr = pop(TStr)
			}
			if verr == nil {
				verr = push(TStr)
			}
		case OpBLen:
			verr = pop(TBytes)
			if verr == nil {
				verr = push(TInt)
			}
		case OpBGet:
			verr = pop(TInt)
			if verr == nil {
				verr = pop(TBytes)
			}
			if verr == nil {
				verr = push(TInt)
			}
		case OpBSet:
			verr = pop(TInt) // value
			if verr == nil {
				verr = pop(TInt) // index
			}
			if verr == nil {
				verr = pop(TBytes)
			}
		case OpBNew:
			verr = pop(TInt)
			if verr == nil {
				verr = push(TBytes)
			}
		case OpBEq:
			compareOp(TBytes)
		case OpNot:
			verr = pop(TInt)
			if verr == nil {
				verr = push(TInt)
			}
		case OpJmp:
			target := rel()
			if target < 0 || target >= len(m.Code) {
				return fail(pc, "jmp: target %d out of range", target)
			}
			if err := flow(target, stack); err != nil {
				return err
			}
			terminal = true
		case OpJmpZ, OpJmpN:
			verr = pop(TInt)
			if verr == nil {
				target := rel()
				if target < 0 || target >= len(m.Code) {
					return fail(pc, "%s: target %d out of range", op.Name(), target)
				}
				if err := flow(target, stack); err != nil {
					return err
				}
			}
		case OpCall:
			idx := u16()
			if idx >= len(c.Methods) {
				return fail(pc, "call: method index %d out of range", idx)
			}
			callee := &c.Methods[idx]
			for i := len(callee.Params) - 1; i >= 0; i-- {
				if verr == nil {
					verr = pop(callee.Params[i])
				}
			}
			if verr == nil {
				verr = push(callee.Return)
			}
		case OpNative:
			idx := u16()
			argc := int(m.Code[pc+3])
			if idx >= len(c.Consts) || c.Consts[idx].Kind != ConstStr {
				return fail(pc, "native: constant %d is not a string name", idx)
			}
			// Native signatures are dynamic at the VM level (like JNI);
			// we only verify arity against the stack and let the native
			// registry type-check at link/call time. Arguments may be
			// any type; the result is typed by convention from the name
			// registry, checked by the loader. Here: pop argc, push int
			// unless the loader recorded a different result type — the
			// verifier uses the conservative NativeResultType hook.
			for i := 0; i < argc; i++ {
				if _, err := popAny(); err != nil {
					return err
				}
			}
			verr = push(nativeResultType(c.Consts[idx].Str))
		case OpRet:
			verr = pop(m.Return)
			if verr == nil && len(stack) != 0 {
				return fail(pc, "ret with %d values left on stack", len(stack))
			}
			terminal = true
		default:
			return fail(pc, "unhandled opcode %s", op.Name())
		}
		if verr != nil {
			return verr
		}
		if !terminal {
			if next >= len(m.Code) {
				return fail(pc, "control falls off the end of the code")
			}
			if err := flow(next, stack); err != nil {
				return err
			}
		}
	}
	return nil
}

// nativeResultType gives the verifier the result type of well-known
// native functions. Unknown natives default to int; the loader rejects
// natives that are not registered, so this default can never cause an
// unsound execution — linking fails first.
func nativeResultType(name string) VType {
	if t, ok := nativeSignatures[name]; ok {
		return t
	}
	return TInt
}

// nativeSignatures lists result types of the built-in native API that
// UDFs may call (subject to the security manager).
var nativeSignatures = map[string]VType{
	"cb.size":    TInt,   // cb.size(handle) -> total object size
	"cb.get":     TInt,   // cb.get(handle, offset) -> byte value
	"cb.read":    TBytes, // cb.read(handle, offset, len) -> bytes
	"cb.touch":   TInt,   // cb.touch(handle) -> 0; pure boundary crossing
	"sys.log":    TInt,   // sys.log(str) -> 0
	"sys.time":   TInt,   // sys.time() -> wall clock nanos (often denied)
	"file.open":  TInt,   // always denied by default policy; exists to test the security manager
	"file.write": TInt,   // likewise
}
