package jvm

import (
	"fmt"
	"math"
)

// TrapKind classifies run-time traps raised by Jaguar code. Traps are
// always contained: they abort the UDF invocation with an error and
// never damage the hosting server (the paper's central security goal).
type TrapKind uint8

// Trap kinds.
const (
	TrapBounds   TrapKind = iota // array index out of range
	TrapDivZero                  // integer division or modulo by zero
	TrapValue                    // value out of domain (e.g. byte store > 255)
	TrapFuel                     // instruction budget exhausted
	TrapMemory                   // allocation budget exhausted
	TrapDepth                    // call depth exceeded
	TrapSecurity                 // security manager denied an operation
	TrapNative                   // a native function reported an error
)

// String names the trap kind.
func (k TrapKind) String() string {
	switch k {
	case TrapBounds:
		return "bounds"
	case TrapDivZero:
		return "divide-by-zero"
	case TrapValue:
		return "value"
	case TrapFuel:
		return "fuel"
	case TrapMemory:
		return "memory"
	case TrapDepth:
		return "call-depth"
	case TrapSecurity:
		return "security"
	case TrapNative:
		return "native"
	default:
		return fmt.Sprintf("trap(%d)", uint8(k))
	}
}

// Trap is a contained run-time failure of Jaguar code.
type Trap struct {
	Kind   TrapKind
	Class  string
	Method string
	Detail string
}

// Error implements the error interface.
func (t *Trap) Error() string {
	return fmt.Sprintf("jvm: %s trap in %s.%s: %s", t.Kind, t.Class, t.Method, t.Detail)
}

// Limits is the per-invocation resource policy. The zero value means
// "unlimited", matching the paper's observation that 1998 JVMs had no
// resource management; production deployments should always set it.
type Limits struct {
	// Fuel bounds the number of VM instructions executed (0 = unlimited).
	Fuel int64
	// MaxAllocBytes bounds bytes allocated by bnew/sconcat/cb.read
	// (0 = unlimited).
	MaxAllocBytes int64
	// MaxCallDepth bounds method-call nesting (0 = default of 256).
	MaxCallDepth int
}

// DefaultCallDepth is used when Limits.MaxCallDepth is zero.
const DefaultCallDepth = 256

// Usage reports the resources a UDF invocation actually consumed; it is
// the accounting side of the paper's §6.2 proposal (J-Kernel style).
type Usage struct {
	Instructions int64
	AllocBytes   int64
	NativeCalls  int64
	MaxDepth     int
}

// Add accumulates another usage record (for per-query aggregation).
func (u *Usage) Add(o Usage) {
	u.Instructions += o.Instructions
	u.AllocBytes += o.AllocBytes
	u.NativeCalls += o.NativeCalls
	if o.MaxDepth > u.MaxDepth {
		u.MaxDepth = o.MaxDepth
	}
}

// fuelBudget converts a Limits fuel figure to an internal countdown.
func (l Limits) fuelBudget() int64 {
	if l.Fuel <= 0 {
		return math.MaxInt64
	}
	return l.Fuel
}

func (l Limits) memBudget() int64 {
	if l.MaxAllocBytes <= 0 {
		return math.MaxInt64
	}
	return l.MaxAllocBytes
}

func (l Limits) depthBudget() int {
	if l.MaxCallDepth <= 0 {
		return DefaultCallDepth
	}
	return l.MaxCallDepth
}
