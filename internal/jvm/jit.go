package jvm

import "math"

// The "JIT" analog.
//
// A real JVM JIT compiles bytecode to machine code. Pure Go cannot emit
// machine code from the stdlib, so the Jaguar JIT is a closure-threaded
// template compiler, built in two stages at class-load time:
//
//  1. every instruction becomes a Go closure with operands pre-resolved
//     (constants fetched, jump targets bound, natives linked), and
//  2. a superinstruction (fusion) pass recognizes verified multi-
//     instruction templates — "c = a op b", "c = a + arr[i]",
//     "if (i < len(arr)) ..." — and collapses each into a single
//     closure operating directly on locals, eliminating the operand-
//     stack traffic entirely for those sequences.
//
// Fusion is sound because the verifier has already fixed the type of
// every local and every stack slot: a template that loads two int
// locals and adds them cannot observe anything but ints. Fusion never
// spans a jump target, so control flow always enters at a closure
// boundary. Fuel accounting stays exact: a fused closure pre-charges
// the instructions it absorbed.
//
// What remains versus a real JIT is one indirect call per (possibly
// fused) instruction; EXPERIMENTS.md quantifies the honest gap.

// jitOp executes one (possibly fused) instruction and returns the next
// closure index, or a negative sentinel.
type jitOp func(fr *jframe) int32

const (
	jitRet  int32 = -1 // return; fr.ret holds the result
	jitTrap int32 = -2 // trap; fr.err holds the error
)

// jframe is the mutable frame state a jitOp operates on.
type jframe struct {
	e      *exec
	lm     *loadedMethod
	locals []Value
	stack  []Value
	sp     int
	ret    Value
	err    error
}

func (fr *jframe) trapf(kind TrapKind, detail string) int32 {
	fr.err = &Trap{Kind: kind, Class: fr.e.lc.class.Name, Method: fr.lm.m.Name, Detail: detail}
	return jitTrap
}

// runJIT executes a JIT-compiled method.
func (e *exec) runJIT(lm *loadedMethod, args []Value) (Value, error) {
	fr := jframe{
		e:      e,
		lm:     lm,
		locals: make([]Value, len(lm.m.Locals)),
		stack:  make([]Value, lm.m.MaxStack),
	}
	copy(fr.locals, args)
	code := lm.jit
	ip := int32(0)
	for ip >= 0 {
		e.fuel--
		if e.fuel < 0 {
			return Value{}, e.trap(TrapFuel, lm.m.Name, "instruction budget exhausted")
		}
		ip = code[ip](&fr)
	}
	if ip == jitTrap {
		return Value{}, fr.err
	}
	return fr.ret, nil
}

// Fusion planning

// fuseKind identifies a superinstruction template.
type fuseKind uint8

const (
	fuseNone     fuseKind = iota
	fuseStore3            // Load a; Load b; iop;  Store c        => c = a op b
	fuseStore3K           // Load a; <int const>; iop; Store c    => c = a op k
	fuseAccBGet           // Load a; Load arr; Load i; BGet; IAdd; Store c => c = a + arr[i]
	fuseCmpBr             // Load a; Load b; icmp; JmpZ/N t
	fuseCmpBrK            // Load a; <int const>; icmp; JmpZ/N t
	fuseCmpLen            // Load i; Load arr; BLen; ILt; JmpZ t  => while (i < len(arr))
	fuseRetLocal          // Load a; Ret
)

// fgroup is one closure-to-be: n source instructions from start.
type fgroup struct {
	start int
	n     int
	kind  fuseKind
}

// intConst reports whether in pushes an int constant, and its value.
func intConst(lc *LoadedClass, in instr) (int64, bool) {
	switch in.op {
	case OpIConst0:
		return 0, true
	case OpIConst1:
		return 1, true
	case OpLdc:
		k := lc.class.Consts[in.a]
		if k.Kind == ConstInt {
			return k.Int, true
		}
	}
	return 0, false
}

// intBinop maps fusable int arithmetic to an evaluator. Division and
// modulo are excluded (trap paths stay on the generic closures).
func intBinop(op Opcode) (func(a, b int64) int64, bool) {
	switch op {
	case OpIAdd:
		return func(a, b int64) int64 { return a + b }, true
	case OpISub:
		return func(a, b int64) int64 { return a - b }, true
	case OpIMul:
		return func(a, b int64) int64 { return a * b }, true
	}
	return nil, false
}

// intCmp maps comparison opcodes to predicates.
func intCmp(op Opcode) (func(a, b int64) bool, bool) {
	switch op {
	case OpIEq:
		return func(a, b int64) bool { return a == b }, true
	case OpINe:
		return func(a, b int64) bool { return a != b }, true
	case OpILt:
		return func(a, b int64) bool { return a < b }, true
	case OpILe:
		return func(a, b int64) bool { return a <= b }, true
	case OpIGt:
		return func(a, b int64) bool { return a > b }, true
	case OpIGe:
		return func(a, b int64) bool { return a >= b }, true
	}
	return nil, false
}

// planGroups tiles the instruction stream with templates. A template
// may not contain a jump target anywhere but its first instruction.
func planGroups(lc *LoadedClass, lm *loadedMethod) []fgroup {
	ins := lm.instrs
	isTarget := make([]bool, len(ins))
	for _, in := range ins {
		switch in.op {
		case OpJmp, OpJmpZ, OpJmpN:
			isTarget[in.a] = true
		}
	}
	localIsInt := func(idx int32) bool { return lm.m.Locals[idx] == TInt }
	localIsBytes := func(idx int32) bool { return lm.m.Locals[idx] == TBytes }
	// clear reports whether ins[i+1 .. i+n-1] are free of jump targets.
	clear := func(i, n int) bool {
		if i+n > len(ins) {
			return false
		}
		for k := 1; k < n; k++ {
			if isTarget[i+k] {
				return false
			}
		}
		return true
	}
	match := func(i int) fgroup {
		in := ins[i]
		if in.op != OpLoad {
			return fgroup{start: i, n: 1, kind: fuseNone}
		}
		// fuseAccBGet: Load a; Load arr; Load i; BGet; IAdd; Store c
		if clear(i, 6) && localIsInt(in.a) &&
			ins[i+1].op == OpLoad && localIsBytes(ins[i+1].a) &&
			ins[i+2].op == OpLoad && localIsInt(ins[i+2].a) &&
			ins[i+3].op == OpBGet && ins[i+4].op == OpIAdd &&
			ins[i+5].op == OpStore && localIsInt(ins[i+5].a) {
			return fgroup{start: i, n: 6, kind: fuseAccBGet}
		}
		// fuseCmpLen: Load i; Load arr; BLen; ILt; JmpZ t
		if clear(i, 5) && localIsInt(in.a) &&
			ins[i+1].op == OpLoad && localIsBytes(ins[i+1].a) &&
			ins[i+2].op == OpBLen && ins[i+3].op == OpILt &&
			(ins[i+4].op == OpJmpZ || ins[i+4].op == OpJmpN) {
			return fgroup{start: i, n: 5, kind: fuseCmpLen}
		}
		if clear(i, 4) && localIsInt(in.a) {
			second := ins[i+1]
			_, isK := intConst(lc, second)
			isL := second.op == OpLoad && localIsInt(second.a)
			if isK || isL {
				third, fourth := ins[i+2], ins[i+3]
				if _, ok := intBinop(third.op); ok && fourth.op == OpStore && localIsInt(fourth.a) {
					if isL {
						return fgroup{start: i, n: 4, kind: fuseStore3}
					}
					return fgroup{start: i, n: 4, kind: fuseStore3K}
				}
				if _, ok := intCmp(third.op); ok && (fourth.op == OpJmpZ || fourth.op == OpJmpN) {
					if isL {
						return fgroup{start: i, n: 4, kind: fuseCmpBr}
					}
					return fgroup{start: i, n: 4, kind: fuseCmpBrK}
				}
			}
		}
		// fuseRetLocal: Load a; Ret
		if clear(i, 2) && ins[i+1].op == OpRet {
			return fgroup{start: i, n: 2, kind: fuseRetLocal}
		}
		return fgroup{start: i, n: 1, kind: fuseNone}
	}
	var groups []fgroup
	for i := 0; i < len(ins); {
		g := match(i)
		groups = append(groups, g)
		i += g.n
	}
	return fuseLoops(ins, isTarget, groups)
}

// Loop superinstructions (trace-JIT style): when a whole verified loop
// matches one of two hot idioms, the entire loop compiles to a native
// Go loop inside a single closure, with fuel charged in bounded chunks
// so denial-of-service containment stays intact:
//
//	byte-sum:  while (i < len(arr)) { acc = acc + arr[i]; i = i + 1; }
//	counting:  while (i < n)        { <one fused store>; i = i + 1; }
//
// These are the inner loops of data-intensive and compute-intensive
// UDFs respectively (and of the paper's generic benchmark UDF). The
// bounds check inside the byte-sum loop is provably subsumed by the
// loop condition, so the compiled loop elides it — exactly the
// bounds-check hoisting a real JIT performs.
const (
	fuseLoopByteSum fuseKind = 100 + iota
	fuseLoopCount
)

// fuseLoops rewrites group sequences matching the loop idioms. A loop
// is fusable only when no jump from elsewhere lands inside it (the
// header may be a target — it is the loop entry).
func fuseLoops(ins []instr, isTarget []bool, groups []fgroup) []fgroup {
	var out []fgroup
	for gi := 0; gi < len(groups); {
		g := groups[gi]
		if lg, n, ok := matchLoop(ins, isTarget, groups, gi); ok {
			out = append(out, lg)
			gi += n
			continue
		}
		out = append(out, g)
		gi++
	}
	return out
}

// matchLoop tries to match a loop starting at group index gi.
func matchLoop(ins []instr, isTarget []bool, groups []fgroup, gi int) (fgroup, int, bool) {
	// Shape: header(cond, exit) body... incr backjump, where exit is
	// the instruction right after the backjump.
	if gi+2 >= len(groups) {
		return fgroup{}, 0, false
	}
	h := groups[gi]
	if h.kind != fuseCmpLen && h.kind != fuseCmpBr && h.kind != fuseCmpBrK {
		return fgroup{}, 0, false
	}
	// Header must end in JmpZ (exit when condition false) with ILt.
	hEnd := h.start + h.n - 1
	if ins[hEnd].op != OpJmpZ {
		return fgroup{}, 0, false
	}
	cmpOp := ins[h.start+h.n-2].op
	if h.kind != fuseCmpLen && cmpOp != OpILt {
		return fgroup{}, 0, false
	}
	exitTarget := int(ins[hEnd].a)
	// Find the backjump group: scan forward over at most 2 body groups
	// plus the jump.
	for bodyLen := 1; bodyLen <= 2; bodyLen++ {
		ji := gi + 1 + bodyLen
		if ji >= len(groups) {
			return fgroup{}, 0, false
		}
		j := groups[ji]
		if j.kind != fuseNone || ins[j.start].op != OpJmp || int(ins[j.start].a) != h.start {
			continue
		}
		// The loop exit must be the instruction right after the jump.
		if exitTarget != j.start+j.n {
			return fgroup{}, 0, false
		}
		// Interior groups must be fused stores and must not be jump
		// targets (no continue/break into the middle).
		body := groups[gi+1 : ji]
		okBody := true
		for _, b := range body {
			if b.kind != fuseStore3 && b.kind != fuseStore3K && b.kind != fuseAccBGet {
				okBody = false
				break
			}
			if isTarget[b.start] {
				okBody = false
				break
			}
		}
		if !okBody || isTarget[j.start] {
			return fgroup{}, 0, false
		}
		// Last body statement must be the induction increment i = i + 1.
		last := body[len(body)-1]
		i0 := ins[h.start].a // induction variable (header's first load)
		if last.kind != fuseStore3K {
			return fgroup{}, 0, false
		}
		if ins[last.start].a != i0 || ins[last.start+3].a != i0 {
			return fgroup{}, 0, false
		}
		if ins[last.start+1].op != OpIConst1 || ins[last.start+2].op != OpIAdd {
			return fgroup{}, 0, false
		}
		totalN := (j.start + j.n) - h.start
		switch {
		case h.kind == fuseCmpLen && len(body) == 2 && body[0].kind == fuseAccBGet:
			// acc = acc + arr[i]: locals must line up with the header.
			b0 := body[0]
			arrH := ins[h.start+1].a
			if ins[b0.start+1].a != arrH || ins[b0.start+2].a != i0 ||
				ins[b0.start].a != ins[b0.start+5].a {
				return fgroup{}, 0, false
			}
			return fgroup{start: h.start, n: totalN, kind: fuseLoopByteSum}, 1 + len(body) + 1, true
		case (h.kind == fuseCmpBr || h.kind == fuseCmpBrK) && len(body) == 2 &&
			(body[0].kind == fuseStore3 || body[0].kind == fuseStore3K):
			// One fused statement + increment. The statement must not
			// write the induction variable or the loop bound.
			if ins[body[0].start+3].a == i0 {
				return fgroup{}, 0, false
			}
			if h.kind == fuseCmpBr && ins[body[0].start+3].a == ins[h.start+1].a {
				return fgroup{}, 0, false
			}
			return fgroup{start: h.start, n: totalN, kind: fuseLoopCount}, 1 + len(body) + 1, true
		}
	}
	return fgroup{}, 0, false
}

// compileJIT translates a linked, verified method into closure-threaded
// code with superinstruction fusion.
func compileJIT(lc *LoadedClass, lm *loadedMethod) []jitOp {
	groups := planGroups(lc, lm)
	// Map old instruction indexes to group indexes (jump targets are
	// always group starts by construction).
	oldToNew := make([]int32, len(lm.instrs)+1)
	for i := range oldToNew {
		oldToNew[i] = -1
	}
	for gi, g := range groups {
		oldToNew[g.start] = int32(gi)
	}
	oldToNew[len(lm.instrs)] = int32(len(groups)) // virtual end
	code := make([]jitOp, len(groups))
	for gi, g := range groups {
		next := int32(gi + 1)
		if g.kind == fuseNone {
			code[gi] = compileOne(lc, lm, lm.instrs[g.start], next, oldToNew)
			continue
		}
		code[gi] = compileFused(lc, lm, g, next, oldToNew)
	}
	return code
}

// compileFused emits the closure for a superinstruction template.
func compileFused(lc *LoadedClass, lm *loadedMethod, g fgroup, next int32, oldToNew []int32) jitOp {
	ins := lm.instrs
	i := g.start
	extra := int64(g.n - 1) // instructions absorbed beyond the dispatch charge
	switch g.kind {
	case fuseStore3:
		a, b2, c := ins[i].a, ins[i+1].a, ins[i+3].a
		f, _ := intBinop(ins[i+2].op)
		return func(fr *jframe) int32 {
			fr.e.fuel -= extra
			fr.locals[c] = Value{T: TInt, I: f(fr.locals[a].I, fr.locals[b2].I)}
			return next
		}
	case fuseStore3K:
		a, c := ins[i].a, ins[i+3].a
		k, _ := intConst(lc, ins[i+1])
		f, _ := intBinop(ins[i+2].op)
		return func(fr *jframe) int32 {
			fr.e.fuel -= extra
			fr.locals[c] = Value{T: TInt, I: f(fr.locals[a].I, k)}
			return next
		}
	case fuseAccBGet:
		a, arr, idx, c := ins[i].a, ins[i+1].a, ins[i+2].a, ins[i+5].a
		return func(fr *jframe) int32 {
			fr.e.fuel -= extra
			data := fr.locals[arr].B
			j := fr.locals[idx].I
			if j < 0 || j >= int64(len(data)) {
				return fr.trapf(TrapBounds, "bget index out of range")
			}
			fr.locals[c] = Value{T: TInt, I: fr.locals[a].I + int64(data[j])}
			return next
		}
	case fuseCmpBr, fuseCmpBrK:
		a := ins[i].a
		var bLocal int32
		var k int64
		if g.kind == fuseCmpBr {
			bLocal = ins[i+1].a
		} else {
			k, _ = intConst(lc, ins[i+1])
		}
		cmp, _ := intCmp(ins[i+2].op)
		target := oldToNew[ins[i+3].a]
		jumpIfZero := ins[i+3].op == OpJmpZ
		isK := g.kind == fuseCmpBrK
		return func(fr *jframe) int32 {
			fr.e.fuel -= extra
			rhs := k
			if !isK {
				rhs = fr.locals[bLocal].I
			}
			taken := cmp(fr.locals[a].I, rhs)
			if taken != jumpIfZero { // JmpZ jumps when false; JmpN when true
				return target
			}
			return next
		}
	case fuseCmpLen:
		idx, arr := ins[i].a, ins[i+1].a
		target := oldToNew[ins[i+4].a]
		jumpIfZero := ins[i+4].op == OpJmpZ
		return func(fr *jframe) int32 {
			fr.e.fuel -= extra
			taken := fr.locals[idx].I < int64(len(fr.locals[arr].B))
			if taken != jumpIfZero {
				return target
			}
			return next
		}
	case fuseRetLocal:
		a := ins[i].a
		return func(fr *jframe) int32 {
			fr.e.fuel -= extra
			fr.ret = fr.locals[a]
			return jitRet
		}
	case fuseLoopByteSum:
		// while (i < len(arr)) { acc = acc + arr[i]; i = i + 1; }
		// Header at i: Load i; Load arr; BLen; ILt; JmpZ exit.
		// Body: Load acc; Load arr; Load i; BGet; IAdd; Store acc;
		//       Load i; IConst1; IAdd; Store i; Jmp header.
		iVar := ins[i].a
		arrVar := ins[i+1].a
		accVar := ins[i+5].a // the acc store target inside the body
		// Instructions per iteration: header(5) + body(6+4) + jmp(1).
		const perIter = 16
		return func(fr *jframe) int32 {
			data := fr.locals[arrVar].B
			j := fr.locals[iVar].I
			acc := fr.locals[accVar].I
			n := int64(len(data))
			if j < 0 && j < n {
				// The unfused bget would trap on the negative index.
				return fr.trapf(TrapBounds, "bget index out of range")
			}
			for j < n {
				// Chunked execution keeps fuel containment bounded.
				chunk := fr.e.fuel / perIter
				if chunk <= 0 {
					fr.locals[iVar] = Value{T: TInt, I: j}
					fr.locals[accVar] = Value{T: TInt, I: acc}
					return fr.trapf(TrapFuel, "instruction budget exhausted")
				}
				end := j + chunk
				if end > n {
					end = n
				}
				fr.e.fuel -= (end - j) * perIter
				for ; j < end; j++ {
					acc += int64(data[j])
				}
			}
			fr.locals[iVar] = Value{T: TInt, I: j}
			fr.locals[accVar] = Value{T: TInt, I: acc}
			return next
		}
	case fuseLoopCount:
		// while (i < bound) { c = a op b|k; i = i + 1; }
		iVar := ins[i].a
		boundIsConst := ins[i+1].op != OpLoad
		var boundVar int32
		var boundK int64
		if boundIsConst {
			boundK, _ = intConst(lc, ins[i+1])
		} else {
			boundVar = ins[i+1].a
		}
		// Body statement group starts right after the header (4 instrs).
		s := i + 4
		stA := ins[s].a
		stIsK := ins[s+1].op != OpLoad
		var stB int32
		var stK int64
		if stIsK {
			stK, _ = intConst(lc, ins[s+1])
		} else {
			stB = ins[s+1].a
		}
		accOp := ins[s+2].op
		f, _ := intBinop(accOp)
		stC := ins[s+3].a
		const perIter = 13 // header(4) + stmt(4) + incr(4) + jmp(1)
		return func(fr *jframe) int32 {
			j := fr.locals[iVar].I
			bound := boundK
			if !boundIsConst {
				bound = fr.locals[boundVar].I
			}
			for j < bound {
				chunk := fr.e.fuel / perIter
				if chunk <= 0 {
					fr.locals[iVar] = Value{T: TInt, I: j}
					return fr.trapf(TrapFuel, "instruction budget exhausted")
				}
				end := j + chunk
				if end > bound {
					end = bound
				}
				fr.e.fuel -= (end - j) * perIter
				if stIsK && stA == stC {
					// Pure accumulator: c = c op k — hoist the local
					// and use direct arithmetic (no indirect call per
					// iteration), like a compiler's register-allocated
					// loop body.
					acc := fr.locals[stC].I
					switch accOp {
					case OpIAdd:
						for ; j < end; j++ {
							acc += stK
						}
					case OpISub:
						for ; j < end; j++ {
							acc -= stK
						}
					default:
						for ; j < end; j++ {
							acc = f(acc, stK)
						}
					}
					fr.locals[stC] = Value{T: TInt, I: acc}
				} else {
					// The statement may read the induction variable,
					// which lives in register j during the loop.
					for ; j < end; j++ {
						a := fr.locals[stA].I
						if stA == iVar {
							a = j
						}
						b := stK
						if !stIsK {
							b = fr.locals[stB].I
							if stB == iVar {
								b = j
							}
						}
						fr.locals[stC] = Value{T: TInt, I: f(a, b)}
					}
				}
			}
			fr.locals[iVar] = Value{T: TInt, I: j}
			return next
		}
	default:
		return compileOne(lc, lm, ins[i], next, oldToNew)
	}
}

// compileOne emits the closure for a single (unfused) instruction.
func compileOne(lc *LoadedClass, lm *loadedMethod, in instr, next int32, oldToNew []int32) jitOp {
	consts := lc.class.Consts
	switch in.op {
	case OpNop:
		return func(fr *jframe) int32 { return next }
	case OpLdc:
		k := consts[in.a]
		switch k.Kind {
		case ConstInt:
			v := Value{T: TInt, I: k.Int}
			return func(fr *jframe) int32 {
				fr.stack[fr.sp] = v
				fr.sp++
				return next
			}
		case ConstFloat:
			v := Value{T: TFloat, F: k.Float}
			return func(fr *jframe) int32 {
				fr.stack[fr.sp] = v
				fr.sp++
				return next
			}
		case ConstStr:
			v := Value{T: TStr, S: k.Str}
			return func(fr *jframe) int32 {
				fr.stack[fr.sp] = v
				fr.sp++
				return next
			}
		default:
			src := k.Bytes
			return func(fr *jframe) int32 {
				cp := make([]byte, len(src))
				copy(cp, src)
				if err := fr.e.account(int64(len(cp))); err != nil {
					fr.err = err
					return jitTrap
				}
				fr.stack[fr.sp] = Value{T: TBytes, B: cp}
				fr.sp++
				return next
			}
		}
	case OpIConst0:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp] = Value{T: TInt}
			fr.sp++
			return next
		}
	case OpIConst1:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp] = Value{T: TInt, I: 1}
			fr.sp++
			return next
		}
	case OpDup:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp] = fr.stack[fr.sp-1]
			fr.sp++
			return next
		}
	case OpPop:
		return func(fr *jframe) int32 { fr.sp--; return next }
	case OpSwap:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1], fr.stack[fr.sp-2] = fr.stack[fr.sp-2], fr.stack[fr.sp-1]
			return next
		}
	case OpLoad:
		idx := in.a
		return func(fr *jframe) int32 {
			fr.stack[fr.sp] = fr.locals[idx]
			fr.sp++
			return next
		}
	case OpStore:
		idx := in.a
		return func(fr *jframe) int32 {
			fr.sp--
			fr.locals[idx] = fr.stack[fr.sp]
			return next
		}
	case OpIAdd:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].I += fr.stack[fr.sp].I
			return next
		}
	case OpISub:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].I -= fr.stack[fr.sp].I
			return next
		}
	case OpIMul:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].I *= fr.stack[fr.sp].I
			return next
		}
	case OpIDiv:
		return func(fr *jframe) int32 {
			fr.sp--
			d := fr.stack[fr.sp].I
			if d == 0 {
				return fr.trapf(TrapDivZero, "integer division by zero")
			}
			if fr.stack[fr.sp-1].I == math.MinInt64 && d == -1 {
				return next
			}
			fr.stack[fr.sp-1].I /= d
			return next
		}
	case OpIMod:
		return func(fr *jframe) int32 {
			fr.sp--
			d := fr.stack[fr.sp].I
			if d == 0 {
				return fr.trapf(TrapDivZero, "integer modulo by zero")
			}
			if fr.stack[fr.sp-1].I == math.MinInt64 && d == -1 {
				fr.stack[fr.sp-1].I = 0
				return next
			}
			fr.stack[fr.sp-1].I %= d
			return next
		}
	case OpINeg:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1].I = -fr.stack[fr.sp-1].I
			return next
		}
	case OpFAdd:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].F += fr.stack[fr.sp].F
			return next
		}
	case OpFSub:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].F -= fr.stack[fr.sp].F
			return next
		}
	case OpFMul:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].F *= fr.stack[fr.sp].F
			return next
		}
	case OpFDiv:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1].F /= fr.stack[fr.sp].F
			return next
		}
	case OpFNeg:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1].F = -fr.stack[fr.sp-1].F
			return next
		}
	case OpI2F:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1] = Value{T: TFloat, F: float64(fr.stack[fr.sp-1].I)}
			return next
		}
	case OpF2I:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1] = Value{T: TInt, I: int64(fr.stack[fr.sp-1].F)}
			return next
		}
	case OpIEq:
		return cmpI(next, func(a, b int64) bool { return a == b })
	case OpINe:
		return cmpI(next, func(a, b int64) bool { return a != b })
	case OpILt:
		return cmpI(next, func(a, b int64) bool { return a < b })
	case OpILe:
		return cmpI(next, func(a, b int64) bool { return a <= b })
	case OpIGt:
		return cmpI(next, func(a, b int64) bool { return a > b })
	case OpIGe:
		return cmpI(next, func(a, b int64) bool { return a >= b })
	case OpFEq:
		return cmpF(next, func(a, b float64) bool { return a == b })
	case OpFNe:
		return cmpF(next, func(a, b float64) bool { return a != b })
	case OpFLt:
		return cmpF(next, func(a, b float64) bool { return a < b })
	case OpFLe:
		return cmpF(next, func(a, b float64) bool { return a <= b })
	case OpFGt:
		return cmpF(next, func(a, b float64) bool { return a > b })
	case OpFGe:
		return cmpF(next, func(a, b float64) bool { return a >= b })
	case OpSEq:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1] = boolVal(fr.stack[fr.sp-1].S == fr.stack[fr.sp].S)
			return next
		}
	case OpSLen:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1] = Value{T: TInt, I: int64(len(fr.stack[fr.sp-1].S))}
			return next
		}
	case OpSConcat:
		return func(fr *jframe) int32 {
			fr.sp--
			s := fr.stack[fr.sp-1].S + fr.stack[fr.sp].S
			if err := fr.e.account(int64(len(s))); err != nil {
				fr.err = err
				return jitTrap
			}
			fr.stack[fr.sp-1] = Value{T: TStr, S: s}
			return next
		}
	case OpBLen:
		return func(fr *jframe) int32 {
			fr.stack[fr.sp-1] = Value{T: TInt, I: int64(len(fr.stack[fr.sp-1].B))}
			return next
		}
	case OpBGet:
		return func(fr *jframe) int32 {
			fr.sp--
			idx := fr.stack[fr.sp].I
			arr := fr.stack[fr.sp-1].B
			if idx < 0 || idx >= int64(len(arr)) {
				return fr.trapf(TrapBounds, "bget index out of range")
			}
			fr.stack[fr.sp-1] = Value{T: TInt, I: int64(arr[idx])}
			return next
		}
	case OpBSet:
		return func(fr *jframe) int32 {
			fr.sp -= 3
			arr := fr.stack[fr.sp].B
			idx := fr.stack[fr.sp+1].I
			val := fr.stack[fr.sp+2].I
			if idx < 0 || idx >= int64(len(arr)) {
				return fr.trapf(TrapBounds, "bset index out of range")
			}
			arr[idx] = byte(val)
			return next
		}
	case OpBNew:
		return func(fr *jframe) int32 {
			n := fr.stack[fr.sp-1].I
			if n < 0 {
				return fr.trapf(TrapValue, "bnew with negative size")
			}
			if err := fr.e.account(n); err != nil {
				fr.err = err
				return jitTrap
			}
			fr.stack[fr.sp-1] = Value{T: TBytes, B: make([]byte, n)}
			return next
		}
	case OpBEq:
		return func(fr *jframe) int32 {
			fr.sp--
			fr.stack[fr.sp-1] = boolVal(bytesEqual(fr.stack[fr.sp-1].B, fr.stack[fr.sp].B))
			return next
		}
	case OpNot:
		return func(fr *jframe) int32 {
			if fr.stack[fr.sp-1].I == 0 {
				fr.stack[fr.sp-1].I = 1
			} else {
				fr.stack[fr.sp-1].I = 0
			}
			return next
		}
	case OpJmp:
		target := oldToNew[in.a]
		return func(fr *jframe) int32 { return target }
	case OpJmpZ:
		target := oldToNew[in.a]
		return func(fr *jframe) int32 {
			fr.sp--
			if fr.stack[fr.sp].I == 0 {
				return target
			}
			return next
		}
	case OpJmpN:
		target := oldToNew[in.a]
		return func(fr *jframe) int32 {
			fr.sp--
			if fr.stack[fr.sp].I != 0 {
				return target
			}
			return next
		}
	case OpCall:
		mi := int(in.a)
		nargs := len(lc.class.Methods[mi].Params)
		return func(fr *jframe) int32 {
			fr.sp -= nargs
			ret, err := fr.e.call(mi, fr.stack[fr.sp:fr.sp+nargs])
			if err != nil {
				fr.err = err
				return jitTrap
			}
			fr.stack[fr.sp] = ret
			fr.sp++
			return next
		}
	case OpNative:
		entry := lm.natives[in.a]
		nargs := int(in.b)
		return func(fr *jframe) int32 {
			fr.sp -= nargs
			ret, err := fr.e.invokeNative(fr.lm.m.Name, entry, fr.stack[fr.sp:fr.sp+nargs])
			if err != nil {
				fr.err = err
				return jitTrap
			}
			fr.stack[fr.sp] = ret
			fr.sp++
			return next
		}
	case OpRet:
		return func(fr *jframe) int32 {
			fr.ret = fr.stack[fr.sp-1]
			return jitRet
		}
	default:
		op := in.op
		return func(fr *jframe) int32 {
			return fr.trapf(TrapValue, "unhandled opcode "+op.Name())
		}
	}
}

func cmpI(next int32, f func(a, b int64) bool) jitOp {
	return func(fr *jframe) int32 {
		fr.sp--
		fr.stack[fr.sp-1] = boolVal(f(fr.stack[fr.sp-1].I, fr.stack[fr.sp].I))
		return next
	}
}

func cmpF(next int32, f func(a, b float64) bool) jitOp {
	return func(fr *jframe) int32 {
		fr.sp--
		fr.stack[fr.sp-1] = boolVal(f(fr.stack[fr.sp-1].F, fr.stack[fr.sp].F))
		return next
	}
}
