package jvm

import (
	"fmt"
	"math"

	"predator/internal/types"
)

// CallOptions configures one UDF invocation.
type CallOptions struct {
	// Limits is the resource policy for this invocation.
	Limits Limits
	// Callback handles cb.* native calls (may be nil if the code makes
	// none; calling with none installed traps).
	Callback Callback
	// Logf receives sys.log output (nil discards it).
	Logf func(format string, args ...any)
	// Security overrides the VM's security manager for this call
	// (nil = use the VM's).
	Security SecurityManager
	// ForceInterpreter runs the switch interpreter even when the class
	// was JIT-compiled (used by the JIT ablation benchmarks).
	ForceInterpreter bool
}

// exec carries the mutable state of one invocation across frames.
type exec struct {
	lc        *LoadedClass
	fuel      int64
	budget    int64
	mem       int64
	depthLeft int
	depthMax  int
	ctx       NativeCtx
	usage     Usage
	interpret bool
}

// Call invokes a method with VM values and returns the result plus a
// resource-usage report. It is the low-level entry point; CallKinds is
// the boundary-converting variant used by the UDF layer.
func (lc *LoadedClass) Call(method string, args []Value, opts *CallOptions) (Value, Usage, error) {
	if opts == nil {
		opts = &CallOptions{}
	}
	mi := lc.class.MethodIndex(method)
	if mi < 0 {
		return Value{}, Usage{}, fmt.Errorf("jvm: class %q has no method %q", lc.class.Name, method)
	}
	m := &lc.class.Methods[mi]
	if len(args) != len(m.Params) {
		return Value{}, Usage{}, fmt.Errorf("jvm: %s.%s takes %d args, got %d", lc.class.Name, method, len(m.Params), len(args))
	}
	for i, a := range args {
		if a.T != m.Params[i] {
			return Value{}, Usage{}, fmt.Errorf("jvm: %s.%s arg %d: want %s, got %s", lc.class.Name, method, i, m.Params[i], a.T)
		}
	}
	sec := opts.Security
	if sec == nil {
		sec = lc.loader.vm.security
	}
	e := &exec{
		lc:        lc,
		fuel:      opts.Limits.fuelBudget(),
		mem:       opts.Limits.memBudget(),
		depthLeft: opts.Limits.depthBudget(),
		interpret: opts.ForceInterpreter || !lc.loader.vm.useJIT,
	}
	e.budget = e.fuel
	e.depthMax = e.depthLeft
	e.ctx = NativeCtx{
		ClassName: lc.class.Name,
		Security:  sec,
		Callback:  opts.Callback,
		Logf:      opts.Logf,
		account:   e.account,
	}
	ret, err := e.call(mi, args)
	e.usage.Instructions = e.budget - e.fuel
	return ret, e.usage, err
}

// account charges an allocation against the memory budget.
func (e *exec) account(n int64) error {
	if n < 0 {
		return fmt.Errorf("negative allocation")
	}
	e.usage.AllocBytes += n
	e.mem -= n
	if e.mem < 0 {
		return &Trap{Kind: TrapMemory, Class: e.lc.class.Name, Method: "", Detail: "allocation budget exhausted"}
	}
	return nil
}

func (e *exec) trap(kind TrapKind, method string, format string, args ...any) error {
	return &Trap{Kind: kind, Class: e.lc.class.Name, Method: method, Detail: fmt.Sprintf(format, args...)}
}

// call runs method mi with the given arguments in a fresh frame,
// dispatching to the JIT code when available.
func (e *exec) call(mi int, args []Value) (Value, error) {
	lm := &e.lc.meths[mi]
	if e.depthLeft == 0 {
		return Value{}, e.trap(TrapDepth, lm.m.Name, "call depth limit exceeded")
	}
	e.depthLeft--
	if d := e.depthMax - e.depthLeft; d > e.usage.MaxDepth {
		e.usage.MaxDepth = d
	}
	defer func() { e.depthLeft++ }()

	if !e.interpret && lm.jit != nil {
		return e.runJIT(lm, args)
	}
	return e.interp(lm, args)
}

// interp is the switch interpreter: the baseline execution engine, and
// the reference semantics the JIT must match.
func (e *exec) interp(lm *loadedMethod, args []Value) (Value, error) {
	m := lm.m
	locals := make([]Value, len(m.Locals))
	copy(locals, args)
	stack := make([]Value, m.MaxStack)
	sp := 0
	ins := lm.instrs
	consts := e.lc.class.Consts
	ip := 0
	for {
		e.fuel--
		if e.fuel < 0 {
			return Value{}, e.trap(TrapFuel, m.Name, "instruction budget exhausted")
		}
		in := ins[ip]
		ip++
		switch in.op {
		case OpNop:
		case OpLdc:
			k := consts[in.a]
			switch k.Kind {
			case ConstInt:
				stack[sp] = Value{T: TInt, I: k.Int}
			case ConstFloat:
				stack[sp] = Value{T: TFloat, F: k.Float}
			case ConstStr:
				stack[sp] = Value{T: TStr, S: k.Str}
			default:
				// Byte-array constants are copied so the loaded class
				// (shared across invocations) cannot be mutated.
				cp := make([]byte, len(k.Bytes))
				copy(cp, k.Bytes)
				if err := e.account(int64(len(cp))); err != nil {
					return Value{}, err
				}
				stack[sp] = Value{T: TBytes, B: cp}
			}
			sp++
		case OpIConst0:
			stack[sp] = Value{T: TInt}
			sp++
		case OpIConst1:
			stack[sp] = Value{T: TInt, I: 1}
			sp++
		case OpDup:
			stack[sp] = stack[sp-1]
			sp++
		case OpPop:
			sp--
		case OpSwap:
			stack[sp-1], stack[sp-2] = stack[sp-2], stack[sp-1]
		case OpLoad:
			stack[sp] = locals[in.a]
			sp++
		case OpStore:
			sp--
			locals[in.a] = stack[sp]
		case OpIAdd:
			sp--
			stack[sp-1].I += stack[sp].I
		case OpISub:
			sp--
			stack[sp-1].I -= stack[sp].I
		case OpIMul:
			sp--
			stack[sp-1].I *= stack[sp].I
		case OpIDiv:
			sp--
			d := stack[sp].I
			if d == 0 {
				return Value{}, e.trap(TrapDivZero, m.Name, "integer division by zero")
			}
			if stack[sp-1].I == math.MinInt64 && d == -1 {
				// Wrap like Java: MinInt64 / -1 = MinInt64.
				continue
			}
			stack[sp-1].I /= d
		case OpIMod:
			sp--
			d := stack[sp].I
			if d == 0 {
				return Value{}, e.trap(TrapDivZero, m.Name, "integer modulo by zero")
			}
			if stack[sp-1].I == math.MinInt64 && d == -1 {
				stack[sp-1].I = 0
				continue
			}
			stack[sp-1].I %= d
		case OpINeg:
			stack[sp-1].I = -stack[sp-1].I
		case OpFAdd:
			sp--
			stack[sp-1].F += stack[sp].F
		case OpFSub:
			sp--
			stack[sp-1].F -= stack[sp].F
		case OpFMul:
			sp--
			stack[sp-1].F *= stack[sp].F
		case OpFDiv:
			sp--
			stack[sp-1].F /= stack[sp].F
		case OpFNeg:
			stack[sp-1].F = -stack[sp-1].F
		case OpI2F:
			stack[sp-1] = Value{T: TFloat, F: float64(stack[sp-1].I)}
		case OpF2I:
			stack[sp-1] = Value{T: TInt, I: int64(stack[sp-1].F)}
		case OpIEq:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].I == stack[sp].I)
		case OpINe:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].I != stack[sp].I)
		case OpILt:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].I < stack[sp].I)
		case OpILe:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].I <= stack[sp].I)
		case OpIGt:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].I > stack[sp].I)
		case OpIGe:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].I >= stack[sp].I)
		case OpFEq:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].F == stack[sp].F)
		case OpFNe:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].F != stack[sp].F)
		case OpFLt:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].F < stack[sp].F)
		case OpFLe:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].F <= stack[sp].F)
		case OpFGt:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].F > stack[sp].F)
		case OpFGe:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].F >= stack[sp].F)
		case OpSEq:
			sp--
			stack[sp-1] = boolVal(stack[sp-1].S == stack[sp].S)
		case OpSLen:
			stack[sp-1] = Value{T: TInt, I: int64(len(stack[sp-1].S))}
		case OpSConcat:
			sp--
			s := stack[sp-1].S + stack[sp].S
			if err := e.account(int64(len(s))); err != nil {
				return Value{}, err
			}
			stack[sp-1] = Value{T: TStr, S: s}
		case OpBLen:
			stack[sp-1] = Value{T: TInt, I: int64(len(stack[sp-1].B))}
		case OpBGet:
			sp--
			idx := stack[sp].I
			arr := stack[sp-1].B
			// The run-time bounds check: this is the safety cost the
			// paper's Figure 7 measures.
			if idx < 0 || idx >= int64(len(arr)) {
				return Value{}, e.trap(TrapBounds, m.Name, "bget index %d out of range [0,%d)", idx, len(arr))
			}
			stack[sp-1] = Value{T: TInt, I: int64(arr[idx])}
		case OpBSet:
			sp -= 3
			arr := stack[sp].B
			idx := stack[sp+1].I
			val := stack[sp+2].I
			if idx < 0 || idx >= int64(len(arr)) {
				return Value{}, e.trap(TrapBounds, m.Name, "bset index %d out of range [0,%d)", idx, len(arr))
			}
			arr[idx] = byte(val) // truncate like a Java byte store
		case OpBNew:
			n := stack[sp-1].I
			if n < 0 {
				return Value{}, e.trap(TrapValue, m.Name, "bnew with negative size %d", n)
			}
			if err := e.account(n); err != nil {
				return Value{}, err
			}
			stack[sp-1] = Value{T: TBytes, B: make([]byte, n)}
		case OpBEq:
			sp--
			stack[sp-1] = boolVal(bytesEqual(stack[sp-1].B, stack[sp].B))
		case OpNot:
			if stack[sp-1].I == 0 {
				stack[sp-1].I = 1
			} else {
				stack[sp-1].I = 0
			}
		case OpJmp:
			ip = int(in.a)
		case OpJmpZ:
			sp--
			if stack[sp].I == 0 {
				ip = int(in.a)
			}
		case OpJmpN:
			sp--
			if stack[sp].I != 0 {
				ip = int(in.a)
			}
		case OpCall:
			callee := &e.lc.class.Methods[in.a]
			nargs := len(callee.Params)
			sp -= nargs
			ret, err := e.call(int(in.a), stack[sp:sp+nargs])
			if err != nil {
				return Value{}, err
			}
			stack[sp] = ret
			sp++
		case OpNative:
			entry := lm.natives[in.a]
			nargs := int(in.b)
			sp -= nargs
			ret, err := e.invokeNative(m.Name, entry, stack[sp:sp+nargs])
			if err != nil {
				return Value{}, err
			}
			stack[sp] = ret
			sp++
		case OpRet:
			return stack[sp-1], nil
		default:
			return Value{}, e.trap(TrapValue, m.Name, "unhandled opcode %s", in.op.Name())
		}
	}
}

// invokeNative performs the security check, argument type check, and
// dispatch shared by interpreter and JIT.
func (e *exec) invokeNative(method string, entry *NativeEntry, args []Value) (Value, error) {
	if err := e.ctx.Security.Check(e.ctx.ClassName, entry.Perm, entry.Name); err != nil {
		return Value{}, e.trap(TrapSecurity, method, "%s", err)
	}
	for i, a := range args {
		if a.T != entry.Params[i] {
			return Value{}, e.trap(TrapNative, method, "native %s arg %d: want %s, got %s",
				entry.Name, i, entry.Params[i], a.T)
		}
	}
	e.usage.NativeCalls++
	ret, err := entry.Fn(&e.ctx, args)
	if err != nil {
		if t, ok := err.(*Trap); ok {
			return Value{}, t
		}
		return Value{}, e.trap(TrapNative, method, "native %s: %s", entry.Name, err)
	}
	if ret.T != entry.Result {
		return Value{}, e.trap(TrapNative, method, "native %s returned %s, declared %s",
			entry.Name, ret.T, entry.Result)
	}
	return ret, nil
}

func boolVal(b bool) Value {
	if b {
		return Value{T: TInt, I: 1}
	}
	return Value{T: TInt}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Boundary conversion — the Jaguar equivalent of the JNI "impedance
// mismatch" the paper describes: every UDF invocation converts engine
// values to VM values and back.

// ToVM converts an engine value to a VM value. BOOL maps to int 0/1;
// NULL is not representable in the VM and is rejected (the engine's
// expression layer short-circuits NULL arguments before invoking UDFs).
func ToVM(v types.Value) (Value, error) {
	switch v.Kind {
	case types.KindInt:
		return IntVal(v.Int), nil
	case types.KindFloat:
		return FloatVal(v.Float), nil
	case types.KindBool:
		if v.Bool {
			return IntVal(1), nil
		}
		return IntVal(0), nil
	case types.KindString:
		return StrVal(v.Str), nil
	case types.KindBytes:
		return BytesVal(v.Bytes), nil
	default:
		return Value{}, fmt.Errorf("jvm: cannot pass %s value to Jaguar code", v.Kind)
	}
}

// FromVM converts a VM value back to an engine value of the given kind.
func FromVM(v Value, kind types.Kind) (types.Value, error) {
	switch kind {
	case types.KindInt:
		if v.T != TInt {
			return types.Value{}, fmt.Errorf("jvm: expected int result, got %s", v.T)
		}
		return types.NewInt(v.I), nil
	case types.KindFloat:
		if v.T == TInt {
			return types.NewFloat(float64(v.I)), nil
		}
		if v.T != TFloat {
			return types.Value{}, fmt.Errorf("jvm: expected float result, got %s", v.T)
		}
		return types.NewFloat(v.F), nil
	case types.KindBool:
		if v.T != TInt {
			return types.Value{}, fmt.Errorf("jvm: expected int (bool) result, got %s", v.T)
		}
		return types.NewBool(v.I != 0), nil
	case types.KindString:
		if v.T != TStr {
			return types.Value{}, fmt.Errorf("jvm: expected str result, got %s", v.T)
		}
		return types.NewString(v.S), nil
	case types.KindBytes:
		if v.T != TBytes {
			return types.Value{}, fmt.Errorf("jvm: expected bytes result, got %s", v.T)
		}
		return types.NewBytes(v.B), nil
	default:
		return types.Value{}, fmt.Errorf("jvm: cannot convert VM value to %s", kind)
	}
}

// KindToVType maps an engine type to the VM type used at the boundary.
func KindToVType(k types.Kind) (VType, error) {
	switch k {
	case types.KindInt, types.KindBool:
		return TInt, nil
	case types.KindFloat:
		return TFloat, nil
	case types.KindString:
		return TStr, nil
	case types.KindBytes:
		return TBytes, nil
	default:
		return 0, fmt.Errorf("jvm: no VM type for %s", k)
	}
}
