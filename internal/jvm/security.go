package jvm

import (
	"fmt"
	"sync"
	"time"
)

// Permission names a guarded capability that a native function requires.
type Permission string

// The built-in permissions.
const (
	PermCallback Permission = "callback" // talk back to the database server
	PermLog      Permission = "log"      // emit log lines
	PermTime     Permission = "time"     // read the wall clock
	PermFile     Permission = "file"     // file system access (denied by default)
)

// SecurityManager is consulted on every native call, mirroring the Java
// security manager the paper describes in §6.1. Implementations must be
// safe for concurrent use.
type SecurityManager interface {
	// Check returns nil to permit the operation. class identifies the
	// calling UDF class (for auditing), detail the specific operation.
	Check(class string, perm Permission, detail string) error
}

// AuditEntry records a security decision for later inspection — the
// auditing capability the paper notes Java lacked.
type AuditEntry struct {
	Time   time.Time
	Class  string
	Perm   Permission
	Detail string
	Denied bool
}

// Policy is the standard SecurityManager: an allow-list of permissions
// with an audit trail of denials (and optionally of grants).
type Policy struct {
	mu       sync.Mutex
	allowed  map[Permission]bool
	audit    []AuditEntry
	auditAll bool
	maxAudit int
}

// NewPolicy builds a policy allowing exactly the given permissions.
func NewPolicy(allowed ...Permission) *Policy {
	p := &Policy{allowed: make(map[Permission]bool, len(allowed)), maxAudit: 10000}
	for _, a := range allowed {
		p.allowed[a] = true
	}
	return p
}

// DefaultPolicy returns the server's default UDF policy: callbacks and
// logging are permitted; the clock and the file system are not.
func DefaultPolicy() *Policy {
	return NewPolicy(PermCallback, PermLog)
}

// AuditAll makes the policy record granted operations too, not just
// denials.
func (p *Policy) AuditAll() *Policy {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.auditAll = true
	return p
}

// Check implements SecurityManager.
func (p *Policy) Check(class string, perm Permission, detail string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	ok := p.allowed[perm]
	if !ok || p.auditAll {
		if len(p.audit) < p.maxAudit {
			p.audit = append(p.audit, AuditEntry{
				Time: time.Now(), Class: class, Perm: perm, Detail: detail, Denied: !ok,
			})
		}
	}
	if !ok {
		return fmt.Errorf("permission %q denied for class %q (%s)", perm, class, detail)
	}
	return nil
}

// Audit returns a copy of the audit trail.
func (p *Policy) Audit() []AuditEntry {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]AuditEntry, len(p.audit))
	copy(out, p.audit)
	return out
}

// allowAllManager permits everything; used for trusted code and tests.
type allowAllManager struct{}

func (allowAllManager) Check(string, Permission, string) error { return nil }

// AllowAll returns a SecurityManager that permits every operation.
// Only use it for trusted, server-owned classes.
func AllowAll() SecurityManager { return allowAllManager{} }
