package jvm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Class-file format ("JCF"):
//
//	magic   "JAGC" (4 bytes)
//	version u16
//	name    str
//	consts  uvarint count, then per entry: kind byte + payload
//	methods uvarint count, then per method:
//	  name str, return byte,
//	  params uvarint count + bytes,
//	  locals uvarint count + bytes,
//	  maxStack uvarint,
//	  code uvarint length + bytes
//
// where str = uvarint length + UTF-8 bytes.

const (
	classMagic   = "JAGC"
	classVersion = 1
)

// MaxClassFileSize bounds accepted class files; the loader rejects
// anything larger before parsing (a denial-of-service guard).
const MaxClassFileSize = 1 << 20

// EncodeClass serializes a class to its class-file bytes.
func EncodeClass(c *Class) []byte {
	buf := append([]byte{}, classMagic...)
	buf = binary.LittleEndian.AppendUint16(buf, classVersion)
	buf = appendStr(buf, c.Name)
	buf = binary.AppendUvarint(buf, uint64(len(c.Consts)))
	for _, k := range c.Consts {
		buf = append(buf, byte(k.Kind))
		switch k.Kind {
		case ConstInt:
			buf = binary.LittleEndian.AppendUint64(buf, uint64(k.Int))
		case ConstFloat:
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(k.Float))
		case ConstStr:
			buf = appendStr(buf, k.Str)
		case ConstBytes:
			buf = binary.AppendUvarint(buf, uint64(len(k.Bytes)))
			buf = append(buf, k.Bytes...)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Methods)))
	for i := range c.Methods {
		m := &c.Methods[i]
		buf = appendStr(buf, m.Name)
		buf = append(buf, byte(m.Return))
		buf = binary.AppendUvarint(buf, uint64(len(m.Params)))
		for _, p := range m.Params {
			buf = append(buf, byte(p))
		}
		buf = binary.AppendUvarint(buf, uint64(len(m.Locals)))
		for _, l := range m.Locals {
			buf = append(buf, byte(l))
		}
		buf = binary.AppendUvarint(buf, uint64(m.MaxStack))
		buf = binary.AppendUvarint(buf, uint64(len(m.Code)))
		buf = append(buf, m.Code...)
	}
	return buf
}

// DecodeClass parses class-file bytes. The result is structurally
// well-formed but NOT yet verified; callers must run Verify (the
// loader does this automatically).
func DecodeClass(data []byte) (*Class, error) {
	if len(data) > MaxClassFileSize {
		return nil, fmt.Errorf("jvm: class file of %d bytes exceeds the %d-byte limit", len(data), MaxClassFileSize)
	}
	r := &creader{buf: data}
	if string(r.take(4)) != classMagic {
		return nil, fmt.Errorf("jvm: bad class-file magic")
	}
	if v := r.u16(); v != classVersion {
		return nil, fmt.Errorf("jvm: unsupported class-file version %d", v)
	}
	c := &Class{}
	c.Name = r.str()
	nConsts := r.uvarint()
	if nConsts > uint64(len(data)) {
		return nil, fmt.Errorf("jvm: implausible constant count %d", nConsts)
	}
	c.Consts = make([]Const, 0, nConsts)
	for i := uint64(0); i < nConsts; i++ {
		kind := ConstKind(r.byte())
		var k Const
		k.Kind = kind
		switch kind {
		case ConstInt:
			k.Int = int64(r.u64())
		case ConstFloat:
			k.Float = math.Float64frombits(r.u64())
		case ConstStr:
			k.Str = r.str()
		case ConstBytes:
			n := r.uvarint()
			k.Bytes = r.bytes(int(n))
		default:
			return nil, fmt.Errorf("jvm: unknown constant kind %d", kind)
		}
		c.Consts = append(c.Consts, k)
	}
	nMethods := r.uvarint()
	if nMethods > uint64(len(data)) {
		return nil, fmt.Errorf("jvm: implausible method count %d", nMethods)
	}
	c.Methods = make([]Method, 0, nMethods)
	for i := uint64(0); i < nMethods; i++ {
		var m Method
		m.Name = r.str()
		m.Return = VType(r.byte())
		nParams := r.uvarint()
		if nParams > 255 {
			return nil, fmt.Errorf("jvm: method %q has %d parameters (max 255)", m.Name, nParams)
		}
		m.Params = make([]VType, nParams)
		for j := range m.Params {
			m.Params[j] = VType(r.byte())
		}
		nLocals := r.uvarint()
		if nLocals > 65535 {
			return nil, fmt.Errorf("jvm: method %q has %d locals (max 65535)", m.Name, nLocals)
		}
		m.Locals = make([]VType, nLocals)
		for j := range m.Locals {
			m.Locals[j] = VType(r.byte())
		}
		m.MaxStack = int(r.uvarint())
		codeLen := r.uvarint()
		m.Code = r.bytes(int(codeLen))
		c.Methods = append(c.Methods, m)
	}
	if r.err != nil {
		return nil, fmt.Errorf("jvm: corrupt class file: %w", r.err)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("jvm: %d trailing bytes in class file", len(data)-r.off)
	}
	return c, nil
}

func appendStr(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

type creader struct {
	buf []byte
	off int
	err error
}

func (r *creader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("truncated at offset %d", r.off)
	}
}

func (r *creader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return make([]byte, n)
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *creader) byte() byte { return r.take(1)[0] }

func (r *creader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }

func (r *creader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }

func (r *creader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *creader) bytes(n int) []byte {
	if n < 0 || n > MaxClassFileSize {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.take(n))
	return out
}

func (r *creader) str() string {
	n := int(r.uvarint())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return ""
	}
	s := string(r.buf[r.off : r.off+n])
	r.off += n
	return s
}
