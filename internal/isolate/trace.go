package isolate

import (
	"encoding/binary"
	"time"

	"predator/internal/obs"
)

// Cross-process span propagation (detailed tracing only).
//
// When the parent runs under a detailed trace (EXPLAIN ANALYZE,
// SET TRACE), it precedes each msgInvoke/msgInvokeBatch with a
// msgTraceCtx frame carrying the trace ID and the parent span ID. The
// child then times its own work — setup, the invoke itself, VM
// execution, every callback round trip — and appends the recorded spans
// to the tail of its msgResult/msgResultBatch payload:
//
//	uvarint spanCount
//	per span: uvarint id, uvarint parent, string name,
//	          uvarint startUnixNano, uvarint durationNs
//
// Span IDs are local to one shipment; the parent remaps them into the
// trace's ID space on merge (obs.Trace.Merge), attributing them to the
// child's PID so a Chrome export shows both processes. With tracing
// off, no msgTraceCtx is sent and every frame is byte-identical to the
// untraced protocol — the zero-overhead guarantee the scalar hot path's
// 0 allocs/op benchmark depends on.

// maxChildSpans bounds spans per shipment on both sides: the child
// stops recording beyond it, and the parent rejects a frame announcing
// more (a babbling child, not a big batch).
const maxChildSpans = 1024

// childSpan is one span recorded inside the executor process.
type childSpan struct {
	id     uint64
	parent uint64
	name   string
	start  time.Time
	dur    time.Duration
}

// appendChildSpans encodes the span tail onto a result payload.
func appendChildSpans(buf []byte, spans []childSpan) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(spans)))
	for _, s := range spans {
		buf = binary.AppendUvarint(buf, s.id)
		buf = binary.AppendUvarint(buf, s.parent)
		buf = appendString(buf, s.name)
		buf = binary.AppendUvarint(buf, uint64(s.start.UnixNano()))
		buf = binary.AppendUvarint(buf, uint64(s.dur.Nanoseconds()))
	}
	return buf
}

// decodeChildSpans parses a span tail into portable records (the names
// are copied out of the receive scratch by str()).
func decodeChildSpans(r *preader) []obs.SpanRecord {
	n := int(r.uvarint())
	if r.err != nil {
		return nil
	}
	if n < 0 || n > maxChildSpans {
		r.fail()
		return nil
	}
	out := make([]obs.SpanRecord, 0, n)
	for i := 0; i < n; i++ {
		id := r.uvarint()
		parent := r.uvarint()
		name := r.str()
		start := r.uvarint()
		dur := r.uvarint()
		if r.err != nil {
			return nil
		}
		out = append(out, obs.SpanRecord{
			ID:     int64(id),
			Parent: int64(parent),
			Name:   name,
			Start:  time.Unix(0, int64(start)),
			Dur:    time.Duration(dur),
		})
	}
	return out
}
