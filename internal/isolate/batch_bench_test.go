package isolate

import (
	"fmt"
	"testing"

	"predator/internal/core"
	"predator/internal/jaguar"
	"predator/internal/types"
)

// Micro-benchmarks for the process-boundary crossing itself: one scalar
// Invoke per round trip versus one InvokeBatch carrying N rows. Run
// with -benchmem to see the frame-buffer reuse on the recv path.

func benchNativeIsolated(b *testing.B) core.BatchUDF {
	b.Helper()
	u := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	bu, ok := u.(core.BatchUDF)
	if !ok {
		b.Fatal("isolated UDF does not implement core.BatchUDF")
	}
	b.Cleanup(func() { u.Close() })
	return bu
}

func benchVMIsolated(b *testing.B) core.BatchUDF {
	b.Helper()
	classBytes, err := jaguar.CompileToBytes(`
	func sumb(data bytes) int {
		var acc int = 0;
		for (var j int = 0; j < len(data); j = j + 1) { acc = acc + data[j]; }
		return acc;
	}`, "SumB")
	if err != nil {
		b.Fatal(err)
	}
	u := NewVMIsolated("sumb", []types.Kind{types.KindBytes}, types.KindInt, VMSetup{
		ClassBytes: classBytes, Method: "sumb",
	})
	bu, ok := u.(core.BatchUDF)
	if !ok {
		b.Fatal("isolated VM UDF does not implement core.BatchUDF")
	}
	b.Cleanup(func() { u.Close() })
	return bu
}

func benchUDF(b *testing.B, design string) core.BatchUDF {
	b.Helper()
	if design == "icpp" {
		return benchNativeIsolated(b)
	}
	return benchVMIsolated(b)
}

func BenchmarkInvoke(b *testing.B) {
	payload := types.NewBytes([]byte{1, 2, 3, 4})
	for _, design := range []string{"icpp", "ijni"} {
		b.Run(design, func(b *testing.B) {
			u := benchUDF(b, design)
			if _, err := u.Invoke(nil, []types.Value{payload}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := u.Invoke(nil, []types.Value{payload}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkInvokeBatch(b *testing.B) {
	payload := types.NewBytes([]byte{1, 2, 3, 4})
	for _, design := range []string{"icpp", "ijni"} {
		for _, n := range []int{8, 64, 256} {
			b.Run(fmt.Sprintf("%s/%d", design, n), func(b *testing.B) {
				u := benchUDF(b, design)
				args := make([]types.Value, n)
				for i := range args {
					args[i] = payload
				}
				out := make([]core.BatchResult, n)
				if err := u.InvokeBatch(nil, 1, args, out); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := u.InvokeBatch(nil, 1, args, out); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for i := range out {
					if out[i].Err != nil {
						b.Fatal(out[i].Err)
					}
					if out[i].Value.Int != 10 {
						b.Fatalf("row %d = %d, want 10", i, out[i].Value.Int)
					}
				}
				b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
			})
		}
	}
}
