package isolate

import (
	"encoding/binary"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"predator/internal/core"
	"predator/internal/types"
)

// MuxExecutor is the parent-side handle to one multiplexed executor
// process: a single child shared by many streams, each stream an
// independent (tenant, UDF) binding with at most one invocation in
// flight. A dispatcher goroutine owns the read side of the pipe and
// routes tagged frames to the waiting stream; writers interleave tagged
// frames under a write lock. One MuxExecutor therefore carries the
// traffic that would otherwise need one dedicated Executor per query
// per UDF — the fleet's whole point.
//
// Failure policy is deliberately blunt: any protocol violation, pipe
// break or deadline expiry destroys the entire process. The stream that
// caused the fault gets its precise classification (FaultTimeout,
// FaultProtocol); every innocent sibling resident on the process gets
// FaultExecutorLost, which is retryable — the fleet reopens the stream
// on a healthy executor.
type MuxExecutor struct {
	sup  Supervision
	cmd  *exec.Cmd
	conn *conn

	// wmu serializes frame writes (many streams share the pipe).
	wmu sync.Mutex

	// mu guards stream/warm bookkeeping.
	mu      sync.Mutex
	streams map[uint64]*MuxStream
	warm    map[string]struct{}
	nextID  uint64

	// dead closes exactly once when the process is destroyed for any
	// reason; deadErr records why.
	dead     chan struct{}
	deadOnce sync.Once
	deadErr  error

	// waited closes once the background reaper has collected the child.
	waited  chan struct{}
	waitErr error

	pongCh   chan struct{}
	lastPong int64 // unix-nano of the last successful ping
}

// muxFrame is one routed frame delivered to a stream.
type muxFrame struct {
	typ     byte
	payload []byte
}

// MuxStream is one open stream on a multiplexed executor. A stream
// carries at most one invocation at a time (concurrency comes from
// opening more streams); it is not safe for concurrent use.
type MuxStream struct {
	m   *MuxExecutor
	id  uint64
	key string

	// ch receives this stream's routed frames. The protocol guarantees
	// at most one undelivered frame per stream (the child sends one
	// result, error, ready or callback and then waits), so a two-slot
	// channel with double-buffered payload scratch never blocks the
	// dispatcher; a child violating that is destroyed as babbling.
	ch      chan muxFrame
	scratch [2][]byte
	si      int
}

// StreamSetup describes the UDF binding a new stream needs (exactly one
// of Native and VM set), mirroring the dedicated setup frames.
type StreamSetup struct {
	Native string
	VM     *VMSetup
}

// StartMux launches a multiplexed executor process: same re-exec
// bootstrap as StartExecutorWith, then the control-stream handshake
// that switches the child into tagged-frame mode, then the dispatcher.
func StartMux(sup Supervision) (*MuxExecutor, error) {
	sup = sup.withDefaults()
	self, err := os.Executable()
	if err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", fmt.Errorf("locate executable: %w", err))
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), ExecutorEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", fmt.Errorf("start executor: %w", err))
	}
	cStarts.Inc()
	m := &MuxExecutor{
		sup:     sup,
		cmd:     cmd,
		conn:    newConn(stdout, stdin),
		streams: make(map[uint64]*MuxStream),
		warm:    make(map[string]struct{}),
		dead:    make(chan struct{}),
		waited:  make(chan struct{}),
		pongCh:  make(chan struct{}, 1),
	}
	go func() {
		m.waitErr = cmd.Wait()
		if ps := cmd.ProcessState; ps != nil {
			cExecutorCPU.Add(int64(ps.UserTime() + ps.SystemTime()))
		}
		close(m.waited)
	}()
	// Bootstrap handshake runs before the dispatcher exists, so plain
	// deadline reads on the conn are safe here.
	deadline := time.Now().Add(sup.StartTimeout)
	f, err := recvTimeout(m.conn, deadline)
	if err != nil {
		m.destroy(err)
		return nil, core.NewFault(core.FaultExecutor, "start", m.exitError(err))
	}
	if f.typ != msgReady {
		m.destroy(errMuxProtocol)
		return nil, core.Faultf(core.FaultProtocol, "start", "unexpected first message %d", f.typ)
	}
	// Control-stream open: flips the child into multiplexed mode.
	buf := binary.AppendUvarint(nil, 0)
	buf = append(buf, streamCtl)
	if err := m.conn.send(msgOpenStream, buf); err != nil {
		m.destroy(err)
		return nil, core.NewFault(core.FaultExecutor, "start", m.exitError(err))
	}
	f, err = recvTimeout(m.conn, deadline)
	if err != nil {
		m.destroy(err)
		return nil, core.NewFault(core.FaultExecutor, "start", m.exitError(err))
	}
	if f.typ != msgReady {
		m.destroy(errMuxProtocol)
		return nil, core.Faultf(core.FaultProtocol, "start", "unexpected mux handshake reply %d", f.typ)
	}
	go m.dispatch()
	return m, nil
}

var errMuxProtocol = fmt.Errorf("isolate: multiplexed protocol violation")

// recvTimeout reads one frame with a deadline; used only before the
// dispatcher starts (afterwards the dispatcher owns the read side).
func recvTimeout(c *conn, deadline time.Time) (frame, error) {
	type res struct {
		f   frame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := c.recv()
		ch <- res{f, err}
	}()
	d := time.Until(deadline)
	if d <= 0 {
		d = time.Millisecond
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case r := <-ch:
		return r.f, r.err
	case <-t.C:
		return frame{}, fmt.Errorf("isolate: no handshake within %v", d.Round(time.Millisecond))
	}
}

// dispatch owns the read side: it strips the stream tag from every
// frame and routes it to the owning stream (pongs to the ping waiter).
// Any read error or protocol violation destroys the whole process.
func (m *MuxExecutor) dispatch() {
	for {
		f, err := m.conn.recv()
		if err != nil {
			m.destroy(m.exitError(err))
			return
		}
		r := &preader{buf: f.payload}
		sid := r.uvarint()
		if r.err != nil {
			m.destroy(fmt.Errorf("%w: untagged frame %d", errMuxProtocol, f.typ))
			return
		}
		if f.typ == msgPong && sid == 0 {
			select {
			case m.pongCh <- struct{}{}:
			default:
			}
			continue
		}
		m.mu.Lock()
		s := m.streams[sid]
		m.mu.Unlock()
		if s == nil {
			// A frame for a stream closed parent-side mid-flight (e.g. a
			// result racing CloseStream). Dropping it is safe: nobody is
			// waiting, and the child has no per-frame state.
			continue
		}
		buf := append(s.scratch[s.si][:0], f.payload[r.off:]...)
		s.scratch[s.si] = buf
		s.si ^= 1
		select {
		case s.ch <- muxFrame{typ: f.typ, payload: buf}:
		default:
			m.destroy(fmt.Errorf("%w: stream %d flooded (frame %d)", errMuxProtocol, sid, f.typ))
			return
		}
	}
}

// destroy kills and reaps the child, waking every waiter exactly once.
func (m *MuxExecutor) destroy(cause error) {
	m.deadOnce.Do(func() {
		m.deadErr = cause
		select {
		case <-m.waited:
		default:
			m.cmd.Process.Kill()
			cKills.Inc()
		}
		close(m.dead)
		go func() { <-m.waited }() // detach the reap; no zombie either way
	})
}

// exitError augments a pipe error with the child's exit status when it
// has already been reaped.
func (m *MuxExecutor) exitError(err error) error {
	select {
	case <-m.waited:
		if m.waitErr != nil {
			return fmt.Errorf("executor died: %v (pipe: %v)", m.waitErr, err)
		}
		return fmt.Errorf("executor exited (pipe: %v)", err)
	default:
		return err
	}
}

// Alive reports whether the process has not been destroyed.
func (m *MuxExecutor) Alive() bool {
	select {
	case <-m.dead:
		return false
	default:
		return true
	}
}

// Done is closed when the executor process dies for any reason; the
// fleet supervisor watches it to replace dead workers.
func (m *MuxExecutor) Done() <-chan struct{} { return m.dead }

// DeadErr reports why the executor died (nil while alive).
func (m *MuxExecutor) DeadErr() error {
	select {
	case <-m.dead:
		return m.deadErr
	default:
		return nil
	}
}

// PID returns the child's process id.
func (m *MuxExecutor) PID() int { return m.cmd.Process.Pid }

// Resident reports the number of open streams.
func (m *MuxExecutor) Resident() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.streams)
}

// WarmCount reports how many (tenant, UDF, token) bindings this
// executor is believed to hold warm.
func (m *MuxExecutor) WarmCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.warm)
}

// HasWarm reports whether the executor is believed to hold the keyed
// binding warm (the child may have evicted it; a cold warm-open falls
// back to a full setup transparently).
func (m *MuxExecutor) HasWarm(tenant, name, token string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.warm[warmKey(tenant, name, token)]
	return ok
}

// LastPingAge reports the time since the last successful ping (a large
// value before the first ping succeeds).
func (m *MuxExecutor) LastPingAge() time.Duration {
	m.mu.Lock()
	last := m.lastPong
	m.mu.Unlock()
	if last == 0 {
		return time.Duration(1<<62 - 1)
	}
	return time.Since(time.Unix(0, last))
}

// send writes one tagged frame under the write lock, destroying the
// executor on pipe errors.
func (m *MuxExecutor) send(op string, typ byte, payload []byte) error {
	if !m.Alive() {
		return core.NewFault(core.FaultExecutorLost, op, m.lostErr())
	}
	m.wmu.Lock()
	err := m.conn.send(typ, payload)
	m.wmu.Unlock()
	if err != nil {
		m.destroy(m.exitError(err))
		return core.NewFault(core.FaultExecutorLost, op, m.exitError(err))
	}
	return nil
}

// lostErr describes the executor's death for sibling-stream faults.
func (m *MuxExecutor) lostErr() error {
	if m.deadErr != nil {
		return fmt.Errorf("shared executor lost: %v", m.deadErr)
	}
	return fmt.Errorf("shared executor lost")
}

// Ping round-trips a control-stream health probe. A failed or timed-out
// ping destroys the executor.
func (m *MuxExecutor) Ping(timeout time.Duration) error {
	if timeout <= 0 {
		timeout = m.sup.PingTimeout
	}
	// Drain a stale pong from a previously timed-out probe.
	select {
	case <-m.pongCh:
	default:
	}
	if err := m.send("ping", msgPing, binary.AppendUvarint(nil, 0)); err != nil {
		return err
	}
	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-m.pongCh:
		m.mu.Lock()
		m.lastPong = time.Now().UnixNano()
		m.mu.Unlock()
		return nil
	case <-m.dead:
		return core.NewFault(core.FaultExecutorLost, "ping", m.lostErr())
	case <-t.C:
		cTimeouts.Inc()
		m.destroy(fmt.Errorf("ping timeout after %v", timeout))
		return core.Faultf(core.FaultTimeout, "ping", "no pong within %v (executor killed)", timeout)
	}
}

// OpenStream binds a new stream for (tenant, name, token). It first
// attempts a warm open when the executor is believed to hold the
// binding; a cold miss (the child evicted it) falls back to the full
// setup transparently. The returned warm flag reports whether setup
// work was skipped.
func (m *MuxExecutor) OpenStream(tenant, name, token string, setup StreamSetup) (*MuxStream, bool, error) {
	key := warmKey(tenant, name, token)
	m.mu.Lock()
	if !m.Alive() {
		m.mu.Unlock()
		return nil, false, core.NewFault(core.FaultExecutorLost, "setup", m.lostErr())
	}
	m.nextID++
	s := &MuxStream{m: m, id: m.nextID, key: key, ch: make(chan muxFrame, 2)}
	m.streams[s.id] = s
	_, tryWarm := m.warm[key]
	m.mu.Unlock()

	deadline := time.Now().Add(m.sup.SetupTimeout)
	if tryWarm {
		err := m.openAttempt(s, streamWarm, tenant, name, token, setup, deadline)
		if err == nil {
			return s, true, nil
		}
		if core.FaultClassOf(err) != core.FaultUDF {
			m.dropStream(s)
			return nil, false, err
		}
		// Cold: the child evicted the binding. Fall through to full
		// setup on the same stream ID (the failed open left no stream
		// state child-side).
		m.mu.Lock()
		delete(m.warm, key)
		m.mu.Unlock()
	}
	kind := streamNative
	if setup.VM != nil {
		kind = streamVM
	}
	if err := m.openAttempt(s, kind, tenant, name, token, setup, deadline); err != nil {
		m.dropStream(s)
		return nil, false, err
	}
	m.mu.Lock()
	m.warm[key] = struct{}{}
	m.mu.Unlock()
	return s, false, nil
}

// openAttempt sends one msgOpenStream and waits for the tagged reply.
func (m *MuxExecutor) openAttempt(s *MuxStream, kind byte, tenant, name, token string, setup StreamSetup, deadline time.Time) error {
	buf := takePayload()
	buf = binary.AppendUvarint(buf, s.id)
	buf = append(buf, kind)
	buf = appendString(buf, tenant)
	buf = appendString(buf, name)
	buf = appendString(buf, token)
	switch kind {
	case streamNative:
		buf = appendString(buf, setup.Native)
	case streamVM:
		buf = appendBytes(buf, setup.VM.ClassBytes)
		buf = appendString(buf, setup.VM.Method)
		buf = binary.AppendVarint(buf, setup.VM.Limits.Fuel)
		buf = binary.AppendVarint(buf, setup.VM.Limits.MaxAllocBytes)
		buf = binary.AppendVarint(buf, int64(setup.VM.Limits.MaxCallDepth))
	}
	err := m.send("setup", msgOpenStream, buf)
	putPayload(buf)
	if err != nil {
		return err
	}
	f, err := s.await("setup", deadline)
	if err != nil {
		return err
	}
	switch f.typ {
	case msgReady:
		return nil
	case msgError:
		r := &preader{buf: f.payload}
		return core.Faultf(core.FaultUDF, "setup", "executor setup failed: %s", r.str())
	default:
		m.destroy(fmt.Errorf("%w: unexpected setup reply %d", errMuxProtocol, f.typ))
		return core.Faultf(core.FaultProtocol, "setup", "unexpected setup reply %d", f.typ)
	}
}

// dropStream unregisters a stream parent-side (no wire traffic).
func (m *MuxExecutor) dropStream(s *MuxStream) {
	m.mu.Lock()
	delete(m.streams, s.id)
	m.mu.Unlock()
}

// CloseStream releases a stream: fire-and-forget, the child drops the
// stream but keeps its binding warm for the next open.
func (m *MuxExecutor) CloseStream(s *MuxStream) {
	m.dropStream(s)
	if m.Alive() {
		buf := takePayload()
		buf = binary.AppendUvarint(buf, s.id)
		_ = m.send("close", msgCloseStream, buf)
		putPayload(buf)
	}
}

// await blocks for this stream's next routed frame, the executor's
// death, or the deadline — whichever comes first. Expiry destroys the
// whole process (the child is single-threaded; a wedged invoke wedges
// every stream).
func (s *MuxStream) await(op string, deadline time.Time) (muxFrame, error) {
	// Prefer a frame that already arrived over a racing death notice.
	select {
	case f := <-s.ch:
		return f, nil
	default:
	}
	if deadline.IsZero() {
		select {
		case f := <-s.ch:
			return f, nil
		case <-s.m.dead:
			return muxFrame{}, core.NewFault(core.FaultExecutorLost, op, s.m.lostErr())
		}
	}
	d := time.Until(deadline)
	if d <= 0 {
		cTimeouts.Inc()
		s.m.destroy(fmt.Errorf("deadline expired during %s", op))
		return muxFrame{}, core.Faultf(core.FaultTimeout, op, "deadline expired before %s reply", op)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case f := <-s.ch:
		return f, nil
	case <-s.m.dead:
		return muxFrame{}, core.NewFault(core.FaultExecutorLost, op, s.m.lostErr())
	case <-t.C:
		cTimeouts.Inc()
		s.m.destroy(fmt.Errorf("no %s reply within %v", op, d.Round(time.Millisecond)))
		return muxFrame{}, core.Faultf(core.FaultTimeout, op, "no reply within %v (executor killed)", d.Round(time.Millisecond))
	}
}

// sendTraceCtx precedes a traced invocation with a tagged msgTraceCtx
// frame arming span recording on this stream.
func (s *MuxStream) sendTraceCtx(ctx *core.Ctx) (bool, error) {
	if ctx == nil || !ctx.Trace.Detailed() {
		return false, nil
	}
	buf := takePayload()
	buf = binary.AppendUvarint(buf, s.id)
	buf = binary.AppendUvarint(buf, uint64(ctx.Trace.ID()))
	buf = binary.AppendUvarint(buf, 0) // parent span ID (reserved)
	err := s.m.send("invoke", msgTraceCtx, buf)
	putPayload(buf)
	if err != nil {
		return false, err
	}
	return true, nil
}

// Invoke evaluates one row on this stream, exactly mirroring
// Executor.Invoke's semantics (callbacks served inline, merged
// deadline, cloned result) over the tagged protocol.
func (s *MuxStream) Invoke(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	cInvocations.Inc()
	deadline := deadlineFor(s.m.sup.InvokeTimeout, ctx)
	traced, err := s.sendTraceCtx(ctx)
	if err != nil {
		return types.Value{}, err
	}
	buf := takePayload()
	buf = binary.AppendUvarint(buf, s.id)
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = types.EncodeValue(buf, a)
	}
	err = s.m.send("invoke", msgInvoke, buf)
	putPayload(buf)
	if err != nil {
		return types.Value{}, err
	}
	for {
		f, err := s.await("invoke", deadline)
		if err != nil {
			return types.Value{}, err
		}
		switch f.typ {
		case msgResult:
			r := &preader{buf: f.payload}
			v := r.value()
			if r.err != nil {
				s.m.destroy(fmt.Errorf("%w: bad result frame", errMuxProtocol))
				return types.Value{}, core.NewFault(core.FaultProtocol, "invoke", r.err)
			}
			if traced {
				if recs := decodeChildSpans(r); len(recs) > 0 {
					ctx.Trace.Merge(recs, s.m.PID())
				}
			}
			return v.Clone(), nil
		case msgError:
			r := &preader{buf: f.payload}
			return types.Value{}, core.Faultf(core.FaultUDF, "invoke", "UDF failed: %s", r.str())
		case msgCallback:
			if err := s.serveCallback(ctx, f.payload); err != nil {
				return types.Value{}, err
			}
		default:
			s.m.destroy(fmt.Errorf("%w: unexpected message %d during invoke", errMuxProtocol, f.typ))
			return types.Value{}, core.Faultf(core.FaultProtocol, "invoke", "unexpected message %d during invoke", f.typ)
		}
	}
}

// InvokeBatch evaluates len(out) rows in one crossing on this stream,
// mirroring Executor.InvokeBatch.
func (s *MuxStream) InvokeBatch(ctx *core.Ctx, arity int, args []types.Value, out []core.BatchResult) error {
	cInvocations.Inc()
	deadline := deadlineFor(s.m.sup.InvokeTimeout, ctx)
	traced, err := s.sendTraceCtx(ctx)
	if err != nil {
		return err
	}
	buf := takePayload()
	buf = binary.AppendUvarint(buf, s.id)
	buf = binary.AppendUvarint(buf, uint64(len(out)))
	buf = binary.AppendUvarint(buf, uint64(arity))
	for _, a := range args {
		buf = types.EncodeValue(buf, a)
	}
	err = s.m.send("invoke", msgInvokeBatch, buf)
	putPayload(buf)
	if err != nil {
		return err
	}
	for {
		f, err := s.await("invoke", deadline)
		if err != nil {
			return err
		}
		switch f.typ {
		case msgResultBatch:
			return s.decodeBatchResult(f.payload, out, ctx, traced)
		case msgError:
			r := &preader{buf: f.payload}
			return core.Faultf(core.FaultUDF, "invoke", "UDF failed: %s", r.str())
		case msgCallback:
			if err := s.serveCallback(ctx, f.payload); err != nil {
				return err
			}
		default:
			s.m.destroy(fmt.Errorf("%w: unexpected message %d during batch invoke", errMuxProtocol, f.typ))
			return core.Faultf(core.FaultProtocol, "invoke", "unexpected message %d during batch invoke", f.typ)
		}
	}
}

// decodeBatchResult unpacks a msgResultBatch payload into out, cloning
// values out of the routing scratch.
func (s *MuxStream) decodeBatchResult(payload []byte, out []core.BatchResult, ctx *core.Ctx, traced bool) error {
	r := &preader{buf: payload}
	n := int(r.uvarint())
	if r.err == nil && n != len(out) {
		s.m.destroy(fmt.Errorf("%w: batch reply has %d rows, expected %d", errMuxProtocol, n, len(out)))
		return core.Faultf(core.FaultProtocol, "invoke", "batch reply has %d rows, expected %d", n, len(out))
	}
	for i := range out {
		switch status := r.byte(); status {
		case 0:
			v := r.value()
			if r.err == nil {
				out[i] = core.BatchResult{Value: v.Clone()}
			}
		case 1:
			msg := r.str()
			if r.err == nil {
				out[i] = core.BatchResult{Err: core.Faultf(core.FaultUDF, "invoke",
					"UDF failed at batch row %d: %s", i, msg)}
			}
		default:
			if r.err == nil {
				r.err = fmt.Errorf("bad batch row status %d at row %d", status, i)
			}
		}
		if r.err != nil {
			s.m.destroy(fmt.Errorf("%w: %v", errMuxProtocol, r.err))
			return core.NewFault(core.FaultProtocol, "invoke", r.err)
		}
	}
	decodeChildCPU(r, ctx)
	if traced {
		if recs := decodeChildSpans(r); len(recs) > 0 {
			ctx.Trace.Merge(recs, s.m.PID())
		}
	}
	return nil
}

// serveCallback answers one tagged callback request from this stream's
// UDF (the dispatcher routed it here by stream ID).
func (s *MuxStream) serveCallback(ctx *core.Ctx, payload []byte) error {
	r := &preader{buf: payload}
	op := r.byte()
	handle := r.varint()
	off := r.varint()
	length := r.varint()
	if r.err != nil {
		s.m.destroy(fmt.Errorf("%w: bad callback frame", errMuxProtocol))
		return core.NewFault(core.FaultProtocol, "callback", r.err)
	}
	reply := func(payload []byte) error {
		buf := append(binary.AppendUvarint(takePayload(), s.id), payload...)
		err := s.m.send("callback", msgCBResult, buf)
		putPayload(buf)
		return err
	}
	fail := func(err error) error {
		return reply(appendString([]byte{0}, err.Error()))
	}
	if ctx == nil || ctx.Callback == nil {
		return fail(fmt.Errorf("no callback handler installed"))
	}
	switch op {
	case cbSize:
		n, err := ctx.Callback.Size(handle)
		if err != nil {
			return fail(err)
		}
		return reply(binary.AppendVarint([]byte{1}, n))
	case cbGet:
		b, err := ctx.Callback.Get(handle, off)
		if err != nil {
			return fail(err)
		}
		return reply(binary.AppendVarint([]byte{1}, int64(b)))
	case cbRead:
		data, err := ctx.Callback.Read(handle, off, length)
		if err != nil {
			return fail(err)
		}
		return reply(appendBytes([]byte{1}, data))
	case cbTouch:
		if err := ctx.Callback.Touch(handle); err != nil {
			return fail(err)
		}
		return reply(binary.AppendVarint([]byte{1}, 0))
	default:
		return fail(fmt.Errorf("unknown callback op %d", op))
	}
}

// Close shuts the multiplexed executor down: polite tagged msgShutdown,
// grace period, then SIGKILL — mirroring Executor.Close.
func (m *MuxExecutor) Close() error {
	if m.Alive() {
		m.wmu.Lock()
		_ = m.conn.send(msgShutdown, binary.AppendUvarint(nil, 0))
		m.wmu.Unlock()
		t := time.NewTimer(m.sup.ShutdownGrace)
		defer t.Stop()
		select {
		case <-m.waited:
		case <-t.C:
		}
	}
	m.destroy(fmt.Errorf("closed"))
	<-m.waited
	return nil
}
