package isolate

import (
	"strings"
	"syscall"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/types"
)

// fastSup is a supervision policy tuned for tests: tight deadlines,
// quick restarts.
var fastSup = Supervision{
	StartTimeout:   5 * time.Second,
	SetupTimeout:   5 * time.Second,
	InvokeTimeout:  300 * time.Millisecond,
	PingTimeout:    time.Second,
	ShutdownGrace:  200 * time.Millisecond,
	MaxRestarts:    2,
	RestartBackoff: 5 * time.Millisecond,
}

func sumArgs() []types.Value { return []types.Value{types.NewBytes([]byte{1, 2})} }

// reaped reports whether the pid no longer exists (SIGKILLed child has
// been waited on — no zombie left behind).
func reaped(pid int) bool {
	return syscall.Kill(pid, 0) == syscall.ESRCH
}

// TestHungUDFTimesOutAndReaps is the headline supervision property: an
// isolated UDF that hangs forever costs one query — the invocation
// fails with FaultTimeout within the configured deadline, the child is
// killed and reaped (no zombie), and the engine keeps working.
func TestHungUDFTimesOutAndReaps(t *testing.T) {
	t.Setenv(FaultEnv, "invoke:hang")
	e, err := StartExecutorWith(fastSup)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetupNative("sumbytes"); err != nil {
		t.Fatal(err)
	}
	pid := e.PID()
	start := time.Now()
	_, err = e.Invoke(nil, sumArgs())
	elapsed := time.Since(start)
	if core.FaultClassOf(err) != core.FaultTimeout {
		t.Fatalf("hung UDF returned %v (class %v), want FaultTimeout", err, core.FaultClassOf(err))
	}
	if elapsed > 5*time.Second {
		t.Errorf("deadline of %v took %v to fire", fastSup.InvokeTimeout, elapsed)
	}
	if !reaped(pid) {
		t.Errorf("child %d still exists after timeout kill (zombie or leak)", pid)
	}
	if e.Alive() {
		t.Error("executor handle still reports alive after fatal fault")
	}

	// Disarm the fault: the same UDF recovers with a fresh executor.
	InjectFault("")()
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	out, err := u.Invoke(nil, sumArgs())
	if err != nil || out.Int != 3 {
		t.Errorf("recovery invoke = %v, %v; want 3", out, err)
	}
}

// TestHungUDFViaUDFHandle exercises the same path through the
// core.UDF wrapper: timeout, then automatic recovery on the next call
// of the very same handle.
func TestHungUDFViaUDFHandle(t *testing.T) {
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()

	t.Setenv(FaultEnv, "invoke:hang")
	_, err := u.Invoke(nil, sumArgs())
	if core.FaultClassOf(err) != core.FaultTimeout {
		t.Fatalf("err = %v, want FaultTimeout", err)
	}

	InjectFault("")()
	out, err := u.Invoke(nil, sumArgs())
	if err != nil || out.Int != 3 {
		t.Errorf("post-timeout invoke = %v, %v; want 3", out, err)
	}
}

func TestCrashedExecutorClassified(t *testing.T) {
	t.Setenv(FaultEnv, "invoke:crash")
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	_, err := u.Invoke(nil, sumArgs())
	if core.FaultClassOf(err) != core.FaultExecutor {
		t.Fatalf("err = %v (class %v), want FaultExecutor", err, core.FaultClassOf(err))
	}
	InjectFault("")()
	if out, err := u.Invoke(nil, sumArgs()); err != nil || out.Int != 3 {
		t.Errorf("recovery invoke = %v, %v", out, err)
	}
}

func TestBabblingExecutorClassified(t *testing.T) {
	// The child corrupts the frame stream before sending its result: the
	// parent must classify a protocol fault and kill the process.
	t.Setenv(FaultEnv, "result:corrupt")
	e, err := StartExecutorWith(fastSup)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetupNative("sumbytes"); err != nil {
		t.Fatal(err)
	}
	pid := e.PID()
	_, err = e.Invoke(nil, sumArgs())
	if core.FaultClassOf(err) != core.FaultProtocol {
		t.Fatalf("err = %v (class %v), want FaultProtocol", err, core.FaultClassOf(err))
	}
	if !reaped(pid) {
		t.Errorf("babbling child %d not reaped", pid)
	}
}

func TestStalledUDFWithinDeadlineSucceeds(t *testing.T) {
	// A stall shorter than the deadline must NOT trip supervision.
	t.Setenv(FaultEnv, "invoke:stall:50ms")
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	out, err := u.Invoke(nil, sumArgs())
	if err != nil || out.Int != 3 {
		t.Errorf("stalled-but-timely invoke = %v, %v", out, err)
	}
}

func TestSetupCrashRestartsExhaust(t *testing.T) {
	// A child that always dies during setup: the supervisor retries
	// MaxRestarts times with backoff, then reports an executor fault.
	t.Setenv(FaultEnv, "setup:crash")
	before := ReadStats().Restarts
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	_, err := u.Invoke(nil, sumArgs())
	if core.FaultClassOf(err) != core.FaultExecutor {
		t.Fatalf("err = %v (class %v), want FaultExecutor", err, core.FaultClassOf(err))
	}
	if got := ReadStats().Restarts - before; got != int64(fastSup.MaxRestarts) {
		t.Errorf("restart attempts = %d, want %d", got, fastSup.MaxRestarts)
	}
}

func TestStartHangTimesOut(t *testing.T) {
	// A child that never completes the readiness handshake.
	t.Setenv(FaultEnv, "ready:hang")
	sup := fastSup
	sup.StartTimeout = 300 * time.Millisecond
	sup.MaxRestarts = 0
	_, err := StartExecutorWith(sup)
	if core.FaultClassOf(err) != core.FaultTimeout {
		t.Fatalf("err = %v (class %v), want FaultTimeout", err, core.FaultClassOf(err))
	}
}

func TestUnknownNameIsUDFFaultWithoutRestart(t *testing.T) {
	// Deterministic rejections must not burn the restart budget.
	before := ReadStats().Restarts
	u := WithSupervision(NewNativeIsolated("nosuch", nil, types.KindInt), fastSup)
	defer u.Close()
	_, err := u.Invoke(nil, nil)
	if core.FaultClassOf(err) != core.FaultUDF || !strings.Contains(err.Error(), "native table") {
		t.Fatalf("err = %v (class %v), want FaultUDF mentioning the native table", err, core.FaultClassOf(err))
	}
	if got := ReadStats().Restarts - before; got != 0 {
		t.Errorf("deterministic setup rejection consumed %d restarts", got)
	}
}

func TestCloseEscalatesToKill(t *testing.T) {
	// A child that receives msgShutdown and ignores it: Close must
	// return within the grace period plus slack by escalating to
	// SIGKILL, and the child must be reaped.
	t.Setenv(FaultEnv, "shutdown:hang")
	e, err := StartExecutorWith(fastSup)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetupNative("sumbytes"); err != nil {
		t.Fatal(err)
	}
	if out, err := e.Invoke(nil, sumArgs()); err != nil || out.Int != 3 {
		t.Fatalf("invoke before close = %v, %v", out, err)
	}
	pid := e.PID()
	start := time.Now()
	closed := make(chan struct{})
	go func() { e.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung on a child that ignores shutdown")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Close took %v, want ~grace period", elapsed)
	}
	if !reaped(pid) {
		t.Errorf("wedged child %d not reaped by Close", pid)
	}
}

func TestPoolEvictsDeadIdleExecutors(t *testing.T) {
	p := NewPoolWith(2, 0, fastSup)
	defer p.Close()
	u := WithPool(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), p).(*udf)
	if _, err := u.Invoke(nil, sumArgs()); err != nil {
		t.Fatal(err)
	}
	// Kill the idle executor's process behind the pool's back.
	p.mu.Lock()
	if len(p.idle["sumbytes"]) != 1 {
		p.mu.Unlock()
		t.Fatalf("idle = %d, want 1", len(p.idle["sumbytes"]))
	}
	idlePID := p.idle["sumbytes"][0].PID()
	p.mu.Unlock()
	syscall.Kill(idlePID, syscall.SIGKILL)
	time.Sleep(50 * time.Millisecond)

	before := ReadStats().Evictions
	out, err := u.Invoke(nil, sumArgs())
	if err != nil || out.Int != 3 {
		t.Fatalf("invoke after idle death = %v, %v", out, err)
	}
	if got := ReadStats().Evictions - before; got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
}

func TestPoolClosedRejectsGetAndReapsLatePuts(t *testing.T) {
	p := NewPoolWith(2, 0, fastSup)
	u := WithPool(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), p).(*udf)
	e, err := p.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	pid := e.PID()
	p.Close()
	if _, err := p.Get(u); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Errorf("Get on closed pool = %v, want closed error", err)
	}
	// A late Put must close the executor, not stash it.
	p.Put(u, e, nil)
	if !reaped(pid) {
		t.Errorf("executor %d survived Put into a closed pool", pid)
	}
	if n := p.Live(); n != 0 {
		t.Errorf("live = %d after close + late put, want 0", n)
	}
}

func TestPoolCapsLiveExecutors(t *testing.T) {
	p := NewPoolWith(1, 1, fastSup)
	defer p.Close()
	u := WithPool(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), p).(*udf)
	e, err := p.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	// A second Get must block until the first executor is returned.
	got := make(chan *Executor, 1)
	go func() {
		e2, err := p.Get(u)
		if err != nil {
			t.Error(err)
		}
		got <- e2
	}()
	select {
	case <-got:
		t.Fatal("Get exceeded the live-executor cap")
	case <-time.After(150 * time.Millisecond):
	}
	p.Put(u, e, nil)
	select {
	case e2 := <-got:
		p.Put(u, e2, nil)
	case <-time.After(5 * time.Second):
		t.Fatal("capped Get never woke after Put")
	}
	if n := p.Live(); n > 1 {
		t.Errorf("live = %d, cap was 1", n)
	}
}

func TestPingHealthCheck(t *testing.T) {
	e, err := StartExecutorWith(fastSup)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Ping(time.Second); err != nil {
		t.Errorf("ping on healthy executor: %v", err)
	}
	pid := e.PID()
	syscall.Kill(pid, syscall.SIGKILL)
	time.Sleep(50 * time.Millisecond)
	if err := e.Ping(time.Second); err == nil {
		t.Error("ping on killed executor succeeded")
	}
}

func TestInvocationCountersAdvance(t *testing.T) {
	before := ReadStats()
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	for i := 0; i < 3; i++ {
		if _, err := u.Invoke(nil, sumArgs()); err != nil {
			t.Fatal(err)
		}
	}
	after := ReadStats()
	if after.Invocations-before.Invocations != 3 {
		t.Errorf("invocations delta = %d, want 3", after.Invocations-before.Invocations)
	}
	if after.Starts-before.Starts != 1 {
		t.Errorf("starts delta = %d, want 1", after.Starts-before.Starts)
	}
}
