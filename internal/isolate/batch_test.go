package isolate

import (
	"strings"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/jaguar"
	"predator/internal/types"
)

// Tests for the batched crossing (msgInvokeBatch/msgResultBatch): result
// parity with the scalar protocol, per-row error isolation, callbacks
// serviced mid-batch, and crash/hang recovery at batch boundaries.

func batchArgs(n int) []types.Value {
	args := make([]types.Value, n)
	for i := range args {
		args[i] = types.NewBytes([]byte{byte(i), byte(i + 1)})
	}
	return args
}

func asBatch(t *testing.T, u core.UDF) core.BatchUDF {
	t.Helper()
	bu, ok := u.(core.BatchUDF)
	if !ok {
		t.Fatal("isolated UDF does not implement core.BatchUDF")
	}
	return bu
}

func TestInvokeBatchMatchesScalar(t *testing.T) {
	u := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	defer u.Close()
	bu := asBatch(t, u)
	const n = 10
	args := batchArgs(n)
	out := make([]core.BatchResult, n)
	if err := bu.InvokeBatch(nil, 1, args, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want, err := u.Invoke(nil, args[i:i+1])
		if err != nil {
			t.Fatal(err)
		}
		if out[i].Err != nil || out[i].Value.Int != want.Int {
			t.Errorf("row %d: batch=%v (%v), scalar=%v", i, out[i].Value, out[i].Err, want)
		}
	}
}

func TestInvokeBatchPerRowErrorDoesNotPoisonSiblings(t *testing.T) {
	u := NewNativeIsolated("failodd", []types.Kind{types.KindInt}, types.KindInt)
	defer u.Close()
	bu := asBatch(t, u)
	const n = 6
	args := make([]types.Value, n)
	for i := range args {
		args[i] = types.NewInt(int64(i))
	}
	out := make([]core.BatchResult, n)
	if err := bu.InvokeBatch(nil, 1, args, out); err != nil {
		t.Fatalf("whole batch failed: %v", err)
	}
	for i := 0; i < n; i++ {
		if i%2 != 0 {
			if out[i].Err == nil || !strings.Contains(out[i].Err.Error(), "odd input") {
				t.Errorf("row %d: err = %v, want odd-input failure", i, out[i].Err)
			}
			if core.FaultClassOf(out[i].Err) != core.FaultUDF {
				t.Errorf("row %d: class = %v, want FaultUDF", i, core.FaultClassOf(out[i].Err))
			}
			continue
		}
		if out[i].Err != nil || out[i].Value.Int != int64(i*10) {
			t.Errorf("row %d poisoned by odd sibling: %v (%v)", i, out[i].Value, out[i].Err)
		}
	}
	// The executor survives per-row errors and keeps serving.
	if err := bu.InvokeBatch(nil, 1, args[:2], out[:2]); err != nil {
		t.Errorf("follow-up batch failed: %v", err)
	}
}

func TestInvokeBatchServicesCallbacksMidBatch(t *testing.T) {
	u := NewNativeIsolated("cbprobe", []types.Kind{types.KindInt}, types.KindInt)
	defer u.Close()
	bu := asBatch(t, u)
	cb := &memCallback{data: []byte{9, 8, 7}}
	const n = 4
	args := make([]types.Value, n)
	for i := range args {
		args[i] = types.NewInt(1)
	}
	out := make([]core.BatchResult, n)
	if err := bu.InvokeBatch(&core.Ctx{Callback: cb}, 1, args, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		// size=3, get(1)=8, read len=2 -> 3*1000 + 8*10 + 2 = 3082
		if out[i].Err != nil || out[i].Value.Int != 3082 {
			t.Errorf("row %d: %v (%v), want 3082", i, out[i].Value, out[i].Err)
		}
	}
	// cbprobe touches once per row: every row's callbacks crossed the
	// boundary mid-batch, not just the first.
	if cb.touches != n {
		t.Errorf("touches = %d, want %d", cb.touches, n)
	}
}

func TestInvokeBatchCrashMidBatchReportsRowAndRecovers(t *testing.T) {
	t.Setenv(FaultEnv, "batchrow:crash:3")
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	bu := asBatch(t, u)
	const n = 8
	args := batchArgs(n)
	out := make([]core.BatchResult, n)
	err := bu.InvokeBatch(nil, 1, args, out)
	if err == nil {
		t.Fatal("crashed batch reported success")
	}
	// The dying gasp names the in-flight row, so the error pinpoints
	// which row was being evaluated when the child died.
	if !strings.Contains(err.Error(), "batch row 3") {
		t.Errorf("error does not report failing row: %v", err)
	}

	// Disarm and recover: only the in-flight batch was lost; the same
	// handle serves again from a fresh executor. The dying child may
	// still be mid-reap when the error surfaces, so allow one broken
	// handle to be detected and dropped along the way.
	InjectFault("")()
	var rerr error
	for attempt := 0; attempt < 3; attempt++ {
		rerr = bu.InvokeBatch(nil, 1, args, out)
		if rerr == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if rerr != nil {
		t.Fatalf("no clean restart after mid-batch crash: %v", rerr)
	}
	for i := 0; i < n; i++ {
		if out[i].Err != nil || out[i].Value.Int != int64(2*i+1) {
			t.Errorf("post-recovery row %d: %v (%v)", i, out[i].Value, out[i].Err)
		}
	}
}

func TestInvokeBatchHangMidBatchTimesOut(t *testing.T) {
	t.Setenv(FaultEnv, "batchrow:hang:2")
	u := WithSupervision(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), fastSup)
	defer u.Close()
	bu := asBatch(t, u)
	const n = 8
	out := make([]core.BatchResult, n)
	start := time.Now()
	err := bu.InvokeBatch(nil, 1, batchArgs(n), out)
	if core.FaultClassOf(err) != core.FaultTimeout {
		t.Fatalf("hung batch returned %v (class %v), want FaultTimeout", err, core.FaultClassOf(err))
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadline took %v to fire mid-batch", elapsed)
	}
}

func TestInvokeBatchVMIsolated(t *testing.T) {
	classBytes, err := jaguar.CompileToBytes(`
	func triple(n int) int { return n * 3; }`, "Triple")
	if err != nil {
		t.Fatal(err)
	}
	u := NewVMIsolated("triple", []types.Kind{types.KindInt}, types.KindInt, VMSetup{
		ClassBytes: classBytes, Method: "triple",
	})
	defer u.Close()
	bu := asBatch(t, u)
	const n = 7
	args := make([]types.Value, n)
	for i := range args {
		args[i] = types.NewInt(int64(i))
	}
	out := make([]core.BatchResult, n)
	if err := bu.InvokeBatch(nil, 1, args, out); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if out[i].Err != nil || out[i].Value.Int != int64(i*3) {
			t.Errorf("row %d: %v (%v), want %d", i, out[i].Value, out[i].Err, i*3)
		}
	}
}

func TestInvokeBatchOfOneTakesScalarPath(t *testing.T) {
	// n == 1 must delegate to the legacy scalar protocol: a success
	// returns the value, a UDF failure lands in out[0].Err (not the
	// batch-level error), exactly as a one-row batch should.
	sum := asBatch(t, NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt))
	defer sum.Close()
	out := make([]core.BatchResult, 1)
	if err := sum.InvokeBatch(nil, 1, batchArgs(1), out); err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[0].Value.Int != 1 {
		t.Errorf("batch-of-one = %v (%v), want 1", out[0].Value, out[0].Err)
	}

	fail := asBatch(t, NewNativeIsolated("fail", nil, types.KindInt))
	defer fail.Close()
	out[0] = core.BatchResult{}
	if err := fail.InvokeBatch(nil, 0, nil, out); err != nil {
		t.Fatalf("UDF error escaped as batch error: %v", err)
	}
	if out[0].Err == nil || !strings.Contains(out[0].Err.Error(), "deliberate failure") {
		t.Errorf("out[0].Err = %v, want deliberate failure", out[0].Err)
	}
}

func TestInvokeBatchEmptyAndShapeChecks(t *testing.T) {
	u := asBatch(t, NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt))
	defer u.Close()
	// Zero rows is a no-op, not a protocol exchange.
	if err := u.InvokeBatch(nil, 1, nil, nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	// Mismatched arity and ragged args are rejected before any crossing.
	out := make([]core.BatchResult, 2)
	if err := u.InvokeBatch(nil, 2, make([]types.Value, 4), out); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := u.InvokeBatch(nil, 1, make([]types.Value, 3), out); err == nil {
		t.Error("ragged args accepted")
	}
}
