package isolate

import (
	"time"

	"predator/internal/core"
	"predator/internal/obs"
)

// Supervision is the policy the parent enforces on executor processes.
// A zero value means "defaults" (see withDefaults); explicit zero
// semantics are documented per field.
type Supervision struct {
	// StartTimeout bounds process launch plus the readiness handshake.
	StartTimeout time.Duration
	// SetupTimeout bounds one setup round trip (native bind / VM load).
	SetupTimeout time.Duration
	// InvokeTimeout bounds one invocation including all of its
	// callbacks. Zero means no per-invocation bound: only the
	// statement deadline (core.Ctx.Deadline), if any, applies.
	InvokeTimeout time.Duration
	// PingTimeout bounds the pool's idle-executor health probe.
	PingTimeout time.Duration
	// ShutdownGrace is how long Close waits for a polite exit before
	// escalating to SIGKILL.
	ShutdownGrace time.Duration
	// MaxRestarts caps restart attempts after a start or setup failure
	// (so a UDF whose executor can never come up fails the query after
	// a bounded effort instead of retrying forever).
	MaxRestarts int
	// RestartBackoff is the delay before the first restart; it doubles
	// per attempt.
	RestartBackoff time.Duration
	// BreakerFailures is the per-UDF circuit-breaker threshold: that
	// many fatal faults (executor crash, protocol violation, timeout)
	// within BreakerWindow open the breaker, which fails fast until a
	// half-open probe succeeds. 0 = govern's default (5); negative
	// disables the breaker.
	BreakerFailures int
	// BreakerWindow is the breaker's failure-counting window (0 = 10s).
	BreakerWindow time.Duration
	// BreakerCooldown is the open state's duration before a half-open
	// probe is admitted (0 = 2s).
	BreakerCooldown time.Duration
}

// DefaultSupervision is the policy applied where none is configured.
var DefaultSupervision = Supervision{
	StartTimeout:   10 * time.Second,
	SetupTimeout:   10 * time.Second,
	InvokeTimeout:  0, // unbounded unless a statement deadline applies
	PingTimeout:    time.Second,
	ShutdownGrace:  time.Second,
	MaxRestarts:    2,
	RestartBackoff: 25 * time.Millisecond,
}

// withDefaults fills unset fields from DefaultSupervision.
func (s Supervision) withDefaults() Supervision {
	d := DefaultSupervision
	if s.StartTimeout <= 0 {
		s.StartTimeout = d.StartTimeout
	}
	if s.SetupTimeout <= 0 {
		s.SetupTimeout = d.SetupTimeout
	}
	if s.PingTimeout <= 0 {
		s.PingTimeout = d.PingTimeout
	}
	if s.ShutdownGrace <= 0 {
		s.ShutdownGrace = d.ShutdownGrace
	}
	if s.MaxRestarts < 0 {
		s.MaxRestarts = 0
	}
	if s.RestartBackoff <= 0 {
		s.RestartBackoff = d.RestartBackoff
	}
	return s
}

// Stats are cumulative supervision counters for the whole process,
// exposed for the bench harness and operational visibility.
type Stats struct {
	Starts      int64 // executor processes launched
	Invocations int64 // Invoke calls entered
	Timeouts    int64 // deadline expiries that killed an executor
	Kills       int64 // SIGKILLs delivered (timeouts, protocol faults, impolite shutdowns)
	Restarts    int64 // start/setup retry attempts
	Evictions   int64 // dead idle executors evicted by pool health checks
}

// The supervision counters live in the process-wide obs registry
// (predator_isolate_*); these handles are the package's write path.
var (
	cStarts      = obs.Default.Counter("predator_isolate_executor_starts_total")
	cInvocations = obs.Default.Counter("predator_isolate_invocations_total")
	cTimeouts    = obs.Default.Counter("predator_isolate_timeouts_total")
	cKills       = obs.Default.Counter("predator_isolate_kills_total")
	cRestarts    = obs.Default.Counter("predator_isolate_restarts_total")
	cEvictions   = obs.Default.Counter("predator_isolate_pool_evictions_total")
	cPoolLends   = obs.Default.Counter("predator_isolate_pool_lends_total")
	cExecutorCPU = obs.Default.Counter("predator_isolate_executor_cpu_ns_total")
)

// countFault records a classified invocation failure by fault class
// (predator_isolate_faults_total{class="..."}).
func countFault(err error) {
	if class := core.FaultClassOf(err); class != core.FaultNone {
		obs.Default.Counter("predator_isolate_faults_total", "class", class.String()).Inc()
	}
}

// ReadStats snapshots the process-wide supervision counters.
//
// Deprecated: the counters now live in the obs registry under
// predator_isolate_* (SHOW STATS, /metrics); this accessor remains as a
// typed view for existing callers and reads the same underlying values.
func ReadStats() Stats {
	return Stats{
		Starts:      cStarts.Value(),
		Invocations: cInvocations.Value(),
		Timeouts:    cTimeouts.Value(),
		Kills:       cKills.Value(),
		Restarts:    cRestarts.Value(),
		Evictions:   cEvictions.Value(),
	}
}

// startSupervised launches an executor and runs setup on it, retrying
// with exponential backoff on start/setup failures up to
// sup.MaxRestarts times. Deterministic rejections (FaultUDF — unknown
// native name, corrupt class) are returned immediately: restarting
// cannot fix the UDF itself.
func startSupervised(sup Supervision, setup func(*Executor) error) (*Executor, error) {
	sup = sup.withDefaults()
	backoff := sup.RestartBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			cRestarts.Inc()
			obs.Logger().Warn("restarting UDF executor",
				"component", "isolate", "attempt", attempt,
				"max_restarts", sup.MaxRestarts, "backoff", backoff, "error", err)
			time.Sleep(backoff)
			backoff *= 2
		}
		var e *Executor
		e, err = StartExecutorWith(sup)
		if err == nil {
			if setup == nil {
				return e, nil
			}
			err = setup(e)
			if err == nil {
				return e, nil
			}
			e.Close()
			if core.FaultClassOf(err) == core.FaultUDF {
				return nil, err
			}
		}
		if attempt >= sup.MaxRestarts {
			return nil, err
		}
	}
}

// deadlineFor merges the per-invocation bound with the statement
// deadline, returning the earliest (zero = unbounded).
func deadlineFor(invokeTimeout time.Duration, ctx *core.Ctx) time.Time {
	var dl time.Time
	if invokeTimeout > 0 {
		dl = time.Now().Add(invokeTimeout)
	}
	if ctx != nil && !ctx.Deadline.IsZero() && (dl.IsZero() || ctx.Deadline.Before(dl)) {
		dl = ctx.Deadline
	}
	return dl
}
