// Package isolate implements the isolated-process UDF designs (the
// paper's Design 2 "IC++" and Design 4): the UDF runs in a separate
// executor OS process, with arguments, results and callbacks crossing
// the process boundary on a framed pipe protocol.
//
// The paper's implementation used shared memory plus semaphores; pipes
// preserve the same cost structure — a per-invocation crossing whose
// cost is independent of UDF computation but grows with the bytes
// copied, and a double crossing for every callback (see DESIGN.md).
//
// The executor is the same program binary re-executed with
// ExecutorEnv set (call MaybeRunExecutor early in main or TestMain),
// so native UDF implementations are available on both sides.
package isolate

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"predator/internal/types"
)

// ExecutorEnv marks a process as a UDF executor when set to "1".
const ExecutorEnv = "PREDATOR_UDF_EXECUTOR"

// maxFrame bounds a single protocol frame (64 MiB).
const maxFrame = 64 << 20

// errFrameSize marks a framing violation — the peer announced an
// impossible frame (a babbling child), distinct from a broken pipe.
var errFrameSize = errors.New("frame exceeds size limit")

// Message types.
const (
	msgSetupNative byte = iota + 1 // name
	msgSetupVM                     // class bytes, method, limits
	msgInvoke                      // argc, values
	msgResult                      // value
	msgError                       // string
	msgCallback                    // op, handle, off, len
	msgCBResult                    // ok flag, payload
	msgShutdown                    // none
	msgReady                       // none
	msgPing                        // none (health check)
	msgPong                        // none (health check reply)
	msgInvokeBatch                 // n, arity, n*arity values (one crossing)
	msgResultBatch                 // n, per row: status byte + value | error string
	msgTraceCtx                    // trace id, parent span id (precedes a traced invoke)
	msgOpenStream                  // sid, kind, setup (multiplexed executors only)
	msgCloseStream                 // sid (multiplexed executors only)
)

// Stream-open kinds inside msgOpenStream frames. The first open a child
// ever sees (streamCtl on stream 0) switches the connection into
// multiplexed mode: from then on every frame payload in both directions
// is prefixed with a uvarint stream ID. A child that never receives
// msgOpenStream speaks the untagged dedicated-executor protocol,
// byte-identical to every release before the fleet existed.
const (
	streamCtl    byte = iota // control stream 0: enables mux mode
	streamWarm               // bind a cached (tenant, UDF, token) warm entry; error if cold
	streamNative             // bind a native UDF (name follows)
	streamVM                 // bind a VM UDF (class/method/limits follow)
)

// Callback operation codes inside msgCallback frames.
const (
	cbSize byte = iota + 1
	cbGet
	cbRead
	cbTouch
)

// frame is one decoded protocol message.
type frame struct {
	typ     byte
	payload []byte
}

// conn wraps the two pipe ends with buffered framing.
type conn struct {
	r *bufio.Reader
	w *bufio.Writer

	// rbuf is the grow-only receive scratch: recv decodes every frame
	// into it instead of allocating per frame. A frame's payload is
	// valid only until the next recv on this conn; callers that keep
	// payload data across a recv (nested callback round trips, cloned
	// result values) must copy it out first.
	rbuf []byte
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{r: bufio.NewReaderSize(r, 64<<10), w: bufio.NewWriterSize(w, 64<<10)}
}

// send writes one frame and flushes (the peer blocks on it).
func (c *conn) send(typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("isolate: write frame header: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("isolate: write frame payload: %w", err)
	}
	return c.w.Flush()
}

// recv reads one frame into the connection's grow-only scratch buffer.
// The returned payload is only valid until the next recv (see conn).
func (c *conn) recv() (frame, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return frame{}, fmt.Errorf("isolate: read frame header: %w", err)
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return frame{}, fmt.Errorf("isolate: frame of %d bytes: %w", n, errFrameSize)
	}
	if uint32(cap(c.rbuf)) < n {
		c.rbuf = make([]byte, n)
	}
	payload := c.rbuf[:n]
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return frame{}, fmt.Errorf("isolate: read frame payload: %w", err)
	}
	return frame{typ: hdr[4], payload: payload}, nil
}

// payloadPool recycles send-side payload builders so encoding a frame
// (invoke arguments, batch results) does not allocate per crossing.
var payloadPool = sync.Pool{New: func() any { return []byte(nil) }}

// takePayload returns an empty builder with whatever capacity a prior
// frame grew it to.
func takePayload() []byte { return payloadPool.Get().([]byte)[:0] }

// putPayload returns a builder to the pool after its frame is flushed.
func putPayload(buf []byte) {
	if cap(buf) <= maxFrame {
		payloadPool.Put(buf[:0]) //nolint:staticcheck // slice header allocation is amortized
	}
}

// Payload builders and parsers.

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// preader is a cursor over a frame payload.
type preader struct {
	buf []byte
	off int
	err error
}

func (r *preader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("isolate: truncated frame at offset %d", r.off)
	}
}

func (r *preader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *preader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.off += n
	return v
}

func (r *preader) byte() byte {
	if r.err != nil || r.off >= len(r.buf) {
		r.fail()
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

func (r *preader) bytes() []byte {
	n := int(r.uvarint())
	if r.err != nil || n < 0 || r.off+n > len(r.buf) {
		r.fail()
		return nil
	}
	out := r.buf[r.off : r.off+n]
	r.off += n
	return out
}

func (r *preader) str() string { return string(r.bytes()) }

func (r *preader) value() types.Value {
	if r.err != nil {
		return types.Value{}
	}
	v, n, err := types.DecodeValue(r.buf[r.off:])
	if err != nil {
		r.err = err
		return types.Value{}
	}
	r.off += n
	return v
}
