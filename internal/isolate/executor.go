package isolate

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"predator/internal/core"
	"predator/internal/jvm"
	"predator/internal/types"
)

// Executor is the parent-side handle to one executor process. An
// executor hosts exactly one UDF and evaluates one invocation at a
// time (the paper assigns one remote executor per UDF per query).
type Executor struct {
	mu   sync.Mutex
	cmd  *exec.Cmd
	conn *conn
	done bool
}

// StartExecutor launches a new executor process by re-executing the
// current binary with ExecutorEnv set.
func StartExecutor() (*Executor, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("isolate: locate executable: %w", err)
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), ExecutorEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("isolate: start executor: %w", err)
	}
	e := &Executor{cmd: cmd, conn: newConn(stdout, stdin)}
	// Wait for the child to signal readiness.
	f, err := e.conn.recv()
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("isolate: executor did not start: %w", err)
	}
	if f.typ != msgReady {
		cmd.Process.Kill()
		cmd.Wait()
		return nil, fmt.Errorf("isolate: unexpected first message %d", f.typ)
	}
	return e, nil
}

// SetupNative binds the executor to the named native UDF, which must
// be present in the executor's native table (see MaybeRunExecutor).
func (e *Executor) SetupNative(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.conn.send(msgSetupNative, appendString(nil, name)); err != nil {
		return err
	}
	return e.awaitReadyLocked()
}

// VMSetup describes the Jaguar UDF an executor should host (Design 4).
type VMSetup struct {
	ClassBytes []byte
	Method     string
	Limits     jvm.Limits
}

// SetupVM ships a verified Jaguar class to the executor, which loads
// (and re-verifies) it in its own VM.
func (e *Executor) SetupVM(s VMSetup) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf := appendBytes(nil, s.ClassBytes)
	buf = appendString(buf, s.Method)
	buf = binary.AppendVarint(buf, s.Limits.Fuel)
	buf = binary.AppendVarint(buf, s.Limits.MaxAllocBytes)
	buf = binary.AppendVarint(buf, int64(s.Limits.MaxCallDepth))
	if err := e.conn.send(msgSetupVM, buf); err != nil {
		return err
	}
	return e.awaitReadyLocked()
}

func (e *Executor) awaitReadyLocked() error {
	f, err := e.conn.recv()
	if err != nil {
		return err
	}
	switch f.typ {
	case msgReady:
		return nil
	case msgError:
		r := &preader{buf: f.payload}
		return fmt.Errorf("isolate: executor setup failed: %s", r.str())
	default:
		return fmt.Errorf("isolate: unexpected setup reply %d", f.typ)
	}
}

// Invoke evaluates the UDF in the executor process. Arguments and the
// result are copied across the process boundary; callbacks made by the
// UDF are served by ctx.Callback, each one a round trip.
func (e *Executor) Invoke(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf := binary.AppendUvarint(nil, uint64(len(args)))
	for _, a := range args {
		buf = types.EncodeValue(buf, a)
	}
	if err := e.conn.send(msgInvoke, buf); err != nil {
		return types.Value{}, err
	}
	for {
		f, err := e.conn.recv()
		if err != nil {
			return types.Value{}, err
		}
		switch f.typ {
		case msgResult:
			r := &preader{buf: f.payload}
			v := r.value()
			if r.err != nil {
				return types.Value{}, r.err
			}
			return v.Clone(), nil
		case msgError:
			r := &preader{buf: f.payload}
			return types.Value{}, fmt.Errorf("isolate: UDF failed: %s", r.str())
		case msgCallback:
			if err := e.serveCallbackLocked(ctx, f.payload); err != nil {
				return types.Value{}, err
			}
		default:
			return types.Value{}, fmt.Errorf("isolate: unexpected message %d during invoke", f.typ)
		}
	}
}

// serveCallbackLocked answers one callback request from the executor.
func (e *Executor) serveCallbackLocked(ctx *core.Ctx, payload []byte) error {
	r := &preader{buf: payload}
	op := r.byte()
	handle := r.varint()
	off := r.varint()
	length := r.varint()
	if r.err != nil {
		return r.err
	}
	fail := func(err error) error {
		return e.conn.send(msgCBResult, appendString([]byte{0}, err.Error()))
	}
	if ctx == nil || ctx.Callback == nil {
		return fail(fmt.Errorf("no callback handler installed"))
	}
	switch op {
	case cbSize:
		n, err := ctx.Callback.Size(handle)
		if err != nil {
			return fail(err)
		}
		return e.conn.send(msgCBResult, binary.AppendVarint([]byte{1}, n))
	case cbGet:
		b, err := ctx.Callback.Get(handle, off)
		if err != nil {
			return fail(err)
		}
		return e.conn.send(msgCBResult, binary.AppendVarint([]byte{1}, int64(b)))
	case cbRead:
		data, err := ctx.Callback.Read(handle, off, length)
		if err != nil {
			return fail(err)
		}
		return e.conn.send(msgCBResult, appendBytes([]byte{1}, data))
	case cbTouch:
		if err := ctx.Callback.Touch(handle); err != nil {
			return fail(err)
		}
		return e.conn.send(msgCBResult, binary.AppendVarint([]byte{1}, 0))
	default:
		return fail(fmt.Errorf("unknown callback op %d", op))
	}
}

// Close shuts the executor process down.
func (e *Executor) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return nil
	}
	e.done = true
	// Best effort: polite shutdown, then reap.
	_ = e.conn.send(msgShutdown, nil)
	err := e.cmd.Wait()
	if err != nil {
		// The child may already be gone; that is fine for shutdown.
		if _, ok := err.(*exec.ExitError); ok {
			return nil
		}
		if err == io.ErrClosedPipe {
			return nil
		}
	}
	return nil
}
