package isolate

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"sync"
	"time"

	"predator/internal/core"
	"predator/internal/jvm"
	"predator/internal/types"
)

// Executor is the parent-side handle to one executor process. An
// executor hosts exactly one UDF and evaluates one invocation at a
// time (the paper assigns one remote executor per UDF per query).
//
// The handle supervises the child: every wait on the pipe can carry a
// deadline, and any deadline expiry, protocol violation or pipe break
// SIGKILLs and reaps the child — a broken executor is never reused.
type Executor struct {
	mu     sync.Mutex
	cmd    *exec.Cmd
	conn   *conn
	sup    Supervision
	done   bool // child reaped; handle unusable
	broken bool // fatal fault observed; must not be reused or pooled

	// waited closes once the background reaper has collected the
	// child's exit status (so no path can leak a zombie).
	waited  chan struct{}
	waitErr error
}

// StartExecutor launches a new executor process under the default
// supervision policy.
func StartExecutor() (*Executor, error) {
	return StartExecutorWith(DefaultSupervision)
}

// StartExecutorWith launches a new executor process by re-executing
// the current binary with ExecutorEnv set, bounding the launch and
// readiness handshake by sup.StartTimeout.
func StartExecutorWith(sup Supervision) (*Executor, error) {
	sup = sup.withDefaults()
	self, err := os.Executable()
	if err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", fmt.Errorf("locate executable: %w", err))
	}
	cmd := exec.Command(self)
	cmd.Env = append(os.Environ(), ExecutorEnv+"=1")
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, core.NewFault(core.FaultExecutor, "start", fmt.Errorf("start executor: %w", err))
	}
	cStarts.Inc()
	e := &Executor{cmd: cmd, conn: newConn(stdout, stdin), sup: sup, waited: make(chan struct{})}
	// Reap in the background: whatever way the child dies, its exit
	// status is collected exactly once and no zombie remains. The reap
	// is also where the child's true CPU time (rusage) becomes known,
	// so the process-wide executor CPU counter is charged here.
	go func() {
		e.waitErr = cmd.Wait()
		if ps := cmd.ProcessState; ps != nil {
			cExecutorCPU.Add(int64(ps.UserTime() + ps.SystemTime()))
		}
		close(e.waited)
	}()
	// Wait for the child to signal readiness, under the start deadline.
	e.mu.Lock()
	defer e.mu.Unlock()
	f, err := e.recvDeadlineLocked("start", time.Now().Add(sup.StartTimeout))
	if err != nil {
		e.destroyLocked()
		return nil, err
	}
	if f.typ != msgReady {
		e.destroyLocked()
		return nil, core.Faultf(core.FaultProtocol, "start", "unexpected first message %d", f.typ)
	}
	return e, nil
}

// recvDeadlineLocked reads one frame, killing the child and returning
// a FaultTimeout if the deadline (non-zero) expires first. Pipe errors
// destroy the executor and classify as FaultExecutor. The caller holds
// e.mu. A timed-out read abandons its reader goroutine; that is safe
// because timeout always destroys the executor, so no later read can
// race with the abandoned one.
func (e *Executor) recvDeadlineLocked(op string, deadline time.Time) (frame, error) {
	if deadline.IsZero() {
		f, err := e.conn.recv()
		if err != nil {
			class := classifyRecvErr(err)
			e.destroyLocked()
			return frame{}, core.NewFault(class, op, e.exitError(err))
		}
		return f, nil
	}
	d := time.Until(deadline)
	if d <= 0 {
		cTimeouts.Inc()
		e.destroyLocked()
		return frame{}, core.Faultf(core.FaultTimeout, op, "deadline expired before %s reply", op)
	}
	type res struct {
		f   frame
		err error
	}
	ch := make(chan res, 1)
	go func() {
		f, err := e.conn.recv()
		ch <- res{f, err}
	}()
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case r := <-ch:
		if r.err != nil {
			class := classifyRecvErr(r.err)
			e.destroyLocked()
			return frame{}, core.NewFault(class, op, e.exitError(r.err))
		}
		return r.f, nil
	case <-t.C:
		cTimeouts.Inc()
		e.destroyLocked()
		return frame{}, core.Faultf(core.FaultTimeout, op, "no reply within %v (executor killed)", d.Round(time.Millisecond))
	}
}

// classifyRecvErr distinguishes a babbling child (invalid framing —
// the protocol itself was violated) from a dead one (broken pipe).
func classifyRecvErr(err error) core.FaultClass {
	if errors.Is(err, errFrameSize) {
		return core.FaultProtocol
	}
	return core.FaultExecutor
}

// exitError augments a pipe error with the child's exit status when it
// has already been reaped (e.g. "executor exited: exit status 42").
func (e *Executor) exitError(err error) error {
	select {
	case <-e.waited:
		if e.waitErr != nil {
			return fmt.Errorf("executor died: %v (pipe: %v)", e.waitErr, err)
		}
		return fmt.Errorf("executor exited (pipe: %v)", err)
	default:
		return err
	}
}

// destroyLocked SIGKILLs the child (if still running) and reaps it.
// After destroy the handle is done and never reusable.
func (e *Executor) destroyLocked() {
	if e.done {
		return
	}
	e.done = true
	e.broken = true
	select {
	case <-e.waited:
		// Already exited and reaped.
	default:
		e.cmd.Process.Kill()
		cKills.Inc()
		<-e.waited
	}
}

// sendLocked writes one frame, destroying the executor on pipe errors.
func (e *Executor) sendLocked(op string, typ byte, payload []byte) error {
	if e.done || e.broken {
		return core.Faultf(core.FaultExecutor, op, "executor is closed")
	}
	if err := e.conn.send(typ, payload); err != nil {
		e.destroyLocked()
		return core.NewFault(core.FaultExecutor, op, e.exitError(err))
	}
	return nil
}

// SetupNative binds the executor to the named native UDF, which must
// be present in the executor's native table (see MaybeRunExecutor).
func (e *Executor) SetupNative(name string) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.sendLocked("setup", msgSetupNative, appendString(nil, name)); err != nil {
		return err
	}
	return e.awaitReadyLocked()
}

// VMSetup describes the Jaguar UDF an executor should host (Design 4).
type VMSetup struct {
	ClassBytes []byte
	Method     string
	Limits     jvm.Limits
}

// SetupVM ships a verified Jaguar class to the executor, which loads
// (and re-verifies) it in its own VM.
func (e *Executor) SetupVM(s VMSetup) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	buf := appendBytes(nil, s.ClassBytes)
	buf = appendString(buf, s.Method)
	buf = binary.AppendVarint(buf, s.Limits.Fuel)
	buf = binary.AppendVarint(buf, s.Limits.MaxAllocBytes)
	buf = binary.AppendVarint(buf, int64(s.Limits.MaxCallDepth))
	if err := e.sendLocked("setup", msgSetupVM, buf); err != nil {
		return err
	}
	return e.awaitReadyLocked()
}

func (e *Executor) awaitReadyLocked() error {
	f, err := e.recvDeadlineLocked("setup", time.Now().Add(e.sup.SetupTimeout))
	if err != nil {
		return err
	}
	switch f.typ {
	case msgReady:
		return nil
	case msgError:
		// A clean rejection: the UDF (name, class) is bad, the
		// executor itself is healthy and restarting cannot help.
		r := &preader{buf: f.payload}
		return core.Faultf(core.FaultUDF, "setup", "executor setup failed: %s", r.str())
	default:
		e.destroyLocked()
		return core.Faultf(core.FaultProtocol, "setup", "unexpected setup reply %d", f.typ)
	}
}

// Ping round-trips a health probe with its own deadline. A failed ping
// destroys the executor and returns the classified fault.
func (e *Executor) Ping(timeout time.Duration) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if timeout <= 0 {
		timeout = e.sup.PingTimeout
	}
	if err := e.sendLocked("ping", msgPing, nil); err != nil {
		return err
	}
	f, err := e.recvDeadlineLocked("ping", time.Now().Add(timeout))
	if err != nil {
		return err
	}
	if f.typ != msgPong {
		e.destroyLocked()
		return core.Faultf(core.FaultProtocol, "ping", "unexpected ping reply %d", f.typ)
	}
	return nil
}

// Alive reports whether the child process is still running and no
// fatal fault has been observed. It is a cheap local check; Ping
// verifies the protocol loop end to end.
func (e *Executor) Alive() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done || e.broken {
		return false
	}
	select {
	case <-e.waited:
		return false
	default:
		return true
	}
}

// PID returns the child's process id (for diagnostics and tests).
func (e *Executor) PID() int { return e.cmd.Process.Pid }

// Invoke evaluates the UDF in the executor process. Arguments and the
// result are copied across the process boundary; callbacks made by the
// UDF are served by ctx.Callback, each one a round trip. The whole
// invocation — callbacks included — runs under the merged deadline of
// the supervision policy's InvokeTimeout and ctx.Deadline; expiry
// kills the executor and yields a FaultTimeout.
func (e *Executor) Invoke(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	cInvocations.Inc()
	deadline := deadlineFor(e.sup.InvokeTimeout, ctx)
	traced, err := e.sendTraceCtxLocked(ctx)
	if err != nil {
		return types.Value{}, err
	}
	buf := takePayload()
	buf = binary.AppendUvarint(buf, uint64(len(args)))
	for _, a := range args {
		buf = types.EncodeValue(buf, a)
	}
	err = e.sendLocked("invoke", msgInvoke, buf)
	putPayload(buf)
	if err != nil {
		return types.Value{}, err
	}
	for {
		f, err := e.recvDeadlineLocked("invoke", deadline)
		if err != nil {
			return types.Value{}, err
		}
		switch f.typ {
		case msgResult:
			r := &preader{buf: f.payload}
			v := r.value()
			if r.err != nil {
				e.destroyLocked()
				return types.Value{}, core.NewFault(core.FaultProtocol, "invoke", r.err)
			}
			if traced {
				e.mergeChildSpansLocked(ctx, r)
			}
			return v.Clone(), nil
		case msgError:
			r := &preader{buf: f.payload}
			return types.Value{}, core.Faultf(core.FaultUDF, "invoke", "UDF failed: %s", r.str())
		case msgCallback:
			if err := e.serveCallbackLocked(ctx, f.payload); err != nil {
				return types.Value{}, err
			}
		default:
			e.destroyLocked()
			return types.Value{}, core.Faultf(core.FaultProtocol, "invoke", "unexpected message %d during invoke", f.typ)
		}
	}
}

// InvokeBatch evaluates len(out) rows in one process-boundary crossing
// (msgInvokeBatch carries every argument vector; msgResultBatch carries
// every result). Callbacks are serviced mid-batch exactly as in Invoke.
// Per-row UDF failures come back in out[i].Err and do not poison
// sibling rows; a non-nil return is a whole-batch boundary fault
// (timeout, crash, protocol violation) and the executor is destroyed
// where the protocol demands it, same as the scalar path.
func (e *Executor) InvokeBatch(ctx *core.Ctx, arity int, args []types.Value, out []core.BatchResult) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	cInvocations.Inc()
	deadline := deadlineFor(e.sup.InvokeTimeout, ctx)
	traced, err := e.sendTraceCtxLocked(ctx)
	if err != nil {
		return err
	}
	buf := takePayload()
	buf = binary.AppendUvarint(buf, uint64(len(out)))
	buf = binary.AppendUvarint(buf, uint64(arity))
	for _, a := range args {
		buf = types.EncodeValue(buf, a)
	}
	err = e.sendLocked("invoke", msgInvokeBatch, buf)
	putPayload(buf)
	if err != nil {
		return err
	}
	for {
		f, err := e.recvDeadlineLocked("invoke", deadline)
		if err != nil {
			return err
		}
		switch f.typ {
		case msgResultBatch:
			return e.decodeBatchResultLocked(f.payload, out, ctx, traced)
		case msgError:
			// Whole-batch rejection (bad frame, injected crash notice):
			// the batch as a unit failed before per-row results existed.
			r := &preader{buf: f.payload}
			return core.Faultf(core.FaultUDF, "invoke", "UDF failed: %s", r.str())
		case msgCallback:
			if err := e.serveCallbackLocked(ctx, f.payload); err != nil {
				return err
			}
		default:
			e.destroyLocked()
			return core.Faultf(core.FaultProtocol, "invoke", "unexpected message %d during batch invoke", f.typ)
		}
	}
}

// sendTraceCtxLocked precedes a traced invocation with a msgTraceCtx
// frame so the child records and ships its own spans. Untraced
// invocations send nothing — the wire stays byte-identical to the
// untraced protocol.
func (e *Executor) sendTraceCtxLocked(ctx *core.Ctx) (bool, error) {
	if ctx == nil || !ctx.Trace.Detailed() {
		return false, nil
	}
	buf := takePayload()
	buf = binary.AppendUvarint(buf, uint64(ctx.Trace.ID()))
	buf = binary.AppendUvarint(buf, 0) // parent span ID (reserved)
	err := e.sendLocked("invoke", msgTraceCtx, buf)
	putPayload(buf)
	if err != nil {
		return false, err
	}
	return true, nil
}

// mergeChildSpansLocked folds the span tail of a traced result frame
// into the invocation's trace, attributed to the child's PID. A missing
// or malformed tail is ignored rather than failing the invocation: the
// result value already decoded, and spans are diagnostics.
func (e *Executor) mergeChildSpansLocked(ctx *core.Ctx, r *preader) {
	recs := decodeChildSpans(r)
	if len(recs) > 0 {
		ctx.Trace.Merge(recs, e.PID())
	}
}

// decodeChildCPU consumes the CPU-attribution uvarint a child appends
// after the rows of a msgResultBatch frame and accumulates it on the
// invocation context. Like span tails, the value is diagnostics: a
// missing or malformed tail is ignored rather than failing the
// invocation (the rows already decoded), and the reader's error state
// is reset so a traced span tail after it can still be attempted.
func decodeChildCPU(r *preader, ctx *core.Ctx) {
	cpu := r.uvarint()
	if r.err != nil {
		r.err = nil
		return
	}
	ctx.AddReportedCPU(time.Duration(cpu))
}

// decodeBatchResultLocked unpacks a msgResultBatch payload into out.
// Values are cloned out of the connection's receive scratch before the
// next recv can reuse it.
func (e *Executor) decodeBatchResultLocked(payload []byte, out []core.BatchResult, ctx *core.Ctx, traced bool) error {
	r := &preader{buf: payload}
	n := int(r.uvarint())
	if r.err == nil && n != len(out) {
		e.destroyLocked()
		return core.Faultf(core.FaultProtocol, "invoke", "batch reply has %d rows, expected %d", n, len(out))
	}
	for i := range out {
		switch status := r.byte(); status {
		case 0:
			v := r.value()
			if r.err == nil {
				out[i] = core.BatchResult{Value: v.Clone()}
			}
		case 1:
			msg := r.str()
			if r.err == nil {
				out[i] = core.BatchResult{Err: core.Faultf(core.FaultUDF, "invoke",
					"UDF failed at batch row %d: %s", i, msg)}
			}
		default:
			if r.err == nil {
				r.err = fmt.Errorf("bad batch row status %d at row %d", status, i)
			}
		}
		if r.err != nil {
			e.destroyLocked()
			return core.NewFault(core.FaultProtocol, "invoke", r.err)
		}
	}
	decodeChildCPU(r, ctx)
	if traced {
		e.mergeChildSpansLocked(ctx, r)
	}
	return nil
}

// serveCallbackLocked answers one callback request from the executor.
func (e *Executor) serveCallbackLocked(ctx *core.Ctx, payload []byte) error {
	r := &preader{buf: payload}
	op := r.byte()
	handle := r.varint()
	off := r.varint()
	length := r.varint()
	if r.err != nil {
		e.destroyLocked()
		return core.NewFault(core.FaultProtocol, "callback", r.err)
	}
	fail := func(err error) error {
		return e.sendLocked("callback", msgCBResult, appendString([]byte{0}, err.Error()))
	}
	if ctx == nil || ctx.Callback == nil {
		return fail(fmt.Errorf("no callback handler installed"))
	}
	switch op {
	case cbSize:
		n, err := ctx.Callback.Size(handle)
		if err != nil {
			return fail(err)
		}
		return e.sendLocked("callback", msgCBResult, binary.AppendVarint([]byte{1}, n))
	case cbGet:
		b, err := ctx.Callback.Get(handle, off)
		if err != nil {
			return fail(err)
		}
		return e.sendLocked("callback", msgCBResult, binary.AppendVarint([]byte{1}, int64(b)))
	case cbRead:
		data, err := ctx.Callback.Read(handle, off, length)
		if err != nil {
			return fail(err)
		}
		return e.sendLocked("callback", msgCBResult, appendBytes([]byte{1}, data))
	case cbTouch:
		if err := ctx.Callback.Touch(handle); err != nil {
			return fail(err)
		}
		return e.sendLocked("callback", msgCBResult, binary.AppendVarint([]byte{1}, 0))
	default:
		return fail(fmt.Errorf("unknown callback op %d", op))
	}
}

// Close shuts the executor process down: polite msgShutdown first,
// then — if the child has not exited within the grace period — SIGKILL
// and reap, so Close can never hang on a wedged child.
func (e *Executor) Close() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return nil
	}
	e.broken = true
	// Best effort politeness; a dead pipe just means the child is
	// already gone and the reaper will (or did) collect it.
	_ = e.conn.send(msgShutdown, nil)
	t := time.NewTimer(e.sup.ShutdownGrace)
	defer t.Stop()
	select {
	case <-e.waited:
	case <-t.C:
		e.cmd.Process.Kill()
		cKills.Inc()
		<-e.waited
	}
	e.done = true
	return nil
}
