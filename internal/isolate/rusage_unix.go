//go:build unix

package isolate

import (
	"syscall"
	"time"
)

// selfCPUNanos returns the process's cumulative user+system CPU time.
// Child executors sample it around a batch invocation and report the
// delta on the result frame so the parent can attribute executor CPU
// to the owning tenant. Returns 0 when rusage is unavailable.
func selfCPUNanos() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
