package isolate

import (
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"

	"predator/internal/core"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/types"
)

// testNatives is the native table shared by the parent test process
// and the re-executed executor children.
var testNatives = NativeTable{
	"sumbytes": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		var acc int64
		for _, b := range args[0].Bytes {
			acc += int64(b)
		}
		return types.NewInt(acc), nil
	},
	"fail": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		return types.Value{}, fmt.Errorf("deliberate failure")
	},
	// failodd fails for odd arguments — the per-row error case of a
	// batched invocation (even-argument siblings must still succeed).
	"failodd": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		if args[0].Int%2 != 0 {
			return types.Value{}, fmt.Errorf("odd input %d rejected", args[0].Int)
		}
		return types.NewInt(args[0].Int * 10), nil
	},
	"crash": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		os.Exit(3) // simulates the UDF taking down its process
		return types.Value{}, nil
	},
	"cbprobe": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		n, err := ctx.Callback.Size(args[0].Int)
		if err != nil {
			return types.Value{}, err
		}
		b, err := ctx.Callback.Get(args[0].Int, 1)
		if err != nil {
			return types.Value{}, err
		}
		data, err := ctx.Callback.Read(args[0].Int, 0, 2)
		if err != nil {
			return types.Value{}, err
		}
		if err := ctx.Callback.Touch(args[0].Int); err != nil {
			return types.Value{}, err
		}
		return types.NewInt(n*1000 + int64(b)*10 + int64(len(data))), nil
	},
}

func TestMain(m *testing.M) {
	MaybeRunExecutor(testNatives)
	os.Exit(m.Run())
}

type memCallback struct {
	data    []byte
	touches int
}

func (c *memCallback) Size(int64) (int64, error) { return int64(len(c.data)), nil }
func (c *memCallback) Get(_, off int64) (byte, error) {
	if off < 0 || off >= int64(len(c.data)) {
		return 0, fmt.Errorf("offset out of range")
	}
	return c.data[off], nil
}
func (c *memCallback) Read(_, off, n int64) ([]byte, error) {
	if off < 0 || n < 0 || off+n > int64(len(c.data)) {
		return nil, fmt.Errorf("range out of bounds")
	}
	out := make([]byte, n)
	copy(out, c.data[off:])
	return out, nil
}
func (c *memCallback) Touch(int64) error { c.touches++; return nil }

func TestIsolatedNativeUDF(t *testing.T) {
	u := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	defer u.Close()
	out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{1, 2, 3, 4})})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int != 10 {
		t.Errorf("sumbytes = %d, want 10", out.Int)
	}
	if u.Design() != core.DesignNativeIsolated {
		t.Error("wrong design")
	}
	// Repeated invocations reuse the executor.
	for i := 0; i < 5; i++ {
		out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{byte(i)})})
		if err != nil || out.Int != int64(i) {
			t.Fatalf("iter %d: %v, %v", i, out, err)
		}
	}
}

func TestIsolatedUDFError(t *testing.T) {
	u := NewNativeIsolated("fail", nil, types.KindInt)
	defer u.Close()
	_, err := u.Invoke(nil, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("err = %v", err)
	}
	// The executor survives a UDF error and keeps serving.
	_, err = u.Invoke(nil, nil)
	if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("second call err = %v", err)
	}
}

func TestIsolatedUDFUnknownName(t *testing.T) {
	u := NewNativeIsolated("nosuch", nil, types.KindInt)
	defer u.Close()
	_, err := u.Invoke(nil, nil)
	if err == nil || !strings.Contains(err.Error(), "native table") {
		t.Errorf("err = %v", err)
	}
}

func TestIsolationSurvivesUDFCrash(t *testing.T) {
	// The paper's headline security property for Design 2: a UDF that
	// kills its own process must not take the server down.
	u := NewNativeIsolated("crash", nil, types.KindInt)
	defer u.Close()
	_, err := u.Invoke(nil, nil)
	if err == nil {
		t.Fatal("crashing UDF reported success")
	}
	// A healthy UDF still works afterwards (fresh executor spawned).
	sum := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	defer sum.Close()
	out, err := sum.Invoke(nil, []types.Value{types.NewBytes([]byte{5})})
	if err != nil || out.Int != 5 {
		t.Errorf("server-side work disrupted by UDF crash: %v, %v", out, err)
	}
	// And the crashed UDF's slot recovers too.
	fail := NewNativeIsolated("fail", nil, types.KindInt)
	defer fail.Close()
	if _, err := fail.Invoke(nil, nil); err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("recovery failed: %v", err)
	}
}

func TestIsolatedCallbacks(t *testing.T) {
	u := NewNativeIsolated("cbprobe", []types.Kind{types.KindInt}, types.KindInt)
	defer u.Close()
	cb := &memCallback{data: []byte{9, 8, 7}}
	out, err := u.Invoke(&core.Ctx{Callback: cb}, []types.Value{types.NewInt(1)})
	if err != nil {
		t.Fatal(err)
	}
	// size=3, get(1)=8, read len=2 -> 3*1000 + 8*10 + 2 = 3082
	if out.Int != 3082 {
		t.Errorf("cbprobe = %d, want 3082", out.Int)
	}
	if cb.touches != 1 {
		t.Errorf("touches = %d, want 1", cb.touches)
	}
}

func TestIsolatedCallbackWithoutHandler(t *testing.T) {
	u := NewNativeIsolated("cbprobe", []types.Kind{types.KindInt}, types.KindInt)
	defer u.Close()
	_, err := u.Invoke(nil, []types.Value{types.NewInt(1)})
	if err == nil || !strings.Contains(err.Error(), "no callback handler") {
		t.Errorf("err = %v", err)
	}
}

func TestVMIsolatedUDF(t *testing.T) {
	classBytes, err := jaguar.CompileToBytes(`
	func touchy(n int) int {
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) {
			cb_touch(0);
			acc = acc + 1;
		}
		return acc;
	}`, "Touchy")
	if err != nil {
		t.Fatal(err)
	}
	u := NewVMIsolated("touchy", []types.Kind{types.KindInt}, types.KindInt, VMSetup{
		ClassBytes: classBytes, Method: "touchy",
	})
	defer u.Close()
	cb := &memCallback{data: []byte{1}}
	out, err := u.Invoke(&core.Ctx{Callback: cb}, []types.Value{types.NewInt(4)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int != 4 || cb.touches != 4 {
		t.Errorf("touchy = %d, touches = %d; want 4, 4", out.Int, cb.touches)
	}
	if u.Design() != core.DesignVMIsolated {
		t.Error("wrong design")
	}
}

func TestVMIsolatedResourceLimits(t *testing.T) {
	classBytes, err := jaguar.CompileToBytes(`
	func spin(n int) int {
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) { acc = acc + 1; }
		return acc;
	}`, "Spin")
	if err != nil {
		t.Fatal(err)
	}
	u := NewVMIsolated("spin", []types.Kind{types.KindInt}, types.KindInt, VMSetup{
		ClassBytes: classBytes, Method: "spin",
		Limits: jvm.Limits{Fuel: 100},
	})
	defer u.Close()
	if _, err := u.Invoke(nil, []types.Value{types.NewInt(1000000)}); err == nil ||
		!strings.Contains(err.Error(), "fuel") {
		t.Errorf("fuel limit not enforced across process boundary: %v", err)
	}
}

func TestVMIsolatedRejectsCorruptClass(t *testing.T) {
	u := NewVMIsolated("bad", nil, types.KindInt, VMSetup{
		ClassBytes: []byte("garbage"), Method: "m",
	})
	defer u.Close()
	if _, err := u.Invoke(nil, nil); err == nil {
		t.Error("corrupt class accepted by executor")
	}
}

func TestExecutorPoolReuse(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	u := WithPool(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), p)
	defer u.Close()
	for i := 0; i < 6; i++ {
		out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{2, 2})})
		if err != nil || out.Int != 4 {
			t.Fatalf("iter %d: %v, %v", i, out, err)
		}
	}
	// The pool should now hold at most 2 idle executors for "sumbytes".
	p.mu.Lock()
	n := len(p.idle["sumbytes"])
	p.mu.Unlock()
	if n < 1 || n > 2 {
		t.Errorf("idle executors = %d, want 1..2", n)
	}
}

func TestRunExecutorOverSyntheticPipes(t *testing.T) {
	// Drive the child loop in-process: parent end <-> child end.
	parentR, childW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	childR, parentW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer childW.Close()
		RunExecutor(childR, childW, testNatives)
	}()
	c := newConn(parentR, parentW)
	f, err := c.recv()
	if err != nil || f.typ != msgReady {
		t.Fatalf("ready: %v %d", err, f.typ)
	}
	if err := c.send(msgSetupNative, appendString(nil, "sumbytes")); err != nil {
		t.Fatal(err)
	}
	if f, err = c.recv(); err != nil || f.typ != msgReady {
		t.Fatalf("setup: %v %d", err, f.typ)
	}
	payload := []byte{1} // argc=1 (uvarint)
	payload = types.EncodeValue(payload, types.NewBytes([]byte{3, 4}))
	if err := c.send(msgInvoke, payload); err != nil {
		t.Fatal(err)
	}
	f, err = c.recv()
	if err != nil || f.typ != msgResult {
		t.Fatalf("result: %v %d", err, f.typ)
	}
	r := &preader{buf: f.payload}
	v := r.value()
	if r.err != nil || v.Int != 7 {
		t.Errorf("value = %v, %v", v, r.err)
	}
	// Invoke before setup on a fresh executor must fail gracefully.
	if err := c.send(msgShutdown, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorProtocolRobustness(t *testing.T) {
	// Drive the child loop with hostile frames: it must answer errors,
	// never crash, and keep serving.
	parentR, childW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	childR, parentW, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer childW.Close()
		RunExecutor(childR, childW, testNatives)
	}()
	c := newConn(parentR, parentW)
	if f, err := c.recv(); err != nil || f.typ != msgReady {
		t.Fatalf("ready: %v", err)
	}
	// Unknown message type.
	if err := c.send(0x7F, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	f, err := c.recv()
	if err != nil || f.typ != msgError {
		t.Fatalf("unknown type reply: %v %d", err, f.typ)
	}
	// Invoke before setup.
	if err := c.send(msgInvoke, []byte{0}); err != nil {
		t.Fatal(err)
	}
	f, err = c.recv()
	if err != nil || f.typ != msgError {
		t.Fatalf("invoke-before-setup reply: %v %d", err, f.typ)
	}
	// Truncated setup frame.
	if err := c.send(msgSetupNative, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	f, err = c.recv()
	if err != nil || f.typ != msgError {
		t.Fatalf("truncated setup reply: %v %d", err, f.typ)
	}
	// The executor still works after all that.
	if err := c.send(msgSetupNative, appendString(nil, "sumbytes")); err != nil {
		t.Fatal(err)
	}
	if f, err = c.recv(); err != nil || f.typ != msgReady {
		t.Fatalf("recovery setup: %v %d", err, f.typ)
	}
	c.send(msgShutdown, nil)
}

func TestConcurrentIsolatedInvocations(t *testing.T) {
	// One UDF handle serializes its executor; concurrent callers must
	// all succeed (the engine may evaluate multiple sessions at once).
	u := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	defer u.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{byte(g), byte(i)})})
				if err != nil {
					errs <- err
					return
				}
				if out.Int != int64(g)+int64(i) {
					errs <- fmt.Errorf("g=%d i=%d got %d", g, i, out.Int)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
