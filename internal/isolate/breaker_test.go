package isolate

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/govern"
	"predator/internal/types"
)

func init() {
	// flagcrash kills its executor while the named flag file exists and
	// succeeds otherwise — a UDF that "recovers", driving the breaker's
	// half-open probe path. (A PREDATOR_FAULT spec can't express this:
	// the env var poisons every executor in the process, and recovery
	// needs the same UDF to stop failing mid-test.)
	testNatives["flagcrash"] = func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		if _, err := os.Stat(args[0].Str); err == nil {
			os.Exit(3)
		}
		return types.NewInt(1), nil
	}
}

// breakerSup is a supervision config with a fast breaker and no
// restart patience, so tests observe transitions quickly.
func breakerSup(failures int, cooldown time.Duration) Supervision {
	return Supervision{
		BreakerFailures: failures,
		BreakerWindow:   10 * time.Second,
		BreakerCooldown: cooldown,
		MaxRestarts:     0,
		RestartBackoff:  time.Millisecond,
	}
}

func TestBreakerOpensOnCrashLoop(t *testing.T) {
	u := WithSupervision(NewNativeIsolated("crash", nil, types.KindInt), breakerSup(3, time.Minute))
	defer u.(*udf).Close()
	for i := 0; i < 3; i++ {
		_, err := u.Invoke(nil, nil)
		if core.FaultClassOf(err) != core.FaultExecutor {
			t.Fatalf("crash %d: got %v, want executor fault", i, err)
		}
	}
	// The breaker is open: the next call is shed without an executor.
	starts := cStarts.Value()
	_, err := u.Invoke(nil, nil)
	if core.FaultClassOf(err) != core.FaultOverload {
		t.Fatalf("got %v, want overload fault", err)
	}
	if !core.Retryable(err) {
		t.Fatal("breaker shed must be retryable")
	}
	var be *govern.BreakerOpenError
	if !errors.As(err, &be) {
		t.Fatalf("cause is %T, want *govern.BreakerOpenError", err)
	}
	if cStarts.Value() != starts {
		t.Fatal("open breaker still started an executor")
	}
	st, _ := u.(*udf).BreakerStatus()
	if st.State != "open" || st.Opens != 1 {
		t.Fatalf("status = %+v", st)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	flag := filepath.Join(t.TempDir(), "crashflag")
	if err := os.WriteFile(flag, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	u := WithSupervision(NewNativeIsolated("flagcrash", []types.Kind{types.KindString}, types.KindInt),
		breakerSup(2, 50*time.Millisecond))
	defer u.(*udf).Close()
	args := []types.Value{types.NewString(flag)}
	for i := 0; i < 2; i++ {
		if _, err := u.Invoke(nil, args); core.FaultClassOf(err) != core.FaultExecutor {
			t.Fatalf("crash %d: %v", i, err)
		}
	}
	// Open, still cooling: shed even though the UDF is healthy again.
	os.Remove(flag)
	if _, err := u.Invoke(nil, args); core.FaultClassOf(err) != core.FaultOverload {
		t.Fatalf("during cooldown: got %v, want overload fault", err)
	}
	// After the cooldown a half-open probe runs for real and closes it.
	time.Sleep(60 * time.Millisecond)
	out, err := u.Invoke(nil, args)
	if err != nil || out.Int != 1 {
		t.Fatalf("probe: %v, %v", out, err)
	}
	st, _ := u.(*udf).BreakerStatus()
	if st.State != "closed" {
		t.Fatalf("after successful probe: %+v", st)
	}
	if _, err := u.Invoke(nil, args); err != nil {
		t.Fatalf("recovered UDF rejected: %v", err)
	}
}

func TestBreakerQuarantineLeavesPool(t *testing.T) {
	flag := filepath.Join(t.TempDir(), "crashflag")
	if err := os.WriteFile(flag, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	p := NewPool(2)
	defer p.Close()
	u := WithPool(WithSupervision(NewNativeIsolated("flagcrash", []types.Kind{types.KindString}, types.KindInt),
		breakerSup(2, 30*time.Millisecond)), p)
	iu := u.(*udf)
	args := []types.Value{types.NewString(flag)}
	for i := 0; i < 2; i++ {
		if _, err := u.Invoke(nil, args); err == nil {
			t.Fatalf("crash %d reported success", i)
		}
	}
	st, quarantined := iu.BreakerStatus()
	if st.State != "open" || !quarantined {
		t.Fatalf("after crash loop: state %+v, quarantined %v", st, quarantined)
	}
	if iu.usePool() {
		t.Fatal("quarantined UDF still borrowing from the pool")
	}
	// Recovered and past the cooldown, it runs again — but on its own
	// dedicated executor, never back in the shared pool.
	os.Remove(flag)
	time.Sleep(40 * time.Millisecond)
	if out, err := u.Invoke(nil, args); err != nil || out.Int != 1 {
		t.Fatalf("quarantined invoke: %v, %v", out, err)
	}
	if p.Live() != 0 {
		t.Fatalf("quarantined UDF left %d executors in the pool", p.Live())
	}
	iu.mu.Lock()
	own := iu.exec
	iu.mu.Unlock()
	if own == nil {
		t.Fatal("quarantined UDF did not bind a dedicated executor")
	}
}

// TestPoolConcurrentChaos hammers checkout/evict/close from many
// goroutines — including executors dying while lent out — and is the
// regression test for pool lifecycle races (run under -race in CI).
func TestPoolConcurrentChaos(t *testing.T) {
	sup := Supervision{BreakerFailures: -1, MaxRestarts: 0, RestartBackoff: time.Millisecond}
	p := NewPoolWith(2, 4, sup)
	healthy := WithPool(WithSupervision(
		NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), sup), p)
	dying := WithPool(WithSupervision(
		NewNativeIsolated("crash", nil, types.KindInt), sup), p)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arg := []types.Value{types.NewBytes([]byte{1, 2})}
			for {
				select {
				case <-stop:
					return
				default:
				}
				out, err := healthy.Invoke(nil, arg)
				if err != nil {
					if strings.Contains(err.Error(), "pool is closed") {
						return
					}
					t.Errorf("healthy UDF failed: %v", err)
					return
				}
				if out.Int != 3 {
					t.Errorf("healthy UDF returned %d", out.Int)
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Every call kills its executor while lent out.
				if _, err := dying.Invoke(nil, nil); err == nil {
					t.Error("crash UDF reported success")
					return
				} else if strings.Contains(err.Error(), "pool is closed") {
					return
				}
			}
		}()
	}
	time.Sleep(400 * time.Millisecond)
	close(stop)
	wg.Wait()
	p.Close()
	if p.Live() != 0 {
		t.Fatalf("pool leaked %d executors", p.Live())
	}

	// Close racing in-flight work: restart traffic and close mid-way.
	p2 := NewPoolWith(1, 2, sup)
	h2 := WithPool(WithSupervision(
		NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), sup), p2)
	var wg2 sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg2.Add(1)
		go func() {
			defer wg2.Done()
			arg := []types.Value{types.NewBytes([]byte{3})}
			for j := 0; j < 50; j++ {
				if _, err := h2.Invoke(nil, arg); err != nil {
					if strings.Contains(err.Error(), "pool is closed") {
						return
					}
					t.Errorf("invoke vs close: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	p2.Close()
	wg2.Wait()
	if p2.Live() != 0 {
		t.Fatalf("pool leaked %d executors across Close", p2.Live())
	}
}
