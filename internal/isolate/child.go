package isolate

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"predator/internal/core"
	"predator/internal/jvm"
	"predator/internal/types"
)

// NativeTable maps native UDF names to implementations available in
// executor processes. Programs that host isolated native UDFs must
// pass the same table to MaybeRunExecutor that they use to register
// the UDFs, so parent and child agree on implementations.
type NativeTable map[string]core.NativeFunc

// MaybeRunExecutor turns the current process into a UDF executor when
// ExecutorEnv is set, never returning in that case (the process exits
// when the parent closes the pipe). Call it first thing in main (and
// in TestMain of tests that exercise isolated UDFs).
func MaybeRunExecutor(natives NativeTable) {
	if os.Getenv(ExecutorEnv) != "1" {
		return
	}
	err := RunExecutor(os.Stdin, os.Stdout, natives)
	if err != nil && err != io.EOF {
		fmt.Fprintf(os.Stderr, "udf-executor: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// warmCacheCap bounds the child-side warm (tenant, UDF, token) binding
// cache of a multiplexed executor. Evicted bindings stay alive for any
// stream still using them; only the recycling entry is dropped.
const warmCacheCap = 64

// RunExecutor serves the executor protocol on the given pipe until
// shutdown or EOF. Exported separately from MaybeRunExecutor for tests
// that run the executor loop in-process over synthetic pipes.
//
// The child starts in the dedicated (untagged) protocol. The first
// msgOpenStream frame switches it irreversibly into multiplexed mode:
// from then on every frame payload carries a uvarint stream-ID prefix
// and many independent streams — each with its own UDF binding — share
// the single pipe. Dedicated executors never receive msgOpenStream, so
// their wire traffic is byte-identical to the pre-fleet protocol.
func RunExecutor(r io.Reader, w io.Writer, natives NativeTable) error {
	c := newConn(r, w)
	fault := parseFaultSpec(os.Getenv(FaultEnv))
	fault.fire("ready", c)
	if err := c.send(msgReady, nil); err != nil {
		return err
	}
	st := &childState{conn: c, natives: natives, fault: fault}
	for {
		var f frame
		if len(st.pending) > 0 {
			// Frames that arrived while a callback round trip owned the
			// pipe were queued; drain them before reading fresh input.
			f = st.pending[0]
			st.pending = st.pending[1:]
		} else {
			var err error
			f, err = c.recv()
			if err != nil {
				if err == io.EOF {
					return nil
				}
				// A closed pipe on shutdown is a normal exit.
				return err
			}
		}
		if !st.mux && f.typ == msgOpenStream {
			st.enterMux()
		}
		if st.mux {
			done, err := st.handleMux(f.typ, f.payload)
			if done || err != nil {
				return err
			}
			continue
		}
		switch f.typ {
		case msgSetupNative:
			fault.fire("setup", c)
			st.setupNative(f.payload)
		case msgSetupVM:
			fault.fire("setup", c)
			st.setupVM(f.payload)
		case msgInvoke:
			fault.fire("invoke", c)
			st.invoke(st.stable(f.payload))
		case msgInvokeBatch:
			fault.fire("invoke", c)
			st.invokeBatch(st.stable(f.payload))
		case msgTraceCtx:
			st.armTrace(f.payload)
		case msgPing:
			if err := c.send(msgPong, nil); err != nil {
				return err
			}
		case msgShutdown:
			fault.fire("shutdown", c)
			return nil
		default:
			if err := c.send(msgError, appendString(nil, fmt.Sprintf("unexpected message %d", f.typ))); err != nil {
				return err
			}
		}
	}
}

// binding is one resolved UDF implementation (exactly one side set).
// The dedicated protocol has a single binding per process; a
// multiplexed child keeps one per warm-cache entry, shared by every
// stream opened against the same (tenant, UDF, token) key.
type binding struct {
	nativeFn core.NativeFunc
	vmClass  *jvm.LoadedClass
	vmMethod string
	vmLimits jvm.Limits
}

// childStream is one open stream of a multiplexed child: a binding plus
// the per-stream trace arming (msgTraceCtx applies to the stream it
// tags, not to the whole process).
type childStream struct {
	bind   *binding
	traced bool
}

// warmEntry is one recyclable (tenant, UDF, token) binding with its
// last-use tick for LRU eviction.
type warmEntry struct {
	bind *binding
	last uint64
}

// childState is the executor's protocol state.
type childState struct {
	conn    *conn
	natives NativeTable
	fault   *faultPlan

	// bind is the dedicated-path binding (msgSetupNative/msgSetupVM);
	// cur points at whichever binding the current invoke runs under —
	// &bind for dedicated children, the stream's binding under mux.
	bind binding
	cur  *binding

	// Multiplexed mode (entered on the first msgOpenStream and never
	// left): open streams, the warm binding cache, the stream the frame
	// being handled belongs to, and frames queued during callback waits.
	mux     bool
	curSID  uint64
	streams map[uint64]*childStream
	warm    map[string]*warmEntry
	warmSeq uint64
	pending []frame

	// argBuf/respBuf are grow-only scratch buffers: invoke frames are
	// copied out of the connection's receive scratch (which a nested
	// callback round trip would clobber) and batch replies are built
	// without per-batch allocation.
	argBuf  []byte
	respBuf []byte

	// traced marks the next invoke frame as span-recorded (armed by a
	// preceding msgTraceCtx, cleared when the result ships). spanSeq
	// allocates child-local span IDs; the parent remaps them on merge.
	traced  bool
	spanSeq uint64
	spans   []childSpan

	// Setup timing is captured unconditionally (once per executor, two
	// clock reads) and shipped with the first traced result, so a trace
	// shows executor startup cost even when setup predates tracing.
	setupSpan   childSpan
	setupUnsent bool
}

// enterMux switches the child into multiplexed mode.
func (st *childState) enterMux() {
	st.mux = true
	st.streams = make(map[uint64]*childStream)
	st.warm = make(map[string]*warmEntry)
}

// tag prefixes a reply payload with the current stream ID under mux;
// dedicated-path replies pass through untouched, keeping that wire
// format byte-identical.
func (st *childState) tag(buf []byte) []byte {
	if st.mux {
		return binary.AppendUvarint(buf, st.curSID)
	}
	return buf
}

// handleMux dispatches one multiplexed frame. Every payload starts with
// the uvarint stream ID; the remainder is the same encoding the
// dedicated protocol uses for that frame type.
func (st *childState) handleMux(typ byte, payload []byte) (done bool, err error) {
	r := &preader{buf: payload}
	sid := r.uvarint()
	if r.err != nil {
		st.curSID = 0
		st.fail("bad stream tag on message %d: %v", typ, r.err)
		return false, nil
	}
	rest := payload[r.off:]
	st.curSID = sid
	switch typ {
	case msgOpenStream:
		st.openStream(sid, rest)
	case msgCloseStream:
		delete(st.streams, sid)
	case msgInvoke, msgInvokeBatch:
		s := st.streams[sid]
		if s == nil {
			st.fail("invoke on unknown stream %d", sid)
			return false, nil
		}
		st.cur = s.bind
		st.traced = s.traced
		s.traced = false
		st.fault.fire("invoke", st.conn)
		if typ == msgInvoke {
			st.invoke(st.stable(rest))
		} else {
			st.invokeBatch(st.stable(rest))
		}
	case msgTraceCtx:
		s := st.streams[sid]
		tr := &preader{buf: rest}
		tr.uvarint() // trace ID
		tr.uvarint() // parent span ID
		if tr.err != nil {
			st.fail("bad trace frame: %v", tr.err)
			return false, nil
		}
		if s != nil {
			s.traced = true
		}
	case msgPing:
		st.curSID = 0
		if err := st.conn.send(msgPong, st.tag(nil)); err != nil {
			return false, err
		}
	case msgShutdown:
		st.fault.fire("shutdown", st.conn)
		return true, nil
	default:
		st.fail("unexpected message %d", typ)
	}
	return false, nil
}

// openStream binds a new stream. streamCtl opens the control stream
// (the mux handshake); streamWarm recycles a cached binding and fails
// cleanly when cold so the parent can retry with a full setup;
// streamNative/streamVM run a full setup and deposit the binding in the
// warm cache for future streams keyed the same way.
func (st *childState) openStream(sid uint64, payload []byte) {
	r := &preader{buf: payload}
	kind := r.byte()
	if r.err != nil {
		st.fail("bad open-stream frame: %v", r.err)
		return
	}
	if kind == streamCtl {
		_ = st.conn.send(msgReady, st.tag(nil))
		return
	}
	tenant := r.str()
	name := r.str()
	token := r.str()
	if r.err != nil {
		st.fail("bad open-stream frame: %v", r.err)
		return
	}
	key := warmKey(tenant, name, token)
	st.warmSeq++
	switch kind {
	case streamWarm:
		e, ok := st.warm[key]
		if !ok {
			st.fail("cold stream: no warm binding for %s/%s", tenant, name)
			return
		}
		e.last = st.warmSeq
		st.streams[sid] = &childStream{bind: e.bind}
	case streamNative:
		b, err := st.bindNative(r.str())
		if r.err != nil {
			st.fail("bad open-stream frame: %v", r.err)
			return
		}
		if err != nil {
			st.fail("%v", err)
			return
		}
		st.cacheWarm(key, b)
		st.streams[sid] = &childStream{bind: b}
	case streamVM:
		b, err := st.bindVM(r)
		if r.err != nil {
			st.fail("bad open-stream frame: %v", r.err)
			return
		}
		if err != nil {
			st.fail("%v", err)
			return
		}
		st.cacheWarm(key, b)
		st.streams[sid] = &childStream{bind: b}
	default:
		st.fail("unknown stream kind %d", kind)
		return
	}
	_ = st.conn.send(msgReady, st.tag(nil))
}

// warmKey builds the warm-cache key. The token fingerprints the setup
// payload, so a replaced UDF (same name, new class bytes) misses the
// cache instead of recycling stale state.
func warmKey(tenant, name, token string) string {
	return tenant + "\x00" + name + "\x00" + token
}

// cacheWarm deposits a binding, evicting the least recently used entry
// beyond the cache cap.
func (st *childState) cacheWarm(key string, b *binding) {
	st.warm[key] = &warmEntry{bind: b, last: st.warmSeq}
	if len(st.warm) <= warmCacheCap {
		return
	}
	var victim string
	var oldest uint64 = ^uint64(0)
	for k, e := range st.warm {
		if e.last < oldest {
			oldest, victim = e.last, k
		}
	}
	delete(st.warm, victim)
}

// armTrace marks the next invoke as traced. The payload (trace ID,
// parent span ID) is decoded for validation; span parentage is
// reconstructed parent-side when the shipped spans are merged.
func (st *childState) armTrace(payload []byte) {
	r := &preader{buf: payload}
	r.uvarint() // trace ID
	r.uvarint() // parent span ID
	if r.err != nil {
		st.fail("bad trace frame: %v", r.err)
		return
	}
	st.traced = true
}

// newSpanID allocates a child-local span ID.
func (st *childState) newSpanID() uint64 {
	st.spanSeq++
	return st.spanSeq
}

// addSpan records a span for the current shipment, dropping beyond the
// protocol cap.
func (st *childState) addSpan(s childSpan) {
	if len(st.spans) < maxChildSpans {
		st.spans = append(st.spans, s)
	}
}

// sealSpans appends the recorded spans (plus the pending setup span, if
// any) to a result payload and disarms tracing for the next frame.
func (st *childState) sealSpans(resp []byte) []byte {
	if st.setupUnsent {
		st.addSpan(st.setupSpan)
		st.setupUnsent = false
	}
	resp = appendChildSpans(resp, st.spans)
	st.spans = st.spans[:0]
	st.traced = false
	return resp
}

// stable copies a frame payload into the child's own scratch so the
// decoded argument values stay valid across callback round trips that
// reuse the connection's receive buffer.
func (st *childState) stable(payload []byte) []byte {
	st.argBuf = append(st.argBuf[:0], payload...)
	return st.argBuf
}

func (st *childState) fail(format string, args ...any) {
	// Error frames carry no span tail; drop any recorded spans so they
	// do not leak into a later (differently traced) shipment.
	st.traced = false
	st.spans = st.spans[:0]
	_ = st.conn.send(msgError, appendString(st.tag(nil), fmt.Sprintf(format, args...)))
}

// bindNative resolves a native UDF binding.
func (st *childState) bindNative(name string) (*binding, error) {
	fn, ok := st.natives[name]
	if !ok {
		return nil, fmt.Errorf("native UDF %q is not in the executor's native table", name)
	}
	return &binding{nativeFn: fn}, nil
}

// bindVM loads and re-verifies a shipped Jaguar class, reading the VM
// setup fields (class bytes, method, limits) from r.
func (st *childState) bindVM(r *preader) (*binding, error) {
	classBytes := r.bytes()
	method := r.str()
	fuel := r.varint()
	mem := r.varint()
	depth := r.varint()
	if r.err != nil {
		return nil, nil // caller reports the frame error
	}
	// A fresh VM per binding: full isolation, default-deny policy is
	// irrelevant here because the whole process is expendable, but the
	// VM still re-verifies the class.
	vm := jvm.New(jvm.Options{Security: jvm.AllowAll()})
	lc, err := vm.NewLoader("executor").Load(append([]byte(nil), classBytes...))
	if err != nil {
		return nil, fmt.Errorf("load class: %v", err)
	}
	return &binding{
		vmClass:  lc,
		vmMethod: method,
		vmLimits: jvm.Limits{Fuel: fuel, MaxAllocBytes: mem, MaxCallDepth: int(depth)},
	}, nil
}

func (st *childState) setupNative(payload []byte) {
	r := &preader{buf: payload}
	name := r.str()
	if r.err != nil {
		st.fail("bad setup frame: %v", r.err)
		return
	}
	start := time.Now()
	b, err := st.bindNative(name)
	if err != nil {
		st.fail("%v", err)
		return
	}
	st.bind = *b
	st.cur = &st.bind
	st.setupSpan = childSpan{id: st.newSpanID(), name: "child/setup", start: start, dur: time.Since(start)}
	st.setupUnsent = true
	_ = st.conn.send(msgReady, nil)
}

func (st *childState) setupVM(payload []byte) {
	r := &preader{buf: payload}
	start := time.Now()
	b, err := st.bindVM(r)
	if r.err != nil {
		st.fail("bad setup frame: %v", r.err)
		return
	}
	if err != nil {
		st.fail("%v", err)
		return
	}
	st.bind = *b
	st.cur = &st.bind
	st.setupSpan = childSpan{id: st.newSpanID(), name: "child/setup", start: start, dur: time.Since(start)}
	st.setupUnsent = true
	_ = st.conn.send(msgReady, nil)
}

func (st *childState) invoke(payload []byte) {
	r := &preader{buf: payload}
	argc := int(r.uvarint())
	args := make([]types.Value, 0, argc)
	for i := 0; i < argc; i++ {
		args = append(args, r.value())
	}
	if r.err != nil {
		st.fail("bad invoke frame: %v", r.err)
		return
	}
	var inv childSpan
	if st.traced {
		inv = childSpan{id: st.newSpanID(), name: "child/invoke", start: time.Now()}
	}
	cb := &proxyCallback{conn: st.conn, fault: st.fault, st: st, parent: inv.id, sid: st.curSID}
	out, err := st.run(cb, args, inv.id)
	if err != nil {
		st.fail("%v", err)
		return
	}
	st.fault.fire("result", st.conn)
	resp := st.tag(st.respBuf[:0])
	resp = types.EncodeValue(resp, out)
	if st.traced {
		inv.dur = time.Since(inv.start)
		st.addSpan(inv)
		resp = st.sealSpans(resp)
	}
	st.respBuf = resp
	_ = st.conn.send(msgResult, resp)
}

// run evaluates one row with whatever UDF is bound. parent is the span
// to hang VM-execution spans under (0 when untraced).
func (st *childState) run(cb *proxyCallback, args []types.Value, parent uint64) (types.Value, error) {
	b := st.cur
	switch {
	case b == nil:
		return types.Value{}, fmt.Errorf("executor has no UDF bound (missing setup)")
	case b.nativeFn != nil:
		return b.nativeFn(&core.Ctx{Callback: cb}, args)
	case b.vmClass != nil:
		return st.invokeVM(cb, args, parent)
	default:
		return types.Value{}, fmt.Errorf("executor has no UDF bound (missing setup)")
	}
}

// invokeBatch evaluates every row of one msgInvokeBatch frame and
// replies with a single msgResultBatch frame: one crossing in, one
// crossing out, however many rows ride inside. Per-row UDF failures are
// encoded as per-row errors; only a malformed frame aborts the batch.
func (st *childState) invokeBatch(payload []byte) {
	r := &preader{buf: payload}
	n := int(r.uvarint())
	arity := int(r.uvarint())
	if r.err != nil || n < 0 || arity < 0 {
		st.fail("bad batch invoke frame: %v", r.err)
		return
	}
	var inv childSpan
	if st.traced {
		inv = childSpan{id: st.newSpanID(), name: "child/invoke", start: time.Now()}
	}
	cb := &proxyCallback{conn: st.conn, fault: st.fault, st: st, parent: inv.id, sid: st.curSID}
	resp := st.tag(st.respBuf[:0])
	resp = binary.AppendUvarint(resp, uint64(n))
	args := make([]types.Value, arity)
	cpuStart := selfCPUNanos()
	for i := 0; i < n; i++ {
		st.fault.fireBatchRow(i, st.conn)
		for j := 0; j < arity; j++ {
			args[j] = r.value()
		}
		if r.err != nil {
			st.fail("bad batch invoke frame at row %d: %v", i, r.err)
			return
		}
		out, err := st.run(cb, args, inv.id)
		if err != nil {
			resp = appendString(append(resp, 1), err.Error())
			continue
		}
		resp = types.EncodeValue(append(resp, 0), out)
	}
	st.fault.fire("result", st.conn)
	// CPU-attribution tail: the executor's user+system CPU consumed by
	// this batch, so the parent can charge the owning tenant precisely
	// instead of by wall clock. Rides only on the batch frame — the
	// scalar msgResult stays byte-identical to the legacy protocol.
	cpu := selfCPUNanos() - cpuStart
	if cpu < 0 {
		cpu = 0
	}
	resp = binary.AppendUvarint(resp, uint64(cpu))
	if st.traced {
		inv.dur = time.Since(inv.start)
		st.addSpan(inv)
		resp = st.sealSpans(resp)
	}
	st.respBuf = resp
	_ = st.conn.send(msgResultBatch, resp)
}

func (st *childState) invokeVM(cb jvm.Callback, args []types.Value, parent uint64) (types.Value, error) {
	b := st.cur
	cls := b.vmClass.Class()
	mi := cls.MethodIndex(b.vmMethod)
	if mi < 0 {
		return types.Value{}, fmt.Errorf("class has no method %q", b.vmMethod)
	}
	m := &cls.Methods[mi]
	if len(args) != len(m.Params) {
		return types.Value{}, fmt.Errorf("method takes %d args, got %d", len(m.Params), len(args))
	}
	vargs := make([]jvm.Value, len(args))
	for i, a := range args {
		v, err := jvm.ToVM(a)
		if err != nil {
			return types.Value{}, err
		}
		vargs[i] = v
	}
	var start time.Time
	if st.traced {
		start = time.Now()
	}
	ret, _, err := b.vmClass.Call(b.vmMethod, vargs, &jvm.CallOptions{
		Limits:   b.vmLimits,
		Callback: cb,
	})
	if !start.IsZero() {
		st.addSpan(childSpan{id: st.newSpanID(), parent: parent, name: "child/vm_exec", start: start, dur: time.Since(start)})
	}
	if err != nil {
		return types.Value{}, err
	}
	switch ret.T {
	case jvm.TInt:
		return types.NewInt(ret.I), nil
	case jvm.TFloat:
		return types.NewFloat(ret.F), nil
	case jvm.TStr:
		return types.NewString(ret.S), nil
	default:
		return types.NewBytes(ret.B), nil
	}
}

// proxyCallback forwards callback requests over the pipe to the parent
// (each call is a full process-boundary round trip — the effect the
// paper's Figure 8 measures for IC++).
type proxyCallback struct {
	conn  *conn
	fault *faultPlan

	// st/parent let a traced invoke record one child/callback_wait span
	// per round trip (the paper's Figure 8 double crossing, now visible
	// in a trace). st is nil-safe untraced: spans are only recorded
	// while st.traced holds.
	st     *childState
	parent uint64

	// sid tags callback frames under mux (the parent routes the request
	// to the right waiting stream).
	sid uint64
}

// mux reports whether this callback speaks the tagged protocol.
func (p *proxyCallback) mux() bool { return p.st != nil && p.st.mux }

func (p *proxyCallback) roundTrip(op byte, handle, off, length int64) (*preader, error) {
	p.fault.fire("callback", p.conn)
	var start time.Time
	if p.st != nil && p.st.traced {
		start = time.Now()
	}
	var buf []byte
	if p.mux() {
		buf = binary.AppendUvarint(buf, p.sid)
	}
	buf = append(buf, op)
	buf = binary.AppendVarint(buf, handle)
	buf = binary.AppendVarint(buf, off)
	buf = binary.AppendVarint(buf, length)
	if err := p.conn.send(msgCallback, buf); err != nil {
		return nil, err
	}
	payload, err := p.recvCBResult()
	if err != nil {
		return nil, err
	}
	if !start.IsZero() {
		p.st.addSpan(childSpan{id: p.st.newSpanID(), parent: p.parent, name: "child/callback_wait", start: start, dur: time.Since(start)})
	}
	r := &preader{buf: payload}
	if ok := r.byte(); ok == 0 {
		return nil, fmt.Errorf("isolate: callback failed: %s", r.str())
	}
	return r, nil
}

// recvCBResult reads frames until the callback reply arrives. Under mux
// the parent may interleave frames for other streams on the same pipe
// while this stream's invoke is blocked in a callback; those frames are
// copied and queued for the main loop, and pings are answered inline so
// the parent's health checks never stall behind a slow callback.
func (p *proxyCallback) recvCBResult() ([]byte, error) {
	for {
		f, err := p.conn.recv()
		if err != nil {
			return nil, err
		}
		if !p.mux() {
			if f.typ != msgCBResult {
				return nil, fmt.Errorf("isolate: unexpected callback reply %d", f.typ)
			}
			return f.payload, nil
		}
		r := &preader{buf: f.payload}
		sid := r.uvarint()
		if r.err != nil {
			return nil, fmt.Errorf("isolate: bad stream tag on callback reply: %v", r.err)
		}
		switch f.typ {
		case msgCBResult:
			if sid != p.sid {
				return nil, fmt.Errorf("isolate: callback reply for stream %d, want %d", sid, p.sid)
			}
			return f.payload[r.off:], nil
		case msgPing:
			if err := p.conn.send(msgPong, binary.AppendUvarint(nil, 0)); err != nil {
				return nil, err
			}
		default:
			// Another stream's traffic: park it for the main loop. The
			// payload must be copied out of the receive scratch.
			p.st.pending = append(p.st.pending, frame{typ: f.typ, payload: append([]byte(nil), f.payload...)})
		}
	}
}

func (p *proxyCallback) Size(handle int64) (int64, error) {
	r, err := p.roundTrip(cbSize, handle, 0, 0)
	if err != nil {
		return 0, err
	}
	return r.varint(), r.err
}

func (p *proxyCallback) Get(handle, off int64) (byte, error) {
	r, err := p.roundTrip(cbGet, handle, off, 0)
	if err != nil {
		return 0, err
	}
	return byte(r.varint()), r.err
}

func (p *proxyCallback) Read(handle, off, length int64) ([]byte, error) {
	r, err := p.roundTrip(cbRead, handle, off, length)
	if err != nil {
		return nil, err
	}
	data := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (p *proxyCallback) Touch(handle int64) error {
	r, err := p.roundTrip(cbTouch, handle, 0, 0)
	if err != nil {
		return err
	}
	r.varint()
	return r.err
}
