package isolate

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"time"

	"predator/internal/core"
	"predator/internal/jvm"
	"predator/internal/types"
)

// NativeTable maps native UDF names to implementations available in
// executor processes. Programs that host isolated native UDFs must
// pass the same table to MaybeRunExecutor that they use to register
// the UDFs, so parent and child agree on implementations.
type NativeTable map[string]core.NativeFunc

// MaybeRunExecutor turns the current process into a UDF executor when
// ExecutorEnv is set, never returning in that case (the process exits
// when the parent closes the pipe). Call it first thing in main (and
// in TestMain of tests that exercise isolated UDFs).
func MaybeRunExecutor(natives NativeTable) {
	if os.Getenv(ExecutorEnv) != "1" {
		return
	}
	err := RunExecutor(os.Stdin, os.Stdout, natives)
	if err != nil && err != io.EOF {
		fmt.Fprintf(os.Stderr, "udf-executor: %v\n", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// RunExecutor serves the executor protocol on the given pipe until
// shutdown or EOF. Exported separately from MaybeRunExecutor for tests
// that run the executor loop in-process over synthetic pipes.
func RunExecutor(r io.Reader, w io.Writer, natives NativeTable) error {
	c := newConn(r, w)
	fault := parseFaultSpec(os.Getenv(FaultEnv))
	fault.fire("ready", c)
	if err := c.send(msgReady, nil); err != nil {
		return err
	}
	st := &childState{conn: c, natives: natives, fault: fault}
	for {
		f, err := c.recv()
		if err != nil {
			if err == io.EOF {
				return nil
			}
			// A closed pipe on shutdown is a normal exit.
			return err
		}
		switch f.typ {
		case msgSetupNative:
			fault.fire("setup", c)
			st.setupNative(f.payload)
		case msgSetupVM:
			fault.fire("setup", c)
			st.setupVM(f.payload)
		case msgInvoke:
			fault.fire("invoke", c)
			st.invoke(st.stable(f.payload))
		case msgInvokeBatch:
			fault.fire("invoke", c)
			st.invokeBatch(st.stable(f.payload))
		case msgTraceCtx:
			st.armTrace(f.payload)
		case msgPing:
			if err := c.send(msgPong, nil); err != nil {
				return err
			}
		case msgShutdown:
			fault.fire("shutdown", c)
			return nil
		default:
			if err := c.send(msgError, appendString(nil, fmt.Sprintf("unexpected message %d", f.typ))); err != nil {
				return err
			}
		}
	}
}

// childState is the executor's current UDF binding.
type childState struct {
	conn    *conn
	natives NativeTable
	fault   *faultPlan

	// Exactly one of these is set after setup.
	nativeFn core.NativeFunc
	vmClass  *jvm.LoadedClass
	vmMethod string
	vmLimits jvm.Limits

	// argBuf/respBuf are grow-only scratch buffers: invoke frames are
	// copied out of the connection's receive scratch (which a nested
	// callback round trip would clobber) and batch replies are built
	// without per-batch allocation.
	argBuf  []byte
	respBuf []byte

	// traced marks the next invoke frame as span-recorded (armed by a
	// preceding msgTraceCtx, cleared when the result ships). spanSeq
	// allocates child-local span IDs; the parent remaps them on merge.
	traced  bool
	spanSeq uint64
	spans   []childSpan

	// Setup timing is captured unconditionally (once per executor, two
	// clock reads) and shipped with the first traced result, so a trace
	// shows executor startup cost even when setup predates tracing.
	setupSpan   childSpan
	setupUnsent bool
}

// armTrace marks the next invoke as traced. The payload (trace ID,
// parent span ID) is decoded for validation; span parentage is
// reconstructed parent-side when the shipped spans are merged.
func (st *childState) armTrace(payload []byte) {
	r := &preader{buf: payload}
	r.uvarint() // trace ID
	r.uvarint() // parent span ID
	if r.err != nil {
		st.fail("bad trace frame: %v", r.err)
		return
	}
	st.traced = true
}

// newSpanID allocates a child-local span ID.
func (st *childState) newSpanID() uint64 {
	st.spanSeq++
	return st.spanSeq
}

// addSpan records a span for the current shipment, dropping beyond the
// protocol cap.
func (st *childState) addSpan(s childSpan) {
	if len(st.spans) < maxChildSpans {
		st.spans = append(st.spans, s)
	}
}

// sealSpans appends the recorded spans (plus the pending setup span, if
// any) to a result payload and disarms tracing for the next frame.
func (st *childState) sealSpans(resp []byte) []byte {
	if st.setupUnsent {
		st.addSpan(st.setupSpan)
		st.setupUnsent = false
	}
	resp = appendChildSpans(resp, st.spans)
	st.spans = st.spans[:0]
	st.traced = false
	return resp
}

// stable copies a frame payload into the child's own scratch so the
// decoded argument values stay valid across callback round trips that
// reuse the connection's receive buffer.
func (st *childState) stable(payload []byte) []byte {
	st.argBuf = append(st.argBuf[:0], payload...)
	return st.argBuf
}

func (st *childState) fail(format string, args ...any) {
	// Error frames carry no span tail; drop any recorded spans so they
	// do not leak into a later (differently traced) shipment.
	st.traced = false
	st.spans = st.spans[:0]
	_ = st.conn.send(msgError, appendString(nil, fmt.Sprintf(format, args...)))
}

func (st *childState) setupNative(payload []byte) {
	r := &preader{buf: payload}
	name := r.str()
	if r.err != nil {
		st.fail("bad setup frame: %v", r.err)
		return
	}
	start := time.Now()
	fn, ok := st.natives[name]
	if !ok {
		st.fail("native UDF %q is not in the executor's native table", name)
		return
	}
	st.nativeFn = fn
	st.vmClass = nil
	st.setupSpan = childSpan{id: st.newSpanID(), name: "child/setup", start: start, dur: time.Since(start)}
	st.setupUnsent = true
	_ = st.conn.send(msgReady, nil)
}

func (st *childState) setupVM(payload []byte) {
	r := &preader{buf: payload}
	classBytes := r.bytes()
	method := r.str()
	fuel := r.varint()
	mem := r.varint()
	depth := r.varint()
	if r.err != nil {
		st.fail("bad setup frame: %v", r.err)
		return
	}
	// A fresh VM per executor: full isolation, default-deny policy is
	// irrelevant here because the whole process is expendable, but the
	// VM still re-verifies the class.
	start := time.Now()
	vm := jvm.New(jvm.Options{Security: jvm.AllowAll()})
	lc, err := vm.NewLoader("executor").Load(append([]byte(nil), classBytes...))
	if err != nil {
		st.fail("load class: %v", err)
		return
	}
	st.vmClass = lc
	st.vmMethod = method
	st.vmLimits = jvm.Limits{Fuel: fuel, MaxAllocBytes: mem, MaxCallDepth: int(depth)}
	st.nativeFn = nil
	st.setupSpan = childSpan{id: st.newSpanID(), name: "child/setup", start: start, dur: time.Since(start)}
	st.setupUnsent = true
	_ = st.conn.send(msgReady, nil)
}

func (st *childState) invoke(payload []byte) {
	r := &preader{buf: payload}
	argc := int(r.uvarint())
	args := make([]types.Value, 0, argc)
	for i := 0; i < argc; i++ {
		args = append(args, r.value())
	}
	if r.err != nil {
		st.fail("bad invoke frame: %v", r.err)
		return
	}
	var inv childSpan
	if st.traced {
		inv = childSpan{id: st.newSpanID(), name: "child/invoke", start: time.Now()}
	}
	cb := &proxyCallback{conn: st.conn, fault: st.fault, st: st, parent: inv.id}
	out, err := st.run(cb, args, inv.id)
	if err != nil {
		st.fail("%v", err)
		return
	}
	st.fault.fire("result", st.conn)
	resp := types.EncodeValue(st.respBuf[:0], out)
	if st.traced {
		inv.dur = time.Since(inv.start)
		st.addSpan(inv)
		resp = st.sealSpans(resp)
	}
	st.respBuf = resp
	_ = st.conn.send(msgResult, resp)
}

// run evaluates one row with whatever UDF is bound. parent is the span
// to hang VM-execution spans under (0 when untraced).
func (st *childState) run(cb *proxyCallback, args []types.Value, parent uint64) (types.Value, error) {
	switch {
	case st.nativeFn != nil:
		return st.nativeFn(&core.Ctx{Callback: cb}, args)
	case st.vmClass != nil:
		return st.invokeVM(cb, args, parent)
	default:
		return types.Value{}, fmt.Errorf("executor has no UDF bound (missing setup)")
	}
}

// invokeBatch evaluates every row of one msgInvokeBatch frame and
// replies with a single msgResultBatch frame: one crossing in, one
// crossing out, however many rows ride inside. Per-row UDF failures are
// encoded as per-row errors; only a malformed frame aborts the batch.
func (st *childState) invokeBatch(payload []byte) {
	r := &preader{buf: payload}
	n := int(r.uvarint())
	arity := int(r.uvarint())
	if r.err != nil || n < 0 || arity < 0 {
		st.fail("bad batch invoke frame: %v", r.err)
		return
	}
	var inv childSpan
	if st.traced {
		inv = childSpan{id: st.newSpanID(), name: "child/invoke", start: time.Now()}
	}
	cb := &proxyCallback{conn: st.conn, fault: st.fault, st: st, parent: inv.id}
	resp := st.respBuf[:0]
	resp = binary.AppendUvarint(resp, uint64(n))
	args := make([]types.Value, arity)
	for i := 0; i < n; i++ {
		st.fault.fireBatchRow(i, st.conn)
		for j := 0; j < arity; j++ {
			args[j] = r.value()
		}
		if r.err != nil {
			st.fail("bad batch invoke frame at row %d: %v", i, r.err)
			return
		}
		out, err := st.run(cb, args, inv.id)
		if err != nil {
			resp = appendString(append(resp, 1), err.Error())
			continue
		}
		resp = types.EncodeValue(append(resp, 0), out)
	}
	st.fault.fire("result", st.conn)
	if st.traced {
		inv.dur = time.Since(inv.start)
		st.addSpan(inv)
		resp = st.sealSpans(resp)
	}
	st.respBuf = resp
	_ = st.conn.send(msgResultBatch, resp)
}

func (st *childState) invokeVM(cb jvm.Callback, args []types.Value, parent uint64) (types.Value, error) {
	cls := st.vmClass.Class()
	mi := cls.MethodIndex(st.vmMethod)
	if mi < 0 {
		return types.Value{}, fmt.Errorf("class has no method %q", st.vmMethod)
	}
	m := &cls.Methods[mi]
	if len(args) != len(m.Params) {
		return types.Value{}, fmt.Errorf("method takes %d args, got %d", len(m.Params), len(args))
	}
	vargs := make([]jvm.Value, len(args))
	for i, a := range args {
		v, err := jvm.ToVM(a)
		if err != nil {
			return types.Value{}, err
		}
		vargs[i] = v
	}
	var start time.Time
	if st.traced {
		start = time.Now()
	}
	ret, _, err := st.vmClass.Call(st.vmMethod, vargs, &jvm.CallOptions{
		Limits:   st.vmLimits,
		Callback: cb,
	})
	if !start.IsZero() {
		st.addSpan(childSpan{id: st.newSpanID(), parent: parent, name: "child/vm_exec", start: start, dur: time.Since(start)})
	}
	if err != nil {
		return types.Value{}, err
	}
	switch ret.T {
	case jvm.TInt:
		return types.NewInt(ret.I), nil
	case jvm.TFloat:
		return types.NewFloat(ret.F), nil
	case jvm.TStr:
		return types.NewString(ret.S), nil
	default:
		return types.NewBytes(ret.B), nil
	}
}

// proxyCallback forwards callback requests over the pipe to the parent
// (each call is a full process-boundary round trip — the effect the
// paper's Figure 8 measures for IC++).
type proxyCallback struct {
	conn  *conn
	fault *faultPlan

	// st/parent let a traced invoke record one child/callback_wait span
	// per round trip (the paper's Figure 8 double crossing, now visible
	// in a trace). st is nil-safe untraced: spans are only recorded
	// while st.traced holds.
	st     *childState
	parent uint64
}

func (p *proxyCallback) roundTrip(op byte, handle, off, length int64) (*preader, error) {
	p.fault.fire("callback", p.conn)
	var start time.Time
	if p.st != nil && p.st.traced {
		start = time.Now()
	}
	buf := []byte{op}
	buf = binary.AppendVarint(buf, handle)
	buf = binary.AppendVarint(buf, off)
	buf = binary.AppendVarint(buf, length)
	if err := p.conn.send(msgCallback, buf); err != nil {
		return nil, err
	}
	f, err := p.conn.recv()
	if err != nil {
		return nil, err
	}
	if !start.IsZero() {
		p.st.addSpan(childSpan{id: p.st.newSpanID(), parent: p.parent, name: "child/callback_wait", start: start, dur: time.Since(start)})
	}
	if f.typ != msgCBResult {
		return nil, fmt.Errorf("isolate: unexpected callback reply %d", f.typ)
	}
	r := &preader{buf: f.payload}
	if ok := r.byte(); ok == 0 {
		return nil, fmt.Errorf("isolate: callback failed: %s", r.str())
	}
	return r, nil
}

func (p *proxyCallback) Size(handle int64) (int64, error) {
	r, err := p.roundTrip(cbSize, handle, 0, 0)
	if err != nil {
		return 0, err
	}
	return r.varint(), r.err
}

func (p *proxyCallback) Get(handle, off int64) (byte, error) {
	r, err := p.roundTrip(cbGet, handle, off, 0)
	if err != nil {
		return 0, err
	}
	return byte(r.varint()), r.err
}

func (p *proxyCallback) Read(handle, off, length int64) ([]byte, error) {
	r, err := p.roundTrip(cbRead, handle, off, length)
	if err != nil {
		return nil, err
	}
	data := r.bytes()
	if r.err != nil {
		return nil, r.err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

func (p *proxyCallback) Touch(handle int64) error {
	r, err := p.roundTrip(cbTouch, handle, 0, 0)
	if err != nil {
		return err
	}
	r.varint()
	return r.err
}
