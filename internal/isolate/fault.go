package isolate

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"
)

// Deterministic fault injection for executor children, used to test
// every supervision recovery path. A fault spec names a protocol point
// and a failure mode:
//
//	point:mode[:arg]
//
// Points (where in the child's protocol life the fault fires):
//
//	ready    — before sending the initial msgReady handshake
//	setup    — on receiving a setup request, before handling it
//	invoke   — on receiving an invocation, before running the UDF
//	result   — after running the UDF, before sending its result
//	callback — before forwarding a UDF callback to the parent
//	shutdown — on receiving msgShutdown, before exiting
//	batchrow — before evaluating row <arg> of a batched invocation
//	           (e.g. "batchrow:crash:3"; crash and hang modes only)
//
// Modes:
//
//	crash        — exit the process immediately (os.Exit)
//	hang         — block forever (the parent's deadline must fire)
//	stall:<dur>  — sleep for a duration, then continue normally
//	corrupt      — write garbage bytes onto the pipe (babbling child),
//	               then continue normally
//
// The spec travels to children via the PREDATOR_FAULT environment
// variable, which executor processes inherit from the parent. Tests
// set it (t.Setenv or InjectFault) before starting an executor.
const FaultEnv = "PREDATOR_FAULT"

// Fault injection exit code, distinguishable from ordinary failures.
const faultExitCode = 42

// InjectFault arms fault injection for executors started after this
// call, returning a function that disarms it. Spec syntax is
// documented on FaultEnv; an empty spec disarms immediately.
func InjectFault(spec string) (clear func()) {
	if spec == "" {
		os.Unsetenv(FaultEnv)
	} else {
		os.Setenv(FaultEnv, spec)
	}
	return func() { os.Unsetenv(FaultEnv) }
}

// faultPlan is the parsed child-side view of a fault spec.
type faultPlan struct {
	point string
	mode  string
	arg   string
}

// parseFaultSpec parses the PREDATOR_FAULT value; nil when unset or
// malformed (a bad spec in production must never break an executor).
func parseFaultSpec(spec string) *faultPlan {
	if spec == "" {
		return nil
	}
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 {
		return nil
	}
	p := &faultPlan{point: parts[0], mode: parts[1]}
	if len(parts) == 3 {
		p.arg = parts[2]
	}
	return p
}

// fire triggers the configured fault if it applies to this point.
// It returns normally for non-matching points and for the stall and
// corrupt modes (which perturb, then proceed).
func (p *faultPlan) fire(point string, c *conn) {
	if p == nil || p.point != point {
		return
	}
	switch p.mode {
	case "crash":
		fmt.Fprintf(os.Stderr, "udf-executor: injected crash at %s\n", point)
		os.Exit(faultExitCode)
	case "hang":
		// Block forever; the supervisor must SIGKILL us. A sleep loop
		// rather than select{} so the runtime's deadlock detector does
		// not turn the hang into an exit.
		for {
			time.Sleep(time.Hour)
		}
	case "stall":
		if d, err := time.ParseDuration(p.arg); err == nil {
			time.Sleep(d)
		}
	case "corrupt":
		if c != nil {
			// A frame header announcing an absurd length: the parent
			// must classify this as a protocol fault and kill us.
			c.w.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xEE})
			c.w.Flush()
		}
	}
}

// fireBatchRow triggers the configured fault when it targets a specific
// row of a batched invocation (point "batchrow", arg = the row index;
// e.g. "batchrow:crash:3"). A crash sends a dying-gasp msgError naming
// the in-flight row — so the parent's error can report which row was
// being evaluated — then exits with the fault code; the supervisor
// still observes the process death and restarts as usual.
func (p *faultPlan) fireBatchRow(row int, c *conn) {
	if p == nil || p.point != "batchrow" || p.arg != strconv.Itoa(row) {
		return
	}
	switch p.mode {
	case "crash":
		if c != nil {
			_ = c.send(msgError, appendString(nil, fmt.Sprintf("injected crash at batch row %d", row)))
		}
		fmt.Fprintf(os.Stderr, "udf-executor: injected crash at batch row %d\n", row)
		os.Exit(faultExitCode)
	case "hang":
		for {
			time.Sleep(time.Hour)
		}
	}
}
