package isolate

import (
	"sync"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/jaguar"
	"predator/internal/types"
)

// startMuxT starts a multiplexed executor and ties its lifetime to the
// test.
func startMuxT(t *testing.T) *MuxExecutor {
	t.Helper()
	m, err := StartMux(DefaultSupervision)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	return m
}

func TestMuxScalarInvoke(t *testing.T) {
	m := startMuxT(t)
	s, warm, err := m.OpenStream("t1", "sumbytes", "tok", StreamSetup{Native: "sumbytes"})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("first open reported warm")
	}
	out, err := s.Invoke(nil, []types.Value{types.NewBytes([]byte{1, 2, 3})})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int != 6 {
		t.Errorf("sumbytes = %d, want 6", out.Int)
	}
	m.CloseStream(s)
	if m.Resident() != 0 {
		t.Errorf("resident = %d after close", m.Resident())
	}
}

func TestMuxWarmReopen(t *testing.T) {
	m := startMuxT(t)
	s, _, err := m.OpenStream("t1", "sumbytes", "tok", StreamSetup{Native: "sumbytes"})
	if err != nil {
		t.Fatal(err)
	}
	m.CloseStream(s)
	s2, warm, err := m.OpenStream("t1", "sumbytes", "tok", StreamSetup{Native: "sumbytes"})
	if err != nil {
		t.Fatal(err)
	}
	if !warm {
		t.Error("reopen of cached binding was not warm")
	}
	if out, err := s2.Invoke(nil, []types.Value{types.NewBytes([]byte{5})}); err != nil || out.Int != 5 {
		t.Errorf("warm invoke = %v, %v", out, err)
	}
	// A different token must never hit the old binding (CREATE OR
	// REPLACE semantics).
	_, warm, err = m.OpenStream("t1", "sumbytes", "tok2", StreamSetup{Native: "sumbytes"})
	if err != nil {
		t.Fatal(err)
	}
	if warm {
		t.Error("different setup token reported warm")
	}
}

func TestMuxVMStream(t *testing.T) {
	classBytes, err := jaguar.CompileToBytes(`func f(a int) int { return a + 1; }`, "Wire")
	if err != nil {
		t.Fatal(err)
	}
	m := startMuxT(t)
	s, _, err := m.OpenStream("t1", "inc", "v1", StreamSetup{VM: &VMSetup{ClassBytes: classBytes, Method: "f"}})
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Invoke(nil, []types.Value{types.NewInt(41)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Int != 42 {
		t.Errorf("vm invoke = %d, want 42", out.Int)
	}
}

func TestMuxInterleavedStreams(t *testing.T) {
	m := startMuxT(t)
	const streams = 8
	const rounds = 25
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for i := 0; i < streams; i++ {
		s, _, err := m.OpenStream("t1", "sumbytes", "tok", StreamSetup{Native: "sumbytes"})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(s *MuxStream, seed byte) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				out, err := s.Invoke(nil, []types.Value{types.NewBytes([]byte{seed, byte(r)})})
				if err != nil {
					errs <- err
					return
				}
				if out.Int != int64(seed)+int64(byte(r)) {
					errs <- core.Faultf(core.FaultNone, "test", "stream %d got %d", seed, out.Int)
					return
				}
			}
		}(s, byte(i+1))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if got := m.Resident(); got != streams {
		t.Errorf("resident = %d, want %d", got, streams)
	}
}

func TestMuxBatchPerRowErrors(t *testing.T) {
	m := startMuxT(t)
	s, _, err := m.OpenStream("t1", "failodd", "tok", StreamSetup{Native: "failodd"})
	if err != nil {
		t.Fatal(err)
	}
	args := []types.Value{types.NewInt(1), types.NewInt(2), types.NewInt(3), types.NewInt(4)}
	out := make([]core.BatchResult, 4)
	if err := s.InvokeBatch(nil, 1, args, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		odd := (i+1)%2 != 0
		if odd && r.Err == nil {
			t.Errorf("row %d: want error", i)
		}
		if !odd && (r.Err != nil || r.Value.Int != int64(i+1)*10) {
			t.Errorf("row %d: got %v, %v", i, r.Value, r.Err)
		}
	}
}

func TestMuxCallbacksInterleaved(t *testing.T) {
	m := startMuxT(t)
	// Two streams whose UDFs call back mid-invoke: callback traffic for
	// one stream must not corrupt the other's conversation.
	s1, _, err := m.OpenStream("t1", "cbprobe", "tok", StreamSetup{Native: "cbprobe"})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := m.OpenStream("t2", "cbprobe", "tok", StreamSetup{Native: "cbprobe"})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	run := func(s *MuxStream, data []byte) {
		defer wg.Done()
		cb := &memCallback{data: data}
		for i := 0; i < 20; i++ {
			out, err := s.Invoke(&core.Ctx{Callback: cb}, []types.Value{types.NewInt(0)})
			if err != nil {
				t.Error(err)
				return
			}
			want := int64(len(data))*1000 + int64(data[1])*10 + 2
			if out.Int != want {
				t.Errorf("cbprobe = %d, want %d", out.Int, want)
				return
			}
		}
	}
	wg.Add(2)
	go run(s1, []byte{9, 7, 5})
	go run(s2, []byte{1, 3, 2, 4})
	wg.Wait()
}

func TestMuxSiblingFaultClass(t *testing.T) {
	m := startMuxT(t)
	sCrash, _, err := m.OpenStream("t1", "crash", "tok", StreamSetup{Native: "crash"})
	if err != nil {
		t.Fatal(err)
	}
	sOK, _, err := m.OpenStream("t1", "sumbytes", "tok", StreamSetup{Native: "sumbytes"})
	if err != nil {
		t.Fatal(err)
	}
	// The crashing UDF takes the whole process down; its own stream and
	// its innocent sibling both observe executor loss (retryable).
	_, err = sCrash.Invoke(nil, []types.Value{types.NewInt(1)})
	if core.FaultClassOf(err) != core.FaultExecutorLost {
		t.Fatalf("crash stream fault = %v, want executor-lost", err)
	}
	if !core.Retryable(err) {
		t.Error("executor-lost not retryable")
	}
	_, err = sOK.Invoke(nil, []types.Value{types.NewBytes([]byte{1})})
	if core.FaultClassOf(err) != core.FaultExecutorLost {
		t.Errorf("sibling fault = %v, want executor-lost", err)
	}
	select {
	case <-m.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done() not closed after process death")
	}
}

func TestMuxPing(t *testing.T) {
	m := startMuxT(t)
	if err := m.Ping(0); err != nil {
		t.Fatal(err)
	}
	if age := m.LastPingAge(); age > time.Minute {
		t.Errorf("last ping age = %v after successful ping", age)
	}
}

// TestLateAttachRefused is the regression test for the enforced
// "must be called before the first Invoke" contract on WithPool,
// WithSupervision and WithFleet.
func TestLateAttachRefused(t *testing.T) {
	u := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	defer u.Close()
	if _, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{1})}); err != nil {
		t.Fatal(err)
	}
	p := NewPool(1)
	defer p.Close()
	WithPool(u, p)
	tightened := DefaultSupervision
	tightened.InvokeTimeout = time.Nanosecond
	WithSupervision(u, tightened)
	WithFleet(u, failingMux{})
	iu := u.(*udf)
	if iu.pool != nil || iu.mux != nil {
		t.Fatal("late WithPool/WithFleet reconfigured a started UDF")
	}
	if iu.sup.InvokeTimeout == time.Nanosecond {
		t.Fatal("late WithSupervision reconfigured a started UDF")
	}
	// The UDF must still work on its original dedicated executor, and
	// the refused pool must never see traffic.
	if out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{2, 3})}); err != nil || out.Int != 5 {
		t.Fatalf("invoke after refused reconfig = %v, %v", out, err)
	}
	if p.Live() != 0 {
		t.Errorf("refused pool has %d live executors", p.Live())
	}
}

// TestEarlyAttachStillWorks pins the contract's other half: attach
// before the first Invoke keeps working.
func TestEarlyAttachStillWorks(t *testing.T) {
	p := NewPool(1)
	defer p.Close()
	u := WithPool(NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt), p)
	defer u.Close()
	if out, err := u.Invoke(nil, []types.Value{types.NewBytes([]byte{4, 4})}); err != nil || out.Int != 8 {
		t.Fatalf("pooled invoke = %v, %v", out, err)
	}
	if p.Live() != 1 {
		t.Errorf("pool live = %d, want 1", p.Live())
	}
}

// failingMux is a Multiplexer stub for the late-attach test.
type failingMux struct{}

func (failingMux) MuxInvoke(*core.Ctx, MuxSpec, []types.Value) (types.Value, error) {
	return types.Value{}, core.Faultf(core.FaultExecutorLost, "invoke", "stub")
}
func (failingMux) MuxInvokeBatch(*core.Ctx, MuxSpec, int, []types.Value, []core.BatchResult) error {
	return core.Faultf(core.FaultExecutorLost, "invoke", "stub")
}

func TestMuxDedicatedProtocolUntouched(t *testing.T) {
	// A dedicated executor that never sees msgOpenStream must keep the
	// untagged protocol: this is implicitly pinned by every pre-fleet
	// test, but assert the happy path explicitly next to the mux tests.
	e, err := StartExecutor()
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.SetupNative("sumbytes"); err != nil {
		t.Fatal(err)
	}
	out, err := e.Invoke(nil, []types.Value{types.NewBytes([]byte{10, 20})})
	if err != nil || out.Int != 30 {
		t.Fatalf("dedicated invoke = %v, %v", out, err)
	}
}
