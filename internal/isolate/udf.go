package isolate

import (
	"fmt"
	"sync"

	"predator/internal/core"
	"predator/internal/jvm"
	"predator/internal/types"
)

// udf implements core.UDF over an executor process, covering Design 2
// (native isolated) and Design 4 (VM isolated). The executor is
// started lazily on the first invocation and reused until Close —
// analogous to the paper's one-executor-per-UDF-per-query lifecycle
// with its startup cost amortized over the relation's tuples.
type udf struct {
	name   string
	args   []types.Kind
	ret    types.Kind
	design core.Design

	// Setup for the executor (one of):
	nativeName string
	vm         *VMSetup

	mu   sync.Mutex
	exec *Executor
	pool *Pool // optional shared pool; nil = own executor
}

// NewNativeIsolated builds a Design 2 UDF: the named function (which
// must be in the executor binary's NativeTable) runs out of process.
func NewNativeIsolated(name string, args []types.Kind, ret types.Kind) core.UDF {
	return &udf{
		name: name, args: args, ret: ret,
		design: core.DesignNativeIsolated, nativeName: name,
	}
}

// NewVMIsolated builds a Design 4 UDF: Jaguar bytecode hosted by a VM
// in a separate executor process.
func NewVMIsolated(name string, args []types.Kind, ret types.Kind, setup VMSetup) core.UDF {
	s := setup
	return &udf{
		name: name, args: args, ret: ret,
		design: core.DesignVMIsolated, vm: &s,
	}
}

// WithPool makes the UDF borrow executors from a shared pool instead
// of owning one (the executor-reuse ablation). Must be called before
// the first Invoke.
func WithPool(u core.UDF, p *Pool) core.UDF {
	iu, ok := u.(*udf)
	if !ok {
		return u
	}
	iu.pool = p
	return iu
}

func (u *udf) Name() string           { return u.name }
func (u *udf) ArgKinds() []types.Kind { return u.args }
func (u *udf) ReturnKind() types.Kind { return u.ret }
func (u *udf) Design() core.Design    { return u.design }

func (u *udf) setup(e *Executor) error {
	if u.vm != nil {
		return e.SetupVM(*u.vm)
	}
	return e.SetupNative(u.nativeName)
}

// executor returns the UDF's executor, starting it if needed.
func (u *udf) executor() (*Executor, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.exec != nil {
		return u.exec, nil
	}
	e, err := StartExecutor()
	if err != nil {
		return nil, err
	}
	if err := u.setup(e); err != nil {
		e.Close()
		return nil, err
	}
	u.exec = e
	return e, nil
}

func (u *udf) Invoke(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	if err := core.CheckArgs(u, args); err != nil {
		return types.Value{}, err
	}
	if u.pool != nil {
		e, err := u.pool.Get(u)
		if err != nil {
			return types.Value{}, err
		}
		out, err := e.Invoke(ctx, args)
		u.pool.Put(u, e, err)
		return out, err
	}
	e, err := u.executor()
	if err != nil {
		return types.Value{}, err
	}
	out, err := e.Invoke(ctx, args)
	if err != nil {
		// A broken pipe means the executor died (e.g. the UDF crashed
		// its own process — which is the point of isolation). Drop the
		// executor so the next invocation gets a fresh one.
		u.mu.Lock()
		if u.exec == e {
			u.exec = nil
		}
		u.mu.Unlock()
		e.Close()
		return types.Value{}, err
	}
	return out, nil
}

func (u *udf) Close() error {
	u.mu.Lock()
	e := u.exec
	u.exec = nil
	u.mu.Unlock()
	if e != nil {
		return e.Close()
	}
	return nil
}

// Pool is a shared pool of pre-started executors keyed by UDF, used by
// the executor-reuse ablation (the paper notes executors "could be
// assigned from a pre-allocated pool").
type Pool struct {
	mu    sync.Mutex
	idle  map[string][]*Executor
	limit int
}

// NewPool creates a pool keeping up to perUDF idle executors per UDF.
func NewPool(perUDF int) *Pool {
	if perUDF < 1 {
		perUDF = 1
	}
	return &Pool{idle: make(map[string][]*Executor), limit: perUDF}
}

// Get borrows (or starts and binds) an executor for the UDF.
func (p *Pool) Get(u *udf) (*Executor, error) {
	p.mu.Lock()
	list := p.idle[u.name]
	if len(list) > 0 {
		e := list[len(list)-1]
		p.idle[u.name] = list[:len(list)-1]
		p.mu.Unlock()
		return e, nil
	}
	p.mu.Unlock()
	e, err := StartExecutor()
	if err != nil {
		return nil, err
	}
	if err := u.setup(e); err != nil {
		e.Close()
		return nil, err
	}
	return e, nil
}

// Put returns an executor to the pool (or closes it on error/overflow).
func (p *Pool) Put(u *udf, e *Executor, invokeErr error) {
	if invokeErr != nil {
		e.Close()
		return
	}
	p.mu.Lock()
	if len(p.idle[u.name]) < p.limit {
		p.idle[u.name] = append(p.idle[u.name], e)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	e.Close()
}

// Close shuts down all idle executors.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for k, list := range p.idle {
		for _, e := range list {
			e.Close()
		}
		delete(p.idle, k)
	}
	return nil
}

// Ensure interface satisfaction and keep jvm imported for VMSetup docs.
var _ core.UDF = (*udf)(nil)
var _ jvm.Callback = (*proxyCallback)(nil)

// Err helpers shared by parent and child.
var errNoUDF = fmt.Errorf("isolate: executor has no UDF bound")
