package isolate

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"predator/internal/core"
	"predator/internal/govern"
	"predator/internal/inline"
	"predator/internal/jvm"
	"predator/internal/obs"
	"predator/internal/types"
)

// udf implements core.UDF over an executor process, covering Design 2
// (native isolated) and Design 4 (VM isolated). The executor is
// started lazily on the first invocation and reused until Close —
// analogous to the paper's one-executor-per-UDF-per-query lifecycle
// with its startup cost amortized over the relation's tuples.
type udf struct {
	name   string
	args   []types.Kind
	ret    types.Kind
	design core.Design
	sup    Supervision

	// Setup for the executor (one of):
	nativeName string
	vm         *VMSetup

	// Froid translation result, computed parent-side at registration:
	// a translatable body can run inlined in the plan (Design-1 speed,
	// the verifier supplies the safety) while this udf remains the
	// fallback for everything the planner does not inline.
	prog *inline.Program
	bail string

	mu   sync.Mutex
	exec *Executor
	pool *Pool        // optional shared pool; nil = own executor
	mux  Multiplexer  // optional shared executor fleet; nil = pool or own
	tok  atomic.Value // cached setup fingerprint (string)

	// started latches on the first Invoke: from then on the execution
	// topology (pool, fleet, supervision) is frozen and late attach
	// calls are refused — silently reconfiguring a UDF that already has
	// live executors would strand them.
	started atomic.Bool

	// brk is the per-UDF circuit breaker (created lazily so it sees the
	// final supervision config). quarantined flips when the breaker of a
	// pooled or fleet-shared UDF opens: from then on the UDF runs on its
	// own dedicated executor and never touches shared processes again,
	// so a crash-looping UDF cannot poison healthy tenants' executors.
	brk         *govern.Breaker
	quarantined atomic.Bool
}

// Multiplexer runs UDF crossings on shared, stream-multiplexed executor
// processes. internal/fleet implements it; the indirection keeps
// isolate free of a dependency cycle.
type Multiplexer interface {
	MuxInvoke(ctx *core.Ctx, spec MuxSpec, args []types.Value) (types.Value, error)
	MuxInvokeBatch(ctx *core.Ctx, spec MuxSpec, arity int, args []types.Value, out []core.BatchResult) error
}

// MuxSpec identifies a UDF binding to a multiplexer: the name, a setup
// fingerprint (so a replaced UDF never recycles stale warm state), and
// the setup needed to bind it cold.
type MuxSpec struct {
	UDF   string
	Token string
	Setup StreamSetup
}

// NewNativeIsolated builds a Design 2 UDF: the named function (which
// must be in the executor binary's NativeTable) runs out of process.
func NewNativeIsolated(name string, args []types.Kind, ret types.Kind) core.UDF {
	return &udf{
		name: name, args: args, ret: ret, sup: DefaultSupervision,
		design: core.DesignNativeIsolated, nativeName: name,
		bail: "native-code", // no bytecode to translate
	}
}

// NewVMIsolated builds a Design 4 UDF: Jaguar bytecode hosted by a VM
// in a separate executor process.
func NewVMIsolated(name string, args []types.Kind, ret types.Kind, setup VMSetup) core.UDF {
	s := setup
	u := &udf{
		name: name, args: args, ret: ret, sup: DefaultSupervision,
		design: core.DesignVMIsolated, vm: &s,
	}
	// Attempt Froid translation parent-side. Translate re-verifies the
	// class, so a body that inlines carries the same safety proof the
	// child VM would have enforced; bodies that bail keep the executor.
	c, err := jvm.DecodeClass(s.ClassBytes)
	if err != nil {
		u.bail = inline.ReasonOf(err)
		return u
	}
	method := s.Method
	if method == "" {
		method = name
	}
	if p, err := inline.Translate(c, method, s.Limits); err == nil {
		u.prog = p
	} else {
		u.bail = inline.ReasonOf(err)
	}
	return u
}

// InlineProgram implements core.Inlinable.
func (u *udf) InlineProgram() (*inline.Program, string) { return u.prog, u.bail }

// WithInlineDisabled keeps an isolated UDF's crossings even when its
// body translated (ablation benchmarks and the NOINLINE registration
// path). Must be called before the first Invoke.
func WithInlineDisabled(u core.UDF) core.UDF {
	iu, ok := u.(*udf)
	if !ok || iu.lateAttach("WithInlineDisabled") {
		return u
	}
	iu.prog = nil
	iu.bail = "disabled"
	return iu
}

// lateAttach refuses a post-start reconfiguration: the documented
// "must be called before the first Invoke" contract, now enforced. The
// call is a no-op (the running topology stays as it is) and the
// misconfiguration is logged instead of silently half-applying.
func (u *udf) lateAttach(what string) bool {
	if !u.started.Load() {
		return false
	}
	obs.Logger().Error("isolate: configuration after first Invoke ignored",
		"component", "isolate", "udf", u.name, "option", what)
	return true
}

// WithPool makes the UDF borrow executors from a shared pool instead
// of owning one (the executor-reuse ablation). Must be called before
// the first Invoke; later calls are ignored with an error log.
func WithPool(u core.UDF, p *Pool) core.UDF {
	iu, ok := u.(*udf)
	if !ok || iu.lateAttach("WithPool") {
		return u
	}
	iu.pool = p
	return iu
}

// WithSupervision overrides the UDF's supervision policy (deadlines,
// restart budget). Must be called before the first Invoke; later calls
// are ignored with an error log.
func WithSupervision(u core.UDF, sup Supervision) core.UDF {
	iu, ok := u.(*udf)
	if !ok || iu.lateAttach("WithSupervision") {
		return u
	}
	iu.sup = sup.withDefaults()
	return iu
}

// WithFleet routes the UDF's crossings through a shared multiplexed
// executor fleet instead of a dedicated process. Must be called before
// the first Invoke; later calls are ignored with an error log. A
// quarantined UDF (breaker opened on fatal faults) leaves the fleet
// for a dedicated executor, exactly as pooled UDFs do.
func WithFleet(u core.UDF, m Multiplexer) core.UDF {
	iu, ok := u.(*udf)
	if !ok || iu.lateAttach("WithFleet") {
		return u
	}
	iu.mux = m
	return iu
}

func (u *udf) Name() string           { return u.name }
func (u *udf) ArgKinds() []types.Kind { return u.args }
func (u *udf) ReturnKind() types.Kind { return u.ret }
func (u *udf) Design() core.Design    { return u.design }

func (u *udf) setup(e *Executor) error {
	if u.vm != nil {
		return e.SetupVM(*u.vm)
	}
	return e.SetupNative(u.nativeName)
}

// muxSpec describes this UDF to the fleet. The token fingerprints the
// setup payload (class bytes, method, limits or native name), so a
// CREATE OR REPLACE with new bytecode can never hit stale warm state.
func (u *udf) muxSpec() MuxSpec {
	tok, _ := u.tok.Load().(string)
	if tok == "" {
		h := fnv.New64a()
		if u.vm != nil {
			h.Write(u.vm.ClassBytes)
			h.Write([]byte(u.vm.Method))
			var lim [24]byte
			binary.LittleEndian.PutUint64(lim[0:], uint64(u.vm.Limits.Fuel))
			binary.LittleEndian.PutUint64(lim[8:], uint64(u.vm.Limits.MaxAllocBytes))
			binary.LittleEndian.PutUint64(lim[16:], uint64(u.vm.Limits.MaxCallDepth))
			h.Write(lim[:])
		} else {
			h.Write([]byte("native\x00" + u.nativeName))
		}
		tok = fmt.Sprintf("%016x", h.Sum64())
		u.tok.Store(tok)
	}
	return MuxSpec{UDF: u.name, Token: tok, Setup: StreamSetup{Native: u.nativeName, VM: u.vm}}
}

// executor returns the UDF's executor, starting (with bounded
// restart-and-backoff) if needed.
func (u *udf) executor() (*Executor, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.exec != nil {
		return u.exec, nil
	}
	e, err := startSupervised(u.sup, u.setup)
	if err != nil {
		return nil, err
	}
	u.exec = e
	return e, nil
}

// breaker returns the UDF's circuit breaker, building it on first use
// so it reflects the final WithSupervision configuration.
func (u *udf) breaker() *govern.Breaker {
	u.mu.Lock()
	defer u.mu.Unlock()
	if u.brk == nil {
		u.brk = govern.NewBreaker(u.name, govern.BreakerConfig{
			Failures: u.sup.BreakerFailures,
			Window:   u.sup.BreakerWindow,
			Cooldown: u.sup.BreakerCooldown,
		})
	}
	return u.brk
}

// BreakerStatus exposes the breaker and quarantine state (SHOW UDFS).
func (u *udf) BreakerStatus() (govern.BreakerStatus, bool) {
	return u.breaker().Status(), u.quarantined.Load()
}

// record feeds one crossing's outcome to the breaker and charges the
// crossing to the statement's tenant. The child's self-reported CPU
// (batch result-frame tail) is charged to the tenant's child-CPU
// ledger; the wall-clock remainder — marshaling, pipe transit,
// scheduling, and crossings whose frames carry no CPU tail — is
// charged as parent-side occupancy, so the window total stays the
// crossing's wall time without double-counting. A fatal fault on a
// pooled UDF quarantines it: its next crossing binds a dedicated
// executor.
func (u *udf) record(b *govern.Breaker, ctx *core.Ctx, start time.Time, err error) {
	if ctx != nil {
		wall := time.Since(start)
		child := ctx.TakeReportedCPU()
		if child > wall {
			child = wall // rusage jitter guard: never attribute more than the crossing took
		}
		ctx.Tenant.AddChildCPU(child)
		if wall > child {
			ctx.Tenant.AddCPU(wall - child)
		}
		ctx.Exec.ObserveCrossing(wall, child)
	}
	var fatal bool
	switch core.FaultClassOf(err) {
	case core.FaultExecutor, core.FaultProtocol, core.FaultTimeout, core.FaultExecutorLost:
		fatal = true
	}
	b.Record(fatal)
	if fatal && (u.pool != nil || u.mux != nil) && !u.quarantined.Load() && b.Status().State == "open" {
		u.quarantined.Store(true)
	}
}

// usePool reports whether this crossing should borrow from the shared
// pool (quarantined UDFs are permanently demoted to a dedicated one).
func (u *udf) usePool() bool {
	return u.pool != nil && !u.quarantined.Load()
}

// useMux reports whether this crossing should ride the shared fleet
// (the fleet wins over a pool; quarantined UDFs use neither).
func (u *udf) useMux() bool {
	return u.mux != nil && !u.quarantined.Load()
}

// OnFleet reports whether crossings currently ride the shared fleet
// (SHOW UDFS exec_design).
func (u *udf) OnFleet() bool { return u.useMux() }

// breakerFault wraps an open-breaker rejection as a classified fault.
func breakerFault(err error) error {
	return core.NewFault(core.FaultOverload, "invoke", err)
}

func (u *udf) Invoke(ctx *core.Ctx, args []types.Value) (types.Value, error) {
	if err := core.CheckArgs(u, args); err != nil {
		return types.Value{}, err
	}
	u.started.Store(true)
	b := u.breaker()
	if err := b.Allow(); err != nil {
		f := breakerFault(err)
		countFault(f)
		return types.Value{}, f
	}
	core.CountCrossings(u.design, 1)
	start := time.Now()
	if u.useMux() {
		out, err := u.mux.MuxInvoke(ctx, u.muxSpec(), args)
		countFault(err)
		u.record(b, ctx, start, err)
		return out, err
	}
	if u.usePool() {
		e, err := u.pool.Get(u)
		if err != nil {
			countFault(err)
			u.record(b, ctx, start, err)
			return types.Value{}, err
		}
		out, err := e.Invoke(ctx, args)
		u.pool.Put(u, e, err)
		countFault(err)
		u.record(b, ctx, start, err)
		return out, err
	}
	e, err := u.executor()
	if err != nil {
		countFault(err)
		u.record(b, ctx, start, err)
		return types.Value{}, err
	}
	out, err := e.Invoke(ctx, args)
	countFault(err)
	u.record(b, ctx, start, err)
	if err != nil && (core.FaultClassOf(err) != core.FaultUDF || !e.Alive()) {
		// The executor died, babbled or timed out (the supervisor has
		// already killed and reaped it). Drop the handle so the next
		// invocation gets a fresh one; a plain UDF error keeps it —
		// unless the child died right after reporting it (a dying
		// gasp), in which case the handle is useless too.
		u.dropExecutor(e)
		return types.Value{}, err
	}
	return out, err
}

// dropExecutor discards a broken executor handle so the next invocation
// starts a fresh one.
func (u *udf) dropExecutor(e *Executor) {
	u.mu.Lock()
	if u.exec == e {
		u.exec = nil
	}
	u.mu.Unlock()
	e.Close()
}

// InvokeBatch carries the whole batch across the process boundary in a
// single crossing — the amortization Designs 2 and 4 exist for. A batch
// of one takes the scalar path, so batch size 1 stays byte-identical to
// the legacy protocol (faults, timeouts and callbacks included).
func (u *udf) InvokeBatch(ctx *core.Ctx, arity int, args []types.Value, out []core.BatchResult) error {
	if err := core.CheckBatchShape(u, arity, args, out); err != nil {
		return err
	}
	n := len(out)
	if n == 0 {
		return nil
	}
	if n == 1 {
		v, err := u.Invoke(ctx, args)
		if err != nil {
			if core.FaultClassOf(err) == core.FaultUDF {
				out[0] = core.BatchResult{Err: err}
				return nil
			}
			return err
		}
		out[0] = core.BatchResult{Value: v}
		return nil
	}
	u.started.Store(true)
	b := u.breaker()
	if err := b.Allow(); err != nil {
		f := breakerFault(err)
		countFault(f)
		return f
	}
	core.CountCrossings(u.design, 1)
	core.ObserveBatchRows(u.design, int64(n))
	start := time.Now()
	if u.useMux() {
		err := u.mux.MuxInvokeBatch(ctx, u.muxSpec(), arity, args, out)
		countFault(err)
		u.record(b, ctx, start, err)
		return err
	}
	if u.usePool() {
		e, err := u.pool.Get(u)
		if err != nil {
			countFault(err)
			u.record(b, ctx, start, err)
			return err
		}
		err = e.InvokeBatch(ctx, arity, args, out)
		u.pool.Put(u, e, err)
		countFault(err)
		u.record(b, ctx, start, err)
		return err
	}
	e, err := u.executor()
	if err != nil {
		countFault(err)
		u.record(b, ctx, start, err)
		return err
	}
	err = e.InvokeBatch(ctx, arity, args, out)
	countFault(err)
	u.record(b, ctx, start, err)
	if err != nil && (core.FaultClassOf(err) != core.FaultUDF || !e.Alive()) {
		u.dropExecutor(e)
	}
	return err
}

func (u *udf) Close() error {
	u.mu.Lock()
	e := u.exec
	u.exec = nil
	u.mu.Unlock()
	if e != nil {
		return e.Close()
	}
	return nil
}

// Pool is a shared pool of pre-started executors keyed by UDF, used by
// the executor-reuse ablation (the paper notes executors "could be
// assigned from a pre-allocated pool"). The pool health-checks idle
// executors before lending them out, evicts dead ones, and can cap the
// total number of live executor processes.
type Pool struct {
	mu      sync.Mutex
	cond    *sync.Cond
	idle    map[string][]*Executor
	limit   int // idle executors kept per UDF
	maxLive int // cap on total live executors (0 = unlimited)
	live    int // executors currently alive (idle + lent out)
	closed  bool
	sup     Supervision
}

// NewPool creates a pool keeping up to perUDF idle executors per UDF,
// with no cap on total live executors and default supervision.
func NewPool(perUDF int) *Pool {
	return NewPoolWith(perUDF, 0, DefaultSupervision)
}

// NewPoolWith creates a pool keeping up to perUDF idle executors per
// UDF and at most maxLive live executor processes in total (0 = no
// cap); Get blocks while the cap is reached.
func NewPoolWith(perUDF, maxLive int, sup Supervision) *Pool {
	if perUDF < 1 {
		perUDF = 1
	}
	p := &Pool{
		idle:    make(map[string][]*Executor),
		limit:   perUDF,
		maxLive: maxLive,
		sup:     sup.withDefaults(),
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Get borrows (or starts and binds) an executor for the UDF. Idle
// executors are health-checked before being lent out; dead ones are
// evicted and replaced.
func (p *Pool) Get(u *udf) (*Executor, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, fmt.Errorf("isolate: pool is closed")
		}
		if list := p.idle[u.name]; len(list) > 0 {
			e := list[len(list)-1]
			p.idle[u.name] = list[:len(list)-1]
			p.mu.Unlock()
			// Verify the executor survived idling: process alive and
			// protocol loop answering. Evict and retry otherwise.
			if e.Alive() && e.Ping(p.sup.PingTimeout) == nil {
				cPoolLends.Inc()
				return e, nil
			}
			cEvictions.Inc()
			p.release(e)
			continue
		}
		// Nothing idle: start a fresh executor, respecting the cap.
		// After a wakeup, re-run the whole loop — the freed capacity
		// may have arrived as an idle executor for this UDF.
		if p.maxLive > 0 && p.live >= p.maxLive {
			p.cond.Wait()
			p.mu.Unlock()
			continue
		}
		p.live++
		p.mu.Unlock()
		e, err := startSupervised(p.sup, u.setup)
		if err != nil {
			p.mu.Lock()
			p.live--
			p.cond.Broadcast()
			p.mu.Unlock()
			return nil, err
		}
		cPoolLends.Inc()
		return e, nil
	}
}

// Put returns an executor to the pool. Executors that faulted, broke,
// or exceed the idle limit are closed; a closed pool closes everything
// handed back so late returns never leak processes.
func (p *Pool) Put(u *udf, e *Executor, invokeErr error) {
	fatal := invokeErr != nil && core.FaultClassOf(invokeErr) != core.FaultUDF
	if fatal || !e.Alive() {
		p.release(e)
		return
	}
	p.mu.Lock()
	if !p.closed && len(p.idle[u.name]) < p.limit {
		p.idle[u.name] = append(p.idle[u.name], e)
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	p.release(e)
}

// release closes an executor and gives its live slot back.
func (p *Pool) release(e *Executor) {
	e.Close()
	p.mu.Lock()
	p.live--
	p.cond.Broadcast()
	p.mu.Unlock()
}

// Live reports the number of live executors (idle + lent out).
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Close marks the pool closed and shuts down all idle executors.
// Subsequent Get fails and subsequent Put closes the executor, so no
// process outlives the pool.
func (p *Pool) Close() error {
	p.mu.Lock()
	p.closed = true
	var all []*Executor
	for k, list := range p.idle {
		all = append(all, list...)
		delete(p.idle, k)
	}
	p.live -= len(all)
	p.cond.Broadcast()
	p.mu.Unlock()
	for _, e := range all {
		e.Close()
	}
	return nil
}

// Ensure interface satisfaction and keep jvm imported for VMSetup docs.
var _ core.UDF = (*udf)(nil)
var _ core.BatchUDF = (*udf)(nil)
var _ jvm.Callback = (*proxyCallback)(nil)
