package isolate

import (
	"os"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/obs"
	"predator/internal/types"
)

func TestChildSpanWireRoundTrip(t *testing.T) {
	now := time.Unix(1700000000, 123456789)
	in := []childSpan{
		{id: 1, parent: 0, name: "child/invoke", start: now, dur: 5 * time.Millisecond},
		{id: 2, parent: 1, name: "child/vm_exec", start: now.Add(time.Millisecond), dur: time.Millisecond},
	}
	buf := appendChildSpans(nil, in)
	out := decodeChildSpans(&preader{buf: buf})
	if len(out) != len(in) {
		t.Fatalf("decoded %d spans, want %d", len(out), len(in))
	}
	for i, rec := range out {
		if rec.ID != int64(in[i].id) || rec.Parent != int64(in[i].parent) || rec.Name != in[i].name {
			t.Errorf("span %d: got %+v", i, rec)
		}
		if !rec.Start.Equal(in[i].start) || rec.Dur != in[i].dur {
			t.Errorf("span %d timing: start %v dur %v", i, rec.Start, rec.Dur)
		}
	}
}

func TestChildSpanDecodeRejectsBabble(t *testing.T) {
	// A count beyond the cap must fail the frame, not allocate for it.
	buf := appendChildSpans(nil, nil)
	buf[0] = 0xFF // corrupt the count into a large varint prefix
	buf = append(buf, 0xFF, 0xFF, 0x7F)
	r := &preader{buf: buf}
	if got := decodeChildSpans(r); got != nil || r.err == nil {
		t.Fatalf("oversized span count accepted: %v (err=%v)", got, r.err)
	}
	// Truncated payload mid-span also fails cleanly.
	trunc := appendChildSpans(nil, []childSpan{{id: 1, name: "child/invoke"}})
	r = &preader{buf: trunc[:len(trunc)-2]}
	if got := decodeChildSpans(r); got != nil || r.err == nil {
		t.Fatalf("truncated span tail accepted: %v (err=%v)", got, r.err)
	}
}

// TestInvokeShipsChildSpans drives a real executor process end to end:
// a detailed trace on the UDF context must come back with spans the
// child recorded, attributed to the child's (non-zero, non-parent) PID.
func TestInvokeShipsChildSpans(t *testing.T) {
	u := NewNativeIsolated("sumbytes", []types.Kind{types.KindBytes}, types.KindInt)
	defer u.Close()
	tr := obs.NewTrace()
	tr.EnableDetail()
	ctx := &core.Ctx{Trace: tr}
	v, err := u.Invoke(ctx, []types.Value{types.NewBytes([]byte{20, 22})})
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != 42 {
		t.Fatalf("got %d", v.Int)
	}
	names := map[string]int{}
	childPID := 0
	for _, r := range tr.Spans() {
		names[r.Name]++
		if r.PID != 0 {
			childPID = r.PID
		}
	}
	if names["child/invoke"] == 0 {
		t.Fatalf("no child/invoke span shipped; spans: %v", names)
	}
	if names["child/setup"] == 0 {
		t.Fatalf("no child/setup span shipped; spans: %v", names)
	}
	if childPID == 0 || childPID == os.Getpid() {
		t.Fatalf("child spans not attributed to the executor process: pid=%d", childPID)
	}

	// An untraced context must ship nothing new.
	before := len(tr.Spans())
	if _, err := u.Invoke(&core.Ctx{}, []types.Value{types.NewBytes([]byte{1})}); err != nil {
		t.Fatal(err)
	}
	if after := len(tr.Spans()); after != before {
		t.Fatalf("untraced invoke grew the trace: %d -> %d", before, after)
	}
}
