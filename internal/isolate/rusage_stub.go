//go:build !unix

package isolate

import "time"

// selfCPUNanos is unavailable on this platform; executors report zero
// CPU and the parent falls back to wall-clock attribution.
func selfCPUNanos() time.Duration { return 0 }
