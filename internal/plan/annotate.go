package plan

import (
	"fmt"
	"math"

	"predator/internal/exec"
)

// Annotate walks a plan tree bottom-up and attaches cardinality
// estimates (and access-path notes) to each operator for EXPLAIN
// output. SeqScan estimates come from the heap file's page chain
// (O(pages) per table), so this runs only on the EXPLAIN path, never
// during normal execution.
func Annotate(root exec.Operator) {
	estimate(root)
}

// estimate returns the operator's estimated output cardinality and
// stores it (with any access-path note) on the node.
func estimate(op exec.Operator) float64 {
	switch o := op.(type) {
	case *exec.SeqScan:
		rows := 1000.0
		access := "heap chain"
		if st, err := o.Heap.Stats(); err == nil {
			rows = float64(st.Records)
			access = fmt.Sprintf("heap chain, %d pages", st.Pages)
		}
		o.Est = &exec.Est{Rows: rows, Access: access}
		return rows
	case *exec.Filter:
		rows := estimate(o.Input) * selectivity(o.Pred)
		o.Est = &exec.Est{Rows: rows}
		return rows
	case *exec.Project:
		rows := estimate(o.Input)
		o.Est = &exec.Est{Rows: rows}
		return rows
	case *exec.NestedLoopJoin:
		rows := estimate(o.Left) * estimate(o.Right)
		if o.On != nil {
			rows *= selectivity(o.On)
		}
		o.Est = &exec.Est{Rows: rows, Access: "inner materialized"}
		return rows
	case *exec.Sort:
		rows := estimate(o.Input)
		o.Est = &exec.Est{Rows: rows, Access: "materialized sort"}
		return rows
	case *exec.Limit:
		rows := math.Min(estimate(o.Input), float64(o.N))
		o.Est = &exec.Est{Rows: rows}
		return rows
	case *exec.Aggregate:
		in := estimate(o.Input)
		rows := 1.0
		if len(o.Groups) > 0 {
			// Textbook default: grouping keeps ~a tenth of the input.
			rows = math.Max(1, in*0.1)
		}
		o.Est = &exec.Est{Rows: rows}
		return rows
	case *exec.Values:
		rows := float64(len(o.Rows))
		o.Est = &exec.Est{Rows: rows}
		return rows
	default:
		// Unknown operator: estimate children for their annotations and
		// pass through a neutral guess.
		var rows float64 = 1000
		for _, c := range op.Children() {
			rows = estimate(c)
		}
		return rows
	}
}
