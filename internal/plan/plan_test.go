package plan

import (
	"path/filepath"
	"strings"
	"testing"

	"predator/internal/catalog"
	"predator/internal/core"
	"predator/internal/exec"
	"predator/internal/expr"
	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/sql"
	"predator/internal/storage"
	"predator/internal/types"
)

// testPlanner builds a planner over a scratch catalog with tables
// emp(id INT, name STRING, dept INT, pay FLOAT) and dept(id INT,
// dname STRING), plus a registered UDF "slow(int) bool".
func testPlanner(t *testing.T) (*Planner, *expr.Ctx) {
	t.Helper()
	disk, err := storage.OpenDisk(filepath.Join(t.TempDir(), "plan.db"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	pool := storage.NewBufferPool(disk, 64)
	cat, err := catalog.Open(disk, pool)
	if err != nil {
		t.Fatal(err)
	}
	emp, err := cat.CreateTable("emp", types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "name", Kind: types.KindString},
		types.Column{Name: "dept", Kind: types.KindInt},
		types.Column{Name: "pay", Kind: types.KindFloat},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range []struct {
		name string
		dept int64
		pay  float64
	}{
		{"ann", 1, 100}, {"bob", 1, 200}, {"cat", 2, 300}, {"dan", 2, 400}, {"eve", 3, 500},
	} {
		row := types.Row{types.NewInt(int64(i + 1)), types.NewString(e.name), types.NewInt(e.dept), types.NewFloat(e.pay)}
		rec, _ := types.EncodeRow(nil, emp.Schema, row)
		if _, err := emp.Heap().Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	dept, err := cat.CreateTable("dept", types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "dname", Kind: types.KindString},
	))
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range []string{"eng", "ops", "hr"} {
		row := types.Row{types.NewInt(int64(i + 1)), types.NewString(n)}
		rec, _ := types.EncodeRow(nil, dept.Schema, row)
		if _, err := dept.Heap().Insert(rec); err != nil {
			t.Fatal(err)
		}
	}
	reg := core.NewRegistry()
	reg.Register(core.NewNative("slow", []types.Kind{types.KindInt}, types.KindBool,
		func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
			return types.NewBool(args[0].Int%2 == 0), nil
		}))
	return &Planner{Catalog: cat, Registry: reg}, &expr.Ctx{}
}

func planQuery(t *testing.T, p *Planner, q string) exec.Operator {
	t.Helper()
	stmt, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	op, err := p.PlanSelect(stmt.(*sql.Select))
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	return op
}

func runQuery(t *testing.T, p *Planner, ec *expr.Ctx, q string) []types.Row {
	t.Helper()
	op := planQuery(t, p, q)
	rows, err := exec.Run(op, ec)
	if err != nil {
		t.Fatalf("run %q: %v", q, err)
	}
	return rows
}

func TestPlanSimpleSelect(t *testing.T) {
	p, ec := testPlanner(t)
	rows := runQuery(t, p, ec, `SELECT name FROM emp WHERE pay > 250 ORDER BY name`)
	if len(rows) != 3 || rows[0][0].Str != "cat" || rows[2][0].Str != "eve" {
		t.Errorf("rows = %v", rows)
	}
}

func TestPlanPushdownBelowJoin(t *testing.T) {
	p, _ := testPlanner(t)
	op := planQuery(t, p, `
		SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id
		WHERE e.pay > 150 AND d.dname = 'ops'`)
	tree := exec.ExplainTree(op)
	// Both single-table predicates must appear below the join.
	joinLine := strings.Index(tree, "NestedLoopJoin")
	payLine := strings.Index(tree, "pay")
	dnameLine := strings.Index(tree, "dname")
	if joinLine < 0 || payLine < 0 || dnameLine < 0 {
		t.Fatalf("tree missing parts:\n%s", tree)
	}
	if payLine < joinLine || dnameLine < joinLine {
		t.Errorf("predicates not pushed below join:\n%s", tree)
	}
	// And the join predicate stays at join level (above the scans).
	if !strings.Contains(tree, "e.dept = d.id") {
		t.Errorf("join predicate lost:\n%s", tree)
	}
}

func TestPlanJoinResults(t *testing.T) {
	p, ec := testPlanner(t)
	rows := runQuery(t, p, ec, `
		SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id
		WHERE d.dname = 'eng' ORDER BY e.name`)
	if len(rows) != 2 || rows[0][0].Str != "ann" || rows[0][1].Str != "eng" {
		t.Errorf("rows = %v", rows)
	}
}

func TestPlanExpensivePredicateLast(t *testing.T) {
	p, _ := testPlanner(t)
	op := planQuery(t, p, `SELECT id FROM emp WHERE slow(id) AND pay > 100 AND id = 4`)
	tree := exec.ExplainTree(op)
	// Reading top-down: slow (most expensive) first line, then pay,
	// then id = 4 (cheap + selective) nearest the scan.
	slowPos := strings.Index(tree, "slow")
	payPos := strings.Index(tree, "pay")
	idPos := strings.Index(tree, "(id = 4)")
	scanPos := strings.Index(tree, "SeqScan")
	if !(slowPos < payPos && payPos < idPos && idPos < scanPos) {
		t.Errorf("rank ordering wrong:\n%s", tree)
	}
}

func TestPlanAggregates(t *testing.T) {
	p, ec := testPlanner(t)
	rows := runQuery(t, p, ec, `
		SELECT dept, COUNT(*) n, SUM(pay) FROM emp
		GROUP BY dept HAVING COUNT(*) > 1 ORDER BY dept`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Int != 1 || rows[0][1].Int != 2 || rows[0][2].Float != 300 {
		t.Errorf("group 1 = %v", rows[0])
	}
	if rows[1][0].Int != 2 || rows[1][2].Float != 700 {
		t.Errorf("group 2 = %v", rows[1])
	}
}

func TestPlanAggregateExprOverGroups(t *testing.T) {
	p, ec := testPlanner(t)
	rows := runQuery(t, p, ec, `
		SELECT dept * 10, AVG(pay) / 100.0 FROM emp GROUP BY dept ORDER BY dept * 10`)
	if len(rows) != 3 || rows[0][0].Int != 10 || rows[0][1].Float != 1.5 {
		t.Errorf("rows = %v", rows)
	}
}

func TestPlanOrderByAlias(t *testing.T) {
	p, ec := testPlanner(t)
	rows := runQuery(t, p, ec, `SELECT name, pay * 2 AS dbl FROM emp ORDER BY dbl DESC LIMIT 2`)
	if len(rows) != 2 || rows[0][0].Str != "eve" || rows[0][1].Float != 1000 {
		t.Errorf("rows = %v", rows)
	}
	// Aggregate path too.
	rows = runQuery(t, p, ec, `SELECT dept, COUNT(*) AS n FROM emp GROUP BY dept ORDER BY n DESC, dept`)
	if rows[0][1].Int != 2 || rows[2][1].Int != 1 {
		t.Errorf("agg alias order = %v", rows)
	}
}

func TestPlanErrors(t *testing.T) {
	p, _ := testPlanner(t)
	cases := []string{
		`SELECT * FROM nosuch`,
		`SELECT nosuch FROM emp`,
		`SELECT name FROM emp WHERE pay`,             // non-bool predicate
		`SELECT name, COUNT(*) FROM emp`,             // loose column with aggregate
		`SELECT * FROM emp GROUP BY dept`,            // star with aggregation
		`SELECT SUM(COUNT(*)) FROM emp`,              // nested aggregates
		`SELECT AVG(*) FROM emp`,                     // star on non-count
		`SELECT SUM(pay, pay) FROM emp`,              // aggregate arity
		`SELECT SUM(name) FROM emp`,                  // SUM over string
		`SELECT e.id FROM emp e, emp f WHERE id = 1`, // ambiguous
	}
	for _, q := range cases {
		stmt, err := sql.Parse(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		if _, err := p.PlanSelect(stmt.(*sql.Select)); err == nil {
			t.Errorf("plan %q succeeded, want error", q)
		}
	}
}

func TestSelectivityEstimates(t *testing.T) {
	p, _ := testPlanner(t)
	_ = p
	eq := &expr.Cmp{Op: "=", L: &expr.Col{Index: 0, K: types.KindInt, Name: "x"}, R: &expr.Const{Value: types.NewInt(1)}}
	lt := &expr.Cmp{Op: "<", L: &expr.Col{Index: 0, K: types.KindInt, Name: "x"}, R: &expr.Const{Value: types.NewInt(1)}}
	if selectivity(eq) >= selectivity(lt) {
		t.Error("equality should be more selective than range")
	}
	or := &expr.Logic{Op: "OR", L: eq, R: lt}
	and := &expr.Logic{Op: "AND", L: eq, R: lt}
	if selectivity(or) <= selectivity(and) {
		t.Error("OR should be less selective than AND")
	}
}

// TestPlanInlinedPredicateFirst: an inlined UDF predicate costs what
// it is — a handful of register ops — so predicate reordering floats
// it ahead of (deeper in the tree than) an isolated UDF predicate that
// pays a process crossing. Before inlining, every UDF predicate
// carried at least a VM-dispatch cost and this ordering was a wash.
func TestPlanInlinedPredicateFirst(t *testing.T) {
	p, _ := testPlanner(t)
	c, err := jaguar.Compile(`func gate(x int) bool { return x % 2 == 0; }`, "udf_gate")
	if err != nil {
		t.Fatal(err)
	}
	lc, err := jvm.New(jvm.Options{}).NewLoader("plan-test").LoadClass(c)
	if err != nil {
		t.Fatal(err)
	}
	u, err := core.NewVM(core.VMUDFConfig{
		Name: "gate", Class: lc, Method: "gate",
		Args: []types.Kind{types.KindInt}, Return: types.KindBool,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Registry.Register(u); err != nil {
		t.Fatal(err)
	}
	// Never invoked — the plan is built, not run — so no executor
	// process is needed.
	if err := p.Registry.Register(isolate.NewNativeIsolated("iso_even",
		[]types.Kind{types.KindInt}, types.KindBool)); err != nil {
		t.Fatal(err)
	}

	op := planQuery(t, p, `SELECT id FROM emp WHERE iso_even(id) AND gate(id)`)
	tree := exec.ExplainTree(op)
	isoPos := strings.Index(tree, "iso_even")
	gatePos := strings.Index(tree, "gate[inlined]")
	scanPos := strings.Index(tree, "SeqScan")
	if gatePos < 0 {
		t.Fatalf("inlined predicate not rendered as gate[inlined]:\n%s", tree)
	}
	if !(isoPos < gatePos && gatePos < scanPos) {
		t.Errorf("inlined predicate not reordered ahead of the isolated one:\n%s", tree)
	}
}
