package plan

import (
	"fmt"
	"strings"

	"predator/internal/exec"
	"predator/internal/expr"
	"predator/internal/sql"
	"predator/internal/types"
)

// planAggregate builds the aggregation path: the input is grouped by
// the GROUP BY expressions, aggregate calls are computed per group, and
// the SELECT items / HAVING / ORDER BY are rewritten to reference the
// aggregate operator's output columns.
func (p *Planner) planAggregate(sel *sql.Select, input exec.Operator, binder *expr.Binder) (exec.Operator, error) {
	// 1. Bind the GROUP BY expressions against the input scope.
	var groups []expr.Bound
	var groupStrs []string
	for _, g := range sel.GroupBy {
		bound, err := binder.Bind(g)
		if err != nil {
			return nil, err
		}
		groups = append(groups, bound)
		groupStrs = append(groupStrs, normalizeSQL(g))
	}

	// 2. Collect distinct aggregate calls from items, HAVING, ORDER BY.
	var specs []expr.AggSpec
	specIdx := make(map[string]int)
	collect := func(e sql.Expr) error {
		return walkAggregates(e, func(fc *sql.FuncCall) error {
			key := normalizeSQL(fc)
			if _, seen := specIdx[key]; seen {
				return nil
			}
			spec := expr.AggSpec{Func: expr.AggFunc(strings.ToUpper(fc.Name)), Name: key}
			if fc.Star {
				if spec.Func != expr.AggCount {
					return fmt.Errorf("plan: %s(*) is not supported", spec.Func)
				}
			} else {
				if len(fc.Args) != 1 {
					return fmt.Errorf("plan: %s takes exactly one argument", spec.Func)
				}
				arg, err := binder.Bind(fc.Args[0])
				if err != nil {
					return err
				}
				spec.Arg = arg
			}
			if _, err := spec.ResultKind(); err != nil {
				return err
			}
			specIdx[key] = len(specs)
			specs = append(specs, spec)
			return nil
		})
	}
	for _, item := range sel.Items {
		if item.Star {
			return nil, fmt.Errorf("plan: SELECT * cannot be combined with aggregation")
		}
		if err := collect(item.Expr); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, err
		}
	}
	for _, o := range sel.OrderBy {
		if err := collect(o.Expr); err != nil {
			return nil, err
		}
	}

	// 3. The aggregate operator's output scope: groups then aggregates,
	// named with synthetic identifiers the rewriter targets.
	names := make([]string, 0, len(groups)+len(specs))
	outScope := expr.NewScope()
	outSchema := &types.Schema{}
	for i, g := range groups {
		name := fmt.Sprintf("#g%d", i)
		names = append(names, name)
		outSchema.Columns = append(outSchema.Columns, types.Column{Name: name, Kind: g.Kind()})
	}
	for i := range specs {
		k, err := specs[i].ResultKind()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("#a%d", i)
		names = append(names, name)
		outSchema.Columns = append(outSchema.Columns, types.Column{Name: name, Kind: k})
	}
	outScope.AddTable("", outSchema)
	outBinder := &expr.Binder{Scope: outScope, Registry: p.Registry, NoInline: p.NoInline}

	// 4. Rewriter: group expressions and aggregate calls become column
	// references into the aggregate output.
	var rewrite func(e sql.Expr) (sql.Expr, error)
	rewrite = func(e sql.Expr) (sql.Expr, error) {
		key := normalizeSQL(e)
		for i, gs := range groupStrs {
			if key == gs {
				return &sql.ColumnRef{Column: fmt.Sprintf("#g%d", i)}, nil
			}
		}
		switch n := e.(type) {
		case *sql.FuncCall:
			if expr.IsAggregateName(n.Name) {
				idx, ok := specIdx[key]
				if !ok {
					return nil, fmt.Errorf("plan: internal: aggregate %s not collected", key)
				}
				return &sql.ColumnRef{Column: fmt.Sprintf("#a%d", idx)}, nil
			}
			args := make([]sql.Expr, len(n.Args))
			for i, a := range n.Args {
				ra, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				args[i] = ra
			}
			return &sql.FuncCall{Name: n.Name, Args: args}, nil
		case *sql.BinaryExpr:
			l, err := rewrite(n.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(n.R)
			if err != nil {
				return nil, err
			}
			return &sql.BinaryExpr{Op: n.Op, L: l, R: r}, nil
		case *sql.UnaryExpr:
			x, err := rewrite(n.X)
			if err != nil {
				return nil, err
			}
			return &sql.UnaryExpr{Op: n.Op, X: x}, nil
		case *sql.IsNull:
			x, err := rewrite(n.X)
			if err != nil {
				return nil, err
			}
			return &sql.IsNull{X: x, Negate: n.Negate}, nil
		case *sql.ColumnRef:
			return nil, fmt.Errorf("plan: column %s must appear in GROUP BY or inside an aggregate", n)
		default:
			return e, nil
		}
	}
	bindRewritten := func(e sql.Expr) (expr.Bound, error) {
		re, err := rewrite(e)
		if err != nil {
			return nil, err
		}
		return outBinder.Bind(re)
	}

	// 5. Assemble: Aggregate -> Having -> Sort -> Limit -> Project.
	var root exec.Operator = &exec.Aggregate{
		Input:  input,
		Groups: groups,
		Specs:  specs,
		Names:  names,
	}
	if sel.Having != nil {
		pred, err := bindRewritten(sel.Having)
		if err != nil {
			return nil, err
		}
		if pred.Kind() != types.KindBool {
			return nil, fmt.Errorf("plan: HAVING predicate is %s, not BOOL", pred.Kind())
		}
		root = &exec.Filter{Input: root, Pred: pred}
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			target := o.Expr
			// A bare name matching a SELECT alias orders by that item.
			if ref, ok := o.Expr.(*sql.ColumnRef); ok && ref.Table == "" {
				for _, item := range sel.Items {
					if strings.EqualFold(item.Alias, ref.Column) {
						target = item.Expr
						break
					}
				}
			}
			bound, err := bindRewritten(target)
			if err != nil {
				return nil, err
			}
			keys[i] = exec.SortKey{Expr: bound, Desc: o.Desc}
		}
		root = &exec.Sort{Input: root, Keys: keys}
	}
	if sel.Limit >= 0 {
		root = &exec.Limit{Input: root, N: sel.Limit}
	}
	projExprs := make([]expr.Bound, len(sel.Items))
	projNames := make([]string, len(sel.Items))
	for i, item := range sel.Items {
		bound, err := bindRewritten(item.Expr)
		if err != nil {
			return nil, err
		}
		projExprs[i] = bound
		name := item.Alias
		if name == "" {
			name = normalizeSQL(item.Expr)
		}
		projNames[i] = name
	}
	return &exec.Project{Input: root, Exprs: projExprs, Names: projNames}, nil
}

// walkAggregates visits every top-most aggregate call in e.
func walkAggregates(e sql.Expr, fn func(*sql.FuncCall) error) error {
	switch n := e.(type) {
	case *sql.FuncCall:
		if expr.IsAggregateName(n.Name) {
			for _, a := range n.Args {
				if containsAggregate(a) {
					return fmt.Errorf("plan: nested aggregates are not supported")
				}
			}
			return fn(n)
		}
		for _, a := range n.Args {
			if err := walkAggregates(a, fn); err != nil {
				return err
			}
		}
	case *sql.BinaryExpr:
		if err := walkAggregates(n.L, fn); err != nil {
			return err
		}
		return walkAggregates(n.R, fn)
	case *sql.UnaryExpr:
		return walkAggregates(n.X, fn)
	case *sql.IsNull:
		return walkAggregates(n.X, fn)
	}
	return nil
}

// normalizeSQL renders an expression canonically (lower-cased) so that
// GROUP BY keys can be matched against SELECT items textually.
func normalizeSQL(e sql.Expr) string {
	return strings.ToLower(e.String())
}
