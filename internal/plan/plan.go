// Package plan turns parsed SELECT statements into physical operator
// trees. The optimizer implements the two UDF-relevant techniques the
// paper's related work highlights ([Hel95], [Jhi88]):
//
//   - predicate pushdown: conjuncts that touch a single base table are
//     evaluated directly above its scan, below any joins;
//   - expensive-predicate placement: conjuncts are ordered by rank
//     (selectivity-1)/cost, so cheap selective predicates run before
//     expensive UDF predicates.
package plan

import (
	"fmt"
	"sort"
	"strings"

	"predator/internal/catalog"
	"predator/internal/core"
	"predator/internal/exec"
	"predator/internal/expr"
	"predator/internal/sql"
	"predator/internal/types"
)

// Planner builds executable plans.
type Planner struct {
	Catalog  *catalog.Catalog
	Registry *core.Registry
	// NoInline binds UDF calls to their dispatch path even when the
	// body translated (the inlining ablation).
	NoInline bool
}

// PlanSelect compiles a SELECT into an operator tree.
func (p *Planner) PlanSelect(sel *sql.Select) (exec.Operator, error) {
	if len(sel.From) == 0 {
		return nil, fmt.Errorf("plan: SELECT requires a FROM clause")
	}
	// Resolve base tables (comma list plus JOIN clauses).
	type baseTable struct {
		ref    sql.TableRef
		tbl    *catalog.Table
		on     sql.Expr // join condition, nil for comma/cross
		offset int      // column offset in the combined row
	}
	var bases []baseTable
	for _, ref := range sel.From {
		tbl, ok := p.Catalog.Table(ref.Table)
		if !ok {
			return nil, fmt.Errorf("plan: table %q does not exist", ref.Table)
		}
		bases = append(bases, baseTable{ref: ref, tbl: tbl})
	}
	for _, j := range sel.Joins {
		tbl, ok := p.Catalog.Table(j.Table.Table)
		if !ok {
			return nil, fmt.Errorf("plan: table %q does not exist", j.Table.Table)
		}
		bases = append(bases, baseTable{ref: j.Table, tbl: tbl, on: j.On})
	}
	// Build the combined scope and per-table offsets.
	scope := expr.NewScope()
	for i := range bases {
		b := &bases[i]
		b.offset = scope.Arity()
		qual := b.ref.Alias
		if qual == "" {
			qual = b.ref.Table
		}
		scope.AddTable(qual, b.tbl.Schema)
	}
	binder := &expr.Binder{Scope: scope, Registry: p.Registry, NoInline: p.NoInline}

	// Collect all conjuncts: WHERE plus JOIN ... ON conditions.
	var conjuncts []expr.Bound
	addConjuncts := func(e sql.Expr) error {
		for _, c := range splitConjuncts(e) {
			bound, err := binder.Bind(c)
			if err != nil {
				return err
			}
			if bound.Kind() != types.KindBool {
				return fmt.Errorf("plan: predicate %s is %s, not BOOL", bound, bound.Kind())
			}
			conjuncts = append(conjuncts, bound)
		}
		return nil
	}
	for _, b := range bases {
		if b.on != nil {
			if err := addConjuncts(b.on); err != nil {
				return nil, err
			}
		}
	}
	if sel.Where != nil {
		if err := addConjuncts(sel.Where); err != nil {
			return nil, err
		}
	}

	// Partition conjuncts: pushable to one base table vs join-level.
	// tableOf maps a combined-row column index to its base table.
	tableOf := func(col int) int {
		for i := len(bases) - 1; i >= 0; i-- {
			if col >= bases[i].offset {
				return i
			}
		}
		return 0
	}
	pushed := make([][]expr.Bound, len(bases))
	var joinLevel []expr.Bound
	for _, c := range conjuncts {
		cols := expr.ColumnsUsed(c)
		target := -1
		ok := true
		for col := range cols {
			ti := tableOf(col)
			if target == -1 {
				target = ti
			} else if target != ti {
				ok = false
				break
			}
		}
		if ok && target >= 0 {
			pushed[target] = append(pushed[target], expr.ShiftCols(c, bases[target].offset))
		} else {
			joinLevel = append(joinLevel, c)
		}
	}

	// Build per-table scan + ordered filters, then the left-deep join.
	var root exec.Operator
	for i := range bases {
		b := &bases[i]
		var op exec.Operator = &exec.SeqScan{
			Table: b.ref.Table,
			Heap:  b.tbl.Heap(),
			Sch:   b.tbl.Schema,
		}
		for _, pred := range orderByRank(pushed[i]) {
			op = &exec.Filter{Input: op, Pred: pred}
		}
		if root == nil {
			root = op
		} else {
			root = &exec.NestedLoopJoin{Left: root, Right: op}
		}
	}
	for _, pred := range orderByRank(joinLevel) {
		root = &exec.Filter{Input: root, Pred: pred}
	}

	// Aggregation?
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, item := range sel.Items {
		if !item.Star && containsAggregate(item.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		return p.planAggregate(sel, root, binder)
	}

	// Plain projection path.
	var projExprs []expr.Bound
	var projNames []string
	aliases := make(map[string]expr.Bound)
	for _, item := range sel.Items {
		if item.Star {
			sch := scope.Schema()
			for i, col := range sch.Columns {
				projExprs = append(projExprs, &expr.Col{Index: i, K: col.Kind, Name: col.Name})
				projNames = append(projNames, col.Name)
			}
			continue
		}
		bound, err := binder.Bind(item.Expr)
		if err != nil {
			return nil, err
		}
		projExprs = append(projExprs, bound)
		projNames = append(projNames, item.Alias)
		if item.Alias != "" {
			aliases[strings.ToLower(item.Alias)] = bound
		}
	}
	// ORDER BY binds against the pre-projection scope (so sorting by
	// non-projected columns works); a bare name that matches a SELECT
	// alias resolves to that item's expression.
	if len(sel.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			var bound expr.Bound
			if ref, ok := o.Expr.(*sql.ColumnRef); ok && ref.Table == "" {
				if b, hit := aliases[strings.ToLower(ref.Column)]; hit {
					bound = b
				}
			}
			if bound == nil {
				b, err := binder.Bind(o.Expr)
				if err != nil {
					return nil, err
				}
				bound = b
			}
			keys[i] = exec.SortKey{Expr: bound, Desc: o.Desc}
		}
		root = &exec.Sort{Input: root, Keys: keys}
	}
	if sel.Limit >= 0 {
		root = &exec.Limit{Input: root, N: sel.Limit}
	}
	return &exec.Project{Input: root, Exprs: projExprs, Names: projNames}, nil
}

// splitConjuncts flattens a predicate into its AND-ed conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if b, ok := e.(*sql.BinaryExpr); ok && b.Op == "AND" {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// orderByRank sorts predicates by the Hellerstein rank
// (selectivity-1)/cost ascending: the most profitable predicate (cheap
// and selective) runs first, expensive UDF predicates run last.
func orderByRank(preds []expr.Bound) []expr.Bound {
	out := append([]expr.Bound(nil), preds...)
	sort.SliceStable(out, func(i, j int) bool {
		return rank(out[i]) < rank(out[j])
	})
	return out
}

func rank(p expr.Bound) float64 {
	cost := p.Cost()
	if cost <= 0 {
		cost = 0.01
	}
	return (selectivity(p) - 1) / cost
}

// selectivity estimates the fraction of rows a predicate keeps. These
// are textbook defaults; the shape (equality is selective, OR is not)
// is what matters for ordering.
func selectivity(p expr.Bound) float64 {
	switch n := p.(type) {
	case *expr.Cmp:
		if n.Op == "=" {
			return 0.1
		}
		return 0.3
	case *expr.NullTest:
		return 0.1
	case *expr.Logic:
		if n.Op == "OR" {
			return 0.7
		}
		return selectivity(n.L) * selectivity(n.R)
	case *expr.Not:
		return 1 - selectivity(n.X)
	default:
		return 0.5
	}
}

// containsAggregate reports whether an unbound expression contains an
// aggregate function call.
func containsAggregate(e sql.Expr) bool {
	switch n := e.(type) {
	case *sql.FuncCall:
		if expr.IsAggregateName(n.Name) {
			return true
		}
		for _, a := range n.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *sql.BinaryExpr:
		return containsAggregate(n.L) || containsAggregate(n.R)
	case *sql.UnaryExpr:
		return containsAggregate(n.X)
	case *sql.IsNull:
		return containsAggregate(n.X)
	}
	return false
}
