package fleet

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"predator/internal/core"
	"predator/internal/govern"
	"predator/internal/isolate"
	"predator/internal/jaguar"
	"predator/internal/obs"
	"predator/internal/types"
)

var testNatives = isolate.NativeTable{
	"double": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		return types.NewInt(args[0].Int * 2), nil
	},
	"slowdouble": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		time.Sleep(2 * time.Millisecond)
		return types.NewInt(args[0].Int * 2), nil
	},
	"boom": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		os.Exit(3)
		return types.Value{}, nil
	},
	// burncpu busy-spins for args[0] milliseconds, so the executor's
	// rusage CPU tracks wall time closely — the load for the child-CPU
	// attribution test.
	"burncpu": func(ctx *core.Ctx, args []types.Value) (types.Value, error) {
		deadline := time.Now().Add(time.Duration(args[0].Int) * time.Millisecond)
		var sink uint64 = 1
		for time.Now().Before(deadline) {
			sink = sink*2654435761 + 1
		}
		return types.NewInt(int64(sink & 1)), nil
	},
}

func TestMain(m *testing.M) {
	isolate.MaybeRunExecutor(testNatives)
	os.Exit(m.Run())
}

// vmUDF compiles a distinct Jaguar UDF that adds `add` and returns it
// fleet-attached.
func vmUDF(t *testing.T, f *Fleet, add int) core.UDF {
	t.Helper()
	name := fmt.Sprintf("add%d", add)
	src := fmt.Sprintf(`func f(a int) int { return a + %d; }`, add)
	classBytes, err := jaguar.CompileToBytes(src, fmt.Sprintf("Add%d", add))
	if err != nil {
		t.Fatal(err)
	}
	u := isolate.NewVMIsolated(name, []types.Kind{types.KindInt}, types.KindInt,
		isolate.VMSetup{ClassBytes: classBytes, Method: "f"})
	return isolate.WithFleet(u, f)
}

func newFleetT(t *testing.T, opts Options) *Fleet {
	t.Helper()
	f := New(opts)
	t.Cleanup(func() { f.Close() })
	return f
}

// TestFleetProcessCapAcceptance is the ISSUE acceptance criterion: 32
// concurrent queries over 8 distinct VM UDFs on a FleetSize=4 fleet
// never use more than 4 resident executor processes.
func TestFleetProcessCapAcceptance(t *testing.T) {
	startsBefore := isolate.ReadStats().Starts
	f := newFleetT(t, Options{Size: 4})
	udfs := make([]core.UDF, 8)
	for i := range udfs {
		udfs[i] = vmUDF(t, f, i+1)
	}
	var wg sync.WaitGroup
	var failures atomic.Int64
	for q := 0; q < 32; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			u := udfs[q%len(udfs)]
			add := int64(q%len(udfs) + 1)
			for r := 0; r < 30; r++ {
				out, err := u.Invoke(nil, []types.Value{types.NewInt(int64(r))})
				if err != nil {
					t.Errorf("query %d: %v", q, err)
					failures.Add(1)
					return
				}
				if out.Int != int64(r)+add {
					t.Errorf("query %d round %d: got %d, want %d", q, r, out.Int, int64(r)+add)
					failures.Add(1)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	if failures.Load() > 0 {
		t.Fatalf("%d queries failed", failures.Load())
	}
	if alive := f.AliveExecutors(); alive > 4 {
		t.Errorf("alive executors = %d, want <= 4", alive)
	}
	pids := map[int]bool{}
	for _, info := range f.Snapshot() {
		if info.State == "up" {
			pids[info.PID] = true
		}
	}
	if len(pids) > 4 {
		t.Errorf("resident executor processes = %d, want <= 4", len(pids))
	}
	// No query fell back to a dedicated executor: every process start
	// was one of the fleet's (the 4 pre-forks, plus any chaos restarts —
	// none expected here).
	if started := isolate.ReadStats().Starts - startsBefore; started > 4 {
		t.Errorf("executor starts = %d, want <= 4 (dedicated fallback leaked?)", started)
	}
	if got := f.InFlight(); got != 0 {
		t.Errorf("in-flight after drain = %d (govern leak)", got)
	}
}

// TestFleetWarmReuse checks warm recycling: the second query for the
// same (tenant, UDF) skips setup via an idle parked stream or a
// child-side warm binding.
func TestFleetWarmReuse(t *testing.T) {
	f := newFleetT(t, Options{Size: 2})
	u := vmUDF(t, f, 7)
	before := cReuses.Value() + cWarmHits.Value()
	for i := 0; i < 10; i++ {
		out, err := u.Invoke(nil, []types.Value{types.NewInt(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		if out.Int != int64(i)+7 {
			t.Fatalf("got %d", out.Int)
		}
	}
	if after := cReuses.Value() + cWarmHits.Value(); after-before < 9 {
		t.Errorf("warm reuse count = %d, want >= 9", after-before)
	}
}

// TestFleetBatchCrossing drives the batched path through the fleet.
func TestFleetBatchCrossing(t *testing.T) {
	f := newFleetT(t, Options{Size: 2})
	u := isolate.WithFleet(
		isolate.NewNativeIsolated("double", []types.Kind{types.KindInt}, types.KindInt), f)
	bu := u.(core.BatchUDF)
	args := make([]types.Value, 16)
	for i := range args {
		args[i] = types.NewInt(int64(i))
	}
	out := make([]core.BatchResult, 16)
	if err := bu.InvokeBatch(nil, 1, args, out); err != nil {
		t.Fatal(err)
	}
	for i, r := range out {
		if r.Err != nil || r.Value.Int != int64(i)*2 {
			t.Errorf("row %d: %v, %v", i, r.Value, r.Err)
		}
	}
}

// TestFleetChaosCrashIsolation is the satellite chaos test: an executor
// SIGKILLed mid-interleaved-batch fails only the streams resident on
// that process — retryably — while sibling queries on other executors
// finish untouched and no govern admission is leaked.
func TestFleetChaosCrashIsolation(t *testing.T) {
	f := newFleetT(t, Options{Size: 3, MaxStreamsPerExec: 4})
	// Disable the UDF breaker: one kill strands many streams of this one
	// UDF, and quarantine demotion (tested separately) would pull the
	// survivors off the fleet mid-test.
	sup := isolate.DefaultSupervision
	sup.BreakerFailures = -1
	u := isolate.WithFleet(isolate.WithSupervision(
		isolate.NewNativeIsolated("slowdouble", []types.Kind{types.KindInt}, types.KindInt), sup), f)
	bu := u.(core.BatchUDF)

	const queries = 12
	var wg sync.WaitGroup
	var ok, lost, other atomic.Int64
	stopped := make(chan struct{})
	wg.Add(queries)
	for q := 0; q < queries; q++ {
		go func(q int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stopped:
					return
				default:
				}
				args := make([]types.Value, 8)
				for i := range args {
					args[i] = types.NewInt(int64(i))
				}
				out := make([]core.BatchResult, 8)
				err := bu.InvokeBatch(nil, 1, args, out)
				switch {
				case err == nil:
					ok.Add(1)
				case core.FaultClassOf(err) == core.FaultExecutorLost:
					if !core.Retryable(err) {
						t.Errorf("executor-lost not retryable: %v", err)
					}
					lost.Add(1)
				case core.FaultClassOf(err) == core.FaultOverload:
					// Admission shed during the kill window: retryable, fine.
				default:
					other.Add(1)
					t.Errorf("query %d: unexpected fault %v", q, err)
				}
			}
		}(q)
	}

	// Let traffic build, then SIGKILL one fleet process mid-flight.
	time.Sleep(150 * time.Millisecond)
	var victim int
	for _, info := range f.Snapshot() {
		if info.State == "up" && info.Resident > 0 {
			victim = info.PID
			break
		}
	}
	if victim == 0 {
		t.Fatal("no busy executor to kill")
	}
	if err := syscall.Kill(victim, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	time.Sleep(300 * time.Millisecond)
	close(stopped)
	wg.Wait()

	if ok.Load() == 0 {
		t.Error("no query succeeded")
	}
	if other.Load() > 0 {
		t.Errorf("%d queries failed with non-retryable faults", other.Load())
	}
	// The kill must strand only that process's streams: with 12 queries
	// over 3 executors, far fewer than all in-flight batches may fail.
	if lost.Load() > queries {
		t.Errorf("lost = %d, more in-flight work than one process could hold", lost.Load())
	}
	// Zero govern reservations leak: all admissions returned.
	if got := f.InFlight(); got != 0 {
		t.Fatalf("in-flight after drain = %d (govern admission leak)", got)
	}
	// The fleet heals: the dead slot is replaced and serves traffic.
	deadline := time.Now().Add(10 * time.Second)
	for f.AliveExecutors() < 3 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if alive := f.AliveExecutors(); alive < 3 {
		t.Fatalf("fleet did not heal: %d/3 executors alive", alive)
	}
	if _, err := u.Invoke(nil, []types.Value{types.NewInt(21)}); err != nil {
		t.Fatalf("post-heal invoke: %v", err)
	}
	restarts := 0
	for _, info := range f.Snapshot() {
		restarts += info.Restarts
	}
	if restarts == 0 {
		t.Error("snapshot shows no restarts after a kill")
	}
}

// TestFleetQuarantineDemotion: a UDF that keeps crashing fleet
// processes trips its breaker and is demoted to a dedicated executor,
// leaving the shared fleet alone.
func TestFleetQuarantineDemotion(t *testing.T) {
	sup := isolate.DefaultSupervision
	sup.BreakerFailures = 2
	sup.BreakerCooldown = time.Hour // keep it open for the test
	f := newFleetT(t, Options{Size: 1, Supervision: sup})
	u := isolate.WithFleet(isolate.WithSupervision(
		isolate.NewNativeIsolated("boom", []types.Kind{types.KindInt}, types.KindInt), sup), f)
	defer u.Close()
	st, ok := u.(interface {
		BreakerStatus() (govern.BreakerStatus, bool)
	})
	if !ok {
		t.Fatal("fleet UDF does not expose breaker status")
	}
	quarantined := false
	for i := 0; i < 100 && !quarantined; i++ {
		_, err := u.Invoke(nil, []types.Value{types.NewInt(1)})
		if err == nil {
			t.Fatal("boom succeeded")
		}
		_, quarantined = st.BreakerStatus()
		time.Sleep(20 * time.Millisecond)
	}
	status, _ := st.BreakerStatus()
	if !quarantined {
		t.Fatalf("crash-looping UDF never quarantined off the fleet (breaker %+v)", status)
	}
	if status.Opens == 0 {
		t.Errorf("quarantined with zero breaker opens: %+v", status)
	}
}

// TestFleetTenantFairnessAndCaps: per-tenant in-flight caps shed the
// hog retryably while the quiet tenant keeps running.
func TestFleetTenantCap(t *testing.T) {
	f := newFleetT(t, Options{Size: 1, MaxStreamsPerExec: 4, TenantStreams: 2, AdmissionWait: time.Millisecond})
	u := isolate.WithFleet(
		isolate.NewNativeIsolated("slowdouble", []types.Kind{types.KindInt}, types.KindInt), f)
	gov := govern.NewGovernor(govern.Quota{})
	hog := gov.Tenant("hog")
	var wg sync.WaitGroup
	var sheds atomic.Int64
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 20; r++ {
				_, err := u.Invoke(&core.Ctx{Tenant: hog}, []types.Value{types.NewInt(1)})
				if core.FaultClassOf(err) == core.FaultOverload {
					sheds.Add(1)
				} else if err != nil {
					t.Errorf("hog: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	if sheds.Load() == 0 {
		t.Error("8-way tenant traffic over a 2-stream cap never shed")
	}
	if got := f.InFlight(); got != 0 {
		t.Errorf("in-flight after drain = %d", got)
	}
}

// TestFleetChildCPUAttribution is the flight-recorder acceptance test:
// two tenants interleave crossings over a shared fleet — one spinning
// CPU in the child, one nearly idle — and the per-tenant child-CPU
// ledgers must separate cleanly. The mux child serves invocations
// serially, so each batch's rusage delta is that batch's own work; the
// parent clamps every report to the crossing's wall time, so the
// burner's ledger lands close to its requested spin total while the
// quiet tenant's stays near zero (no cross-tenant misattribution).
func TestFleetChildCPUAttribution(t *testing.T) {
	f := newFleetT(t, Options{Size: 2})
	burn := isolate.WithFleet(
		isolate.NewNativeIsolated("burncpu", []types.Kind{types.KindInt}, types.KindInt), f)
	cheap := isolate.WithFleet(
		isolate.NewNativeIsolated("double", []types.Kind{types.KindInt}, types.KindInt), f)
	gov := govern.NewGovernor(govern.Quota{})
	burner, quiet := gov.Tenant("cpuburn"), gov.Tenant("cpuquiet")

	const (
		spinMS       = 2
		rowsPerBatch = 4
		batches      = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		bu := burn.(core.BatchUDF)
		args := make([]types.Value, rowsPerBatch)
		for i := range args {
			args[i] = types.NewInt(spinMS)
		}
		for b := 0; b < batches; b++ {
			out := make([]core.BatchResult, rowsPerBatch)
			if err := bu.InvokeBatch(&core.Ctx{Tenant: burner}, 1, args, out); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		bu := cheap.(core.BatchUDF)
		args := make([]types.Value, 16)
		for i := range args {
			args[i] = types.NewInt(int64(i))
		}
		for b := 0; b < 40; b++ {
			out := make([]core.BatchResult, 16)
			if err := bu.InvokeBatch(&core.Ctx{Tenant: quiet}, 1, args, out); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	expected := time.Duration(spinMS*rowsPerBatch*batches) * time.Millisecond
	got := burner.ChildCPUUsed()
	// The busy spin makes child CPU ≈ wall: on an unloaded machine the
	// ledger lands within 10% of the spin total. CI boxes get preempted,
	// so enforce a looser floor; the clamp makes over-attribution
	// impossible beyond rusage jitter.
	if got < expected/2 {
		t.Errorf("burner child CPU = %v, want >= %v (half of %v spin total)", got, expected/2, expected)
	}
	if got > expected*3/2 {
		t.Errorf("burner child CPU = %v exceeds 1.5x the %v spin total", got, expected)
	}
	// No cross-tenant misattribution: the quiet tenant ran ~zero-CPU
	// crossings interleaved with the burner on the same processes.
	if q := quiet.ChildCPUUsed(); q > got/10 {
		t.Errorf("quiet tenant child CPU = %v, more than 10%% of the burner's %v", q, got)
	}
	// Ledger and exported counter agree exactly.
	metric := time.Duration(obs.Default.Counter("predator_tenant_child_cpu_ns_total", "tenant", "cpuburn").Value())
	if metric != got {
		t.Errorf("predator_tenant_child_cpu_ns_total = %v, ledger = %v", metric, got)
	}
	// Window accounting never double-counts: the wall occupancy charged
	// to the window covers the whole crossing, so it is at least the
	// child-CPU share.
	if w := burner.CPUUsed(); w < got {
		t.Errorf("window CPU %v < child CPU %v (double-count guard broken)", w, got)
	}

	// Optional CI artifact: a flight-recorder dump of this process after
	// the chaos run, for the workflow's artifact upload.
	if path := os.Getenv("PREDATOR_FLIGHT_DUMP"); path != "" {
		fjson, err := os.Create(path)
		if err != nil {
			t.Fatalf("flight dump: %v", err)
		}
		if err := obs.WriteFlightDump(fjson); err != nil {
			t.Fatalf("flight dump: %v", err)
		}
		if err := fjson.Close(); err != nil {
			t.Fatalf("flight dump: %v", err)
		}
	}
}

// TestFleetSnapshotShape sanity-checks SHOW EXECUTORS' data source.
func TestFleetSnapshotShape(t *testing.T) {
	f := newFleetT(t, Options{Size: 2})
	u := isolate.WithFleet(
		isolate.NewNativeIsolated("double", []types.Kind{types.KindInt}, types.KindInt), f)
	if _, err := u.Invoke(nil, []types.Value{types.NewInt(3)}); err != nil {
		t.Fatal(err)
	}
	infos := f.Snapshot()
	if len(infos) != 2 {
		t.Fatalf("snapshot has %d slots, want 2", len(infos))
	}
	up, warm, resident := 0, 0, 0
	for _, info := range infos {
		if info.State == "up" {
			up++
			if info.PID == 0 {
				t.Error("up slot with zero PID")
			}
		}
		warm += info.Warm
		resident += info.Resident
	}
	if up != 2 {
		t.Errorf("up slots = %d, want 2", up)
	}
	if warm == 0 {
		t.Error("no warm cache entries after an invoke")
	}
	if resident == 0 {
		t.Error("no resident streams after an invoke (idle lease missing)")
	}
}
