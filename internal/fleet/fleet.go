// Package fleet runs UDF crossings on a fixed-size fleet of shared,
// stream-multiplexed executor processes. Where the paper's isolated
// designs pay one executor process per UDF per query, the fleet keeps
// process count O(cores): every query opens a lightweight stream on one
// of Size pre-forked executors, streams from many sessions interleave
// on each pipe, and a child-side warm cache keyed by (tenant, UDF,
// setup fingerprint) lets repeat queries skip VM setup entirely.
//
// Admission is governed by a weighted fair queue (internal/govern):
// tenants sharing the fleet are scheduled by virtual time with a global
// stream cap and optional per-tenant in-flight caps, and over-cap work
// is shed retryably instead of queued unboundedly. Executor death is
// survived: resident streams fail with the retryable FaultExecutorLost
// class, a watcher replaces the process, and sibling streams on other
// executors never notice.
package fleet

import (
	"fmt"
	"sync"
	"time"

	"predator/internal/core"
	"predator/internal/govern"
	"predator/internal/isolate"
	"predator/internal/obs"
	"predator/internal/types"
)

// Options configures a fleet. The zero value of every field has a
// usable default.
type Options struct {
	// Size is the number of executor processes (default 4). This is the
	// fleet's whole budget: no workload can make it fork more.
	Size int
	// Supervision is the per-process supervision policy.
	Supervision isolate.Supervision
	// MaxStreamsPerExec caps resident streams per executor (default 64).
	// Size*MaxStreamsPerExec is the global stream cap fed to admission.
	MaxStreamsPerExec int
	// TenantStreams caps one tenant's in-flight crossings (default 0 =
	// the global cap; fairness between tenants still applies).
	TenantStreams int
	// AdmissionWait bounds how long an over-cap crossing waits before
	// being shed retryably (default 1s).
	AdmissionWait time.Duration
	// PingInterval is the health-check cadence for idle executors and
	// the restart cadence for dead ones (default 500ms).
	PingInterval time.Duration
}

func (o Options) withDefaults() Options {
	if o.Size <= 0 {
		o.Size = 4
	}
	if o.MaxStreamsPerExec <= 0 {
		o.MaxStreamsPerExec = 64
	}
	if o.AdmissionWait <= 0 {
		o.AdmissionWait = time.Second
	}
	if o.PingInterval <= 0 {
		o.PingInterval = 500 * time.Millisecond
	}
	return o
}

// restartBackoff spaces restart attempts for a crash-looping slot.
const restartBackoff = 100 * time.Millisecond

// Fleet metrics (predator_fleet_*).
var (
	gExecutors   = obs.Default.Gauge("predator_fleet_executors")
	gResident    = obs.Default.Gauge("predator_fleet_resident_streams")
	cOpens       = obs.Default.Counter("predator_fleet_stream_opens_total")
	cReuses      = obs.Default.Counter("predator_fleet_stream_reuses_total")
	cWarmHits    = obs.Default.Counter("predator_fleet_warm_hits_total")
	cRestarts    = obs.Default.Counter("predator_fleet_restarts_total")
	cSheds       = obs.Default.Counter("predator_fleet_sheds_total")
	cInvocations = obs.Default.Counter("predator_fleet_invocations_total")
	cLost        = obs.Default.Counter("predator_fleet_lost_streams_total")
)

// worker is one fleet slot: an executor process that is replaced in
// place when it dies.
type worker struct {
	slot int

	// startMu serializes process starts for this slot.
	startMu sync.Mutex

	// The remaining fields are guarded by the fleet mutex.
	mx        *isolate.MuxExecutor
	resident  int // streams open on this worker (busy + idle)
	restarts  int // deaths observed (the watcher replaces the process)
	nextRetry time.Time
}

// lease is one checked-out stream. Between uses it parks in the fleet's
// idle cache so a repeat crossing for the same (tenant, UDF, token)
// pays zero setup and zero open round trips.
type lease struct {
	w      *worker
	mx     *isolate.MuxExecutor
	s      *isolate.MuxStream
	key    string
	tenant string
	seq    uint64 // idle-LRU stamp
}

// Fleet implements isolate.Multiplexer over Size executor processes.
type Fleet struct {
	opts Options
	fq   *govern.FairQueue

	mu      sync.Mutex
	workers []*worker
	idle    map[string][]*lease
	idleSeq uint64
	closed  bool

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New pre-forks a fleet. Slots whose executor fails to start are left
// empty and retried by the supervisor; New itself only fails on a
// closed-world misconfiguration (never on a crashing child).
func New(opts Options) *Fleet {
	opts = opts.withDefaults()
	globalCap := opts.Size * opts.MaxStreamsPerExec
	tenantCap := opts.TenantStreams
	if tenantCap <= 0 || tenantCap > globalCap {
		tenantCap = globalCap
	}
	f := &Fleet{
		opts: opts,
		fq:   govern.NewFairQueue("fleet", globalCap, tenantCap),
		idle: make(map[string][]*lease),
		stop: make(chan struct{}),
	}
	for i := 0; i < opts.Size; i++ {
		w := &worker{slot: i}
		f.workers = append(f.workers, w)
		if _, err := f.startWorker(w); err != nil {
			obs.Logger().Warn("fleet executor failed to start; will retry",
				"component", "fleet", "slot", i, "error", err)
		}
	}
	f.wg.Add(1)
	go f.supervise()
	return f
}

// SetTenantWeight adjusts a tenant's fair-scheduling weight (default 1).
func (f *Fleet) SetTenantWeight(tenant string, w float64) {
	f.fq.SetWeight(tenant, w)
}

// startWorker launches (or relaunches) the slot's executor process and
// arms a watcher for its death.
func (f *Fleet) startWorker(w *worker) (*isolate.MuxExecutor, error) {
	w.startMu.Lock()
	defer w.startMu.Unlock()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil, fmt.Errorf("fleet: closed")
	}
	if w.mx != nil && w.mx.Alive() {
		mx := w.mx
		f.mu.Unlock()
		return mx, nil
	}
	f.mu.Unlock()
	mx, err := isolate.StartMux(f.opts.Supervision)
	if err != nil {
		f.mu.Lock()
		w.nextRetry = time.Now().Add(restartBackoff)
		f.mu.Unlock()
		return nil, err
	}
	f.mu.Lock()
	w.mx = mx
	f.mu.Unlock()
	f.wg.Add(1)
	go f.watch(w, mx)
	return mx, nil
}

// watch waits for one executor process to die and cleans up after it:
// idle leases resident on it are dropped, the slot is marked for
// restart, and the death is counted. In-flight streams need no help —
// they are already failing with FaultExecutorLost.
func (f *Fleet) watch(w *worker, mx *isolate.MuxExecutor) {
	defer f.wg.Done()
	select {
	case <-mx.Done():
	case <-f.stop:
		return
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	for key, list := range f.idle {
		kept := list[:0]
		for _, l := range list {
			if l.mx == mx {
				w.resident--
				continue
			}
			kept = append(kept, l)
		}
		if len(kept) == 0 {
			delete(f.idle, key)
		} else {
			f.idle[key] = kept
		}
	}
	if w.mx == mx {
		w.mx = nil
		w.restarts++
		w.nextRetry = time.Now().Add(restartBackoff)
	}
	f.mu.Unlock()
	cRestarts.Inc()
	obs.Logger().Warn("fleet executor died",
		"component", "fleet", "slot", w.slot, "pid", mx.PID(), "error", mx.DeadErr())
	mx.Close()
}

// supervise periodically restarts dead slots, health-pings fully idle
// executors, and refreshes the fleet gauges.
func (f *Fleet) supervise() {
	defer f.wg.Done()
	t := time.NewTicker(f.opts.PingInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
		}
		f.mu.Lock()
		alive, resident := 0, 0
		var toStart []*worker
		var toPing []*isolate.MuxExecutor
		busy := f.busyPerWorkerLocked()
		for _, w := range f.workers {
			if w.mx != nil && w.mx.Alive() {
				alive++
				resident += w.resident
				if busy[w] == 0 {
					toPing = append(toPing, w.mx)
				}
			} else if w.mx == nil && time.Now().After(w.nextRetry) {
				toStart = append(toStart, w)
			}
		}
		closed := f.closed
		f.mu.Unlock()
		gExecutors.Set(int64(alive))
		gResident.Set(int64(resident))
		if closed {
			return
		}
		for _, mx := range toPing {
			// A failed ping destroys the executor; the watcher cleans up.
			_ = mx.Ping(0)
		}
		for _, w := range toStart {
			if _, err := f.startWorker(w); err != nil {
				obs.Logger().Warn("fleet executor restart failed; will retry",
					"component", "fleet", "slot", w.slot, "error", err)
			}
		}
	}
}

// busyPerWorkerLocked counts non-idle streams per worker (resident
// minus parked leases); only fully idle executors are pinged, so a
// health probe never races a long-running invocation's deadline.
func (f *Fleet) busyPerWorkerLocked() map[*worker]int {
	busy := make(map[*worker]int, len(f.workers))
	for _, w := range f.workers {
		busy[w] = w.resident
	}
	for _, list := range f.idle {
		for _, l := range list {
			busy[l.w]--
		}
	}
	return busy
}

// leaseKey scopes warm reuse: same tenant, same UDF, same setup bytes.
func leaseKey(tenant string, spec isolate.MuxSpec) string {
	return tenant + "\x00" + spec.UDF + "\x00" + spec.Token
}

// tenantOf resolves the crossing's tenant for admission and keying.
func tenantOf(ctx *core.Ctx) string {
	if ctx != nil && ctx.Tenant != nil {
		return ctx.Tenant.Name()
	}
	return "default"
}

// acquire admits the crossing and checks out a stream for it.
func (f *Fleet) acquire(ctx *core.Ctx, spec isolate.MuxSpec) (*lease, error) {
	tenant := tenantOf(ctx)
	if err := f.fq.Acquire(tenant, f.opts.AdmissionWait); err != nil {
		cSheds.Inc()
		return nil, core.NewFault(core.FaultOverload, "invoke", err)
	}
	l, err := f.lease(tenant, spec)
	if err != nil {
		f.fq.Release(tenant)
		return nil, err
	}
	l.tenant = tenant
	return l, nil
}

// lease finds a stream: parked idle lease first (zero crossings), then
// a stream opened on the best worker — warm ones preferred, then least
// loaded, evicting the least recently used idle lease when every
// executor is at its stream cap. Admission caps total in-flight work at
// the fleet's stream capacity, so an admitted crossing always finds or
// frees a slot unless executors are mid-restart.
func (f *Fleet) lease(tenant string, spec isolate.MuxSpec) (*lease, error) {
	key := leaseKey(tenant, spec)
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		f.mu.Lock()
		if f.closed {
			f.mu.Unlock()
			return nil, core.Faultf(core.FaultOverload, "invoke", "fleet: closed")
		}
		if l := f.popIdleLocked(key); l != nil {
			f.mu.Unlock()
			cReuses.Inc()
			cWarmHits.Inc()
			return l, nil
		}
		w := f.pickWorkerLocked(tenant, spec)
		if w == nil {
			if !f.evictIdleLocked() {
				// Every slot is busy or restarting; brief backoff, retry.
				f.mu.Unlock()
				time.Sleep(restartBackoff / 4)
				lastErr = core.Faultf(core.FaultOverload, "invoke", "fleet has no stream capacity")
				continue
			}
			f.mu.Unlock()
			continue
		}
		w.resident++
		mx := w.mx
		f.mu.Unlock()
		var err error
		if mx == nil {
			mx, err = f.startWorker(w)
			if err != nil {
				f.unreserve(w)
				lastErr = err
				continue
			}
		}
		s, warm, err := mx.OpenStream(tenant, spec.UDF, spec.Token, spec.Setup)
		if err != nil {
			f.unreserve(w)
			if core.FaultClassOf(err) == core.FaultUDF {
				// Deterministic setup rejection (bad class, unknown
				// native): retrying on another process cannot help.
				return nil, err
			}
			lastErr = err
			continue
		}
		cOpens.Inc()
		if warm {
			cWarmHits.Inc()
		}
		return &lease{w: w, mx: mx, s: s, key: key}, nil
	}
	if lastErr == nil {
		lastErr = core.Faultf(core.FaultExecutorLost, "invoke", "fleet: no executor available")
	}
	return nil, lastErr
}

// popIdleLocked reuses a parked lease for the key, skipping (and
// accounting for) leases stranded on executors that died since parking.
func (f *Fleet) popIdleLocked(key string) *lease {
	list := f.idle[key]
	for len(list) > 0 {
		l := list[len(list)-1]
		list = list[:len(list)-1]
		if len(list) == 0 {
			delete(f.idle, key)
		} else {
			f.idle[key] = list
		}
		if l.mx.Alive() && l.w.mx == l.mx {
			return l
		}
		l.w.resident--
	}
	return nil
}

// pickWorkerLocked chooses the executor for a new stream: one already
// warm for the key and under its cap, else the least-resident live (or
// restartable) slot under its cap.
func (f *Fleet) pickWorkerLocked(tenant string, spec isolate.MuxSpec) *worker {
	var best *worker
	now := time.Now()
	for _, w := range f.workers {
		if w.resident >= f.opts.MaxStreamsPerExec {
			continue
		}
		up := w.mx != nil && w.mx.Alive()
		if !up && (w.mx != nil || now.Before(w.nextRetry)) {
			continue
		}
		if up && w.mx.HasWarm(tenant, spec.UDF, spec.Token) {
			return w
		}
		if best == nil || w.resident < best.resident {
			best = w
		}
	}
	return best
}

// evictIdleLocked drops the least recently used parked lease to free a
// stream slot, telling its executor to close the stream (the warm
// binding stays cached child-side).
func (f *Fleet) evictIdleLocked() bool {
	var victim *lease
	var victimKey string
	var victimIdx int
	for key, list := range f.idle {
		for i, l := range list {
			if victim == nil || l.seq < victim.seq {
				victim, victimKey, victimIdx = l, key, i
			}
		}
	}
	if victim == nil {
		return false
	}
	list := f.idle[victimKey]
	f.idle[victimKey] = append(list[:victimIdx], list[victimIdx+1:]...)
	if len(f.idle[victimKey]) == 0 {
		delete(f.idle, victimKey)
	}
	victim.w.resident--
	victim.mx.CloseStream(victim.s)
	return true
}

// unreserve rolls back a reserved-but-unopened stream slot.
func (f *Fleet) unreserve(w *worker) {
	f.mu.Lock()
	w.resident--
	f.mu.Unlock()
}

// releaseLease parks a healthy stream for reuse or drops a dead one.
func (f *Fleet) releaseLease(l *lease, invokeErr error) {
	fatal := invokeErr != nil && core.FaultClassOf(invokeErr) != core.FaultUDF
	f.mu.Lock()
	if fatal || f.closed || !l.mx.Alive() || l.w.mx != l.mx {
		l.w.resident--
		f.mu.Unlock()
		if fatal && core.FaultClassOf(invokeErr) == core.FaultExecutorLost {
			cLost.Inc()
		}
		return
	}
	l.seq = f.idleSeq
	f.idleSeq++
	f.idle[l.key] = append(f.idle[l.key], l)
	f.mu.Unlock()
}

// MuxInvoke implements isolate.Multiplexer: one scalar crossing on a
// fleet stream.
func (f *Fleet) MuxInvoke(ctx *core.Ctx, spec isolate.MuxSpec, args []types.Value) (types.Value, error) {
	l, err := f.acquire(ctx, spec)
	if err != nil {
		return types.Value{}, err
	}
	cInvocations.Inc()
	out, err := l.s.Invoke(ctx, args)
	f.releaseLease(l, err)
	f.fq.Release(l.tenant)
	return out, err
}

// MuxInvokeBatch implements isolate.Multiplexer: one batched crossing
// on a fleet stream.
func (f *Fleet) MuxInvokeBatch(ctx *core.Ctx, spec isolate.MuxSpec, arity int, args []types.Value, out []core.BatchResult) error {
	l, err := f.acquire(ctx, spec)
	if err != nil {
		return err
	}
	cInvocations.Inc()
	err = l.s.InvokeBatch(ctx, arity, args, out)
	f.releaseLease(l, err)
	f.fq.Release(l.tenant)
	return err
}

// ExecutorInfo is one slot's state for SHOW EXECUTORS.
type ExecutorInfo struct {
	Slot     int
	PID      int
	State    string // "up" or "down"
	Resident int    // open streams (busy + idle)
	Idle     int    // parked reusable streams
	Warm     int    // warm (tenant, UDF, token) cache entries
	Restarts int
	LastPing time.Duration // age of the last successful health probe (-1 = never)
}

// Snapshot reports every slot, up or down.
func (f *Fleet) Snapshot() []ExecutorInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ExecutorInfo, 0, len(f.workers))
	busy := f.busyPerWorkerLocked()
	for _, w := range f.workers {
		info := ExecutorInfo{Slot: w.slot, State: "down", Restarts: w.restarts, LastPing: -1}
		if w.mx != nil && w.mx.Alive() {
			info.State = "up"
			info.PID = w.mx.PID()
			info.Resident = w.resident
			info.Idle = w.resident - busy[w]
			info.Warm = w.mx.WarmCount()
			if age := w.mx.LastPingAge(); age < time.Duration(1<<62-1) {
				info.LastPing = age
			}
		}
		out = append(out, info)
	}
	return out
}

// Size reports the configured fleet size.
func (f *Fleet) Size() int { return f.opts.Size }

// AliveExecutors reports how many slots currently have a live process.
func (f *Fleet) AliveExecutors() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, w := range f.workers {
		if w.mx != nil && w.mx.Alive() {
			n++
		}
	}
	return n
}

// InFlight reports admitted crossings (diagnostics; the govern queue is
// the source of truth).
func (f *Fleet) InFlight() int { return f.fq.InFlight() }

// Close shuts every executor down and stops the supervisor. In-flight
// crossings fail with FaultExecutorLost; callers drain queries first.
func (f *Fleet) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.idle = make(map[string][]*lease)
	var all []*isolate.MuxExecutor
	for _, w := range f.workers {
		if w.mx != nil {
			all = append(all, w.mx)
			w.mx = nil
		}
	}
	f.mu.Unlock()
	f.stopOnce.Do(func() { close(f.stop) })
	for _, mx := range all {
		mx.Close()
	}
	f.wg.Wait()
	gExecutors.Set(0)
	gResident.Set(0)
	return nil
}

var _ isolate.Multiplexer = (*Fleet)(nil)
