// Package crashtest proves crash safety instead of asserting it: a
// child predator engine is killed (or kills itself) at fault-injected
// points inside the storage write path, the database is reopened, and
// every acknowledged statement must have survived with every page
// checksum intact.
package crashtest

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"predator/internal/engine"
	"predator/internal/storage"
)

const (
	childDirEnv  = "PREDATOR_CRASHTEST_DIR"
	childRowsEnv = "PREDATOR_CRASHTEST_ROWS"
	// fullMatrixEnv widens the scenario matrix (CI sets it); the default
	// keeps `go test ./...` fast.
	fullMatrixEnv = "PREDATOR_CRASHTEST_FULL"
)

// TestCrashChild is the workload process. It only runs when re-executed
// by TestCrashRecovery with the environment set; in a normal test run
// it is skipped. It acknowledges each insert by appending the row id to
// acked.txt (O_SYNC, so the ack itself is durable before the next
// statement), which is the ground truth the parent checks recovery
// against.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(childDirEnv)
	if dir == "" {
		t.Skip("crash-test child (only runs re-executed by TestCrashRecovery)")
	}
	rows, _ := strconv.Atoi(os.Getenv(childRowsEnv))
	if rows <= 0 {
		rows = 120
	}
	eng, err := engine.Open(filepath.Join(dir, "crash.db"), engine.Options{
		Durability:      "commit",
		BufferPoolPages: 8,         // small pool: force evictions mid-run
		CheckpointBytes: 128 << 10, // frequent auto-checkpoints
	})
	if err != nil {
		t.Fatalf("child: open: %v", err)
	}
	acked, err := os.OpenFile(filepath.Join(dir, "acked.txt"),
		os.O_WRONLY|os.O_CREATE|os.O_APPEND|os.O_SYNC, 0o644)
	if err != nil {
		t.Fatalf("child: open acked: %v", err)
	}
	if _, err := eng.Exec("CREATE TABLE crash_t (id INT, payload STRING)"); err != nil {
		t.Fatalf("child: create: %v", err)
	}
	fmt.Fprintln(acked, "table")
	for i := 0; i < rows; i++ {
		size := 50 + (i%7)*400
		if i%60 == 59 {
			size = 20000 // overflow chain: multi-page record
		}
		payload := strings.Repeat(string(rune('a'+i%26)), size)
		if _, err := eng.Exec(fmt.Sprintf("INSERT INTO crash_t VALUES (%d, '%s')", i, payload)); err != nil {
			t.Fatalf("child: insert %d: %v", i, err)
		}
		fmt.Fprintln(acked, i)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("child: close: %v", err)
	}
	fmt.Fprintln(acked, "done")
	acked.Close()
}

type scenario struct {
	point string
	mode  string
	nth   int
}

func (s scenario) name() string { return fmt.Sprintf("%s_%s_%d", s.point, s.mode, s.nth) }
func (s scenario) spec() string { return fmt.Sprintf("%s:%s:%d", s.point, s.mode, s.nth) }

func scenarios(full bool) []scenario {
	if !full {
		// Quick set: one per fault point, mixing modes and timing.
		return []scenario{
			{"walwrite", "crash", 23},
			{"pagewrite", "torn", 9},
			{"metawrite", "crash", 6},
			{"checkpoint", "crash", 1},
		}
	}
	var out []scenario
	for _, point := range []string{"walwrite", "pagewrite", "metawrite"} {
		for _, mode := range []string{"crash", "torn"} {
			for _, nth := range []int{3, 23} {
				out = append(out, scenario{point, mode, nth})
			}
		}
	}
	out = append(out,
		scenario{"checkpoint", "crash", 1},
		scenario{"checkpoint", "crash", 2},
		scenario{"pagewrite", "hang", 11},
		scenario{"walwrite", "hang", 17},
	)
	return out
}

// TestCrashRecovery kills a child engine at every storage fault point
// and proves three properties at reopen: recovery runs when there is a
// log to replay, every acknowledged statement is present, and every
// page checksum verifies.
func TestCrashRecovery(t *testing.T) {
	if os.Getenv(childDirEnv) != "" {
		t.Skip("running as crash child")
	}
	if testing.Short() {
		t.Skip("crash harness skipped in -short")
	}
	for _, sc := range scenarios(os.Getenv(fullMatrixEnv) != "") {
		t.Run(sc.name(), func(t *testing.T) { runScenario(t, sc) })
	}
}

func runScenario(t *testing.T, sc scenario) {
	dir := t.TempDir()
	rows := os.Getenv(childRowsEnv) // vary workload length across CI runs
	if rows == "" {
		rows = "120"
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(),
		childDirEnv+"="+dir,
		childRowsEnv+"="+rows,
		storage.FaultEnv+"="+sc.spec(),
	)
	out, killed := runChild(t, cmd, sc.mode == "hang")

	ackedIDs, sawDone := readAcked(t, filepath.Join(dir, "acked.txt"))
	if sawDone && sc.mode != "hang" {
		t.Fatalf("fault %s never fired (child ran to completion):\n%s", sc.spec(), out)
	}
	dbPath := filepath.Join(dir, "crash.db")
	walInfo, walErr := os.Stat(storage.WALPath(dbPath))
	hadWAL := walErr == nil && walInfo.Size() > 0

	// Reopen: recovery replays the log transparently.
	eng, err := engine.Open(dbPath, engine.Options{Durability: "commit"})
	if err != nil {
		t.Fatalf("reopen after %s (killed=%v): %v\nchild output:\n%s", sc.spec(), killed, err, out)
	}
	rec := eng.Recovered()
	if hadWAL && !rec.Ran {
		t.Errorf("non-empty WAL but recovery did not run: %+v", rec)
	}

	// Every acknowledged row must be present.
	res, err := eng.Exec("SELECT id FROM crash_t")
	if err != nil {
		if len(ackedIDs) > 0 {
			t.Fatalf("SELECT after recovery: %v (acked %d rows)", err, len(ackedIDs))
		}
		// Crash before the acked CREATE TABLE became visible: fine.
	} else {
		present := make(map[int64]bool, len(res.Rows))
		for _, row := range res.Rows {
			present[row[0].Int] = true
		}
		for _, id := range ackedIDs {
			if !present[id] {
				t.Errorf("acknowledged row %d lost after %s", id, sc.spec())
			}
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close reopened engine: %v", err)
	}

	// Every page checksum must verify.
	d, err := storage.OpenDisk(dbPath)
	if err != nil {
		t.Fatalf("OpenDisk for verification: %v", err)
	}
	defer d.Close()
	bad, err := d.VerifyChecksums()
	if err != nil {
		t.Fatalf("VerifyChecksums: %v", err)
	}
	if len(bad) != 0 {
		t.Errorf("pages with bad checksums after recovery: %v", bad)
	}
}

// diskFaultScenario is one cell of the error-mode disk-fault matrix:
// unlike crash/torn/hang faults these do not kill the process — the
// injected syscall failure surfaces as a statement error and the
// engine must degrade, not crash.
type diskFaultScenario struct {
	point string
	mode  string
	// recovers: disarming the fault lets mutations succeed again
	// (ENOSPC auto-probe; non-sticky frame-write errors). Sticky WAL
	// failures (fsyncgate) stay stuck by design until restart.
	recovers bool
}

func (s diskFaultScenario) name() string { return s.point + "_" + s.mode }

// TestDiskFaultMatrix injects EIO/ENOSPC/fsync failures at every
// storage fault point mid-workload and proves, for each: the engine
// survives (no panic, reads keep working), every acknowledged row is
// durable across reopen, and every page checksum verifies.
func TestDiskFaultMatrix(t *testing.T) {
	if os.Getenv(childDirEnv) != "" {
		t.Skip("running as crash child")
	}
	matrix := []diskFaultScenario{
		{"walwrite", "eio", false}, // sticky: WAL poisoned until restart
		{"walwrite", "enospc", true},
		{"walwrite", "fsyncfail", false}, // fsyncgate: sticky
		{"pagewrite", "eio", true},
		{"pagewrite", "enospc", true},
		{"checkpoint", "eio", true},
		{"checkpoint", "enospc", true},
		{"checkpoint", "fsyncfail", true},
		{"archive", "eio", true},
		{"archive", "enospc", true},
		{"archive", "fsyncfail", true},
	}
	for _, sc := range matrix {
		t.Run(sc.name(), func(t *testing.T) { runDiskFaultScenario(t, sc) })
	}
}

func runDiskFaultScenario(t *testing.T, sc diskFaultScenario) {
	defer storage.ArmFault("")
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "fault.db")
	arch := filepath.Join(dir, "archive")
	eng, err := engine.Open(dbPath, engine.Options{
		Durability:      "commit",
		ArchiveDir:      arch,
		BufferPoolPages: 8,        // force evictions (pagewrite traffic)
		CheckpointBytes: 64 << 10, // force auto-checkpoints (checkpoint/archive traffic)
	})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := eng.Exec("CREATE TABLE ft (id INT, payload STRING)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	var acked []int
	for i := 0; i < 60; i++ {
		switch i {
		case 20:
			storage.ArmFault(sc.point + ":" + sc.mode)
		case 40:
			storage.ArmFault("")
		}
		payload := strings.Repeat(string(rune('a'+i%26)), 400)
		_, err := eng.Exec(fmt.Sprintf("INSERT INTO ft VALUES (%d, '%s')", i, payload))
		if err == nil {
			acked = append(acked, i)
		}
	}
	if len(acked) < 20 {
		t.Fatalf("only %d rows acked before the fault window", len(acked))
	}
	// Reads must keep serving whatever state the fault left behind.
	if _, err := eng.Exec("SELECT id FROM ft"); err != nil {
		t.Fatalf("SELECT after fault window: %v", err)
	}
	if sc.recovers {
		// The engine must accept writes again once the fault clears
		// (the ENOSPC probe is rate-limited, so allow a few seconds).
		deadline := time.Now().Add(5 * time.Second)
		for {
			if _, err := eng.Exec("INSERT INTO ft VALUES (999, 'recovered')"); err == nil {
				acked = append(acked, 999)
				break
			} else if time.Now().After(deadline) {
				t.Fatalf("engine did not accept writes after fault cleared: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	// Close is best-effort: a sticky WAL failure makes the final
	// checkpoint fail by design.
	if err := eng.Close(); err != nil && sc.recovers {
		t.Fatalf("close after recovery: %v", err)
	}

	// Reopen: every acknowledged row survived, checksums verify.
	eng2, err := engine.Open(dbPath, engine.Options{Durability: "commit", ArchiveDir: arch})
	if err != nil {
		t.Fatalf("reopen after %s: %v", sc.name(), err)
	}
	res, err := eng2.Exec("SELECT id FROM ft")
	if err != nil {
		t.Fatalf("SELECT after reopen: %v", err)
	}
	present := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		present[row[0].Int] = true
	}
	for _, id := range acked {
		if !present[int64(id)] {
			t.Errorf("acknowledged row %d lost after %s", id, sc.name())
		}
	}
	if err := eng2.Close(); err != nil {
		t.Fatalf("close reopened engine: %v", err)
	}
	d, err := storage.OpenDisk(dbPath)
	if err != nil {
		t.Fatalf("OpenDisk: %v", err)
	}
	defer d.Close()
	if bad, err := d.VerifyChecksums(); err != nil || len(bad) != 0 {
		t.Errorf("bad checksums after %s: %v (err %v)", sc.name(), bad, err)
	}
}

// runChild runs the re-executed test binary. In hang mode it SIGKILLs
// the child once the ack file stops growing (the injected hang holds
// the disk mutex, so no further progress is possible).
func runChild(t *testing.T, cmd *exec.Cmd, hang bool) (output string, killed bool) {
	t.Helper()
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if !hang {
		err := cmd.Run()
		if err == nil {
			return buf.String(), false // fault never fired; caller checks "done"
		}
		if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() == -1 {
			t.Fatalf("child did not exit via injected fault: %v\n%s", err, buf.String())
		}
		return buf.String(), false
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
		// Hang scenarios still exit if the countdown was never reached;
		// treat like a non-firing fault (caller checks the done marker).
		return buf.String(), false
	case <-time.After(3 * time.Second):
		cmd.Process.Kill() // SIGKILL: nothing in the child gets to flush
		<-done
		return buf.String(), true
	}
}

// readAcked parses the child's ack file: one "table" line, then row
// ids, then possibly "done".
func readAcked(t *testing.T, path string) (ids []int64, sawDone bool) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false // crashed before the first ack
		}
		t.Fatalf("open acked: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch line {
		case "", "table":
			continue
		case "done":
			sawDone = true
		default:
			id, err := strconv.ParseInt(line, 10, 64)
			if err != nil {
				t.Fatalf("bad acked line %q: %v", line, err)
			}
			ids = append(ids, id)
		}
	}
	return ids, sawDone
}
