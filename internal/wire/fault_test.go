package wire

import (
	"errors"
	"testing"
	"time"
)

func TestEncodeDecodeError(t *testing.T) {
	msg, code, retryable := DecodeError(EncodeError("too busy", "overload", true))
	if msg != "too busy" || code != "overload" || !retryable {
		t.Fatalf("got (%q, %q, %v)", msg, code, retryable)
	}
	msg, code, retryable = DecodeError(EncodeError("bad query", "", false))
	if msg != "bad query" || code != "" || retryable {
		t.Fatalf("got (%q, %q, %v)", msg, code, retryable)
	}
}

func TestDecodeErrorLegacyPayload(t *testing.T) {
	// A v0 server sends just the message string; the new decoder must
	// accept it with empty code and retryable=false.
	w := &Writer{}
	w.Str("plain old error")
	msg, code, retryable := DecodeError(w.Buf)
	if msg != "plain old error" || code != "" || retryable {
		t.Fatalf("got (%q, %q, %v)", msg, code, retryable)
	}
}

func TestDecodeErrorLegacyReader(t *testing.T) {
	// A v0 client reads only the leading string; the flags+code suffix
	// must not corrupt it.
	r := &Reader{Buf: EncodeError("shed", "overload", true)}
	if got := r.Str(); got != "shed" || r.Err != nil {
		t.Fatalf("legacy read got %q, err %v", got, r.Err)
	}
}

func TestWireFaultDisconnectOnSend(t *testing.T) {
	defer InjectFault("wiresend:disconnect")()
	var buf pipeBuf
	c := NewConn(&buf).EnableFaultInjection()
	err := c.Send(MsgOK, []byte("payload"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("disconnect fault wrote %d bytes", buf.Len())
	}
	// One-shot: the next send succeeds.
	if err := c.Send(MsgOK, []byte("payload")); err != nil {
		t.Fatalf("second send: %v", err)
	}
}

func TestWireFaultPartialWrite(t *testing.T) {
	defer InjectFault("wiresend:partial")()
	var buf pipeBuf
	c := NewConn(&buf).EnableFaultInjection()
	payload := []byte("0123456789")
	err := c.Send(MsgResult, payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	// Header plus half the payload made it out: a frame the reader can
	// never complete.
	if want := 5 + len(payload)/2; buf.Len() != want {
		t.Fatalf("partial fault wrote %d bytes, want %d", buf.Len(), want)
	}
	if _, _, err := NewConn(&buf).Recv(); err == nil {
		t.Fatal("reader completed a truncated frame")
	}
}

func TestWireFaultNthHit(t *testing.T) {
	defer InjectFault("wirerecv:disconnect:3")()
	var buf pipeBuf
	w := NewConn(&buf)
	for i := 0; i < 3; i++ {
		if err := w.Send(MsgPing, nil); err != nil {
			t.Fatal(err)
		}
	}
	r := NewConn(&buf).EnableFaultInjection()
	for i := 0; i < 2; i++ {
		if _, _, err := r.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if _, _, err := r.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("third recv: got %v, want ErrInjected", err)
	}
}

func TestWireFaultStall(t *testing.T) {
	defer InjectFault("wiresend:stall:30ms")()
	var buf pipeBuf
	c := NewConn(&buf).EnableFaultInjection()
	start := time.Now()
	if err := c.Send(MsgOK, nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("stall fault did not stall (took %v)", d)
	}
}

func TestWireFaultScopedToOptedInConns(t *testing.T) {
	defer InjectFault("wiresend:disconnect")()
	var buf pipeBuf
	c := NewConn(&buf) // no EnableFaultInjection: a client-side conn
	if err := c.Send(MsgOK, nil); err != nil {
		t.Fatalf("fault fired on un-opted conn: %v", err)
	}
}

func TestWireFaultBadSpecsDisarm(t *testing.T) {
	for _, spec := range []string{
		"", "wiresend", "wiresend:stall", "wiresend:stall:bogus",
		"wiresend:partial:0", "wiresend:nosuchmode", "walwrite:crash",
		"invoke:crash",
	} {
		if p := parseWireFault(spec); p != nil {
			t.Fatalf("spec %q parsed to %+v, want nil", spec, p)
		}
	}
}
