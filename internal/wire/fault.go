package wire

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Deterministic fault injection for the client/server wire, extending
// the PREDATOR_FAULT convention (internal/isolate, internal/storage)
// from the executor pipe and the disk to the network protocol. A spec
// names a protocol point and a failure mode:
//
//	point:mode[:arg]
//
// Points:
//
//	wiresend — before writing a frame (server → client result stream)
//	wirerecv — before reading a frame (client → server request stream)
//
// Modes:
//
//	stall:<dur> — sleep before every matching operation while armed: a
//	              slow network, or a stalled client that stops draining
//	              its result stream
//	partial     — on the arg-th hit (default 1), write the frame header
//	              plus half the payload, flush, and fail the send: the
//	              peer observes a mid-frame disconnect. On wirerecv it
//	              behaves as disconnect (nothing was consumed).
//	disconnect  — on the arg-th hit (default 1), fail the operation
//	              without touching the stream, as if the TCP connection
//	              dropped between frames
//
// Unlike the storage faults, wire faults never kill the process: the
// point of the matrix is to prove the *server* survives them. Faults
// fire only on connections that opted in via EnableFaultInjection —
// the server arms its side; clients sharing the test process do not —
// so in-process chaos tests perturb exactly one direction.
//
// Specs arrive through the PREDATOR_FAULT environment variable (read
// once at init) or programmatically via InjectFault, which is what
// same-process tests use.

// ErrInjected marks failures produced by the wire fault harness, so
// tests can tell an injected fault from a real bug.
var ErrInjected = errors.New("wire: injected fault")

var wirePoints = map[string]bool{"wiresend": true, "wirerecv": true}

type wireFault struct {
	point     string
	mode      string
	stall     time.Duration
	remaining atomic.Int64
}

var wirePlan atomic.Pointer[wireFault]

func init() {
	if p := parseWireFault(os.Getenv("PREDATOR_FAULT")); p != nil {
		wirePlan.Store(p)
	}
}

// InjectFault arms wire fault injection process-wide, returning a
// function that disarms it. An empty or malformed spec (or one aimed
// at a non-wire point) disarms; a bad spec must never break the wire.
func InjectFault(spec string) (clear func()) {
	wirePlan.Store(parseWireFault(spec))
	return func() { wirePlan.Store(nil) }
}

func parseWireFault(spec string) *wireFault {
	if spec == "" {
		return nil
	}
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 || !wirePoints[parts[0]] {
		return nil
	}
	p := &wireFault{point: parts[0], mode: parts[1]}
	p.remaining.Store(1)
	switch p.mode {
	case "stall":
		if len(parts) < 3 {
			return nil
		}
		d, err := time.ParseDuration(parts[2])
		if err != nil || d <= 0 {
			return nil
		}
		p.stall = d
	case "partial", "disconnect":
		if len(parts) == 3 {
			n, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil || n < 1 {
				return nil
			}
			p.remaining.Store(n)
		}
	default:
		return nil
	}
	return p
}

// sendFault perturbs one outgoing frame on an armed connection.
// A non-nil return aborts the send (the caller's payload was either
// untouched or deliberately truncated on the stream).
func (c *Conn) sendFault(hdr, payload []byte) error {
	p := wirePlan.Load()
	if p == nil || p.point != "wiresend" {
		return nil
	}
	switch p.mode {
	case "stall":
		time.Sleep(p.stall)
	case "partial":
		if p.remaining.Add(-1) != 0 {
			return nil
		}
		// Header promises the full payload; deliver half and fail, so
		// the peer sees a frame that can never complete.
		c.w.Write(hdr)
		c.w.Write(payload[:len(payload)/2])
		c.w.Flush()
		return fmt.Errorf("%w: partial write at wiresend", ErrInjected)
	case "disconnect":
		if p.remaining.Add(-1) != 0 {
			return nil
		}
		return fmt.Errorf("%w: disconnect at wiresend", ErrInjected)
	}
	return nil
}

// recvFault perturbs one incoming-frame read on an armed connection.
func (c *Conn) recvFault() error {
	p := wirePlan.Load()
	if p == nil || p.point != "wirerecv" {
		return nil
	}
	switch p.mode {
	case "stall":
		time.Sleep(p.stall)
	case "partial", "disconnect":
		if p.remaining.Add(-1) != 0 {
			return nil
		}
		return fmt.Errorf("%w: disconnect at wirerecv", ErrInjected)
	}
	return nil
}
