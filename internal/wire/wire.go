// Package wire defines the client/server protocol of PREDATOR-Go: a
// framed, length-prefixed binary protocol over TCP. The same streamed
// value encoding (package types) used on disk is used on the wire,
// which is the property that makes Jaguar UDFs location-portable: a
// UDF reads its arguments from a stream and writes its result to a
// stream whether it runs at the client or the server (paper §6.4).
package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"predator/internal/obs"
	"predator/internal/types"
)

// Process-wide wire traffic counters (frame headers included).
var (
	obsBytesIn  = obs.Default.Counter("predator_wire_bytes_in_total")
	obsBytesOut = obs.Default.Counter("predator_wire_bytes_out_total")
	obsFramesIn = obs.Default.Counter("predator_wire_frames_in_total")
)

// Protocol message types.
const (
	// Requests.
	MsgHello      byte = 0x01 // user string
	MsgQuery      byte = 0x02 // sql string
	MsgRegister   byte = 0x03 // UDF upload (class bytes)
	MsgPutObject  byte = 0x04 // large object for callback handles
	MsgPing       byte = 0x05
	MsgQuit       byte = 0x06
	MsgFetchClass byte = 0x07 // download a registered UDF's class bytes

	// Responses.
	MsgOK     byte = 0x81 // optional message string
	MsgError  byte = 0x82 // error string
	MsgResult byte = 0x83 // schema + rows (+ message/plan)
	MsgHandle byte = 0x84 // int64 handle
	MsgClass  byte = 0x85 // class bytes + metadata
)

// MaxFrame bounds one protocol frame (64 MiB).
const MaxFrame = 64 << 20

// Conn wraps a stream with buffered framing. Not safe for concurrent
// use; callers serialize request/response pairs.
type Conn struct {
	r      *bufio.Reader
	w      *bufio.Writer
	faulty bool
}

// NewConn wraps a transport.
func NewConn(rw io.ReadWriter) *Conn {
	return &Conn{r: bufio.NewReaderSize(rw, 64<<10), w: bufio.NewWriterSize(rw, 64<<10)}
}

// EnableFaultInjection opts this connection into the PREDATOR_FAULT
// wire matrix (see fault.go). The server arms its side of every
// connection; clients never do, so an in-process chaos test perturbs
// exactly the server-facing direction.
func (c *Conn) EnableFaultInjection() *Conn {
	c.faulty = true
	return c
}

// Send writes one frame.
func (c *Conn) Send(typ byte, payload []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(len(payload)))
	hdr[4] = typ
	if c.faulty {
		if err := c.sendFault(hdr[:], payload); err != nil {
			return err
		}
	}
	if _, err := c.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if _, err := c.w.Write(payload); err != nil {
		return fmt.Errorf("wire: write payload: %w", err)
	}
	obsBytesOut.Add(int64(len(hdr) + len(payload)))
	return c.w.Flush()
}

// Recv reads one frame.
func (c *Conn) Recv() (byte, []byte, error) {
	if c.faulty {
		if err := c.recvFault(); err != nil {
			return 0, nil, err
		}
	}
	var hdr [5]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return 0, nil, fmt.Errorf("wire: read payload: %w", err)
	}
	obsBytesIn.Add(int64(len(hdr)) + int64(n))
	obsFramesIn.Inc()
	return hdr[4], payload, nil
}

// Writer builds frame payloads.
type Writer struct {
	Buf []byte
}

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) *Writer {
	w.Buf = binary.AppendUvarint(w.Buf, uint64(len(s)))
	w.Buf = append(w.Buf, s...)
	return w
}

// Bytes appends a length-prefixed byte slice.
func (w *Writer) Bytes(b []byte) *Writer {
	w.Buf = binary.AppendUvarint(w.Buf, uint64(len(b)))
	w.Buf = append(w.Buf, b...)
	return w
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) *Writer {
	w.Buf = binary.AppendUvarint(w.Buf, v)
	return w
}

// Varint appends a signed varint.
func (w *Writer) Varint(v int64) *Writer {
	w.Buf = binary.AppendVarint(w.Buf, v)
	return w
}

// Byte appends one raw byte.
func (w *Writer) Byte(b byte) *Writer {
	w.Buf = append(w.Buf, b)
	return w
}

// Value appends an encoded value.
func (w *Writer) Value(v types.Value) *Writer {
	w.Buf = types.EncodeValue(w.Buf, v)
	return w
}

// Schema appends an encoded schema.
func (w *Writer) Schema(s *types.Schema) *Writer {
	w.Uvarint(uint64(s.Arity()))
	for _, col := range s.Columns {
		w.Str(col.Name)
		w.Byte(byte(col.Kind))
	}
	return w
}

// Reader parses frame payloads.
type Reader struct {
	Buf []byte
	Off int
	Err error
}

func (r *Reader) fail() {
	if r.Err == nil {
		r.Err = fmt.Errorf("wire: truncated frame at offset %d", r.Off)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.Buf[r.Off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.Off += n
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.Err != nil {
		return 0
	}
	v, n := binary.Varint(r.Buf[r.Off:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.Off += n
	return v
}

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.Err != nil || r.Off >= len(r.Buf) {
		r.fail()
		return 0
	}
	b := r.Buf[r.Off]
	r.Off++
	return b
}

// Bytes reads a length-prefixed byte slice (copied).
func (r *Reader) Bytes() []byte {
	n := int(r.Uvarint())
	if r.Err != nil || n < 0 || r.Off+n > len(r.Buf) {
		r.fail()
		return nil
	}
	out := make([]byte, n)
	copy(out, r.Buf[r.Off:])
	r.Off += n
	return out
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string { return string(r.Bytes()) }

// Value reads an encoded value.
func (r *Reader) Value() types.Value {
	if r.Err != nil {
		return types.Value{}
	}
	v, n, err := types.DecodeValue(r.Buf[r.Off:])
	if err != nil {
		r.Err = err
		return types.Value{}
	}
	r.Off += n
	return v.Clone()
}

// Schema reads an encoded schema.
func (r *Reader) Schema() *types.Schema {
	n := int(r.Uvarint())
	if r.Err != nil || n < 0 || n > 1<<16 {
		r.fail()
		return nil
	}
	s := &types.Schema{Columns: make([]types.Column, 0, n)}
	for i := 0; i < n; i++ {
		name := r.Str()
		kind := types.Kind(r.Byte())
		s.Columns = append(s.Columns, types.Column{Name: name, Kind: kind})
	}
	return s
}

// ErrFlagRetryable marks a server error whose statement never ran (or
// was killed mid-run for transient reasons): the client may resubmit
// as-is after backing off.
const ErrFlagRetryable byte = 1 << 0

// EncodeError serializes a MsgError payload: the message string the
// v0 protocol carried, followed by a flags byte and a machine-readable
// code (a core.FaultClass name such as "overload" or "quota"). Old
// readers stop after the leading string, so the extension is
// backward compatible in both directions.
func EncodeError(msg, code string, retryable bool) []byte {
	w := &Writer{}
	w.Str(msg)
	var flags byte
	if retryable {
		flags |= ErrFlagRetryable
	}
	w.Byte(flags)
	w.Str(code)
	return w.Buf
}

// DecodeError parses a MsgError payload from either protocol
// generation: bare-string payloads yield an empty code and
// retryable=false.
func DecodeError(payload []byte) (msg, code string, retryable bool) {
	r := &Reader{Buf: payload}
	msg = r.Str()
	if r.Err != nil || r.Off >= len(r.Buf) {
		return msg, "", false
	}
	flags := r.Byte()
	code = r.Str()
	if r.Err != nil {
		return msg, "", false
	}
	return msg, code, flags&ErrFlagRetryable != 0
}

// EncodeResult serializes a query result (schema, rows, message, plan).
func EncodeResult(schema *types.Schema, rows []types.Row, affected int64, message, plan string) []byte {
	w := &Writer{}
	hasSchema := schema != nil
	if hasSchema {
		w.Byte(1)
		w.Schema(schema)
		w.Uvarint(uint64(len(rows)))
		for _, row := range rows {
			for _, v := range row {
				w.Value(v)
			}
		}
	} else {
		w.Byte(0)
	}
	w.Varint(affected)
	w.Str(message)
	w.Str(plan)
	return w.Buf
}

// DecodeResult parses a query result.
func DecodeResult(payload []byte) (schema *types.Schema, rows []types.Row, affected int64, message, plan string, err error) {
	r := &Reader{Buf: payload}
	if r.Byte() == 1 {
		schema = r.Schema()
		n := int(r.Uvarint())
		if n < 0 || n > MaxFrame {
			return nil, nil, 0, "", "", fmt.Errorf("wire: implausible row count %d", n)
		}
		rows = make([]types.Row, 0, n)
		for i := 0; i < n && r.Err == nil; i++ {
			row := make(types.Row, schema.Arity())
			for j := range row {
				row[j] = r.Value()
			}
			rows = append(rows, row)
		}
	}
	affected = r.Varint()
	message = r.Str()
	plan = r.Str()
	if r.Err != nil {
		return nil, nil, 0, "", "", r.Err
	}
	return schema, rows, affected, message, plan, nil
}
