package wire

import (
	"bytes"
	"testing"
	"testing/quick"

	"predator/internal/types"
)

// pipeBuf is an in-memory ReadWriter for conn testing.
type pipeBuf struct {
	bytes.Buffer
}

func TestFrameRoundTrip(t *testing.T) {
	var buf pipeBuf
	c := NewConn(&buf)
	payload := []byte("hello frame")
	if err := c.Send(MsgQuery, payload); err != nil {
		t.Fatal(err)
	}
	typ, got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgQuery || !bytes.Equal(got, payload) {
		t.Errorf("typ=%d payload=%q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf pipeBuf
	c := NewConn(&buf)
	if err := c.Send(MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	typ, got, err := c.Recv()
	if err != nil || typ != MsgPing || len(got) != 0 {
		t.Errorf("typ=%d payload=%v err=%v", typ, got, err)
	}
}

func TestRecvRejectsOversizedFrame(t *testing.T) {
	var buf pipeBuf
	// Forge a header claiming a huge payload.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, MsgQuery})
	c := NewConn(&buf)
	if _, _, err := c.Recv(); err == nil {
		t.Error("oversized frame accepted")
	}
}

func TestWriterReaderPrimitives(t *testing.T) {
	w := &Writer{}
	w.Str("predator").Bytes([]byte{1, 2}).Uvarint(300).Varint(-5).Byte(0xAA)
	w.Value(types.NewFloat(2.5))
	r := &Reader{Buf: w.Buf}
	if got := r.Str(); got != "predator" {
		t.Errorf("str = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2}) {
		t.Errorf("bytes = %v", got)
	}
	if got := r.Uvarint(); got != 300 {
		t.Errorf("uvarint = %d", got)
	}
	if got := r.Varint(); got != -5 {
		t.Errorf("varint = %d", got)
	}
	if got := r.Byte(); got != 0xAA {
		t.Errorf("byte = %x", got)
	}
	if got := r.Value(); got.Float != 2.5 {
		t.Errorf("value = %v", got)
	}
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	// Reading past the end sets Err instead of panicking.
	r.Byte()
	if r.Err == nil {
		t.Error("overread not detected")
	}
}

func TestSchemaRoundTrip(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "id", Kind: types.KindInt},
		types.Column{Name: "payload", Kind: types.KindBytes},
	)
	w := &Writer{}
	w.Schema(s)
	r := &Reader{Buf: w.Buf}
	got := r.Schema()
	if r.Err != nil || !got.Equal(s) {
		t.Errorf("schema = %s, err = %v", got, r.Err)
	}
}

func TestResultRoundTrip(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "a", Kind: types.KindInt},
		types.Column{Name: "b", Kind: types.KindString},
		types.Column{Name: "c", Kind: types.KindBytes},
	)
	rows := []types.Row{
		{types.NewInt(1), types.NewString("x"), types.NewBytes([]byte{9})},
		{types.Null(), types.NewString(""), types.Null()},
	}
	payload := EncodeResult(s, rows, 7, "msg", "plan")
	gs, grows, affected, message, plan, err := DecodeResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !gs.Equal(s) || len(grows) != 2 || affected != 7 || message != "msg" || plan != "plan" {
		t.Errorf("decoded: %v %v %d %q %q", gs, grows, affected, message, plan)
	}
	if grows[0][0].Int != 1 || grows[0][2].Bytes[0] != 9 || !grows[1][0].IsNull() {
		t.Errorf("rows = %v", grows)
	}
}

func TestResultNoSchema(t *testing.T) {
	payload := EncodeResult(nil, nil, 3, "dropped", "")
	gs, grows, affected, message, _, err := DecodeResult(payload)
	if err != nil || gs != nil || grows != nil || affected != 3 || message != "dropped" {
		t.Errorf("decoded: %v %v %d %q %v", gs, grows, affected, message, err)
	}
}

func TestDecodeResultCorrupt(t *testing.T) {
	payload := EncodeResult(types.NewSchema(types.Column{Name: "a", Kind: types.KindInt}),
		[]types.Row{{types.NewInt(1)}}, 0, "", "")
	for _, cut := range []int{1, 3, len(payload) / 2} {
		if _, _, _, _, _, err := DecodeResult(payload[:cut]); err == nil {
			t.Errorf("truncated result (cut=%d) accepted", cut)
		}
	}
}

// Property: results of random int/string rows round-trip.
func TestQuickResultRoundTrip(t *testing.T) {
	s := types.NewSchema(
		types.Column{Name: "i", Kind: types.KindInt},
		types.Column{Name: "s", Kind: types.KindString},
	)
	prop := func(vals []int64, strs []string) bool {
		n := len(vals)
		if len(strs) < n {
			n = len(strs)
		}
		rows := make([]types.Row, n)
		for i := 0; i < n; i++ {
			rows[i] = types.Row{types.NewInt(vals[i]), types.NewString(strs[i])}
		}
		payload := EncodeResult(s, rows, int64(n), "", "")
		_, grows, affected, _, _, err := DecodeResult(payload)
		if err != nil || affected != int64(n) || len(grows) != n {
			return false
		}
		for i := range grows {
			if grows[i][0].Int != vals[i] || grows[i][1].Str != strs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
