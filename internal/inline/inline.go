// Package inline implements Froid-style UDF inlining for Jaguar
// bytecode: it lowers *translatable* method bodies — straight-line
// arithmetic, comparisons, if/else, and fuel-bounded loops — into a
// small register program the query engine can evaluate in-process, as
// part of the expression tree, with zero crossings and zero
// allocations per row.
//
// The safety argument rests entirely on the bytecode verifier. A class
// that passes jvm.Verify has a statically known operand-stack depth at
// every instruction (the verifier's abstract interpretation rejects
// inconsistent depths or types at join points), every jump lands on an
// instruction boundary, no local or constant index is out of range,
// and the only run-time failures are the checked traps. That is
// exactly the invariant that makes stack-to-register translation
// sound: operand-stack slot k at depth d is a *name*, not a dynamic
// location, so it becomes register locals+k. Translate re-verifies the
// class itself — there is no trusted path around the verifier, even
// for callers holding raw class bytes.
//
// Translation is 1:1: each bytecode instruction becomes exactly one
// register op, and the evaluator charges one unit of fuel per op
// before executing it, like the VM interpreter. A translated program
// therefore traps (fuel, divide-by-zero, bounds) on exactly the same
// input and at exactly the same instruction count as the VM would —
// the differential tests pin this.
//
// Untranslatable bodies bail out with a recorded reason and keep their
// declared execution design (VM, isolated, fleet). The taxonomy:
//
//   - native-call:<name>  — callbacks or system natives (cb_*, sys_*):
//     those need the invocation context the plan does not carry;
//   - sibling-call:<m>    — method calls (would need interprocedural
//     translation and depth accounting);
//   - allocates:<op>      — sconcat / bnew / bytes constants: the
//     VM charges these against the per-invocation memory budget,
//     which the in-plan path intentionally does not replicate;
//   - loop-without-fuel-limit — a backward jump with Limits.Fuel == 0:
//     only the fuel budget proves such loops terminate, so without
//     one the body must stay under the VM (or an isolated process,
//     where a wedged invocation can be killed);
//   - unsupported-opcode:<op> — future instructions.
package inline

import (
	"errors"
	"fmt"
	"math"

	"predator/internal/jvm"
)

// Bailout reports that a method body is not translatable. The UDF
// falls back to its declared execution design; Reason is surfaced in
// EXPLAIN and SHOW UDFS so operators can see why the function still
// pays crossings.
type Bailout struct {
	Reason string
}

// Error implements the error interface.
func (b *Bailout) Error() string { return "inline: not translatable: " + b.Reason }

// ReasonOf extracts a human-readable bail-out reason from a Translate
// error ("" for nil).
func ReasonOf(err error) string {
	if err == nil {
		return ""
	}
	var b *Bailout
	if errors.As(err, &b) {
		return b.Reason
	}
	return err.Error()
}

// rop is one register operation. The op field keeps the source
// opcode, so the mapping stays visibly 1:1 (and disassembly reads
// like the bytecode). Operand roles:
//
//	a — destination register, or jump-target op index
//	b — first source register (condition / return value)
//	c — second source register
type rop struct {
	op      jvm.Opcode
	a, b, c int32
	val     jvm.Value // OpLdc payload (constants resolved at translation)
}

// Program is a translated method body: a register machine over a flat
// file of len(Locals)+MaxStack registers, evaluated by Run. It is
// immutable after Translate and safe for concurrent Run calls (each
// caller supplies its own register scratch).
type Program struct {
	class   string
	method  string
	params  []jvm.VType
	ret     jvm.VType
	nLocals int
	nRegs   int
	ops     []rop
	fuel    int64
	hasLoop bool
}

// NumRegs returns the register-file size Run requires.
func (p *Program) NumRegs() int { return p.nRegs }

// NumOps returns the number of register ops (= bytecode instructions).
func (p *Program) NumOps() int { return len(p.ops) }

// NumParams returns the method's parameter count.
func (p *Program) NumParams() int { return len(p.params) }

// Return is the VM-level result type.
func (p *Program) Return() jvm.VType { return p.ret }

// HasLoop reports whether the body contains a backward jump. Such
// programs are only translated under a fuel limit.
func (p *Program) HasLoop() bool { return p.hasLoop }

// Name returns "class.method" for diagnostics.
func (p *Program) Name() string { return p.class + "." + p.method }

// NewRegs allocates a register file sized for Run. Hot paths allocate
// one and reuse it across rows.
func (p *Program) NewRegs() []jvm.Value { return make([]jvm.Value, p.nRegs) }

// fuelBudget mirrors the VM's internal countdown derivation:
// Limits.Fuel <= 0 means unlimited.
func fuelBudget(l jvm.Limits) int64 {
	if l.Fuel <= 0 {
		return math.MaxInt64
	}
	return l.Fuel
}

// depthDelta gives each translatable opcode's net operand-stack effect.
var depthDelta = map[jvm.Opcode]int{
	jvm.OpNop: 0, jvm.OpLdc: +1, jvm.OpIConst0: +1, jvm.OpIConst1: +1,
	jvm.OpDup: +1, jvm.OpPop: -1, jvm.OpSwap: 0,
	jvm.OpLoad: +1, jvm.OpStore: -1,
	jvm.OpIAdd: -1, jvm.OpISub: -1, jvm.OpIMul: -1, jvm.OpIDiv: -1, jvm.OpIMod: -1,
	jvm.OpINeg: 0,
	jvm.OpFAdd: -1, jvm.OpFSub: -1, jvm.OpFMul: -1, jvm.OpFDiv: -1,
	jvm.OpFNeg: 0, jvm.OpI2F: 0, jvm.OpF2I: 0,
	jvm.OpIEq: -1, jvm.OpINe: -1, jvm.OpILt: -1, jvm.OpILe: -1, jvm.OpIGt: -1, jvm.OpIGe: -1,
	jvm.OpFEq: -1, jvm.OpFNe: -1, jvm.OpFLt: -1, jvm.OpFLe: -1, jvm.OpFGt: -1, jvm.OpFGe: -1,
	jvm.OpSEq: -1, jvm.OpSLen: 0,
	jvm.OpBLen: 0, jvm.OpBGet: -1, jvm.OpBSet: -3, jvm.OpBEq: -1,
	jvm.OpNot: 0,
	jvm.OpJmp: 0, jvm.OpJmpZ: -1, jvm.OpJmpN: -1,
	jvm.OpRet: -1,
}

// decoded is a pre-decoded bytecode instruction (jump targets already
// rewritten from byte offsets to instruction indexes, as the loader
// does).
type decoded struct {
	op   jvm.Opcode
	a    int32 // cp index / local index / jump target (instr index)
	argc int32 // OpNative arg count
}

// Translate lowers the named method of a verified class into a
// register program. It verifies the class itself (callers may hold raw
// decoded bytes that never went through a loader), then rejects
// untranslatable bodies with a *Bailout carrying the reason. lim is
// the per-invocation resource policy the program will run under; its
// fuel figure is baked into the program and bounds loops exactly as
// it bounds the VM interpreter.
func Translate(c *jvm.Class, method string, lim jvm.Limits) (*Program, error) {
	if err := c.Verify(); err != nil {
		return nil, err
	}
	mi := c.MethodIndex(method)
	if mi < 0 {
		return nil, fmt.Errorf("inline: class %q has no method %q", c.Name, method)
	}
	m := &c.Methods[mi]

	ins, err := decode(c, m)
	if err != nil {
		return nil, err
	}

	// First gate: every opcode must be translatable at all. Checking
	// before the depth analysis gives the most specific reason.
	for _, in := range ins {
		switch in.op {
		case jvm.OpNative:
			return nil, &Bailout{Reason: "native-call:" + c.Consts[in.a].Str}
		case jvm.OpCall:
			return nil, &Bailout{Reason: "sibling-call:" + c.Methods[in.a].Name}
		case jvm.OpSConcat:
			return nil, &Bailout{Reason: "allocates:sconcat"}
		case jvm.OpBNew:
			return nil, &Bailout{Reason: "allocates:bnew"}
		case jvm.OpLdc:
			if c.Consts[in.a].Kind == jvm.ConstBytes {
				// The VM copies bytes constants per invocation and charges
				// the copy against the memory budget; the in-plan path
				// replicates neither.
				return nil, &Bailout{Reason: "allocates:bytes-const"}
			}
		default:
			if _, ok := depthDelta[in.op]; !ok {
				return nil, &Bailout{Reason: "unsupported-opcode:" + in.op.Name()}
			}
		}
	}

	depth, hasLoop, err := stackDepths(c, m, ins)
	if err != nil {
		return nil, err
	}
	if hasLoop && lim.Fuel <= 0 {
		return nil, &Bailout{Reason: "loop-without-fuel-limit"}
	}

	nLocals := len(m.Locals)
	p := &Program{
		class:   c.Name,
		method:  m.Name,
		params:  m.Params,
		ret:     m.Return,
		nLocals: nLocals,
		nRegs:   nLocals + m.MaxStack,
		ops:     make([]rop, len(ins)),
		fuel:    fuelBudget(lim),
		hasLoop: hasLoop,
	}
	L := int32(nLocals)
	for i, in := range ins {
		d := int32(depth[i])
		// Register naming: operand-stack slot k lives in register L+k.
		// s(d-1) is the top of stack on entry to this instruction.
		top := L + d - 1
		r := rop{op: in.op}
		switch in.op {
		case jvm.OpNop, jvm.OpPop:
			// Pop only shrinks the static depth; nothing moves.
		case jvm.OpLdc:
			k := c.Consts[in.a]
			r.a = L + d
			switch k.Kind {
			case jvm.ConstInt:
				r.val = jvm.IntVal(k.Int)
			case jvm.ConstFloat:
				r.val = jvm.FloatVal(k.Float)
			case jvm.ConstStr:
				r.val = jvm.StrVal(k.Str)
			}
		case jvm.OpIConst0:
			r.op, r.a, r.val = jvm.OpLdc, L+d, jvm.IntVal(0)
		case jvm.OpIConst1:
			r.op, r.a, r.val = jvm.OpLdc, L+d, jvm.IntVal(1)
		case jvm.OpDup:
			// A copy is just a register move, like OpLoad.
			r.op, r.a, r.b = jvm.OpLoad, L+d, top
		case jvm.OpLoad:
			r.a, r.b = L+d, in.a
		case jvm.OpStore:
			r.op, r.a, r.b = jvm.OpLoad, in.a, top
		case jvm.OpSwap:
			r.a, r.b = top, top-1
		case jvm.OpIAdd, jvm.OpISub, jvm.OpIMul, jvm.OpIDiv, jvm.OpIMod,
			jvm.OpFAdd, jvm.OpFSub, jvm.OpFMul, jvm.OpFDiv,
			jvm.OpIEq, jvm.OpINe, jvm.OpILt, jvm.OpILe, jvm.OpIGt, jvm.OpIGe,
			jvm.OpFEq, jvm.OpFNe, jvm.OpFLt, jvm.OpFLe, jvm.OpFGt, jvm.OpFGe,
			jvm.OpSEq, jvm.OpBEq, jvm.OpBGet:
			r.a, r.b, r.c = top-1, top-1, top
		case jvm.OpINeg, jvm.OpFNeg, jvm.OpI2F, jvm.OpF2I,
			jvm.OpNot, jvm.OpSLen, jvm.OpBLen:
			r.a, r.b = top, top
		case jvm.OpBSet:
			// arr idx val, pushed in that order: arr at top-2.
			r.a, r.b, r.c = top-2, top-1, top
		case jvm.OpJmp:
			r.a = in.a
		case jvm.OpJmpZ, jvm.OpJmpN:
			r.a, r.b = in.a, top
		case jvm.OpRet:
			r.b = top
		}
		p.ops[i] = r
	}
	return p, nil
}

// decode pre-decodes a method's code, rewriting jump byte offsets into
// instruction indexes — the same two-pass scheme the class loader
// uses. The class is verified, so operand bounds and jump targets are
// already known good; errors here are defensive.
func decode(c *jvm.Class, m *jvm.Method) ([]decoded, error) {
	byteToIdx := make(map[int]int32)
	pc := 0
	for pc < len(m.Code) {
		op := jvm.Opcode(m.Code[pc])
		byteToIdx[pc] = int32(len(byteToIdx))
		pc += 1 + op.OperandBytes()
	}
	var ins []decoded
	pc = 0
	for pc < len(m.Code) {
		op := jvm.Opcode(m.Code[pc])
		in := decoded{op: op}
		next := pc + 1 + op.OperandBytes()
		switch op {
		case jvm.OpLdc, jvm.OpLoad, jvm.OpStore, jvm.OpCall:
			in.a = int32(u16(m.Code[pc+1:]))
		case jvm.OpJmp, jvm.OpJmpZ, jvm.OpJmpN:
			rel := int32(u32(m.Code[pc+1:]))
			idx, ok := byteToIdx[next+int(rel)]
			if !ok {
				return nil, fmt.Errorf("inline: %s.%s: jump target %d is not an instruction", c.Name, m.Name, next+int(rel))
			}
			in.a = idx
		case jvm.OpNative:
			in.a = int32(u16(m.Code[pc+1:]))
			in.argc = int32(m.Code[pc+3])
		}
		ins = append(ins, in)
		pc = next
	}
	return ins, nil
}

func u16(b []byte) uint16 { return uint16(b[0]) | uint16(b[1])<<8 }

func u32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// stackDepths computes the operand-stack depth at the entry of every
// instruction by worklist propagation, and reports whether any jump
// goes backward (a loop). The verifier has already proven the depths
// consistent at joins; the re-check here is defensive — a mismatch
// means a verifier bug, and translation refuses rather than guessing.
func stackDepths(c *jvm.Class, m *jvm.Method, ins []decoded) (depth []int, hasLoop bool, err error) {
	const unknown = -1
	depth = make([]int, len(ins))
	for i := range depth {
		depth[i] = unknown
	}
	depth[0] = 0
	work := []int{0}
	flow := func(from, to, d int) error {
		if to < 0 || to >= len(ins) {
			return fmt.Errorf("inline: %s.%s: jump to op %d out of range", c.Name, m.Name, to)
		}
		if to <= from {
			hasLoop = true
		}
		if depth[to] == unknown {
			depth[to] = d
			work = append(work, to)
		} else if depth[to] != d {
			return fmt.Errorf("inline: %s.%s: inconsistent stack depth at op %d (%d vs %d)", c.Name, m.Name, to, depth[to], d)
		}
		return nil
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		in := ins[i]
		d := depth[i] + depthDelta[in.op]
		switch in.op {
		case jvm.OpRet:
			continue
		case jvm.OpJmp:
			if err := flow(i, int(in.a), d); err != nil {
				return nil, false, err
			}
		case jvm.OpJmpZ, jvm.OpJmpN:
			if err := flow(i, int(in.a), d); err != nil {
				return nil, false, err
			}
			if err := flow(i, i+1, d); err != nil {
				return nil, false, err
			}
		default:
			if err := flow(i, i+1, d); err != nil {
				return nil, false, err
			}
		}
	}
	return depth, hasLoop, nil
}
