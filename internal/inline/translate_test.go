package inline_test

import (
	"strings"
	"testing"

	"predator/internal/inline"
	"predator/internal/jaguar"
	"predator/internal/jvm"
)

func compile(t testing.TB, src string) *jvm.Class {
	t.Helper()
	c, err := jaguar.Compile(src, "T")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return c
}

func translate(t testing.TB, src, method string, lim jvm.Limits) *inline.Program {
	t.Helper()
	p, err := inline.Translate(compile(t, src), method, lim)
	if err != nil {
		t.Fatalf("translate %s: %v", method, err)
	}
	return p
}

// TestBailoutTaxonomy pins the reasons untranslatable bodies report:
// the same strings surface in EXPLAIN and SHOW UDFS.
func TestBailoutTaxonomy(t *testing.T) {
	cases := []struct {
		name   string
		src    string
		method string
		lim    jvm.Limits
		reason string // prefix
	}{
		{"native-call", `func f(a int) int { return cb_touch(a); }`, "f", jvm.Limits{}, "native-call:cb.touch"},
		{"sibling-call", `func g(a int) int { return a + 1; } func f(a int) int { return g(a); }`, "f", jvm.Limits{}, "sibling-call:g"},
		{"bnew", `func f(n int) int { var b bytes = bnew(n); return len(b); }`, "f", jvm.Limits{}, "allocates:bnew"},
		{"sconcat", `func f(s str) int { return len(s + "x"); }`, "f", jvm.Limits{}, "allocates:sconcat"},
		{"loop-no-fuel", `func f(n int) int { var acc int = 0; while (acc < n) { acc = acc + 1; } return acc; }`, "f", jvm.Limits{}, "loop-without-fuel-limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := inline.Translate(compile(t, tc.src), tc.method, tc.lim)
			if err == nil {
				t.Fatalf("translated, want bailout %q", tc.reason)
			}
			var b *inline.Bailout
			if !asBailout(err, &b) {
				t.Fatalf("error %v is not a Bailout", err)
			}
			if !strings.HasPrefix(b.Reason, tc.reason) {
				t.Fatalf("reason = %q, want prefix %q", b.Reason, tc.reason)
			}
			if inline.ReasonOf(err) != b.Reason {
				t.Fatalf("ReasonOf mismatch: %q vs %q", inline.ReasonOf(err), b.Reason)
			}
		})
	}
}

func asBailout(err error, out **inline.Bailout) bool {
	b, ok := err.(*inline.Bailout)
	if ok {
		*out = b
	}
	return ok
}

// TestLoopTranslatesUnderFuel: the same loop that bails without a fuel
// limit translates (and is flagged) once fuel bounds it.
func TestLoopTranslatesUnderFuel(t *testing.T) {
	src := `func f(n int) int { var acc int = 0; var i int = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }`
	p := translate(t, src, "f", jvm.Limits{Fuel: 100000})
	if !p.HasLoop() {
		t.Fatal("HasLoop = false for a while loop")
	}
	regs := p.NewRegs()
	out, err := p.Run(regs, []jvm.Value{jvm.IntVal(100)})
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 4950 {
		t.Fatalf("sum(100) = %d, want 4950", out.I)
	}
}

// TestStraightLineNeedsNoFuel: bodies without backward jumps translate
// under unlimited fuel — termination is structural.
func TestStraightLineNeedsNoFuel(t *testing.T) {
	src := `func f(a int, b int) int { if (a > b) { return a - b; } return b - a; }`
	p := translate(t, src, "f", jvm.Limits{})
	if p.HasLoop() {
		t.Fatal("HasLoop = true for straight-line code")
	}
	out, err := p.Run(p.NewRegs(), []jvm.Value{jvm.IntVal(3), jvm.IntVal(10)})
	if err != nil || out.I != 7 {
		t.Fatalf("f(3,10) = %v, %v; want 7", out, err)
	}
}

// TestRegisterReuseClearsLocals: a reused register file must not leak
// one row's locals into the next — uninitialized locals read as the
// VM's zero value every run. The method is hand-assembled because the
// Jaguar compiler always initializes declared variables.
func TestRegisterReuseClearsLocals(t *testing.T) {
	code := jvm.NewAssembler().
		EmitU16(jvm.OpLoad, 1). // local 1 is never stored: VM zero
		Emit(jvm.OpRet).
		MustBytes()
	c := &jvm.Class{Name: "Z", Methods: []jvm.Method{{
		Name: "f", Params: []jvm.VType{jvm.TInt}, Locals: []jvm.VType{jvm.TInt, jvm.TInt},
		Return: jvm.TInt, MaxStack: 1, Code: code,
	}}}
	p, err := inline.Translate(c, "f", jvm.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	regs := p.NewRegs()
	for i := range regs {
		regs[i] = jvm.IntVal(999) // poison: simulate a previous row
	}
	out, err := p.Run(regs, []jvm.Value{jvm.IntVal(1)})
	if err != nil {
		t.Fatal(err)
	}
	if out.I != 0 {
		t.Fatalf("uninitialized local read %d, want the VM zero 0", out.I)
	}
}

// TestTranslateRejectsUnverifiable: Translate must not trust its
// input; a class that fails verification is rejected outright.
func TestTranslateRejectsUnverifiable(t *testing.T) {
	code := jvm.NewAssembler().Emit(jvm.OpIAdd).Emit(jvm.OpRet).MustBytes() // underflow
	c := &jvm.Class{Name: "Bad", Methods: []jvm.Method{{
		Name: "f", Params: nil, Locals: nil, Return: jvm.TInt, MaxStack: 2, Code: code,
	}}}
	if _, err := inline.Translate(c, "f", jvm.Limits{}); err == nil {
		t.Fatal("translated an unverifiable class")
	}
}

// TestProgramShape sanity-checks the 1:1 instruction mapping the fuel
// parity rests on: op count equals the bytecode instruction count.
func TestProgramShape(t *testing.T) {
	src := `func f(a int, b int) int { return a * 3 + b; }`
	c := compile(t, src)
	p := translate(t, src, "f", jvm.Limits{})
	m := c.Methods[c.MethodIndex("f")]
	n := 0
	for pc := 0; pc < len(m.Code); pc += 1 + jvm.Opcode(m.Code[pc]).OperandBytes() {
		n++
	}
	if p.NumOps() != n {
		t.Fatalf("NumOps = %d, bytecode has %d instructions", p.NumOps(), n)
	}
	if p.NumParams() != 2 || p.Return() != jvm.TInt {
		t.Fatalf("signature %d args -> %v", p.NumParams(), p.Return())
	}
}
