package inline

import (
	"fmt"
	"math"

	"predator/internal/jvm"
)

// Run evaluates the program over args. regs is the caller's register
// scratch (len >= NumRegs(), reused across rows — Run never
// allocates on the success path). The semantics, including the traps
// and the per-instruction fuel charge, are byte-identical to the VM
// interpreter running the same bytecode: one fuel unit is consumed
// before each op, integer division by zero traps, MinInt64/-1 wraps
// like Java, and every byte-array access is bounds-checked.
//
// Locals beyond the parameters are cleared to the VM's zero value
// before execution, so register reuse across rows can never leak one
// row's state into the next.
func (p *Program) Run(regs []jvm.Value, args []jvm.Value) (jvm.Value, error) {
	if len(args) != len(p.params) {
		return jvm.Value{}, fmt.Errorf("inline: %s takes %d args, got %d", p.Name(), len(p.params), len(args))
	}
	copy(regs, args)
	for i := len(args); i < p.nLocals; i++ {
		regs[i] = jvm.Value{}
	}
	fuel := p.fuel
	ops := p.ops
	ip := 0
	for {
		fuel--
		if fuel < 0 {
			return jvm.Value{}, p.trap(jvm.TrapFuel, "instruction budget exhausted")
		}
		in := &ops[ip]
		ip++
		switch in.op {
		case jvm.OpNop, jvm.OpPop:
			// Pop only shrinks the translator's static depth: the value
			// stays in its register and is simply never read again.
		case jvm.OpLdc:
			regs[in.a] = in.val
		case jvm.OpLoad: // also Dup and Store: a plain register move
			regs[in.a] = regs[in.b]
		case jvm.OpSwap:
			regs[in.a], regs[in.b] = regs[in.b], regs[in.a]
		case jvm.OpIAdd:
			regs[in.a] = jvm.IntVal(regs[in.b].I + regs[in.c].I)
		case jvm.OpISub:
			regs[in.a] = jvm.IntVal(regs[in.b].I - regs[in.c].I)
		case jvm.OpIMul:
			regs[in.a] = jvm.IntVal(regs[in.b].I * regs[in.c].I)
		case jvm.OpIDiv:
			d := regs[in.c].I
			if d == 0 {
				return jvm.Value{}, p.trap(jvm.TrapDivZero, "integer division by zero")
			}
			n := regs[in.b].I
			if n == math.MinInt64 && d == -1 {
				// Wrap like Java (and the VM): MinInt64 / -1 = MinInt64.
				regs[in.a] = jvm.IntVal(n)
			} else {
				regs[in.a] = jvm.IntVal(n / d)
			}
		case jvm.OpIMod:
			d := regs[in.c].I
			if d == 0 {
				return jvm.Value{}, p.trap(jvm.TrapDivZero, "integer modulo by zero")
			}
			n := regs[in.b].I
			if n == math.MinInt64 && d == -1 {
				regs[in.a] = jvm.IntVal(0)
			} else {
				regs[in.a] = jvm.IntVal(n % d)
			}
		case jvm.OpINeg:
			regs[in.a] = jvm.IntVal(-regs[in.b].I)
		case jvm.OpFAdd:
			regs[in.a] = jvm.FloatVal(regs[in.b].F + regs[in.c].F)
		case jvm.OpFSub:
			regs[in.a] = jvm.FloatVal(regs[in.b].F - regs[in.c].F)
		case jvm.OpFMul:
			regs[in.a] = jvm.FloatVal(regs[in.b].F * regs[in.c].F)
		case jvm.OpFDiv:
			regs[in.a] = jvm.FloatVal(regs[in.b].F / regs[in.c].F)
		case jvm.OpFNeg:
			regs[in.a] = jvm.FloatVal(-regs[in.b].F)
		case jvm.OpI2F:
			regs[in.a] = jvm.FloatVal(float64(regs[in.b].I))
		case jvm.OpF2I:
			regs[in.a] = jvm.IntVal(int64(regs[in.b].F))
		case jvm.OpIEq:
			regs[in.a] = boolVal(regs[in.b].I == regs[in.c].I)
		case jvm.OpINe:
			regs[in.a] = boolVal(regs[in.b].I != regs[in.c].I)
		case jvm.OpILt:
			regs[in.a] = boolVal(regs[in.b].I < regs[in.c].I)
		case jvm.OpILe:
			regs[in.a] = boolVal(regs[in.b].I <= regs[in.c].I)
		case jvm.OpIGt:
			regs[in.a] = boolVal(regs[in.b].I > regs[in.c].I)
		case jvm.OpIGe:
			regs[in.a] = boolVal(regs[in.b].I >= regs[in.c].I)
		case jvm.OpFEq:
			regs[in.a] = boolVal(regs[in.b].F == regs[in.c].F)
		case jvm.OpFNe:
			regs[in.a] = boolVal(regs[in.b].F != regs[in.c].F)
		case jvm.OpFLt:
			regs[in.a] = boolVal(regs[in.b].F < regs[in.c].F)
		case jvm.OpFLe:
			regs[in.a] = boolVal(regs[in.b].F <= regs[in.c].F)
		case jvm.OpFGt:
			regs[in.a] = boolVal(regs[in.b].F > regs[in.c].F)
		case jvm.OpFGe:
			regs[in.a] = boolVal(regs[in.b].F >= regs[in.c].F)
		case jvm.OpSEq:
			regs[in.a] = boolVal(regs[in.b].S == regs[in.c].S)
		case jvm.OpSLen:
			regs[in.a] = jvm.IntVal(int64(len(regs[in.b].S)))
		case jvm.OpBLen:
			regs[in.a] = jvm.IntVal(int64(len(regs[in.b].B)))
		case jvm.OpBGet:
			arr, idx := regs[in.b].B, regs[in.c].I
			if idx < 0 || idx >= int64(len(arr)) {
				return jvm.Value{}, p.trap(jvm.TrapBounds, "bget index %d out of range [0,%d)", idx, len(arr))
			}
			regs[in.a] = jvm.IntVal(int64(arr[idx]))
		case jvm.OpBSet:
			arr, idx, val := regs[in.a].B, regs[in.b].I, regs[in.c].I
			if idx < 0 || idx >= int64(len(arr)) {
				return jvm.Value{}, p.trap(jvm.TrapBounds, "bset index %d out of range [0,%d)", idx, len(arr))
			}
			arr[idx] = byte(val) // truncate like a Java byte store
		case jvm.OpNot:
			regs[in.a] = boolVal(regs[in.b].I == 0)
		case jvm.OpJmp:
			ip = int(in.a)
		case jvm.OpJmpZ:
			if regs[in.b].I == 0 {
				ip = int(in.a)
			}
		case jvm.OpJmpN:
			if regs[in.b].I != 0 {
				ip = int(in.a)
			}
		case jvm.OpRet:
			return regs[in.b], nil
		default:
			return jvm.Value{}, p.trap(jvm.TrapValue, "unhandled op %s", in.op.Name())
		}
	}
}

// trap builds a *jvm.Trap identical to what the VM interpreter raises
// for the same failure, so callers (and tests) observe one error
// shape regardless of where the bytecode ran.
func (p *Program) trap(kind jvm.TrapKind, format string, args ...any) error {
	return &jvm.Trap{Kind: kind, Class: p.class, Method: p.method, Detail: fmt.Sprintf(format, args...)}
}

func boolVal(b bool) jvm.Value {
	if b {
		return jvm.IntVal(1)
	}
	return jvm.IntVal(0)
}
