package inline_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"predator/internal/inline"
	"predator/internal/jaguar"
	"predator/internal/jvm"
)

// The differential harness: every program in the corpus is executed
// by the VM (the reference semantics) and by the translated register
// program over the same inputs, and the outcomes must be identical —
// same value on success (bit-exact for floats, content and aliasing
// for bytes), same trap kind/class/method/detail on failure, at the
// same instruction count when fuel is constrained.

func load(t testing.TB, c *jvm.Class) *jvm.LoadedClass {
	t.Helper()
	lc, err := jvm.New(jvm.Options{}).NewLoader("diff").LoadClass(c)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return lc
}

func cloneArgs(args []jvm.Value) []jvm.Value {
	out := make([]jvm.Value, len(args))
	for i, a := range args {
		out[i] = a
		if a.T == jvm.TBytes {
			b := make([]byte, len(a.B))
			copy(b, a.B)
			out[i].B = b
		}
	}
	return out
}

// diffOne runs both engines on one input and fails the test on any
// observable divergence.
func diffOne(t *testing.T, lc *jvm.LoadedClass, p *inline.Program, regs []jvm.Value, method string, args []jvm.Value, lim jvm.Limits) {
	t.Helper()
	vmArgs, inArgs := cloneArgs(args), cloneArgs(args)
	// ForceInterpreter: the switch interpreter is the reference
	// semantics the translator replicates (the JIT is itself an
	// optimization over it, with coarser fuel accounting).
	want, _, vmErr := lc.Call(method, vmArgs, &jvm.CallOptions{Limits: lim, ForceInterpreter: true})
	got, inErr := p.Run(regs, inArgs)

	label := fmt.Sprintf("%s(%v)", method, args)
	if (vmErr == nil) != (inErr == nil) {
		t.Fatalf("%s: vm err = %v, inline err = %v", label, vmErr, inErr)
	}
	if vmErr != nil {
		var vt, it *jvm.Trap
		if !errors.As(vmErr, &vt) || !errors.As(inErr, &it) {
			t.Fatalf("%s: non-trap errors: vm %v, inline %v", label, vmErr, inErr)
		}
		if *vt != *it {
			t.Fatalf("%s: trap mismatch: vm %+v, inline %+v", label, vt, it)
		}
		return
	}
	if want.T != got.T {
		t.Fatalf("%s: type mismatch: vm %s, inline %s", label, want.T, got.T)
	}
	switch want.T {
	case jvm.TInt:
		if want.I != got.I {
			t.Fatalf("%s: vm %d, inline %d", label, want.I, got.I)
		}
	case jvm.TFloat:
		if math.Float64bits(want.F) != math.Float64bits(got.F) {
			t.Fatalf("%s: vm %v, inline %v (bit-exact compare)", label, want.F, got.F)
		}
	case jvm.TStr:
		if want.S != got.S {
			t.Fatalf("%s: vm %q, inline %q", label, want.S, got.S)
		}
	case jvm.TBytes:
		if string(want.B) != string(got.B) {
			t.Fatalf("%s: vm %v, inline %v", label, want.B, got.B)
		}
	}
	// Side effects: mutations through bytes arguments must match too
	// (both engines share the argument array by reference).
	for i := range vmArgs {
		if vmArgs[i].T == jvm.TBytes && string(vmArgs[i].B) != string(inArgs[i].B) {
			t.Fatalf("%s: bytes arg %d mutated differently: vm %v, inline %v", label, i, vmArgs[i].B, inArgs[i].B)
		}
	}
}

var intEdges = []int64{0, 1, -1, 2, 7, 63, -100, 1000003, math.MaxInt64, math.MinInt64, math.MinInt64 + 1}

// TestDifferentialCorpus: translatable Jaguar bodies, run over the
// edge-value cross product. Covers arithmetic (overflow, MinInt64
// division wrap, div/mod-by-zero traps), comparisons, if/else chains,
// fuel-bounded loops, floats (bit-exact, Inf/NaN), strings, and
// bounds-checked bytes access.
func TestDifferentialCorpus(t *testing.T) {
	lim := jvm.Limits{Fuel: 100000}
	cases := []struct {
		name   string
		src    string
		method string
		args   func() [][]jvm.Value
	}{
		{"arith", `func f(a int, b int) int { return (a * 3 + b) - a % 7; }`, "f", intPairs},
		{"div-traps", `func f(a int, b int) int { return a / b + a % b; }`, "f", intPairs},
		{"overflow", `func f(a int, b int) int { return a * b + a + b; }`, "f", intPairs},
		{"minint-wrap", `func f(a int, b int) int { return a / b; }`, "f", func() [][]jvm.Value {
			return [][]jvm.Value{
				{jvm.IntVal(math.MinInt64), jvm.IntVal(-1)},
				{jvm.IntVal(math.MinInt64), jvm.IntVal(1)},
				{jvm.IntVal(math.MinInt64), jvm.IntVal(0)},
			}
		}},
		{"minint-mod", `func f(a int, b int) int { return a % b; }`, "f", func() [][]jvm.Value {
			return [][]jvm.Value{{jvm.IntVal(math.MinInt64), jvm.IntVal(-1)}}
		}},
		{"ifelse", `func f(x int, y int) int {
			if (x >= 90) { return 4; } else if (x >= y) { return 3; } else if (x + y > 10) { return 2; } else { return x - y; }
		}`, "f", intPairs},
		{"bool-ret", `func f(a int, b int) bool { if (a > b) { return a - b > 3; } return b - a < 10; }`, "f", intPairs},
		{"loop", `func f(n int, step int) int {
			var acc int = 0;
			for (var i int = 0; i < n; i = i + step) { acc = acc + i * i; if (acc > 100000) { break; } }
			return acc;
		}`, "f", func() [][]jvm.Value {
			var out [][]jvm.Value
			for _, n := range []int64{0, 1, 10, 100} {
				for _, s := range []int64{1, 3, 7} {
					out = append(out, []jvm.Value{jvm.IntVal(n), jvm.IntVal(s)})
				}
			}
			return out
		}},
		{"floats", `func f(x float, y float) float {
			var z float = x * y - 2.5;
			if (z < 0.0) { z = -z; }
			return z / (y + 1.0);
		}`, "f", func() [][]jvm.Value {
			edges := []float64{0, 1, -1, 2.5, -3.75, 1e300, -1e300, math.MaxFloat64}
			var out [][]jvm.Value
			for _, a := range edges {
				for _, b := range edges {
					out = append(out, []jvm.Value{jvm.FloatVal(a), jvm.FloatVal(b)})
				}
			}
			// y = -1.0 divides by zero: IEEE Inf/NaN, not a trap.
			out = append(out, []jvm.Value{jvm.FloatVal(5), jvm.FloatVal(-1)})
			out = append(out, []jvm.Value{jvm.FloatVal(0), jvm.FloatVal(-1)})
			return out
		}},
		{"float-int-casts", `func f(a int, b int) int { return int(float(a) / 4.0 + float(b) * 0.5); }`, "f", intPairs},
		{"strings", `func f(s str, p str) int { if (s == p) { return len(s); } return len(s) - len(p); }`, "f", func() [][]jvm.Value {
			ss := []string{"", "a", "abc", "abd", "longer string value"}
			var out [][]jvm.Value
			for _, a := range ss {
				for _, b := range ss {
					out = append(out, []jvm.Value{jvm.StrVal(a), jvm.StrVal(b)})
				}
			}
			return out
		}},
		{"bytes", `func f(y bytes, i int) int { y[i] = y[i] * 2 + 1; return y[i] + len(y); }`, "f", func() [][]jvm.Value {
			var out [][]jvm.Value
			for _, i := range []int64{0, 2, 3, -1, 100} { // 3, -1, 100 trap on the 3-byte array
				out = append(out, []jvm.Value{jvm.BytesVal([]byte{10, 200, 30}), jvm.IntVal(i)})
			}
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := compile(t, tc.src)
			lc := load(t, c)
			p, err := inline.Translate(c, tc.method, lim)
			if err != nil {
				t.Fatalf("translate: %v", err)
			}
			regs := p.NewRegs()
			for _, args := range tc.args() {
				diffOne(t, lc, p, regs, tc.method, args, lim)
			}
		})
	}
}

func intPairs() [][]jvm.Value {
	var out [][]jvm.Value
	for _, a := range intEdges {
		for _, b := range intEdges {
			out = append(out, []jvm.Value{jvm.IntVal(a), jvm.IntVal(b)})
		}
	}
	return out
}

// TestDifferentialHandAssembled covers stack-manipulation opcodes the
// Jaguar compiler rarely emits (dup, swap, pop, nop): the translator
// must honor them because nothing stops hand-built classes from using
// them.
func TestDifferentialHandAssembled(t *testing.T) {
	lim := jvm.Limits{Fuel: 1000}
	cases := []struct {
		name string
		m    jvm.Method
	}{
		{"dup-square", jvm.Method{
			Name: "f", Params: []jvm.VType{jvm.TInt}, Locals: []jvm.VType{jvm.TInt},
			Return: jvm.TInt, MaxStack: 2,
			Code: jvm.NewAssembler().
				EmitU16(jvm.OpLoad, 0).Emit(jvm.OpDup).Emit(jvm.OpIMul).
				Emit(jvm.OpRet).MustBytes(),
		}},
		{"swap-sub", jvm.Method{
			Name: "f", Params: []jvm.VType{jvm.TInt, jvm.TInt}, Locals: []jvm.VType{jvm.TInt, jvm.TInt},
			Return: jvm.TInt, MaxStack: 2,
			Code: jvm.NewAssembler().
				EmitU16(jvm.OpLoad, 0).EmitU16(jvm.OpLoad, 1).Emit(jvm.OpSwap).Emit(jvm.OpISub).
				Emit(jvm.OpRet).MustBytes(),
		}},
		{"pop-nop", jvm.Method{
			Name: "f", Params: []jvm.VType{jvm.TInt}, Locals: []jvm.VType{jvm.TInt},
			Return: jvm.TInt, MaxStack: 2,
			Code: jvm.NewAssembler().
				EmitU16(jvm.OpLoad, 0).Emit(jvm.OpIConst1).Emit(jvm.OpPop).Emit(jvm.OpNop).
				Emit(jvm.OpINeg).Emit(jvm.OpRet).MustBytes(),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := &jvm.Class{Name: "H", Methods: []jvm.Method{tc.m}}
			lc := load(t, c)
			p, err := inline.Translate(c, "f", lim)
			if err != nil {
				t.Fatal(err)
			}
			regs := p.NewRegs()
			for _, a := range intEdges {
				args := []jvm.Value{jvm.IntVal(a)}
				if len(tc.m.Params) == 2 {
					args = append(args, jvm.IntVal(a/3+1))
				}
				diffOne(t, lc, p, regs, "f", args, lim)
			}
		})
	}
}

// TestFuelParity pins the 1:1 instruction accounting: for every fuel
// budget from 1 up to just past the program's full instruction count,
// the VM and the inlined program must agree on trap-vs-success and on
// the result. An off-by-one here would let inlined UDFs run past (or
// trap before) the budget operators configured.
func TestFuelParity(t *testing.T) {
	src := `func f(n int) int {
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) { if (i % 3 == 0) { acc = acc + i; } else { acc = acc - 1; } }
		return acc;
	}`
	c := compile(t, src)
	lc := load(t, c)
	args := []jvm.Value{jvm.IntVal(25)}
	_, usage, err := lc.Call("f", cloneArgs(args), &jvm.CallOptions{ForceInterpreter: true})
	if err != nil {
		t.Fatal(err)
	}
	if usage.Instructions < 50 {
		t.Fatalf("test program too small (%d instructions) to exercise fuel parity", usage.Instructions)
	}
	for fuel := int64(1); fuel <= usage.Instructions+2; fuel++ {
		lim := jvm.Limits{Fuel: fuel}
		p, err := inline.Translate(c, "f", lim)
		if err != nil {
			t.Fatal(err)
		}
		diffOne(t, lc, p, p.NewRegs(), "f", args, lim)
	}
}

// TestDifferentialFuzz is the randomized variant: generated arithmetic
// /comparison bodies over random and edge inputs, inlined vs VM. The
// seed is fixed for reproducibility; the generator favors division and
// modulo so trap paths are exercised, not just happy paths.
func TestDifferentialFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lim := jvm.Limits{Fuel: 10000}
	for round := 0; round < 60; round++ {
		src := fmt.Sprintf(
			`func f(a int, b int, c int) int { var t int = %s; if (t %s %s) { t = %s; } return t; }`,
			genExpr(rng, 4), []string{"<", ">", "==", "<=", ">=", "!="}[rng.Intn(6)], genExpr(rng, 2),
			genExpr(rng, 3))
		c, err := jaguar.Compile(src, "Fz")
		if err != nil {
			t.Fatalf("round %d: compile %q: %v", round, src, err)
		}
		lc := load(t, c)
		p, err := inline.Translate(c, "f", lim)
		if err != nil {
			t.Fatalf("round %d: translate %q: %v", round, src, err)
		}
		regs := p.NewRegs()
		for trial := 0; trial < 40; trial++ {
			args := []jvm.Value{randInt(rng), randInt(rng), randInt(rng)}
			tSrc := src
			t.Run("", func(t *testing.T) { _ = tSrc; diffOne(t, lc, p, regs, "f", args, lim) })
		}
	}
}

func randInt(rng *rand.Rand) jvm.Value {
	if rng.Intn(3) == 0 {
		return jvm.IntVal(intEdges[rng.Intn(len(intEdges))])
	}
	return jvm.IntVal(rng.Int63n(2001) - 1000)
}

// genExpr builds a random Jaguar int expression over a, b, c.
func genExpr(rng *rand.Rand, depth int) string {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(4) {
		case 0:
			return "a"
		case 1:
			return "b"
		case 2:
			return "c"
		default:
			return fmt.Sprintf("%d", rng.Int63n(41)-20)
		}
	}
	ops := []string{"+", "-", "*", "/", "%", "/", "%"}
	return fmt.Sprintf("(%s %s %s)", genExpr(rng, depth-1), ops[rng.Intn(len(ops))], genExpr(rng, depth-1))
}
