// Package client is the PREDATOR-Go client library — the analog of the
// paper's Java applet library / JDBC-ish driver (§6.4). Beyond issuing
// SQL over the wire, it supports the portable-UDF workflow:
//
//  1. compile a Jaguar UDF locally from source,
//  2. test it locally in the client's own Jaguar VM (same verified
//     bytecode, same stream interfaces the server uses),
//  3. migrate it to the server by uploading the class bytes, where it
//     is re-verified and registered.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"predator/internal/jaguar"
	"predator/internal/jvm"
	"predator/internal/types"
	"predator/internal/wire"
)

// Client is a connection to a PREDATOR-Go server. Methods serialize:
// the protocol is strict request/response.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	c    *wire.Conn
	vm   *jvm.VM // client-side VM for local UDF testing
}

// Result mirrors the server's statement result.
type Result struct {
	Schema       *types.Schema
	Rows         []types.Row
	RowsAffected int64
	Message      string
	Plan         string
}

// Dial connects and performs the hello handshake.
func Dial(addr, user string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w", addr, err)
	}
	cl := &Client{
		conn: conn,
		c:    wire.NewConn(conn),
		vm:   jvm.New(jvm.Options{Security: jvm.DefaultPolicy()}),
	}
	w := &wire.Writer{}
	w.Str(user)
	if err := cl.c.Send(wire.MsgHello, w.Buf); err != nil {
		conn.Close()
		return nil, err
	}
	typ, payload, err := cl.c.Recv()
	if err != nil {
		conn.Close()
		return nil, err
	}
	if typ != wire.MsgOK {
		conn.Close()
		return nil, decodeError(typ, payload)
	}
	return cl, nil
}

// Close ends the session.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	_ = cl.c.Send(wire.MsgQuit, nil)
	return cl.conn.Close()
}

// ServerError is a typed server-side failure. Code is the server's
// fault classification ("overload", "quota", "timeout", ...; empty for
// unclassified errors and pre-flags servers), and Retryable reports
// whether the statement can be resubmitted as-is after backing off.
type ServerError struct {
	Msg       string
	Code      string
	Retryable bool
}

// Error implements error.
func (e *ServerError) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("client: server error [%s]: %s", e.Code, e.Msg)
	}
	return "client: server error: " + e.Msg
}

// IsRetryable reports whether err is a server error that is safe to
// retry as-is (admission shed, statement-timeout kill).
func IsRetryable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Retryable
}

func decodeError(typ byte, payload []byte) error {
	if typ == wire.MsgError {
		msg, code, retryable := wire.DecodeError(payload)
		return &ServerError{Msg: msg, Code: code, Retryable: retryable}
	}
	return fmt.Errorf("client: unexpected response type 0x%02x", typ)
}

// Exec runs one SQL statement on the server.
func (cl *Client) Exec(sql string) (*Result, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	w := &wire.Writer{}
	w.Str(sql)
	if err := cl.c.Send(wire.MsgQuery, w.Buf); err != nil {
		return nil, err
	}
	typ, payload, err := cl.c.Recv()
	if err != nil {
		return nil, err
	}
	if typ != wire.MsgResult {
		return nil, decodeError(typ, payload)
	}
	schema, rows, affected, message, plan, err := wire.DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: schema, Rows: rows, RowsAffected: affected, Message: message, Plan: plan}, nil
}

// Ping checks liveness.
func (cl *Client) Ping() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if err := cl.c.Send(wire.MsgPing, nil); err != nil {
		return err
	}
	typ, payload, err := cl.c.Recv()
	if err != nil {
		return err
	}
	if typ != wire.MsgOK {
		return decodeError(typ, payload)
	}
	return nil
}

// PutObject registers a large object on the server for callback access
// and returns its handle.
func (cl *Client) PutObject(data []byte) (int64, error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	w := &wire.Writer{}
	w.Bytes(data)
	if err := cl.c.Send(wire.MsgPutObject, w.Buf); err != nil {
		return 0, err
	}
	typ, payload, err := cl.c.Recv()
	if err != nil {
		return 0, err
	}
	if typ != wire.MsgHandle {
		return 0, decodeError(typ, payload)
	}
	r := &wire.Reader{Buf: payload}
	h := r.Varint()
	return h, r.Err
}

// UDFSpec describes a portable UDF for compilation and registration.
type UDFSpec struct {
	// Name is the SQL function name; the Jaguar entry method must have
	// the same name unless Method is set.
	Name   string
	Method string
	Source string // Jaguar source
	Args   []types.Kind
	Return types.Kind
	// Isolated asks the server to run it in an executor process
	// (Design 4); default is the embedded VM (Design 3).
	Isolated bool
	// Persist stores the class in the server catalog across restarts.
	Persist bool
}

// Compile compiles the spec's source to verified class bytes without
// touching the server (step 1 of the migration workflow).
func (cl *Client) Compile(spec UDFSpec) ([]byte, error) {
	classBytes, err := jaguar.CompileToBytes(spec.Source, "udf_"+spec.Name)
	if err != nil {
		return nil, err
	}
	return classBytes, nil
}

// TestLocally loads the class bytes in the client's own VM and invokes
// the UDF with the given arguments (step 2: same bytecode, same
// verification, client-side execution). cb may be nil.
func (cl *Client) TestLocally(spec UDFSpec, classBytes []byte, args []types.Value, cb jvm.Callback) (types.Value, error) {
	loader := cl.vm.NewLoader("local:" + spec.Name)
	loader.Unload("udf_" + spec.Name)
	lc, err := loader.Load(classBytes)
	if err != nil {
		return types.Value{}, err
	}
	method := spec.Method
	if method == "" {
		method = spec.Name
	}
	vargs := make([]jvm.Value, len(args))
	for i, a := range args {
		v, err := jvm.ToVM(a)
		if err != nil {
			return types.Value{}, err
		}
		vargs[i] = v
	}
	ret, _, err := lc.Call(method, vargs, &jvm.CallOptions{Callback: cb})
	if err != nil {
		return types.Value{}, err
	}
	return jvm.FromVM(ret, spec.Return)
}

// Register uploads class bytes to the server (step 3: migration). The
// server re-verifies and installs them.
func (cl *Client) Register(spec UDFSpec, classBytes []byte) error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	method := spec.Method
	if method == "" {
		method = spec.Name
	}
	w := &wire.Writer{}
	w.Str(spec.Name)
	w.Str(method)
	w.Bytes(classBytes)
	w.Uvarint(uint64(len(spec.Args)))
	for _, k := range spec.Args {
		w.Byte(byte(k))
	}
	w.Byte(byte(spec.Return))
	if spec.Isolated {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	if spec.Persist {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
	if err := cl.c.Send(wire.MsgRegister, w.Buf); err != nil {
		return err
	}
	typ, payload, err := cl.c.Recv()
	if err != nil {
		return err
	}
	if typ != wire.MsgOK {
		return decodeError(typ, payload)
	}
	return nil
}

// CreateUDF is the one-call convenience: compile, then register.
func (cl *Client) CreateUDF(spec UDFSpec) error {
	classBytes, err := cl.Compile(spec)
	if err != nil {
		return err
	}
	return cl.Register(spec, classBytes)
}

// FetchClass downloads a registered portable UDF's class bytes (the
// server-to-client direction of §6.4: "the client can download Java
// classes from the server-site").
func (cl *Client) FetchClass(name string) (classBytes []byte, args []types.Kind, ret types.Kind, err error) {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	w := &wire.Writer{}
	w.Str(name)
	if err := cl.c.Send(wire.MsgFetchClass, w.Buf); err != nil {
		return nil, nil, 0, err
	}
	typ, payload, err := cl.c.Recv()
	if err != nil {
		return nil, nil, 0, err
	}
	if typ != wire.MsgClass {
		return nil, nil, 0, decodeError(typ, payload)
	}
	r := &wire.Reader{Buf: payload}
	_ = r.Str() // canonical name
	classBytes = r.Bytes()
	n := int(r.Uvarint())
	args = make([]types.Kind, n)
	for i := range args {
		args[i] = types.Kind(r.Byte())
	}
	ret = types.Kind(r.Byte())
	return classBytes, args, ret, r.Err
}
