package client

import (
	"net"
	"strings"
	"testing"

	"predator/internal/types"
	"predator/internal/wire"
)

// fakeServer accepts one connection and runs fn over it.
func fakeServer(t *testing.T, fn func(c *wire.Conn)) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		fn(wire.NewConn(conn))
	}()
	return ln.Addr().String()
}

// helloOK answers the handshake then delegates.
func helloOK(fn func(c *wire.Conn)) func(c *wire.Conn) {
	return func(c *wire.Conn) {
		typ, _, err := c.Recv()
		if err != nil || typ != wire.MsgHello {
			return
		}
		c.Send(wire.MsgOK, (&wire.Writer{}).Str("hi").Buf)
		fn(c)
	}
}

func TestDialRejectsNonOKHello(t *testing.T) {
	addr := fakeServer(t, func(c *wire.Conn) {
		c.Recv()
		c.Send(wire.MsgError, (&wire.Writer{}).Str("go away").Buf)
	})
	if _, err := Dial(addr, "x"); err == nil || !strings.Contains(err.Error(), "go away") {
		t.Errorf("err = %v", err)
	}
}

func TestDialFailsOnClosedPort(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Dial(addr, "x"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestExecUnexpectedResponseType(t *testing.T) {
	addr := fakeServer(t, helloOK(func(c *wire.Conn) {
		c.Recv()
		c.Send(wire.MsgHandle, (&wire.Writer{}).Varint(1).Buf) // wrong type
	}))
	cl, err := Dial(addr, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("SELECT 1 FROM t"); err == nil ||
		!strings.Contains(err.Error(), "unexpected response") {
		t.Errorf("err = %v", err)
	}
}

func TestExecCorruptResultPayload(t *testing.T) {
	addr := fakeServer(t, helloOK(func(c *wire.Conn) {
		c.Recv()
		c.Send(wire.MsgResult, []byte{1, 0xFF}) // claims schema, truncated
	}))
	cl, err := Dial(addr, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("SELECT 1 FROM t"); err == nil {
		t.Error("corrupt result accepted")
	}
}

func TestExecServerDisconnectMidRequest(t *testing.T) {
	addr := fakeServer(t, helloOK(func(c *wire.Conn) {
		// Read the query then vanish without replying.
		c.Recv()
	}))
	cl, err := Dial(addr, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Exec("SELECT 1 FROM t"); err == nil {
		t.Error("disconnect mid-request not reported")
	}
}

func TestCompileDoesNotNeedServer(t *testing.T) {
	addr := fakeServer(t, helloOK(func(c *wire.Conn) {}))
	cl, err := Dial(addr, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	spec := UDFSpec{
		Name:   "id",
		Source: `func id(x int) int { return x; }`,
		Args:   []types.Kind{types.KindInt},
		Return: types.KindInt,
	}
	classBytes, err := cl.Compile(spec)
	if err != nil || len(classBytes) == 0 {
		t.Fatalf("compile: %v", err)
	}
	out, err := cl.TestLocally(spec, classBytes, []types.Value{types.NewInt(9)}, nil)
	if err != nil || out.Int != 9 {
		t.Errorf("local: %v, %v", out, err)
	}
	// Bad source errors locally too.
	if _, err := cl.Compile(UDFSpec{Name: "bad", Source: "nope"}); err == nil {
		t.Error("bad source compiled")
	}
}

func TestTestLocallyRejectsUnverifiableBytes(t *testing.T) {
	addr := fakeServer(t, helloOK(func(c *wire.Conn) {}))
	cl, err := Dial(addr, "x")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	_, err = cl.TestLocally(UDFSpec{Name: "x", Return: types.KindInt},
		[]byte("garbage class"), nil, nil)
	if err == nil {
		t.Error("garbage class executed locally")
	}
}
