package jaguar

import "fmt"

// Type is a Jaguar language type.
type Type uint8

// The language types. TypeBool is a real language type (unlike the VM,
// where booleans lower to ints).
const (
	TypeInvalid Type = iota
	TypeInt
	TypeFloat
	TypeBool
	TypeStr
	TypeBytes
	TypeVoid // only as a call-expression statement result
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	case TypeBool:
		return "bool"
	case TypeStr:
		return "str"
	case TypeBytes:
		return "bytes"
	case TypeVoid:
		return "void"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// typeFromName resolves a type keyword.
func typeFromName(name string) (Type, bool) {
	switch name {
	case "int":
		return TypeInt, true
	case "float":
		return TypeFloat, true
	case "bool":
		return TypeBool, true
	case "str":
		return TypeStr, true
	case "bytes":
		return TypeBytes, true
	}
	return TypeInvalid, false
}

// File is a parsed compilation unit: a list of functions.
type File struct {
	Funcs []*FuncDecl
}

// Param is a function parameter.
type Param struct {
	Name string
	Type Type
	Pos  Pos
}

// FuncDecl is one function definition.
type FuncDecl struct {
	Name   string
	Params []Param
	Return Type
	Body   *Block
	Pos    Pos
}

// Stmt is any statement node.
type Stmt interface{ stmtNode() }

// Block is a braced statement list with its own scope.
type Block struct {
	Stmts []Stmt
	Pos   Pos
}

// VarDecl declares (and initializes) a local variable.
type VarDecl struct {
	Name string
	Type Type
	Init Expr // required
	Pos  Pos
	// Slot is filled by the checker: the declared local's index.
	Slot int
}

// Assign assigns to a variable or a byte-array element.
type Assign struct {
	Name  string
	Index Expr // non-nil for name[index] = value
	Value Expr
	Pos   Pos
	// Slot is filled by the checker: the target's local index.
	Slot int
}

// If is a conditional with an optional else branch.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // may be nil
	Pos  Pos
}

// While is a pre-test loop.
type While struct {
	Cond Expr
	Body *Block
	Pos  Pos
}

// For is C-style sugar: for (init; cond; post) body.
type For struct {
	Init Stmt // may be nil; VarDecl or Assign
	Cond Expr // may be nil (infinite)
	Post Stmt // may be nil; Assign or ExprStmt
	Body *Block
	Pos  Pos
}

// Return exits the function with a value.
type Return struct {
	Value Expr
	Pos   Pos
}

// Break exits the innermost loop.
type Break struct{ Pos Pos }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ Pos Pos }

// ExprStmt evaluates an expression for effect (calls only).
type ExprStmt struct {
	X   Expr
	Pos Pos
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*Assign) stmtNode()   {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*ExprStmt) stmtNode() {}

// Expr is any expression node. The checker records each node's type.
type Expr interface {
	exprNode()
	// TypeOf returns the checked type (TypeInvalid before checking).
	TypeOf() Type
	// Position returns the node's source position.
	Position() Pos
}

type exprBase struct {
	typ Type
	pos Pos
}

func (b *exprBase) TypeOf() Type   { return b.typ }
func (b *exprBase) Position() Pos  { return b.pos }
func (b *exprBase) setType(t Type) { b.typ = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// FloatLit is a float literal.
type FloatLit struct {
	exprBase
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
}

// StrLit is a string literal.
type StrLit struct {
	exprBase
	Value string
}

// Ident references a local variable or parameter.
type Ident struct {
	exprBase
	Name string
	// Slot is filled by the checker: the local index.
	Slot int
}

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   TokKind
	L, R Expr
}

// Unary is -x or !x.
type Unary struct {
	exprBase
	Op TokKind
	X  Expr
}

// Index is arr[i].
type Index struct {
	exprBase
	Arr Expr
	Idx Expr
}

// Call invokes a user function or a built-in.
type Call struct {
	exprBase
	Name string
	Args []Expr
	// Resolution, filled by the checker:
	Builtin string // non-empty for built-ins (len, bnew, casts, natives)
	FuncIdx int    // method index for user functions (-1 otherwise)
}

func (*IntLit) exprNode()   {}
func (*FloatLit) exprNode() {}
func (*BoolLit) exprNode()  {}
func (*StrLit) exprNode()   {}
func (*Ident) exprNode()    {}
func (*Binary) exprNode()   {}
func (*Unary) exprNode()    {}
func (*Index) exprNode()    {}
func (*Call) exprNode()     {}
