package jaguar

import (
	"fmt"

	"predator/internal/jvm"
)

// Compile parses, checks and compiles Jaguar source into a Jaguar VM
// class named className. The resulting class is unverified (the loader
// verifies on load), but the compiler only emits verifiable code.
func Compile(src, className string) (*jvm.Class, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	localTypes, err := Check(file)
	if err != nil {
		return nil, err
	}
	cc := &classCompiler{
		class: &jvm.Class{Name: className},
		cpool: make(map[string]int),
	}
	for _, fn := range file.Funcs {
		m, err := cc.compileFunc(fn, localTypes[fn.Name])
		if err != nil {
			return nil, err
		}
		cc.class.Methods = append(cc.class.Methods, m)
	}
	return cc.class, nil
}

// CompileToBytes compiles source and serializes the class file.
func CompileToBytes(src, className string) ([]byte, error) {
	c, err := Compile(src, className)
	if err != nil {
		return nil, err
	}
	return jvm.EncodeClass(c), nil
}

// nativeNames maps language built-ins to VM native function names.
var nativeNames = map[string]string{
	"cb_size":  "cb.size",
	"cb_get":   "cb.get",
	"cb_read":  "cb.read",
	"cb_touch": "cb.touch",
	"log":      "sys.log",
	"time":     "sys.time",
}

// classCompiler holds class-level compilation state (constant pool).
type classCompiler struct {
	class *jvm.Class
	cpool map[string]int // dedupe key -> index
}

func (cc *classCompiler) constIdx(k jvm.Const) int {
	var key string
	switch k.Kind {
	case jvm.ConstInt:
		key = fmt.Sprintf("i:%d", k.Int)
	case jvm.ConstFloat:
		key = fmt.Sprintf("f:%b", k.Float)
	case jvm.ConstStr:
		key = "s:" + k.Str
	default:
		key = "b:" + string(k.Bytes)
	}
	if idx, ok := cc.cpool[key]; ok {
		return idx
	}
	idx := len(cc.class.Consts)
	cc.class.Consts = append(cc.class.Consts, k)
	cc.cpool[key] = idx
	return idx
}

// langToVType lowers a language type to a VM type (bool -> int).
func langToVType(t Type) jvm.VType {
	switch t {
	case TypeInt, TypeBool:
		return jvm.TInt
	case TypeFloat:
		return jvm.TFloat
	case TypeStr:
		return jvm.TStr
	case TypeBytes:
		return jvm.TBytes
	default:
		panic(fmt.Sprintf("jaguar: cannot lower type %s", t))
	}
}

// funcCompiler emits code for one function with stack-depth tracking
// (the emitted method declares the exact maximum stack it needs).
type funcCompiler struct {
	cc      *classCompiler
	asm     *jvm.Assembler
	depth   int
	max     int
	nlabels int
	// Loop context stacks for break/continue.
	breakLabels    []string
	continueLabels []string
}

func (fc *funcCompiler) adj(d int) {
	fc.depth += d
	if fc.depth > fc.max {
		fc.max = fc.depth
	}
}

func (fc *funcCompiler) label(prefix string) string {
	fc.nlabels++
	return fmt.Sprintf("%s_%d", prefix, fc.nlabels)
}

func (cc *classCompiler) compileFunc(fn *FuncDecl, locals []Type) (jvm.Method, error) {
	fc := &funcCompiler{cc: cc, asm: jvm.NewAssembler()}
	if err := fc.block(fn.Body); err != nil {
		return jvm.Method{}, err
	}
	// Unreachable epilogue: labels of trailing control flow (e.g. the
	// end label of an if whose branches all return) need an instruction
	// to bind to. The checker guarantees this nop can never execute.
	fc.asm.Emit(jvm.OpNop)
	code, err := fc.asm.Bytes()
	if err != nil {
		return jvm.Method{}, fmt.Errorf("jaguar: compiling %s: %w", fn.Name, err)
	}
	params := make([]jvm.VType, len(fn.Params))
	for i, p := range fn.Params {
		params[i] = langToVType(p.Type)
	}
	vlocals := make([]jvm.VType, len(locals))
	for i, t := range locals {
		vlocals[i] = langToVType(t)
	}
	maxStack := fc.max
	if maxStack < 1 {
		maxStack = 1
	}
	return jvm.Method{
		Name:     fn.Name,
		Params:   params,
		Locals:   vlocals,
		Return:   langToVType(fn.Return),
		MaxStack: maxStack,
		Code:     code,
	}, nil
}

func (fc *funcCompiler) block(b *Block) error {
	for _, s := range b.Stmts {
		if err := fc.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (fc *funcCompiler) stmt(s Stmt) error {
	switch n := s.(type) {
	case *Block:
		return fc.block(n)
	case *VarDecl:
		if err := fc.expr(n.Init); err != nil {
			return err
		}
		fc.asm.EmitU16(jvm.OpStore, n.Slot)
		fc.adj(-1)
		return nil
	case *Assign:
		if n.Index != nil {
			fc.asm.EmitU16(jvm.OpLoad, n.Slot)
			fc.adj(1)
			if err := fc.expr(n.Index); err != nil {
				return err
			}
			if err := fc.expr(n.Value); err != nil {
				return err
			}
			fc.asm.Emit(jvm.OpBSet)
			fc.adj(-3)
			return nil
		}
		if err := fc.expr(n.Value); err != nil {
			return err
		}
		fc.asm.EmitU16(jvm.OpStore, n.Slot)
		fc.adj(-1)
		return nil
	case *If:
		if err := fc.expr(n.Cond); err != nil {
			return err
		}
		elseL, endL := fc.label("else"), fc.label("endif")
		fc.asm.Jump(jvm.OpJmpZ, elseL)
		fc.adj(-1)
		if err := fc.block(n.Then); err != nil {
			return err
		}
		fc.asm.Jump(jvm.OpJmp, endL)
		fc.asm.Label(elseL)
		if n.Else != nil {
			if err := fc.block(n.Else); err != nil {
				return err
			}
		}
		fc.asm.Label(endL)
		return nil
	case *While:
		condL, endL := fc.label("while"), fc.label("endwhile")
		fc.asm.Label(condL)
		if err := fc.expr(n.Cond); err != nil {
			return err
		}
		fc.asm.Jump(jvm.OpJmpZ, endL)
		fc.adj(-1)
		fc.breakLabels = append(fc.breakLabels, endL)
		fc.continueLabels = append(fc.continueLabels, condL)
		err := fc.block(n.Body)
		fc.breakLabels = fc.breakLabels[:len(fc.breakLabels)-1]
		fc.continueLabels = fc.continueLabels[:len(fc.continueLabels)-1]
		if err != nil {
			return err
		}
		fc.asm.Jump(jvm.OpJmp, condL)
		fc.asm.Label(endL)
		return nil
	case *For:
		if n.Init != nil {
			if err := fc.stmt(n.Init); err != nil {
				return err
			}
		}
		condL, postL, endL := fc.label("for"), fc.label("forpost"), fc.label("endfor")
		fc.asm.Label(condL)
		if n.Cond != nil {
			if err := fc.expr(n.Cond); err != nil {
				return err
			}
			fc.asm.Jump(jvm.OpJmpZ, endL)
			fc.adj(-1)
		}
		fc.breakLabels = append(fc.breakLabels, endL)
		fc.continueLabels = append(fc.continueLabels, postL)
		err := fc.block(n.Body)
		fc.breakLabels = fc.breakLabels[:len(fc.breakLabels)-1]
		fc.continueLabels = fc.continueLabels[:len(fc.continueLabels)-1]
		if err != nil {
			return err
		}
		fc.asm.Label(postL)
		if n.Post != nil {
			if err := fc.stmt(n.Post); err != nil {
				return err
			}
		}
		fc.asm.Jump(jvm.OpJmp, condL)
		fc.asm.Label(endL)
		return nil
	case *Return:
		if err := fc.expr(n.Value); err != nil {
			return err
		}
		fc.asm.Emit(jvm.OpRet)
		fc.adj(-1)
		return nil
	case *Break:
		fc.asm.Jump(jvm.OpJmp, fc.breakLabels[len(fc.breakLabels)-1])
		return nil
	case *Continue:
		fc.asm.Jump(jvm.OpJmp, fc.continueLabels[len(fc.continueLabels)-1])
		return nil
	case *ExprStmt:
		if err := fc.expr(n.X); err != nil {
			return err
		}
		fc.asm.Emit(jvm.OpPop)
		fc.adj(-1)
		return nil
	default:
		return fmt.Errorf("jaguar: unhandled statement %T", s)
	}
}

func (fc *funcCompiler) expr(e Expr) error {
	switch n := e.(type) {
	case *IntLit:
		fc.emitIntConst(n.Value)
		return nil
	case *FloatLit:
		fc.asm.EmitU16(jvm.OpLdc, fc.cc.constIdx(jvm.Const{Kind: jvm.ConstFloat, Float: n.Value}))
		fc.adj(1)
		return nil
	case *BoolLit:
		if n.Value {
			fc.asm.Emit(jvm.OpIConst1)
		} else {
			fc.asm.Emit(jvm.OpIConst0)
		}
		fc.adj(1)
		return nil
	case *StrLit:
		fc.asm.EmitU16(jvm.OpLdc, fc.cc.constIdx(jvm.Const{Kind: jvm.ConstStr, Str: n.Value}))
		fc.adj(1)
		return nil
	case *Ident:
		fc.asm.EmitU16(jvm.OpLoad, n.Slot)
		fc.adj(1)
		return nil
	case *Unary:
		if err := fc.expr(n.X); err != nil {
			return err
		}
		switch {
		case n.Op == TokMinus && n.X.TypeOf() == TypeInt:
			fc.asm.Emit(jvm.OpINeg)
		case n.Op == TokMinus:
			fc.asm.Emit(jvm.OpFNeg)
		default: // TokNot
			fc.asm.Emit(jvm.OpNot)
		}
		return nil
	case *Binary:
		return fc.binary(n)
	case *Index:
		if err := fc.expr(n.Arr); err != nil {
			return err
		}
		if err := fc.expr(n.Idx); err != nil {
			return err
		}
		fc.asm.Emit(jvm.OpBGet)
		fc.adj(-1)
		return nil
	case *Call:
		return fc.call(n)
	default:
		return fmt.Errorf("jaguar: unhandled expression %T", e)
	}
}

func (fc *funcCompiler) emitIntConst(v int64) {
	switch v {
	case 0:
		fc.asm.Emit(jvm.OpIConst0)
	case 1:
		fc.asm.Emit(jvm.OpIConst1)
	default:
		fc.asm.EmitU16(jvm.OpLdc, fc.cc.constIdx(jvm.Const{Kind: jvm.ConstInt, Int: v}))
	}
	fc.adj(1)
}

func (fc *funcCompiler) binary(n *Binary) error {
	// Short-circuit logic first.
	if n.Op == TokAnd || n.Op == TokOr {
		if err := fc.expr(n.L); err != nil {
			return err
		}
		shortL, endL := fc.label("sc"), fc.label("scend")
		if n.Op == TokAnd {
			fc.asm.Jump(jvm.OpJmpZ, shortL)
		} else {
			fc.asm.Jump(jvm.OpJmpN, shortL)
		}
		fc.adj(-1)
		if err := fc.expr(n.R); err != nil {
			return err
		}
		fc.asm.Jump(jvm.OpJmp, endL)
		fc.adj(-1) // the join re-pushes one value on the other path
		fc.asm.Label(shortL)
		if n.Op == TokAnd {
			fc.asm.Emit(jvm.OpIConst0)
		} else {
			fc.asm.Emit(jvm.OpIConst1)
		}
		fc.adj(1)
		fc.asm.Label(endL)
		return nil
	}
	if err := fc.expr(n.L); err != nil {
		return err
	}
	if err := fc.expr(n.R); err != nil {
		return err
	}
	t := n.L.TypeOf()
	var op jvm.Opcode
	negate := false
	switch n.Op {
	case TokPlus:
		switch t {
		case TypeInt:
			op = jvm.OpIAdd
		case TypeFloat:
			op = jvm.OpFAdd
		default:
			op = jvm.OpSConcat
		}
	case TokMinus:
		op = pick(t, jvm.OpISub, jvm.OpFSub)
	case TokStar:
		op = pick(t, jvm.OpIMul, jvm.OpFMul)
	case TokSlash:
		op = pick(t, jvm.OpIDiv, jvm.OpFDiv)
	case TokPercent:
		op = jvm.OpIMod
	case TokLt:
		op = pick(t, jvm.OpILt, jvm.OpFLt)
	case TokLe:
		op = pick(t, jvm.OpILe, jvm.OpFLe)
	case TokGt:
		op = pick(t, jvm.OpIGt, jvm.OpFGt)
	case TokGe:
		op = pick(t, jvm.OpIGe, jvm.OpFGe)
	case TokEq, TokNe:
		negate = n.Op == TokNe
		switch t {
		case TypeInt, TypeBool:
			op = pickNeg(&negate, jvm.OpIEq, jvm.OpINe)
		case TypeFloat:
			op = pickNeg(&negate, jvm.OpFEq, jvm.OpFNe)
		case TypeStr:
			op = jvm.OpSEq
		default: // bytes
			op = jvm.OpBEq
		}
	default:
		return errf(n.Position(), "invalid binary operator")
	}
	fc.asm.Emit(op)
	fc.adj(-1)
	if negate {
		fc.asm.Emit(jvm.OpNot)
	}
	return nil
}

func pick(t Type, i, f jvm.Opcode) jvm.Opcode {
	if t == TypeFloat {
		return f
	}
	return i
}

// pickNeg selects a dedicated negated opcode when available, clearing
// the post-negate flag.
func pickNeg(negate *bool, eq, ne jvm.Opcode) jvm.Opcode {
	if *negate {
		*negate = false
		return ne
	}
	return eq
}

func (fc *funcCompiler) call(n *Call) error {
	for _, a := range n.Args {
		if err := fc.expr(a); err != nil {
			return err
		}
	}
	switch n.Builtin {
	case "":
		// User function.
		fc.asm.EmitU16(jvm.OpCall, n.FuncIdx)
		fc.adj(1 - len(n.Args))
		return nil
	case "len":
		if n.Args[0].TypeOf() == TypeBytes {
			fc.asm.Emit(jvm.OpBLen)
		} else {
			fc.asm.Emit(jvm.OpSLen)
		}
		return nil
	case "bnew":
		fc.asm.Emit(jvm.OpBNew)
		return nil
	case "int":
		fc.asm.Emit(jvm.OpF2I)
		return nil
	case "float":
		fc.asm.Emit(jvm.OpI2F)
		return nil
	default:
		native, ok := nativeNames[n.Builtin]
		if !ok {
			return errf(n.Position(), "internal: unknown builtin %q", n.Builtin)
		}
		idx := fc.cc.constIdx(jvm.Const{Kind: jvm.ConstStr, Str: native})
		fc.asm.EmitNative(idx, len(n.Args))
		fc.adj(1 - len(n.Args))
		return nil
	}
}
