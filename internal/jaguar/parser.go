package jaguar

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a Jaguar compilation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.cur().Kind != TokEOF {
		fn, err := p.funcDecl()
		if err != nil {
			return nil, err
		}
		f.Funcs = append(f.Funcs, fn)
	}
	if len(f.Funcs) == 0 {
		return nil, errf(p.cur().Pos, "source contains no functions")
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(kind TokKind) (Token, error) {
	t := p.cur()
	if t.Kind != kind {
		return t, errf(t.Pos, "expected %s, found %s", kind, describe(t))
	}
	p.pos++
	return t, nil
}

func describe(t Token) string {
	switch t.Kind {
	case TokIdent:
		return "identifier '" + t.Text + "'"
	case TokIntLit, TokFloatLit:
		return "literal '" + t.Text + "'"
	case TokStrLit:
		return "string literal"
	default:
		return t.Kind.String()
	}
}

func (p *parser) typeName() (Type, error) {
	t, err := p.expect(TokIdent)
	if err != nil {
		return TypeInvalid, err
	}
	typ, ok := typeFromName(t.Text)
	if !ok {
		return TypeInvalid, errf(t.Pos, "unknown type %q", t.Text)
	}
	return typ, nil
}

// funcDecl parses: func name(param type, ...) rettype block
func (p *parser) funcDecl() (*FuncDecl, error) {
	start, err := p.expect(TokFunc)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Pos: start.Pos}
	for p.cur().Kind != TokRParen {
		if len(fn.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		pname, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		ptype, err := p.typeName()
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, Param{Name: pname.Text, Type: ptype, Pos: pname.Pos})
	}
	p.next() // ')'
	ret, err := p.typeName()
	if err != nil {
		return nil, err
	}
	fn.Return = ret
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errf(lb.Pos, "unclosed block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // '}'
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.block()
	case TokVar:
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		return p.whileStmt()
	case TokFor:
		return p.forStmt()
	case TokReturn:
		t := p.next()
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &Return{Value: v, Pos: t.Pos}, nil
	case TokBreak:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &Break{Pos: t.Pos}, nil
	case TokContinue:
		t := p.next()
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &Continue{Pos: t.Pos}, nil
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// varDecl parses: var name type = expr   (no trailing semicolon)
func (p *parser) varDecl() (Stmt, error) {
	t := p.next() // 'var'
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	typ, err := p.typeName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokAssign); err != nil {
		return nil, err
	}
	init, err := p.expr()
	if err != nil {
		return nil, err
	}
	return &VarDecl{Name: name.Text, Type: typ, Init: init, Pos: t.Pos}, nil
}

// simpleStmt parses an assignment or an expression statement (no semi).
func (p *parser) simpleStmt() (Stmt, error) {
	start := p.cur().Pos
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokAssign {
		p.next()
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch lhs := x.(type) {
		case *Ident:
			return &Assign{Name: lhs.Name, Value: val, Pos: start}, nil
		case *Index:
			arrIdent, ok := lhs.Arr.(*Ident)
			if !ok {
				return nil, errf(start, "assignment target must be a variable or var[index]")
			}
			return &Assign{Name: arrIdent.Name, Index: lhs.Idx, Value: val, Pos: start}, nil
		default:
			return nil, errf(start, "invalid assignment target")
		}
	}
	return &ExprStmt{X: x, Pos: start}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next() // 'if'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Pos: t.Pos}
	if p.cur().Kind == TokElse {
		p.next()
		if p.cur().Kind == TokIf {
			elseIf, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			node.Else = &Block{Stmts: []Stmt{elseIf}, Pos: p.cur().Pos}
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
	}
	return node, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t := p.next() // 'while'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &While{Cond: cond, Body: body, Pos: t.Pos}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next() // 'for'
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	node := &For{Pos: t.Pos}
	if p.cur().Kind != TokSemi {
		var err error
		if p.cur().Kind == TokVar {
			node.Init, err = p.varDecl()
		} else {
			node.Init, err = p.simpleStmt()
		}
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		node.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		node.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	node.Body = body
	return node, nil
}

// Expression parsing, precedence climbing:
//
//	||  (lowest)
//	&&
//	== != < <= > >=
//	+ -
//	* / %
//	unary - !
//	postfix [index] call   (highest)

func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokOr {
		op := p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: op.Pos}, Op: TokOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokAnd {
		op := p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: op.Pos}, Op: TokAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) cmpExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	for {
		k := p.cur().Kind
		if k != TokEq && k != TokNe && k != TokLt && k != TokLe && k != TokGt && k != TokGe {
			return l, nil
		}
		op := p.next()
		r, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: op.Pos}, Op: k, L: l, R: r}
	}
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokPlus || p.cur().Kind == TokMinus {
		op := p.next()
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokStar || p.cur().Kind == TokSlash || p.cur().Kind == TokPercent {
		op := p.next()
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.cur().Kind == TokMinus || p.cur().Kind == TokNot {
		op := p.next()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{pos: op.Pos}, Op: op.Kind, X: x}, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLBracket {
		lb := p.next()
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		x = &Index{exprBase: exprBase{pos: lb.Pos}, Arr: x, Idx: idx}
	}
	return x, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{exprBase: exprBase{pos: t.Pos}, Value: t.Int}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{exprBase: exprBase{pos: t.Pos}, Value: t.Float}, nil
	case TokStrLit:
		p.next()
		return &StrLit{exprBase: exprBase{pos: t.Pos}, Value: t.Str}, nil
	case TokTrue, TokFalse:
		p.next()
		return &BoolLit{exprBase: exprBase{pos: t.Pos}, Value: t.Kind == TokTrue}, nil
	case TokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			p.next()
			call := &Call{exprBase: exprBase{pos: t.Pos}, Name: t.Text, FuncIdx: -1}
			for p.cur().Kind != TokRParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // ')'
			return call, nil
		}
		return &Ident{exprBase: exprBase{pos: t.Pos}, Name: t.Text, Slot: -1}, nil
	default:
		return nil, errf(t.Pos, "expected expression, found %s", describe(t))
	}
}
