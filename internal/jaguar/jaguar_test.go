package jaguar

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"predator/internal/jvm"
)

// compileAndLoad compiles source and loads it into a fresh VM, failing
// the test on any error. It returns classes for both engines.
func compileAndLoad(t *testing.T, src string) (jitLC, interpLC *jvm.LoadedClass) {
	t.Helper()
	cls, err := Compile(src, "Test")
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	vmJIT := jvm.New(jvm.Options{Security: jvm.AllowAll()})
	vmInt := jvm.New(jvm.Options{Security: jvm.AllowAll(), DisableJIT: true})
	jitLC, err = vmJIT.NewLoader("t").LoadClass(cls)
	if err != nil {
		t.Fatalf("load (jit): %v", err)
	}
	// A class must not be loaded twice; compile a fresh copy.
	cls2, _ := Compile(src, "Test")
	interpLC, err = vmInt.NewLoader("t").LoadClass(cls2)
	if err != nil {
		t.Fatalf("load (interp): %v", err)
	}
	return jitLC, interpLC
}

// callInt runs an int-returning method on both engines and asserts they
// agree, returning the value.
func callInt(t *testing.T, src, method string, args ...int64) int64 {
	t.Helper()
	jitLC, intLC := compileAndLoad(t, src)
	vargs := make([]jvm.Value, len(args))
	for i, a := range args {
		vargs[i] = jvm.IntVal(a)
	}
	a, _, err := jitLC.Call(method, vargs, nil)
	if err != nil {
		t.Fatalf("jit call: %v", err)
	}
	b, _, err := intLC.Call(method, vargs, nil)
	if err != nil {
		t.Fatalf("interp call: %v", err)
	}
	if a.I != b.I {
		t.Fatalf("engines disagree: jit=%d interp=%d", a.I, b.I)
	}
	return a.I
}

func TestCompileSimpleFunctions(t *testing.T) {
	src := `
	func add(a int, b int) int { return a + b; }
	func mix(a int, b int) int { return (a + b) * (a - b) / 2 % 7; }
	`
	if got := callInt(t, src, "add", 40, 2); got != 42 {
		t.Errorf("add = %d", got)
	}
	if got := callInt(t, src, "mix", 10, 4); got != ((14*6)/2)%7 {
		t.Errorf("mix = %d", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
	func sum(n int) int {
		var acc int = 0;
		var i int = 0;
		while (i < n) { acc = acc + i; i = i + 1; }
		return acc;
	}`
	if got := callInt(t, src, "sum", 100); got != 4950 {
		t.Errorf("sum(100) = %d", got)
	}
	if got := callInt(t, src, "sum", 0); got != 0 {
		t.Errorf("sum(0) = %d", got)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
	func f(n int) int {
		var acc int = 0;
		for (var i int = 0; i < n; i = i + 1) {
			if (i % 2 == 0) { continue; }
			if (i > 10) { break; }
			acc = acc + i;
		}
		return acc;
	}`
	// odd numbers 1..9: 1+3+5+7+9 = 25 (11 breaks first)
	if got := callInt(t, src, "f", 100); got != 25 {
		t.Errorf("f(100) = %d, want 25", got)
	}
}

func TestIfElseChain(t *testing.T) {
	src := `
	func grade(x int) int {
		if (x >= 90) { return 4; }
		else if (x >= 80) { return 3; }
		else if (x >= 70) { return 2; }
		else { return 0; }
	}`
	cases := map[int64]int64{95: 4, 85: 3, 75: 2, 10: 0}
	for in, want := range cases {
		if got := callInt(t, src, "grade", in); got != want {
			t.Errorf("grade(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestRecursionAndCalls(t *testing.T) {
	src := `
	func fib(n int) int {
		if (n <= 1) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	func double_fib(n int) int { return 2 * fib(n); }
	`
	if got := callInt(t, src, "fib", 15); got != 610 {
		t.Errorf("fib(15) = %d", got)
	}
	if got := callInt(t, src, "double_fib", 10); got != 110 {
		t.Errorf("double_fib(10) = %d", got)
	}
}

func TestBytesOperations(t *testing.T) {
	src := `
	func work(n int) int {
		var b bytes = bnew(n);
		for (var i int = 0; i < n; i = i + 1) { b[i] = i * 3; }
		var acc int = 0;
		for (var i int = 0; i < len(b); i = i + 1) { acc = acc + b[i]; }
		return acc;
	}`
	// sum of (i*3 mod 256) for i in 0..9 = 3*45 = 135
	if got := callInt(t, src, "work", 10); got != 135 {
		t.Errorf("work(10) = %d", got)
	}
}

func TestFloatsAndCasts(t *testing.T) {
	src := `
	func avg(a int, b int) int {
		var f float = (float(a) + float(b)) / 2.0;
		return int(f);
	}
	func fcmp(x int) int {
		var f float = float(x) * 1.5;
		if (f > 10.0) { return 1; }
		return 0;
	}`
	if got := callInt(t, src, "avg", 3, 8); got != 5 {
		t.Errorf("avg = %d", got)
	}
	if got := callInt(t, src, "fcmp", 7); got != 1 {
		t.Errorf("fcmp(7) = %d", got)
	}
	if got := callInt(t, src, "fcmp", 6); got != 0 {
		t.Errorf("fcmp(6) = %d", got)
	}
}

func TestLogicalShortCircuit(t *testing.T) {
	src := `
	func f(a int, b int) int {
		// The right operand divides by b; short-circuit must protect it.
		if (b != 0 && a / b > 2) { return 1; }
		if (b == 0 || a / b > 2) { return 2; }
		return 3;
	}`
	if got := callInt(t, src, "f", 10, 0); got != 2 {
		t.Errorf("f(10,0) = %d, want 2 (short-circuit failed)", got)
	}
	if got := callInt(t, src, "f", 9, 3); got != 1 {
		t.Errorf("f(9,3) = %d, want 1", got)
	}
	if got := callInt(t, src, "f", 3, 3); got != 3 {
		t.Errorf("f(3,3) = %d, want 3", got)
	}
}

func TestBoolAndNegation(t *testing.T) {
	src := `
	func f(x int) bool {
		var b bool = x > 5;
		if (!b) { return false; }
		return true;
	}`
	jitLC, _ := compileAndLoad(t, src)
	ret, _, err := jitLC.Call("f", []jvm.Value{jvm.IntVal(6)}, nil)
	if err != nil || ret.I != 1 {
		t.Errorf("f(6) = %v, %v", ret, err)
	}
	ret, _, _ = jitLC.Call("f", []jvm.Value{jvm.IntVal(3)}, nil)
	if ret.I != 0 {
		t.Errorf("f(3) = %v", ret)
	}
}

func TestStringOps(t *testing.T) {
	src := `
	func f(x int) int {
		var s str = "ab" + "cd";
		if (s == "abcd") { return len(s) + x; }
		return 0;
	}
	func ne(x int) int {
		var s str = "a";
		if (s != "b") { return 1; }
		return 0;
	}`
	if got := callInt(t, src, "f", 10); got != 14 {
		t.Errorf("f = %d", got)
	}
	if got := callInt(t, src, "ne", 0); got != 1 {
		t.Errorf("ne = %d", got)
	}
}

func TestUnaryMinusAndComparisons(t *testing.T) {
	src := `
	func f(x int) int {
		var y int = -x;
		if (y <= -5) { return 1; }
		if (y >= 0) { return 2; }
		if (y != -1) { return 3; }
		return 4;
	}`
	if got := callInt(t, src, "f", 7); got != 1 {
		t.Errorf("f(7) = %d", got)
	}
	if got := callInt(t, src, "f", -3); got != 2 {
		t.Errorf("f(-3) = %d", got)
	}
	if got := callInt(t, src, "f", 2); got != 3 {
		t.Errorf("f(2) = %d", got)
	}
	if got := callInt(t, src, "f", 1); got != 4 {
		t.Errorf("f(1) = %d", got)
	}
}

func TestBytesEquality(t *testing.T) {
	src := `
	func f(n int) bool {
		var a bytes = bnew(n);
		var b bytes = bnew(n);
		return a == b;
	}
	func g(n int) bool {
		var a bytes = bnew(n);
		var b bytes = bnew(n);
		a[0] = 1;
		return a != b;
	}`
	jitLC, _ := compileAndLoad(t, src)
	ret, _, err := jitLC.Call("f", []jvm.Value{jvm.IntVal(4)}, nil)
	if err != nil || ret.I != 1 {
		t.Errorf("f = %v, %v", ret, err)
	}
	ret, _, err = jitLC.Call("g", []jvm.Value{jvm.IntVal(4)}, nil)
	if err != nil || ret.I != 1 {
		t.Errorf("g = %v, %v", ret, err)
	}
}

// The paper's generic UDF, written in Jaguar, exercised end to end.
const genericUDFSrc = `
// generic models the paper's 4-parameter benchmark UDF.
func generic(data bytes, indep int, dep int, ncb int) int {
	var acc int = 0;
	// Data-independent computation: indep integer additions.
	for (var i int = 0; i < indep; i = i + 1) { acc = acc + 1; }
	// Data-dependent computation: dep passes over the byte array.
	for (var p int = 0; p < dep; p = p + 1) {
		for (var j int = 0; j < len(data); j = j + 1) { acc = acc + data[j]; }
	}
	// Callbacks to the server.
	for (var k int = 0; k < ncb; k = k + 1) { cb_touch(0); }
	return acc;
}`

type countingCallback struct{ touches int }

func (c *countingCallback) Size(int64) (int64, error)                { return 0, nil }
func (c *countingCallback) Get(int64, int64) (byte, error)           { return 0, nil }
func (c *countingCallback) Read(int64, int64, int64) ([]byte, error) { return nil, nil }
func (c *countingCallback) Touch(int64) error                        { c.touches++; return nil }

func TestGenericUDF(t *testing.T) {
	jitLC, intLC := compileAndLoad(t, genericUDFSrc)
	data := make([]byte, 100)
	for i := range data {
		data[i] = 2
	}
	for name, lc := range map[string]*jvm.LoadedClass{"jit": jitLC, "interp": intLC} {
		cb := &countingCallback{}
		ret, usage, err := lc.Call("generic", []jvm.Value{
			jvm.BytesVal(data), jvm.IntVal(50), jvm.IntVal(3), jvm.IntVal(7),
		}, &jvm.CallOptions{Callback: cb})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := int64(50 + 3*100*2)
		if ret.I != want {
			t.Errorf("%s: generic = %d, want %d", name, ret.I, want)
		}
		if cb.touches != 7 || usage.NativeCalls != 7 {
			t.Errorf("%s: touches=%d native=%d, want 7", name, cb.touches, usage.NativeCalls)
		}
	}
}

func TestCompiledClassesAlwaysVerify(t *testing.T) {
	// Every fixture in this file must produce verifiable bytecode.
	srcs := []string{genericUDFSrc,
		`func f(a int) int { return a; }`,
		`func f(a float) float { return -a * 2.0; }`,
		`func f(s str) int { return len(s); }`,
		`func f(b bytes, x int) int {
			if (x > 0 && b[0] == 1 || x < 0) { return 1; }
			return 0;
		}`,
	}
	for i, src := range srcs {
		cls, err := Compile(src, fmt.Sprintf("V%d", i))
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		if err := cls.Verify(); err != nil {
			t.Errorf("src %d failed verification: %v", i, err)
		}
	}
}

func TestCompileToBytesLoads(t *testing.T) {
	data, err := CompileToBytes(`func f(a int) int { return a + 1; }`, "Wire")
	if err != nil {
		t.Fatal(err)
	}
	vm := jvm.New(jvm.Options{})
	lc, err := vm.NewLoader("w").Load(data)
	if err != nil {
		t.Fatal(err)
	}
	ret, _, err := lc.Call("f", []jvm.Value{jvm.IntVal(41)}, nil)
	if err != nil || ret.I != 42 {
		t.Errorf("wire round trip: %v, %v", ret, err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`func f(a int int { return a; }`, "expected"},
		{`func f() int { return 1 }`, "expected ';'"},
		{`func f() int { return 1; `, "unclosed block"},
		{`func `, "expected identifier"},
		{`func f() int { var x int; return 1; }`, "expected '='"},
		{`func f() int { 1 + 2; return 1; }`, "must be a call"},
		{`func f() int { return 1; } extra`, "expected 'func'"},
		{``, "no functions"},
		{`func f() int { return "abc"def; }`, "expected"},
		{`func f() int { return 0x12; }`, "expected"},
		{`func f() int { return 99999999999999999999; }`, "out of range"},
		{`func f() int { return "unterminated`, "unterminated string"},
		{`func f() int { return 1; } /* unclosed`, "unterminated block comment"},
		{`func f() int { return @; }`, "unexpected character"},
		{`func f() pointer { return 1; }`, "unknown type"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, "E")
		if err == nil {
			t.Errorf("src %q compiled, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`func f(a int) int { return a + 1.5; }`, "mismatched types"},
		{`func f(a int) float { return a; }`, "return type mismatch"},
		{`func f(a int) int { var b bool = a; return 1; }`, "cannot initialize"},
		{`func f(a int) int { b = 2; return 1; }`, "undefined variable"},
		{`func f(a int) int { return g(a); }`, "undefined function"},
		{`func f(a int) int { if (a) { return 1; } return 0; }`, "must be bool"},
		{`func f(a int) int { while (a + 1) { } return 0; }`, "must be bool"},
		{`func f(a str) int { return a[0]; }`, "cannot index str"},
		{`func f(a bytes) int { return a[1.5]; }`, "index must be int"},
		{`func f(a bytes) int { a[0] = "x"; return 0; }`, "needs an int value"},
		{`func f(a int) int { return len(a); }`, "len not defined on int"},
		{`func f(a int) int { return -true; }`, "unary minus needs"},
		{`func f(a int) int { return !a; }`, "'!' needs bool"},
		{`func f(a int) int { return a && true; }`, "mismatched types"},
		{`func f(a bool, b bool) int { if (a < b) { return 1; } return 0; }`, "ordering"},
		{`func f(a str) str { return a - a; }`, "not defined on str"},
		{`func f(a float) float { return a % a; }`, "not defined on float"},
		{`func f(a int) int { if (a > 0) { return 1; } }`, "missing return"},
		{`func f(a int) int { while (a > 0) { return 1; } }`, "missing return"},
		{`func f(a int) int { break; return 1; }`, "break outside loop"},
		{`func f(a int) int { continue; return 1; }`, "continue outside loop"},
		{`func f(a int) int { var a int = 1; return a; }`, "redeclared"},
		{`func f(a int) int { return 1; } func f(b int) int { return 2; }`, "redefined"},
		{`func len(a int) int { return 1; }`, "shadows a built-in"},
		{`func f(a int) int { return cb_get(a); }`, "takes 2 argument"},
		{`func f(a int) int { return cb_get(a, 1.5); }`, "must be int"},
		{`func f(a int) int { return f(a, a); }`, "takes 1 argument"},
		{`func f(a int) int { return int(a); }`, "must be float"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, "E")
		if err == nil {
			t.Errorf("src %q compiled, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("src %q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestScoping(t *testing.T) {
	src := `
	func f(x int) int {
		var y int = 1;
		{
			var y int = 2; // shadows outer y
			x = x + y;
		}
		return x + y;
	}`
	if got := callInt(t, src, "f", 10); got != 13 {
		t.Errorf("f(10) = %d, want 13", got)
	}
	// Inner variables must not leak out.
	_, err := Compile(`func f() int { { var z int = 1; } return z; }`, "S")
	if err == nil || !strings.Contains(err.Error(), "undefined variable") {
		t.Errorf("leaked scope: %v", err)
	}
}

// Property: integer expression evaluation in the VM matches Go
// semantics for + - * on arbitrary inputs.
func TestQuickArithmeticAgreesWithGo(t *testing.T) {
	src := `func f(a int, b int) int { return a * 3 + b - a * b; }`
	jitLC, intLC := compileAndLoad(t, src)
	prop := func(a, b int64) bool {
		want := a*3 + b - a*b
		x, _, err1 := jitLC.Call("f", []jvm.Value{jvm.IntVal(a), jvm.IntVal(b)}, nil)
		y, _, err2 := intLC.Call("f", []jvm.Value{jvm.IntVal(a), jvm.IntVal(b)}, nil)
		return err1 == nil && err2 == nil && x.I == want && y.I == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the compiler never emits unverifiable code for this family
// of generated programs (loops with varying depth/locals).
func TestQuickCompiledProgramsVerify(t *testing.T) {
	prop := func(depth uint8, nvars uint8) bool {
		d := int(depth%4) + 1
		n := int(nvars%4) + 1
		var b strings.Builder
		fmt.Fprintf(&b, "func f(x int) int {\n")
		for i := 0; i < n; i++ {
			fmt.Fprintf(&b, "var v%d int = x + %d;\n", i, i)
		}
		for i := 0; i < d; i++ {
			fmt.Fprintf(&b, "for (var i%d int = 0; i%d < 3; i%d = i%d + 1) {\n", i, i, i, i)
		}
		b.WriteString("x = x + 1;\n")
		for i := 0; i < d; i++ {
			b.WriteString("}\n")
		}
		fmt.Fprintf(&b, "return x + v0;\n}\n")
		cls, err := Compile(b.String(), "Gen")
		if err != nil {
			return false
		}
		return cls.Verify() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
